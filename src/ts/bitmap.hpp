// SAX time-series bitmaps (Kumar et al.; paper, Section 2).
//
// A bitmap counts occurrences of symbolic subwords of length L (1, 2 or 3
// symbols) over a window of SAX symbols; cell frequencies are the counts
// divided by the total number of subwords. An anomaly score is the Euclidean
// distance between two (normalized) bitmaps -- here, a lag window and a lead
// window sliding over the stream.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ts/sax.hpp"

namespace dynriver::ts {

/// Frequency matrix over alphabet^level subword cells with O(1) incremental
/// update, designed for streaming windows.
class SaxBitmap {
 public:
  SaxBitmap(std::size_t alphabet, std::size_t level);

  /// Flat cell index of a subword (most recent symbol last).
  [[nodiscard]] std::size_t cell_index(std::span<const Symbol> subword) const;

  void add(std::span<const Symbol> subword) { add_cell(cell_index(subword)); }
  void remove(std::span<const Symbol> subword) { remove_cell(cell_index(subword)); }
  void add_cell(std::size_t cell);
  void remove_cell(std::size_t cell);

  /// Count every subword of `symbols` (batch construction).
  void add_all(std::span<const Symbol> symbols);

  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] std::size_t cells() const { return counts_.size(); }
  [[nodiscard]] std::size_t alphabet() const { return alphabet_; }
  [[nodiscard]] std::size_t level() const { return level_; }
  [[nodiscard]] const std::vector<std::uint32_t>& counts() const { return counts_; }

  /// Cell frequencies (counts / total); all zeros when empty.
  [[nodiscard]] std::vector<double> frequencies() const;

  void clear();

 private:
  std::size_t alphabet_;
  std::size_t level_;
  std::vector<std::uint32_t> counts_;
  std::size_t total_ = 0;
};

/// Euclidean distance between the frequency matrices of two bitmaps
/// (must have equal alphabet and level).
[[nodiscard]] double bitmap_distance(const SaxBitmap& a, const SaxBitmap& b);

}  // namespace dynriver::ts
