#include "ts/discord.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/contracts.hpp"
#include "ts/sax.hpp"
#include "ts/znorm.hpp"

namespace dynriver::ts {

double subsequence_distance(std::span<const float> a, std::span<const float> b) {
  DR_EXPECTS(a.size() == b.size());
  const auto za = znormalize(a);
  const auto zb = znormalize(b);
  double acc = 0.0;
  for (std::size_t i = 0; i < za.size(); ++i) {
    const double d = static_cast<double>(za[i]) - static_cast<double>(zb[i]);
    acc += d * d;
  }
  return std::sqrt(acc);
}

namespace {

/// Distance with early abandon: returns something >= `cutoff` as soon as the
/// partial sum exceeds it.
double distance_early_abandon(std::span<const float> za, std::span<const float> zb,
                              double cutoff) {
  const double cutoff_sq = cutoff * cutoff;
  double acc = 0.0;
  for (std::size_t i = 0; i < za.size(); ++i) {
    const double d = static_cast<double>(za[i]) - static_cast<double>(zb[i]);
    acc += d * d;
    if (acc >= cutoff_sq) return std::sqrt(acc);
  }
  return std::sqrt(acc);
}

std::vector<std::vector<float>> znormalized_subsequences(
    std::span<const float> series, std::size_t window) {
  const std::size_t count = series.size() - window + 1;
  std::vector<std::vector<float>> subs(count);
  for (std::size_t i = 0; i < count; ++i) {
    subs[i] = znormalize(series.subspan(i, window));
  }
  return subs;
}

}  // namespace

DiscordResult find_discord_brute(std::span<const float> series,
                                 std::size_t window) {
  DR_EXPECTS(window >= 2);
  DR_EXPECTS(series.size() >= 2 * window);
  const std::size_t count = series.size() - window + 1;
  const auto subs = znormalized_subsequences(series, window);

  DiscordResult best;
  best.distance = -1.0;
  for (std::size_t i = 0; i < count; ++i) {
    double nearest = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < count; ++j) {
      if (i == j) continue;
      const std::size_t gap = (i > j) ? i - j : j - i;
      if (gap < window) continue;  // self-match exclusion
      ++best.calls;
      nearest = std::min(nearest,
                         distance_early_abandon(subs[i], subs[j], nearest));
      if (nearest <= best.distance) break;  // cannot become the discord
    }
    if (std::isfinite(nearest) && nearest > best.distance) {
      best.distance = nearest;
      best.index = i;
    }
  }
  return best;
}

DiscordResult find_discord_hotsax(std::span<const float> series,
                                  const HotSaxParams& params) {
  DR_EXPECTS(params.window >= 2);
  DR_EXPECTS(series.size() >= 2 * params.window);
  const std::size_t window = params.window;
  const std::size_t count = series.size() - window + 1;
  const auto subs = znormalized_subsequences(series, window);

  // Bucket subsequences by SAX word.
  std::map<std::string, std::vector<std::size_t>> buckets;
  std::vector<std::string> words(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto sax = to_sax(series.subspan(i, window),
                            {params.sax_segments, params.alphabet});
    words[i] = sax_to_string(sax, params.alphabet);
    buckets[words[i]].push_back(i);
  }

  // Outer loop: candidates from the rarest buckets first (likely discords).
  std::vector<std::size_t> order(count);
  for (std::size_t i = 0; i < count; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return buckets[words[a]].size() < buckets[words[b]].size();
  });

  DiscordResult best;
  best.distance = -1.0;
  for (const std::size_t i : order) {
    double nearest = std::numeric_limits<double>::infinity();
    bool abandoned = false;

    // Inner heuristic: same-bucket subsequences first (they are likely close,
    // driving `nearest` down quickly and enabling early abandonment).
    const auto visit = [&](std::size_t j) {
      if (abandoned || i == j) return;
      const std::size_t gap = (i > j) ? i - j : j - i;
      if (gap < window) return;
      ++best.calls;
      nearest =
          std::min(nearest, distance_early_abandon(subs[i], subs[j], nearest));
      if (nearest <= best.distance) abandoned = true;
    };

    for (const std::size_t j : buckets[words[i]]) visit(j);
    for (std::size_t j = 0; j < count && !abandoned; ++j) visit(j);

    if (!abandoned && std::isfinite(nearest) && nearest > best.distance) {
      best.distance = nearest;
      best.index = i;
    }
  }
  return best;
}

}  // namespace dynriver::ts
