// Piecewise Aggregate Approximation (paper, Section 2; Keogh et al. / Yi &
// Faloutsos).
//
// A sequence Q of length n is segmented into w <= n equal-sized subsequences
// and each segment is replaced by its mean. PAA "smoothes intra-signal
// variation and reduces pattern dimensionality". When n is not divisible by
// w, fractional frames are handled by weighting boundary samples (standard
// generalized PAA), so any (n, w) combination is valid.
#pragma once

#include <span>
#include <vector>

namespace dynriver::ts {

/// Reduce `series` to `segments` mean values.
[[nodiscard]] std::vector<float> paa(std::span<const float> series,
                                     std::size_t segments);

/// Reduce by an integer factor: output length = ceil(n / factor); each output
/// is the mean of up to `factor` consecutive samples. Matches the paper's
/// "reduced by a factor of 10 using PAA".
[[nodiscard]] std::vector<float> paa_reduce_by(std::span<const float> series,
                                               std::size_t factor);

/// Expand a PAA sequence back to length n (piecewise-constant inverse),
/// useful for visual comparison like the paper's Figure 3.
[[nodiscard]] std::vector<float> paa_inverse(std::span<const float> reduced,
                                             std::size_t n);

}  // namespace dynriver::ts
