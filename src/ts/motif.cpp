#include "ts/motif.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/contracts.hpp"
#include "ts/discord.hpp"
#include "ts/znorm.hpp"

namespace dynriver::ts {

MotifResult find_motif_brute(std::span<const float> series,
                             const MotifParams& params) {
  const std::size_t window = params.window;
  DR_EXPECTS(window >= 2);
  DR_EXPECTS(series.size() >= 2 * window);
  const std::size_t count = series.size() - window + 1;

  std::vector<std::vector<float>> subs(count);
  for (std::size_t i = 0; i < count; ++i) {
    subs[i] = znormalize(series.subspan(i, window));
  }

  MotifResult best;
  best.distance = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < count; ++i) {
    for (std::size_t j = i + window; j < count; ++j) {
      double acc = 0.0;
      const double cutoff = best.distance * best.distance;
      bool abandoned = false;
      for (std::size_t k = 0; k < window; ++k) {
        const double d =
            static_cast<double>(subs[i][k]) - static_cast<double>(subs[j][k]);
        acc += d * d;
        if (acc >= cutoff) {
          abandoned = true;
          break;
        }
      }
      if (!abandoned) {
        best.distance = std::sqrt(acc);
        best.first = i;
        best.second = j;
      }
    }
  }

  if (std::isfinite(best.distance)) {
    best.neighbors = motif_occurrences(series, window, best.first,
                                       params.radius_scale * best.distance)
                         .size();
  }
  return best;
}

std::vector<std::size_t> motif_occurrences(std::span<const float> series,
                                           std::size_t window, std::size_t center,
                                           double radius) {
  DR_EXPECTS(window >= 2);
  DR_EXPECTS(series.size() >= window);
  DR_EXPECTS(center + window <= series.size());
  const std::size_t count = series.size() - window + 1;
  const auto center_sub = znormalize(series.subspan(center, window));

  // Collect all candidates within radius, then keep a non-overlapping subset
  // greedily by increasing distance.
  std::vector<std::pair<double, std::size_t>> close;
  for (std::size_t j = 0; j < count; ++j) {
    const std::size_t gap = (center > j) ? center - j : j - center;
    if (gap != 0 && gap < window) continue;
    const auto sub = znormalize(series.subspan(j, window));
    double acc = 0.0;
    for (std::size_t k = 0; k < window; ++k) {
      const double d =
          static_cast<double>(center_sub[k]) - static_cast<double>(sub[k]);
      acc += d * d;
    }
    const double dist = std::sqrt(acc);
    if (dist <= radius) close.emplace_back(dist, j);
  }
  std::sort(close.begin(), close.end());

  std::vector<std::size_t> picked;
  for (const auto& [dist, j] : close) {
    const bool overlaps = std::any_of(
        picked.begin(), picked.end(), [&](std::size_t p) {
          const std::size_t gap = (p > j) ? p - j : j - p;
          return gap < window;
        });
    if (!overlaps) picked.push_back(j);
  }
  std::sort(picked.begin(), picked.end());
  return picked;
}

}  // namespace dynriver::ts
