// Time-series discord discovery.
//
// A discord is the subsequence least similar to all others (Keogh, Lin & Fu,
// "HOT SAX"). The paper positions ensembles as complementary to discords:
// discords need a finite series, while ensembles are found online. We
// implement both a brute-force reference and the HOT SAX heuristic ordering
// so the relationship can be studied on extracted data.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dynriver::ts {

struct DiscordResult {
  std::size_t index = 0;    ///< start of the discord subsequence
  double distance = 0.0;    ///< distance to its nearest non-self match
  std::size_t calls = 0;    ///< distance computations performed (for benches)
};

/// Z-normalized Euclidean distance between two equal-length subsequences.
[[nodiscard]] double subsequence_distance(std::span<const float> a,
                                          std::span<const float> b);

/// Brute force O(n^2) discord search. Subsequences overlapping by more than
/// zero samples are excluded as self-matches (|i - j| >= window).
[[nodiscard]] DiscordResult find_discord_brute(std::span<const float> series,
                                               std::size_t window);

struct HotSaxParams {
  std::size_t window = 64;
  std::size_t sax_segments = 4;
  std::size_t alphabet = 4;
};

/// HOT SAX: identical result to brute force, typically far fewer distance
/// calls thanks to outer-loop ordering (rare SAX words first) and early
/// abandoning in the inner loop.
[[nodiscard]] DiscordResult find_discord_hotsax(std::span<const float> series,
                                                const HotSaxParams& params);

}  // namespace dynriver::ts
