// SAX-bitmap anomaly scoring over streams (paper, Sections 2-3).
//
// Two adjacent windows slide over the signal: a *lag* window (recent past)
// and a *lead* window (most recent samples). Each window is summarized by a
// SAX bitmap; the anomaly score is the Euclidean distance between the two
// frequency matrices. A moving average smoothes score spikes into a window
// of anomalous behaviour usable by the trigger/cutter operators. The score
// rises when the signal's symbolic texture changes -- e.g. when a bird
// vocalization starts against background noise -- and falls when behaviour
// becomes homogeneous again.
//
// Paper defaults: anomaly window 100 samples, alphabet 8, moving average
// window 2250 scores.
#pragma once

#include <cmath>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/stats.hpp"
#include "ts/bitmap.hpp"
#include "ts/znorm.hpp"

namespace dynriver::ts {

struct AnomalyParams {
  std::size_t window = 100;      ///< symbols per bitmap window
  std::size_t alphabet = 8;      ///< SAX alphabet size
  std::size_t level = 2;         ///< bitmap subword length (1..3 typical)
  std::size_t ma_window = 2250;  ///< moving-average smoothing window (samples)
  /// Samples aggregated into one SAX symbol. With frame == 1 the raw sample
  /// value is symbolized (classic SAX texture). With frame > 1 each symbol
  /// encodes the log-RMS energy of a frame -- for audio this makes
  /// background noise concentrate into few symbols (low, stable score)
  /// while the on/off syllable structure of vocalizations keeps the lag and
  /// lead windows differing for the duration of the event.
  std::size_t frame = 1;

  void validate() const;

  friend bool operator==(const AnomalyParams&, const AnomalyParams&) = default;
};

/// Streaming scorer: one call per sample, O(1) amortized per call — the
/// lag/lead bitmap distance is maintained incrementally (see push_symbol_value)
/// instead of being recomputed over all alphabet^level cells per symbol.
class StreamingAnomalyScorer {
 public:
  explicit StreamingAnomalyScorer(const AnomalyParams& params);

  /// Feed one raw sample; returns the *smoothed* anomaly score aligned with
  /// this sample (0 until both windows have filled).
  ///
  /// Header-inline: in energy mode (frame > 1, the pipeline default) all
  /// but one of every `frame` samples only buffer the sample and smooth —
  /// fusing that fast path into the sessions' scoring loops removes two
  /// outlined calls per sample (measurable on multi-stream extraction);
  /// the once-per-frame symbol/bitmap work stays outlined. Frame energy is
  /// computed by the dsp::simd windowed-energy kernel over the buffered
  /// frame — the same kernel push_batch() folds over whole frames in the
  /// input, which is what makes the two paths bit-identical.
  double push(float sample) {
    if (params_.frame == 1) {
      // Classic SAX texture: symbolize the raw sample value.
      push_symbol_value(sample);
    } else {
      // Energy mode: one symbol per frame, encoding log-RMS energy.
      frame_buf_[frame_fill_] = sample;
      if (++frame_fill_ == params_.frame) complete_frame();
    }
    return ma_.push(raw_score_);
  }

  /// Feed n samples, writing the n smoothed scores to out — the same state
  /// machine as n push() calls (bit-identical for every chunking down to
  /// single samples), but whole frames fold through the dsp::simd energy
  /// kernel directly on the caller's buffer and the smoothing of unchanged
  /// raw scores runs through MovingAverage::push_run's hoisted loop.
  void push_batch(const float* x, std::size_t n, double* out);
  /// Same, casting each score to float (the record-pipeline layout).
  void push_batch(const float* x, std::size_t n, float* out);

  /// Last unsmoothed bitmap distance.
  [[nodiscard]] double raw_score() const { return raw_score_; }

  /// True once lag and lead windows are both full.
  [[nodiscard]] bool warmed_up() const;

  [[nodiscard]] const AnomalyParams& params() const { return params_; }

  /// Clear all state (start of a new clip).
  void reset();

 private:
  void push_symbol_value(float value);
  /// Energy mode, frame full: kernel-fold the buffered frame into its
  /// energy and emit the log-RMS symbol.
  void complete_frame();
  /// Symbolize a frame whose energy (sum of squares) is already folded.
  void complete_frame_energy(double energy);
  template <typename Out>
  void push_batch_impl(const float* x, std::size_t n, Out* out);
  /// Shift cell's (lag count - lead count) by delta, keeping the integer
  /// squared-difference sum exact.
  void cell_delta(std::size_t cell, std::int64_t delta);

  AnomalyParams params_;
  std::vector<double> breakpoints_;
  StreamingZnorm znorm_;
  std::deque<Symbol> symbols_;       // last `level-1` symbols for gram forming
  std::deque<std::size_t> cells_;    // gram cells, oldest first
  SaxBitmap lag_;
  SaxBitmap lead_;
  MovingAverage ma_;
  std::size_t grams_per_window_;
  // Incremental distance state: diff_[c] = lag count - lead count of cell c,
  // sq_sum_ = sum of diff^2 — both exact integers, so the incremental score
  // never drifts from a full recomputation no matter how long the stream.
  std::vector<std::int64_t> diff_;
  std::int64_t sq_sum_ = 0;
  double raw_score_ = 0.0;
  // Frame aggregation state (frame > 1): samples of the partially filled
  // frame, buffered so the energy fold runs through the same dsp::simd
  // kernel (same operation order) whether samples arrive one at a time or
  // as a whole frame inside push_batch.
  std::vector<float> frame_buf_;
  std::size_t frame_fill_ = 0;
};

/// Batch convenience: smoothed score per sample (same length as input).
[[nodiscard]] std::vector<double> anomaly_scores(std::span<const float> series,
                                                 const AnomalyParams& params);

/// Batch convenience: raw (unsmoothed) score per sample.
[[nodiscard]] std::vector<double> raw_anomaly_scores(std::span<const float> series,
                                                     const AnomalyParams& params);

}  // namespace dynriver::ts
