// Time-series motif discovery (Lin et al., "Finding motifs in time series").
//
// A motif is a frequently occurring subsequence. The paper frames ensembles
// as *candidate* motifs: locally anomalous patterns that may recur rarely.
// This module finds the closest non-overlapping subsequence pair (the
// 1-motif) and counts its neighbourhood, so extracted ensembles can be
// post-classified as motif-like (recurring) or discord-like (isolated).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dynriver::ts {

struct MotifResult {
  std::size_t first = 0;     ///< start of the first occurrence
  std::size_t second = 0;    ///< start of its closest non-overlapping match
  double distance = 0.0;     ///< z-normalized Euclidean distance
  std::size_t neighbors = 0; ///< occurrences within `radius` of `first`
};

struct MotifParams {
  std::size_t window = 64;
  /// Neighbourhood radius as a multiple of the motif pair distance
  /// (neighbour iff dist <= radius_scale * motif distance).
  double radius_scale = 2.0;
};

/// Exact closest-pair motif with self-match exclusion (|i-j| >= window).
[[nodiscard]] MotifResult find_motif_brute(std::span<const float> series,
                                           const MotifParams& params);

/// All starts whose subsequence is within `radius` of `center`'s subsequence
/// (non-overlapping with each other, greedy from best).
[[nodiscard]] std::vector<std::size_t> motif_occurrences(
    std::span<const float> series, std::size_t window, std::size_t center,
    double radius);

}  // namespace dynriver::ts
