#include "ts/bitmap.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace dynriver::ts {

namespace {
std::size_t int_pow(std::size_t base, std::size_t exp) {
  std::size_t result = 1;
  for (std::size_t i = 0; i < exp; ++i) result *= base;
  return result;
}
}  // namespace

SaxBitmap::SaxBitmap(std::size_t alphabet, std::size_t level)
    : alphabet_(alphabet), level_(level) {
  DR_EXPECTS(alphabet >= 2 && alphabet <= 64);
  DR_EXPECTS(level >= 1 && level <= 4);
  counts_.assign(int_pow(alphabet, level), 0);
}

std::size_t SaxBitmap::cell_index(std::span<const Symbol> subword) const {
  DR_EXPECTS(subword.size() == level_);
  std::size_t idx = 0;
  for (const Symbol s : subword) {
    DR_EXPECTS(s < alphabet_);
    idx = idx * alphabet_ + s;
  }
  return idx;
}

void SaxBitmap::add_cell(std::size_t cell) {
  DR_EXPECTS(cell < counts_.size());
  ++counts_[cell];
  ++total_;
}

void SaxBitmap::remove_cell(std::size_t cell) {
  DR_EXPECTS(cell < counts_.size());
  DR_EXPECTS(counts_[cell] > 0);
  --counts_[cell];
  --total_;
}

void SaxBitmap::add_all(std::span<const Symbol> symbols) {
  if (symbols.size() < level_) return;
  for (std::size_t i = 0; i + level_ <= symbols.size(); ++i) {
    add(symbols.subspan(i, level_));
  }
}

std::vector<double> SaxBitmap::frequencies() const {
  std::vector<double> freq(counts_.size(), 0.0);
  if (total_ == 0) return freq;
  const double inv = 1.0 / static_cast<double>(total_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    freq[i] = static_cast<double>(counts_[i]) * inv;
  }
  return freq;
}

void SaxBitmap::clear() {
  counts_.assign(counts_.size(), 0);
  total_ = 0;
}

double bitmap_distance(const SaxBitmap& a, const SaxBitmap& b) {
  DR_EXPECTS(a.alphabet() == b.alphabet());
  DR_EXPECTS(a.level() == b.level());
  const auto fa = a.frequencies();
  const auto fb = b.frequencies();
  double acc = 0.0;
  for (std::size_t i = 0; i < fa.size(); ++i) {
    const double d = fa[i] - fb[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

}  // namespace dynriver::ts
