#include "ts/anomaly.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "dsp/simd.hpp"

namespace dynriver::ts {

void AnomalyParams::validate() const {
  DR_EXPECTS(window >= 4);
  DR_EXPECTS(alphabet >= 2 && alphabet <= 64);
  DR_EXPECTS(level >= 1 && level <= 4);
  DR_EXPECTS(window > level);
  DR_EXPECTS(ma_window >= 1);
  DR_EXPECTS(frame >= 1);
}

StreamingAnomalyScorer::StreamingAnomalyScorer(const AnomalyParams& params)
    : params_(params),
      breakpoints_(sax_breakpoints(params.alphabet)),
      lag_(params.alphabet, params.level),
      lead_(params.alphabet, params.level),
      ma_(params.ma_window),
      grams_per_window_(params.window - params.level + 1),
      diff_(lag_.cells(), 0),
      frame_buf_(params.frame > 1 ? params.frame : 0, 0.0F) {
  params.validate();
}

void StreamingAnomalyScorer::complete_frame() {
  complete_frame_energy(
      dsp::simd::sum_squares_f32(frame_buf_.data(), params_.frame));
}

void StreamingAnomalyScorer::complete_frame_energy(double energy) {
  const double rms = std::sqrt(energy / static_cast<double>(params_.frame));
  push_symbol_value(static_cast<float>(std::log(rms + 1e-8)));
  frame_fill_ = 0;
}

template <typename Out>
void StreamingAnomalyScorer::push_batch_impl(const float* x, std::size_t n,
                                             Out* out) {
  std::size_t i = 0;
  if (params_.frame == 1) {
    for (; i < n; ++i) {
      push_symbol_value(x[i]);
      out[i] = static_cast<Out>(ma_.push(raw_score_));
    }
    return;
  }
  const std::size_t f = params_.frame;
  // Head: a frame already partially buffered by earlier push() calls must
  // finish through the per-sample path.
  for (; i < n && frame_fill_ != 0; ++i) out[i] = static_cast<Out>(push(x[i]));
  // Whole frames, straight off the caller's buffer: the first f-1 samples
  // of a frame smooth an unchanged raw score (one push_run), the energy
  // folds through the same simd kernel push() applies to its buffered copy,
  // and the frame's last sample smooths the fresh score. Identical
  // per-sample operation sequence to f push() calls — no copy, no
  // per-sample frame bookkeeping.
  for (; n - i >= f; i += f) {
    const double energy = dsp::simd::sum_squares_f32(x + i, f);
    ma_.push_run(raw_score_, f - 1, out + i);
    complete_frame_energy(energy);
    out[i + f - 1] = static_cast<Out>(ma_.push(raw_score_));
  }
  // Tail: buffer the partial frame for subsequent calls.
  for (; i < n; ++i) out[i] = static_cast<Out>(push(x[i]));
}

void StreamingAnomalyScorer::push_batch(const float* x, std::size_t n,
                                        double* out) {
  push_batch_impl(x, n, out);
}

void StreamingAnomalyScorer::push_batch(const float* x, std::size_t n,
                                        float* out) {
  push_batch_impl(x, n, out);
}

void StreamingAnomalyScorer::cell_delta(std::size_t cell, std::int64_t delta) {
  // (d + delta)^2 - d^2 = delta * (2d + delta), all in exact integers.
  std::int64_t& d = diff_[cell];
  sq_sum_ += delta * (2 * d + delta);
  d += delta;
}

bool StreamingAnomalyScorer::warmed_up() const {
  return lag_.total() == grams_per_window_ && lead_.total() == grams_per_window_;
}

void StreamingAnomalyScorer::push_symbol_value(float value) {
  const float z = znorm_.push(value);
  const Symbol sym = discretize_value(static_cast<double>(z), breakpoints_);

  symbols_.push_back(sym);
  if (symbols_.size() < params_.level) {
    raw_score_ = 0.0;
    return;
  }
  // Form the newest gram from the trailing `level` symbols.
  std::size_t cell = 0;
  for (std::size_t i = symbols_.size() - params_.level; i < symbols_.size(); ++i) {
    cell = cell * params_.alphabet + symbols_[i];
  }
  if (symbols_.size() > params_.level) symbols_.pop_front();

  cells_.push_back(cell);
  lead_.add_cell(cell);
  cell_delta(cell, -1);

  if (lead_.total() > grams_per_window_) {
    // The oldest lead gram crosses the boundary into the lag window: its
    // lag count gains one and its lead count loses one.
    const std::size_t boundary = cells_[cells_.size() - 1 - grams_per_window_];
    lead_.remove_cell(boundary);
    lag_.add_cell(boundary);
    cell_delta(boundary, 2);
  }
  if (lag_.total() > grams_per_window_) {
    cell_delta(cells_.front(), -1);
    lag_.remove_cell(cells_.front());
    cells_.pop_front();
  }

  // Once warmed up both windows hold exactly grams_per_window_ grams, so the
  // bitmap distance reduces to sqrt(sum (lag_count - lead_count)^2) / total
  // — and sq_sum_ tracks that sum incrementally. O(1) per symbol instead of
  // bitmap_distance's O(alphabet^level) walk plus two frequency allocations,
  // which dominated full-clip extraction.
  raw_score_ = warmed_up() ? std::sqrt(static_cast<double>(sq_sum_)) /
                                 static_cast<double>(grams_per_window_)
                           : 0.0;
}

void StreamingAnomalyScorer::reset() {
  znorm_.reset();
  symbols_.clear();
  cells_.clear();
  lag_.clear();
  lead_.clear();
  ma_.reset();
  diff_.assign(diff_.size(), 0);
  sq_sum_ = 0;
  raw_score_ = 0.0;
  frame_fill_ = 0;
}

std::vector<double> anomaly_scores(std::span<const float> series,
                                   const AnomalyParams& params) {
  StreamingAnomalyScorer scorer(params);
  std::vector<double> out(series.size());
  scorer.push_batch(series.data(), series.size(), out.data());
  return out;
}

std::vector<double> raw_anomaly_scores(std::span<const float> series,
                                       const AnomalyParams& params) {
  StreamingAnomalyScorer scorer(params);
  std::vector<double> out(series.size());
  for (std::size_t i = 0; i < series.size(); ++i) {
    scorer.push(series[i]);
    out[i] = scorer.raw_score();
  }
  return out;
}

}  // namespace dynriver::ts
