#include "ts/paa.hpp"

#include "common/contracts.hpp"
#include "dsp/simd.hpp"

namespace dynriver::ts {

std::vector<float> paa(std::span<const float> series, std::size_t segments) {
  DR_EXPECTS(segments >= 1);
  DR_EXPECTS(!series.empty());
  DR_EXPECTS(segments <= series.size());

  const std::size_t n = series.size();
  std::vector<float> out(segments, 0.0F);

  if (n % segments == 0) {
    dsp::simd::segment_means_f32(series.data(), segments, n / segments,
                                 out.data());
    return out;
  }

  // Generalized PAA: sample i contributes to segment floor(i*w/n) with
  // fractional weighting at segment boundaries.
  std::vector<double> acc(segments, 0.0);
  const double seg_len = static_cast<double>(n) / static_cast<double>(segments);
  for (std::size_t i = 0; i < n; ++i) {
    const double lo = static_cast<double>(i);
    const double hi = lo + 1.0;
    std::size_t s0 = static_cast<std::size_t>(lo / seg_len);
    std::size_t s1 = static_cast<std::size_t>((hi - 1e-12) / seg_len);
    s0 = std::min(s0, segments - 1);
    s1 = std::min(s1, segments - 1);
    if (s0 == s1) {
      acc[s0] += static_cast<double>(series[i]);
    } else {
      // Sample straddles a boundary: split its unit mass proportionally.
      const double boundary = static_cast<double>(s1) * seg_len;
      acc[s0] += static_cast<double>(series[i]) * (boundary - lo);
      acc[s1] += static_cast<double>(series[i]) * (hi - boundary);
    }
  }
  for (std::size_t s = 0; s < segments; ++s) {
    out[s] = static_cast<float>(acc[s] / seg_len);
  }
  return out;
}

std::vector<float> paa_reduce_by(std::span<const float> series, std::size_t factor) {
  DR_EXPECTS(factor >= 1);
  if (series.empty()) return {};
  const std::size_t n = series.size();
  const std::size_t segments = (n + factor - 1) / factor;
  std::vector<float> out(segments);
  // Kernel-fold the full segments; only a ragged last segment (n % factor
  // samples) needs its own shorter mean.
  const std::size_t full = n / factor;
  dsp::simd::segment_means_f32(series.data(), full, factor, out.data());
  if (full < segments) {
    const std::size_t lo = full * factor;
    out[full] = static_cast<float>(dsp::simd::sum_f32(series.data() + lo, n - lo) /
                                   static_cast<double>(n - lo));
  }
  return out;
}

std::vector<float> paa_inverse(std::span<const float> reduced, std::size_t n) {
  DR_EXPECTS(!reduced.empty());
  DR_EXPECTS(n >= reduced.size());
  std::vector<float> out(n);
  const std::size_t w = reduced.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t s = std::min(i * w / n, w - 1);
    out[i] = reduced[s];
  }
  return out;
}

}  // namespace dynriver::ts
