// Z-normalization (paper, Section 2).
//
// An original sequence Q is Z-normalized element-wise: q_i = (q_i - mu) / sigma,
// where mu is the vector mean and sigma the standard deviation.
// Z-normalization "helps equalize similar acoustic patterns that differ in
// signal strength".
#pragma once

#include <span>
#include <vector>

namespace dynriver::ts {

/// Standard deviation floor: sequences with sigma below this are treated as
/// constant and normalize to all-zeros instead of amplifying noise.
inline constexpr double kZnormEpsilon = 1e-8;

/// Z-normalize out of place.
[[nodiscard]] std::vector<float> znormalize(std::span<const float> series);

/// Z-normalize in place.
void znormalize_inplace(std::span<float> series);

/// Incremental Z-normalizer for streaming use: tracks mean/std over all
/// samples seen so far and normalizes each new sample against them.
class StreamingZnorm {
 public:
  /// Observe a sample and return its normalized value. Until enough samples
  /// have arrived to estimate spread (2 samples), returns 0.
  float push(float x);

  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double stddev() const;
  [[nodiscard]] std::size_t count() const { return count_; }
  void reset();

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace dynriver::ts
