// Symbolic Aggregate approXimation (SAX; Lin, Keogh, Lonardi & Chiu).
//
// SAX converts a (Z-normalized, PAA-reduced) sequence to symbols such that
// each symbol appears with equal probability under the Gaussian assumption
// (paper, Section 2 / Figure 4). Breakpoints are the (i/a)-quantiles of the
// standard normal distribution, computed for any alphabet size with an
// inverse-normal-CDF approximation rather than a fixed lookup table.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace dynriver::ts {

using Symbol = std::uint8_t;

/// Inverse standard-normal CDF (Acklam's rational approximation; |error| <
/// 1.15e-9 over (0,1)). Exposed for tests.
[[nodiscard]] double inverse_normal_cdf(double p);

/// The a-1 breakpoints dividing N(0,1) into `alphabet` equiprobable regions.
/// alphabet must be in [2, 64].
[[nodiscard]] std::vector<double> sax_breakpoints(std::size_t alphabet);

/// Discretize already-normalized values against the given breakpoints.
/// Symbol i means the value lies in region i (0-based, low to high).
[[nodiscard]] std::vector<Symbol> discretize(std::span<const float> normalized,
                                             std::span<const double> breakpoints);

/// One-value discretization (streaming use).
[[nodiscard]] Symbol discretize_value(double normalized,
                                      std::span<const double> breakpoints);

struct SaxParams {
  std::size_t segments = 0;  ///< PAA segments (0 = one symbol per sample)
  std::size_t alphabet = 8;
};

/// Full SAX pipeline: Z-normalize -> PAA(segments) -> discretize.
[[nodiscard]] std::vector<Symbol> to_sax(std::span<const float> series,
                                         const SaxParams& params);

/// Display helper: symbol i -> letter 'a'+i (or its 1-based integer string
/// when the alphabet exceeds 26, matching the paper's integer rendering).
[[nodiscard]] std::string sax_to_string(std::span<const Symbol> symbols,
                                        std::size_t alphabet);

/// MINDIST lower bound between two equal-length SAX words (Lin et al.),
/// given the original series length n. Used by HOT SAX style pruning.
[[nodiscard]] double sax_min_dist(std::span<const Symbol> a,
                                  std::span<const Symbol> b, std::size_t n,
                                  std::size_t alphabet);

}  // namespace dynriver::ts
