#include "ts/sax.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "dsp/simd.hpp"
#include "ts/paa.hpp"
#include "ts/znorm.hpp"

namespace dynriver::ts {

double inverse_normal_cdf(double p) {
  DR_EXPECTS(p > 0.0 && p < 1.0);

  // Acklam's algorithm: rational approximations on three regions.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;

  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

std::vector<double> sax_breakpoints(std::size_t alphabet) {
  DR_EXPECTS(alphabet >= 2 && alphabet <= 64);
  std::vector<double> breaks(alphabet - 1);
  for (std::size_t i = 1; i < alphabet; ++i) {
    breaks[i - 1] = inverse_normal_cdf(static_cast<double>(i) /
                                       static_cast<double>(alphabet));
  }
  return breaks;
}

Symbol discretize_value(double normalized, std::span<const double> breakpoints) {
  // Branchless count of breakpoints <= value: for sorted breakpoints this is
  // exactly the index the "scan until value < breakpoint" search returns,
  // without the unpredictable early-exit branch (values land on either side
  // of the middle breakpoints by construction of the Gaussian bins).
  unsigned sym = 0;
  for (const double b : breakpoints) sym += normalized >= b ? 1U : 0U;
  return static_cast<Symbol>(sym);
}

std::vector<Symbol> discretize(std::span<const float> normalized,
                               std::span<const double> breakpoints) {
  std::vector<Symbol> out(normalized.size());
  dsp::simd::discretize_f32(normalized.data(), normalized.size(),
                            breakpoints.data(), breakpoints.size(), out.data());
  return out;
}

std::vector<Symbol> to_sax(std::span<const float> series, const SaxParams& params) {
  DR_EXPECTS(!series.empty());
  const auto normalized = znormalize(series);
  const auto breakpoints = sax_breakpoints(params.alphabet);
  if (params.segments == 0 || params.segments == series.size()) {
    return discretize(normalized, breakpoints);
  }
  const auto reduced = paa(normalized, params.segments);
  return discretize(reduced, breakpoints);
}

std::string sax_to_string(std::span<const Symbol> symbols, std::size_t alphabet) {
  std::string out;
  if (alphabet <= 26) {
    out.reserve(symbols.size());
    for (const Symbol s : symbols) out += static_cast<char>('a' + s);
    return out;
  }
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    if (i > 0) out += ' ';
    out += std::to_string(static_cast<int>(symbols[i]) + 1);
  }
  return out;
}

double sax_min_dist(std::span<const Symbol> a, std::span<const Symbol> b,
                    std::size_t n, std::size_t alphabet) {
  DR_EXPECTS(a.size() == b.size());
  DR_EXPECTS(!a.empty());
  const auto breaks = sax_breakpoints(alphabet);

  // dist(r, c) = 0 when |r - c| <= 1, else beta[max(r,c)-1] - beta[min(r,c)].
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const int r = static_cast<int>(a[i]);
    const int c = static_cast<int>(b[i]);
    if (std::abs(r - c) <= 1) continue;
    const int hi = std::max(r, c);
    const int lo = std::min(r, c);
    const double d = breaks[static_cast<std::size_t>(hi - 1)] -
                     breaks[static_cast<std::size_t>(lo)];
    acc += d * d;
  }
  const double w = static_cast<double>(a.size());
  return std::sqrt(static_cast<double>(n) / w) * std::sqrt(acc);
}

}  // namespace dynriver::ts
