#include "ts/znorm.hpp"

#include <cmath>

#include "dsp/simd.hpp"

namespace dynriver::ts {

std::vector<float> znormalize(std::span<const float> series) {
  std::vector<float> out(series.begin(), series.end());
  znormalize_inplace(out);
  return out;
}

void znormalize_inplace(std::span<float> series) {
  if (series.empty()) return;
  // One fused mean/variance sweep plus one vectorized apply sweep, instead
  // of the former three passes (mean, centered squares, apply).
  double mu = 0.0;
  double var = 0.0;
  dsp::simd::mean_var_f32(series.data(), series.size(), &mu, &var);
  const double sigma = std::sqrt(var);
  if (sigma < kZnormEpsilon) {
    for (auto& v : series) v = 0.0F;
    return;
  }
  dsp::simd::normalize_f32(series.data(), series.data(), series.size(),
                           static_cast<float>(mu),
                           static_cast<float>(1.0 / sigma));
}

float StreamingZnorm::push(float x) {
  ++count_;
  const double delta = static_cast<double>(x) - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (static_cast<double>(x) - mean_);
  const double sigma = stddev();
  if (count_ < 2 || sigma < kZnormEpsilon) return 0.0F;
  return static_cast<float>((static_cast<double>(x) - mean_) / sigma);
}

double StreamingZnorm::stddev() const {
  if (count_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(count_));
}

void StreamingZnorm::reset() {
  count_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
}

}  // namespace dynriver::ts
