// The ensemble-extraction segment: saxanomaly -> trigger -> cutter
// (paper, Section 3, Figure 5).
//
// saxanomaly outputs the moving average of the SAX bitmap anomaly score in
// addition to the original acoustic data. trigger transforms the score into
// a discrete 0/1 signal using an adaptive threshold (mu0 + k*sigma0 estimated
// over untriggered scores). cutter consumes both streams and cuts the
// original signal into ensembles delimited by OpenScope/CloseScope pairs of
// scope type `scope_ensemble`, nested inside the clip scope.
#pragma once

#include <cmath>
#include <optional>
#include <vector>

#include "core/params.hpp"
#include "core/stream_cutter.hpp"
#include "river/operator.hpp"
#include "ts/anomaly.hpp"

namespace dynriver::core {

/// saxanomaly: per audio Data record, forwards the original record and emits
/// a parallel kSubtypeAnomalyScore record of smoothed per-sample scores.
/// Scorer state resets at every clip OpenScope.
class SaxAnomalyOp final : public river::Operator {
 public:
  explicit SaxAnomalyOp(const ts::AnomalyParams& params);

  void process(river::Record rec, river::Emitter& out) override;
  [[nodiscard]] std::string_view name() const override { return "saxanomaly"; }

 private:
  ts::StreamingAnomalyScorer scorer_;
};

/// Sample-wise adaptive trigger state machine, shared by the TriggerOp
/// operator and the batch extraction facade.
///
/// mu0/sigma0 are estimated incrementally from scores observed while the
/// trigger is 0; the trigger emits 1 while score > mu0 + sigma_threshold *
/// sigma0 (after a minimum baseline has accumulated).
class TriggerState {
 public:
  /// `hold_samples` keeps the trigger active for that many consecutive
  /// below-threshold samples before releasing -- bridging brief lulls inside
  /// a vocalization (e.g. syllable interiors) so one song cuts as one
  /// ensemble rather than fragments.
  TriggerState(double sigma_threshold, std::size_t min_baseline,
               std::size_t hold_samples = 0);

  /// Feed one (smoothed) anomaly score; returns the trigger value (0 or 1).
  /// Header-inline: one call per sample in every session/operator scoring
  /// loop — outlined, the call plus the baseline update were a measurable
  /// slice of per-sample extraction cost.
  [[nodiscard]] bool push(double score) {
    // The anomaly scorer emits exact zeros until its windows warm up;
    // feeding them into the baseline would zero sigma0 and make the first
    // real score fire the trigger spuriously.
    if (!seen_nonzero_) {
      if (score == 0.0) return false;
      seen_nonzero_ = true;
    }

    // Decision in squared space: score > mu0 + sigma_threshold*sigma0 with
    // d = score - mu0 is (d > 0) && (d^2 * count > sigma_threshold^2 * m2),
    // since sigma0^2 = m2/count. Same decision as the literal formula
    // (both sides non-negative, squaring is monotonic) but division- and
    // sqrt-free — the old per-sample stddev() dominated this loop.
    const double d = score - mean_;
    const bool above = count_ >= min_baseline_ && d > 0.0 &&
                       d * d * static_cast<double>(count_) > sigma_sq_ * m2_;
    if (above) {
      active_ = true;
      below_count_ = 0;
      return true;
    }
    if (active_ && below_count_ < hold_samples_) {
      // Hold: bridge brief lulls without updating the baseline.
      ++below_count_;
      return true;
    }
    // Untriggered scores feed the incremental mu0/sigma0 estimate; scores
    // seen while triggered are deliberately excluded so events do not
    // poison the baseline. Welford, with the divide hoisted out of the
    // mean_ dependency chain: 1/count depends only on the sample counter,
    // so the division pipelines ahead of the serial add+multiply chain
    // instead of stalling it (a measurable slice of per-sample cost).
    active_ = false;
    below_count_ = 0;
    ++count_;
    mean_ += d * (1.0 / static_cast<double>(count_));
    m2_ += d * (score - mean_);
    return false;
  }

  [[nodiscard]] double mu0() const { return mean_; }
  [[nodiscard]] double sigma0() const {
    return count_ < 2 ? 0.0
                      : std::sqrt(m2_ / static_cast<double>(count_));
  }
  [[nodiscard]] double threshold() const {
    return mu0() + sigma_threshold_ * sigma0();
  }
  [[nodiscard]] bool active() const { return active_; }
  void reset();

  /// Re-tune the decision thresholds while keeping the accumulated
  /// mu0/sigma0 baseline (live session re-parameterization). Callers should
  /// be between trigger runs (active() false) so no run straddles the
  /// old and new rules; StreamSession::reconfigure guarantees that.
  void set_thresholding(double sigma_threshold, std::size_t min_baseline,
                        std::size_t hold_samples);

 private:
  double sigma_threshold_;
  double sigma_sq_;  ///< sigma_threshold_^2, for the squared-space decision
  std::size_t min_baseline_;
  std::size_t hold_samples_;
  /// Inline Welford baseline (mu0/sigma0 over untriggered scores). Kept as
  /// raw members rather than a RunningStats so push() can fold the decision
  /// and the update over one shared `d = score - mean_` without an outlined
  /// variance call per sample.
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  bool active_ = false;
  bool seen_nonzero_ = false;  // skip the scorer's warmup zeros
  std::size_t below_count_ = 0;
};

/// trigger: consumes kSubtypeAnomalyScore records (dropping them) and emits
/// kSubtypeTrigger records of equal length with values in {0, 1}. All other
/// records pass through. State resets at every clip OpenScope.
class TriggerOp final : public river::Operator {
 public:
  TriggerOp(double sigma_threshold, std::size_t min_baseline,
            std::size_t hold_samples = 0);

  void process(river::Record rec, river::Emitter& out) override;
  [[nodiscard]] std::string_view name() const override { return "trigger"; }

 private:
  TriggerState state_;
};

/// cutter: pairs audio records with trigger records sample-by-sample and
/// cuts out the stretches where the trigger is 1 as ensembles. Each ensemble
/// is emitted as OpenScope(scope_ensemble) + audio Data records +
/// CloseScope, nested inside the enclosing clip scope. Clip attributes
/// (sample rate, clip id, ground-truth labels) are copied onto each ensemble
/// OpenScope together with its start sample and length; ensembles shorter
/// than `min_ensemble_samples` are suppressed.
///
/// The pending/merge-gap/length-floor decisions are NOT implemented here:
/// the operator delegates to detail::StreamCutter — the same automaton
/// behind StreamSession — and only handles record pairing, clip scopes, and
/// ensemble serialization. The operator pipeline and the sessions therefore
/// cannot diverge (bit-identity is pinned by tests/test_core_ops.cpp).
class CutterOp final : public river::Operator {
 public:
  explicit CutterOp(const PipelineParams& params);

  void process(river::Record rec, river::Emitter& out) override;
  void flush(river::Emitter& out) override;
  [[nodiscard]] std::string_view name() const override { return "cutter"; }

  /// Total ensembles emitted (across all clips).
  [[nodiscard]] std::size_t ensembles_emitted() const { return ensembles_; }

 private:
  void pump(river::Emitter& out);
  void emit_ready(river::Emitter& out, bool bad);
  void emit_cut(river::Emitter& out, detail::StreamCutter::Cut cut, bool bad);

  PipelineParams params_;
  // Clip context.
  river::AttrMap clip_attrs_;
  std::uint32_t clip_depth_ = 0;
  bool in_clip_ = false;
  // Paired FIFOs (samples).
  std::vector<float> audio_fifo_;
  std::vector<float> trigger_fifo_;
  /// The shared trigger-run -> gap-merge -> length-floor automaton
  /// (reset per clip; its frame index is the clip sample cursor).
  detail::StreamCutter cutter_;
  std::size_t ensembles_ = 0;
  std::uint64_t next_ensemble_id_ = 0;
};

}  // namespace dynriver::core
