// The ensemble-extraction segment: saxanomaly -> trigger -> cutter
// (paper, Section 3, Figure 5).
//
// saxanomaly outputs the moving average of the SAX bitmap anomaly score in
// addition to the original acoustic data. trigger transforms the score into
// a discrete 0/1 signal using an adaptive threshold (mu0 + k*sigma0 estimated
// over untriggered scores). cutter consumes both streams and cuts the
// original signal into ensembles delimited by OpenScope/CloseScope pairs of
// scope type `scope_ensemble`, nested inside the clip scope.
#pragma once

#include <optional>
#include <vector>

#include "common/stats.hpp"
#include "core/params.hpp"
#include "river/operator.hpp"
#include "ts/anomaly.hpp"

namespace dynriver::core {

/// saxanomaly: per audio Data record, forwards the original record and emits
/// a parallel kSubtypeAnomalyScore record of smoothed per-sample scores.
/// Scorer state resets at every clip OpenScope.
class SaxAnomalyOp final : public river::Operator {
 public:
  explicit SaxAnomalyOp(const ts::AnomalyParams& params);

  void process(river::Record rec, river::Emitter& out) override;
  [[nodiscard]] std::string_view name() const override { return "saxanomaly"; }

 private:
  ts::StreamingAnomalyScorer scorer_;
};

/// Sample-wise adaptive trigger state machine, shared by the TriggerOp
/// operator and the batch extraction facade.
///
/// mu0/sigma0 are estimated incrementally from scores observed while the
/// trigger is 0; the trigger emits 1 while score > mu0 + sigma_threshold *
/// sigma0 (after a minimum baseline has accumulated).
class TriggerState {
 public:
  /// `hold_samples` keeps the trigger active for that many consecutive
  /// below-threshold samples before releasing -- bridging brief lulls inside
  /// a vocalization (e.g. syllable interiors) so one song cuts as one
  /// ensemble rather than fragments.
  TriggerState(double sigma_threshold, std::size_t min_baseline,
               std::size_t hold_samples = 0);

  /// Feed one (smoothed) anomaly score; returns the trigger value (0 or 1).
  [[nodiscard]] bool push(double score);

  [[nodiscard]] double mu0() const { return baseline_.mean(); }
  [[nodiscard]] double sigma0() const { return baseline_.stddev(); }
  [[nodiscard]] double threshold() const;
  [[nodiscard]] bool active() const { return active_; }
  void reset();

 private:
  double sigma_threshold_;
  std::size_t min_baseline_;
  std::size_t hold_samples_;
  dynriver::RunningStats baseline_;
  bool active_ = false;
  bool seen_nonzero_ = false;  // skip the scorer's warmup zeros
  std::size_t below_count_ = 0;
};

/// trigger: consumes kSubtypeAnomalyScore records (dropping them) and emits
/// kSubtypeTrigger records of equal length with values in {0, 1}. All other
/// records pass through. State resets at every clip OpenScope.
class TriggerOp final : public river::Operator {
 public:
  TriggerOp(double sigma_threshold, std::size_t min_baseline,
            std::size_t hold_samples = 0);

  void process(river::Record rec, river::Emitter& out) override;
  [[nodiscard]] std::string_view name() const override { return "trigger"; }

 private:
  TriggerState state_;
};

/// cutter: pairs audio records with trigger records sample-by-sample and
/// cuts out the stretches where the trigger is 1 as ensembles. Each ensemble
/// is emitted as OpenScope(scope_ensemble) + audio Data records +
/// CloseScope, nested inside the enclosing clip scope. Clip attributes
/// (sample rate, clip id, ground-truth labels) are copied onto each ensemble
/// OpenScope together with its start sample and length; ensembles shorter
/// than `min_ensemble_samples` are suppressed.
class CutterOp final : public river::Operator {
 public:
  explicit CutterOp(const PipelineParams& params);

  void process(river::Record rec, river::Emitter& out) override;
  void flush(river::Emitter& out) override;
  [[nodiscard]] std::string_view name() const override { return "cutter"; }

  /// Total ensembles emitted (across all clips).
  [[nodiscard]] std::size_t ensembles_emitted() const { return ensembles_; }

 private:
  void pump(river::Emitter& out);
  void begin_ensemble(std::size_t start_sample);
  void end_ensemble(river::Emitter& out, bool bad);

  PipelineParams params_;
  // Clip context.
  river::AttrMap clip_attrs_;
  std::uint32_t clip_depth_ = 0;
  std::size_t clip_sample_cursor_ = 0;
  bool in_clip_ = false;
  // Paired FIFOs (samples).
  std::vector<float> audio_fifo_;
  std::vector<float> trigger_fifo_;
  // Current/pending ensemble. While `cutting_`, samples append to
  // ensemble_buf_. After the trigger releases the ensemble stays *pending*:
  // if the trigger re-fires within merge_gap_samples, the buffered gap is
  // absorbed and the same ensemble continues; otherwise it is finalized.
  bool cutting_ = false;
  std::size_t ensemble_start_ = 0;
  std::vector<float> ensemble_buf_;
  std::vector<float> gap_buf_;
  std::size_t ensembles_ = 0;
  std::uint64_t next_ensemble_id_ = 0;
};

}  // namespace dynriver::core
