// Batch feature extraction facade: ensemble samples -> patterns.
//
// Mirrors the spectral pipeline segment (reslice, welchwindow, float2cplx,
// dft, cabs, cutout, paa, rec2vect) as direct DSP calls. Equivalence with
// the river operators is covered by integration tests.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/params.hpp"
#include "core/spectral_engine.hpp"

namespace dynriver::core {

class FeatureExtractor {
 public:
  /// `engine` lets several extractors (and river pipelines) share one
  /// SpectralEngine; nullptr builds a private engine from `params`.
  explicit FeatureExtractor(PipelineParams params,
                            std::shared_ptr<const SpectralEngine> engine = nullptr);

  /// Compute the spectrum (post-cutout, post-PAA) of one analysis record.
  [[nodiscard]] std::vector<float> record_spectrum(
      std::span<const float> record) const;

  /// Full pattern extraction for one ensemble: returns patterns of
  /// params().features_per_pattern() floats each. Ensembles too short to
  /// fill one pattern yield an empty vector. All full-size records
  /// (originals and 50%-overlap reslices) run through one batched spectral
  /// call (SpectralEngine::windowed_magnitudes_batch); only a trailing
  /// partial record is transformed singly.
  [[nodiscard]] std::vector<std::vector<float>> patterns(
      std::span<const float> ensemble) const;

  [[nodiscard]] const PipelineParams& params() const { return params_; }
  [[nodiscard]] const std::shared_ptr<const SpectralEngine>& engine() const {
    return engine_;
  }

 private:
  /// Cutout band + optional PAA of one dft_size magnitude row.
  [[nodiscard]] std::vector<float> band_of(std::span<const float> mags) const;

  PipelineParams params_;
  std::shared_ptr<const SpectralEngine> engine_;
};

}  // namespace dynriver::core
