// Batch ensemble extraction facade.
//
// EnsembleExtractor applies the saxanomaly -> trigger -> cutter logic
// directly to a sample buffer, without pipeline plumbing. It is semantically
// identical to running the river operators (verified by integration tests)
// and is convenient for analysis code, tests, and the figure benches.
#pragma once

#include <span>
#include <vector>

#include "core/params.hpp"

namespace dynriver::core {

/// One extracted ensemble: a contiguous stretch of the original signal where
/// the trigger was active.
struct Ensemble {
  std::size_t start_sample = 0;
  std::vector<float> samples;

  [[nodiscard]] std::size_t end_sample() const {
    return start_sample + samples.size();
  }
  [[nodiscard]] std::size_t length() const { return samples.size(); }
};

struct ExtractionResult {
  std::vector<Ensemble> ensembles;
  /// Smoothed anomaly score per input sample (filled when keep_signals).
  std::vector<float> scores;
  /// Trigger value per input sample (filled when keep_signals).
  std::vector<std::uint8_t> trigger;

  /// Samples retained across all ensembles.
  [[nodiscard]] std::size_t retained_samples() const;
  /// 1 - retained/total: the paper's headline data reduction (~80.6%).
  [[nodiscard]] double reduction_fraction(std::size_t total_samples) const;
};

class EnsembleExtractor {
 public:
  explicit EnsembleExtractor(PipelineParams params);

  /// Extract all ensembles from a clip. `keep_signals` additionally returns
  /// the per-sample score and trigger series (Fig. 6).
  [[nodiscard]] ExtractionResult extract(std::span<const float> samples,
                                         bool keep_signals = false) const;

  [[nodiscard]] const PipelineParams& params() const { return params_; }

 private:
  PipelineParams params_;
};

}  // namespace dynriver::core
