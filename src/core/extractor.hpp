// Batch ensemble extraction facade.
//
// EnsembleExtractor is a thin wrapper over core::StreamSession: extract()
// opens a session with full-history signal taps, pushes the whole clip, and
// finishes — so batch and chunked execution share one code path and are
// bit-identical by construction. It is semantically identical to running
// the river operators (verified by integration tests) and is convenient for
// analysis code, tests, and the figure benches; long-running ingest should
// use StreamSession directly (bounded memory, ensembles as they close).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/features.hpp"
#include "core/params.hpp"
#include "river/sample_io.hpp"

namespace dynriver::core {

/// One extracted ensemble: a contiguous stretch of the original signal where
/// the trigger was active. Defined with the stream adapters (sinks persist
/// and ship it); aliased here for the extraction-facing spelling.
using Ensemble = river::Ensemble;

struct ExtractionResult {
  std::vector<Ensemble> ensembles;
  /// Smoothed anomaly score per input sample (filled when keep_signals).
  std::vector<float> scores;
  /// Trigger value per input sample (filled when keep_signals).
  std::vector<std::uint8_t> trigger;

  /// Samples retained across all ensembles.
  [[nodiscard]] std::size_t retained_samples() const;
  /// 1 - retained/total: the paper's headline data reduction (~80.6%).
  [[nodiscard]] double reduction_fraction(std::size_t total_samples) const;
};

class EnsembleExtractor {
 public:
  /// `engine` lets the extractor share one SpectralEngine with other
  /// spectral consumers (FeatureExtractor, river pipelines); nullptr builds
  /// a private engine from `params`.
  explicit EnsembleExtractor(PipelineParams params,
                             std::shared_ptr<const SpectralEngine> engine = nullptr);

  /// Extract all ensembles from a clip. `keep_signals` additionally returns
  /// the per-sample score and trigger series (Fig. 6).
  [[nodiscard]] ExtractionResult extract(std::span<const float> samples,
                                         bool keep_signals = false) const;

  /// Spectral patterns of one extracted ensemble, computed through the
  /// shared engine (equivalent to FeatureExtractor::patterns).
  [[nodiscard]] std::vector<std::vector<float>> featurize(
      const Ensemble& ensemble) const;

  [[nodiscard]] const PipelineParams& params() const { return params_; }
  [[nodiscard]] const std::shared_ptr<const SpectralEngine>& engine() const {
    return features_.engine();
  }

 private:
  PipelineParams params_;
  FeatureExtractor features_;  ///< shares the engine; powers featurize()
};

}  // namespace dynriver::core
