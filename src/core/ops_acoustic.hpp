// Acquisition-side operators: wav2rec and clip record construction.
#pragma once

#include <string>

#include "core/params.hpp"
#include "dsp/wav.hpp"
#include "river/operator.hpp"

namespace dynriver::core {

/// Attribute keys used throughout the acoustic pipeline. The definitions
/// live in river/record.hpp (stream-model vocabulary, shared with the
/// river sample-source/ensemble-sink adapters); these names keep every
/// existing core:: spelling working.
using river::kAttrSampleRate;
using river::kAttrClipId;
using river::kAttrStation;
using river::kAttrSpecies;
using river::kAttrEnsembleId;
using river::kAttrStartSample;
using river::kAttrNumSamples;

/// Split a decoded clip into a scoped record stream:
///   OpenScope(clip, attrs: sample_rate, clip_id, extra...) , Data(audio)*,
///   CloseScope(clip).
[[nodiscard]] std::vector<river::Record> clip_to_records(
    const dsp::WavClip& clip, std::uint64_t clip_id, std::size_t record_size,
    const river::AttrMap& extra_attrs = {});

/// wav2rec: "encapsulate acoustic data (WAV format in this case) in pipeline
/// records" (paper, Section 3). Consumes Data records whose byte payload is
/// a complete WAV blob (one clip per record) and emits the clip's scoped
/// record stream. Attributes on the incoming record are copied onto the
/// clip's OpenScope.
class Wav2RecOp final : public river::Operator {
 public:
  explicit Wav2RecOp(std::size_t record_size);

  void process(river::Record rec, river::Emitter& out) override;
  [[nodiscard]] std::string_view name() const override { return "wav2rec"; }

 private:
  std::size_t record_size_;
  std::uint64_t next_clip_id_ = 0;
};

/// Reassemble the audio inside each scope back into a WAV clip (the inverse
/// of wav2rec, for archiving extracted ensembles). Emits one Data record
/// with WAV bytes per closed scope of the configured type.
class Rec2WavOp final : public river::Operator {
 public:
  explicit Rec2WavOp(std::uint32_t scope_type);

  void process(river::Record rec, river::Emitter& out) override;
  [[nodiscard]] std::string_view name() const override { return "rec2wav"; }

 private:
  std::uint32_t scope_type_;
  bool collecting_ = false;
  std::uint32_t open_depth_ = 0;
  double sample_rate_ = 0.0;
  river::AttrMap attrs_;
  std::vector<float> samples_;
};

}  // namespace dynriver::core
