#include "core/ops_acoustic.hpp"

#include "common/contracts.hpp"

namespace dynriver::core {

using river::Record;
using river::RecordType;

std::vector<Record> clip_to_records(const dsp::WavClip& clip,
                                    std::uint64_t clip_id,
                                    std::size_t record_size,
                                    const river::AttrMap& extra_attrs) {
  DR_EXPECTS(record_size >= 1);
  DR_EXPECTS(clip.sample_rate > 0);

  const auto mono = dsp::to_mono(clip);
  std::vector<Record> out;
  out.reserve(mono.size() / record_size + 3);

  Record open = Record::open_scope(river::kScopeClip, 0);
  open.set_attr(kAttrSampleRate, static_cast<double>(clip.sample_rate));
  open.set_attr(kAttrClipId, static_cast<std::int64_t>(clip_id));
  open.set_attr(kAttrNumSamples, static_cast<std::int64_t>(mono.size()));
  for (const auto& [key, value] : extra_attrs) open.set_attr(key, value);
  out.push_back(std::move(open));

  for (std::size_t start = 0; start < mono.size(); start += record_size) {
    const std::size_t len = std::min(record_size, mono.size() - start);
    river::FloatVec payload(mono.begin() + static_cast<std::ptrdiff_t>(start),
                            mono.begin() + static_cast<std::ptrdiff_t>(start + len));
    Record rec = Record::data(river::kSubtypeAudio, std::move(payload));
    rec.scope_depth = 1;
    out.push_back(std::move(rec));
  }

  out.push_back(Record::close_scope(river::kScopeClip, 0));
  return out;
}

Wav2RecOp::Wav2RecOp(std::size_t record_size) : record_size_(record_size) {
  DR_EXPECTS(record_size >= 1);
}

void Wav2RecOp::process(Record rec, river::Emitter& out) {
  if (rec.type != RecordType::kData || !rec.is_bytes()) {
    out.emit(std::move(rec));  // scope records and non-WAV data pass through
    return;
  }
  const auto clip = dsp::decode_wav(rec.bytes());
  const std::uint64_t clip_id =
      rec.has_attr(kAttrClipId)
          ? static_cast<std::uint64_t>(rec.attr_int(kAttrClipId, 0))
          : next_clip_id_++;
  for (auto& clip_rec : clip_to_records(clip, clip_id, record_size_, rec.attrs)) {
    out.emit(std::move(clip_rec));
  }
}

Rec2WavOp::Rec2WavOp(std::uint32_t scope_type) : scope_type_(scope_type) {}

void Rec2WavOp::process(Record rec, river::Emitter& out) {
  switch (rec.type) {
    case RecordType::kOpenScope:
      if (!collecting_ && rec.scope_type == scope_type_) {
        collecting_ = true;
        open_depth_ = rec.scope_depth;
        sample_rate_ = rec.attr_double(kAttrSampleRate, 0.0);
        attrs_ = rec.attrs;
        samples_.clear();
      }
      return;
    case RecordType::kCloseScope:
    case RecordType::kBadCloseScope:
      if (collecting_ && rec.scope_type == scope_type_ &&
          rec.scope_depth == open_depth_) {
        collecting_ = false;
        dsp::WavClip clip;
        DR_ASSERT(sample_rate_ > 0);
        clip.sample_rate = static_cast<std::uint32_t>(sample_rate_);
        clip.channels = 1;
        clip.samples = std::move(samples_);
        samples_ = {};
        Record wav = Record::data_bytes(river::kSubtypeRaw, dsp::encode_wav(clip));
        wav.attrs = std::move(attrs_);
        attrs_ = {};
        out.emit(std::move(wav));
      }
      return;
    case RecordType::kData:
      if (collecting_ && rec.subtype == river::kSubtypeAudio && rec.is_float()) {
        const auto f = rec.floats();
        samples_.insert(samples_.end(), f.begin(), f.end());
      }
      return;
  }
}

}  // namespace dynriver::core
