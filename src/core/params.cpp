#include "core/params.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace dynriver::core {

std::size_t PipelineParams::cutout_lo_bin() const {
  const double k = cutout_lo_hz * static_cast<double>(dft_size) / sample_rate;
  return static_cast<std::size_t>(std::ceil(k - 1e-9));
}

std::size_t PipelineParams::cutout_hi_bin() const {
  const double k = cutout_hi_hz * static_cast<double>(dft_size) / sample_rate;
  const auto bin = static_cast<std::size_t>(std::ceil(k - 1e-9));
  return std::min(bin, dft_size / 2 + 1);
}

std::size_t PipelineParams::bins_per_record() const {
  return cutout_hi_bin() - cutout_lo_bin();
}

std::size_t PipelineParams::features_per_record() const {
  const std::size_t bins = bins_per_record();
  if (!use_paa) return bins;
  return (bins + paa_factor - 1) / paa_factor;
}

std::size_t PipelineParams::features_per_pattern() const {
  return features_per_record() * pattern_merge;
}

double PipelineParams::pattern_seconds() const {
  // Patterns advance by `pattern_stride` records; with reslice the record
  // hop is half a record, without it a full record.
  const double hop_samples =
      reslice ? static_cast<double>(record_size) / 2.0
              : static_cast<double>(record_size);
  return static_cast<double>(pattern_stride) * hop_samples / sample_rate;
}

void PipelineParams::validate() const {
  DR_EXPECTS(sample_rate > 0.0);
  DR_EXPECTS(record_size >= 8);
  anomaly.validate();
  DR_EXPECTS(trigger_sigma > 0.0);
  DR_EXPECTS(dft_size >= record_size);
  DR_EXPECTS(cutout_lo_hz >= 0.0);
  DR_EXPECTS(cutout_hi_hz > cutout_lo_hz);
  DR_EXPECTS(cutout_hi_hz <= sample_rate / 2.0);
  DR_EXPECTS(paa_factor >= 1);
  DR_EXPECTS(pattern_merge >= 1);
  DR_EXPECTS(pattern_stride >= 1);
  DR_EXPECTS(bins_per_record() >= 1);
}

}  // namespace dynriver::core
