#include "core/features.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "dsp/fft.hpp"
#include "dsp/window.hpp"
#include "ts/paa.hpp"

namespace dynriver::core {

FeatureExtractor::FeatureExtractor(PipelineParams params)
    : params_(std::move(params)) {
  params_.validate();
  window_ = dsp::make_window(params_.window, params_.record_size);
}

std::vector<float> FeatureExtractor::record_spectrum(
    std::span<const float> record) const {
  DR_EXPECTS(!record.empty());
  DR_EXPECTS(record.size() <= params_.dft_size);

  // Window (cached for the nominal size, built ad hoc for partial records).
  std::vector<float> windowed(record.begin(), record.end());
  if (record.size() == window_.size()) {
    dsp::apply_window(windowed, window_);
  } else {
    dsp::apply_window(windowed, params_.window);
  }

  // Zero-pad to the fixed transform size, then magnitude spectrum.
  windowed.resize(params_.dft_size, 0.0F);
  const auto mags = dsp::magnitude_spectrum(windowed);

  const std::size_t lo = params_.cutout_lo_bin();
  const std::size_t hi = params_.cutout_hi_bin();
  std::vector<float> band(mags.begin() + static_cast<std::ptrdiff_t>(lo),
                          mags.begin() + static_cast<std::ptrdiff_t>(hi));

  if (params_.use_paa && params_.paa_factor > 1) {
    return ts::paa_reduce_by(band, params_.paa_factor);
  }
  return band;
}

std::vector<std::vector<float>> FeatureExtractor::patterns(
    std::span<const float> ensemble) const {
  // 1. Chop into records (trailing partial kept, like the cutter's output).
  std::vector<std::span<const float>> records;
  for (std::size_t start = 0; start < ensemble.size();
       start += params_.record_size) {
    const std::size_t len =
        std::min(params_.record_size, ensemble.size() - start);
    records.push_back(ensemble.subspan(start, len));
  }

  // 2. Reslice: interleave 50%-overlap records between equal-size pairs.
  std::vector<std::vector<float>> sliced;
  for (std::size_t i = 0; i < records.size(); ++i) {
    sliced.emplace_back(records[i].begin(), records[i].end());
    if (params_.reslice && i + 1 < records.size() &&
        records[i].size() == records[i + 1].size() && records[i].size() >= 2) {
      const std::size_t half = records[i].size() / 2;
      std::vector<float> overlap;
      overlap.reserve(records[i].size());
      overlap.insert(overlap.end(), records[i].end() - static_cast<std::ptrdiff_t>(half),
                     records[i].end());
      overlap.insert(overlap.end(), records[i + 1].begin(),
                     records[i + 1].begin() +
                         static_cast<std::ptrdiff_t>(records[i].size() - half));
      sliced.push_back(std::move(overlap));  // original, overlap, original, ...
    }
  }

  // 3. Spectrum per record.
  std::vector<std::vector<float>> spectra;
  spectra.reserve(sliced.size());
  for (const auto& rec : sliced) spectra.push_back(record_spectrum(rec));

  // 4. Merge/stride into patterns.
  std::vector<std::vector<float>> out;
  for (std::size_t start = 0; start + params_.pattern_merge <= spectra.size();
       start += params_.pattern_stride) {
    std::vector<float> pattern;
    pattern.reserve(params_.features_per_pattern());
    for (std::size_t i = 0; i < params_.pattern_merge; ++i) {
      pattern.insert(pattern.end(), spectra[start + i].begin(),
                     spectra[start + i].end());
    }
    out.push_back(std::move(pattern));
  }
  return out;
}

}  // namespace dynriver::core
