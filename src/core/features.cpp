#include "core/features.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "ts/paa.hpp"

namespace dynriver::core {

FeatureExtractor::FeatureExtractor(PipelineParams params,
                                   std::shared_ptr<const SpectralEngine> engine)
    : params_(std::move(params)), engine_(std::move(engine)) {
  params_.validate();
  if (!engine_) engine_ = std::make_shared<const SpectralEngine>(params_);
  DR_EXPECTS(engine_->dft_size() == params_.dft_size);
  DR_EXPECTS(engine_->window_kind() == params_.window);
}

std::vector<float> FeatureExtractor::band_of(
    std::span<const float> mags) const {
  const std::size_t lo = params_.cutout_lo_bin();
  const std::size_t hi = params_.cutout_hi_bin();
  std::vector<float> band(mags.begin() + static_cast<std::ptrdiff_t>(lo),
                          mags.begin() + static_cast<std::ptrdiff_t>(hi));

  if (params_.use_paa && params_.paa_factor > 1) {
    return ts::paa_reduce_by(band, params_.paa_factor);
  }
  return band;
}

std::vector<float> FeatureExtractor::record_spectrum(
    std::span<const float> record) const {
  DR_EXPECTS(!record.empty());
  DR_EXPECTS(record.size() <= params_.dft_size);

  // Windowed + zero-padded magnitude spectrum through the shared engine
  // (plan-cached FFT, thread-local scratch).
  thread_local std::vector<float> mags;
  engine_->windowed_magnitudes(record, mags);
  return band_of(mags);
}

std::vector<std::vector<float>> FeatureExtractor::patterns(
    std::span<const float> ensemble) const {
  // 1+2. Chop into records and reslice (50%-overlap records between
  // equal-size pairs), assembling the sliced sequence directly into one
  // contiguous row-major matrix: every row is a full record_size record
  // (original, overlap, original, ...), so a single batched spectral call
  // covers them all. Only a trailing partial record (shorter, so never
  // resliced against its full-size neighbour) is handled singly below.
  const std::size_t rs = params_.record_size;
  const std::size_t num_full = ensemble.size() / rs;
  const std::size_t rem = ensemble.size() % rs;
  const bool reslice = params_.reslice && rs >= 2;
  const std::size_t rows =
      num_full == 0 ? 0 : (reslice ? 2 * num_full - 1 : num_full);

  // Thread-local so the steady state (many ensembles of similar length) is
  // allocation-free — fresh 100KB+ buffers per call measured ~13% on
  // feature_patterns_1s via mmap/page-fault churn. Oversized buffers are
  // released below so one huge span can't pin its peak to the thread.
  thread_local std::vector<float> matrix;
  thread_local std::vector<float> mags;
  matrix.resize(rows * rs);
  for (std::size_t i = 0; i < num_full; ++i) {
    const float* rec = ensemble.data() + i * rs;
    const std::size_t row = reslice ? 2 * i : i;
    std::copy_n(rec, rs, matrix.begin() + static_cast<std::ptrdiff_t>(row * rs));
    if (reslice && i + 1 < num_full) {
      const std::size_t half = rs / 2;
      float* overlap = matrix.data() + (row + 1) * rs;
      std::copy_n(rec + (rs - half), half, overlap);
      std::copy_n(rec + rs, rs - half, overlap + half);
    }
  }

  // 3. Spectrum per record: one batch transform for the matrix, then the
  // per-row cutout/PAA; the partial record goes through the single path.
  engine_->windowed_magnitudes_batch(
      std::span<const float>(matrix.data(), rows * rs), rs, mags);
  std::vector<std::vector<float>> spectra;
  spectra.reserve(rows + (rem > 0 ? 1 : 0));
  for (std::size_t r = 0; r < rows; ++r) {
    spectra.push_back(band_of(
        std::span<const float>(mags.data() + r * params_.dft_size,
                               params_.dft_size)));
  }
  if (rem > 0) {
    spectra.push_back(record_spectrum(ensemble.subspan(num_full * rs, rem)));
  }

  // Retain scratch only up to ~1 MB per buffer (≈ 12 s of audio): typical
  // trigger-cut ensembles reuse it; an archival-length span releases it.
  constexpr std::size_t kRetainFloats = (1U << 20) / sizeof(float);
  if (matrix.capacity() > kRetainFloats) std::vector<float>().swap(matrix);
  if (mags.capacity() > kRetainFloats) std::vector<float>().swap(mags);

  // 4. Merge/stride into patterns.
  std::vector<std::vector<float>> out;
  for (std::size_t start = 0; start + params_.pattern_merge <= spectra.size();
       start += params_.pattern_stride) {
    std::vector<float> pattern;
    pattern.reserve(params_.features_per_pattern());
    for (std::size_t i = 0; i < params_.pattern_merge; ++i) {
      pattern.insert(pattern.end(), spectra[start + i].begin(),
                     spectra[start + i].end());
    }
    out.push_back(std::move(pattern));
  }
  return out;
}

}  // namespace dynriver::core
