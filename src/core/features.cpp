#include "core/features.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "ts/paa.hpp"

namespace dynriver::core {

FeatureExtractor::FeatureExtractor(PipelineParams params,
                                   std::shared_ptr<const SpectralEngine> engine)
    : params_(std::move(params)), engine_(std::move(engine)) {
  params_.validate();
  if (!engine_) engine_ = std::make_shared<const SpectralEngine>(params_);
  DR_EXPECTS(engine_->dft_size() == params_.dft_size);
  DR_EXPECTS(engine_->window_kind() == params_.window);
}

std::vector<float> FeatureExtractor::record_spectrum(
    std::span<const float> record) const {
  DR_EXPECTS(!record.empty());
  DR_EXPECTS(record.size() <= params_.dft_size);

  // Windowed + zero-padded magnitude spectrum through the shared engine
  // (plan-cached FFT, thread-local scratch).
  thread_local std::vector<float> mags;
  engine_->windowed_magnitudes(record, mags);

  const std::size_t lo = params_.cutout_lo_bin();
  const std::size_t hi = params_.cutout_hi_bin();
  std::vector<float> band(mags.begin() + static_cast<std::ptrdiff_t>(lo),
                          mags.begin() + static_cast<std::ptrdiff_t>(hi));

  if (params_.use_paa && params_.paa_factor > 1) {
    return ts::paa_reduce_by(band, params_.paa_factor);
  }
  return band;
}

std::vector<std::vector<float>> FeatureExtractor::patterns(
    std::span<const float> ensemble) const {
  // 1. Chop into records (trailing partial kept, like the cutter's output).
  std::vector<std::span<const float>> records;
  for (std::size_t start = 0; start < ensemble.size();
       start += params_.record_size) {
    const std::size_t len =
        std::min(params_.record_size, ensemble.size() - start);
    records.push_back(ensemble.subspan(start, len));
  }

  // 2. Reslice: interleave 50%-overlap records between equal-size pairs.
  std::vector<std::vector<float>> sliced;
  for (std::size_t i = 0; i < records.size(); ++i) {
    sliced.emplace_back(records[i].begin(), records[i].end());
    if (params_.reslice && i + 1 < records.size() &&
        records[i].size() == records[i + 1].size() && records[i].size() >= 2) {
      const std::size_t half = records[i].size() / 2;
      std::vector<float> overlap;
      overlap.reserve(records[i].size());
      overlap.insert(overlap.end(), records[i].end() - static_cast<std::ptrdiff_t>(half),
                     records[i].end());
      overlap.insert(overlap.end(), records[i + 1].begin(),
                     records[i + 1].begin() +
                         static_cast<std::ptrdiff_t>(records[i].size() - half));
      sliced.push_back(std::move(overlap));  // original, overlap, original, ...
    }
  }

  // 3. Spectrum per record.
  std::vector<std::vector<float>> spectra;
  spectra.reserve(sliced.size());
  for (const auto& rec : sliced) spectra.push_back(record_spectrum(rec));

  // 4. Merge/stride into patterns.
  std::vector<std::vector<float>> out;
  for (std::size_t start = 0; start + params_.pattern_merge <= spectra.size();
       start += params_.pattern_stride) {
    std::vector<float> pattern;
    pattern.reserve(params_.features_per_pattern());
    for (std::size_t i = 0; i < params_.pattern_merge; ++i) {
      pattern.insert(pattern.end(), spectra[start + i].begin(),
                     spectra[start + i].end());
    }
    out.push_back(std::move(pattern));
  }
  return out;
}

}  // namespace dynriver::core
