// Parameters of the acoustic ensemble-extraction pipeline.
//
// Defaults reconstruct the paper's configuration (see DESIGN.md section 3):
// 21,600 Hz clips in 900-sample records, SAX anomaly window 100 / alphabet 8
// / moving average 2250, a 5-sigma adaptive trigger, DFT records cut to
// ~[1.2 kHz, 9.6 kHz) = 350 bins, patterns of 3 merged records = 1050
// features (105 after PAA x10) spanning 0.125 s.
#pragma once

#include <cstddef>

#include "dsp/window.hpp"
#include "ts/anomaly.hpp"

namespace dynriver::core {

struct PipelineParams {
  // -- acquisition ----------------------------------------------------------
  double sample_rate = 21600.0;
  std::size_t record_size = 900;  ///< amplitude samples per Data record

  // -- saxanomaly -----------------------------------------------------------
  /// Window 100, alphabet 8, level 2, MA 2250 (the paper's settings), plus
  /// 24-sample energy frames so each SAX symbol encodes ~1.1 ms of log-RMS
  /// energy (see DESIGN.md: symbolizing raw 21.6 kHz samples makes the
  /// bitmap score mark only texture boundaries, not event interiors).
  ts::AnomalyParams anomaly{.window = 100,
                            .alphabet = 8,
                            .level = 2,
                            .ma_window = 2250,
                            .frame = 24};

  // -- trigger --------------------------------------------------------------
  double trigger_sigma = 5.0;  ///< "more than 5 standard deviations from mu0"
  /// Untriggered samples required before the trigger may fire (baseline
  /// estimation warmup).
  std::size_t trigger_min_baseline = 4500;
  /// Consecutive below-threshold samples tolerated before the trigger
  /// releases; bridges short score jitter around the threshold.
  std::size_t trigger_hold_samples = 1500;

  // -- cutter ---------------------------------------------------------------
  /// Ensembles shorter than this are dropped (too short to carry a pattern).
  std::size_t min_ensemble_samples = 2700;
  /// Triggered stretches separated by gaps up to this many samples merge
  /// into one ensemble (gap included). Vocalizations contain homogeneous
  /// stretches -- a dove's steady coo, a blackbird's constant trill -- where
  /// the texture score legitimately dips; merging keeps one song as one
  /// ensemble while both ensemble ends stay tight against the trigger.
  std::size_t merge_gap_samples = 13000;

  // -- spectral segment -----------------------------------------------------
  bool reslice = true;  ///< insert 50%-overlap records between originals
  dsp::WindowKind window = dsp::WindowKind::kWelch;
  std::size_t dft_size = 900;  ///< records are zero-padded to this length
  double cutout_lo_hz = 1200.0;
  double cutout_hi_hz = 9600.0;

  // -- pattern construction -------------------------------------------------
  bool use_paa = true;
  std::size_t paa_factor = 10;
  std::size_t pattern_merge = 3;   ///< spectrum records merged per pattern
  std::size_t pattern_stride = 6;  ///< record advance between patterns
  // With reslice on, records arrive at half-record hops, so stride 6 keeps
  // the paper's 0.125 s pattern cadence; without reslice use stride 3.

  // -- derived --------------------------------------------------------------
  [[nodiscard]] std::size_t cutout_lo_bin() const;
  [[nodiscard]] std::size_t cutout_hi_bin() const;  ///< exclusive
  [[nodiscard]] std::size_t bins_per_record() const;
  [[nodiscard]] std::size_t features_per_record() const;  ///< after optional PAA
  [[nodiscard]] std::size_t features_per_pattern() const;
  /// Seconds of original audio represented by one pattern.
  [[nodiscard]] double pattern_seconds() const;

  void validate() const;
};

}  // namespace dynriver::core
