#include "core/session_scheduler.hpp"

#include <chrono>

#include "common/contracts.hpp"
#include "river/segment_store.hpp"

namespace dynriver::core {

// ---------------------------------------------------------------------------
// SchedulerStats
// ---------------------------------------------------------------------------

std::size_t SchedulerStats::total_queued_samples() const {
  std::size_t acc = 0;
  for (const auto& s : stations) acc += s.queued_samples;
  return acc;
}

std::size_t SchedulerStats::total_buffered_samples() const {
  std::size_t acc = 0;
  for (const auto& s : stations) {
    acc += s.queued_samples + s.session_buffered_samples;
  }
  return acc;
}

std::size_t SchedulerStats::total_samples_dropped() const {
  std::size_t acc = 0;
  for (const auto& s : stations) acc += s.samples_dropped;
  return acc;
}

std::size_t SchedulerStats::total_ensembles_out() const {
  std::size_t acc = 0;
  for (const auto& s : stations) acc += s.ensembles_out;
  return acc;
}

// ---------------------------------------------------------------------------
// SessionScheduler::Station
// ---------------------------------------------------------------------------

struct SessionScheduler::Station {
  std::string name;
  StationConfig config;          ///< immutable after add_station
  std::size_t chunk_samples = 0; ///< resolved read/eviction granularity
  std::unique_ptr<StreamSession> session;
  std::shared_ptr<river::SampleSource> source;  ///< null for push-fed
  std::shared_ptr<river::EnsembleSink> sink;

  mutable common::Mutex mu;       ///< guards queue + flags + counters
  common::CondVar room;           ///< kBlock producers wait for queue room
  std::deque<std::vector<float>> queue DR_GUARDED_BY(mu);
  std::size_t queued_samples DR_GUARDED_BY(mu) = 0;
  bool closed DR_GUARDED_BY(mu) = false;  ///< no more input will arrive
  /// finish() delivered (claimed by worker).
  bool session_finished DR_GUARDED_BY(mu) = false;
  /// sink finished too; never runnable again.
  bool finished DR_GUARDED_BY(mu) = false;
  /// Live reconfigure hand-off.
  std::optional<PipelineParams> pending_params DR_GUARDED_BY(mu);

  /// Resolved per-round credit (config.quantum_samples or the scheduler
  /// default) — weighted DRR reads this, never the options, per round.
  std::size_t quantum = 0;
  /// Deficit round-robin credit; touched only by the one worker processing
  /// this station in a round (rounds never overlap per station).
  std::size_t deficit = 0;

  // Counters. samples_consumed is advanced in the same critical section
  // that dequeues a chunk (the identity `in == consumed + dropped + queued`
  // is exact for every stats() reader at every instant); session_buffered is
  // a cached copy of session state published after each processing pass —
  // stats() never touches the session from a foreign thread.
  std::size_t samples_in DR_GUARDED_BY(mu) = 0;
  std::size_t samples_dropped DR_GUARDED_BY(mu) = 0;
  std::size_t samples_consumed DR_GUARDED_BY(mu) = 0;
  std::size_t ensembles_out DR_GUARDED_BY(mu) = 0;
  std::size_t session_buffered DR_GUARDED_BY(mu) = 0;
};

// ---------------------------------------------------------------------------
// SessionScheduler
// ---------------------------------------------------------------------------

SessionScheduler::SessionScheduler(SchedulerOptions options)
    : options_(std::move(options)),
      runner_(std::make_unique<common::TaskRunner>(options_.threads)) {
  DR_EXPECTS(options_.quantum_samples >= 1);
}

SessionScheduler::~SessionScheduler() {
  // Normal runs join in run(); this path only fires when run() unwound on
  // an exception with readers still alive (possibly blocked on queue room).
  shutdown_.store(true, std::memory_order_relaxed);
  for (auto& st : stations_) st->room.notify_all();
  for (auto& t : readers_) {
    if (t.joinable()) t.join();
  }
}

std::size_t SessionScheduler::add_station_impl(
    std::string name, std::shared_ptr<river::SampleSource> source,
    std::shared_ptr<river::EnsembleSink> sink, StationConfig config) {
  DR_EXPECTS(!running_);
  DR_EXPECTS(sink != nullptr);
  config.params.validate();
  auto st = std::make_unique<Station>();
  st->chunk_samples = config.read_chunk_samples != 0 ? config.read_chunk_samples
                                                     : config.params.record_size;
  st->quantum = config.quantum_samples != 0 ? config.quantum_samples
                                            : options_.quantum_samples;
  DR_EXPECTS(st->chunk_samples >= 1);
  DR_EXPECTS(st->chunk_samples <= config.queue_capacity_samples);
  st->name = std::move(name);
  st->session = std::make_unique<StreamSession>(
      config.params, config.session_options, config.engine);
  st->source = std::move(source);
  st->sink = std::move(sink);
  st->config = std::move(config);
  stations_.push_back(std::move(st));
  return stations_.size() - 1;
}

std::size_t SessionScheduler::add_station(
    std::string name, std::shared_ptr<river::SampleSource> source,
    std::shared_ptr<river::EnsembleSink> sink, StationConfig config) {
  DR_EXPECTS(source != nullptr);
  return add_station_impl(std::move(name), std::move(source), std::move(sink),
                          std::move(config));
}

std::size_t SessionScheduler::add_station(
    std::string name, std::shared_ptr<river::EnsembleSink> sink,
    StationConfig config) {
  return add_station_impl(std::move(name), nullptr, std::move(sink),
                          std::move(config));
}

void SessionScheduler::notify_work() {
  {
    const common::LockGuard lk(work_mu_);
    ++work_epoch_;
  }
  work_cv_.notify_all();
}

std::size_t SessionScheduler::enqueue(Station& st,
                                      std::span<const float> samples) {
  if (samples.empty()) return 0;
  // A chunk must individually fit: the queue bound is hard, never "capacity
  // plus one oversized chunk".
  DR_EXPECTS(samples.size() <= st.config.queue_capacity_samples);
  std::size_t dropped = 0;
  {
    common::UniqueLock lk(st.mu);
    DR_EXPECTS(!st.closed);
    if (st.config.policy == BackpressurePolicy::kBlock) {
      while (!shutdown_.load(std::memory_order_relaxed) &&
             st.queued_samples + samples.size() >
                 st.config.queue_capacity_samples) {
        st.room.wait(lk);
      }
      if (shutdown_.load(std::memory_order_relaxed)) return 0;
    } else {
      // kDropOldest: evict whole chunks, oldest first, until this one fits.
      // Every evicted sample is accounted — pushed == consumed + dropped +
      // still-queued holds exactly at all times.
      while (st.queued_samples + samples.size() >
             st.config.queue_capacity_samples) {
        dropped += st.queue.front().size();
        st.queued_samples -= st.queue.front().size();
        st.queue.pop_front();
      }
    }
    st.queue.emplace_back(samples.begin(), samples.end());
    st.queued_samples += samples.size();
    st.samples_in += samples.size();
    st.samples_dropped += dropped;
  }
  notify_work();
  return dropped;
}

std::size_t SessionScheduler::push(std::size_t station,
                                   std::span<const float> samples) {
  return enqueue(*stations_.at(station), samples);
}

void SessionScheduler::close_internal(Station& st) {
  {
    const common::LockGuard lk(st.mu);
    st.closed = true;
  }
  st.room.notify_all();
  notify_work();
}

void SessionScheduler::close_station(std::size_t station) {
  close_internal(*stations_.at(station));
}

void SessionScheduler::reconfigure(std::size_t station,
                                   const PipelineParams& params) {
  Station& st = *stations_.at(station);
  params.validate();
  // Validated against the construction-time params: the scoring/spectral
  // fields are invariant for the session's lifetime, so they are the stable
  // reference no matter how many reconfigures already landed.
  DR_EXPECTS(reconfigure_compatible(params, st.config.params));
  {
    const common::LockGuard lk(st.mu);
    st.pending_params = params;
  }
  notify_work();
}

void SessionScheduler::deliver(Station& st,
                               std::vector<river::Ensemble> ensembles) {
  if (ensembles.empty()) return;
  const std::size_t count = ensembles.size();
  for (auto& e : ensembles) st.sink->accept(std::move(e));
  const common::LockGuard lk(st.mu);
  st.ensembles_out += count;
}

void SessionScheduler::process_station(Station& st) {
  st.deficit += st.quantum;
  bool drained = false;
  for (;;) {
    std::vector<float> chunk;
    {
      const common::LockGuard lk(st.mu);
      if (st.queue.empty()) {
        drained = true;
        break;
      }
      if (st.queue.front().size() > st.deficit) break;  // credit exhausted
      chunk = std::move(st.queue.front());
      st.queue.pop_front();
      st.queued_samples -= chunk.size();
      // Counted as consumed in the same critical section that dequeues it,
      // so `pushed == consumed + dropped + queued` holds exactly for every
      // stats() reader at every instant — the chunk is unconditionally fed
      // to the session before this worker touches the station again.
      st.samples_consumed += chunk.size();
      if (st.pending_params) {
        // Hand the live re-parameterization to the session before the next
        // chunk; the session defers to the ensemble boundary internally.
        st.session->reconfigure(*st.pending_params);
        st.pending_params.reset();
      }
    }
    st.room.notify_all();  // queue room freed for a blocked producer
    st.deficit -= chunk.size();
    if (st.session->push(chunk) > 0) deliver(st, st.session->drain());
  }
  // Classic DRR: an emptied queue forfeits leftover credit, so an idle
  // station cannot bank quanta and later monopolize a round.
  if (drained) st.deficit = 0;

  bool close_now = false;
  {
    const common::LockGuard lk(st.mu);
    close_now = st.closed && st.queue.empty() && !st.session_finished;
    if (close_now) st.session_finished = true;
  }
  if (close_now) {
    deliver(st, st.session->finish());
    st.sink->finish();
  }

  {
    const common::LockGuard lk(st.mu);
    st.session_buffered = st.session->buffered_samples();
    if (close_now) st.finished = true;
  }
}

bool SessionScheduler::process_available() {
  runnable_.clear();
  for (std::size_t i = 0; i < stations_.size(); ++i) {
    Station& st = *stations_[i];
    const common::LockGuard lk(st.mu);
    if (st.finished) continue;
    if (!st.queue.empty() || st.closed) runnable_.push_back(i);
  }
  if (!runnable_.empty()) {
    runner_->run(runnable_.size(), [this](std::size_t k) {
      process_station(*stations_[runnable_[k]]);
    });
    rounds_.fetch_add(1, std::memory_order_relaxed);
    if (options_.on_round) options_.on_round(stats());
  }
  for (const auto& st : stations_) {
    const common::LockGuard lk(st->mu);
    if (!st->finished) return true;
  }
  return false;
}

void SessionScheduler::reader_loop(Station& st) {
  std::vector<float> buf(st.chunk_samples);
  while (!shutdown_.load(std::memory_order_relaxed)) {
    const std::size_t n = st.source->read(buf);
    if (n == 0) break;
    enqueue(st, std::span<const float>(buf.data(), n));
  }
  close_internal(st);
}

void SessionScheduler::run() {
  DR_EXPECTS(!running_);
  running_ = true;
  readers_.reserve(stations_.size());
  for (auto& st : stations_) {
    if (st->source != nullptr) {
      readers_.emplace_back([this, s = st.get()] { reader_loop(*s); });
    }
  }
  for (;;) {
    std::uint64_t epoch_before = 0;
    {
      const common::LockGuard lk(work_mu_);
      epoch_before = work_epoch_;
    }
    if (!process_available()) break;
    // Nothing was runnable this pass: sleep until a producer enqueues,
    // closes, or reconfigures (epoch bump, read before the pass so no
    // wakeup is lost), with a timeout safety net.
    if (runnable_.empty()) {
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(50);
      common::UniqueLock lk(work_mu_);
      while (work_epoch_ == epoch_before &&
             work_cv_.wait_until(lk, deadline) != std::cv_status::timeout) {
      }
    }
  }
  for (auto& t : readers_) t.join();
  readers_.clear();
}

SchedulerStats SessionScheduler::stats() const {
  SchedulerStats out;
  out.rounds = rounds_.load(std::memory_order_relaxed);
  out.stations.reserve(stations_.size());
  for (const auto& stp : stations_) {
    const Station& st = *stp;
    const common::LockGuard lk(st.mu);
    StationStats s;
    s.name = st.name;
    s.samples_in = st.samples_in;
    s.samples_dropped = st.samples_dropped;
    s.samples_consumed = st.samples_consumed;
    s.ensembles_out = st.ensembles_out;
    s.queued_samples = st.queued_samples;
    s.session_buffered_samples = st.session_buffered;
    s.finished = st.finished;
    out.stations.push_back(std::move(s));
  }
  return out;
}

const std::string& SessionScheduler::station_name(std::size_t station) const {
  return stations_.at(station)->name;
}

const StreamSession& SessionScheduler::session(std::size_t station) const {
  return *stations_.at(station)->session;
}

std::size_t add_replay_station(SessionScheduler& scheduler, std::string name,
                               const std::filesystem::path& store_dir,
                               double t0, double t1,
                               std::shared_ptr<river::EnsembleSink> sink,
                               StationConfig config) {
  auto source = std::make_shared<river::SegmentStoreSource>(store_dir, t0, t1);
  return scheduler.add_station(std::move(name), std::move(source),
                               std::move(sink), std::move(config));
}

}  // namespace dynriver::core
