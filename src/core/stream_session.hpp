// Push-based streaming extraction sessions.
//
// StreamSession runs the znorm/SAX/bitmap/trigger/cutter automaton
// incrementally: push() accepts any chunking of the signal — whole clip,
// record-size blocks, single samples — and completed ensembles become
// available the moment their trigger closes (plus the merge-gap lookahead).
// Memory is bounded by O(anomaly window + open ensemble + merge gap), never
// O(stream), so days of audio stream through a fixed footprint.
//
// Contract: for every chunking, the ensembles, scores, and trigger series
// are bit-identical to the batch facade — EnsembleExtractor::extract is
// itself a thin wrapper over a session (tests/test_core_stream.cpp sweeps
// chunk sizes including 1). MultiStreamSession is the multi-channel
// counterpart behind MultiStreamExtractor.
#pragma once

#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/features.hpp"
#include "core/multistream.hpp"
#include "core/ops_anomaly.hpp"
#include "core/params.hpp"
#include "core/stream_cutter.hpp"
#include "river/sample_io.hpp"
#include "ts/anomaly.hpp"

namespace dynriver::core {

/// Bounded history of the per-sample score + trigger signals (Fig. 6 taps).
/// A flat-vector ring: long-running sessions retain the most recent
/// `capacity` samples instead of growing a per-sample vector for the
/// stream's lifetime; kUnbounded opts into full history (plain appends, the
/// batch facade's keep_signals).
class SignalTap {
 public:
  static constexpr std::size_t kUnbounded =
      std::numeric_limits<std::size_t>::max();

  explicit SignalTap(std::size_t capacity = 0) : capacity_(capacity) {}

  void push(float score, bool trig) {
    ++total_;
    if (capacity_ == 0) return;
    if (scores_.size() < capacity_) {  // filling (or unbounded: always)
      scores_.push_back(score);
      trigger_.push_back(trig ? 1 : 0);
      return;
    }
    scores_[head_] = score;  // full ring: overwrite the oldest
    trigger_[head_] = trig ? 1 : 0;
    if (++head_ == capacity_) head_ = 0;
  }
  void reset();

  [[nodiscard]] bool enabled() const { return capacity_ != 0; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Absolute sample index of the oldest retained entry.
  [[nodiscard]] std::size_t first_index() const { return total_ - scores_.size(); }
  /// Total samples ever observed (== the session's consumed count).
  [[nodiscard]] std::size_t end_index() const { return total_; }
  [[nodiscard]] std::size_t size() const { return scores_.size(); }

  /// Copies of the retained window, oldest first.
  [[nodiscard]] std::vector<float> scores() const;
  [[nodiscard]] std::vector<std::uint8_t> trigger() const;

 private:
  std::size_t capacity_;
  std::size_t total_ = 0;
  std::size_t head_ = 0;  ///< oldest entry once the ring is full
  std::vector<float> scores_;
  std::vector<std::uint8_t> trigger_;
};

/// True when `a` and `b` differ only in the trigger/cutter decision
/// parameters (sigma, baseline, hold, merge gap, length floor) — the
/// precondition of StreamSession::reconfigure. Everything upstream of the
/// trigger (scoring) and downstream of the cutter (spectral featurization)
/// is immutable for the life of a session.
[[nodiscard]] bool reconfigure_compatible(const PipelineParams& a,
                                          const PipelineParams& b);

/// Observation knobs shared by the streaming sessions.
struct SessionOptions {
  /// Ring capacity (in samples) of the score/trigger tap; 0 disables the
  /// tap, SignalTap::kUnbounded keeps full history (batch keep_signals).
  std::size_t tap_capacity = 0;
  /// Optional per-sample observer (absolute index, smoothed score,
  /// trigger) — a zero-memory alternative to the tap for live telemetry.
  std::function<void(std::size_t, float, bool)> on_signal;
};

/// Single-signal streaming extraction session.
class StreamSession {
 public:
  using Options = SessionOptions;

  /// `engine` lets the session share one SpectralEngine with other spectral
  /// consumers; nullptr builds a private engine from `params`.
  explicit StreamSession(PipelineParams params, Options options = {},
                         std::shared_ptr<const SpectralEngine> engine = nullptr);

  /// Push the next chunk of the stream (any size, including 1 sample).
  /// Returns the number of completed ensembles now waiting in drain().
  std::size_t push(std::span<const float> samples);

  /// Move out the completed ensembles, oldest first.
  [[nodiscard]] std::vector<river::Ensemble> drain();

  /// End of stream: closes the open run, decides the pending ensemble, and
  /// returns every remaining ensemble (earlier undrained ones included).
  [[nodiscard]] std::vector<river::Ensemble> finish();

  /// Restart for a new stream: extraction state, taps, and counters clear;
  /// the engine, plans, and window tables are reused.
  void reset();

  /// Live re-parameterization: adopt new trigger / merge-gap / length-floor
  /// parameters without restarting the stream. The scorer and spectral
  /// configuration (sample rate, anomaly params, DFT/pattern settings) must
  /// be unchanged — swapping those would discard the warmed automata.
  ///
  /// The new parameters take effect at the next safe automaton boundary:
  /// immediately when the cutter is idle (no open or pending ensemble),
  /// otherwise at the first sample after the in-flight ensemble's fate is
  /// decided — the open ensemble is neither lost nor re-judged under the new
  /// rules. From that boundary on, behaviour is bit-identical to a session
  /// that had been constructed with the new parameters and fed the same
  /// stream (tests/test_core_stream.cpp pins this).
  void reconfigure(const PipelineParams& params);

  /// True while a reconfigure() is waiting for the ensemble boundary.
  [[nodiscard]] bool reconfigure_pending() const {
    return pending_params_.has_value();
  }

  /// Spectral patterns of one extracted ensemble through the shared engine.
  [[nodiscard]] std::vector<std::vector<float>> featurize(
      const river::Ensemble& ensemble) const;

  [[nodiscard]] std::size_t samples_consumed() const { return consumed_; }
  /// Samples currently buffered inside the session (open ensemble + merge
  /// gap + undrained ensembles). Bounded for any stream length.
  [[nodiscard]] std::size_t buffered_samples() const {
    return cutter_.buffered_samples();
  }
  [[nodiscard]] const SignalTap& tap() const { return tap_; }
  [[nodiscard]] const PipelineParams& params() const { return params_; }
  [[nodiscard]] const std::shared_ptr<const SpectralEngine>& engine() const {
    return features_.engine();
  }

 private:
  std::size_t push_reconfiguring(std::span<const float> samples);
  void apply_reconfigure();

  PipelineParams params_;
  Options options_;
  FeatureExtractor features_;  ///< shares the engine; powers featurize()
  ts::StreamingAnomalyScorer scorer_;
  TriggerState trigger_;
  detail::StreamCutter cutter_;
  SignalTap tap_;
  std::size_t consumed_ = 0;
  /// Fixed-size scratch for the scorer's batched scores: push() scores one
  /// cache-hot block at a time, so memory stays O(block), not O(chunk).
  std::vector<double> score_block_;
  /// Parameters adopted at the next ensemble boundary (live reconfigure).
  std::optional<PipelineParams> pending_params_;
};

/// Multi-channel counterpart: one scorer per synchronized stream, fused
/// score (max/mean in fixed channel order), one shared trigger and cutter —
/// identical boundaries across channels (see core/multistream.hpp).
class MultiStreamSession {
 public:
  explicit MultiStreamSession(
      MultiStreamParams params, std::size_t channels,
      StreamSession::Options options = {},
      std::shared_ptr<const SpectralEngine> engine = nullptr);

  /// Push the next chunk of every channel (chunks.size() == channels(),
  /// all the same length). Returns completed ensembles waiting in drain().
  std::size_t push(std::span<const std::span<const float>> chunks);

  /// Pre-scored variant: the caller already ran each channel's anomaly
  /// scorer (e.g. on a thread pool); the session fuses the per-channel
  /// smoothed scores in fixed channel order and runs trigger + cutter.
  /// Bit-identical to push() for the same signals.
  std::size_t push_scored(std::span<const std::span<const double>> channel_scores,
                          std::span<const std::span<const float>> chunks);

  [[nodiscard]] std::vector<MultiEnsemble> drain();
  [[nodiscard]] std::vector<MultiEnsemble> finish();
  void reset();

  /// Per-channel spectral patterns of one multi-ensemble.
  [[nodiscard]] std::vector<std::vector<std::vector<float>>> featurize(
      const MultiEnsemble& ensemble) const;

  [[nodiscard]] std::size_t channels() const { return scorers_.size(); }
  [[nodiscard]] std::size_t samples_consumed() const { return consumed_; }
  [[nodiscard]] std::size_t buffered_samples() const {
    return cutter_.buffered_samples();
  }
  [[nodiscard]] const SignalTap& tap() const { return tap_; }
  [[nodiscard]] const MultiStreamParams& params() const { return params_; }
  [[nodiscard]] const std::shared_ptr<const SpectralEngine>& engine() const {
    return features_.engine();
  }

 private:
  /// Shared back half of push() and push_scored(): fuse one block of
  /// per-channel scores in fixed channel order and advance the trigger, the
  /// taps, and the trigger-run accumulation. `scores[c]` points at channel
  /// c's scores for samples [base, base + m); `run_trig`/`run_start` carry
  /// the open trigger run across blocks (absolute indices into `data`).
  void fuse_block(const double* const* scores, std::size_t base, std::size_t m,
                  const float* const* data, bool& run_trig,
                  std::size_t& run_start);

  MultiStreamParams params_;
  StreamSession::Options options_;
  FeatureExtractor features_;
  std::vector<ts::StreamingAnomalyScorer> scorers_;
  TriggerState trigger_;
  detail::StreamCutter cutter_;
  SignalTap tap_;
  std::size_t consumed_ = 0;
  std::vector<const float*> channel_data_;   ///< hoisted chunk pointers
  std::vector<const double*> score_data_;    ///< hoisted score pointers
  /// Per-channel scratch blocks for the scorers' batched scores (flat,
  /// channels x block) — push() stays O(channels * block) memory.
  std::vector<double> score_block_;
};

/// Pump a source through a session into a sink in `chunk_samples` blocks
/// (0 = params().record_size). Completed ensembles are delivered after each
/// chunk; finish() is forwarded at end of source.
struct StreamPumpStats {
  std::size_t samples_in = 0;
  std::size_t ensembles_out = 0;
  /// Largest session buffer observed between chunks (bounded-memory audit).
  std::size_t peak_buffered_samples = 0;
};
StreamPumpStats run_stream(river::SampleSource& source, StreamSession& session,
                           river::EnsembleSink& sink,
                           std::size_t chunk_samples = 0);

}  // namespace dynriver::core
