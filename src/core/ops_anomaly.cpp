#include "core/ops_anomaly.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "core/ops_acoustic.hpp"

namespace dynriver::core {

using river::Record;
using river::RecordType;

SaxAnomalyOp::SaxAnomalyOp(const ts::AnomalyParams& params) : scorer_(params) {}

void SaxAnomalyOp::process(Record rec, river::Emitter& out) {
  if (rec.type == RecordType::kOpenScope &&
      rec.scope_type == river::kScopeClip) {
    scorer_.reset();  // clips are scored independently
    out.emit(std::move(rec));
    return;
  }
  if (rec.type != RecordType::kData || rec.subtype != river::kSubtypeAudio ||
      !rec.is_float()) {
    out.emit(std::move(rec));
    return;
  }

  const auto audio = rec.floats();
  river::FloatVec scores(audio.size());
  scorer_.push_batch(audio.data(), audio.size(), scores.data());
  Record score_rec = Record::data(river::kSubtypeAnomalyScore, std::move(scores));
  score_rec.scope_depth = rec.scope_depth;

  out.emit(std::move(rec));        // original acoustic data first
  out.emit(std::move(score_rec));  // then the aligned anomaly scores
}

TriggerState::TriggerState(double sigma_threshold, std::size_t min_baseline,
                           std::size_t hold_samples)
    : sigma_threshold_(sigma_threshold),
      sigma_sq_(sigma_threshold * sigma_threshold),
      min_baseline_(min_baseline),
      hold_samples_(hold_samples) {
  DR_EXPECTS(sigma_threshold > 0.0);
}

void TriggerState::reset() {
  count_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
  active_ = false;
  seen_nonzero_ = false;
  below_count_ = 0;
}

void TriggerState::set_thresholding(double sigma_threshold,
                                    std::size_t min_baseline,
                                    std::size_t hold_samples) {
  DR_EXPECTS(sigma_threshold > 0.0);
  sigma_threshold_ = sigma_threshold;
  sigma_sq_ = sigma_threshold * sigma_threshold;
  min_baseline_ = min_baseline;
  hold_samples_ = hold_samples;
}

TriggerOp::TriggerOp(double sigma_threshold, std::size_t min_baseline,
                     std::size_t hold_samples)
    : state_(sigma_threshold, min_baseline, hold_samples) {}

void TriggerOp::process(Record rec, river::Emitter& out) {
  if (rec.type == RecordType::kOpenScope &&
      rec.scope_type == river::kScopeClip) {
    state_.reset();
    out.emit(std::move(rec));
    return;
  }
  if (rec.type != RecordType::kData ||
      rec.subtype != river::kSubtypeAnomalyScore || !rec.is_float()) {
    out.emit(std::move(rec));
    return;
  }

  const auto scores = rec.floats();
  river::FloatVec trig(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    trig[i] = state_.push(static_cast<double>(scores[i])) ? 1.0F : 0.0F;
  }
  Record trig_rec = Record::data(river::kSubtypeTrigger, std::move(trig));
  trig_rec.scope_depth = rec.scope_depth;
  out.emit(std::move(trig_rec));
}

CutterOp::CutterOp(const PipelineParams& params)
    : params_(params),
      cutter_(1, params.merge_gap_samples, params.min_ensemble_samples) {
  params_.validate();
}

void CutterOp::process(Record rec, river::Emitter& out) {
  switch (rec.type) {
    case RecordType::kOpenScope:
      if (rec.scope_type == river::kScopeClip) {
        in_clip_ = true;
        clip_attrs_ = rec.attrs;
        clip_depth_ = rec.scope_depth;
        audio_fifo_.clear();
        trigger_fifo_.clear();
        cutter_.reset();  // clips are cut independently; frame index = 0
      }
      out.emit(std::move(rec));
      return;

    case RecordType::kCloseScope:
    case RecordType::kBadCloseScope:
      if (in_clip_ && rec.scope_type == river::kScopeClip) {
        pump(out);
        // Ensembles whose merge gap elapsed inside the clip are good; the
        // one decided only because the clip ended inherits the close kind.
        cutter_.finish();
        emit_ready(out, rec.type == RecordType::kBadCloseScope);
        in_clip_ = false;
      }
      out.emit(std::move(rec));
      return;

    case RecordType::kData:
      break;
  }

  if (!in_clip_) {
    out.emit(std::move(rec));
    return;
  }
  if (rec.subtype == river::kSubtypeAudio && rec.is_float()) {
    const auto f = rec.floats();
    audio_fifo_.insert(audio_fifo_.end(), f.begin(), f.end());
    // Original audio is consumed here; the cutter's output is ensembles.
  } else if (rec.subtype == river::kSubtypeTrigger && rec.is_float()) {
    const auto f = rec.floats();
    trigger_fifo_.insert(trigger_fifo_.end(), f.begin(), f.end());
    pump(out);
  } else {
    out.emit(std::move(rec));  // unrelated data (e.g. anomaly scores kept)
  }
}

void CutterOp::pump(river::Emitter& out) {
  // Pair the FIFOs sample-by-sample into the shared automaton; every
  // decision (merge, suppress, eager finalize) happens inside StreamCutter.
  const std::size_t n = std::min(audio_fifo_.size(), trigger_fifo_.size());
  for (std::size_t i = 0; i < n; ++i) {
    cutter_.step(trigger_fifo_[i] >= 0.5F, &audio_fifo_[i]);
  }
  audio_fifo_.erase(audio_fifo_.begin(),
                    audio_fifo_.begin() + static_cast<std::ptrdiff_t>(n));
  trigger_fifo_.erase(trigger_fifo_.begin(),
                      trigger_fifo_.begin() + static_cast<std::ptrdiff_t>(n));
  emit_ready(out, /*bad=*/false);
}

void CutterOp::emit_ready(river::Emitter& out, bool bad) {
  while (auto cut = cutter_.pop()) emit_cut(out, std::move(*cut), bad);
}

void CutterOp::emit_cut(river::Emitter& out, detail::StreamCutter::Cut cut,
                        bool bad) {
  const std::vector<float>& samples = cut.channels.front();
  const std::uint32_t open_depth = clip_depth_ + 1;
  Record open = Record::open_scope(river::kScopeEnsemble, open_depth);
  open.attrs = clip_attrs_;  // clip context travels with each ensemble
  open.set_attr(kAttrEnsembleId, static_cast<std::int64_t>(next_ensemble_id_++));
  open.set_attr(kAttrStartSample, static_cast<std::int64_t>(cut.start_sample));
  open.set_attr(kAttrNumSamples, static_cast<std::int64_t>(samples.size()));
  out.emit(std::move(open));

  for (std::size_t start = 0; start < samples.size();
       start += params_.record_size) {
    const std::size_t len = std::min(params_.record_size, samples.size() - start);
    river::FloatVec payload(
        samples.begin() + static_cast<std::ptrdiff_t>(start),
        samples.begin() + static_cast<std::ptrdiff_t>(start + len));
    Record rec = Record::data(river::kSubtypeAudio, std::move(payload));
    rec.scope_depth = open_depth + 1;
    out.emit(std::move(rec));
  }

  out.emit(bad ? Record::bad_close_scope(river::kScopeEnsemble, open_depth)
               : Record::close_scope(river::kScopeEnsemble, open_depth));
  ++ensembles_;
}

void CutterOp::flush(river::Emitter& out) {
  // A stream that ends mid-clip without a CloseScope lost its upstream; any
  // accumulated ensemble is closed as bad if long enough.
  if (in_clip_) {
    pump(out);
    cutter_.finish();
    emit_ready(out, /*bad=*/true);
    in_clip_ = false;
  }
}

}  // namespace dynriver::core
