#include "core/ops_anomaly.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "core/ops_acoustic.hpp"

namespace dynriver::core {

using river::Record;
using river::RecordType;

SaxAnomalyOp::SaxAnomalyOp(const ts::AnomalyParams& params) : scorer_(params) {}

void SaxAnomalyOp::process(Record rec, river::Emitter& out) {
  if (rec.type == RecordType::kOpenScope &&
      rec.scope_type == river::kScopeClip) {
    scorer_.reset();  // clips are scored independently
    out.emit(std::move(rec));
    return;
  }
  if (rec.type != RecordType::kData || rec.subtype != river::kSubtypeAudio ||
      !rec.is_float()) {
    out.emit(std::move(rec));
    return;
  }

  const auto audio = rec.floats();
  river::FloatVec scores(audio.size());
  for (std::size_t i = 0; i < audio.size(); ++i) {
    scores[i] = static_cast<float>(scorer_.push(audio[i]));
  }
  Record score_rec = Record::data(river::kSubtypeAnomalyScore, std::move(scores));
  score_rec.scope_depth = rec.scope_depth;

  out.emit(std::move(rec));        // original acoustic data first
  out.emit(std::move(score_rec));  // then the aligned anomaly scores
}

TriggerState::TriggerState(double sigma_threshold, std::size_t min_baseline,
                           std::size_t hold_samples)
    : sigma_threshold_(sigma_threshold),
      min_baseline_(min_baseline),
      hold_samples_(hold_samples) {
  DR_EXPECTS(sigma_threshold > 0.0);
}

double TriggerState::threshold() const {
  return baseline_.mean() + sigma_threshold_ * baseline_.stddev();
}

bool TriggerState::push(double score) {
  // The anomaly scorer emits exact zeros until its windows warm up; feeding
  // them into the baseline would zero sigma0 and make the first real score
  // fire the trigger spuriously.
  if (!seen_nonzero_) {
    if (score == 0.0) return false;
    seen_nonzero_ = true;
  }

  const bool above =
      baseline_.count() >= min_baseline_ && score > threshold();
  if (above) {
    active_ = true;
    below_count_ = 0;
    return true;
  }
  if (active_ && below_count_ < hold_samples_) {
    // Hold: bridge brief lulls without updating the baseline.
    ++below_count_;
    return true;
  }
  // Untriggered scores feed the incremental mu0/sigma0 estimate; scores seen
  // while triggered are deliberately excluded so events do not poison the
  // baseline.
  active_ = false;
  below_count_ = 0;
  baseline_.add(score);
  return false;
}

void TriggerState::reset() {
  baseline_.reset();
  active_ = false;
  seen_nonzero_ = false;
  below_count_ = 0;
}

TriggerOp::TriggerOp(double sigma_threshold, std::size_t min_baseline,
                     std::size_t hold_samples)
    : state_(sigma_threshold, min_baseline, hold_samples) {}

void TriggerOp::process(Record rec, river::Emitter& out) {
  if (rec.type == RecordType::kOpenScope &&
      rec.scope_type == river::kScopeClip) {
    state_.reset();
    out.emit(std::move(rec));
    return;
  }
  if (rec.type != RecordType::kData ||
      rec.subtype != river::kSubtypeAnomalyScore || !rec.is_float()) {
    out.emit(std::move(rec));
    return;
  }

  const auto scores = rec.floats();
  river::FloatVec trig(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    trig[i] = state_.push(static_cast<double>(scores[i])) ? 1.0F : 0.0F;
  }
  Record trig_rec = Record::data(river::kSubtypeTrigger, std::move(trig));
  trig_rec.scope_depth = rec.scope_depth;
  out.emit(std::move(trig_rec));
}

CutterOp::CutterOp(const PipelineParams& params) : params_(params) {
  params_.validate();
}

void CutterOp::process(Record rec, river::Emitter& out) {
  switch (rec.type) {
    case RecordType::kOpenScope:
      if (rec.scope_type == river::kScopeClip) {
        in_clip_ = true;
        clip_attrs_ = rec.attrs;
        clip_depth_ = rec.scope_depth;
        clip_sample_cursor_ = 0;
        audio_fifo_.clear();
        trigger_fifo_.clear();
        cutting_ = false;
        ensemble_buf_.clear();
      }
      out.emit(std::move(rec));
      return;

    case RecordType::kCloseScope:
    case RecordType::kBadCloseScope:
      if (in_clip_ && rec.scope_type == river::kScopeClip) {
        pump(out);
        if (!ensemble_buf_.empty()) {
          end_ensemble(out, rec.type == RecordType::kBadCloseScope);
        }
        in_clip_ = false;
      }
      out.emit(std::move(rec));
      return;

    case RecordType::kData:
      break;
  }

  if (!in_clip_) {
    out.emit(std::move(rec));
    return;
  }
  if (rec.subtype == river::kSubtypeAudio && rec.is_float()) {
    const auto f = rec.floats();
    audio_fifo_.insert(audio_fifo_.end(), f.begin(), f.end());
    // Original audio is consumed here; the cutter's output is ensembles.
  } else if (rec.subtype == river::kSubtypeTrigger && rec.is_float()) {
    const auto f = rec.floats();
    trigger_fifo_.insert(trigger_fifo_.end(), f.begin(), f.end());
    pump(out);
  } else {
    out.emit(std::move(rec));  // unrelated data (e.g. anomaly scores kept)
  }
}

void CutterOp::pump(river::Emitter& out) {
  const std::size_t n = std::min(audio_fifo_.size(), trigger_fifo_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const bool trig = trigger_fifo_[i] >= 0.5F;
    const bool pending = !cutting_ && !ensemble_buf_.empty();
    if (trig) {
      if (pending) {
        // Re-fire within the merge gap: absorb the gap, continue the
        // pending ensemble.
        ensemble_buf_.insert(ensemble_buf_.end(), gap_buf_.begin(),
                             gap_buf_.end());
        gap_buf_.clear();
        cutting_ = true;
      } else if (!cutting_) {
        begin_ensemble(clip_sample_cursor_ + i);
      }
      ensemble_buf_.push_back(audio_fifo_[i]);
    } else {
      if (cutting_) {
        cutting_ = false;  // ensemble becomes pending
        gap_buf_.clear();
      }
      if (!ensemble_buf_.empty()) {
        gap_buf_.push_back(audio_fifo_[i]);
        if (gap_buf_.size() > params_.merge_gap_samples) {
          end_ensemble(out, /*bad=*/false);
        }
      }
    }
  }
  audio_fifo_.erase(audio_fifo_.begin(), audio_fifo_.begin() + static_cast<std::ptrdiff_t>(n));
  trigger_fifo_.erase(trigger_fifo_.begin(),
                      trigger_fifo_.begin() + static_cast<std::ptrdiff_t>(n));
  clip_sample_cursor_ += n;
}

void CutterOp::begin_ensemble(std::size_t start_sample) {
  cutting_ = true;
  ensemble_start_ = start_sample;
  ensemble_buf_.clear();
  gap_buf_.clear();
}

void CutterOp::end_ensemble(river::Emitter& out, bool bad) {
  cutting_ = false;
  gap_buf_.clear();
  if (ensemble_buf_.size() < params_.min_ensemble_samples) {
    ensemble_buf_.clear();
    return;  // too short to carry a pattern; suppress
  }

  const std::uint32_t open_depth = clip_depth_ + 1;
  Record open = Record::open_scope(river::kScopeEnsemble, open_depth);
  open.attrs = clip_attrs_;  // clip context travels with each ensemble
  open.set_attr(kAttrEnsembleId, static_cast<std::int64_t>(next_ensemble_id_++));
  open.set_attr(kAttrStartSample, static_cast<std::int64_t>(ensemble_start_));
  open.set_attr(kAttrNumSamples, static_cast<std::int64_t>(ensemble_buf_.size()));
  out.emit(std::move(open));

  for (std::size_t start = 0; start < ensemble_buf_.size();
       start += params_.record_size) {
    const std::size_t len =
        std::min(params_.record_size, ensemble_buf_.size() - start);
    river::FloatVec payload(
        ensemble_buf_.begin() + static_cast<std::ptrdiff_t>(start),
        ensemble_buf_.begin() + static_cast<std::ptrdiff_t>(start + len));
    Record rec = Record::data(river::kSubtypeAudio, std::move(payload));
    rec.scope_depth = open_depth + 1;
    out.emit(std::move(rec));
  }

  out.emit(bad ? Record::bad_close_scope(river::kScopeEnsemble, open_depth)
               : Record::close_scope(river::kScopeEnsemble, open_depth));
  ensemble_buf_.clear();
  ++ensembles_;
}

void CutterOp::flush(river::Emitter& out) {
  // A stream that ends mid-clip without a CloseScope lost its upstream; any
  // accumulated ensemble is closed as bad if long enough.
  if (in_clip_) {
    pump(out);
    if (!ensemble_buf_.empty()) end_ensemble(out, /*bad=*/true);
    in_clip_ = false;
  }
}

}  // namespace dynriver::core
