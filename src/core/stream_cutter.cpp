#include "core/stream_cutter.hpp"

#include "common/contracts.hpp"

namespace dynriver::core::detail {

StreamCutter::StreamCutter(std::size_t channels, std::size_t merge_gap_samples,
                           std::size_t min_ensemble_samples)
    : channels_(channels),
      merge_gap_(merge_gap_samples),
      min_len_(min_ensemble_samples),
      bufs_(channels),
      gaps_(channels) {
  DR_EXPECTS(channels >= 1);
}

void StreamCutter::open_run(std::size_t i) {
  if (pending_) {
    // Trigger re-fired within the merge gap (an eager finalize would have
    // run otherwise): absorb the buffered gap and continue the ensemble.
    for (std::size_t c = 0; c < channels_; ++c) {
      bufs_[c].insert(bufs_[c].end(), gaps_[c].begin(), gaps_[c].end());
      gaps_[c].clear();
    }
    pending_ = false;
    cutting_ = true;
  } else if (!cutting_) {
    cutting_ = true;
    start_ = i;
  }
}

void StreamCutter::step_triggered(std::size_t i, const float* frame) {
  open_run(i);
  for (std::size_t c = 0; c < channels_; ++c) bufs_[c].push_back(frame[c]);
}

void StreamCutter::step_run(bool trig, const float* const* channels,
                            std::size_t offset, std::size_t len) {
  if (len == 0) return;
  if (trig) {
    open_run(pos_);
    for (std::size_t c = 0; c < channels_; ++c) {
      bufs_[c].insert(bufs_[c].end(), channels[c] + offset,
                      channels[c] + offset + len);
    }
  } else {
    if (cutting_) {
      cutting_ = false;
      pending_ = true;
    }
    if (pending_) {
      // Only the first merge_gap_ + 1 gap samples matter: the single step()
      // would finalize right there and ignore the rest of the quiet run.
      const std::size_t take = std::min(len, merge_gap_ + 1 - gaps_[0].size());
      for (std::size_t c = 0; c < channels_; ++c) {
        gaps_[c].insert(gaps_[c].end(), channels[c] + offset,
                        channels[c] + offset + take);
      }
      if (gaps_[0].size() > merge_gap_) finalize();
    }
  }
  pos_ += len;
}

void StreamCutter::finish() {
  if (cutting_) {
    cutting_ = false;
    pending_ = true;
  }
  if (pending_) finalize();
}

void StreamCutter::finalize() {
  pending_ = false;
  // Gap samples never belong to an ensemble — they are only absorbed when
  // the trigger re-fires inside the merge window.
  for (auto& gap : gaps_) gap.clear();
  if (bufs_[0].size() >= min_len_) {
    Cut cut;
    cut.start_sample = start_;
    cut.channels = std::move(bufs_);
    bufs_.assign(channels_, {});
    ready_.push_back(std::move(cut));
  } else {
    for (auto& buf : bufs_) buf.clear();
  }
}

std::optional<StreamCutter::Cut> StreamCutter::pop() {
  if (ready_.empty()) return std::nullopt;
  Cut cut = std::move(ready_.front());
  ready_.pop_front();
  return cut;
}

std::size_t StreamCutter::buffered_samples() const {
  std::size_t acc = bufs_[0].size() + gaps_[0].size();
  for (const auto& cut : ready_) acc += cut.channels[0].size();
  return acc;
}

void StreamCutter::reset() {
  pos_ = 0;
  cutting_ = false;
  pending_ = false;
  start_ = 0;
  for (auto& buf : bufs_) buf.clear();
  for (auto& gap : gaps_) gap.clear();
  ready_.clear();
}

}  // namespace dynriver::core::detail
