// End-to-end assembly of the paper's Figure 5 pipeline.
//
// Clips enter as scoped record streams (wav2rec / clip_to_records); the
// extraction segment (saxanomaly, trigger, cutter) turns them into ensemble
// scopes; the spectral segment (reslice .. rec2vect) turns ensembles into
// classifier-ready patterns. These builders return river::Pipeline objects
// that can run in-process, be split into Segments across hosts, or be
// relocated at runtime by the PipelineManager.
#pragma once

#include <string>
#include <vector>

#include "core/params.hpp"
#include "dsp/wav.hpp"
#include "river/pipeline.hpp"

namespace dynriver::core {

/// saxanomaly -> trigger -> cutter.
[[nodiscard]] river::Pipeline make_extraction_pipeline(
    const PipelineParams& params);

/// [reslice] -> welchwindow -> float2cplx -> dft -> cabs -> cutout -> [paa]
/// -> rec2vect.
[[nodiscard]] river::Pipeline make_spectral_pipeline(const PipelineParams& params);

/// Extraction + spectral segments composed.
[[nodiscard]] river::Pipeline make_full_pipeline(const PipelineParams& params);

/// A pattern harvested from the pipeline output, with its provenance.
struct ExtractedPattern {
  std::vector<float> features;
  std::int64_t clip_id = -1;
  std::int64_t ensemble_id = -1;
  std::int64_t start_sample = -1;     ///< ensemble start within the clip
  std::int64_t ensemble_samples = 0;  ///< ensemble length
  std::string species;                ///< ground-truth attr if present
};

/// Run a clip through the full pipeline and harvest all patterns.
[[nodiscard]] std::vector<ExtractedPattern> process_clip(
    const dsp::WavClip& clip, std::uint64_t clip_id, const PipelineParams& params,
    const river::AttrMap& extra_attrs = {});

/// Collect patterns from a pipeline output record stream (pattern records
/// inside ensemble scopes).
[[nodiscard]] std::vector<ExtractedPattern> harvest_patterns(
    const std::vector<river::Record>& records);

/// Text rendering of the Figure 5 operator graph for the given parameters.
[[nodiscard]] std::string pipeline_diagram(const PipelineParams& params);

}  // namespace dynriver::core
