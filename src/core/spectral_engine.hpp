// The shared spectral execution engine.
//
// Every spectral consumer in the codebase — the river operators
// (welchwindow/dft), the batch FeatureExtractor, the extractor facades, and
// dsp::stft via the same underlying plan cache — used to build its own
// windows and run unplanned FFTs with per-call scratch. SpectralEngine
// centralizes that: it owns the transform geometry (window kind + DFT size)
// and executes every transform through plan-cached FFTs (dsp::FftPlan) with
// reusable per-thread scratch.
//
// Thread model: the engine itself is immutable after construction; all
// mutable execution state (FFT plans, window tables, pad/spectrum scratch)
// lives in thread-local storage. One engine can therefore be shared by
// reference across a whole pipeline — and across threads (e.g. the
// MultiStreamExtractor's worker pool) — without locking.
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "core/params.hpp"
#include "dsp/window.hpp"

namespace dynriver::core {

class SpectralEngine {
 public:
  SpectralEngine(dsp::WindowKind window, std::size_t dft_size);
  /// Geometry from pipeline parameters (window kind + dft_size).
  explicit SpectralEngine(const PipelineParams& params);

  [[nodiscard]] std::size_t dft_size() const { return dft_size_; }
  [[nodiscard]] dsp::WindowKind window_kind() const { return window_; }

  /// Apply the engine's analysis window in place. Window tables are cached
  /// per (kind, length) in thread-local storage, so partial trailing records
  /// cost one table build per thread, not one per record.
  void apply_window(std::span<float> record) const;

  /// Windowed magnitude spectrum of one analysis record: windows a copy of
  /// `record` (record.size() <= dft_size()), zero-pads to dft_size(), and
  /// writes the dft_size() magnitudes |X[k]| into `out`.
  void windowed_magnitudes(std::span<const float> record,
                           std::vector<float>& out) const;

  /// Batched windowed magnitude spectra: `records` is a row-major matrix of
  /// same-length records (records.size() must be a multiple of `record_len`,
  /// record_len <= dft_size()); writes count rows of dft_size() magnitudes
  /// into `out`. Bit-identical to calling windowed_magnitudes per row — the
  /// batch hoists the window table, FFT plan, and pad zeroing out of the
  /// record loop and streams each row through one cache-hot padded buffer
  /// (windowing fused with the copy), so per-record dispatch amortizes
  /// across a clip.
  void windowed_magnitudes_batch(std::span<const float> records,
                                 std::size_t record_len,
                                 std::vector<float>& out) const;

  /// Forward DFT of a float-complex payload, zero-padded (or truncated) to
  /// dft_size(); result narrowed back to float-complex in `out`.
  void dft(std::span<const std::complex<float>> in,
           std::vector<std::complex<float>>& out) const;

 private:
  dsp::WindowKind window_;
  std::size_t dft_size_;
};

}  // namespace dynriver::core
