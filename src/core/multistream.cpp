#include "core/multistream.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/thread_pool.hpp"
#include "core/stream_session.hpp"
#include "ts/anomaly.hpp"

namespace dynriver::core {

MultiStreamExtractor::MultiStreamExtractor(
    MultiStreamParams params, std::shared_ptr<const SpectralEngine> engine)
    : params_(std::move(params)), features_(params_.base, std::move(engine)) {
  params_.base.validate();
  runner_ = std::make_unique<common::TaskRunner>(params_.score_threads);
}

MultiExtractionResult MultiStreamExtractor::extract(
    std::span<const std::span<const float>> streams, bool keep_signals) const {
  DR_EXPECTS(!streams.empty());
  const std::size_t n = streams.front().size();
  for (const auto& s : streams) DR_EXPECTS(s.size() == n);

  // Both strategies share the session's trigger + cutter automaton; fusion
  // always reads channels in fixed order, so they are bit-identical.
  StreamSession::Options options;
  if (keep_signals) options.tap_capacity = SignalTap::kUnbounded;
  MultiStreamSession session(params_, streams.size(), std::move(options),
                             features_.engine());

  if (runner_->serial() || streams.size() == 1) {
    // Streaming fusion: one scorer per channel advanced in lockstep, O(1)
    // extra memory — archive-scale clips never materialize score buffers.
    // The per-sample hot calls (scorer fast path, moving average, trigger,
    // cutter) are all header-inline, so this loop fuses into straight-line
    // arithmetic — a batch-scored side buffer measured *slower* (the extra
    // store/load round-trip per score outweighed any locality win).
    session.push(streams);
  } else {
    // Parallel scoring: each channel's scorer is an independent streaming
    // automaton, so channels run concurrently into disjoint per-channel
    // slots (O(channels * n) doubles); the session then fuses the score
    // series and drives its trigger + cutter in one pass.
    std::vector<std::vector<double>> scores(streams.size());
    runner_->run(streams.size(), [&](std::size_t s) {
      ts::StreamingAnomalyScorer scorer(params_.base.anomaly);
      auto& out = scores[s];
      out.resize(n);
      const auto stream = streams[s];
      for (std::size_t i = 0; i < n; ++i) out[i] = scorer.push(stream[i]);
    });
    std::vector<std::span<const double>> score_spans;
    score_spans.reserve(scores.size());
    for (const auto& s : scores) score_spans.emplace_back(s);
    session.push_scored(score_spans, streams);
  }

  MultiExtractionResult result;
  result.ensembles = session.finish();
  if (keep_signals) result.fused_scores = session.tap().scores();
  return result;
}

std::vector<std::vector<std::vector<float>>> MultiStreamExtractor::featurize(
    const MultiEnsemble& ensemble) const {
  std::vector<std::vector<std::vector<float>>> out;
  out.reserve(ensemble.channel_samples.size());
  for (const auto& channel : ensemble.channel_samples) {
    out.push_back(features_.patterns(channel));
  }
  return out;
}

std::vector<float> augment_with_context(std::span<const float> pattern,
                                        std::span<const float> context,
                                        double context_gain) {
  DR_EXPECTS(!pattern.empty());
  DR_EXPECTS(context_gain >= 0.0);

  double energy = 0.0;
  for (const float v : pattern) energy += static_cast<double>(v) * v;
  const double rms = std::sqrt(energy / static_cast<double>(pattern.size()));

  std::vector<float> out(pattern.begin(), pattern.end());
  out.reserve(pattern.size() + context.size());
  const auto scale = static_cast<float>(rms * context_gain);
  for (const float c : context) out.push_back(c * scale);
  return out;
}

}  // namespace dynriver::core
