#include "core/multistream.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "core/ops_anomaly.hpp"
#include "ts/anomaly.hpp"

namespace dynriver::core {

MultiStreamExtractor::MultiStreamExtractor(MultiStreamParams params)
    : params_(std::move(params)) {
  params_.base.validate();
}

MultiExtractionResult MultiStreamExtractor::extract(
    std::span<const std::span<const float>> streams, bool keep_signals) const {
  DR_EXPECTS(!streams.empty());
  const std::size_t n = streams.front().size();
  for (const auto& s : streams) DR_EXPECTS(s.size() == n);

  MultiExtractionResult result;
  if (keep_signals) result.fused_scores.resize(n);

  std::vector<ts::StreamingAnomalyScorer> scorers;
  scorers.reserve(streams.size());
  for (std::size_t s = 0; s < streams.size(); ++s) {
    scorers.emplace_back(params_.base.anomaly);
  }
  TriggerState trigger(params_.base.trigger_sigma,
                       params_.base.trigger_min_baseline,
                       params_.base.trigger_hold_samples);

  // Pass 1: fused score -> triggered runs.
  std::vector<std::pair<std::size_t, std::size_t>> runs;
  bool active = false;
  std::size_t run_start = 0;
  for (std::size_t i = 0; i < n; ++i) {
    double fused = params_.fusion == ScoreFusion::kMax ? 0.0 : 0.0;
    if (params_.fusion == ScoreFusion::kMax) {
      for (std::size_t s = 0; s < streams.size(); ++s) {
        fused = std::max(fused, scorers[s].push(streams[s][i]));
      }
    } else {
      for (std::size_t s = 0; s < streams.size(); ++s) {
        fused += scorers[s].push(streams[s][i]);
      }
      fused /= static_cast<double>(streams.size());
    }
    const bool trig = trigger.push(fused);
    if (keep_signals) result.fused_scores[i] = static_cast<float>(fused);
    if (trig && !active) {
      active = true;
      run_start = i;
    } else if (!trig && active) {
      active = false;
      runs.emplace_back(run_start, i);
    }
  }
  if (active) runs.emplace_back(run_start, n);

  // Pass 2: merge gaps, apply the length floor, cut every channel.
  std::vector<std::pair<std::size_t, std::size_t>> merged;
  for (const auto& run : runs) {
    if (!merged.empty() &&
        run.first - merged.back().second <= params_.base.merge_gap_samples) {
      merged.back().second = run.second;
    } else {
      merged.push_back(run);
    }
  }
  for (const auto& [lo, hi] : merged) {
    if (hi - lo < params_.base.min_ensemble_samples) continue;
    MultiEnsemble ensemble;
    ensemble.start_sample = lo;
    ensemble.length = hi - lo;
    ensemble.channel_samples.reserve(streams.size());
    for (const auto& stream : streams) {
      ensemble.channel_samples.emplace_back(
          stream.begin() + static_cast<std::ptrdiff_t>(lo),
          stream.begin() + static_cast<std::ptrdiff_t>(hi));
    }
    result.ensembles.push_back(std::move(ensemble));
  }
  return result;
}

std::vector<float> augment_with_context(std::span<const float> pattern,
                                        std::span<const float> context,
                                        double context_gain) {
  DR_EXPECTS(!pattern.empty());
  DR_EXPECTS(context_gain >= 0.0);

  double energy = 0.0;
  for (const float v : pattern) energy += static_cast<double>(v) * v;
  const double rms = std::sqrt(energy / static_cast<double>(pattern.size()));

  std::vector<float> out(pattern.begin(), pattern.end());
  out.reserve(pattern.size() + context.size());
  const auto scale = static_cast<float>(rms * context_gain);
  for (const float c : context) out.push_back(c * scale);
  return out;
}

}  // namespace dynriver::core
