#include "core/multistream.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "core/stream_session.hpp"
#include "ts/anomaly.hpp"

namespace dynriver::core {

MultiStreamExtractor::MultiStreamExtractor(
    MultiStreamParams params, std::shared_ptr<const SpectralEngine> engine)
    : params_(std::move(params)), features_(params_.base, std::move(engine)) {
  params_.base.validate();
  runner_ = std::make_unique<common::TaskRunner>(params_.score_threads);
}

MultiExtractionResult MultiStreamExtractor::extract(
    std::span<const std::span<const float>> streams, bool keep_signals) const {
  DR_EXPECTS(!streams.empty());
  const std::size_t n = streams.front().size();
  for (const auto& s : streams) DR_EXPECTS(s.size() == n);

  // Both strategies share the session's trigger + cutter automaton; fusion
  // always reads channels in fixed order, so they are bit-identical.
  StreamSession::Options options;
  if (keep_signals) options.tap_capacity = SignalTap::kUnbounded;
  MultiStreamSession session(params_, streams.size(), std::move(options),
                             features_.engine());

  // Auto-degradation: threading only enters the picture when the runner
  // actually resolved to more than one lane AND there is more than one
  // channel to spread over them. A threads=0 extractor on a 1-core host
  // (shared pool of 1 lane) therefore runs the serial path transparently —
  // bit-identical, and never slower than serial by construction.
  const std::size_t lanes = std::min(runner_->lanes(), streams.size());
  if (lanes <= 1 || streams.size() == 1) {
    // Streaming fusion: the session advances one scorer per channel in
    // lockstep, block-batched through the dsp::simd kernels, O(block) extra
    // memory — archive-scale clips never materialize score buffers.
    session.push(streams);
  } else {
    // Threaded scoring over persistent per-channel scorers, chunk by chunk:
    // each channel's scorer is an independent streaming automaton, so
    // channels score concurrently into disjoint per-channel slots and the
    // session fuses each chunk behind them. Chunking (instead of whole-clip
    // score buffers) keeps memory at O(channels * chunk) and gives the
    // dispatch-cost gate something to measure against.
    //
    // The gate, measured per extract() call rather than assumed: chunk 0 is
    // scored serially under a stopwatch; if the work a fan-out could save —
    // serial_ns * (1 - 1/lanes) — does not clear 4x the pool's measured
    // dispatch cost, every later chunk stays serial (dispatch would eat the
    // win). Otherwise chunk 1 runs threaded, also timed, and threading is
    // kept only if it actually beat chunk 0's serial time — catching hosts
    // whose advertised lanes do not parallelize (oversubscribed container,
    // DR_THREADS above the physical core count). Mixing serial and
    // threaded chunks is safe: the per-channel scorer state advances
    // identically either way.
    const std::size_t ch = streams.size();
    constexpr std::size_t kChunkSamples = 32768;
    std::vector<ts::StreamingAnomalyScorer> scorers;
    scorers.reserve(ch);
    for (std::size_t c = 0; c < ch; ++c) {
      scorers.emplace_back(params_.base.anomaly);
    }
    const std::size_t chunk_cap = std::min(kChunkSamples, n);
    std::vector<std::vector<double>> scores(ch);
    for (auto& s : scores) s.resize(chunk_cap);
    std::vector<std::span<const double>> score_spans(ch);
    std::vector<std::span<const float>> chunk_spans(ch);

    const double dispatch_ns = runner_->dispatch_cost_ns();
    const double lane_gain = 1.0 - 1.0 / static_cast<double>(lanes);
    double serial_chunk_ns = 0.0;
    bool use_threads = false;
    std::size_t chunk_index = 0;
    for (std::size_t base = 0; base < n; base += kChunkSamples, ++chunk_index) {
      const std::size_t m = std::min(kChunkSamples, n - base);
      const auto score_channel = [&](std::size_t c) {
        scorers[c].push_batch(streams[c].data() + base, m, scores[c].data());
      };
      if (chunk_index == 0) {
        const Stopwatch sw;
        for (std::size_t c = 0; c < ch; ++c) score_channel(c);
        serial_chunk_ns = sw.seconds() * 1e9;
        // Provisional: fan out only if the savable work clears the
        // dispatch cost with margin; chunk 1 confirms it empirically.
        use_threads =
            m == kChunkSamples && serial_chunk_ns * lane_gain > 4.0 * dispatch_ns;
      } else if (use_threads && chunk_index == 1 && m == kChunkSamples) {
        const Stopwatch sw;
        runner_->run(ch, score_channel);
        use_threads = sw.seconds() * 1e9 < serial_chunk_ns;
      } else if (use_threads) {
        runner_->run(ch, score_channel);
      } else {
        for (std::size_t c = 0; c < ch; ++c) score_channel(c);
      }
      for (std::size_t c = 0; c < ch; ++c) {
        score_spans[c] = {scores[c].data(), m};
        chunk_spans[c] = streams[c].subspan(base, m);
      }
      session.push_scored(score_spans, chunk_spans);
    }
  }

  MultiExtractionResult result;
  result.ensembles = session.finish();
  if (keep_signals) result.fused_scores = session.tap().scores();
  return result;
}

std::vector<std::vector<std::vector<float>>> MultiStreamExtractor::featurize(
    const MultiEnsemble& ensemble) const {
  std::vector<std::vector<std::vector<float>>> out;
  out.reserve(ensemble.channel_samples.size());
  for (const auto& channel : ensemble.channel_samples) {
    out.push_back(features_.patterns(channel));
  }
  return out;
}

std::vector<float> augment_with_context(std::span<const float> pattern,
                                        std::span<const float> context,
                                        double context_gain) {
  DR_EXPECTS(!pattern.empty());
  DR_EXPECTS(context_gain >= 0.0);

  double energy = 0.0;
  for (const float v : pattern) energy += static_cast<double>(v) * v;
  const double rms = std::sqrt(energy / static_cast<double>(pattern.size()));

  std::vector<float> out(pattern.begin(), pattern.end());
  out.reserve(pattern.size() + context.size());
  const auto scale = static_cast<float>(rms * context_gain);
  for (const float c : context) out.push_back(c * scale);
  return out;
}

}  // namespace dynriver::core
