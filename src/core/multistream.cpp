#include "core/multistream.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/thread_pool.hpp"
#include "core/ops_anomaly.hpp"
#include "ts/anomaly.hpp"

namespace dynriver::core {

MultiStreamExtractor::MultiStreamExtractor(
    MultiStreamParams params, std::shared_ptr<const SpectralEngine> engine)
    : params_(std::move(params)), features_(params_.base, std::move(engine)) {
  params_.base.validate();
  runner_ = std::make_unique<common::TaskRunner>(params_.score_threads);
}

MultiExtractionResult MultiStreamExtractor::extract(
    std::span<const std::span<const float>> streams, bool keep_signals) const {
  DR_EXPECTS(!streams.empty());
  const std::size_t n = streams.front().size();
  for (const auto& s : streams) DR_EXPECTS(s.size() == n);

  MultiExtractionResult result;
  if (keep_signals) result.fused_scores.resize(n);

  TriggerState trigger(params_.base.trigger_sigma,
                       params_.base.trigger_min_baseline,
                       params_.base.trigger_hold_samples);

  // Per-sample fusion -> trigger -> run bookkeeping, shared by both scoring
  // strategies below. Fusion always reads channels in fixed order, so the
  // strategies are bit-identical.
  std::vector<std::pair<std::size_t, std::size_t>> runs;
  bool active = false;
  std::size_t run_start = 0;
  const auto consume = [&](std::size_t i, double fused) {
    const bool trig = trigger.push(fused);
    if (keep_signals) result.fused_scores[i] = static_cast<float>(fused);
    if (trig && !active) {
      active = true;
      run_start = i;
    } else if (!trig && active) {
      active = false;
      runs.emplace_back(run_start, i);
    }
  };

  if (runner_->serial() || streams.size() == 1) {
    // Streaming fusion: one scorer per channel advanced in lockstep, O(1)
    // extra memory — archive-scale clips never materialize score buffers.
    std::vector<ts::StreamingAnomalyScorer> scorers;
    scorers.reserve(streams.size());
    for (std::size_t s = 0; s < streams.size(); ++s) {
      scorers.emplace_back(params_.base.anomaly);
    }
    for (std::size_t i = 0; i < n; ++i) {
      double fused = 0.0;
      if (params_.fusion == ScoreFusion::kMax) {
        for (std::size_t s = 0; s < streams.size(); ++s) {
          fused = std::max(fused, scorers[s].push(streams[s][i]));
        }
      } else {
        for (std::size_t s = 0; s < streams.size(); ++s) {
          fused += scorers[s].push(streams[s][i]);
        }
        fused /= static_cast<double>(streams.size());
      }
      consume(i, fused);
    }
  } else {
    // Parallel scoring: each channel's scorer is an independent streaming
    // automaton, so channels run concurrently into disjoint per-channel
    // slots (O(channels * n) doubles), then fusion reads them serially.
    std::vector<std::vector<double>> scores(streams.size());
    runner_->run(streams.size(), [&](std::size_t s) {
      ts::StreamingAnomalyScorer scorer(params_.base.anomaly);
      auto& out = scores[s];
      out.resize(n);
      const auto stream = streams[s];
      for (std::size_t i = 0; i < n; ++i) out[i] = scorer.push(stream[i]);
    });
    for (std::size_t i = 0; i < n; ++i) {
      double fused = 0.0;
      if (params_.fusion == ScoreFusion::kMax) {
        for (std::size_t s = 0; s < streams.size(); ++s) {
          fused = std::max(fused, scores[s][i]);
        }
      } else {
        for (std::size_t s = 0; s < streams.size(); ++s) {
          fused += scores[s][i];
        }
        fused /= static_cast<double>(streams.size());
      }
      consume(i, fused);
    }
  }
  if (active) runs.emplace_back(run_start, n);

  // Pass 2: merge gaps, apply the length floor, cut every channel.
  std::vector<std::pair<std::size_t, std::size_t>> merged;
  for (const auto& run : runs) {
    if (!merged.empty() &&
        run.first - merged.back().second <= params_.base.merge_gap_samples) {
      merged.back().second = run.second;
    } else {
      merged.push_back(run);
    }
  }
  for (const auto& [lo, hi] : merged) {
    if (hi - lo < params_.base.min_ensemble_samples) continue;
    MultiEnsemble ensemble;
    ensemble.start_sample = lo;
    ensemble.length = hi - lo;
    ensemble.channel_samples.reserve(streams.size());
    for (const auto& stream : streams) {
      ensemble.channel_samples.emplace_back(
          stream.begin() + static_cast<std::ptrdiff_t>(lo),
          stream.begin() + static_cast<std::ptrdiff_t>(hi));
    }
    result.ensembles.push_back(std::move(ensemble));
  }
  return result;
}

std::vector<std::vector<std::vector<float>>> MultiStreamExtractor::featurize(
    const MultiEnsemble& ensemble) const {
  std::vector<std::vector<std::vector<float>>> out;
  out.reserve(ensemble.channel_samples.size());
  for (const auto& channel : ensemble.channel_samples) {
    out.push_back(features_.patterns(channel));
  }
  return out;
}

std::vector<float> augment_with_context(std::span<const float> pattern,
                                        std::span<const float> context,
                                        double context_gain) {
  DR_EXPECTS(!pattern.empty());
  DR_EXPECTS(context_gain >= 0.0);

  double energy = 0.0;
  for (const float v : pattern) energy += static_cast<double>(v) * v;
  const double rms = std::sqrt(energy / static_cast<double>(pattern.size()));

  std::vector<float> out(pattern.begin(), pattern.end());
  out.reserve(pattern.size() + context.size());
  const auto scale = static_cast<float>(rms * context_gain);
  for (const float c : context) out.push_back(c * scale);
  return out;
}

}  // namespace dynriver::core
