// The one true cutter automaton.
//
// detail::StreamCutter runs the trigger-run -> gap-merge -> length-floor
// state machine over C synchronized channels, buffering only the open
// ensemble and the merge-gap lookahead. It is the single implementation of
// the paper's cutter semantics: StreamSession (C = 1), MultiStreamSession,
// and the river operator CutterOp all delegate to it, so the operator path
// and the sessions cannot diverge (tests/test_core_ops.cpp proves them
// bit-identical under every chunking).
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <vector>

namespace dynriver::core::detail {

/// The trigger-run -> gap-merge -> length-floor automaton over C
/// synchronized channels, buffering only the open ensemble and the merge
/// gap.
class StreamCutter {
 public:
  StreamCutter(std::size_t channels, std::size_t merge_gap_samples,
               std::size_t min_ensemble_samples);

  /// Feed one frame: the trigger value plus one sample per channel
  /// (`frame[c]`, c < channels). Header-inline so the per-sample fast path
  /// (background sample, nothing open: two branches) fuses into the
  /// sessions' scoring loops; the triggered/pending paths are outlined.
  void step(bool trig, const float* frame) {
    const std::size_t i = pos_++;
    if (trig) {
      step_triggered(i, frame);
      return;
    }
    if (cutting_) {
      cutting_ = false;
      pending_ = true;
    }
    if (pending_) {
      for (std::size_t c = 0; c < channels_; ++c) {
        gaps_[c].push_back(frame[c]);
      }
      // Gap too wide to merge: the ensemble's fate is decided now, so it
      // emits immediately instead of waiting for end of stream.
      if (gaps_[0].size() > merge_gap_) finalize();
    }
  }

  /// Batch twin of step(): feed `len` consecutive frames that all share one
  /// trigger value — `channels[c] + offset` points at channel c's first
  /// sample. Bit-identical to `len` single steps, but the open ensemble and
  /// merge gap grow by bulk range inserts instead of per-sample push_back,
  /// which is what keeps batch extraction at range-slicing speed: trigger
  /// runs are thousands of samples long, so callers flush per *run*, not
  /// per sample (see StreamSession::push).
  void step_run(bool trig, const float* const* channels, std::size_t offset,
                std::size_t len);

  /// End of stream: close the open run, decide the pending ensemble.
  void finish();
  void reset();

  /// True between ensembles: no open run, no pending merge decision. The
  /// safe boundary for re-parameterization — set_bounds() here cannot
  /// retroactively change any in-flight ensemble's fate.
  [[nodiscard]] bool idle() const { return !cutting_ && !pending_; }

  /// Re-parameterize the automaton. Callers re-tuning a live stream should
  /// wait for idle() (StreamSession::reconfigure does); changing bounds
  /// mid-ensemble legally applies the new values to the open decision.
  void set_bounds(std::size_t merge_gap_samples,
                  std::size_t min_ensemble_samples) {
    merge_gap_ = merge_gap_samples;
    min_len_ = min_ensemble_samples;
  }

  struct Cut {
    std::size_t start_sample = 0;
    std::vector<std::vector<float>> channels;  ///< equal-length cuts
  };
  /// Oldest completed ensemble, if any.
  [[nodiscard]] std::optional<Cut> pop();
  [[nodiscard]] std::size_t ready() const { return ready_.size(); }

  /// Per-channel samples currently buffered (open ensemble + merge gap +
  /// undrained cuts) — the quantity the bounded-memory soak test pins down.
  [[nodiscard]] std::size_t buffered_samples() const;

 private:
  /// Absorb a pending merge gap or open a fresh run starting at frame `i`
  /// — the one copy of the re-fire/start bookkeeping shared by step() and
  /// step_run().
  void open_run(std::size_t i);
  void step_triggered(std::size_t i, const float* frame);
  void finalize();

  std::size_t channels_;
  std::size_t merge_gap_;
  std::size_t min_len_;
  std::size_t pos_ = 0;  ///< absolute index of the next frame
  bool cutting_ = false;
  bool pending_ = false;
  std::size_t start_ = 0;
  std::vector<std::vector<float>> bufs_;  ///< open ensemble, per channel
  std::vector<std::vector<float>> gaps_;  ///< merge-gap lookahead, per channel
  std::deque<Cut> ready_;
};

}  // namespace dynriver::core::detail
