#include "core/extractor.hpp"

#include "common/contracts.hpp"
#include "core/ops_anomaly.hpp"
#include "ts/anomaly.hpp"

namespace dynriver::core {

std::size_t ExtractionResult::retained_samples() const {
  std::size_t acc = 0;
  for (const auto& e : ensembles) acc += e.samples.size();
  return acc;
}

double ExtractionResult::reduction_fraction(std::size_t total_samples) const {
  if (total_samples == 0) return 0.0;
  return 1.0 - static_cast<double>(retained_samples()) /
                   static_cast<double>(total_samples);
}

EnsembleExtractor::EnsembleExtractor(PipelineParams params,
                                     std::shared_ptr<const SpectralEngine> engine)
    : params_(params), features_(std::move(params), std::move(engine)) {
  params_.validate();
}

std::vector<std::vector<float>> EnsembleExtractor::featurize(
    const Ensemble& ensemble) const {
  return features_.patterns(ensemble.samples);
}

ExtractionResult EnsembleExtractor::extract(std::span<const float> samples,
                                            bool keep_signals) const {
  ExtractionResult result;
  if (keep_signals) {
    result.scores.resize(samples.size());
    result.trigger.resize(samples.size());
  }

  ts::StreamingAnomalyScorer scorer(params_.anomaly);
  TriggerState trigger(params_.trigger_sigma, params_.trigger_min_baseline,
                       params_.trigger_hold_samples);

  // Pass 1: per-sample scoring and triggered intervals.
  std::vector<std::pair<std::size_t, std::size_t>> runs;  // [start, end)
  bool active = false;
  std::size_t run_start = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double score = scorer.push(samples[i]);
    const bool trig = trigger.push(score);
    if (keep_signals) {
      result.scores[i] = static_cast<float>(score);
      result.trigger[i] = trig ? 1 : 0;
    }
    if (trig && !active) {
      active = true;
      run_start = i;
    } else if (!trig && active) {
      active = false;
      runs.emplace_back(run_start, i);
    }
  }
  if (active) runs.emplace_back(run_start, samples.size());

  // Pass 2: merge runs separated by gaps up to merge_gap_samples (matching
  // the cutter's pending-ensemble semantics), then apply the length floor.
  std::vector<std::pair<std::size_t, std::size_t>> merged;
  for (const auto& run : runs) {
    if (!merged.empty() &&
        run.first - merged.back().second <= params_.merge_gap_samples) {
      merged.back().second = run.second;
    } else {
      merged.push_back(run);
    }
  }
  for (const auto& [lo, hi] : merged) {
    if (hi - lo < params_.min_ensemble_samples) continue;
    result.ensembles.push_back(Ensemble{
        lo, std::vector<float>(samples.begin() + static_cast<std::ptrdiff_t>(lo),
                               samples.begin() + static_cast<std::ptrdiff_t>(hi))});
  }
  return result;
}

}  // namespace dynriver::core
