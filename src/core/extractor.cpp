#include "core/extractor.hpp"

#include "core/stream_session.hpp"

namespace dynriver::core {

std::size_t ExtractionResult::retained_samples() const {
  std::size_t acc = 0;
  for (const auto& e : ensembles) acc += e.samples.size();
  return acc;
}

double ExtractionResult::reduction_fraction(std::size_t total_samples) const {
  if (total_samples == 0) return 0.0;
  return 1.0 - static_cast<double>(retained_samples()) /
                   static_cast<double>(total_samples);
}

EnsembleExtractor::EnsembleExtractor(PipelineParams params,
                                     std::shared_ptr<const SpectralEngine> engine)
    : params_(params), features_(std::move(params), std::move(engine)) {
  params_.validate();
}

std::vector<std::vector<float>> EnsembleExtractor::featurize(
    const Ensemble& ensemble) const {
  return features_.patterns(ensemble.samples);
}

ExtractionResult EnsembleExtractor::extract(std::span<const float> samples,
                                            bool keep_signals) const {
  StreamSession::Options options;
  if (keep_signals) options.tap_capacity = SignalTap::kUnbounded;
  StreamSession session(params_, std::move(options), features_.engine());

  session.push(samples);
  ExtractionResult result;
  result.ensembles = session.finish();
  if (keep_signals) {
    result.scores = session.tap().scores();
    result.trigger = session.tap().trigger();
  }
  return result;
}

}  // namespace dynriver::core
