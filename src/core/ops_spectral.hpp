// The spectral pipeline segment (paper, Section 3, Figure 5):
// reslice -> welchwindow -> float2cplx -> dft -> cabs -> cutout -> [paa]
// -> rec2vect.
//
// It transforms the amplitude data of each ensemble into a power-spectrum
// representation and finally into fixed-size feature vectors (patterns)
// suitable for MESO.
#pragma once

#include <deque>
#include <memory>
#include <optional>

#include "core/params.hpp"
#include "core/spectral_engine.hpp"
#include "river/operator.hpp"

namespace dynriver::core {

/// reslice: for each pair of consecutive audio records inside a scope,
/// inserts a record made of the last half of the first and the first half of
/// the second, halving the effective hop and reducing DFT edge effects.
/// (The paper's phrasing "second half of the second record" is taken as a
/// typo for the standard 50%-overlap construction.)
class ResliceOp final : public river::Operator {
 public:
  void process(river::Record rec, river::Emitter& out) override;
  void flush(river::Emitter& out) override;
  [[nodiscard]] std::string_view name() const override { return "reslice"; }

 private:
  void release_pending(river::Emitter& out);
  std::optional<river::Record> pending_;
};

/// welchwindow: applies a Welch (or configured) window to every audio record
/// through the shared SpectralEngine's thread-local window tables.
class WelchWindowOp final : public river::Operator {
 public:
  explicit WelchWindowOp(dsp::WindowKind kind = dsp::WindowKind::kWelch);
  /// Share one engine across the pipeline's spectral operators.
  explicit WelchWindowOp(std::shared_ptr<const SpectralEngine> engine);

  void process(river::Record rec, river::Emitter& out) override;
  [[nodiscard]] std::string_view name() const override { return "welchwindow"; }

 private:
  std::shared_ptr<const SpectralEngine> engine_;
};

/// float2cplx: converts float audio records to the complex format the dft
/// operator requires.
class Float2CplxOp final : public river::Operator {
 public:
  void process(river::Record rec, river::Emitter& out) override;
  [[nodiscard]] std::string_view name() const override { return "float2cplx"; }
};

/// dft: computes the discrete Fourier transform of each complex record,
/// zero-padding (or truncating) to a fixed transform length so every
/// spectrum has identical bin geometry. Transforms run through the shared
/// SpectralEngine (plan-cached FFTs, reusable scratch).
class DftOp final : public river::Operator {
 public:
  explicit DftOp(std::size_t dft_size);
  /// Share one engine across the pipeline's spectral operators.
  explicit DftOp(std::shared_ptr<const SpectralEngine> engine);

  void process(river::Record rec, river::Emitter& out) override;
  [[nodiscard]] std::string_view name() const override { return "dft"; }

 private:
  std::shared_ptr<const SpectralEngine> engine_;
};

/// cabs: complex absolute value of every element, producing float
/// power-spectrum records.
class CAbsOp final : public river::Operator {
 public:
  void process(river::Record rec, river::Emitter& out) override;
  [[nodiscard]] std::string_view name() const override { return "cabs"; }
};

/// cutout: keeps only the spectrum bins in [lo_bin, hi_bin) -- the paper's
/// ~[1.2 kHz, 9.6 kHz) band, where birdsong lives and wind/human noise does
/// not.
class CutoutOp final : public river::Operator {
 public:
  CutoutOp(std::size_t lo_bin, std::size_t hi_bin);
  /// Convenience: derive bins from the pipeline parameters.
  explicit CutoutOp(const PipelineParams& params);

  void process(river::Record rec, river::Emitter& out) override;
  [[nodiscard]] std::string_view name() const override { return "cutout"; }

 private:
  std::size_t lo_bin_;
  std::size_t hi_bin_;
};

/// paa: optional dimensionality reduction of each spectrum record by an
/// integer factor (paper: 10, turning 1050-feature patterns into 105).
class PaaOp final : public river::Operator {
 public:
  explicit PaaOp(std::size_t factor);

  void process(river::Record rec, river::Emitter& out) override;
  [[nodiscard]] std::string_view name() const override { return "paa"; }

 private:
  std::size_t factor_;
};

/// rec2vect: merges `merge` consecutive spectrum records into one pattern
/// record (kSubtypePattern), advancing by `stride` records between patterns.
/// Pattern state resets at every scope boundary so patterns never straddle
/// ensembles.
class Rec2VectOp final : public river::Operator {
 public:
  Rec2VectOp(std::size_t merge, std::size_t stride);

  void process(river::Record rec, river::Emitter& out) override;
  [[nodiscard]] std::string_view name() const override { return "rec2vect"; }

  [[nodiscard]] std::size_t patterns_emitted() const { return patterns_; }

 private:
  void try_emit(river::Emitter& out);

  std::size_t merge_;
  std::size_t stride_;
  std::deque<river::FloatVec> buffer_;
  std::size_t buffer_offset_ = 0;  ///< records consumed from scope start
  std::size_t next_start_ = 0;     ///< record index of the next pattern
  std::uint64_t pattern_seq_ = 0;  ///< per-scope pattern counter
  std::size_t patterns_ = 0;
};

}  // namespace dynriver::core
