#include "core/ops_spectral.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "core/ops_acoustic.hpp"
#include "ts/paa.hpp"

namespace dynriver::core {

using river::Record;
using river::RecordType;

namespace {
bool is_audio(const Record& rec) {
  return rec.type == RecordType::kData &&
         rec.subtype == river::kSubtypeAudio && rec.is_float();
}

bool is_spectrum(const Record& rec) {
  return rec.type == RecordType::kData &&
         rec.subtype == river::kSubtypeSpectrum && rec.is_float();
}
}  // namespace

// -- reslice ------------------------------------------------------------------

void ResliceOp::release_pending(river::Emitter& out) {
  if (pending_) {
    out.emit(std::move(*pending_));
    pending_.reset();
  }
}

void ResliceOp::process(Record rec, river::Emitter& out) {
  if (rec.type != RecordType::kData) {
    release_pending(out);
    out.emit(std::move(rec));
    return;
  }
  if (!is_audio(rec)) {
    out.emit(std::move(rec));
    return;
  }

  if (!pending_) {
    pending_ = std::move(rec);
    return;
  }

  const auto prev = pending_->floats();
  const auto cur = rec.floats();
  if (prev.size() == cur.size() && prev.size() >= 2) {
    const std::size_t half = prev.size() / 2;
    river::FloatVec overlap;
    overlap.reserve(prev.size());
    overlap.insert(overlap.end(), prev.end() - static_cast<std::ptrdiff_t>(half),
                   prev.end());
    overlap.insert(overlap.end(), cur.begin(),
                   cur.begin() + static_cast<std::ptrdiff_t>(prev.size() - half));
    Record overlap_rec = Record::data(river::kSubtypeAudio, std::move(overlap));
    overlap_rec.scope_depth = pending_->scope_depth;

    out.emit(std::move(*pending_));
    out.emit(std::move(overlap_rec));
  } else {
    // Size mismatch (trailing partial record): no overlap is constructed.
    out.emit(std::move(*pending_));
  }
  pending_ = std::move(rec);
}

void ResliceOp::flush(river::Emitter& out) { release_pending(out); }

// -- welchwindow --------------------------------------------------------------

WelchWindowOp::WelchWindowOp(dsp::WindowKind kind)
    : engine_(std::make_shared<SpectralEngine>(kind, PipelineParams{}.dft_size)) {}

WelchWindowOp::WelchWindowOp(std::shared_ptr<const SpectralEngine> engine)
    : engine_(std::move(engine)) {
  DR_EXPECTS(engine_ != nullptr);
}

void WelchWindowOp::process(Record rec, river::Emitter& out) {
  if (!is_audio(rec)) {
    out.emit(std::move(rec));
    return;
  }
  engine_->apply_window(rec.floats());
  out.emit(std::move(rec));
}

// -- float2cplx ---------------------------------------------------------------

void Float2CplxOp::process(Record rec, river::Emitter& out) {
  if (!is_audio(rec)) {
    out.emit(std::move(rec));
    return;
  }
  const auto samples = rec.floats();
  river::CplxVec cplx(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    cplx[i] = {samples[i], 0.0F};
  }
  Record converted = Record::data_complex(river::kSubtypeComplex, std::move(cplx));
  converted.scope_depth = rec.scope_depth;
  converted.attrs = std::move(rec.attrs);
  out.emit(std::move(converted));
}

// -- dft ------------------------------------------------------------------------

DftOp::DftOp(std::size_t dft_size)
    : engine_(std::make_shared<SpectralEngine>(dsp::WindowKind::kWelch, dft_size)) {}

DftOp::DftOp(std::shared_ptr<const SpectralEngine> engine)
    : engine_(std::move(engine)) {
  DR_EXPECTS(engine_ != nullptr);
}

void DftOp::process(Record rec, river::Emitter& out) {
  if (rec.type != RecordType::kData || !rec.is_complex()) {
    out.emit(std::move(rec));
    return;
  }
  river::CplxVec payload;
  engine_->dft(rec.cplx(), payload);
  Record transformed =
      Record::data_complex(river::kSubtypeComplex, std::move(payload));
  transformed.scope_depth = rec.scope_depth;
  transformed.attrs = std::move(rec.attrs);
  out.emit(std::move(transformed));
}

// -- cabs -----------------------------------------------------------------------

void CAbsOp::process(Record rec, river::Emitter& out) {
  if (rec.type != RecordType::kData || !rec.is_complex()) {
    out.emit(std::move(rec));
    return;
  }
  const auto in = rec.cplx();
  river::FloatVec mags(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    mags[i] = std::abs(in[i]);
  }
  Record magnitudes = Record::data(river::kSubtypeSpectrum, std::move(mags));
  magnitudes.scope_depth = rec.scope_depth;
  magnitudes.attrs = std::move(rec.attrs);
  out.emit(std::move(magnitudes));
}

// -- cutout ----------------------------------------------------------------------

CutoutOp::CutoutOp(std::size_t lo_bin, std::size_t hi_bin)
    : lo_bin_(lo_bin), hi_bin_(hi_bin) {
  DR_EXPECTS(hi_bin > lo_bin);
}

CutoutOp::CutoutOp(const PipelineParams& params)
    : CutoutOp(params.cutout_lo_bin(), params.cutout_hi_bin()) {}

void CutoutOp::process(Record rec, river::Emitter& out) {
  if (!is_spectrum(rec)) {
    out.emit(std::move(rec));
    return;
  }
  const auto in = rec.floats();
  DR_EXPECTS(hi_bin_ <= in.size());
  river::FloatVec band(in.begin() + static_cast<std::ptrdiff_t>(lo_bin_),
                       in.begin() + static_cast<std::ptrdiff_t>(hi_bin_));
  Record cut = Record::data(river::kSubtypeSpectrum, std::move(band));
  cut.scope_depth = rec.scope_depth;
  cut.attrs = std::move(rec.attrs);
  out.emit(std::move(cut));
}

// -- paa --------------------------------------------------------------------------

PaaOp::PaaOp(std::size_t factor) : factor_(factor) { DR_EXPECTS(factor >= 1); }

void PaaOp::process(Record rec, river::Emitter& out) {
  if (!is_spectrum(rec) || factor_ == 1) {
    out.emit(std::move(rec));
    return;
  }
  const auto in = rec.floats();
  Record reduced =
      Record::data(river::kSubtypeSpectrum, ts::paa_reduce_by(in, factor_));
  reduced.scope_depth = rec.scope_depth;
  reduced.attrs = std::move(rec.attrs);
  out.emit(std::move(reduced));
}

// -- rec2vect ----------------------------------------------------------------------

Rec2VectOp::Rec2VectOp(std::size_t merge, std::size_t stride)
    : merge_(merge), stride_(stride) {
  DR_EXPECTS(merge >= 1);
  DR_EXPECTS(stride >= 1);
}

void Rec2VectOp::process(Record rec, river::Emitter& out) {
  if (rec.type != RecordType::kData) {
    // Scope boundary: patterns never straddle scopes.
    buffer_.clear();
    buffer_offset_ = 0;
    next_start_ = 0;
    pattern_seq_ = 0;
    out.emit(std::move(rec));
    return;
  }
  if (!is_spectrum(rec)) {
    out.emit(std::move(rec));
    return;
  }

  buffer_.push_back(river::FloatVec(rec.floats().begin(), rec.floats().end()));
  try_emit(out);
}

void Rec2VectOp::try_emit(river::Emitter& out) {
  while (next_start_ + merge_ <= buffer_offset_ + buffer_.size()) {
    river::FloatVec pattern;
    for (std::size_t i = 0; i < merge_; ++i) {
      const auto& piece = buffer_[next_start_ - buffer_offset_ + i];
      pattern.insert(pattern.end(), piece.begin(), piece.end());
    }
    Record rec = Record::data(river::kSubtypePattern, std::move(pattern));
    rec.set_attr("pattern_index", static_cast<std::int64_t>(pattern_seq_++));
    out.emit(std::move(rec));
    ++patterns_;
    next_start_ += stride_;

    // Drop records no longer reachable by any future pattern.
    while (buffer_offset_ < next_start_ && !buffer_.empty()) {
      buffer_.pop_front();
      ++buffer_offset_;
    }
  }
}

}  // namespace dynriver::core
