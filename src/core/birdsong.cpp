#include "core/birdsong.hpp"

#include <sstream>

#include <memory>

#include "common/contracts.hpp"
#include "core/ops_acoustic.hpp"
#include "core/ops_anomaly.hpp"
#include "core/ops_spectral.hpp"
#include "core/spectral_engine.hpp"

namespace dynriver::core {

using river::Record;
using river::RecordType;

river::Pipeline make_extraction_pipeline(const PipelineParams& params) {
  params.validate();
  river::Pipeline p;
  p.emplace<SaxAnomalyOp>(params.anomaly);
  p.emplace<TriggerOp>(params.trigger_sigma, params.trigger_min_baseline,
                       params.trigger_hold_samples);
  p.emplace<CutterOp>(params);
  return p;
}

river::Pipeline make_spectral_pipeline(const PipelineParams& params) {
  params.validate();
  // One spectral engine per pipeline: welchwindow and dft share its window
  // tables and plan-cached FFT scratch.
  const auto engine = std::make_shared<const SpectralEngine>(params);
  river::Pipeline p;
  if (params.reslice) p.emplace<ResliceOp>();
  p.emplace<WelchWindowOp>(engine);
  p.emplace<Float2CplxOp>();
  p.emplace<DftOp>(engine);
  p.emplace<CAbsOp>();
  p.emplace<CutoutOp>(params);
  if (params.use_paa && params.paa_factor > 1) p.emplace<PaaOp>(params.paa_factor);
  p.emplace<Rec2VectOp>(params.pattern_merge, params.pattern_stride);
  return p;
}

river::Pipeline make_full_pipeline(const PipelineParams& params) {
  river::Pipeline p = make_extraction_pipeline(params);
  river::Pipeline spectral = make_spectral_pipeline(params);
  for (auto& op : spectral.release_operators()) p.add(std::move(op));
  return p;
}

std::vector<ExtractedPattern> harvest_patterns(
    const std::vector<river::Record>& records) {
  std::vector<ExtractedPattern> out;
  ExtractedPattern context;  // attrs of the innermost open ensemble

  for (const auto& rec : records) {
    switch (rec.type) {
      case RecordType::kOpenScope:
        if (rec.scope_type == river::kScopeEnsemble) {
          context.clip_id = rec.attr_int(kAttrClipId, -1);
          context.ensemble_id = rec.attr_int(kAttrEnsembleId, -1);
          context.start_sample = rec.attr_int(kAttrStartSample, -1);
          context.ensemble_samples = rec.attr_int(kAttrNumSamples, 0);
          context.species = rec.attr_string(kAttrSpecies, "");
        }
        break;
      case RecordType::kData:
        if (rec.subtype == river::kSubtypePattern && rec.is_float()) {
          ExtractedPattern p = context;
          const auto f = rec.floats();
          p.features.assign(f.begin(), f.end());
          out.push_back(std::move(p));
        }
        break;
      case RecordType::kCloseScope:
      case RecordType::kBadCloseScope:
        break;
    }
  }
  return out;
}

std::vector<ExtractedPattern> process_clip(const dsp::WavClip& clip,
                                           std::uint64_t clip_id,
                                           const PipelineParams& params,
                                           const river::AttrMap& extra_attrs) {
  river::Pipeline pipeline = make_full_pipeline(params);
  auto input = clip_to_records(clip, clip_id, params.record_size, extra_attrs);
  const auto output = river::run_pipeline(pipeline, std::move(input));
  return harvest_patterns(output);
}

std::string pipeline_diagram(const PipelineParams& params) {
  river::Pipeline p = make_full_pipeline(params);
  std::ostringstream os;
  os << "sensor -> readout -> storage -> data feed -> wav2rec";
  for (const auto& name : p.topology()) os << " -> " << name;
  os << " -> MESO";
  return os.str();
}

}  // namespace dynriver::core
