// Host-scale session multiplexing: many stations' streaming extraction
// sessions driven fairly on one machine.
//
// The paper's deployment shape is a sensor network of many acoustic
// stations feeding one analysis host. SessionScheduler owns one named
// StreamSession per station — each bound to a river::SampleSource and an
// river::EnsembleSink — and drives them from a common::ThreadPool with
// deficit round-robin scheduling: every round, each station with queued
// input gets a `quantum_samples` credit and processes whole chunks while
// its credit lasts, so a chatty station cannot starve a quiet one.
//
// Ingest is decoupled from processing by a per-station bounded queue with
// an explicit backpressure policy:
//   kBlock      — the producer (reader thread or push() caller) waits for
//                 queue room; backpressure propagates upstream (a TCP
//                 sender eventually blocks on its socket).
//   kDropOldest — the producer never waits; the oldest queued chunks are
//                 evicted to make room and every evicted sample is counted
//                 in StationStats::samples_dropped (lossy-edge accounting,
//                 complementing the sources' clean-vs-lost end tracking).
// The queue never holds more than `queue_capacity_samples` samples; with
// the session's own bounded buffering this caps the host's memory at
// sum over stations of (queue capacity + open ensemble + merge gap).
//
// Live re-parameterization: reconfigure(station, params) hands new
// trigger / merge-gap / length-floor parameters to a running session; they
// are adopted at the next safe automaton boundary (between ensembles, via
// StreamSession::reconfigure) without restarting the stream or losing the
// open ensemble.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <filesystem>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"
#include "common/thread_pool.hpp"
#include "core/stream_session.hpp"
#include "river/sample_io.hpp"

namespace dynriver::core {

/// What an ingest queue does when a chunk arrives and the queue is full.
enum class BackpressurePolicy : std::uint8_t {
  kBlock,      ///< producer waits for room (lossless; upstream slows down)
  kDropOldest  ///< evict oldest queued chunks, counting every lost sample
};

/// Per-station configuration.
struct StationConfig {
  PipelineParams params;
  BackpressurePolicy policy = BackpressurePolicy::kBlock;
  /// Ingest-queue bound in samples (a hard bound: enqueue never exceeds it;
  /// chunks must individually fit). Default ~3 s at the paper's rate.
  std::size_t queue_capacity_samples = 65536;
  /// Samples per source read; 0 = params.record_size. Must be <= the queue
  /// capacity. Also the granularity of drop-oldest eviction.
  std::size_t read_chunk_samples = 0;
  /// Weighted deficit round-robin: this station's per-round credit in
  /// samples; 0 adopts the scheduler-wide SchedulerOptions::quantum_samples
  /// (uniform fairness). A station with twice the quantum drains twice the
  /// samples per round while backlogged — priority stations (a critical
  /// hydrophone among routine ones) get a proportional throughput share
  /// without starving anyone.
  std::size_t quantum_samples = 0;
  /// Session observation knobs (taps, on_signal). on_signal runs on a
  /// scheduler worker thread.
  SessionOptions session_options;
  /// Optional shared SpectralEngine (e.g. one engine for all stations);
  /// nullptr builds a private one from `params`.
  std::shared_ptr<const SpectralEngine> engine;
};

/// Point-in-time per-station accounting.
struct StationStats {
  std::string name;
  std::size_t samples_in = 0;       ///< accepted into the ingest queue
  std::size_t samples_dropped = 0;  ///< evicted under kDropOldest
  std::size_t samples_consumed = 0; ///< pushed through the session
  std::size_t ensembles_out = 0;    ///< delivered to the sink
  std::size_t queued_samples = 0;   ///< current ingest-queue depth
  std::size_t session_buffered_samples = 0;  ///< open ensemble + gap + cuts
  bool finished = false;  ///< source/close seen, queue drained, sink finished
};

/// Aggregate snapshot across every station.
struct SchedulerStats {
  std::vector<StationStats> stations;
  std::size_t rounds = 0;  ///< scheduling rounds executed so far

  [[nodiscard]] std::size_t total_queued_samples() const;
  [[nodiscard]] std::size_t total_buffered_samples() const;  ///< queues + sessions
  [[nodiscard]] std::size_t total_samples_dropped() const;
  [[nodiscard]] std::size_t total_ensembles_out() const;
};

struct SchedulerOptions {
  /// Worker lanes for station processing (common::TaskRunner semantics:
  /// 0 = the shared common::ThreadPool, 1 = serial on the caller,
  /// >= 2 = a dedicated pool of that size).
  std::size_t threads = 0;
  /// Deficit round-robin credit per station per round, in samples, for
  /// stations that leave StationConfig::quantum_samples at 0. A station
  /// processes whole queued chunks while its accumulated credit lasts;
  /// credit carries over while work remains (so chunks larger than one
  /// quantum still progress) and resets when its queue drains.
  std::size_t quantum_samples = 4500;
  /// Observer invoked after every scheduling round with a fresh stats
  /// snapshot, on the scheduling thread with all workers quiescent —
  /// fairness/memory audits hook in here.
  std::function<void(const SchedulerStats&)> on_round;
};

/// Multiplexes N stations' StreamSessions on one host. Stations are added
/// up front; run() (or repeated process_available() calls) drives them to
/// completion. Thread-safe entry points: push(), close_station(),
/// reconfigure(), stats().
class SessionScheduler {
 public:
  explicit SessionScheduler(SchedulerOptions options = {});
  ~SessionScheduler();

  SessionScheduler(const SessionScheduler&) = delete;
  SessionScheduler& operator=(const SessionScheduler&) = delete;

  /// Source-fed station: run() spawns a reader thread that pulls
  /// `read_chunk_samples` at a time from `source` into the ingest queue
  /// under the configured backpressure policy, and closes the station at
  /// end of source. Returns the station id.
  std::size_t add_station(std::string name,
                          std::shared_ptr<river::SampleSource> source,
                          std::shared_ptr<river::EnsembleSink> sink,
                          StationConfig config = {});

  /// Push-fed station: no source; feed it with push() from any thread and
  /// end the stream with close_station().
  std::size_t add_station(std::string name,
                          std::shared_ptr<river::EnsembleSink> sink,
                          StationConfig config = {});

  /// Enqueue one chunk for a (push-fed) station under its backpressure
  /// policy. kBlock waits for queue room — some thread must be driving
  /// run()/process_available() or the wait never ends. Returns the number
  /// of samples evicted to make room (always 0 under kBlock).
  std::size_t push(std::size_t station, std::span<const float> samples);

  /// No more input for this station: once its queue drains, the session is
  /// finished, the tail ensembles delivered, and the sink finished.
  void close_station(std::size_t station);

  /// Live re-parameterization of a running session. Validated eagerly
  /// (must be reconfigure_compatible with the station's current params);
  /// adopted by the worker before the station's next processed chunk, at a
  /// safe automaton boundary. Ensembles already in flight are unaffected.
  void reconfigure(std::size_t station, const PipelineParams& params);

  /// Drive every station to completion: spawns the reader threads, then
  /// runs scheduling rounds until all stations are finished. Call at most
  /// once. Push-fed stations must be closed (by other threads) for run()
  /// to return.
  void run();

  /// One deficit-round-robin scheduling round over the stations that have
  /// queued work (or are ready to finish). Returns true while any station
  /// is unfinished. Alternative to run() for callers that interleave their
  /// own work or drive the scheduler deterministically (tests).
  bool process_available();

  [[nodiscard]] SchedulerStats stats() const;
  [[nodiscard]] std::size_t station_count() const { return stations_.size(); }
  [[nodiscard]] const std::string& station_name(std::size_t station) const;

  /// The station's session — for featurize() and parameter inspection.
  /// Only safe while the station is quiescent: from its own sink's
  /// accept()/finish() callbacks, between process_available() calls, or
  /// after run() returns.
  [[nodiscard]] const StreamSession& session(std::size_t station) const;

 private:
  struct Station;

  std::size_t add_station_impl(std::string name,
                               std::shared_ptr<river::SampleSource> source,
                               std::shared_ptr<river::EnsembleSink> sink,
                               StationConfig config);
  std::size_t enqueue(Station& st, std::span<const float> samples);
  void close_internal(Station& st);
  void process_station(Station& st);
  void deliver(Station& st, std::vector<river::Ensemble> ensembles);
  void reader_loop(Station& st);
  void notify_work();

  SchedulerOptions options_;
  std::unique_ptr<common::TaskRunner> runner_;
  std::vector<std::unique_ptr<Station>> stations_;
  std::vector<std::size_t> runnable_;  ///< scratch: station ids this round
  std::atomic<std::size_t> rounds_{0};
  bool running_ = false;
  std::atomic<bool> shutdown_{false};  ///< destructor unblocks producers

  common::Mutex work_mu_;
  common::CondVar work_cv_;
  std::uint64_t work_epoch_ DR_GUARDED_BY(work_mu_) = 0;
  std::vector<std::thread> readers_;
};

/// Archive backfill wiring: add a station whose source replays stream times
/// [t0, t1) of the segment store at `store_dir` (see river/segment_store.hpp)
/// through the scheduler — a month of archive re-extracts at batch speed
/// through the same sessions that serve live traffic. The archived records
/// carry their sample rate; `config.params` still fixes the session's
/// spectral configuration, so it must match the archived stream. Returns the
/// station id.
std::size_t add_replay_station(SessionScheduler& scheduler, std::string name,
                               const std::filesystem::path& store_dir,
                               double t0, double t1,
                               std::shared_ptr<river::EnsembleSink> sink,
                               StationConfig config = {});

}  // namespace dynriver::core
