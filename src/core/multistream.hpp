// Multi-stream ensemble extraction (the paper's future work, Section 6).
//
// "Currently, we have extracted ensembles from data streams comprising a
// single signal. [...] extracting ensembles from multiple correlated data
// streams may enhance classification and detection of time series events.
// For instance, species identification may be more accurate when acoustic
// data is coupled with geographic, weather or other information."
//
// This module implements both halves of that proposal:
//  1. MultiStreamExtractor -- runs one SAX anomaly scorer per synchronized
//     stream (e.g. two microphones of a station), fuses the smoothed scores
//     (max or mean), and drives a single adaptive trigger from the fused
//     score. Events visible in any stream cut ensembles from every stream
//     at identical boundaries, keeping them sample-aligned for downstream
//     multi-channel features.
//  2. augment_with_context -- appends normalized side-channel readings
//     (temperature, wind speed, time of day, ...) to a spectral pattern so
//     MESO can exploit environmental correlations.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/features.hpp"
#include "core/params.hpp"

namespace dynriver::core {

enum class ScoreFusion : std::uint8_t {
  kMax,   ///< an event in any stream triggers (union sensitivity)
  kMean,  ///< consensus: all streams must lean anomalous
};

struct MultiStreamParams {
  PipelineParams base;
  ScoreFusion fusion = ScoreFusion::kMax;
  /// Threads for per-channel anomaly scoring: 0 = the shared
  /// common::ThreadPool (hardware concurrency), 1 = serial. Each channel's
  /// scorer is an independent streaming automaton, so threaded and serial
  /// runs are bit-identical. This is a ceiling, not a promise: when the
  /// runner resolves to one lane, or the measured per-chunk scoring work
  /// does not clear the pool's measured dispatch cost, extract()
  /// transparently runs serial (see MultiStreamExtractor::extract).
  std::size_t score_threads = 0;
};

/// One extracted multi-channel ensemble: identical boundaries per stream.
struct MultiEnsemble {
  std::size_t start_sample = 0;
  std::size_t length = 0;
  /// channel_samples[s] holds the cut from stream s (all of size `length`).
  std::vector<std::vector<float>> channel_samples;

  [[nodiscard]] std::size_t end_sample() const { return start_sample + length; }
};

struct MultiExtractionResult {
  std::vector<MultiEnsemble> ensembles;
  /// Fused smoothed score per sample (filled when keep_signals).
  std::vector<float> fused_scores;
};

class MultiStreamExtractor {
 public:
  /// `engine` lets the extractor share one SpectralEngine with the rest of
  /// the pipeline; nullptr builds a private engine from `params.base`.
  explicit MultiStreamExtractor(
      MultiStreamParams params,
      std::shared_ptr<const SpectralEngine> engine = nullptr);

  /// Extract from `streams` (all the same length, sample-synchronized).
  /// A single stream reduces exactly to EnsembleExtractor's behaviour.
  /// Per-channel scoring runs on params().score_threads threads.
  [[nodiscard]] MultiExtractionResult extract(
      std::span<const std::span<const float>> streams,
      bool keep_signals = false) const;

  /// Spectral patterns per channel of one multi-ensemble, computed through
  /// the shared SpectralEngine: result[s] holds channel s's patterns.
  [[nodiscard]] std::vector<std::vector<std::vector<float>>> featurize(
      const MultiEnsemble& ensemble) const;

  [[nodiscard]] const MultiStreamParams& params() const { return params_; }
  [[nodiscard]] const std::shared_ptr<const SpectralEngine>& engine() const {
    return features_.engine();
  }

 private:
  MultiStreamParams params_;
  FeatureExtractor features_;  ///< shares the engine; powers featurize()
  /// Channel-scoring dispatch per score_threads; owns its dedicated pool
  /// (if any) so extract() never pays thread spawn/join per call.
  std::unique_ptr<common::TaskRunner> runner_;
};

/// Append context readings to a feature pattern. Context values are scaled
/// by `context_gain` relative to the pattern's RMS so the side channel
/// informs rather than dominates the Euclidean distance.
[[nodiscard]] std::vector<float> augment_with_context(
    std::span<const float> pattern, std::span<const float> context,
    double context_gain = 1.0);

}  // namespace dynriver::core
