#include "core/stream_session.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace dynriver::core {

// ---------------------------------------------------------------------------
// SignalTap
// ---------------------------------------------------------------------------

void SignalTap::reset() {
  total_ = 0;
  head_ = 0;
  scores_.clear();
  trigger_.clear();
}

namespace {

template <typename T>
std::vector<T> unroll_ring(const std::vector<T>& ring, std::size_t head) {
  std::vector<T> out;
  out.reserve(ring.size());
  out.insert(out.end(), ring.begin() + static_cast<std::ptrdiff_t>(head),
             ring.end());
  out.insert(out.end(), ring.begin(),
             ring.begin() + static_cast<std::ptrdiff_t>(head));
  return out;
}

}  // namespace

std::vector<float> SignalTap::scores() const {
  return unroll_ring(scores_, head_);
}

std::vector<std::uint8_t> SignalTap::trigger() const {
  return unroll_ring(trigger_, head_);
}

// ---------------------------------------------------------------------------
// StreamCutter
// ---------------------------------------------------------------------------

namespace detail {

StreamCutter::StreamCutter(std::size_t channels, std::size_t merge_gap_samples,
                           std::size_t min_ensemble_samples)
    : channels_(channels),
      merge_gap_(merge_gap_samples),
      min_len_(min_ensemble_samples),
      bufs_(channels),
      gaps_(channels) {
  DR_EXPECTS(channels >= 1);
}

void StreamCutter::step_triggered(std::size_t i, const float* frame) {
  if (pending_) {
    // Trigger re-fired within the merge gap (an eager finalize would have
    // run otherwise): absorb the buffered gap and continue the ensemble.
    for (std::size_t c = 0; c < channels_; ++c) {
      bufs_[c].insert(bufs_[c].end(), gaps_[c].begin(), gaps_[c].end());
      gaps_[c].clear();
    }
    pending_ = false;
    cutting_ = true;
  } else if (!cutting_) {
    cutting_ = true;
    start_ = i;
  }
  for (std::size_t c = 0; c < channels_; ++c) bufs_[c].push_back(frame[c]);
}

void StreamCutter::finish() {
  if (cutting_) {
    cutting_ = false;
    pending_ = true;
  }
  if (pending_) finalize();
}

void StreamCutter::finalize() {
  pending_ = false;
  // Gap samples never belong to an ensemble — they are only absorbed when
  // the trigger re-fires inside the merge window.
  for (auto& gap : gaps_) gap.clear();
  if (bufs_[0].size() >= min_len_) {
    Cut cut;
    cut.start_sample = start_;
    cut.channels = std::move(bufs_);
    bufs_.assign(channels_, {});
    ready_.push_back(std::move(cut));
  } else {
    for (auto& buf : bufs_) buf.clear();
  }
}

std::optional<StreamCutter::Cut> StreamCutter::pop() {
  if (ready_.empty()) return std::nullopt;
  Cut cut = std::move(ready_.front());
  ready_.pop_front();
  return cut;
}

std::size_t StreamCutter::buffered_samples() const {
  std::size_t acc = bufs_[0].size() + gaps_[0].size();
  for (const auto& cut : ready_) acc += cut.channels[0].size();
  return acc;
}

void StreamCutter::reset() {
  pos_ = 0;
  cutting_ = false;
  pending_ = false;
  start_ = 0;
  for (auto& buf : bufs_) buf.clear();
  for (auto& gap : gaps_) gap.clear();
  ready_.clear();
}

}  // namespace detail

// ---------------------------------------------------------------------------
// StreamSession
// ---------------------------------------------------------------------------

StreamSession::StreamSession(PipelineParams params, Options options,
                             std::shared_ptr<const SpectralEngine> engine)
    : params_(params),
      options_(std::move(options)),
      features_(params, std::move(engine)),
      scorer_(params.anomaly),
      trigger_(params.trigger_sigma, params.trigger_min_baseline,
               params.trigger_hold_samples),
      cutter_(1, params.merge_gap_samples, params.min_ensemble_samples),
      tap_(options_.tap_capacity) {
  params_.validate();
}

std::size_t StreamSession::push(std::span<const float> samples) {
  const bool tapped = tap_.enabled();
  const bool observed = static_cast<bool>(options_.on_signal);
  for (const float x : samples) {
    const double score = scorer_.push(x);
    const bool trig = trigger_.push(score);
    if (tapped) tap_.push(static_cast<float>(score), trig);
    if (observed) options_.on_signal(consumed_, static_cast<float>(score), trig);
    cutter_.step(trig, &x);
    ++consumed_;
  }
  return cutter_.ready();
}

std::vector<river::Ensemble> StreamSession::drain() {
  std::vector<river::Ensemble> out;
  while (auto cut = cutter_.pop()) {
    out.push_back(river::Ensemble{cut->start_sample,
                                  std::move(cut->channels.front())});
  }
  return out;
}

std::vector<river::Ensemble> StreamSession::finish() {
  cutter_.finish();
  return drain();
}

void StreamSession::reset() {
  scorer_.reset();
  trigger_.reset();
  cutter_.reset();
  tap_.reset();
  consumed_ = 0;
}

std::vector<std::vector<float>> StreamSession::featurize(
    const river::Ensemble& ensemble) const {
  return features_.patterns(ensemble.samples);
}

// ---------------------------------------------------------------------------
// MultiStreamSession
// ---------------------------------------------------------------------------

MultiStreamSession::MultiStreamSession(
    MultiStreamParams params, std::size_t channels,
    StreamSession::Options options, std::shared_ptr<const SpectralEngine> engine)
    : params_(std::move(params)),
      options_(std::move(options)),
      features_(params_.base, std::move(engine)),
      trigger_(params_.base.trigger_sigma, params_.base.trigger_min_baseline,
               params_.base.trigger_hold_samples),
      cutter_(channels, params_.base.merge_gap_samples,
              params_.base.min_ensemble_samples),
      tap_(options_.tap_capacity),
      frame_(channels, 0.0F) {
  DR_EXPECTS(channels >= 1);
  params_.base.validate();
  scorers_.reserve(channels);
  for (std::size_t c = 0; c < channels; ++c) {
    scorers_.emplace_back(params_.base.anomaly);
  }
}

void MultiStreamSession::step(double fused, const float* frame) {
  const bool trig = trigger_.push(fused);
  if (tap_.enabled()) tap_.push(static_cast<float>(fused), trig);
  if (options_.on_signal) {
    options_.on_signal(consumed_, static_cast<float>(fused), trig);
  }
  cutter_.step(trig, frame);
  ++consumed_;
}

std::size_t MultiStreamSession::push(
    std::span<const std::span<const float>> chunks) {
  DR_EXPECTS(chunks.size() == channels());
  const std::size_t n = chunks.empty() ? 0 : chunks.front().size();
  for (const auto& chunk : chunks) DR_EXPECTS(chunk.size() == n);

  // Hot loop: hoist the span-of-spans indirection, channel count, and
  // observer flags — the per-sample work must stay scorer-bound, not
  // bookkeeping-bound. The untapped, unobserved configuration (production
  // ingest, the bench) runs scorer + trigger + two cutter branches.
  const std::size_t ch = channels();
  channel_data_.resize(ch);
  for (std::size_t c = 0; c < ch; ++c) channel_data_[c] = chunks[c].data();
  const float* const* data = channel_data_.data();
  ts::StreamingAnomalyScorer* scorers = scorers_.data();
  float* frame = frame_.data();
  const bool slow_path = tap_.enabled() || options_.on_signal != nullptr;
  const bool fuse_max = params_.fusion == ScoreFusion::kMax;

  for (std::size_t i = 0; i < n; ++i) {
    // Fusion reads channels in fixed order, matching the pre-scored path.
    double fused = 0.0;
    if (fuse_max) {
      for (std::size_t c = 0; c < ch; ++c) {
        fused = std::max(fused, scorers[c].push(data[c][i]));
      }
    } else {
      for (std::size_t c = 0; c < ch; ++c) {
        fused += scorers[c].push(data[c][i]);
      }
      fused /= static_cast<double>(ch);
    }
    for (std::size_t c = 0; c < ch; ++c) frame[c] = data[c][i];
    if (slow_path) {
      step(fused, frame);
    } else {
      cutter_.step(trigger_.push(fused), frame);
      ++consumed_;
    }
  }
  return cutter_.ready();
}

std::size_t MultiStreamSession::push_scored(
    std::span<const std::span<const double>> channel_scores,
    std::span<const std::span<const float>> chunks) {
  DR_EXPECTS(chunks.size() == channels());
  DR_EXPECTS(channel_scores.size() == channels());
  const std::size_t n = chunks.empty() ? 0 : chunks.front().size();
  for (const auto& chunk : chunks) DR_EXPECTS(chunk.size() == n);
  for (const auto& scores : channel_scores) DR_EXPECTS(scores.size() == n);

  const std::size_t ch = channels();
  channel_data_.resize(ch);
  score_data_.resize(ch);
  for (std::size_t c = 0; c < ch; ++c) {
    channel_data_[c] = chunks[c].data();
    score_data_[c] = channel_scores[c].data();
  }
  const float* const* data = channel_data_.data();
  const double* const* scores = score_data_.data();
  float* frame = frame_.data();
  const bool slow_path = tap_.enabled() || options_.on_signal != nullptr;
  const bool fuse_max = params_.fusion == ScoreFusion::kMax;

  for (std::size_t i = 0; i < n; ++i) {
    // The same fixed-order fusion as push(), over pre-computed scores.
    double fused = 0.0;
    if (fuse_max) {
      for (std::size_t c = 0; c < ch; ++c) {
        fused = std::max(fused, scores[c][i]);
      }
    } else {
      for (std::size_t c = 0; c < ch; ++c) fused += scores[c][i];
      fused /= static_cast<double>(ch);
    }
    for (std::size_t c = 0; c < ch; ++c) frame[c] = data[c][i];
    if (slow_path) {
      step(fused, frame);
    } else {
      cutter_.step(trigger_.push(fused), frame);
      ++consumed_;
    }
  }
  return cutter_.ready();
}

std::vector<MultiEnsemble> MultiStreamSession::drain() {
  std::vector<MultiEnsemble> out;
  while (auto cut = cutter_.pop()) {
    MultiEnsemble ensemble;
    ensemble.start_sample = cut->start_sample;
    ensemble.length = cut->channels.front().size();
    ensemble.channel_samples = std::move(cut->channels);
    out.push_back(std::move(ensemble));
  }
  return out;
}

std::vector<MultiEnsemble> MultiStreamSession::finish() {
  cutter_.finish();
  return drain();
}

void MultiStreamSession::reset() {
  for (auto& scorer : scorers_) scorer.reset();
  trigger_.reset();
  cutter_.reset();
  tap_.reset();
  consumed_ = 0;
}

std::vector<std::vector<std::vector<float>>> MultiStreamSession::featurize(
    const MultiEnsemble& ensemble) const {
  std::vector<std::vector<std::vector<float>>> out;
  out.reserve(ensemble.channel_samples.size());
  for (const auto& channel : ensemble.channel_samples) {
    out.push_back(features_.patterns(channel));
  }
  return out;
}

// ---------------------------------------------------------------------------
// run_stream
// ---------------------------------------------------------------------------

StreamPumpStats run_stream(river::SampleSource& source, StreamSession& session,
                           river::EnsembleSink& sink,
                           std::size_t chunk_samples) {
  if (chunk_samples == 0) chunk_samples = session.params().record_size;
  DR_EXPECTS(chunk_samples >= 1);

  StreamPumpStats stats;
  std::vector<float> chunk(chunk_samples);
  const auto deliver = [&](std::vector<river::Ensemble> ensembles) {
    for (auto& e : ensembles) {
      ++stats.ensembles_out;
      sink.accept(std::move(e));
    }
  };

  for (;;) {
    const std::size_t n = source.read(chunk);
    if (n == 0) break;
    stats.samples_in += n;
    if (session.push(std::span<const float>(chunk.data(), n)) > 0) {
      deliver(session.drain());
    }
    stats.peak_buffered_samples =
        std::max(stats.peak_buffered_samples, session.buffered_samples());
  }
  deliver(session.finish());
  sink.finish();
  return stats;
}

}  // namespace dynriver::core
