#include "core/stream_session.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "dsp/simd.hpp"

namespace dynriver::core {

// ---------------------------------------------------------------------------
// SignalTap
// ---------------------------------------------------------------------------

void SignalTap::reset() {
  total_ = 0;
  head_ = 0;
  scores_.clear();
  trigger_.clear();
}

namespace {

template <typename T>
std::vector<T> unroll_ring(const std::vector<T>& ring, std::size_t head) {
  std::vector<T> out;
  out.reserve(ring.size());
  out.insert(out.end(), ring.begin() + static_cast<std::ptrdiff_t>(head),
             ring.end());
  out.insert(out.end(), ring.begin(),
             ring.begin() + static_cast<std::ptrdiff_t>(head));
  return out;
}

}  // namespace

std::vector<float> SignalTap::scores() const {
  return unroll_ring(scores_, head_);
}

std::vector<std::uint8_t> SignalTap::trigger() const {
  return unroll_ring(trigger_, head_);
}

// ---------------------------------------------------------------------------
// StreamSession
// ---------------------------------------------------------------------------

StreamSession::StreamSession(PipelineParams params, Options options,
                             std::shared_ptr<const SpectralEngine> engine)
    : params_(params),
      options_(std::move(options)),
      features_(params, std::move(engine)),
      scorer_(params.anomaly),
      trigger_(params.trigger_sigma, params.trigger_min_baseline,
               params.trigger_hold_samples),
      cutter_(1, params.merge_gap_samples, params.min_ensemble_samples),
      tap_(options_.tap_capacity) {
  params_.validate();
}

namespace {
/// Samples scored per batched block inside the sessions' push loops: large
/// enough to amortize the scorer's batch entry (whole energy frames, one
/// push_run per frame), small enough that the score scratch stays cache-hot
/// (32 KiB of doubles) next to the input block.
constexpr std::size_t kScoreBlock = 4096;
}  // namespace

std::size_t StreamSession::push(std::span<const float> samples) {
  if (pending_params_) return push_reconfiguring(samples);
  const bool tapped = tap_.enabled();
  const bool observed = static_cast<bool>(options_.on_signal);
  // The scorer runs block-batched (whole energy frames fold through the
  // dsp::simd kernels — bit-identical to per-sample pushes); the
  // trigger/tap loop then accumulates runs of equal trigger value over the
  // block's scores and hands each run to the cutter in one bulk call:
  // trigger runs are thousands of samples long, so the cutter's per-sample
  // bookkeeping vanishes and ensemble/gap buffers grow by range inserts.
  const float* data = samples.data();
  const std::size_t n = samples.size();
  if (score_block_.empty()) score_block_.resize(kScoreBlock);
  double* const scores = score_block_.data();
  bool run_trig = false;
  std::size_t run_start = 0;
  for (std::size_t base = 0; base < n; base += kScoreBlock) {
    const std::size_t m = std::min(kScoreBlock, n - base);
    scorer_.push_batch(data + base, m, scores);
    for (std::size_t j = 0; j < m; ++j) {
      const std::size_t i = base + j;
      const double score = scores[j];
      const bool trig = trigger_.push(score);
      if (tapped) tap_.push(static_cast<float>(score), trig);
      if (observed) {
        options_.on_signal(consumed_ + i, static_cast<float>(score), trig);
      }
      if (trig != run_trig) {
        cutter_.step_run(run_trig, &data, run_start, i - run_start);
        run_trig = trig;
        run_start = i;
      }
    }
  }
  if (n > 0) cutter_.step_run(run_trig, &data, run_start, n - run_start);
  consumed_ += n;
  return cutter_.ready();
}

// Slow-path twin of push(): scans for the first safe boundary sample by
// sample, applies the pending parameters there, and continues. Kept out of
// push() so a session that is not mid-reconfigure pays zero extra branches
// per sample.
std::size_t StreamSession::push_reconfiguring(std::span<const float> samples) {
  const bool tapped = tap_.enabled();
  const bool observed = static_cast<bool>(options_.on_signal);
  for (const float x : samples) {
    if (pending_params_ && cutter_.idle()) apply_reconfigure();
    const double score = scorer_.push(x);
    const bool trig = trigger_.push(score);
    if (tapped) tap_.push(static_cast<float>(score), trig);
    if (observed) options_.on_signal(consumed_, static_cast<float>(score), trig);
    cutter_.step(trig, &x);
    ++consumed_;
  }
  return cutter_.ready();
}

bool reconfigure_compatible(const PipelineParams& a, const PipelineParams& b) {
  return a.sample_rate == b.sample_rate && a.record_size == b.record_size &&
         a.anomaly == b.anomaly && a.reslice == b.reslice &&
         a.window == b.window && a.dft_size == b.dft_size &&
         a.cutout_lo_hz == b.cutout_lo_hz && a.cutout_hi_hz == b.cutout_hi_hz &&
         a.use_paa == b.use_paa && a.paa_factor == b.paa_factor &&
         a.pattern_merge == b.pattern_merge &&
         a.pattern_stride == b.pattern_stride;
}

void StreamSession::reconfigure(const PipelineParams& params) {
  params.validate();
  DR_EXPECTS(reconfigure_compatible(params, params_));
  pending_params_ = params;
  // Between ensembles the new rules can start this very instant; otherwise
  // the in-flight ensemble finishes under the old rules first.
  if (cutter_.idle()) apply_reconfigure();
}

void StreamSession::apply_reconfigure() {
  const PipelineParams& p = *pending_params_;
  // The trigger keeps its baseline statistics (mu0/sigma0 survive the
  // re-tune); only the decision thresholds change.
  trigger_.set_thresholding(p.trigger_sigma, p.trigger_min_baseline,
                            p.trigger_hold_samples);
  cutter_.set_bounds(p.merge_gap_samples, p.min_ensemble_samples);
  params_ = p;
  pending_params_.reset();
}

std::vector<river::Ensemble> StreamSession::drain() {
  std::vector<river::Ensemble> out;
  while (auto cut = cutter_.pop()) {
    out.push_back(river::Ensemble{cut->start_sample,
                                  std::move(cut->channels.front())});
  }
  return out;
}

std::vector<river::Ensemble> StreamSession::finish() {
  cutter_.finish();
  // End of stream decides the in-flight ensemble under the old rules; a
  // still-pending reconfigure lands now that the automaton is idle.
  if (pending_params_) apply_reconfigure();
  return drain();
}

void StreamSession::reset() {
  scorer_.reset();
  trigger_.reset();
  cutter_.reset();
  tap_.reset();
  consumed_ = 0;
  if (pending_params_) apply_reconfigure();
}

std::vector<std::vector<float>> StreamSession::featurize(
    const river::Ensemble& ensemble) const {
  return features_.patterns(ensemble.samples);
}

// ---------------------------------------------------------------------------
// MultiStreamSession
// ---------------------------------------------------------------------------

MultiStreamSession::MultiStreamSession(
    MultiStreamParams params, std::size_t channels,
    StreamSession::Options options, std::shared_ptr<const SpectralEngine> engine)
    : params_(std::move(params)),
      options_(std::move(options)),
      features_(params_.base, std::move(engine)),
      trigger_(params_.base.trigger_sigma, params_.base.trigger_min_baseline,
               params_.base.trigger_hold_samples),
      cutter_(channels, params_.base.merge_gap_samples,
              params_.base.min_ensemble_samples),
      tap_(options_.tap_capacity) {
  DR_EXPECTS(channels >= 1);
  params_.base.validate();
  scorers_.reserve(channels);
  for (std::size_t c = 0; c < channels; ++c) {
    scorers_.emplace_back(params_.base.anomaly);
  }
}

void MultiStreamSession::fuse_block(const double* const* scores,
                                    std::size_t base, std::size_t m,
                                    const float* const* data, bool& run_trig,
                                    std::size_t& run_start) {
  // Fusion reads channels in fixed order, so push() and push_scored() are
  // bit-identical for the same signals. Observer flags and channel count are
  // hoisted; the cutter is fed whole trigger runs in bulk (trigger runs are
  // thousands of samples long, so its per-sample branches never run here).
  const std::size_t ch = channels();
  const bool slow_path = tap_.enabled() || options_.on_signal != nullptr;
  const bool fuse_max = params_.fusion == ScoreFusion::kMax;
  // The per-sample fusion fold stays inside the trigger loop on purpose: a
  // separate SIMD max/mean pass over the block was measured slower — the
  // extra fused-score buffer traffic does not overlap anything, while these
  // few scalar ops hide entirely under the trigger's serial Welford chain.
  for (std::size_t j = 0; j < m; ++j) {
    const std::size_t i = base + j;
    double fused = 0.0;
    if (fuse_max) {
      for (std::size_t c = 0; c < ch; ++c) {
        fused = std::max(fused, scores[c][j]);
      }
    } else {
      for (std::size_t c = 0; c < ch; ++c) fused += scores[c][j];
      fused /= static_cast<double>(ch);
    }
    const bool trig = trigger_.push(fused);
    if (slow_path) {
      if (tap_.enabled()) tap_.push(static_cast<float>(fused), trig);
      if (options_.on_signal) {
        options_.on_signal(consumed_ + i, static_cast<float>(fused), trig);
      }
    }
    if (trig != run_trig) {
      cutter_.step_run(run_trig, data, run_start, i - run_start);
      run_trig = trig;
      run_start = i;
    }
  }
}

std::size_t MultiStreamSession::push(
    std::span<const std::span<const float>> chunks) {
  DR_EXPECTS(chunks.size() == channels());
  const std::size_t n = chunks.empty() ? 0 : chunks.front().size();
  for (const auto& chunk : chunks) DR_EXPECTS(chunk.size() == n);

  // Each channel's scorer runs block-batched into its slice of the shared
  // scratch (bit-identical to per-sample lockstep pushes — the scorers are
  // independent automata); the fuse/trigger/cutter half then consumes the
  // block. Memory stays O(channels * block) for any chunk size.
  const std::size_t ch = channels();
  channel_data_.resize(ch);
  score_data_.resize(ch);
  if (score_block_.size() < ch * kScoreBlock) {
    score_block_.resize(ch * kScoreBlock);
  }
  for (std::size_t c = 0; c < ch; ++c) {
    channel_data_[c] = chunks[c].data();
    score_data_[c] = score_block_.data() + c * kScoreBlock;
  }
  const float* const* data = channel_data_.data();
  const double* const* scores = score_data_.data();
  ts::StreamingAnomalyScorer* scorers = scorers_.data();

  bool run_trig = false;
  std::size_t run_start = 0;
  for (std::size_t base = 0; base < n; base += kScoreBlock) {
    const std::size_t m = std::min(kScoreBlock, n - base);
    for (std::size_t c = 0; c < ch; ++c) {
      scorers[c].push_batch(data[c] + base, m,
                            score_block_.data() + c * kScoreBlock);
    }
    fuse_block(scores, base, m, data, run_trig, run_start);
  }
  if (n > 0) cutter_.step_run(run_trig, data, run_start, n - run_start);
  consumed_ += n;
  return cutter_.ready();
}

std::size_t MultiStreamSession::push_scored(
    std::span<const std::span<const double>> channel_scores,
    std::span<const std::span<const float>> chunks) {
  DR_EXPECTS(chunks.size() == channels());
  DR_EXPECTS(channel_scores.size() == channels());
  const std::size_t n = chunks.empty() ? 0 : chunks.front().size();
  for (const auto& chunk : chunks) DR_EXPECTS(chunk.size() == n);
  for (const auto& scores : channel_scores) DR_EXPECTS(scores.size() == n);

  const std::size_t ch = channels();
  channel_data_.resize(ch);
  score_data_.resize(ch);
  for (std::size_t c = 0; c < ch; ++c) channel_data_[c] = chunks[c].data();
  const float* const* data = channel_data_.data();
  // Block through the precomputed spans so the fused scratch stays
  // kScoreBlock-sized (cache-resident) however large the caller's chunk is;
  // per-block score pointers keep fuse_block's in-block indexing while the
  // cutter sees absolute chunk offsets.
  bool run_trig = false;
  std::size_t run_start = 0;
  for (std::size_t base = 0; base < n; base += kScoreBlock) {
    const std::size_t m = std::min(kScoreBlock, n - base);
    for (std::size_t c = 0; c < ch; ++c) {
      score_data_[c] = channel_scores[c].data() + base;
    }
    fuse_block(score_data_.data(), base, m, data, run_trig, run_start);
  }
  if (n > 0) cutter_.step_run(run_trig, data, run_start, n - run_start);
  consumed_ += n;
  return cutter_.ready();
}

std::vector<MultiEnsemble> MultiStreamSession::drain() {
  std::vector<MultiEnsemble> out;
  while (auto cut = cutter_.pop()) {
    MultiEnsemble ensemble;
    ensemble.start_sample = cut->start_sample;
    ensemble.length = cut->channels.front().size();
    ensemble.channel_samples = std::move(cut->channels);
    out.push_back(std::move(ensemble));
  }
  return out;
}

std::vector<MultiEnsemble> MultiStreamSession::finish() {
  cutter_.finish();
  return drain();
}

void MultiStreamSession::reset() {
  for (auto& scorer : scorers_) scorer.reset();
  trigger_.reset();
  cutter_.reset();
  tap_.reset();
  consumed_ = 0;
}

std::vector<std::vector<std::vector<float>>> MultiStreamSession::featurize(
    const MultiEnsemble& ensemble) const {
  std::vector<std::vector<std::vector<float>>> out;
  out.reserve(ensemble.channel_samples.size());
  for (const auto& channel : ensemble.channel_samples) {
    out.push_back(features_.patterns(channel));
  }
  return out;
}

// ---------------------------------------------------------------------------
// run_stream
// ---------------------------------------------------------------------------

StreamPumpStats run_stream(river::SampleSource& source, StreamSession& session,
                           river::EnsembleSink& sink,
                           std::size_t chunk_samples) {
  if (chunk_samples == 0) chunk_samples = session.params().record_size;
  DR_EXPECTS(chunk_samples >= 1);

  StreamPumpStats stats;
  std::vector<float> chunk(chunk_samples);
  const auto deliver = [&](std::vector<river::Ensemble> ensembles) {
    for (auto& e : ensembles) {
      ++stats.ensembles_out;
      sink.accept(std::move(e));
    }
  };

  for (;;) {
    const std::size_t n = source.read(chunk);
    if (n == 0) break;
    stats.samples_in += n;
    if (session.push(std::span<const float>(chunk.data(), n)) > 0) {
      deliver(session.drain());
    }
    stats.peak_buffered_samples =
        std::max(stats.peak_buffered_samples, session.buffered_samples());
  }
  deliver(session.finish());
  sink.finish();
  return stats;
}

}  // namespace dynriver::core
