#include "core/spectral_engine.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "common/contracts.hpp"
#include "dsp/fft_plan.hpp"
#include "dsp/simd.hpp"

namespace dynriver::core {

namespace {

/// Thread-local window tables keyed by (kind, length). Shared across engine
/// instances: a window table has no per-engine state.
std::span<const float> cached_window(dsp::WindowKind kind, std::size_t n) {
  thread_local std::map<std::pair<std::uint8_t, std::size_t>, std::vector<float>>
      windows;
  auto [it, inserted] =
      windows.try_emplace({static_cast<std::uint8_t>(kind), n});
  if (inserted) it->second = dsp::make_window(kind, n);
  return it->second;
}

/// Thread-local transform scratch shared across engine instances.
struct Scratch {
  std::vector<float> padded;
  std::vector<dsp::Cplx> cplx;
};

Scratch& local_scratch() {
  thread_local Scratch scratch;
  return scratch;
}

}  // namespace

SpectralEngine::SpectralEngine(dsp::WindowKind window, std::size_t dft_size)
    : window_(window), dft_size_(dft_size) {
  DR_EXPECTS(dft_size >= 2);
}

SpectralEngine::SpectralEngine(const PipelineParams& params)
    : SpectralEngine(params.window, params.dft_size) {}

void SpectralEngine::apply_window(std::span<float> record) const {
  if (record.empty()) return;
  dsp::apply_window(record, cached_window(window_, record.size()));
}

void SpectralEngine::windowed_magnitudes(std::span<const float> record,
                                         std::vector<float>& out) const {
  DR_EXPECTS(!record.empty());
  // A single record is a 1-row batch; sharing the implementation is what
  // guarantees the batch path's bit-identity contract.
  windowed_magnitudes_batch(record, record.size(), out);
}

void SpectralEngine::windowed_magnitudes_batch(std::span<const float> records,
                                               std::size_t record_len,
                                               std::vector<float>& out) const {
  DR_EXPECTS(record_len >= 1);
  DR_EXPECTS(record_len <= dft_size_);
  DR_EXPECTS(records.size() % record_len == 0);
  const std::size_t count = records.size() / record_len;

  out.resize(count * dft_size_);
  if (count == 0) return;

  // Window table, plan, and pad zeroing are hoisted out of the record loop;
  // each record then streams through one cache-hot padded row (windowing
  // fused with the copy) straight into its transform. Keeping the row
  // working set small beats windowing the whole matrix up front.
  Scratch& scratch = local_scratch();
  scratch.padded.resize(dft_size_);
  float* padded = scratch.padded.data();
  std::fill(padded + record_len, padded + dft_size_, 0.0F);
  const auto window = cached_window(window_, record_len);
  dsp::FftPlan& plan = dsp::local_plan_cache().get(dft_size_);
  for (std::size_t r = 0; r < count; ++r) {
    dsp::simd::multiply_f32(padded, records.data() + r * record_len,
                            window.data(), record_len);
    plan.magnitudes(std::span<const float>(padded, dft_size_),
                    std::span<float>(out.data() + r * dft_size_, dft_size_));
  }
}

void SpectralEngine::dft(std::span<const std::complex<float>> in,
                         std::vector<std::complex<float>>& out) const {
  Scratch& scratch = local_scratch();
  scratch.cplx.assign(dft_size_, dsp::Cplx(0, 0));
  const std::size_t n = std::min(in.size(), dft_size_);
  for (std::size_t i = 0; i < n; ++i) {
    scratch.cplx[i] = dsp::Cplx(in[i].real(), in[i].imag());
  }
  dsp::local_plan_cache().get(dft_size_).forward(scratch.cplx);

  out.resize(dft_size_);
  for (std::size_t i = 0; i < dft_size_; ++i) {
    out[i] = {static_cast<float>(scratch.cplx[i].real()),
              static_cast<float>(scratch.cplx[i].imag())};
  }
}

}  // namespace dynriver::core
