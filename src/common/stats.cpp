#include "common/stats.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace dynriver {

void RunningStats::reset() {
  count_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::sample_variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::sample_stddev() const { return std::sqrt(sample_variance()); }

namespace {
template <typename T>
double mean_impl(std::span<const T> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (const T x : xs) sum += static_cast<double>(x);
  return sum / static_cast<double>(xs.size());
}

template <typename T>
double stddev_impl(std::span<const T> xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = mean_impl(xs);
  double acc = 0.0;
  for (const T x : xs) {
    const double d = static_cast<double>(x) - mu;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(xs.size()));
}
}  // namespace

double mean_of(std::span<const double> xs) { return mean_impl(xs); }
double mean_of(std::span<const float> xs) { return mean_impl(xs); }
double stddev_of(std::span<const double> xs) { return stddev_impl(xs); }
double stddev_of(std::span<const float> xs) { return stddev_impl(xs); }

MovingAverage::MovingAverage(std::size_t window)
    : window_(window), run_cap_(window + 1), tail_(window) {
  DR_EXPECTS(window >= 1);
  // Capacity for the distinct-consecutive-values worst case (every sample
  // its own run); only ~window/run_length entries are ever touched when the
  // input is frame-constant.
  runs_.assign(run_cap_, Run{0.0, 0});
}

void MovingAverage::reset() {
  head_ = 0;
  tail_ = run_cap_ - 1;
  n_runs_ = 0;
  size_ = 0;
  sum_ = 0.0;
  inv_size_ = 0.0;
}

}  // namespace dynriver
