// Minimal monotonic stopwatch used by the evaluation harness to report
// training/testing wall-clock times (paper Table 2).
#pragma once

#include <chrono>

namespace dynriver {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace dynriver
