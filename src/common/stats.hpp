// Numerically stable running statistics (Welford) plus small helpers shared by
// the trigger operator, evaluation harness, and benches.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dynriver {

/// Incremental mean/variance accumulator (Welford's algorithm).
///
/// Used by the adaptive trigger operator (running statistics of the anomaly
/// score while untriggered) and by the evaluation harness (mean +/- std over
/// experiment repetitions).
class RunningStats {
 public:
  /// Header-inline: this runs once per untriggered sample inside the
  /// adaptive trigger's hot loop (see core::TriggerState::push).
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  /// Remove-free reset.
  void reset();

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Population variance; 0 when fewer than two samples.
  [[nodiscard]] double variance() const;
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double sample_variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double sample_stddev() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Mean of a span; 0 for an empty span.
[[nodiscard]] double mean_of(std::span<const double> xs);
[[nodiscard]] double mean_of(std::span<const float> xs);

/// Population standard deviation of a span; 0 for spans shorter than 2.
[[nodiscard]] double stddev_of(std::span<const double> xs);
[[nodiscard]] double stddev_of(std::span<const float> xs);

/// Fixed-capacity moving average over a stream of doubles.
///
/// Matches the paper's `saxanomaly` smoothing stage: "The moving average
/// window size specifies the number of anomaly scores to use for computing a
/// mean anomaly score".  Until the window fills, the average is over the
/// values seen so far.
class MovingAverage {
 public:
  explicit MovingAverage(std::size_t window);

  /// Push a value and return the current windowed mean. Header-inline: the
  /// anomaly scorer calls this once per input sample, and the outlined call
  /// was a measurable slice of per-sample extraction cost.
  ///
  /// The window contents live as a FIFO ring of (value, count) runs rather
  /// than one slot per sample: the anomaly scorer smooths a raw score that
  /// only changes once per energy frame, so a 2250-sample window is a
  /// couple of dozen runs (~1.5 KiB touched instead of an 18 KiB sample
  /// ring that thrashes L1 when several scorers interleave). Eviction pops
  /// samples off the oldest run; the per-step arithmetic — sum_ minus the
  /// evicted value plus the new one, then a reciprocal multiply — is
  /// exactly the sample-ring sequence, so outputs are bit-identical for
  /// any input (distinct consecutive values simply become length-1 runs).
  double push(double x) {
    if (size_ == window_) {
      Run& oldest = runs_[head_];
      sum_ -= oldest.value;
      if (--oldest.count == 0) {
        // Conditional wrap instead of % — the integer division is
        // measurable at one call per sample.
        if (++head_ == run_cap_) head_ = 0;
        --n_runs_;
      }
    } else {
      // The divide only happens while the window fills; afterwards every
      // value() is a multiply by the cached reciprocal.
      ++size_;
      inv_size_ = 1.0 / static_cast<double>(size_);
    }
    if (n_runs_ != 0 && runs_[tail_].value == x) {
      ++runs_[tail_].count;
    } else {
      if (++tail_ == run_cap_) tail_ = 0;
      runs_[tail_] = {x, 1};
      ++n_runs_;
    }
    sum_ += x;
    return sum_ * inv_size_;
  }

  /// Push the same value k times, writing the k successive means to out
  /// (static_cast to Out). Exactly k calls of push(x) — the per-step
  /// arithmetic, including rounding order, is identical — with the run
  /// bookkeeping hoisted: the k new samples extend the newest run once,
  /// then evictions drain the oldest runs step by step. The anomaly
  /// scorer's energy mode smooths an unchanged raw score for frame-1
  /// consecutive samples, which is this call.
  template <typename Out>
  void push_run(double x, std::size_t k, Out* out) {
    std::size_t i = 0;
    // While the window is still filling, sizes (and the reciprocal) change
    // per step: take the scalar push.
    for (; i < k && size_ != window_; ++i) out[i] = static_cast<Out>(push(x));
    if (i == k) return;
    std::size_t remaining = k - i;
    if (n_runs_ != 0 && runs_[tail_].value == x) {
      runs_[tail_].count += remaining;
    } else {
      if (++tail_ == run_cap_) tail_ = 0;
      runs_[tail_] = {x, remaining};
      ++n_runs_;
    }
    const double inv = inv_size_;
    while (remaining != 0) {
      Run& oldest = runs_[head_];
      const double evicted = oldest.value;
      const std::size_t take = std::min(remaining, oldest.count);
      for (std::size_t t = 0; t < take; ++t) {
        sum_ -= evicted;
        sum_ += x;
        out[i++] = static_cast<Out>(sum_ * inv);
      }
      oldest.count -= take;
      if (oldest.count == 0) {
        if (++head_ == run_cap_) head_ = 0;
        --n_runs_;
      }
      remaining -= take;
    }
  }

  [[nodiscard]] double value() const {
    if (size_ == 0) return 0.0;
    return sum_ * inv_size_;
  }
  [[nodiscard]] std::size_t window() const { return window_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  void reset();

 private:
  struct Run {
    double value;
    std::size_t count;
  };

  std::vector<Run> runs_;  ///< FIFO ring of runs; capacity run_cap_
  std::size_t window_;
  std::size_t run_cap_;    ///< window_ + 1 (distinct values: one run each)
  std::size_t head_ = 0;   ///< oldest run
  std::size_t tail_;       ///< newest run; pre-wrapped so first push lands at 0
  std::size_t n_runs_ = 0;
  std::size_t size_ = 0;   ///< number of buffered samples
  double sum_ = 0.0;
  double inv_size_ = 0.0;  ///< 1.0 / size_; 0 while empty
};

}  // namespace dynriver
