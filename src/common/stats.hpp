// Numerically stable running statistics (Welford) plus small helpers shared by
// the trigger operator, evaluation harness, and benches.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dynriver {

/// Incremental mean/variance accumulator (Welford's algorithm).
///
/// Used by the adaptive trigger operator (running statistics of the anomaly
/// score while untriggered) and by the evaluation harness (mean +/- std over
/// experiment repetitions).
class RunningStats {
 public:
  /// Header-inline: this runs once per untriggered sample inside the
  /// adaptive trigger's hot loop (see core::TriggerState::push).
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  /// Remove-free reset.
  void reset();

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Population variance; 0 when fewer than two samples.
  [[nodiscard]] double variance() const;
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double sample_variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double sample_stddev() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Mean of a span; 0 for an empty span.
[[nodiscard]] double mean_of(std::span<const double> xs);
[[nodiscard]] double mean_of(std::span<const float> xs);

/// Population standard deviation of a span; 0 for spans shorter than 2.
[[nodiscard]] double stddev_of(std::span<const double> xs);
[[nodiscard]] double stddev_of(std::span<const float> xs);

/// Fixed-capacity moving average over a stream of doubles.
///
/// Matches the paper's `saxanomaly` smoothing stage: "The moving average
/// window size specifies the number of anomaly scores to use for computing a
/// mean anomaly score".  Until the window fills, the average is over the
/// values seen so far.
class MovingAverage {
 public:
  explicit MovingAverage(std::size_t window);

  /// Push a value and return the current windowed mean. Header-inline: the
  /// anomaly scorer calls this once per input sample, and the outlined call
  /// was a measurable slice of per-sample extraction cost.
  double push(double x) {
    if (size_ == window_) {
      sum_ -= buf_[head_];
    } else {
      ++size_;
    }
    buf_[head_] = x;
    sum_ += x;
    // Conditional wrap instead of % — the integer division is measurable at
    // one call per sample.
    if (++head_ == window_) head_ = 0;
    return value();
  }

  [[nodiscard]] double value() const {
    if (size_ == 0) return 0.0;
    return sum_ / static_cast<double>(size_);
  }
  [[nodiscard]] std::size_t window() const { return window_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  void reset();

 private:
  std::vector<double> buf_;
  std::size_t window_;
  std::size_t head_ = 0;   // next slot to overwrite
  std::size_t size_ = 0;   // number of valid entries
  double sum_ = 0.0;
};

}  // namespace dynriver
