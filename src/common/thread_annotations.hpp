// Clang thread-safety annotations + annotated locking primitives.
//
// "Which lock protects this field" is documentation that rots unless a
// compiler checks it. Under Clang, every macro below expands to a
// thread-safety attribute and the build carries -Werror=thread-safety, so
// an unguarded access to a DR_GUARDED_BY field, a _locked helper called
// without its DR_REQUIRES capability, or an DR_EXCLUDES violation is a
// compile error. Under GCC the macros expand to nothing and the wrappers
// compile to exactly std::mutex / std::lock_guard / std::condition_variable
// — zero overhead either way.
//
// House rules (enforced by scripts/lint.py):
//   - src/ never uses std::mutex / std::lock_guard / std::unique_lock /
//     std::condition_variable directly; it uses common::Mutex,
//     common::LockGuard, common::UniqueLock, common::CondVar from this
//     header so the capability system sees every lock.
//   - Every mutex-guarded field is annotated DR_GUARDED_BY(mu_); every
//     private helper that expects the lock held is annotated
//     DR_REQUIRES(mu_).
//
// The negative test (tests/lint_negative.cpp, Clang-only, expected to fail
// to compile) keeps this gate from silently rotting.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define DR_TS_ATTRIBUTE(x) __attribute__((x))
#else
#define DR_TS_ATTRIBUTE(x)  // no-op: GCC has no thread-safety analysis
#endif

/// Declares a type to be a capability (lockable).
#define DR_CAPABILITY(x) DR_TS_ATTRIBUTE(capability(x))
/// RAII types that acquire in the ctor and release in the dtor.
#define DR_SCOPED_CAPABILITY DR_TS_ATTRIBUTE(scoped_lockable)
/// Field is protected by the given mutex; access requires holding it.
#define DR_GUARDED_BY(x) DR_TS_ATTRIBUTE(guarded_by(x))
/// Pointer field whose *pointee* is protected by the given mutex.
#define DR_PT_GUARDED_BY(x) DR_TS_ATTRIBUTE(pt_guarded_by(x))
/// Function requires the capability held on entry (and does not release it).
#define DR_REQUIRES(...) DR_TS_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define DR_REQUIRES_SHARED(...) \
  DR_TS_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))
/// Function acquires the capability (must not be held on entry).
#define DR_ACQUIRE(...) DR_TS_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define DR_ACQUIRE_SHARED(...) \
  DR_TS_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))
/// Function releases the capability (must be held on entry).
#define DR_RELEASE(...) DR_TS_ATTRIBUTE(release_capability(__VA_ARGS__))
#define DR_RELEASE_SHARED(...) \
  DR_TS_ATTRIBUTE(release_shared_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns the given value.
#define DR_TRY_ACQUIRE(...) DR_TS_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
/// Caller must NOT hold the capability (lock-ordering / deadlock guard).
#define DR_EXCLUDES(...) DR_TS_ATTRIBUTE(locks_excluded(__VA_ARGS__))
/// Asserts (at runtime) that the capability is held; informs the analysis.
#define DR_ASSERT_CAPABILITY(x) DR_TS_ATTRIBUTE(assert_capability(x))
/// Function returns a reference to the given capability.
#define DR_RETURN_CAPABILITY(x) DR_TS_ATTRIBUTE(lock_returned(x))
/// Lock-ordering declarations between mutexes.
#define DR_ACQUIRED_BEFORE(...) DR_TS_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define DR_ACQUIRED_AFTER(...) DR_TS_ATTRIBUTE(acquired_after(__VA_ARGS__))
/// Escape hatch; every use needs a comment explaining why the analysis
/// cannot see the invariant (and what enforces it instead).
#define DR_NO_THREAD_SAFETY_ANALYSIS \
  DR_TS_ATTRIBUTE(no_thread_safety_analysis)

namespace dynriver::common {

/// std::mutex with the capability attribute, so it can appear in
/// DR_GUARDED_BY / DR_REQUIRES expressions. Same cost, same semantics.
class DR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DR_ACQUIRE() { mu_.lock(); }
  void unlock() DR_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() DR_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped std::mutex — for UniqueLock/CondVar plumbing only.
  [[nodiscard]] std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// std::lock_guard over a common::Mutex: scoped capability, not unlockable.
class DR_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) DR_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() DR_RELEASE() { mu_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

/// std::unique_lock over a common::Mutex: scoped capability that supports
/// manual unlock()/lock() (for wait loops and lock-dropping sections) and
/// condition-variable waits via CondVar. Always owns on construction.
class DR_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) DR_ACQUIRE(mu) : lock_(mu.native()) {}
  ~UniqueLock() DR_RELEASE() = default;
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() DR_ACQUIRE() { lock_.lock(); }
  void unlock() DR_RELEASE() { lock_.unlock(); }

  /// The wrapped std::unique_lock — for CondVar plumbing only.
  [[nodiscard]] std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// std::condition_variable waiting on a common::UniqueLock. The capability
/// is held across wait() from the analysis's point of view (the internal
/// release/reacquire is invisible, which is exactly the contract: the
/// predicate and the code after wait() run with the lock held).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  // No predicate overloads on purpose: a predicate lambda would be analyzed
  // as a separate function, hiding its DR_GUARDED_BY accesses from the
  // capability system. Wait in a visible loop instead:
  //   while (!ready_) cv_.wait(lock);
  //   while (!ready_ && cv_.wait_until(lock, deadline) != timeout) {}

  void wait(UniqueLock& lock) { cv_.wait(lock.native()); }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      UniqueLock& lock, const std::chrono::time_point<Clock, Duration>& tp) {
    return cv_.wait_until(lock.native(), tp);
  }

 private:
  std::condition_variable cv_;
};

}  // namespace dynriver::common
