#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <memory>

namespace dynriver::common {

namespace {
/// Lane count for `threads == 0`: the DR_THREADS environment override when
/// set to a positive integer, else hardware concurrency. The override is the
/// explicit knob for containers whose advertised core count is wrong for the
/// workload (a 1-core CI box makes every threads=0 pool a no-op; shared
/// hardware may want fewer lanes than cores).
std::size_t default_thread_count() {
  // Cap the override: a typo'd or overflowed value (strtol saturates at
  // LONG_MAX on ERANGE) must not translate into thousands of spawned
  // threads; 512 lanes is beyond any machine this targets.
  constexpr long kMaxThreads = 512;
  if (const char* env = std::getenv("DR_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      return static_cast<std::size_t>(std::min(v, kMaxThreads));
    }
  }
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_thread_count();
  // The parallel_for caller is lane 0; spawn the rest as workers.
  const std::size_t workers = threads - 1;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const LockGuard lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      UniqueLock lock(mutex_);
      while (!stop_ && tasks_.empty()) wake_.wait(lock);
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

namespace {
/// Shared state of one parallel_for call: a work-stealing index counter plus
/// completion bookkeeping. Heap-allocated so enqueued tasks stay valid even
/// while the caller is blocked in the completion wait.
struct ForState {
  std::atomic<std::size_t> next{0};
  std::size_t end = 0;
  std::atomic<std::size_t> done{0};
  std::size_t total = 0;
  const std::function<void(std::size_t)>* body = nullptr;

  Mutex mutex;
  CondVar finished;
  std::exception_ptr error DR_GUARDED_BY(mutex);

  void run_indices() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= end) return;
      try {
        (*body)(i);
      } catch (...) {
        const LockGuard lock(mutex);
        if (!error) error = std::current_exception();
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == total) {
        const LockGuard lock(mutex);
        finished.notify_all();
      }
    }
  }
};
}  // namespace

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  if (total == 1 || workers_.empty()) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  auto state = std::make_shared<ForState>();
  state->next.store(begin, std::memory_order_relaxed);
  state->end = end;
  state->total = total;
  state->body = &body;  // valid: this call outlives every enqueued task

  const std::size_t helpers = std::min(workers_.size(), total - 1);
  {
    const LockGuard lock(mutex_);
    for (std::size_t i = 0; i < helpers; ++i) {
      tasks_.emplace_back([state] { state->run_indices(); });
    }
  }
  wake_.notify_all();

  // The calling thread participates until the index space is exhausted,
  // then waits for indices claimed by workers to finish.
  state->run_indices();
  UniqueLock lock(state->mutex);
  while (state->done.load(std::memory_order_acquire) != state->total) {
    state->finished.wait(lock);
  }
  if (state->error) std::rethrow_exception(state->error);
}

double ThreadPool::dispatch_cost_ns() {
  const double cached = dispatch_cost_.load(std::memory_order_relaxed);
  if (cached >= 0.0) return cached;
  double best;
  if (workers_.empty()) {
    best = 0.0;  // serial pool: parallel_for degenerates to a plain loop
  } else {
    // Best of a few empty fan-outs over every lane: the minimum rejects
    // probes that lost their timeslice, and the first probe doubles as the
    // worker warm-up.
    using clock = std::chrono::steady_clock;
    const auto noop = std::function<void(std::size_t)>([](std::size_t) {});
    best = std::numeric_limits<double>::infinity();
    for (int probe = 0; probe < 5; ++probe) {
      const auto t0 = clock::now();
      parallel_for(0, thread_count(), noop);
      const auto t1 = clock::now();
      best = std::min(
          best,
          std::chrono::duration<double, std::nano>(t1 - t0).count());
    }
  }
  dispatch_cost_.store(best, std::memory_order_relaxed);
  return best;
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(0);
  return pool;
}

}  // namespace dynriver::common
