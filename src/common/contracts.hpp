// Lightweight contract checking in the spirit of the C++ Core Guidelines
// (I.5/I.7: state pre- and postconditions; Expects()/Ensures()).
//
// Violations throw dynriver::ContractViolation so tests can assert on them and
// long-running pipelines can contain a failing operator instead of aborting
// the whole process.
#pragma once

#include <stdexcept>
#include <string>

namespace dynriver {

/// Thrown when a precondition, postcondition, or internal invariant fails.
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(const char* kind, const char* expr, const char* file, int line);
};

namespace detail {
[[noreturn]] void contract_fail(const char* kind, const char* expr, const char* file,
                                int line);
}  // namespace detail

}  // namespace dynriver

/// Precondition check: caller is responsible for satisfying `cond`.
#define DR_EXPECTS(cond)                                                        \
  do {                                                                          \
    if (!(cond)) ::dynriver::detail::contract_fail("precondition", #cond, __FILE__, __LINE__); \
  } while (false)

/// Postcondition check: callee guarantees `cond` on exit.
#define DR_ENSURES(cond)                                                        \
  do {                                                                          \
    if (!(cond)) ::dynriver::detail::contract_fail("postcondition", #cond, __FILE__, __LINE__); \
  } while (false)

/// Internal invariant that should hold regardless of caller behaviour.
#define DR_ASSERT(cond)                                                         \
  do {                                                                          \
    if (!(cond)) ::dynriver::detail::contract_fail("invariant", #cond, __FILE__, __LINE__); \
  } while (false)
