// Deterministic, seedable random number generation used across the synthetic
// substrate and the evaluation protocols. All experiments are reproducible
// from a single 64-bit seed.
#pragma once

#include <cstdint>
#include <random>

namespace dynriver {

/// Wrapper around a Mersenne Twister with convenience draws.
///
/// One `Rng` per logical stream of randomness (e.g. one per sensor station,
/// one per cross-validation repetition) keeps experiments reproducible even
/// when components are reordered.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Gaussian with the given mean and standard deviation.
  double gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli draw with probability p of true.
  bool chance(double p) { return std::bernoulli_distribution(p)(engine_); }

  /// Derive an independent child generator (for per-entity streams).
  Rng split() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace dynriver
