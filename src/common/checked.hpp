// Overflow-checked size arithmetic for decoders of untrusted bytes.
//
// Every parser that turns attacker-controlled length fields into allocation
// sizes, buffer offsets, or loop bounds must do that arithmetic through the
// helpers below: `a + b` and `a * b` that throw instead of wrapping, and a
// narrowing cast that throws instead of truncating. The exception type is a
// template parameter so each decoder surfaces its own error family
// (river::WireError, dsp::WavError, plain std::runtime_error) and callers'
// existing catch sites keep working.
//
// The repo lint (scripts/lint.py, checked-size-arithmetic) forbids raw
// `len * sizeof(T)` products and `static_cast<std::size_t>` length casts in
// the decoder translation units; these helpers are the sanctioned spelling.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <type_traits>
#include <utility>

namespace dynriver::common::checked {

/// `a + b`, throwing `E{what}` when the sum does not fit in T.
template <typename E, typename T>
[[nodiscard]] inline T add(T a, T b, const char* what) {
  static_assert(std::is_unsigned_v<T>, "checked::add is for size arithmetic");
  T out{};
  if (__builtin_add_overflow(a, b, &out)) throw E(what);
  return out;
}

/// `a * b`, throwing `E{what}` when the product does not fit in T.
template <typename E, typename T>
[[nodiscard]] inline T mul(T a, T b, const char* what) {
  static_assert(std::is_unsigned_v<T>, "checked::mul is for size arithmetic");
  T out{};
  if (__builtin_mul_overflow(a, b, &out)) throw E(what);
  return out;
}

/// Narrow `v` to To, throwing `E{what}` when the value does not fit (both
/// directions: too large, or negative into an unsigned type).
template <typename To, typename E, typename From>
[[nodiscard]] inline To narrow(From v, const char* what) {
  static_assert(std::is_integral_v<To> && std::is_integral_v<From>);
  if (!std::in_range<To>(v)) throw E(what);
  return static_cast<To>(v);
}

}  // namespace dynriver::common::checked
