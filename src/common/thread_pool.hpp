// A small fixed-size worker pool with a deterministic parallel_for.
//
// Used by core::MultiStreamExtractor (per-channel anomaly scoring) and
// eval's leave-one-out protocols (independent folds). Determinism contract:
// parallel_for hands each index to exactly one invocation of `body`, bodies
// write only to per-index state, and callers accumulate results serially in
// index order afterwards — so threaded runs are bit-identical to serial runs
// regardless of scheduling.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <optional>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"

namespace dynriver::common {

class ThreadPool {
 public:
  /// A pool with `threads` total lanes of concurrency, the calling thread
  /// of parallel_for being one of them (so threads-1 workers are spawned
  /// and the machine is never oversubscribed). 0 picks the DR_THREADS
  /// environment override when set to a positive integer, else
  /// std::thread::hardware_concurrency() — so shared() and every other
  /// threads=0 pool can be resized per run without code changes. 1 means
  /// fully serial.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Concurrency lanes including the calling thread (>= 1).
  [[nodiscard]] std::size_t thread_count() const { return workers_.size() + 1; }

  /// Run body(i) for every i in [begin, end), distributing indices across
  /// the workers plus the calling thread. Blocks until every index has
  /// completed; the first exception thrown by any body is rethrown here
  /// (remaining indices still run).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// Measured cost of one empty parallel_for dispatch over this pool's
  /// lanes, in nanoseconds — enqueue, worker wake-up, and completion wait.
  /// Measured lazily on first call (best of a few probes, so a descheduled
  /// probe does not inflate the estimate) and cached for the pool's
  /// lifetime. Callers compare it against their measured per-batch work to
  /// decide whether fan-out amortizes; a serial pool reports 0.
  [[nodiscard]] double dispatch_cost_ns();

  /// Process-wide shared pool (DR_THREADS lanes when set, else hardware
  /// concurrency; the override is read once, at first use). Intended for
  /// coarse task-level parallelism; bodies must not block on this pool
  /// themselves.
  [[nodiscard]] static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;  ///< started in ctor, joined in dtor only
  Mutex mutex_;
  CondVar wake_;
  std::deque<std::function<void()>> tasks_ DR_GUARDED_BY(mutex_);
  bool stop_ DR_GUARDED_BY(mutex_) = false;
  std::atomic<double> dispatch_cost_{-1.0};  ///< lazy dispatch_cost_ns cache
};

/// The one threading-dispatch policy used across the codebase (eval's
/// leave-one-out folds, MultiStreamExtractor's channel scoring): a `threads`
/// knob where 1 = serial on the caller, 0 = the shared() pool, and >= 2 = a
/// dedicated pool of that size owned by the runner (built once, reused
/// across run() calls).
class TaskRunner {
 public:
  explicit TaskRunner(std::size_t threads) : threads_(threads) {
    if (threads_ >= 2) pool_.emplace(threads_);
  }

  /// Run body(i) for i in [0, count) under the configured policy; blocks
  /// until complete. Same determinism contract as ThreadPool::parallel_for.
  void run(std::size_t count, const std::function<void(std::size_t)>& body) {
    if (threads_ == 1 || count <= 1) {
      for (std::size_t i = 0; i < count; ++i) body(i);
    } else if (pool_) {
      pool_->parallel_for(0, count, body);
    } else {
      ThreadPool::shared().parallel_for(0, count, body);
    }
  }

  [[nodiscard]] bool serial() const { return threads_ == 1; }

  /// Concurrency lanes run() actually dispatches over: 1 for the serial
  /// policy, else the (dedicated or shared) pool's thread count. This is
  /// what auto-degradation keys on — a threads=0 runner on a 1-core host
  /// resolves to 1 lane, so callers can fall back to their serial path
  /// instead of paying dispatch for no parallelism.
  [[nodiscard]] std::size_t lanes() const {
    if (threads_ == 1) return 1;
    if (pool_) return pool_->thread_count();
    return ThreadPool::shared().thread_count();
  }

  /// dispatch_cost_ns() of the pool run() would use (0 when serial).
  [[nodiscard]] double dispatch_cost_ns() {
    if (threads_ == 1) return 0.0;
    if (pool_) return pool_->dispatch_cost_ns();
    return ThreadPool::shared().dispatch_cost_ns();
  }

 private:
  std::size_t threads_;
  std::optional<ThreadPool> pool_;
};

}  // namespace dynriver::common
