#include "eval/corpus_cache.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <new>
#include <sstream>
#include <stdexcept>

#include "common/contracts.hpp"

namespace dynriver::eval {

namespace {

constexpr std::uint32_t kMagic = 0x44524343;    // "DRCC"
constexpr std::uint32_t kFormatVersion = 1;

// -- fingerprint --------------------------------------------------------------

class Fnv1a {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xFFU;
      hash_ *= 0x100000001B3ULL;
    }
  }
  void mix(double v) { mix(std::bit_cast<std::uint64_t>(v)); }
  void mix(int v) { mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(v))); }
  void mix(bool v) { mix(static_cast<std::uint64_t>(v ? 1 : 0)); }

  [[nodiscard]] std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xCBF29CE484222325ULL;
};

// -- primitive readers/writers ------------------------------------------------

template <typename T>
void put(std::ostream& os, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool get(std::istream& is, T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  return is.good();
}

void put_string(std::ostream& os, const std::string& s) {
  put(os, static_cast<std::uint64_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool get_string(std::istream& is, std::string& s) {
  std::uint64_t len = 0;
  if (!get(is, len) || len > (1ULL << 20)) return false;
  s.resize(static_cast<std::size_t>(len));
  is.read(s.data(), static_cast<std::streamsize>(len));
  return is.good() || (len == 0 && !is.bad());
}

void put_floats(std::ostream& os, const std::vector<float>& v) {
  put(os, static_cast<std::uint64_t>(v.size()));
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(float)));
}

bool get_floats(std::istream& is, std::vector<float>& v) {
  std::uint64_t len = 0;
  if (!get(is, len) || len > (1ULL << 32)) return false;
  v.resize(static_cast<std::size_t>(len));
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(float)));
  return !is.bad() && (len == 0 || is.good());
}

// -- dataset / stats sections -------------------------------------------------

void put_dataset(std::ostream& os, const Dataset& data) {
  put(os, static_cast<std::uint64_t>(data.num_classes));
  put(os, static_cast<std::uint64_t>(data.ensembles.size()));
  for (const auto& e : data.ensembles) {
    put(os, static_cast<std::int64_t>(e.label));
    put(os, e.clip_id);
    put(os, static_cast<std::uint64_t>(e.start_sample));
    put(os, static_cast<std::uint64_t>(e.length));
    put(os, static_cast<std::uint64_t>(e.patterns.size()));
    for (const auto& p : e.patterns) put_floats(os, p);
  }
}

bool get_dataset(std::istream& is, Dataset& data) {
  std::uint64_t num_classes = 0;
  std::uint64_t count = 0;
  if (!get(is, num_classes) || !get(is, count)) return false;
  if (num_classes > (1ULL << 16) || count > (1ULL << 32)) return false;
  data.num_classes = static_cast<std::size_t>(num_classes);
  data.ensembles.resize(static_cast<std::size_t>(count));
  for (auto& e : data.ensembles) {
    std::int64_t label = 0;
    std::uint64_t start = 0;
    std::uint64_t length = 0;
    std::uint64_t patterns = 0;
    if (!get(is, label) || !get(is, e.clip_id) || !get(is, start) ||
        !get(is, length) || !get(is, patterns) || patterns > (1ULL << 32)) {
      return false;
    }
    e.label = static_cast<int>(label);
    e.start_sample = static_cast<std::size_t>(start);
    e.length = static_cast<std::size_t>(length);
    e.patterns.resize(static_cast<std::size_t>(patterns));
    for (auto& p : e.patterns) {
      if (!get_floats(is, p)) return false;
    }
  }
  return true;
}

void put_stats(std::ostream& os, const CorpusStats& stats) {
  for (const auto& sp : stats.species) {
    put_string(os, sp.code);
    put(os, static_cast<std::int64_t>(sp.planted));
    put(os, static_cast<std::int64_t>(sp.validated_ensembles));
    put(os, static_cast<std::int64_t>(sp.patterns));
  }
  put(os, static_cast<std::uint64_t>(stats.clips));
  put(os, static_cast<std::uint64_t>(stats.total_samples));
  put(os, static_cast<std::uint64_t>(stats.extracted_ensembles));
  put(os, static_cast<std::uint64_t>(stats.retained_samples));
  put(os, static_cast<std::uint64_t>(stats.rejected_ensembles));
  put(os, static_cast<std::uint64_t>(stats.missed_songs));
  put(os, stats.build_seconds);
}

bool get_stats(std::istream& is, CorpusStats& stats) {
  for (auto& sp : stats.species) {
    std::int64_t planted = 0;
    std::int64_t validated = 0;
    std::int64_t patterns = 0;
    if (!get_string(is, sp.code) || !get(is, planted) || !get(is, validated) ||
        !get(is, patterns)) {
      return false;
    }
    sp.planted = static_cast<int>(planted);
    sp.validated_ensembles = static_cast<int>(validated);
    sp.patterns = static_cast<int>(patterns);
  }
  std::uint64_t clips = 0;
  std::uint64_t total = 0;
  std::uint64_t extracted = 0;
  std::uint64_t retained = 0;
  std::uint64_t rejected = 0;
  std::uint64_t missed = 0;
  if (!get(is, clips) || !get(is, total) || !get(is, extracted) ||
      !get(is, retained) || !get(is, rejected) || !get(is, missed) ||
      !get(is, stats.build_seconds)) {
    return false;
  }
  stats.clips = static_cast<std::size_t>(clips);
  stats.total_samples = static_cast<std::size_t>(total);
  stats.extracted_ensembles = static_cast<std::size_t>(extracted);
  stats.retained_samples = static_cast<std::size_t>(retained);
  stats.rejected_ensembles = static_cast<std::size_t>(rejected);
  stats.missed_songs = static_cast<std::size_t>(missed);
  return true;
}

}  // namespace

std::uint64_t corpus_fingerprint(const BuildConfig& config) {
  Fnv1a h;
  h.mix(static_cast<std::uint64_t>(kFormatVersion));
  h.mix(config.seed);
  h.mix(config.corpus_scale);
  h.mix(config.songs_per_clip);
  h.mix(config.validation_overlap);
  for (const int songs : config.songs_per_species) h.mix(songs);

  const core::PipelineParams& p = config.params;
  h.mix(p.sample_rate);
  h.mix(p.record_size);
  h.mix(p.anomaly.window);
  h.mix(p.anomaly.alphabet);
  h.mix(p.anomaly.level);
  h.mix(p.anomaly.ma_window);
  h.mix(p.anomaly.frame);
  h.mix(p.trigger_sigma);
  h.mix(p.trigger_min_baseline);
  h.mix(p.trigger_hold_samples);
  h.mix(p.min_ensemble_samples);
  h.mix(p.merge_gap_samples);
  h.mix(p.reslice);
  h.mix(static_cast<std::uint64_t>(p.window));
  h.mix(p.dft_size);
  h.mix(p.cutout_lo_hz);
  h.mix(p.cutout_hi_hz);
  // use_paa is forced off for the master set, but the PAA factor shapes the
  // derived paa_dataset.
  h.mix(p.paa_factor);
  h.mix(p.pattern_merge);
  h.mix(p.pattern_stride);

  const synth::StationParams& st = config.station;
  h.mix(st.sample_rate);
  h.mix(st.clip_seconds);
  h.mix(st.noise.wind);
  h.mix(st.noise.human);
  h.mix(st.noise.ambient);
  h.mix(st.song_gain);
  h.mix(st.distractor_probability);
  h.mix(st.min_event_gap_s);
  h.mix(st.warmup_margin_s);
  return h.value();
}

std::filesystem::path corpus_cache_path(const std::filesystem::path& dir,
                                        const BuildConfig& config) {
  std::ostringstream name;
  name << "corpus_v" << kFormatVersion << "_" << std::hex
       << corpus_fingerprint(config) << ".drc";
  return dir / name.str();
}

bool save_corpus(const std::filesystem::path& path, const BuildConfig& config,
                 const BuildResult& result) {
  std::error_code ec;
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path(), ec);
  }
  // Write to a temp sibling and rename so readers never see a torn file.
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) return false;
    put(os, kMagic);
    put(os, kFormatVersion);
    put(os, corpus_fingerprint(config));
    put_stats(os, result.stats);
    put_dataset(os, result.dataset);
    put_dataset(os, result.paa_dataset);
    // close() flushes the buffered tail; a full disk can fail right there,
    // so check the stream state after the close, not just before it.
    os.close();
    if (!os.good()) {
      std::filesystem::remove(tmp, ec);
      return false;
    }
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

std::optional<BuildResult> load_corpus(const std::filesystem::path& path,
                                       const BuildConfig& config) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;

  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint64_t fingerprint = 0;
  if (!get(is, magic) || magic != kMagic) return std::nullopt;
  if (!get(is, version) || version != kFormatVersion) return std::nullopt;
  if (!get(is, fingerprint) || fingerprint != corpus_fingerprint(config)) {
    return std::nullopt;
  }

  // A corrupt body can still carry header-plausible but absurd counts;
  // treat allocation failure like any other malformed-file case.
  try {
    BuildResult result;
    if (!get_stats(is, result.stats)) return std::nullopt;
    if (!get_dataset(is, result.dataset)) return std::nullopt;
    if (!get_dataset(is, result.paa_dataset)) return std::nullopt;
    return result;
  } catch (const std::bad_alloc&) {
    return std::nullopt;
  } catch (const std::length_error&) {
    return std::nullopt;
  }
}

BuildResult load_or_build_corpus(const BuildConfig& config,
                                 const std::filesystem::path& dir,
                                 bool* cache_hit) {
  const std::filesystem::path path = corpus_cache_path(dir, config);
  if (auto cached = load_corpus(path, config)) {
    if (cache_hit != nullptr) *cache_hit = true;
    return std::move(*cached);
  }
  BuildResult result = build_corpus(config);
  (void)save_corpus(path, config, result);
  if (cache_hit != nullptr) *cache_hit = false;
  return result;
}

}  // namespace dynriver::eval
