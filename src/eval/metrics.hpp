// Classification metrics: accuracy aggregation and confusion matrices
// (paper, Tables 2 and 3).
#pragma once

#include <span>
#include <string>
#include <vector>

namespace dynriver::eval {

/// Row = actual class, column = predicted class.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t num_classes);

  void add(std::size_t actual, std::size_t predicted);
  void merge(const ConfusionMatrix& other);

  [[nodiscard]] std::size_t num_classes() const { return n_; }
  [[nodiscard]] std::size_t count(std::size_t actual, std::size_t predicted) const;
  [[nodiscard]] std::size_t row_total(std::size_t actual) const;
  [[nodiscard]] std::size_t total() const;

  /// Percentage of class `actual` predicted as `predicted` (row-normalized,
  /// like the paper's Table 3).
  [[nodiscard]] double percent(std::size_t actual, std::size_t predicted) const;

  /// Overall accuracy (trace / total).
  [[nodiscard]] double accuracy() const;

  /// Render as a Table 3 style matrix with row/column labels.
  [[nodiscard]] std::string to_string(std::span<const std::string> labels) const;

 private:
  std::size_t n_;
  std::vector<std::size_t> cells_;  // n_ x n_, row-major
};

/// Mean +/- sample standard deviation over experiment repetitions.
struct AccuracyStats {
  double mean = 0.0;
  double stddev = 0.0;
  std::size_t repeats = 0;
};

[[nodiscard]] AccuracyStats summarize(std::span<const double> values);

}  // namespace dynriver::eval
