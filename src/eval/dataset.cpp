#include "eval/dataset.hpp"

#include <algorithm>
#include <cmath>

#include <memory>

#include "common/contracts.hpp"
#include "common/stopwatch.hpp"
#include "core/spectral_engine.hpp"
#include "core/stream_session.hpp"
#include "river/sample_io.hpp"
#include "ts/paa.hpp"

namespace dynriver::eval {

std::size_t Dataset::pattern_count() const {
  std::size_t acc = 0;
  for (const auto& e : ensembles) acc += e.patterns.size();
  return acc;
}

std::vector<std::size_t> Dataset::patterns_per_class() const {
  std::vector<std::size_t> out(num_classes, 0);
  for (const auto& e : ensembles) {
    DR_ASSERT(e.label >= 0 && static_cast<std::size_t>(e.label) < num_classes);
    out[static_cast<std::size_t>(e.label)] += e.patterns.size();
  }
  return out;
}

std::vector<std::size_t> Dataset::ensembles_per_class() const {
  std::vector<std::size_t> out(num_classes, 0);
  for (const auto& e : ensembles) {
    out[static_cast<std::size_t>(e.label)] += 1;
  }
  return out;
}

Dataset Dataset::reduce_paa(std::size_t factor) const {
  DR_EXPECTS(factor >= 1);
  Dataset out;
  out.num_classes = num_classes;
  out.ensembles.reserve(ensembles.size());
  for (const auto& e : ensembles) {
    EnsembleData reduced = e;
    for (auto& p : reduced.patterns) {
      p = ts::paa_reduce_by(p, factor);
    }
    out.ensembles.push_back(std::move(reduced));
  }
  return out;
}

const std::array<Table1Row, synth::kNumSpecies>& paper_table1() {
  static const std::array<Table1Row, synth::kNumSpecies> rows = {{
      {"AMGO", "American goldfinch", 229, 42},
      {"BCCH", "Black capped chickadee", 672, 68},
      {"BLJA", "Blue Jay", 318, 51},
      {"DOWO", "Downy woodpecker", 272, 50},
      {"HOFI", "House finch", 223, 26},
      {"MODO", "Mourning dove", 338, 24},
      {"NOCA", "Northern cardinal", 395, 42},
      {"RWBL", "Red winged blackbird", 211, 27},
      {"TUTI", "Tufted titmouse", 339, 59},
      {"WBNU", "White breasted nuthatch", 676, 84},
  }};
  return rows;
}

double CorpusStats::reduction_fraction() const {
  if (total_samples == 0) return 0.0;
  return 1.0 - static_cast<double>(retained_samples) /
                   static_cast<double>(total_samples);
}

BuildResult build_corpus(const BuildConfig& config) {
  dynriver::Stopwatch watch;

  core::PipelineParams params = config.params;
  params.use_paa = false;  // master set is full resolution; PAA derived below
  params.validate();
  DR_EXPECTS(config.songs_per_clip >= 1);
  DR_EXPECTS(config.corpus_scale > 0.0);

  BuildResult result;
  result.dataset.num_classes = synth::kNumSpecies;

  synth::StationParams station_params = config.station;
  station_params.sample_rate = params.sample_rate;
  synth::SensorStation station(station_params, config.seed);

  // One SpectralEngine for the whole build: extraction and featurization
  // share its plan-cached FFTs and window tables. Clips stream through one
  // StreamSession in record_size chunks — the same code path (and bit-
  // identical output) as live station ingest.
  const auto engine = std::make_shared<const core::SpectralEngine>(params);
  core::StreamSession session(params, {}, engine);

  for (std::size_t s = 0; s < synth::kNumSpecies; ++s) {
    auto& sp_stats = result.stats.species[s];
    sp_stats.code = synth::species(s).code;

    int songs = config.songs_per_species[s];
    if (songs < 0) songs = paper_table1()[s].ensembles;
    songs = std::max(1, static_cast<int>(std::lround(songs * config.corpus_scale)));

    int planted = 0;
    while (planted < songs) {
      const int in_clip = std::min(config.songs_per_clip, songs - planted);
      const std::vector<synth::SpeciesId> singers(
          static_cast<std::size_t>(in_clip), static_cast<synth::SpeciesId>(s));
      const synth::ClipRecording clip = station.record_clip(singers);
      planted += in_clip;
      sp_stats.planted += in_clip;
      ++result.stats.clips;
      result.stats.total_samples += clip.clip.samples.size();

      session.reset();
      river::BufferSource source(clip.clip.samples, params.sample_rate);
      river::CollectingEnsembleSink sink;
      core::run_stream(source, session, sink, params.record_size);
      result.stats.extracted_ensembles += sink.ensembles.size();
      for (const auto& ensemble : sink.ensembles) {
        result.stats.retained_samples += ensemble.length();
      }

      // Ground-truth validation: the stand-in for the paper's human listener.
      std::vector<bool> truth_hit(clip.truth.size(), false);
      for (const auto& ensemble : sink.ensembles) {
        int label = -1;
        for (std::size_t t = 0; t < clip.truth.size(); ++t) {
          if (synth::intervals_overlap(
                  ensemble.start_sample, ensemble.end_sample(),
                  clip.truth[t].start_sample, clip.truth[t].end_sample(),
                  config.validation_overlap)) {
            label = static_cast<int>(clip.truth[t].species);
            truth_hit[t] = true;
            break;
          }
        }
        if (label < 0) {
          ++result.stats.rejected_ensembles;
          continue;
        }

        EnsembleData data;
        data.label = label;
        data.patterns = session.featurize(ensemble);
        if (data.patterns.empty()) {
          ++result.stats.rejected_ensembles;
          continue;
        }
        data.clip_id = clip.clip_id;
        data.start_sample = ensemble.start_sample;
        data.length = ensemble.length();
        sp_stats.validated_ensembles += 1;
        sp_stats.patterns += static_cast<int>(data.patterns.size());
        result.dataset.ensembles.push_back(std::move(data));
      }
      for (const bool hit : truth_hit) {
        if (!hit) ++result.stats.missed_songs;
      }
    }
  }

  result.paa_dataset = result.dataset.reduce_paa(config.params.paa_factor);
  result.stats.build_seconds = watch.seconds();
  return result;
}

}  // namespace dynriver::eval
