// Birdsong data set construction (paper, Section 4, Table 1).
//
// The builder simulates the paper's field campaign end to end: sensor
// stations record clips containing planted vocalizations, the extraction
// pipeline cuts ensembles out of them, ground truth validates each ensemble
// (substituting for the paper's human listener), and the feature pipeline
// turns validated ensembles into patterns. One build yields both the
// full-resolution (1050-feature) and PAA (105-feature) data sets, exactly
// like the paper's four experimental data sets.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "synth/station.hpp"

namespace dynriver::eval {

/// One validated ensemble with its extracted patterns.
struct EnsembleData {
  int label = -1;  ///< species index (synth::SpeciesId)
  std::vector<std::vector<float>> patterns;
  std::uint64_t clip_id = 0;
  std::size_t start_sample = 0;
  std::size_t length = 0;
};

/// A labelled corpus of ensembles.
struct Dataset {
  std::vector<EnsembleData> ensembles;
  std::size_t num_classes = synth::kNumSpecies;

  [[nodiscard]] std::size_t pattern_count() const;
  [[nodiscard]] std::size_t ensemble_count() const { return ensembles.size(); }
  /// Patterns per species (Table 1 column).
  [[nodiscard]] std::vector<std::size_t> patterns_per_class() const;
  [[nodiscard]] std::vector<std::size_t> ensembles_per_class() const;
  /// Derive the PAA-reduced twin of this data set (factor-wise reduction of
  /// every pattern). Safe because the per-record bin count is a multiple of
  /// the factor, so segments never straddle record boundaries.
  [[nodiscard]] Dataset reduce_paa(std::size_t factor) const;
};

/// Per-species counts from the paper's Table 1, used as generation targets.
struct Table1Row {
  const char* code;
  const char* common_name;
  int patterns;
  int ensembles;
};
[[nodiscard]] const std::array<Table1Row, synth::kNumSpecies>& paper_table1();

struct BuildConfig {
  core::PipelineParams params;  ///< use_paa is forced off for the master set
  std::uint64_t seed = 42;
  /// Songs to plant per species; <0 entries mean "use the paper's Table 1
  /// ensemble count".
  std::array<int, synth::kNumSpecies> songs_per_species{
      -1, -1, -1, -1, -1, -1, -1, -1, -1, -1};
  int songs_per_clip = 2;
  /// Minimum overlap fraction (of the shorter interval) for an extracted
  /// ensemble to be validated against a planted vocalization.
  double validation_overlap = 0.25;
  synth::StationParams station{};
  /// Scale factor on songs_per_species (quick test runs use < 1).
  double corpus_scale = 1.0;
};

struct SpeciesStats {
  std::string code;
  int planted = 0;
  int validated_ensembles = 0;
  int patterns = 0;
};

struct CorpusStats {
  std::array<SpeciesStats, synth::kNumSpecies> species{};
  std::size_t clips = 0;
  std::size_t total_samples = 0;
  std::size_t extracted_ensembles = 0;  ///< before validation
  std::size_t retained_samples = 0;     ///< samples inside extracted ensembles
  std::size_t rejected_ensembles = 0;   ///< failed ground-truth validation
  std::size_t missed_songs = 0;         ///< planted songs never extracted
  double build_seconds = 0.0;

  /// The paper's headline: extraction reduced data volume by ~80.6%.
  [[nodiscard]] double reduction_fraction() const;
};

struct BuildResult {
  Dataset dataset;      ///< full-resolution patterns (1050 features)
  Dataset paa_dataset;  ///< PAA-reduced patterns (105 features)
  CorpusStats stats;
};

/// Run the full simulated campaign.
[[nodiscard]] BuildResult build_corpus(const BuildConfig& config);

}  // namespace dynriver::eval
