#include "eval/protocol.hpp"

#include <algorithm>
#include <numeric>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"

namespace dynriver::eval {

namespace {

/// Per-fold outcome, accumulated serially in holdout order after the
/// (possibly parallel) fold runs so results stay deterministic.
struct FoldOutcome {
  int predicted = -1;
  double train_seconds = 0.0;
  double test_seconds = 0.0;
};

/// Flattened view: (ensemble index, pattern index) pairs in training order.
struct Item {
  std::size_t ensemble;
  std::size_t pattern;
};

std::vector<Item> flatten(const Dataset& data) {
  std::vector<Item> items;
  items.reserve(data.pattern_count());
  for (std::size_t e = 0; e < data.ensembles.size(); ++e) {
    for (std::size_t p = 0; p < data.ensembles[e].patterns.size(); ++p) {
      items.push_back({e, p});
    }
  }
  return items;
}

void train_all(meso::Classifier& clf, const Dataset& data,
               std::span<const Item> items, std::size_t skip_ensemble,
               double& train_seconds) {
  dynriver::Stopwatch watch;
  for (const Item& item : items) {
    if (item.ensemble == skip_ensemble) continue;
    const auto& e = data.ensembles[item.ensemble];
    clf.train(e.patterns[item.pattern], e.label);
  }
  train_seconds += watch.seconds();
}

constexpr std::size_t kNoSkip = static_cast<std::size_t>(-1);

}  // namespace

int majority_vote(std::span<const int> votes, std::size_t num_classes) {
  DR_EXPECTS(!votes.empty());
  std::vector<std::size_t> counts(num_classes, 0);
  for (const int v : votes) {
    if (v >= 0 && static_cast<std::size_t>(v) < num_classes) {
      ++counts[static_cast<std::size_t>(v)];
    }
  }
  return static_cast<int>(
      std::distance(counts.begin(), std::max_element(counts.begin(), counts.end())));
}

ProtocolResult leave_one_out_ensemble(const Dataset& data,
                                      const ClassifierFactory& make,
                                      const ProtocolOptions& options) {
  DR_EXPECTS(!data.ensembles.empty());
  ProtocolResult result{.accuracy = {},
                        .confusion = ConfusionMatrix(data.num_classes)};
  dynriver::Rng rng(options.seed);
  std::vector<double> rep_accuracy;
  common::TaskRunner folds(options.threads);

  for (std::size_t rep = 0; rep < options.repeats; ++rep) {
    auto items = flatten(data);
    std::shuffle(items.begin(), items.end(), rng.engine());

    std::vector<std::size_t> holdouts(data.ensembles.size());
    std::iota(holdouts.begin(), holdouts.end(), 0);
    std::shuffle(holdouts.begin(), holdouts.end(), rng.engine());
    if (options.max_holdouts > 0 && holdouts.size() > options.max_holdouts) {
      holdouts.resize(options.max_holdouts);
    }

    std::vector<FoldOutcome> outcomes(holdouts.size());
    folds.run(holdouts.size(), [&](std::size_t f) {
      const std::size_t held = holdouts[f];
      auto clf = make();
      double train_seconds = 0.0;
      train_all(*clf, data, items, held, train_seconds);

      dynriver::Stopwatch test_watch;
      const auto& ensemble = data.ensembles[held];
      std::vector<int> votes;
      votes.reserve(ensemble.patterns.size());
      for (const auto& pattern : ensemble.patterns) {
        votes.push_back(clf->classify(pattern));
      }
      outcomes[f] = {majority_vote(votes, data.num_classes), train_seconds,
                     test_watch.seconds()};
    });

    std::size_t correct = 0;
    for (std::size_t f = 0; f < holdouts.size(); ++f) {
      const auto& ensemble = data.ensembles[holdouts[f]];
      result.train_seconds_total += outcomes[f].train_seconds;
      result.test_seconds_total += outcomes[f].test_seconds;
      ++result.trainings;
      result.confusion.add(static_cast<std::size_t>(ensemble.label),
                           static_cast<std::size_t>(outcomes[f].predicted));
      if (outcomes[f].predicted == ensemble.label) ++correct;
    }
    rep_accuracy.push_back(static_cast<double>(correct) /
                           static_cast<double>(holdouts.size()));
  }
  result.accuracy = summarize(rep_accuracy);
  return result;
}

ProtocolResult leave_one_out_pattern(const Dataset& data,
                                     const ClassifierFactory& make,
                                     const ProtocolOptions& options) {
  DR_EXPECTS(data.pattern_count() >= 2);
  ProtocolResult result{.accuracy = {},
                        .confusion = ConfusionMatrix(data.num_classes)};
  dynriver::Rng rng(options.seed);
  std::vector<double> rep_accuracy;
  common::TaskRunner folds(options.threads);

  for (std::size_t rep = 0; rep < options.repeats; ++rep) {
    auto items = flatten(data);
    std::shuffle(items.begin(), items.end(), rng.engine());

    std::vector<std::size_t> holdout_pos(items.size());
    std::iota(holdout_pos.begin(), holdout_pos.end(), 0);
    std::shuffle(holdout_pos.begin(), holdout_pos.end(), rng.engine());
    if (options.max_holdouts > 0 && holdout_pos.size() > options.max_holdouts) {
      holdout_pos.resize(options.max_holdouts);
    }

    std::vector<FoldOutcome> outcomes(holdout_pos.size());
    folds.run(holdout_pos.size(), [&](std::size_t f) {
      const std::size_t pos = holdout_pos[f];
      auto clf = make();
      dynriver::Stopwatch train_watch;
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i == pos) continue;
        const auto& e = data.ensembles[items[i].ensemble];
        clf->train(e.patterns[items[i].pattern], e.label);
      }
      const double train_seconds = train_watch.seconds();

      dynriver::Stopwatch test_watch;
      const auto& test_ensemble = data.ensembles[items[pos].ensemble];
      outcomes[f] = {clf->classify(test_ensemble.patterns[items[pos].pattern]),
                     train_seconds, test_watch.seconds()};
    });

    std::size_t correct = 0;
    for (std::size_t f = 0; f < holdout_pos.size(); ++f) {
      const auto& test_ensemble = data.ensembles[items[holdout_pos[f]].ensemble];
      result.train_seconds_total += outcomes[f].train_seconds;
      result.test_seconds_total += outcomes[f].test_seconds;
      ++result.trainings;

      const int predicted = outcomes[f].predicted;
      const int actual = test_ensemble.label;
      if (predicted >= 0) {
        result.confusion.add(static_cast<std::size_t>(actual),
                             static_cast<std::size_t>(predicted));
      }
      if (predicted == actual) ++correct;
    }
    rep_accuracy.push_back(static_cast<double>(correct) /
                           static_cast<double>(holdout_pos.size()));
  }
  result.accuracy = summarize(rep_accuracy);
  return result;
}

namespace {

ProtocolResult resubstitution_impl(const Dataset& data,
                                   const ClassifierFactory& make,
                                   const ProtocolOptions& options,
                                   bool ensemble_vote) {
  DR_EXPECTS(!data.ensembles.empty());
  ProtocolResult result{.accuracy = {},
                        .confusion = ConfusionMatrix(data.num_classes)};
  dynriver::Rng rng(options.seed);
  std::vector<double> rep_accuracy;

  for (std::size_t rep = 0; rep < options.repeats; ++rep) {
    auto items = flatten(data);
    std::shuffle(items.begin(), items.end(), rng.engine());

    auto clf = make();
    train_all(*clf, data, items, kNoSkip, result.train_seconds_total);
    ++result.trainings;

    dynriver::Stopwatch test_watch;
    std::size_t correct = 0;
    std::size_t total = 0;
    if (ensemble_vote) {
      for (const auto& ensemble : data.ensembles) {
        std::vector<int> votes;
        votes.reserve(ensemble.patterns.size());
        for (const auto& pattern : ensemble.patterns) {
          votes.push_back(clf->classify(pattern));
        }
        const int predicted = majority_vote(votes, data.num_classes);
        result.confusion.add(static_cast<std::size_t>(ensemble.label),
                             static_cast<std::size_t>(predicted));
        if (predicted == ensemble.label) ++correct;
        ++total;
      }
    } else {
      for (const auto& ensemble : data.ensembles) {
        for (const auto& pattern : ensemble.patterns) {
          const int predicted = clf->classify(pattern);
          if (predicted >= 0) {
            result.confusion.add(static_cast<std::size_t>(ensemble.label),
                                 static_cast<std::size_t>(predicted));
          }
          if (predicted == ensemble.label) ++correct;
          ++total;
        }
      }
    }
    result.test_seconds_total += test_watch.seconds();
    rep_accuracy.push_back(static_cast<double>(correct) /
                           static_cast<double>(total));
  }
  result.accuracy = summarize(rep_accuracy);
  return result;
}

}  // namespace

ProtocolResult resubstitution_ensemble(const Dataset& data,
                                       const ClassifierFactory& make,
                                       const ProtocolOptions& options) {
  return resubstitution_impl(data, make, options, /*ensemble_vote=*/true);
}

ProtocolResult resubstitution_pattern(const Dataset& data,
                                      const ClassifierFactory& make,
                                      const ProtocolOptions& options) {
  return resubstitution_impl(data, make, options, /*ensemble_vote=*/false);
}

TrainTestTiming measure_train_test(const Dataset& data,
                                   const ClassifierFactory& make,
                                   std::uint64_t seed) {
  TrainTestTiming timing;
  dynriver::Rng rng(seed);
  auto items = flatten(data);
  std::shuffle(items.begin(), items.end(), rng.engine());
  timing.patterns = items.size();

  auto clf = make();
  dynriver::Stopwatch train_watch;
  for (const Item& item : items) {
    const auto& e = data.ensembles[item.ensemble];
    clf->train(e.patterns[item.pattern], e.label);
  }
  timing.train_seconds = train_watch.seconds();

  dynriver::Stopwatch test_watch;
  for (const Item& item : items) {
    const auto& e = data.ensembles[item.ensemble];
    (void)clf->classify(e.patterns[item.pattern]);
  }
  timing.test_seconds = test_watch.seconds();
  return timing;
}

}  // namespace dynriver::eval
