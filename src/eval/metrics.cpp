#include "eval/metrics.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/contracts.hpp"
#include "common/stats.hpp"

namespace dynriver::eval {

ConfusionMatrix::ConfusionMatrix(std::size_t num_classes) : n_(num_classes) {
  DR_EXPECTS(num_classes >= 1);
  cells_.assign(n_ * n_, 0);
}

void ConfusionMatrix::add(std::size_t actual, std::size_t predicted) {
  DR_EXPECTS(actual < n_ && predicted < n_);
  ++cells_[actual * n_ + predicted];
}

void ConfusionMatrix::merge(const ConfusionMatrix& other) {
  DR_EXPECTS(other.n_ == n_);
  for (std::size_t i = 0; i < cells_.size(); ++i) cells_[i] += other.cells_[i];
}

std::size_t ConfusionMatrix::count(std::size_t actual, std::size_t predicted) const {
  DR_EXPECTS(actual < n_ && predicted < n_);
  return cells_[actual * n_ + predicted];
}

std::size_t ConfusionMatrix::row_total(std::size_t actual) const {
  DR_EXPECTS(actual < n_);
  std::size_t acc = 0;
  for (std::size_t c = 0; c < n_; ++c) acc += cells_[actual * n_ + c];
  return acc;
}

std::size_t ConfusionMatrix::total() const {
  std::size_t acc = 0;
  for (const auto v : cells_) acc += v;
  return acc;
}

double ConfusionMatrix::percent(std::size_t actual, std::size_t predicted) const {
  const auto row = row_total(actual);
  if (row == 0) return 0.0;
  return 100.0 * static_cast<double>(count(actual, predicted)) /
         static_cast<double>(row);
}

double ConfusionMatrix::accuracy() const {
  const auto all = total();
  if (all == 0) return 0.0;
  std::size_t diag = 0;
  for (std::size_t i = 0; i < n_; ++i) diag += cells_[i * n_ + i];
  return static_cast<double>(diag) / static_cast<double>(all);
}

std::string ConfusionMatrix::to_string(std::span<const std::string> labels) const {
  DR_EXPECTS(labels.size() == n_);
  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  os << std::setw(6) << "" << " |";
  for (const auto& l : labels) os << std::setw(6) << l;
  os << "\n" << std::string(8 + 6 * n_, '-') << "\n";
  for (std::size_t r = 0; r < n_; ++r) {
    os << std::setw(6) << labels[r] << " |";
    for (std::size_t c = 0; c < n_; ++c) {
      const double pct = percent(r, c);
      if (pct == 0.0) {
        os << std::setw(6) << "";
      } else {
        os << std::setw(6) << pct;
      }
    }
    os << "\n";
  }
  return os.str();
}

AccuracyStats summarize(std::span<const double> values) {
  AccuracyStats out;
  out.repeats = values.size();
  if (values.empty()) return out;
  RunningStats rs;
  for (const double v : values) rs.add(v);
  out.mean = rs.mean();
  out.stddev = rs.sample_stddev();
  return out;
}

}  // namespace dynriver::eval
