// Cross-validation protocols (paper, Section 4).
//
// Leave-one-out: in turn select each ensemble (or pattern) as the test item,
// train on everything else, test, repeat n times over shuffled data, report
// mean +/- std. Resubstitution: train and test on the whole data set (an
// estimate of the maximum attainable accuracy). Ensembles are tested by
// voting: each member pattern votes for a species, the majority wins.
//
// MESO training is order-dependent, which is exactly why the paper repeats
// every experiment over reshuffled data. Because true leave-one-out retrains
// the classifier once per held-out item, `max_holdouts` optionally subsamples
// the held-out items per repetition -- a statistically equivalent estimate at
// a fraction of the cost. Set it to 0 for the paper's full protocol.
#pragma once

#include <functional>
#include <memory>

#include "eval/dataset.hpp"
#include "eval/metrics.hpp"
#include "meso/types.hpp"

namespace dynriver::eval {

using ClassifierFactory = std::function<std::unique_ptr<meso::Classifier>()>;

struct ProtocolOptions {
  std::size_t repeats = 20;       ///< paper: 20 (LOO) / 100 (resubstitution)
  std::uint64_t seed = 7;
  std::size_t max_holdouts = 0;   ///< 0 = full leave-one-out
  /// Threads for the leave-one-out folds: 0 = the shared common::ThreadPool
  /// (hardware concurrency), 1 = serial, >= 2 = a dedicated pool of that
  /// size. Folds are independent (fresh classifier per fold, fixed training
  /// order) and per-fold outcomes are accumulated serially in holdout
  /// order, so threaded runs are bit-identical to serial ones. The
  /// ClassifierFactory must be safe to call concurrently.
  std::size_t threads = 1;
};

struct ProtocolResult {
  AccuracyStats accuracy;           ///< over repetitions, in [0, 1]
  ConfusionMatrix confusion;        ///< accumulated over all repetitions
  double train_seconds_total = 0.0; ///< summed over all trainings
  double test_seconds_total = 0.0;
  std::size_t trainings = 0;        ///< number of classifier trainings run
};

/// Leave-one-ensemble-out with per-ensemble voting.
[[nodiscard]] ProtocolResult leave_one_out_ensemble(const Dataset& data,
                                                    const ClassifierFactory& make,
                                                    const ProtocolOptions& options);

/// Leave-one-pattern-out (ensemble grouping discarded, per the paper's
/// pattern data sets).
[[nodiscard]] ProtocolResult leave_one_out_pattern(const Dataset& data,
                                                   const ClassifierFactory& make,
                                                   const ProtocolOptions& options);

/// Resubstitution, ensemble voting.
[[nodiscard]] ProtocolResult resubstitution_ensemble(
    const Dataset& data, const ClassifierFactory& make,
    const ProtocolOptions& options);

/// Resubstitution, per pattern.
[[nodiscard]] ProtocolResult resubstitution_pattern(
    const Dataset& data, const ClassifierFactory& make,
    const ProtocolOptions& options);

/// Single full train + full test wall-clock measurement (Table 2's
/// Training/Testing rows).
struct TrainTestTiming {
  double train_seconds = 0.0;
  double test_seconds = 0.0;
  std::size_t patterns = 0;
};
[[nodiscard]] TrainTestTiming measure_train_test(const Dataset& data,
                                                 const ClassifierFactory& make,
                                                 std::uint64_t seed);

/// Majority vote over per-pattern predictions; ties break to the smaller
/// label for determinism.
[[nodiscard]] int majority_vote(std::span<const int> votes, std::size_t num_classes);

}  // namespace dynriver::eval
