// Cached-corpus format for the benches (ROADMAP item).
//
// Synthesizing the station corpus dominates bench startup (tens of seconds
// at paper scale), and every bench binary rebuilds the identical corpus.
// This module serializes a BuildResult to a small versioned binary file
// keyed by a fingerprint of the full BuildConfig (pipeline params, station
// params, seed, scale, ...): the first bench run writes the file, later runs
// reload it, and any config or seed change lands on a different fingerprint
// (and is double-checked against the stored header), forcing a rebuild.
#pragma once

#include <filesystem>
#include <optional>
#include <string>

#include "eval/dataset.hpp"

namespace dynriver::eval {

/// Stable 64-bit fingerprint of every generation-relevant BuildConfig field
/// (FNV-1a over the field bit patterns). Changing any parameter or the seed
/// changes the fingerprint.
[[nodiscard]] std::uint64_t corpus_fingerprint(const BuildConfig& config);

/// Cache file name for `config` under `dir` (versioned, fingerprint-keyed).
[[nodiscard]] std::filesystem::path corpus_cache_path(
    const std::filesystem::path& dir, const BuildConfig& config);

/// Serialize `result` for `config` to `path` (parent directories created).
/// Returns false (leaving no partial file behind) on I/O failure.
bool save_corpus(const std::filesystem::path& path, const BuildConfig& config,
                 const BuildResult& result);

/// Load a cached corpus. Returns nullopt when the file is missing, has the
/// wrong magic/version, or was written for a different fingerprint.
[[nodiscard]] std::optional<BuildResult> load_corpus(
    const std::filesystem::path& path, const BuildConfig& config);

/// build_corpus with a disk cache: reload when a valid cache file for this
/// exact config exists in `dir`, otherwise build and write it. `cache_hit`
/// (optional) reports which path was taken.
[[nodiscard]] BuildResult load_or_build_corpus(const BuildConfig& config,
                                               const std::filesystem::path& dir,
                                               bool* cache_hit = nullptr);

}  // namespace dynriver::eval
