#include "meso/baselines.hpp"

#include <algorithm>
#include <limits>

#include "common/contracts.hpp"

namespace dynriver::meso {

KnnClassifier::KnnClassifier(std::size_t k) : k_(k) { DR_EXPECTS(k >= 1); }

void KnnClassifier::train(std::span<const float> features, Label label) {
  DR_EXPECTS(!features.empty());
  if (!patterns_.empty()) {
    DR_EXPECTS(features.size() == patterns_.front().features.size());
  }
  patterns_.push_back(Pattern{FeatureVec(features.begin(), features.end()), label});
}

Label KnnClassifier::classify(std::span<const float> features) const {
  if (patterns_.empty()) return -1;

  // Max-heap of the k best (distance, label) pairs.
  std::vector<std::pair<double, Label>> best;
  best.reserve(k_ + 1);
  for (const auto& p : patterns_) {
    const double cutoff = best.size() == k_
                              ? best.front().first
                              : std::numeric_limits<double>::infinity();
    const double d = squared_distance_bounded(p.features, features, cutoff);
    if (best.size() == k_ && d >= cutoff) continue;
    best.emplace_back(d, p.label);
    std::push_heap(best.begin(), best.end());
    if (best.size() > k_) {
      std::pop_heap(best.begin(), best.end());
      best.pop_back();
    }
  }

  std::map<Label, std::size_t> votes;
  for (const auto& [d, label] : best) ++votes[label];
  Label winner = best.front().second;
  std::size_t most = 0;
  for (const auto& [label, count] : votes) {
    if (count > most) {
      most = count;
      winner = label;
    }
  }
  return winner;
}

void KnnClassifier::reset() { patterns_.clear(); }

void CentroidClassifier::train(std::span<const float> features, Label label) {
  DR_EXPECTS(!features.empty());
  auto& state = classes_[label];
  if (state.mean.empty()) {
    state.mean.assign(features.begin(), features.end());
    state.count = 1;
  } else {
    DR_EXPECTS(features.size() == state.mean.size());
    ++state.count;
    const auto n = static_cast<float>(state.count);
    for (std::size_t i = 0; i < state.mean.size(); ++i) {
      state.mean[i] += (features[i] - state.mean[i]) / n;
    }
  }
  ++count_;
}

Label CentroidClassifier::classify(std::span<const float> features) const {
  if (classes_.empty()) return -1;
  Label best_label = classes_.begin()->first;
  double best_d = std::numeric_limits<double>::infinity();
  for (const auto& [label, state] : classes_) {
    const double d = squared_distance_bounded(state.mean, features, best_d);
    if (d < best_d) {
      best_d = d;
      best_label = label;
    }
  }
  return best_label;
}

void CentroidClassifier::reset() {
  classes_.clear();
  count_ = 0;
}

}  // namespace dynriver::meso
