// Shared types for the MESO perceptual memory system.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dynriver::meso {

using FeatureVec = std::vector<float>;
using Label = std::int32_t;

/// A labelled training pattern.
struct Pattern {
  FeatureVec features;
  Label label = -1;
};

/// Squared Euclidean distance.
[[nodiscard]] double squared_distance(std::span<const float> a,
                                      std::span<const float> b);

/// Squared Euclidean distance with early abandonment: returns a value
/// >= cutoff as soon as the partial sum crosses `cutoff`.
[[nodiscard]] double squared_distance_bounded(std::span<const float> a,
                                              std::span<const float> b,
                                              double cutoff);

/// Abstract incremental classifier, shared by MESO and the baselines so the
/// evaluation protocols (leave-one-out, resubstitution) are generic.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Incrementally learn one labelled pattern.
  virtual void train(std::span<const float> features, Label label) = 0;

  /// Predict the label of an unlabelled pattern (-1 when untrained).
  [[nodiscard]] virtual Label classify(std::span<const float> features) const = 0;

  /// Forget everything.
  virtual void reset() = 0;

  [[nodiscard]] virtual std::size_t pattern_count() const = 0;
};

}  // namespace dynriver::meso
