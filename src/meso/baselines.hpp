// Baseline classifiers for the MESO ablation benches.
//
// The MESO TKDE paper compares against standard classifiers; we provide a
// k-nearest-neighbour linear scan (exact, the accuracy ceiling for
// memory-based methods) and a per-class centroid classifier (the speed
// floor) so bench_ablation_meso can reproduce the accuracy/time trade-off.
#pragma once

#include <map>

#include "meso/types.hpp"

namespace dynriver::meso {

/// Exact k-NN with majority vote over the k nearest training patterns.
class KnnClassifier final : public Classifier {
 public:
  explicit KnnClassifier(std::size_t k = 1);

  void train(std::span<const float> features, Label label) override;
  [[nodiscard]] Label classify(std::span<const float> features) const override;
  void reset() override;
  [[nodiscard]] std::size_t pattern_count() const override {
    return patterns_.size();
  }

 private:
  std::size_t k_;
  std::vector<Pattern> patterns_;
};

/// Nearest per-class mean.
class CentroidClassifier final : public Classifier {
 public:
  void train(std::span<const float> features, Label label) override;
  [[nodiscard]] Label classify(std::span<const float> features) const override;
  void reset() override;
  [[nodiscard]] std::size_t pattern_count() const override { return count_; }

 private:
  struct ClassState {
    FeatureVec mean;
    std::size_t count = 0;
  };
  std::map<Label, ClassState> classes_;
  std::size_t count_ = 0;
};

}  // namespace dynriver::meso
