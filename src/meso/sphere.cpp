#include "meso/sphere.hpp"

#include "common/contracts.hpp"

namespace dynriver::meso {

double squared_distance(std::span<const float> a, std::span<const float> b) {
  DR_EXPECTS(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += d * d;
  }
  return acc;
}

double squared_distance_bounded(std::span<const float> a, std::span<const float> b,
                                double cutoff) {
  DR_EXPECTS(a.size() == b.size());
  double acc = 0.0;
  // Check the abandon condition in blocks: per-element checks cost more than
  // they save on typical feature sizes (105/1050 floats).
  constexpr std::size_t kBlock = 16;
  std::size_t i = 0;
  while (i < a.size()) {
    const std::size_t end = std::min(i + kBlock, a.size());
    for (; i < end; ++i) {
      const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
      acc += d * d;
    }
    if (acc >= cutoff) return acc;
  }
  return acc;
}

SensitivitySphere::SensitivitySphere(std::span<const float> center, Label label,
                                     std::size_t pattern_index)
    : center_(center.begin(), center.end()) {
  members_.push_back(pattern_index);
  label_counts_[label] = 1;
}

void SensitivitySphere::absorb(std::span<const float> features, Label label,
                               std::size_t pattern_index) {
  DR_EXPECTS(features.size() == center_.size());
  members_.push_back(pattern_index);
  ++label_counts_[label];
  // Running mean: c += (x - c) / n.
  const auto n = static_cast<float>(members_.size());
  for (std::size_t i = 0; i < center_.size(); ++i) {
    center_[i] += (features[i] - center_[i]) / n;
  }
}

Label SensitivitySphere::majority_label() const {
  DR_ASSERT(!label_counts_.empty());
  Label best_label = label_counts_.begin()->first;
  std::uint32_t best_count = 0;
  for (const auto& [label, count] : label_counts_) {
    if (count > best_count) {
      best_count = count;
      best_label = label;
    }
  }
  return best_label;
}

}  // namespace dynriver::meso
