#include "meso/tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/contracts.hpp"

namespace dynriver::meso {

SphereTree::SphereTree(const std::vector<SensitivitySphere>& spheres,
                       std::size_t leaf_size) {
  DR_EXPECTS(leaf_size >= 1);
  if (spheres.empty()) return;
  std::vector<std::size_t> ids(spheres.size());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  root_ = build(spheres, std::move(ids), leaf_size);
}

std::unique_ptr<SphereTree::Node> SphereTree::build(
    const std::vector<SensitivitySphere>& spheres, std::vector<std::size_t> ids,
    std::size_t leaf_size) {
  auto node = std::make_unique<Node>();
  ++node_count_;

  // Node center = mean of member sphere centers.
  const std::size_t dim = spheres[ids.front()].center().size();
  node->center.assign(dim, 0.0F);
  for (const std::size_t id : ids) {
    const auto c = spheres[id].center();
    for (std::size_t d = 0; d < dim; ++d) node->center[d] += c[d];
  }
  const auto inv = 1.0F / static_cast<float>(ids.size());
  for (auto& v : node->center) v *= inv;

  for (const std::size_t id : ids) {
    node->radius = std::max(
        node->radius,
        std::sqrt(squared_distance(node->center, spheres[id].center())));
  }

  if (ids.size() <= leaf_size) {
    node->sphere_ids = std::move(ids);
    return node;
  }

  // Approximate farthest pair: start anywhere, walk to the farthest twice.
  std::size_t seed_a = ids.front();
  for (int iter = 0; iter < 2; ++iter) {
    double best = -1.0;
    std::size_t far = seed_a;
    for (const std::size_t id : ids) {
      const double d =
          squared_distance(spheres[seed_a].center(), spheres[id].center());
      if (d > best) {
        best = d;
        far = id;
      }
    }
    seed_a = far;
  }
  double best = -1.0;
  std::size_t seed_b = seed_a;
  for (const std::size_t id : ids) {
    const double d =
        squared_distance(spheres[seed_a].center(), spheres[id].center());
    if (d > best) {
      best = d;
      seed_b = id;
    }
  }

  std::vector<std::size_t> left_ids;
  std::vector<std::size_t> right_ids;
  for (const std::size_t id : ids) {
    const double da = squared_distance(spheres[seed_a].center(), spheres[id].center());
    const double db = squared_distance(spheres[seed_b].center(), spheres[id].center());
    (da <= db ? left_ids : right_ids).push_back(id);
  }
  // Degenerate split (all centers identical): stop dividing.
  if (left_ids.empty() || right_ids.empty()) {
    node->sphere_ids = std::move(ids);
    return node;
  }

  node->left = build(spheres, std::move(left_ids), leaf_size);
  node->right = build(spheres, std::move(right_ids), leaf_size);
  return node;
}

SphereTree::Result SphereTree::nearest(
    const std::vector<SensitivitySphere>& spheres,
    std::span<const float> query) const {
  DR_EXPECTS(root_ != nullptr);
  Result result;
  result.squared_dist = std::numeric_limits<double>::infinity();

  // Best-first search: priority queue keyed by the ball lower bound.
  struct Entry {
    double lower_bound;
    const Node* node;
    bool operator>(const Entry& other) const {
      return lower_bound > other.lower_bound;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> frontier;

  const auto lower_bound_of = [&](const Node& node) {
    const double d = std::sqrt(squared_distance(node.center, query));
    const double lb = d - node.radius;
    return lb > 0.0 ? lb * lb : 0.0;
  };

  frontier.push({lower_bound_of(*root_), root_.get()});
  while (!frontier.empty()) {
    const Entry entry = frontier.top();
    frontier.pop();
    if (entry.lower_bound >= result.squared_dist) break;  // exact cutoff
    ++result.nodes_visited;

    const Node& node = *entry.node;
    if (node.is_leaf()) {
      for (const std::size_t id : node.sphere_ids) {
        const double d = squared_distance_bounded(spheres[id].center(), query,
                                                  result.squared_dist);
        if (d < result.squared_dist) {
          result.squared_dist = d;
          result.sphere_index = id;
        }
      }
      continue;
    }
    frontier.push({lower_bound_of(*node.left), node.left.get()});
    frontier.push({lower_bound_of(*node.right), node.right.get()});
  }
  return result;
}

std::size_t SphereTree::depth_of(const Node& node) {
  if (node.is_leaf()) return 1;
  return 1 + std::max(depth_of(*node.left), depth_of(*node.right));
}

std::size_t SphereTree::depth() const {
  return root_ ? depth_of(*root_) : 0;
}

}  // namespace dynriver::meso
