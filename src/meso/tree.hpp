// Agglomerative sphere tree: MESO's hierarchical organization of sensitivity
// spheres for sub-linear nearest-sphere queries.
//
// The tree groups sphere centers recursively (binary splits seeded by an
// approximate farthest pair). Queries run best-first with a ball-bound
// (dist(q, node center) - node radius), which makes the search exact: it
// always returns the same sphere as a linear scan, verified by tests.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "meso/sphere.hpp"

namespace dynriver::meso {

class SphereTree {
 public:
  /// Build over the given sphere set (indices into `spheres`).
  SphereTree(const std::vector<SensitivitySphere>& spheres, std::size_t leaf_size);

  /// Index of the sphere whose center is nearest to `query`, plus the
  /// squared distance. `spheres` must be the same vector the tree was built
  /// over (same order, possibly with centers unchanged).
  struct Result {
    std::size_t sphere_index = 0;
    double squared_dist = 0.0;
    std::size_t nodes_visited = 0;  ///< search effort, for benches
  };
  [[nodiscard]] Result nearest(const std::vector<SensitivitySphere>& spheres,
                               std::span<const float> query) const;

  [[nodiscard]] std::size_t node_count() const { return node_count_; }
  [[nodiscard]] std::size_t depth() const;

 private:
  struct Node {
    FeatureVec center;
    double radius = 0.0;  // max distance from node center to any sphere center
    std::vector<std::size_t> sphere_ids;  // non-empty only at leaves
    std::unique_ptr<Node> left;
    std::unique_ptr<Node> right;

    [[nodiscard]] bool is_leaf() const { return !left && !right; }
  };

  std::unique_ptr<Node> build(const std::vector<SensitivitySphere>& spheres,
                              std::vector<std::size_t> ids, std::size_t leaf_size);
  static std::size_t depth_of(const Node& node);

  std::unique_ptr<Node> root_;
  std::size_t node_count_ = 0;
};

}  // namespace dynriver::meso
