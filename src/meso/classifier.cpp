#include "meso/classifier.hpp"

#include <cmath>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>

#include "common/contracts.hpp"

namespace dynriver::meso {

void MesoParams::validate() const {
  DR_EXPECTS(initial_delta_scale > 0.0);
  DR_EXPECTS(grow_rate >= 0.0 && grow_rate < 1.0);
  DR_EXPECTS(shrink_rate >= 0.0 && shrink_rate < 1.0);
  DR_EXPECTS(tree_leaf_size >= 1);
  DR_EXPECTS(query_spill >= 1.0);
}

MesoClassifier::MesoClassifier(MesoParams params) : params_(params) {
  params_.validate();
}

std::pair<std::size_t, double> MesoClassifier::nearest_sphere_linear(
    std::span<const float> features) const {
  DR_ASSERT(!spheres_.empty());
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < spheres_.size(); ++i) {
    const double d =
        squared_distance_bounded(spheres_[i].center(), features, best_d);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return {best, best_d};
}

void MesoClassifier::train(std::span<const float> features, Label label) {
  DR_EXPECTS(!features.empty());
  if (!patterns_.empty()) {
    DR_EXPECTS(features.size() == patterns_.front().features.size());
  }

  const std::size_t pattern_index = patterns_.size();
  patterns_.push_back(Pattern{FeatureVec(features.begin(), features.end()), label});

  if (spheres_.empty()) {
    spheres_.emplace_back(features, label, pattern_index);
    return;
  }

  const auto [nearest, d2] = nearest_sphere_linear(features);
  const double dist = std::sqrt(d2);

  // Delta bootstraps from the first non-zero nearest-neighbour distance.
  if (delta_ == 0.0 && dist > 0.0) {
    delta_ = dist * params_.initial_delta_scale;
  }

  if (dist <= delta_) {
    const Label sphere_label = spheres_[nearest].majority_label();
    spheres_[nearest].absorb(features, label, pattern_index);
    if (label != sphere_label) {
      // Impure absorption: tighten future spheres.
      delta_ *= (1.0 - params_.shrink_rate);
    }
  } else {
    const Label nearest_label = spheres_[nearest].majority_label();
    spheres_.emplace_back(features, label, pattern_index);
    if (label == nearest_label) {
      // Same class landed outside every sphere: generalize a little.
      delta_ *= (1.0 + params_.grow_rate);
    }
  }
}

void MesoClassifier::ensure_tree() const {
  if (!tree_ || tree_built_for_ != spheres_.size()) {
    tree_.emplace(spheres_, params_.tree_leaf_size);
    tree_built_for_ = spheres_.size();
  }
}

MesoClassifier::QueryResult MesoClassifier::query(
    std::span<const float> features) const {
  QueryResult result;
  if (spheres_.empty()) return result;
  DR_EXPECTS(features.size() == patterns_.front().features.size());

  ensure_tree();
  const auto found = tree_->nearest(spheres_, features);
  result.sphere_index = found.sphere_index;

  if (!params_.nearest_pattern_query) {
    result.label = spheres_[found.sphere_index].majority_label();
    result.distance = std::sqrt(found.squared_dist);
    return result;
  }

  // Search member patterns of the nearest sphere, plus spheres whose center
  // distance is within query_spill of the best (boundary robustness).
  const double spill_limit =
      found.squared_dist * params_.query_spill * params_.query_spill;
  double best_d = std::numeric_limits<double>::infinity();
  Label best_label = spheres_[found.sphere_index].majority_label();

  for (std::size_t s = 0; s < spheres_.size(); ++s) {
    if (s != found.sphere_index) {
      const double center_d =
          squared_distance_bounded(spheres_[s].center(), features, spill_limit);
      if (center_d > spill_limit) continue;
    }
    for (const std::size_t pi : spheres_[s].members()) {
      const double d =
          squared_distance_bounded(patterns_[pi].features, features, best_d);
      if (d < best_d) {
        best_d = d;
        best_label = patterns_[pi].label;
      }
    }
  }
  result.label = best_label;
  result.distance = std::isfinite(best_d) ? std::sqrt(best_d) : 0.0;
  return result;
}

Label MesoClassifier::classify(std::span<const float> features) const {
  if (spheres_.empty()) return -1;
  return query(features).label;
}

void MesoClassifier::reset() {
  patterns_.clear();
  spheres_.clear();
  delta_ = 0.0;
  tree_.reset();
  tree_built_for_ = 0;
}

MesoStats MesoClassifier::stats() const {
  MesoStats s;
  s.spheres = spheres_.size();
  s.patterns = patterns_.size();
  s.delta = delta_;
  if (!spheres_.empty()) {
    ensure_tree();
    s.tree_nodes = tree_->node_count();
    s.tree_depth = tree_->depth();
    std::size_t pure_patterns = 0;
    for (const auto& sphere : spheres_) {
      if (sphere.pure()) pure_patterns += sphere.size();
    }
    s.mean_sphere_size =
        static_cast<double>(patterns_.size()) / static_cast<double>(spheres_.size());
    s.purity = patterns_.empty()
                   ? 0.0
                   : static_cast<double>(pure_patterns) /
                         static_cast<double>(patterns_.size());
  }
  return s;
}

namespace {
template <typename T>
void put(std::ostream& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T get(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value;
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("truncated MESO snapshot");
  return value;
}

constexpr std::uint32_t kSnapshotMagic = 0x4D45534F;  // "MESO"
}  // namespace

void MesoClassifier::save(std::ostream& out) const {
  put<std::uint32_t>(out, kSnapshotMagic);
  put<double>(out, params_.initial_delta_scale);
  put<double>(out, params_.grow_rate);
  put<double>(out, params_.shrink_rate);
  put<std::uint64_t>(out, params_.tree_leaf_size);
  put<std::uint8_t>(out, params_.nearest_pattern_query ? 1 : 0);
  put<double>(out, params_.query_spill);
  put<double>(out, delta_);

  put<std::uint64_t>(out, patterns_.size());
  const std::uint64_t dim =
      patterns_.empty() ? 0 : patterns_.front().features.size();
  put<std::uint64_t>(out, dim);
  for (const auto& p : patterns_) {
    put<std::int32_t>(out, p.label);
    out.write(reinterpret_cast<const char*>(p.features.data()),
              static_cast<std::streamsize>(dim * sizeof(float)));
  }
  // Spheres are reconstructed from membership on load.
  put<std::uint64_t>(out, spheres_.size());
  for (const auto& s : spheres_) {
    put<std::uint64_t>(out, s.members().size());
    for (const std::size_t m : s.members()) put<std::uint64_t>(out, m);
  }
}

MesoClassifier MesoClassifier::load(std::istream& in) {
  if (get<std::uint32_t>(in) != kSnapshotMagic) {
    throw std::runtime_error("not a MESO snapshot");
  }
  MesoParams params;
  params.initial_delta_scale = get<double>(in);
  params.grow_rate = get<double>(in);
  params.shrink_rate = get<double>(in);
  params.tree_leaf_size = static_cast<std::size_t>(get<std::uint64_t>(in));
  params.nearest_pattern_query = get<std::uint8_t>(in) != 0;
  params.query_spill = get<double>(in);

  MesoClassifier clf(params);
  clf.delta_ = get<double>(in);

  const auto n_patterns = get<std::uint64_t>(in);
  const auto dim = get<std::uint64_t>(in);
  clf.patterns_.reserve(n_patterns);
  for (std::uint64_t i = 0; i < n_patterns; ++i) {
    Pattern p;
    p.label = get<std::int32_t>(in);
    p.features.resize(dim);
    in.read(reinterpret_cast<char*>(p.features.data()),
            static_cast<std::streamsize>(dim * sizeof(float)));
    if (!in) throw std::runtime_error("truncated MESO snapshot");
    clf.patterns_.push_back(std::move(p));
  }

  const auto n_spheres = get<std::uint64_t>(in);
  clf.spheres_.reserve(n_spheres);
  for (std::uint64_t s = 0; s < n_spheres; ++s) {
    const auto n_members = get<std::uint64_t>(in);
    DR_ASSERT(n_members >= 1);
    std::optional<SensitivitySphere> sphere;
    for (std::uint64_t m = 0; m < n_members; ++m) {
      const auto pi = static_cast<std::size_t>(get<std::uint64_t>(in));
      DR_ASSERT(pi < clf.patterns_.size());
      const auto& pattern = clf.patterns_[pi];
      if (!sphere) {
        sphere.emplace(pattern.features, pattern.label, pi);
      } else {
        sphere->absorb(pattern.features, pattern.label, pi);
      }
    }
    clf.spheres_.push_back(std::move(*sphere));
  }
  return clf;
}

}  // namespace dynriver::meso
