// MESO: a perceptual memory system supporting online, incremental learning
// (Kasten & McKinley, TKDE 2007; used by the paper for all classification
// and detection experiments).
//
// MESO is based on the leader-follower algorithm: each training pattern is
// absorbed by the nearest sensitivity sphere if it falls within the sphere
// radius delta, otherwise it seeds a new sphere. Delta adapts during
// training: it shrinks when spheres start mixing labels and grows when
// same-label patterns keep landing just outside existing spheres. Queries
// find the nearest sphere (via the agglomerative sphere tree) and return the
// label of the most similar training pattern inside it, or the sphere's
// majority label.
#pragma once

#include <iosfwd>
#include <optional>

#include "meso/sphere.hpp"
#include "meso/tree.hpp"
#include "meso/types.hpp"

namespace dynriver::meso {

struct MesoParams {
  /// Delta is initialized to (first non-zero nearest-neighbour distance)
  /// times this scale.
  double initial_delta_scale = 0.5;
  /// Multiplicative growth when a same-label pattern misses every sphere.
  double grow_rate = 0.05;
  /// Multiplicative shrink when a pattern of a different label lands inside
  /// an existing sphere (sphere impurity pressure).
  double shrink_rate = 0.10;
  /// Leaf capacity of the agglomerative sphere tree.
  std::size_t tree_leaf_size = 8;
  /// Answer queries from the nearest member pattern of the nearest sphere
  /// (true) or from the sphere's majority label (false).
  bool nearest_pattern_query = true;
  /// Also search the member patterns of sibling spheres whose centers are
  /// within this factor of the nearest sphere distance (robustness against
  /// sphere-boundary effects). 1.0 searches only the nearest sphere.
  double query_spill = 1.25;

  void validate() const;
};

/// Classification statistics exposed for the benches.
struct MesoStats {
  std::size_t spheres = 0;
  std::size_t patterns = 0;
  double delta = 0.0;
  std::size_t tree_nodes = 0;
  std::size_t tree_depth = 0;
  double mean_sphere_size = 0.0;
  double purity = 0.0;  ///< fraction of patterns in single-label spheres
};

class MesoClassifier final : public Classifier {
 public:
  explicit MesoClassifier(MesoParams params = {});

  void train(std::span<const float> features, Label label) override;
  [[nodiscard]] Label classify(std::span<const float> features) const override;
  void reset() override;
  [[nodiscard]] std::size_t pattern_count() const override {
    return patterns_.size();
  }

  struct QueryResult {
    Label label = -1;
    double distance = 0.0;       ///< Euclidean distance to the deciding pattern
    std::size_t sphere_index = 0;
  };
  [[nodiscard]] QueryResult query(std::span<const float> features) const;

  [[nodiscard]] double delta() const { return delta_; }
  [[nodiscard]] std::size_t sphere_count() const { return spheres_.size(); }
  [[nodiscard]] const std::vector<SensitivitySphere>& spheres() const {
    return spheres_;
  }
  [[nodiscard]] MesoStats stats() const;

  /// Binary serialization of the full trained state.
  void save(std::ostream& out) const;
  static MesoClassifier load(std::istream& in);

 private:
  /// Linear nearest-sphere scan used during training (centers move, so the
  /// tree is only maintained for queries).
  [[nodiscard]] std::pair<std::size_t, double> nearest_sphere_linear(
      std::span<const float> features) const;

  void ensure_tree() const;

  MesoParams params_;
  std::vector<Pattern> patterns_;
  std::vector<SensitivitySphere> spheres_;
  double delta_ = 0.0;  // squared radius not stored; delta is a distance

  // Query index, rebuilt lazily after training mutates the sphere set.
  mutable std::optional<SphereTree> tree_;
  mutable std::size_t tree_built_for_ = 0;  // sphere count at build time
};

}  // namespace dynriver::meso
