// Sensitivity spheres: MESO's unit of perceptual organization.
//
// "A novel feature of MESO is its use of small agglomerative clusters, called
// sensitivity spheres, that aggregate similar training patterns" (paper,
// Section 2; Kasten & McKinley, TKDE 2007). A sphere keeps a running mean
// center, the indices of its member patterns, and a per-label histogram so a
// query can be answered either from the sphere's majority label or from its
// most similar member pattern.
#pragma once

#include <map>
#include <span>

#include "meso/types.hpp"

namespace dynriver::meso {

class SensitivitySphere {
 public:
  /// Create a sphere seeded at a pattern.
  SensitivitySphere(std::span<const float> center, Label label,
                    std::size_t pattern_index);

  /// Absorb a pattern: update the running mean center, member list and
  /// label histogram.
  void absorb(std::span<const float> features, Label label,
              std::size_t pattern_index);

  [[nodiscard]] std::span<const float> center() const { return center_; }
  [[nodiscard]] std::size_t size() const { return members_.size(); }
  [[nodiscard]] const std::vector<std::size_t>& members() const { return members_; }
  [[nodiscard]] const std::map<Label, std::uint32_t>& label_counts() const {
    return label_counts_;
  }

  /// Most frequent label (smallest label wins ties, deterministically).
  [[nodiscard]] Label majority_label() const;

  /// True iff all members share one label.
  [[nodiscard]] bool pure() const { return label_counts_.size() == 1; }

 private:
  FeatureVec center_;
  std::vector<std::size_t> members_;
  std::map<Label, std::uint32_t> label_counts_;
};

}  // namespace dynriver::meso
