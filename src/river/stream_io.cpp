#include "river/stream_io.hpp"

#include "common/contracts.hpp"

namespace dynriver::river {

StreamOut::StreamOut(std::shared_ptr<RecordChannel> channel)
    : channel_(std::move(channel)) {
  DR_EXPECTS(channel_ != nullptr);
}

void StreamOut::process(Record rec, Emitter& out) {
  (void)out;  // terminal: records leave the segment through the channel
  if (!channel_->send(std::move(rec))) ++dropped_;
}

void StreamOut::flush(Emitter& out) {
  (void)out;
  channel_->close();
}

namespace {

StreamInResult stream_in_impl(RecordChannel& channel, Pipeline* pipeline,
                              Emitter& sink) {
  StreamInResult result;
  ScopeTracker tracker;

  const auto deliver = [&](Record rec) {
    if (pipeline != nullptr) {
      pipeline->push(std::move(rec), sink);
    } else {
      sink.emit(std::move(rec));
    }
  };

  Record rec;
  while (true) {
    const RecvStatus status = channel.recv(rec);
    if (status == RecvStatus::kRecord) {
      tracker.observe(rec);  // throws ScopeError on malformed streams
      ++result.records_in;
      deliver(std::move(rec));
      continue;
    }

    result.clean = (status == RecvStatus::kClosed) && !tracker.any_open();
    // Both an abnormal disconnect and a clean close with dangling scopes
    // require forced closure so downstream state stays consistent.
    for (auto& close_rec : tracker.force_close_all()) {
      ++result.bad_closes_emitted;
      deliver(std::move(close_rec));
    }
    if (pipeline != nullptr) pipeline->finish(sink);
    return result;
  }
}

}  // namespace

StreamInResult stream_in(RecordChannel& channel, Pipeline& pipeline, Emitter& sink) {
  return stream_in_impl(channel, &pipeline, sink);
}

StreamInResult stream_in(RecordChannel& channel, Emitter& sink) {
  return stream_in_impl(channel, nullptr, sink);
}

}  // namespace dynriver::river
