// Dynamic pipeline recomposition.
//
// "Pipelines can be recomposed dynamically by moving segments among hosts"
// (paper, Section 2). VirtualHost models a networked host as an execution
// site with its own worker threads and per-host accounting; PipelineManager
// deploys segments onto hosts and relocates them at runtime. Relocation
// waits for the segment to pause at a top-level scope boundary, then resumes
// it on the target host with all operator state intact.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"
#include "river/segment.hpp"

namespace dynriver::river {

/// An execution site for pipeline segments (simulated host).
class VirtualHost {
 public:
  explicit VirtualHost(std::string name) : name_(std::move(name)) {}
  VirtualHost(const VirtualHost&) = delete;
  VirtualHost& operator=(const VirtualHost&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Total records processed by segments while deployed on this host.
  [[nodiscard]] std::size_t records_processed() const {
    const common::LockGuard lock(mu_);
    return records_processed_;
  }

  [[nodiscard]] std::size_t epochs_run() const {
    const common::LockGuard lock(mu_);
    return epochs_run_;
  }

  void account(const SegmentRunStats& stats) {
    const common::LockGuard lock(mu_);
    records_processed_ += stats.records_in;
    ++epochs_run_;
  }

 private:
  std::string name_;
  mutable common::Mutex mu_;
  std::size_t records_processed_ DR_GUARDED_BY(mu_) = 0;
  std::size_t epochs_run_ DR_GUARDED_BY(mu_) = 0;
};

/// Deploys segments onto virtual hosts and supports live relocation.
class PipelineManager {
 public:
  PipelineManager() = default;
  ~PipelineManager();
  PipelineManager(const PipelineManager&) = delete;
  PipelineManager& operator=(const PipelineManager&) = delete;

  /// Register a host. Returns a stable reference.
  VirtualHost& add_host(std::string name);

  [[nodiscard]] VirtualHost& host(const std::string& name);

  /// Deploy a segment on a host and start executing it.
  void deploy(std::unique_ptr<Segment> segment, const std::string& host_name);

  /// Move a running segment to another host. Blocks until the segment has
  /// paused at a scope boundary and resumed on the target. Returns false if
  /// the segment already finished.
  bool relocate(const std::string& segment_name, const std::string& host_name);

  /// Wait for every segment to reach end-of-stream. Returns per-segment
  /// final stats keyed by segment name.
  std::map<std::string, SegmentRunStats> wait_all();

  /// Host currently executing a segment ("" if finished).
  [[nodiscard]] std::string location_of(const std::string& segment_name) const;

 private:
  struct Deployment {
    std::unique_ptr<Segment> segment;
    VirtualHost* host = nullptr;
    std::thread worker;
    SegmentRunStats last_stats;
    bool finished = false;
    bool paused = false;
  };

  void run_epoch_locked(Deployment& dep) DR_REQUIRES(mu_);

  mutable common::Mutex mu_;
  common::CondVar cv_;
  std::map<std::string, std::unique_ptr<VirtualHost>> hosts_
      DR_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Deployment>> deployments_
      DR_GUARDED_BY(mu_);
};

}  // namespace dynriver::river
