// streamin / streamout: the operators that connect pipeline segments across
// hosts (paper, Section 2).
//
// StreamOut is a regular operator that forwards records into a RecordChannel.
// StreamIn is a *driver*: it pulls records from a channel and pushes them into
// a local pipeline, tracking scopes so that when the upstream terminates
// unexpectedly it can generate BadCloseScope records to close all open scopes
// and keep downstream processing consistent.
#pragma once

#include <memory>

#include "river/channel.hpp"
#include "river/operator.hpp"
#include "river/pipeline.hpp"
#include "river/scope.hpp"

namespace dynriver::river {

/// Terminal operator that writes records into a channel.
class StreamOut final : public Operator {
 public:
  explicit StreamOut(std::shared_ptr<RecordChannel> channel);

  void process(Record rec, Emitter& out) override;
  void flush(Emitter& out) override;
  [[nodiscard]] std::string_view name() const override { return "streamout"; }

  /// Number of records the channel refused (peer gone).
  [[nodiscard]] std::size_t dropped() const { return dropped_; }

 private:
  std::shared_ptr<RecordChannel> channel_;
  std::size_t dropped_ = 0;
};

/// Outcome of a StreamIn run.
struct StreamInResult {
  std::size_t records_in = 0;        ///< records received from the channel
  std::size_t bad_closes_emitted = 0;  ///< synthesized BadCloseScope records
  bool clean = false;                ///< true iff upstream closed cleanly
};

/// Pulls records from `channel`, pushes them through `pipeline` into `sink`,
/// and enforces the scope grammar. On abnormal upstream termination (or a
/// clean close that still leaves scopes open) it synthesizes BadCloseScope
/// records for every open scope. Returns when the stream ends either way.
StreamInResult stream_in(RecordChannel& channel, Pipeline& pipeline, Emitter& sink);

/// Variant without a processing pipeline: records go straight to the sink.
StreamInResult stream_in(RecordChannel& channel, Emitter& sink);

}  // namespace dynriver::river
