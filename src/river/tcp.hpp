// Minimal RAII TCP transport for cross-host pipeline segments.
//
// streamin/streamout use these primitives to carry wire-encoded records over
// real sockets. Only what the pipeline needs is wrapped: listen/accept,
// connect, full-buffer send, and a record-oriented receive loop.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "river/channel.hpp"
#include "river/record.hpp"
#include "river/wire.hpp"

namespace dynriver::river {

class TcpError : public std::runtime_error {
 public:
  explicit TcpError(const std::string& what) : std::runtime_error(what) {}
};

/// RAII file-descriptor owner.
class FdHandle {
 public:
  FdHandle() = default;
  explicit FdHandle(int fd) : fd_(fd) {}
  ~FdHandle();

  FdHandle(const FdHandle&) = delete;
  FdHandle& operator=(const FdHandle&) = delete;
  FdHandle(FdHandle&& other) noexcept;
  FdHandle& operator=(FdHandle&& other) noexcept;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  void reset();

 private:
  int fd_ = -1;
};

/// A connected TCP byte stream.
class TcpStream {
 public:
  explicit TcpStream(FdHandle fd) : fd_(std::move(fd)) {}

  /// Connect to host:port (blocking). Throws TcpError on failure.
  static TcpStream connect(const std::string& host, std::uint16_t port);

  /// Send the whole buffer; returns false if the peer is gone.
  bool send_all(const std::uint8_t* data, std::size_t len);

  /// Receive up to `len` bytes; returns bytes read, 0 on orderly shutdown,
  /// -1 on error/abnormal close.
  std::ptrdiff_t recv_some(std::uint8_t* data, std::size_t len);

  /// Hard-close the socket (simulates abnormal termination).
  void shutdown_now();

  [[nodiscard]] bool valid() const { return fd_.valid(); }

 private:
  FdHandle fd_;
};

/// Listening socket bound to 127.0.0.1:<port>; port 0 lets the OS choose.
class TcpListener {
 public:
  explicit TcpListener(std::uint16_t port = 0);

  /// Blocking accept. Throws TcpError on failure.
  [[nodiscard]] TcpStream accept();

  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Close the listening socket; a blocked accept() will fail.
  void close();

 private:
  FdHandle fd_;
  std::uint16_t port_ = 0;
};

/// RecordChannel over a TCP stream: send serializes frames, recv decodes
/// them incrementally. A clean close is signalled by a zero-length sentinel
/// frame so the receiver can distinguish clean EOS from a dead peer.
class TcpRecordChannel final : public RecordChannel {
 public:
  explicit TcpRecordChannel(TcpStream stream);

  bool send(Record rec) override;
  RecvStatus recv(Record& out) override;
  void close() override;
  void disconnect() override;

 private:
  TcpStream stream_;
  WireDecoder decoder_;
  bool saw_clean_close_ = false;
  bool send_closed_ = false;
};

/// The 8-byte end-of-stream sentinel (magic + all-ones length marker).
[[nodiscard]] const std::array<std::uint8_t, 8>& eos_sentinel();

}  // namespace dynriver::river
