#include "river/manager.hpp"

#include "common/contracts.hpp"

namespace dynriver::river {

PipelineManager::~PipelineManager() {
  common::UniqueLock lock(mu_);
  for (auto& [name, dep] : deployments_) {
    if (dep->worker.joinable()) {
      lock.unlock();
      dep->worker.join();
      lock.lock();
    }
  }
}

VirtualHost& PipelineManager::add_host(std::string name) {
  const common::LockGuard lock(mu_);
  auto [it, inserted] =
      hosts_.emplace(name, std::make_unique<VirtualHost>(name));
  DR_EXPECTS(inserted);
  return *it->second;
}

VirtualHost& PipelineManager::host(const std::string& name) {
  const common::LockGuard lock(mu_);
  const auto it = hosts_.find(name);
  DR_EXPECTS(it != hosts_.end());
  return *it->second;
}

void PipelineManager::run_epoch_locked(Deployment& dep) {
  // Caller holds the lock; start the worker thread for one epoch.
  Segment* segment = dep.segment.get();
  VirtualHost* site = dep.host;
  dep.paused = false;
  dep.worker = std::thread([this, segment, site, &dep] {
    const SegmentRunStats stats = segment->run();
    site->account(stats);
    {
      const common::LockGuard lk(mu_);
      dep.last_stats.records_in += stats.records_in;
      dep.last_stats.records_out += stats.records_out;
      dep.last_stats.bad_closes_emitted += stats.bad_closes_emitted;
      dep.last_stats.cause = stats.cause;
      if (stats.cause == SegmentStopCause::kPausedForRelocation) {
        dep.paused = true;
      } else {
        dep.finished = true;
      }
    }
    cv_.notify_all();
  });
}

void PipelineManager::deploy(std::unique_ptr<Segment> segment,
                             const std::string& host_name) {
  DR_EXPECTS(segment != nullptr);
  const common::LockGuard lock(mu_);
  const auto hit = hosts_.find(host_name);
  DR_EXPECTS(hit != hosts_.end());

  auto dep = std::make_unique<Deployment>();
  dep->segment = std::move(segment);
  dep->host = hit->second.get();
  const std::string name = dep->segment->name();
  auto [it, inserted] = deployments_.emplace(name, std::move(dep));
  DR_EXPECTS(inserted);
  run_epoch_locked(*it->second);
}

bool PipelineManager::relocate(const std::string& segment_name,
                               const std::string& host_name) {
  common::UniqueLock lock(mu_);
  const auto it = deployments_.find(segment_name);
  DR_EXPECTS(it != deployments_.end());
  const auto hit = hosts_.find(host_name);
  DR_EXPECTS(hit != hosts_.end());
  Deployment& dep = *it->second;
  if (dep.finished) return false;

  dep.segment->request_pause();
  while (!dep.paused && !dep.finished) cv_.wait(lock);
  if (dep.worker.joinable()) {
    lock.unlock();
    dep.worker.join();
    lock.lock();
  }
  if (dep.finished) return false;

  dep.segment->clear_pause();
  dep.host = hit->second.get();
  run_epoch_locked(dep);
  return true;
}

std::map<std::string, SegmentRunStats> PipelineManager::wait_all() {
  common::UniqueLock lock(mu_);
  for (auto& [name, dep] : deployments_) {
    while (!dep->finished) cv_.wait(lock);
    if (dep->worker.joinable()) {
      lock.unlock();
      dep->worker.join();
      lock.lock();
    }
  }
  std::map<std::string, SegmentRunStats> stats;
  for (auto& [name, dep] : deployments_) stats.emplace(name, dep->last_stats);
  return stats;
}

std::string PipelineManager::location_of(const std::string& segment_name) const {
  const common::LockGuard lock(mu_);
  const auto it = deployments_.find(segment_name);
  DR_EXPECTS(it != deployments_.end());
  if (it->second->finished) return "";
  return it->second->host->name();
}

}  // namespace dynriver::river
