#include "river/segment_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstring>
#include <map>
#include <optional>
#include <utility>

#include "common/checked.hpp"
#include "common/contracts.hpp"
#include "river/crc_slices.hpp"
#include "river/wire.hpp"

namespace dynriver::river {

namespace {

namespace fs = std::filesystem;
namespace checked = common::checked;

// -- fixed-layout encoding helpers -------------------------------------------

template <typename T>
void put_raw(std::uint8_t* dst, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::memcpy(dst, &value, sizeof(T));
}

template <typename T>
T get_raw(const std::uint8_t* src) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value;
  std::memcpy(&value, src, sizeof(T));
  return value;
}

std::string segment_name(std::uint64_t index) {
  std::array<char, 32> buf;
  std::snprintf(buf.data(), buf.size(), "seg-%06" PRIu64 ".drs", index);
  return buf.data();
}

bool parse_segment_name(const std::string& name, std::uint64_t& index) {
  constexpr std::string_view kPrefix = "seg-";
  constexpr std::string_view kSuffix = ".drs";
  if (name.size() <= kPrefix.size() + kSuffix.size()) return false;
  if (name.compare(0, kPrefix.size(), kPrefix) != 0) return false;
  if (name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) != 0) {
    return false;
  }
  index = 0;
  for (std::size_t i = kPrefix.size(); i < name.size() - kSuffix.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    index = index * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return true;
}

std::array<std::uint8_t, kSegmentHeaderBytes> segment_header_bytes() {
  std::array<std::uint8_t, kSegmentHeaderBytes> h{};
  put_raw<std::uint32_t>(h.data(), kSegmentMagic);
  put_raw<std::uint16_t>(h.data() + 4, kSegmentVersion);
  put_raw<std::uint16_t>(h.data() + 6, 0);  // flags
  return h;
}

/// Fixed-offset view of the 52-byte footer (see segment_store.hpp layout).
struct SegmentFooter {
  std::uint64_t frames = 0;
  std::uint64_t payload_end = 0;
  std::uint32_t index_count = 0;
  std::uint16_t version = 0;
  std::uint16_t flags = 0;
  double t_min = 0.0;
  double t_max = 0.0;
  std::uint32_t payload_crc = 0;
  std::uint32_t footer_crc = 0;
};

constexpr std::size_t kFooterCrcOffset = 44;
constexpr std::size_t kIndexEntryBytes = 16;

void encode_footer_prefix(std::uint8_t* dst, const SegmentFooter& f) {
  put_raw<std::uint64_t>(dst + 0, f.frames);
  put_raw<std::uint64_t>(dst + 8, f.payload_end);
  put_raw<std::uint32_t>(dst + 16, f.index_count);
  put_raw<std::uint16_t>(dst + 20, f.version);
  put_raw<std::uint16_t>(dst + 22, f.flags);
  put_raw<double>(dst + 24, f.t_min);
  put_raw<double>(dst + 32, f.t_max);
  put_raw<std::uint32_t>(dst + 40, f.payload_crc);
}

bool set_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

bool read_exact(std::ifstream& in, std::uint8_t* dst, std::size_t n) {
  in.read(reinterpret_cast<char*>(dst), static_cast<std::streamsize>(n));
  return std::cmp_equal(in.gcount(), n);
}

/// Parse and sanity-check the footer of a sealed segment file. Returns false
/// (with `error` filled) for anything that is not a well-formed sealed
/// segment — including a torn active segment, which has no footer.
bool load_segment_footer(const fs::path& path, SegmentFooter& out,
                         std::string* error) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec) return set_error(error, "cannot stat " + path.string());
  if (size < kSegmentHeaderBytes + kSegmentFooterBytes) {
    return set_error(error, path.string() + ": too small for a sealed segment");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return set_error(error, "cannot open " + path.string());
  std::array<std::uint8_t, kSegmentHeaderBytes> header;
  if (!read_exact(in, header.data(), header.size())) {
    return set_error(error, path.string() + ": short header read");
  }
  if (get_raw<std::uint32_t>(header.data()) != kSegmentMagic ||
      get_raw<std::uint16_t>(header.data() + 4) != kSegmentVersion) {
    return set_error(error, path.string() + ": bad segment header");
  }
  in.seekg(static_cast<std::streamoff>(size - kSegmentFooterBytes));
  std::array<std::uint8_t, kSegmentFooterBytes> raw;
  if (!read_exact(in, raw.data(), raw.size())) {
    return set_error(error, path.string() + ": short footer read");
  }
  if (get_raw<std::uint32_t>(raw.data() + 48) != kSegmentFooterMagic) {
    return set_error(error, path.string() + ": no footer magic (unsealed?)");
  }
  SegmentFooter f;
  f.frames = get_raw<std::uint64_t>(raw.data() + 0);
  f.payload_end = get_raw<std::uint64_t>(raw.data() + 8);
  f.index_count = get_raw<std::uint32_t>(raw.data() + 16);
  f.version = get_raw<std::uint16_t>(raw.data() + 20);
  f.flags = get_raw<std::uint16_t>(raw.data() + 22);
  f.t_min = get_raw<double>(raw.data() + 24);
  f.t_max = get_raw<double>(raw.data() + 32);
  f.payload_crc = get_raw<std::uint32_t>(raw.data() + 40);
  f.footer_crc = get_raw<std::uint32_t>(raw.data() + kFooterCrcOffset);
  if (f.version != kSegmentVersion) {
    return set_error(error, path.string() + ": unsupported segment version");
  }
  // The writer only ever stamps finite, ordered times (append enforces it),
  // so anything else is corruption; letting it through would poison the
  // recovered last-time watermark and the manifest's ordering invariants.
  if (!std::isfinite(f.t_min) || !std::isfinite(f.t_max) ||
      f.t_min > f.t_max) {
    return set_error(error, path.string() + ": footer time range invalid");
  }
  // index_count is u32, so `tail` tops out near 2^36 and cannot wrap; the
  // naive `payload_end + tail == size` sum could, letting a hostile
  // payload_end near 2^64 satisfy the equation and send later reads to
  // offsets far past the file.
  const std::uint64_t tail =
      std::uint64_t{f.index_count} * kIndexEntryBytes + kSegmentFooterBytes;
  if (f.payload_end < kSegmentHeaderBytes || tail > size ||
      f.payload_end != size - tail) {
    return set_error(error, path.string() + ": footer geometry mismatch");
  }
  out = f;
  return true;
}

/// Load (and CRC-check) the sparse index region of a sealed segment.
bool load_segment_index(const fs::path& path, const SegmentFooter& footer,
                        std::vector<std::pair<double, std::uint64_t>>& out,
                        std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return set_error(error, "cannot open " + path.string());
  in.seekg(static_cast<std::streamoff>(footer.payload_end));
  const std::size_t index_bytes =
      std::size_t{footer.index_count} * kIndexEntryBytes;
  std::vector<std::uint8_t> tail(index_bytes + kSegmentFooterBytes);
  if (!read_exact(in, tail.data(), tail.size())) {
    return set_error(error, path.string() + ": short index read");
  }
  const std::uint32_t crc = crc32c(tail.data(), index_bytes + kFooterCrcOffset);
  if (crc != footer.footer_crc) {
    return set_error(error, path.string() + ": footer checksum mismatch");
  }
  out.clear();
  out.reserve(footer.index_count);
  for (std::size_t i = 0; i < footer.index_count; ++i) {
    const std::uint8_t* e = tail.data() + i * kIndexEntryBytes;
    const auto t = get_raw<double>(e);
    const auto offset = get_raw<std::uint64_t>(e + 8);
    // Validate here, on the read path — not only in verify(). An offset past
    // payload_end once made the prefetcher's `payload_end - start` window
    // size wrap into a huge resize; unsorted or NaN stamps would break the
    // seek's upper_bound probe.
    if (offset < kSegmentHeaderBytes || offset >= footer.payload_end ||
        std::isnan(t) || (!out.empty() && t < out.back().first)) {
      return set_error(error, path.string() + ": index entry out of bounds");
    }
    out.emplace_back(t, offset);
  }
  return true;
}

// A reader guesses the active file's name from its manifest snapshot's next
// index — but a compaction racing that snapshot hands the very same index to
// a *merged* segment of older records. Telling the two apart needs the file
// itself: a valid sealed footer whose span starts before the snapshot's
// sealed tail is merged old data, and reading it as the live tail would
// re-emit records with time running backwards. Returns false for that case
// (skip the file). Otherwise the file is a plausible continuation: either
// genuinely active (*sealed_payload_end = 0) or sealed after the snapshot
// (*sealed_payload_end = its payload end, so the caller stops before the
// index/footer bytes instead of reporting them as a torn tail).
bool probe_presumed_active(const fs::path& path, double sealed_t_max,
                           std::uint64_t* sealed_payload_end) {
  *sealed_payload_end = 0;
  SegmentFooter footer;
  if (!load_segment_footer(path, footer, nullptr)) return true;
  if (footer.t_min < sealed_t_max) return false;
  *sealed_payload_end = footer.payload_end;
  return true;
}

void fsync_directory(const fs::path& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);  // best-effort: rename durability on metadata journals
    ::close(fd);
  }
}

void fsync_file(std::FILE* f, const std::string& what) {
  if (std::fflush(f) != 0 || ::fsync(::fileno(f)) != 0) {
    throw std::runtime_error("segment store sync failed: " + what + ": " +
                             std::strerror(errno));
  }
}

constexpr std::string_view kManifestHeader = "dynriver-segment-store v1";

}  // namespace

std::uint32_t crc32c(const std::uint8_t* data, std::size_t len,
                     std::uint32_t seed) {
  return detail::CrcSlices<0x82F63B78u>::update(seed ^ 0xFFFFFFFFu, data, len) ^
         0xFFFFFFFFu;
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

namespace {

/// Parse MANIFEST; absent file yields an empty store. Throws on damage —
/// recovery must never guess at the sealed list.
void read_manifest(const fs::path& dir, std::vector<SegmentInfo>& sealed,
                   std::uint64_t& next_index) {
  sealed.clear();
  next_index = 0;
  const auto path = dir / "MANIFEST";
  std::ifstream in(path);
  if (!in) return;  // fresh store
  std::string line;
  if (!std::getline(in, line) || line != kManifestHeader) {
    throw std::runtime_error("bad segment store manifest: " + path.string());
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("next ", 0) == 0) {
      next_index = std::strtoull(line.c_str() + 5, nullptr, 10);
      continue;
    }
    if (line.rfind("seg ", 0) == 0) {
      std::array<char, 64> name{};
      unsigned long long frames = 0;
      unsigned long long bytes = 0;
      double t_min = 0.0;
      double t_max = 0.0;
      unsigned crc = 0;
      if (std::sscanf(line.c_str(), "seg %63s %llu %llu %la %la %x",
                      name.data(), &frames, &bytes, &t_min, &t_max,
                      &crc) != 6) {
        throw std::runtime_error("bad manifest line in " + path.string() +
                                 ": " + line);
      }
      SegmentInfo info;
      info.name = name.data();
      info.frames = frames;
      info.bytes = bytes;
      info.t_min = t_min;
      info.t_max = t_max;
      info.payload_crc = static_cast<std::uint32_t>(crc);
      info.sealed = true;
      // The manifest is untrusted bytes like any other store file. A name
      // that is not a well-formed segment name would let a hostile MANIFEST
      // point readers at arbitrary paths ("seg ../../etc/passwd ..."), and
      // non-monotone or NaN time spans break the cursor's lower_bound seek
      // and its "nothing later fits" early-out.
      std::uint64_t seg_index = 0;
      if (!parse_segment_name(info.name, seg_index)) {
        throw std::runtime_error("bad segment name in " + path.string() +
                                 ": " + info.name);
      }
      if (!std::isfinite(info.t_min) || !std::isfinite(info.t_max) ||
          info.t_min > info.t_max ||
          (!sealed.empty() && (info.t_min < sealed.back().t_min ||
                               info.t_max < sealed.back().t_max))) {
        throw std::runtime_error("non-monotone segment times in " +
                                 path.string() + ": " + info.name);
      }
      sealed.push_back(std::move(info));
      continue;
    }
    throw std::runtime_error("bad manifest line in " + path.string() + ": " +
                             line);
  }
}

}  // namespace

void SegmentedRecordLog::write_manifest() const {
  const auto tmp = dir_ / "MANIFEST.tmp";
  const auto final_path = dir_ / "MANIFEST";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("cannot write manifest: " + tmp.string());
  }
  std::string text(kManifestHeader);
  text += "\nnext " + std::to_string(next_index_) + "\n";
  for (const auto& s : sealed_) {
    std::array<char, 192> line;
    std::snprintf(line.data(), line.size(),
                  "seg %s %" PRIu64 " %" PRIu64 " %a %a %x\n", s.name.c_str(),
                  s.frames, s.bytes, s.t_min, s.t_max, s.payload_crc);
    text += line.data();
  }
  const bool wrote = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  bool synced = true;
  if (wrote && options_.sync_on_seal) {
    synced = std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  }
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !synced || !closed) {
    throw std::runtime_error("manifest write failed: " + tmp.string());
  }
  std::error_code ec;
  fs::rename(tmp, final_path, ec);  // atomic publish
  if (ec) {
    throw std::runtime_error("manifest rename failed: " + final_path.string() +
                             ": " + ec.message());
  }
  if (options_.sync_on_seal) fsync_directory(dir_);
}

// ---------------------------------------------------------------------------
// SegmentedRecordLog
// ---------------------------------------------------------------------------

SegmentedRecordLog::SegmentedRecordLog(const std::filesystem::path& dir,
                                       SegmentStoreOptions options)
    : dir_(dir), options_(options) {
  DR_EXPECTS(options_.max_segment_bytes > 0);
  DR_EXPECTS(options_.index_every_bytes > 0);
  fs::create_directories(dir_);
  // Construction is single-threaded, but recover() touches guarded state
  // and seals via the _locked path — hold the lock so the analysis sees
  // its capability satisfied (uncontended: nobody else has `this` yet).
  const common::LockGuard lock(mu_);
  recover();
}

SegmentedRecordLog::~SegmentedRecordLog() {
  try {
    close();
  } catch (...) {
    // Best-effort teardown; use close() directly for the durability
    // guarantee.
  }
}

void SegmentedRecordLog::recover() {
  read_manifest(dir_, sealed_, next_index_);

  // Roll an interrupted compaction forward: the manifest is the journal —
  // if it references a segment whose file only exists under its temp name,
  // the crash hit between the manifest publish and the rename.
  for (const auto& s : sealed_) {
    const auto path = dir_ / s.name;
    if (fs::exists(path)) continue;
    const auto tmp = fs::path(path.string() + ".tmp");
    if (fs::exists(tmp)) {
      fs::rename(tmp, path);
      continue;
    }
    throw std::runtime_error("segment store is missing sealed segment: " +
                             path.string());
  }

  // Inventory everything else on disk.
  std::map<std::uint64_t, fs::path> orphans;
  std::vector<fs::path> temps;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const auto name = entry.path().filename().string();
    if (name == "MANIFEST") continue;
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      temps.push_back(entry.path());
      continue;
    }
    std::uint64_t index = 0;
    if (!parse_segment_name(name, index)) continue;
    const bool in_manifest =
        std::any_of(sealed_.begin(), sealed_.end(),
                    [&](const SegmentInfo& s) { return s.name == name; });
    if (!in_manifest) orphans.emplace(index, entry.path());
  }
  for (const auto& tmp : temps) fs::remove(tmp);  // aborted work, pre-publish

  bool manifest_dirty = false;
  for (const auto& [index, path] : orphans) {
    if (index < next_index_) {
      // Known and since removed (retired or compacted away); the crash hit
      // between the manifest publish and the file delete.
      fs::remove(path);
      continue;
    }
    SegmentFooter footer;
    std::string err;
    if (load_segment_footer(path, footer, &err)) {
      std::vector<std::pair<double, std::uint64_t>> index_entries;
      if (!load_segment_index(path, footer, index_entries, &err)) {
        throw std::runtime_error("segment store recovery: " + err);
      }
      // Sealed but unpublished: the crash hit between the footer write and
      // the manifest publish. Adopt it.
      SegmentInfo info;
      info.name = path.filename().string();
      info.frames = footer.frames;
      info.bytes = footer.payload_end - kSegmentHeaderBytes;
      info.t_min = footer.t_min;
      info.t_max = footer.t_max;
      info.payload_crc = footer.payload_crc;
      info.sealed = true;
      sealed_.push_back(std::move(info));
      next_index_ = index + 1;
      manifest_dirty = true;
      continue;
    }
    // The torn active segment of the previous writer: keep its valid prefix
    // (streamed, bounded memory), seal what survived, drop the rest.
    std::ifstream in(path, std::ios::binary);
    std::error_code ec;
    const std::uint64_t size = fs::file_size(path, ec);
    std::array<std::uint8_t, kSegmentHeaderBytes> header;
    const bool header_ok =
        !ec && in && size >= kSegmentHeaderBytes &&
        read_exact(in, header.data(), header.size()) &&
        get_raw<std::uint32_t>(header.data()) == kSegmentMagic &&
        get_raw<std::uint16_t>(header.data() + 4) == kSegmentVersion;
    ActiveSegment scan;
    scan.index = index;
    std::uint64_t pos = kSegmentHeaderBytes;
    std::uint64_t valid = kSegmentHeaderBytes;
    if (header_ok) {
      std::vector<std::uint8_t> frame;
      std::array<std::uint8_t, kEnvelopeHeaderBytes> env;
      double prev_t = -std::numeric_limits<double>::infinity();
      while (pos + kEnvelopeHeaderBytes <= size) {
        if (!read_exact(in, env.data(), env.size())) break;
        const auto len = get_raw<std::uint32_t>(env.data());
        const auto t = get_raw<double>(env.data() + 4);
        if (len == 0 || len > kMaxSegmentFrameBytes ||
            pos + kEnvelopeHeaderBytes + len > size || std::isnan(t) ||
            t < prev_t) {
          break;
        }
        frame.resize(len);
        if (!read_exact(in, frame.data(), len)) break;
        try {
          std::size_t consumed = 0;
          (void)decode_record(frame.data(), len, consumed);
          if (consumed != len) break;
        } catch (const WireError&) {
          break;
        }
        if (scan.frames == 0 ||
            scan.payload_bytes - scan.last_index_bytes >=
                options_.index_every_bytes) {
          scan.index_entries.emplace_back(t, pos);
          scan.last_index_bytes = scan.payload_bytes;
        }
        scan.crc = crc32c(env.data(), env.size(), scan.crc);
        scan.crc = crc32c(frame.data(), len, scan.crc);
        if (scan.frames == 0) scan.t_min = t;
        scan.t_max = t;
        prev_t = t;
        ++scan.frames;
        pos += kEnvelopeHeaderBytes + len;
        scan.payload_bytes += kEnvelopeHeaderBytes + len;
        valid = pos;
      }
    }
    in.close();
    if (scan.frames == 0) {
      fs::remove(path);
      next_index_ = std::max(next_index_, index);
      continue;
    }
    if (valid < size) fs::resize_file(path, valid);
    scan.file = std::fopen(path.c_str(), "ab");
    if (scan.file == nullptr) {
      throw std::runtime_error("segment store recovery: cannot reopen " +
                               path.string());
    }
    recovered_ += scan.frames;
    active_ = std::move(scan);
    next_index_ = index;
    seal_active_locked();  // single-threaded in the ctor; publishes the manifest
    manifest_dirty = false;
  }

  for (const auto& s : sealed_) last_t_ = std::max(last_t_, s.t_max);
  if (manifest_dirty) write_manifest();
}

void SegmentedRecordLog::open_active() {
  ActiveSegment fresh;
  fresh.index = next_index_;
  const auto path = dir_ / segment_name(fresh.index);
  fresh.file = std::fopen(path.c_str(), "wb");
  if (fresh.file == nullptr) {
    throw std::runtime_error("cannot open segment: " + path.string());
  }
  const auto header = segment_header_bytes();
  if (std::fwrite(header.data(), 1, header.size(), fresh.file) !=
      header.size()) {
    std::fclose(fresh.file);  // best-effort: segment abandoned, throwing
    throw std::runtime_error("segment header write failed: " + path.string());
  }
  active_ = std::move(fresh);
}

void SegmentedRecordLog::append(const Record& rec, double t) {
  const common::LockGuard lock(mu_);
  DR_EXPECTS(!closed_);
  DR_EXPECTS(std::isfinite(t));
  DR_EXPECTS(t >= last_t_ || !std::isfinite(last_t_));

  if (active_.file != nullptr && active_.frames > 0 &&
      (active_.payload_bytes >= options_.max_segment_bytes ||
       (options_.max_segment_seconds > 0.0 &&
        t - active_.t_min >= options_.max_segment_seconds))) {
    seal_active_locked();
  }
  if (active_.file == nullptr) open_active();

  const auto frame =
      encode_record(rec, options_.pack_payloads ? PayloadCodec::kPacked
                                                : PayloadCodec::kRaw);
  DR_EXPECTS(frame.size() <= kMaxSegmentFrameBytes);
  std::array<std::uint8_t, kEnvelopeHeaderBytes> env;
  put_raw<std::uint32_t>(env.data(), static_cast<std::uint32_t>(frame.size()));
  put_raw<double>(env.data() + 4, t);

  if (active_.frames == 0 ||
      active_.payload_bytes - active_.last_index_bytes >=
          options_.index_every_bytes) {
    active_.index_entries.emplace_back(
        t, kSegmentHeaderBytes + active_.payload_bytes);
    active_.last_index_bytes = active_.payload_bytes;
  }

  if (std::fwrite(env.data(), 1, env.size(), active_.file) != env.size() ||
      std::fwrite(frame.data(), 1, frame.size(), active_.file) !=
          frame.size()) {
    throw std::runtime_error("segment append failed in " + dir_.string());
  }
  active_.crc = crc32c(env.data(), env.size(), active_.crc);
  active_.crc = crc32c(frame.data(), frame.size(), active_.crc);
  if (active_.frames == 0) active_.t_min = t;
  active_.t_max = t;
  active_.payload_bytes += env.size() + frame.size();
  ++active_.frames;
  last_t_ = t;
  ++written_;
}

void SegmentedRecordLog::sync() {
  const common::LockGuard lock(mu_);
  if (active_.file == nullptr) return;
  fsync_file(active_.file, segment_name(active_.index));
}

void SegmentedRecordLog::seal_active() {
  const common::LockGuard lock(mu_);
  seal_active_locked();
}

void SegmentedRecordLog::seal_active_locked() {
  if (active_.file == nullptr) return;
  const auto name = segment_name(active_.index);
  const auto path = dir_ / name;
  if (active_.frames == 0) {
    std::fclose(active_.file);  // best-effort: empty segment, removed below
    active_ = ActiveSegment{};
    fs::remove(path);
    return;
  }

  // Tail = sparse index then footer; footer_crc covers both up to itself.
  std::vector<std::uint8_t> tail(
      active_.index_entries.size() * kIndexEntryBytes + kSegmentFooterBytes);
  std::uint8_t* p = tail.data();
  for (const auto& [t, offset] : active_.index_entries) {
    put_raw<double>(p, t);
    put_raw<std::uint64_t>(p + 8, offset);
    p += kIndexEntryBytes;
  }
  SegmentFooter footer;
  footer.frames = active_.frames;
  footer.payload_end = kSegmentHeaderBytes + active_.payload_bytes;
  footer.index_count = static_cast<std::uint32_t>(active_.index_entries.size());
  footer.version = kSegmentVersion;
  footer.flags = 0;
  footer.t_min = active_.t_min;
  footer.t_max = active_.t_max;
  footer.payload_crc = active_.crc;
  encode_footer_prefix(p, footer);
  const std::uint32_t footer_crc =
      crc32c(tail.data(), tail.size() - kSegmentFooterBytes + kFooterCrcOffset);
  put_raw<std::uint32_t>(p + kFooterCrcOffset, footer_crc);
  put_raw<std::uint32_t>(p + kFooterCrcOffset + 4, kSegmentFooterMagic);

  const bool wrote =
      std::fwrite(tail.data(), 1, tail.size(), active_.file) == tail.size();
  if (wrote && options_.sync_on_seal) {
    try {
      fsync_file(active_.file, name);
    } catch (...) {
      // Never leave a half-sealed segment as the active one: a retry (or
      // the destructor's close()) would append a second tail to the same
      // file. Drop it; recovery adopts the file on reopen — as a sealed
      // segment if the tail reached disk, else by valid-prefix truncation.
      std::fclose(active_.file);  // best-effort: segment dropped, rethrowing
      active_ = ActiveSegment{};
      throw;
    }
  }
  const bool closed = std::fclose(active_.file) == 0;
  if (!wrote || !closed) {
    active_ = ActiveSegment{};
    throw std::runtime_error("segment seal failed: " + path.string());
  }

  SegmentInfo info;
  info.name = name;
  info.frames = active_.frames;
  info.bytes = active_.payload_bytes;
  info.t_min = active_.t_min;
  info.t_max = active_.t_max;
  info.payload_crc = active_.crc;
  info.sealed = true;
  sealed_.push_back(std::move(info));
  next_index_ = active_.index + 1;
  active_ = ActiveSegment{};
  write_manifest();
}

void SegmentedRecordLog::close() {
  const common::LockGuard lock(mu_);
  if (closed_) return;
  seal_active_locked();
  closed_ = true;
}

std::size_t SegmentedRecordLog::retire_before(double t) {
  const common::LockGuard lock(mu_);
  return retire_before_locked(t, nullptr);
}

std::size_t SegmentedRecordLog::retire_before_locked(
    double t, std::uint64_t* bytes_dropped) {
  std::vector<std::string> victims;
  std::uint64_t bytes = 0;
  std::erase_if(sealed_, [&](const SegmentInfo& s) {
    if (s.t_max < t) {
      victims.push_back(s.name);
      bytes += s.bytes;
      return true;
    }
    return false;
  });
  if (bytes_dropped != nullptr) *bytes_dropped = bytes;
  if (victims.empty()) return 0;
  // Publish first, delete second: a crash in between leaves orphans with
  // indexes below `next`, which recovery deletes.
  write_manifest();
  for (const auto& name : victims) fs::remove(dir_ / name);
  return victims.size();
}

std::size_t SegmentedRecordLog::compact(std::uint64_t min_bytes,
                                        std::size_t max_run) {
  const common::LockGuard lock(mu_);
  return compact_locked(min_bytes, max_run, nullptr);
}

std::size_t SegmentedRecordLog::compact_locked(std::uint64_t min_bytes,
                                               std::size_t max_run,
                                               std::uint64_t* bytes_rewritten) {
  if (bytes_rewritten != nullptr) *bytes_rewritten = 0;
  if (max_run < 2) return 0;
  // Rotate first: the merged segment takes the next free index, and while a
  // segment is active that index is the active file's — merging into it
  // would rename over the live file under the writer.
  seal_active_locked();
  std::size_t removed = 0;
  std::size_t run_begin = 0;
  while (run_begin < sealed_.size()) {
    // Find a maximal run of adjacent small segments (bounded by max_run so
    // one pass under the log's lock stays short).
    std::size_t run_end = run_begin;
    while (run_end < sealed_.size() && run_end - run_begin < max_run &&
           sealed_[run_end].bytes < min_bytes) {
      ++run_end;
    }
    if (run_end - run_begin < 2) {
      run_begin = run_end + 1;
      continue;
    }

    const auto merged_index = next_index_;
    const auto merged_name = segment_name(merged_index);
    const auto tmp = fs::path((dir_ / merged_name).string() + ".tmp");
    std::FILE* out = std::fopen(tmp.c_str(), "wb");
    if (out == nullptr) {
      throw std::runtime_error("compaction: cannot open " + tmp.string());
    }
    const auto header = segment_header_bytes();
    if (std::fwrite(header.data(), 1, header.size(), out) != header.size()) {
      std::fclose(out);  // best-effort: .tmp discarded on throw
      throw std::runtime_error("compaction: header write failed: " +
                               tmp.string());
    }

    // Merge by raw envelope copy: frames are never re-encoded, only the
    // index/footer are rebuilt over the concatenation.
    ActiveSegment merged;
    merged.index = merged_index;
    std::vector<std::uint8_t> frame;
    std::array<std::uint8_t, kEnvelopeHeaderBytes> env;
    for (std::size_t i = run_begin; i < run_end; ++i) {
      const auto path = dir_ / sealed_[i].name;
      SegmentFooter footer;
      std::string err;
      if (!load_segment_footer(path, footer, &err)) {
        std::fclose(out);  // best-effort: .tmp discarded on throw
        throw std::runtime_error("compaction: " + err);
      }
      std::ifstream in(path, std::ios::binary);
      in.seekg(static_cast<std::streamoff>(kSegmentHeaderBytes));
      std::uint64_t pos = kSegmentHeaderBytes;
      while (pos < footer.payload_end) {
        if (!read_exact(in, env.data(), env.size())) break;
        const auto len = get_raw<std::uint32_t>(env.data());
        const auto t = get_raw<double>(env.data() + 4);
        if (len == 0 || len > kMaxSegmentFrameBytes ||
            pos + kEnvelopeHeaderBytes + len > footer.payload_end) {
          std::fclose(out);  // best-effort: .tmp discarded on throw
          throw std::runtime_error("compaction: corrupt envelope in " +
                                   path.string());
        }
        frame.resize(len);
        if (!read_exact(in, frame.data(), len)) {
          std::fclose(out);  // best-effort: .tmp discarded on throw
          throw std::runtime_error("compaction: short read in " +
                                   path.string());
        }
        if (merged.frames == 0 ||
            merged.payload_bytes - merged.last_index_bytes >=
                options_.index_every_bytes) {
          merged.index_entries.emplace_back(
              t, kSegmentHeaderBytes + merged.payload_bytes);
          merged.last_index_bytes = merged.payload_bytes;
        }
        if (std::fwrite(env.data(), 1, env.size(), out) != env.size() ||
            std::fwrite(frame.data(), 1, len, out) != len) {
          std::fclose(out);  // best-effort: .tmp discarded on throw
          throw std::runtime_error("compaction: write failed: " +
                                   tmp.string());
        }
        merged.crc = crc32c(env.data(), env.size(), merged.crc);
        merged.crc = crc32c(frame.data(), len, merged.crc);
        if (merged.frames == 0) merged.t_min = t;
        merged.t_max = t;
        ++merged.frames;
        pos += kEnvelopeHeaderBytes + len;
        merged.payload_bytes += kEnvelopeHeaderBytes + len;
      }
    }

    // Seal the temp file, then journal the swap in the manifest BEFORE the
    // rename: recovery rolls the rename forward (manifest names a file that
    // only exists as .tmp) and deletes the replaced segments (indexes below
    // `next`).
    {
      std::vector<std::uint8_t> tail(
          merged.index_entries.size() * kIndexEntryBytes + kSegmentFooterBytes);
      std::uint8_t* p = tail.data();
      for (const auto& [t, offset] : merged.index_entries) {
        put_raw<double>(p, t);
        put_raw<std::uint64_t>(p + 8, offset);
        p += kIndexEntryBytes;
      }
      SegmentFooter footer;
      footer.frames = merged.frames;
      footer.payload_end = kSegmentHeaderBytes + merged.payload_bytes;
      footer.index_count =
          static_cast<std::uint32_t>(merged.index_entries.size());
      footer.version = kSegmentVersion;
      footer.flags = 0;
      footer.t_min = merged.t_min;
      footer.t_max = merged.t_max;
      footer.payload_crc = merged.crc;
      encode_footer_prefix(p, footer);
      const std::uint32_t footer_crc = crc32c(
          tail.data(), tail.size() - kSegmentFooterBytes + kFooterCrcOffset);
      put_raw<std::uint32_t>(p + kFooterCrcOffset, footer_crc);
      put_raw<std::uint32_t>(p + kFooterCrcOffset + 4, kSegmentFooterMagic);
      const bool wrote =
          std::fwrite(tail.data(), 1, tail.size(), out) == tail.size();
      if (wrote && options_.sync_on_seal) {
        try {
          fsync_file(out, merged_name);
        } catch (...) {
          std::fclose(out);  // best-effort: pre-publish .tmp, recovery removes it
          throw;
        }
      }
      const bool closed = std::fclose(out) == 0;
      if (!wrote || !closed) {
        throw std::runtime_error("compaction: seal failed: " + tmp.string());
      }
    }
    SegmentInfo merged_info;
    merged_info.name = merged_name;
    merged_info.frames = merged.frames;
    merged_info.bytes = merged.payload_bytes;
    merged_info.t_min = merged.t_min;
    merged_info.t_max = merged.t_max;
    merged_info.payload_crc = merged.crc;
    merged_info.sealed = true;
    std::vector<std::string> replaced;
    for (std::size_t i = run_begin; i < run_end; ++i) {
      replaced.push_back(sealed_[i].name);
    }

    sealed_.erase(sealed_.begin() + static_cast<std::ptrdiff_t>(run_begin),
                  sealed_.begin() + static_cast<std::ptrdiff_t>(run_end));
    sealed_.insert(sealed_.begin() + static_cast<std::ptrdiff_t>(run_begin),
                   merged_info);
    next_index_ = merged_index + 1;
    write_manifest();
    fs::rename(tmp, dir_ / merged_name);
    if (options_.sync_on_seal) fsync_directory(dir_);
    for (const auto& name : replaced) fs::remove(dir_ / name);

    removed += replaced.size() - 1;
    if (bytes_rewritten != nullptr) *bytes_rewritten += merged.payload_bytes;
    run_begin += 1;  // continue after the merged entry
  }
  return removed;
}

std::size_t SegmentedRecordLog::records_written() const {
  const common::LockGuard lock(mu_);
  return written_;
}

std::size_t SegmentedRecordLog::recovered_records() const {
  const common::LockGuard lock(mu_);
  return recovered_;
}

double SegmentedRecordLog::last_time() const {
  const common::LockGuard lock(mu_);
  return last_t_;
}

std::vector<SegmentInfo> SegmentedRecordLog::segments() const {
  const common::LockGuard lock(mu_);
  auto out = sealed_;
  if (active_.file != nullptr) {
    SegmentInfo info;
    info.name = segment_name(active_.index);
    info.frames = active_.frames;
    info.bytes = active_.payload_bytes;
    info.t_min = active_.t_min;
    info.t_max = active_.t_max;
    info.payload_crc = active_.crc;
    info.sealed = false;
    out.push_back(std::move(info));
  }
  return out;
}

// ---------------------------------------------------------------------------
// SegmentedRecordLog::Maintenance
// ---------------------------------------------------------------------------

SegmentedRecordLog::Maintenance::Maintenance(SegmentedRecordLog& log,
                                             MaintenanceOptions options)
    : log_(log), options_(options) {
  DR_EXPECTS(options_.interval_seconds > 0.0);
  thread_ = std::thread([this] { run(); });
}

SegmentedRecordLog::Maintenance::~Maintenance() { stop(); }

SegmentedRecordLog::Maintenance::Stats SegmentedRecordLog::Maintenance::stats()
    const {
  const common::LockGuard lock(mu_);
  return stats_;
}

void SegmentedRecordLog::Maintenance::stop() {
  {
    const common::LockGuard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void SegmentedRecordLog::Maintenance::run() {
  common::UniqueLock lock(mu_);
  while (!stop_) {
    lock.unlock();
    std::uint64_t bytes = 0;
    std::size_t retired = 0;
    std::size_t merged = 0;
    try {
      const common::LockGuard log_lock(log_.mu_);
      if (options_.retain_seconds > 0.0 && std::isfinite(log_.last_t_)) {
        std::uint64_t dropped = 0;
        retired = log_.retire_before_locked(
            log_.last_t_ - options_.retain_seconds, &dropped);
        bytes += dropped;
      }
      if (options_.compact_min_bytes > 0) {
        std::uint64_t rewritten = 0;
        merged = log_.compact_locked(options_.compact_min_bytes,
                                     options_.compact_max_run, &rewritten);
        bytes += rewritten;
      }
    } catch (...) {
      // Maintenance must never take the pipeline down: skip this cycle and
      // retry next interval. A persistent I/O failure still surfaces — the
      // writer's own append/sync/close throw.
    }
    // Budget: a cycle that touched N bytes earns at least N / budget seconds
    // of quiet, capping average maintenance I/O at budget bytes/second.
    double sleep_s = options_.interval_seconds;
    if (options_.budget_bytes_per_sec > 0 && bytes > 0) {
      sleep_s = std::max(sleep_s,
                         static_cast<double>(bytes) /
                             static_cast<double>(options_.budget_bytes_per_sec));
    }
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(sleep_s));
    lock.lock();
    ++stats_.cycles;
    stats_.segments_retired += retired;
    stats_.segments_merged += merged;
    stats_.bytes_processed += bytes;
    while (!stop_ &&
           cv_.wait_until(lock, deadline) != std::cv_status::timeout) {
    }
  }
}

// ---------------------------------------------------------------------------
// SegmentStoreReader
// ---------------------------------------------------------------------------

SegmentStoreReader::SegmentStoreReader(const std::filesystem::path& dir)
    : dir_(dir) {
  std::uint64_t next_index = 0;
  read_manifest(dir_, sealed_, next_index);
  // The writer's active segment, if one is growing right now.
  const auto active = segment_name(next_index);
  if (fs::exists(dir_ / active)) active_name_ = active;
}

std::vector<SegmentInfo> SegmentStoreReader::segments() const {
  auto out = sealed_;
  if (!active_name_.empty()) {
    std::error_code ec;
    const auto size = fs::file_size(dir_ / active_name_, ec);
    SegmentInfo info;
    info.name = active_name_;
    info.bytes =
        (!ec && size > kSegmentHeaderBytes) ? size - kSegmentHeaderBytes : 0;
    info.sealed = false;
    out.push_back(std::move(info));
  }
  return out;
}

bool SegmentStoreReader::verify(std::string* error) const {
  for (const auto& s : sealed_) {
    const auto path = dir_ / s.name;
    SegmentFooter footer;
    if (!load_segment_footer(path, footer, error)) return false;
    if (footer.frames != s.frames || footer.payload_crc != s.payload_crc ||
        footer.payload_end - kSegmentHeaderBytes != s.bytes) {
      return set_error(error, path.string() + ": footer disagrees with manifest");
    }
    std::vector<std::pair<double, std::uint64_t>> index;
    if (!load_segment_index(path, footer, index, error)) return false;
    for (const auto& [t, offset] : index) {
      if (offset < kSegmentHeaderBytes || offset >= footer.payload_end ||
          std::isnan(t)) {
        return set_error(error, path.string() + ": index entry out of bounds");
      }
    }
    std::ifstream in(path, std::ios::binary);
    if (!in) return set_error(error, "cannot open " + path.string());
    in.seekg(static_cast<std::streamoff>(kSegmentHeaderBytes));
    std::uint32_t crc = 0;
    std::uint64_t left = footer.payload_end - kSegmentHeaderBytes;
    std::array<std::uint8_t, 64 * 1024> chunk;
    while (left > 0) {
      const auto n = checked::narrow<std::size_t, std::runtime_error>(
          std::min<std::uint64_t>(left, chunk.size()), "verify chunk size");
      if (!read_exact(in, chunk.data(), n)) {
        return set_error(error, path.string() + ": short payload read");
      }
      crc = crc32c(chunk.data(), n, crc);
      left -= n;
    }
    if (crc != footer.payload_crc) {
      return set_error(error, path.string() + ": payload checksum mismatch");
    }
  }
  if (error != nullptr) error->clear();
  return true;
}

SegmentStoreReader::Cursor SegmentStoreReader::seek(double t0, double t1) {
  return Cursor(this, t0, t1);
}

bool SegmentStoreReader::Cursor::open_next_segment() {
  if (!positioned_) {
    positioned_ = true;
    // O(log n): first sealed segment whose span can reach t0.
    const auto it = std::lower_bound(
        store_->sealed_.begin(), store_->sealed_.end(), t0_,
        [](const SegmentInfo& s, double t) { return s.t_max < t; });
    seg_i_ = checked::narrow<std::size_t, std::runtime_error>(
        it - store_->sealed_.begin(), "segment cursor position");
  }
  while (seg_i_ < store_->sealed_.size()) {
    const SegmentInfo& s = store_->sealed_[seg_i_];
    if (s.t_min >= t1_) return false;  // time is monotone: nothing later fits
    // The manifest is the truth, but an in-flight compaction may still hold
    // the file under its temp name and rename it at any moment. Try both
    // names, twice, so a rename landing between any two of our steps cannot
    // fail the cursor spuriously. (Retention/compaction that *deletes* a
    // snapshot's files still invalidates the cursor — see the header.)
    const auto final_path = store_->dir_ / s.name;
    const auto tmp_path = fs::path(final_path.string() + ".tmp");
    fs::path path;
    SegmentFooter footer;
    std::string err;
    bool opened_file = false;
    for (int attempt = 0; attempt < 2 && !opened_file; ++attempt) {
      for (const auto& candidate : {final_path, tmp_path}) {
        std::string e;
        if (!load_segment_footer(candidate, footer, &e)) {
          if (err.empty()) err = e;
          continue;
        }
        file_.clear();
        file_.open(candidate, std::ios::binary);
        if (!file_) continue;  // renamed away between footer load and open
        path = candidate;
        opened_file = true;
        break;
      }
    }
    if (!opened_file) throw WireError("segment store: " + err);
    ++store_->opened_;
    ++seg_i_;
    in_active_ = false;
    pos_ = kSegmentHeaderBytes;
    end_ = footer.payload_end;
    if (s.t_min < t0_ && footer.index_count > 0) {
      // Sparse-index probe: start the scan at the last entry at or before
      // t0 instead of the head of the segment.
      std::vector<std::pair<double, std::uint64_t>> index;
      if (!load_segment_index(path, footer, index, &err)) {
        throw WireError("segment store: " + err);
      }
      auto it = std::upper_bound(
          index.begin(), index.end(), t0_,
          [](double t, const std::pair<double, std::uint64_t>& e) {
            return t < e.first;
          });
      if (it != index.begin()) pos_ = (*std::prev(it)).second;
    }
    file_.seekg(static_cast<std::streamoff>(pos_));
    return true;
  }
  if (tried_active_ || store_->active_name_.empty()) return false;
  tried_active_ = true;
  const auto path = store_->dir_ / store_->active_name_;
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec || size <= kSegmentHeaderBytes) return false;
  const double sealed_t_max = store_->sealed_.empty()
                                  ? -std::numeric_limits<double>::infinity()
                                  : store_->sealed_.back().t_max;
  std::uint64_t sealed_end = 0;
  if (!probe_presumed_active(path, sealed_t_max, &sealed_end)) {
    return false;  // a racing compaction reused the index: merged old data
  }
  file_.open(path, std::ios::binary);
  if (!file_) return false;  // writer may have just sealed+rotated it
  ++store_->opened_;
  std::array<std::uint8_t, kSegmentHeaderBytes> header;
  if (!read_exact(file_, header.data(), header.size()) ||
      get_raw<std::uint32_t>(header.data()) != kSegmentMagic) {
    // Header bytes still in the writer's buffer: nothing readable yet.
    file_.close();
    torn_ = true;
    lost_bytes_ = size;
    return false;
  }
  // sealed_end != 0: the writer sealed this segment after our snapshot —
  // read exactly its payload (sealed semantics: damage throws, not torn).
  in_active_ = sealed_end == 0;
  pos_ = kSegmentHeaderBytes;
  end_ = sealed_end != 0 ? sealed_end : size;  // bounded snapshot of the tail
  return true;
}

bool SegmentStoreReader::Cursor::fail_torn() {
  torn_ = true;
  lost_bytes_ = checked::narrow<std::size_t, std::runtime_error>(
      end_ - pos_, "torn tail size");
  done_ = true;
  return false;
}

// Pull the next in-range frame's bytes into frame_buf_ (stamp in pending_t_)
// without consuming it: pos_ stays at the envelope until commit_frame(), so a
// decode failure reports lost_bytes_ from the right spot. False at end of
// range or torn tail (done_ set); throws on sealed-segment damage.
bool SegmentStoreReader::Cursor::fetch_frame(std::uint32_t& len_out) {
  if (done_) return false;
  std::array<std::uint8_t, kEnvelopeHeaderBytes> env;
  for (;;) {
    if (!file_.is_open()) {
      if (!open_next_segment()) {
        done_ = true;
        return false;
      }
    }
    if (pos_ + kEnvelopeHeaderBytes > end_) {
      if (in_active_ && pos_ < end_) return fail_torn();
      file_.close();
      continue;
    }
    if (!read_exact(file_, env.data(), env.size())) {
      if (in_active_) return fail_torn();
      throw WireError("segment store: short envelope read");
    }
    const auto len = get_raw<std::uint32_t>(env.data());
    const auto t = get_raw<double>(env.data() + 4);
    if (len == 0 || len > kMaxSegmentFrameBytes ||
        pos_ + kEnvelopeHeaderBytes + len > end_) {
      // Mid-envelope snapshot of the writer (or its in-flight tail after a
      // concurrent seal): everything from here on is not yet readable.
      if (in_active_) return fail_torn();
      throw WireError("segment store: corrupt envelope");
    }
    ++scanned_;
    if (t >= t1_) {  // time is monotone: the range is exhausted
      done_ = true;
      return false;
    }
    if (t < t0_) {  // skip without decoding
      pos_ += kEnvelopeHeaderBytes + len;
      file_.seekg(static_cast<std::streamoff>(pos_));
      continue;
    }
    frame_buf_.resize(len);
    if (!read_exact(file_, frame_buf_.data(), len)) {
      if (in_active_) return fail_torn();
      throw WireError("segment store: short frame read");
    }
    pending_t_ = t;
    len_out = len;
    return true;
  }
}

void SegmentStoreReader::Cursor::commit_frame(std::uint32_t len) {
  pos_ += kEnvelopeHeaderBytes + len;
  time_ = pending_t_;
}

bool SegmentStoreReader::Cursor::next(Record& out) {
  std::uint32_t len = 0;
  if (!fetch_frame(len)) return false;
  try {
    std::size_t consumed = 0;
    out = decode_record(frame_buf_.data(), len, consumed);
    if (consumed != len) throw WireError("trailing bytes in envelope");
  } catch (const WireError&) {
    if (in_active_) return fail_torn();
    throw;
  }
  commit_frame(len);
  return true;
}

bool SegmentStoreReader::Cursor::next_view(RecordView& out) {
  std::uint32_t len = 0;
  if (!fetch_frame(len)) return false;
  try {
    std::size_t consumed = 0;
    out = decode_record_view(frame_buf_.data(), len, consumed, scratch_);
    if (consumed != len) throw WireError("trailing bytes in envelope");
  } catch (const WireError&) {
    if (in_active_) return fail_torn();
    throw;
  }
  commit_frame(len);
  return true;
}

// ---------------------------------------------------------------------------
// SegmentPrefetcher
// ---------------------------------------------------------------------------

namespace detail {

/// Background segment loader for prefetching replay. One thread walks the
/// same segment sequence a Cursor would — sealed segments in manifest order
/// from the first overlapping [t0, t1), then the active tail — and reads each
/// segment's payload region into one in-memory window, one segment ahead of
/// the consumer. The hand-off queue is one window deep and consumed buffers
/// are recycled back to the loader, so the steady state is double-buffered
/// with no allocation. The destructor joins the thread however early the
/// consumer stops.
class SegmentPrefetcher {
 public:
  struct Window {
    std::vector<std::uint8_t> bytes;  ///< file contents [base, base+size)
    std::uint64_t base = 0;           ///< file offset of bytes[0]
    bool active = false;              ///< from the unsealed active segment
    bool header_torn = false;         ///< active header unreadable: all torn
  };

  SegmentPrefetcher(const SegmentStoreReader& reader, double t0, double t1)
      : reader_(reader), t0_(t0), t1_(t1) {
    thread_ = std::thread([this] { run(); });
  }

  ~SegmentPrefetcher() {
    {
      const common::LockGuard lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

  SegmentPrefetcher(const SegmentPrefetcher&) = delete;
  SegmentPrefetcher& operator=(const SegmentPrefetcher&) = delete;

  /// Blocks for the next window; false at the end of the segment sequence.
  /// Rethrows a loader-side failure (missing sealed segment file, ...).
  [[nodiscard]] bool next(Window& out) {
    common::UniqueLock lock(mu_);
    while (!ready_.has_value() && !done_) cv_.wait(lock);
    if (ready_.has_value()) {
      out = std::move(*ready_);
      ready_.reset();
      cv_.notify_all();  // free the loader's slot
      return true;
    }
    if (error_ != nullptr) std::rethrow_exception(error_);
    return false;
  }

  /// Return a drained window's buffer for reuse by the loader.
  void recycle(std::vector<std::uint8_t>&& buf) {
    const common::LockGuard lock(mu_);
    spare_ = std::move(buf);
  }

 private:
  [[nodiscard]] bool stopped() const {
    const common::LockGuard lock(mu_);
    return stop_;
  }

  [[nodiscard]] std::vector<std::uint8_t> take_buffer() {
    const common::LockGuard lock(mu_);
    return std::move(spare_);
  }

  /// Hand a window to the consumer once the slot frees; false when stopping.
  [[nodiscard]] bool emit(Window&& w) {
    common::UniqueLock lock(mu_);
    while (ready_.has_value() && !stop_) cv_.wait(lock);
    if (stop_) return false;
    ready_ = std::move(w);
    cv_.notify_all();
    return true;
  }

  void run() {
    try {
      const auto segs = reader_.segments();  // snapshot, like a cursor's
      std::size_t n_sealed = 0;
      while (n_sealed < segs.size() && segs[n_sealed].sealed) ++n_sealed;

      // O(log n): first sealed segment whose span can reach t0.
      const auto begin = segs.begin();
      const auto it = std::lower_bound(
          begin, begin + static_cast<std::ptrdiff_t>(n_sealed), t0_,
          [](const SegmentInfo& s, double t) { return s.t_max < t; });
      bool hit_t1 = false;
      for (auto i = checked::narrow<std::size_t, std::runtime_error>(
               it - begin, "prefetch start segment");
           i < n_sealed; ++i) {
        if (stopped()) return;
        const SegmentInfo& s = segs[i];
        if (s.t_min >= t1_) {  // time is monotone: nothing later fits
          hit_t1 = true;
          break;
        }
        if (!load_sealed(s)) return;
      }
      const double sealed_t_max =
          n_sealed > 0 ? segs[n_sealed - 1].t_max
                       : -std::numeric_limits<double>::infinity();
      if (!hit_t1 && n_sealed < segs.size() &&
          !load_active(segs[n_sealed], sealed_t_max)) {
        return;
      }
    } catch (...) {
      const common::LockGuard lock(mu_);
      error_ = std::current_exception();
    }
    {
      const common::LockGuard lock(mu_);
      done_ = true;
    }
    cv_.notify_all();
  }

  /// Load one sealed segment's payload window; false when stopping.
  [[nodiscard]] bool load_sealed(const SegmentInfo& s) {
    // Same dual-name retry as Cursor::open_next_segment: an in-flight
    // compaction may still hold the file under its temp name.
    const auto final_path = reader_.directory() / s.name;
    const auto tmp_path = fs::path(final_path.string() + ".tmp");
    SegmentFooter footer;
    fs::path path;
    std::string err;
    bool opened_file = false;
    std::ifstream in;
    for (int attempt = 0; attempt < 2 && !opened_file; ++attempt) {
      for (const auto& candidate : {final_path, tmp_path}) {
        std::string e;
        if (!load_segment_footer(candidate, footer, &e)) {
          if (err.empty()) err = e;
          continue;
        }
        in.clear();
        in.open(candidate, std::ios::binary);
        if (!in) continue;  // renamed away between footer load and open
        path = candidate;
        opened_file = true;
        break;
      }
    }
    if (!opened_file) throw WireError("segment store: " + err);

    std::uint64_t start = kSegmentHeaderBytes;
    if (s.t_min < t0_ && footer.index_count > 0) {
      // Sparse-index probe: load only from the last entry at or before t0.
      std::vector<std::pair<double, std::uint64_t>> index;
      if (!load_segment_index(path, footer, index, &err)) {
        throw WireError("segment store: " + err);
      }
      const auto pit = std::upper_bound(
          index.begin(), index.end(), t0_,
          [](double t, const std::pair<double, std::uint64_t>& e) {
            return t < e.first;
          });
      if (pit != index.begin()) start = (*std::prev(pit)).second;
    }

    Window w;
    w.bytes = take_buffer();
    w.base = start;
    // start <= payload_end: it is either the header size (footer geometry
    // enforces payload_end >= that) or a validated sparse-index offset.
    w.bytes.resize(checked::narrow<std::size_t, WireError>(
        footer.payload_end - start, "segment window size"));
    in.seekg(static_cast<std::streamoff>(start));
    if (!read_exact(in, w.bytes.data(), w.bytes.size())) {
      throw WireError("segment store: short payload read in " + path.string());
    }
    return emit(std::move(w));
  }

  /// Load the active segment's readable prefix; false when stopping.
  [[nodiscard]] bool load_active(const SegmentInfo& s, double sealed_t_max) {
    const auto path = reader_.directory() / s.name;
    std::error_code ec;
    const auto size = fs::file_size(path, ec);
    if (ec || size <= kSegmentHeaderBytes) return true;  // nothing readable
    std::uint64_t sealed_end = 0;
    if (!probe_presumed_active(path, sealed_t_max, &sealed_end)) {
      return true;  // a racing compaction reused the index: merged old data
    }
    std::ifstream in(path, std::ios::binary);
    if (!in) return true;  // writer may have just sealed+rotated it
    std::array<std::uint8_t, kSegmentHeaderBytes> header;
    Window w;
    // sealed_end != 0: sealed after our snapshot — read exactly its payload
    // with sealed semantics (a decode failure is loss, not a torn tail).
    w.active = sealed_end == 0;
    if (!read_exact(in, header.data(), header.size()) ||
        get_raw<std::uint32_t>(header.data()) != kSegmentMagic) {
      // Header bytes still in the writer's buffer: nothing readable yet.
      w.header_torn = true;
      w.active = true;
      return emit(std::move(w));
    }
    const std::uint64_t end = sealed_end != 0 ? sealed_end : size;
    w.bytes = take_buffer();
    w.base = kSegmentHeaderBytes;
    w.bytes.resize(checked::narrow<std::size_t, WireError>(
        end - kSegmentHeaderBytes, "active window size"));
    // The file may be growing under us; the statted size is our bounded
    // snapshot of the tail, exactly like a cursor's.
    in.read(reinterpret_cast<char*>(w.bytes.data()),
            static_cast<std::streamsize>(w.bytes.size()));
    w.bytes.resize(checked::narrow<std::size_t, WireError>(
        in.gcount(), "active window read size"));
    return emit(std::move(w));
  }

  const SegmentStoreReader& reader_;
  const double t0_;
  const double t1_;
  mutable common::Mutex mu_;
  common::CondVar cv_;
  std::optional<Window> ready_ DR_GUARDED_BY(mu_);
  std::vector<std::uint8_t> spare_ DR_GUARDED_BY(mu_);
  std::exception_ptr error_ DR_GUARDED_BY(mu_);
  bool done_ DR_GUARDED_BY(mu_) = false;
  bool stop_ DR_GUARDED_BY(mu_) = false;
  std::thread thread_;  ///< started in ctor, joined in dtor only
};

}  // namespace detail

// ---------------------------------------------------------------------------
// SegmentStoreSource
// ---------------------------------------------------------------------------

SegmentStoreSource::SegmentStoreSource(const std::filesystem::path& dir,
                                       double t0, double t1,
                                       std::uint32_t subtype)
    : SegmentStoreSource(dir, ReplayOptions{t0, t1, subtype, true}) {}

SegmentStoreSource::SegmentStoreSource(const std::filesystem::path& dir,
                                       ReplayOptions options)
    : RecordSampleSource(options.subtype),
      reader_(std::make_unique<SegmentStoreReader>(dir)),
      cursor_(reader_->seek(options.t0, options.t1)),
      options_(options) {
  if (options_.prefetch) {
    prefetcher_ = std::make_unique<detail::SegmentPrefetcher>(
        *reader_, options_.t0, options_.t1);
  }
}

SegmentStoreSource::~SegmentStoreSource() = default;  // joins the prefetcher

RecordSampleSource::Next SegmentStoreSource::next_record(Record& rec) {
  try {
    if (cursor_.next(rec)) return Next::kRecord;
    return cursor_.torn() ? Next::kLost : Next::kEnd;
  } catch (const WireError&) {
    return Next::kLost;  // damaged sealed segment; verify() pinpoints it
  }
}

bool SegmentStoreSource::classify_view(const RecordView& view,
                                       FloatVec& pending) {
  ++records_in_;
  if (view.type == RecordType::kOpenScope && view.scope_type == kScopeClip) {
    rate_ = view.attr_double(kAttrSampleRate, rate_);
  } else if (view.type == RecordType::kData && view.subtype == subtype() &&
             view.is_float()) {
    if (rate_ == 0.0) rate_ = view.attr_double(kAttrSampleRate, 0.0);
    pending.assign(view.floats.begin(), view.floats.end());
    return true;
  }
  return false;
}

RecordSampleSource::Next SegmentStoreSource::next_audio(FloatVec& pending) {
  if (prefetcher_ != nullptr) return next_audio_prefetched(pending);
  // Synchronous path: the same scan through the cursor's allocation-free
  // view — pending reuses its capacity, the cursor its buffers.
  RecordView view;
  for (;;) {
    try {
      if (!cursor_.next_view(view)) {
        return cursor_.torn() ? Next::kLost : Next::kEnd;
      }
    } catch (const WireError&) {
      return Next::kLost;  // damaged sealed segment; verify() pinpoints it
    }
    if (classify_view(view, pending)) return Next::kRecord;
  }
}

RecordSampleSource::Next SegmentStoreSource::next_audio_prefetched(
    FloatVec& pending) {
  for (;;) {
    if (!have_window_) {
      detail::SegmentPrefetcher::Window w;
      try {
        if (!prefetcher_->next(w)) return Next::kEnd;
      } catch (const WireError&) {
        return Next::kLost;  // damaged sealed segment; verify() pinpoints it
      }
      ++reader_->opened_;  // same accounting as a cursor opening the file
      if (w.header_torn) return Next::kLost;
      window_ = std::move(w.bytes);
      window_base_ = w.base;
      window_pos_ = 0;
      window_active_ = w.active;
      have_window_ = true;
    }
    // Parse the next envelope of the in-memory window — same skip/torn
    // semantics as a cursor over the file itself.
    const std::size_t remaining = window_.size() - window_pos_;
    if (remaining < kEnvelopeHeaderBytes) {
      if (window_active_ && remaining > 0) return Next::kLost;  // torn tail
      prefetcher_->recycle(std::move(window_));
      window_.clear();
      have_window_ = false;
      continue;
    }
    const std::uint8_t* env = window_.data() + window_pos_;
    const auto len = get_raw<std::uint32_t>(env);
    const auto t = get_raw<double>(env + 4);
    if (len == 0 || len > kMaxSegmentFrameBytes ||
        window_pos_ + kEnvelopeHeaderBytes + len > window_.size()) {
      return Next::kLost;  // torn active tail / damaged sealed payload
    }
    if (t >= options_.t1) return Next::kEnd;  // time is monotone
    if (t < options_.t0) {  // skip without decoding
      window_pos_ += kEnvelopeHeaderBytes + len;
      continue;
    }
    RecordView view;
    try {
      std::size_t consumed = 0;
      view = decode_record_view(env + kEnvelopeHeaderBytes, len, consumed,
                                scratch_);
      if (consumed != len) return Next::kLost;
    } catch (const WireError&) {
      return Next::kLost;
    }
    window_pos_ += kEnvelopeHeaderBytes + len;
    if (classify_view(view, pending)) return Next::kRecord;
  }
}

// ---------------------------------------------------------------------------
// AudioSegmentArchiver
// ---------------------------------------------------------------------------

AudioSegmentArchiver::AudioSegmentArchiver(SegmentedRecordLog& log,
                                           double sample_rate,
                                           std::size_t record_samples)
    : log_(log), rate_(sample_rate), record_samples_(record_samples) {
  DR_EXPECTS(sample_rate > 0.0);
  DR_EXPECTS(record_samples > 0);
  pending_.reserve(record_samples_);

  // Resume after whatever the store already holds: a second archive run
  // must continue the sample clock, or its first append (stream time 0)
  // would violate the log's monotone-time contract. Sealing makes the tail
  // readable; on a freshly opened log it is a no-op.
  log_.seal_active();
  double t_last = -std::numeric_limits<double>::infinity();
  for (const auto& s : log_.segments()) t_last = std::max(t_last, s.t_max);
  if (!std::isfinite(t_last)) return;  // empty store: start at sample 0

  SegmentStoreReader reader(log_.directory());
  auto cursor = reader.seek(t_last);
  Record rec;
  bool found = false;
  while (cursor.next(rec)) {
    if (rec.type != RecordType::kData || rec.subtype != kSubtypeAudio ||
        !rec.has_attr(kAttrStartSample)) {
      continue;
    }
    const double archived_rate = rec.attr_double(kAttrSampleRate, rate_);
    if (archived_rate != rate_) {
      throw std::runtime_error(
          "archive resume: store holds audio at " +
          std::to_string(archived_rate) + " Hz, not " +
          std::to_string(rate_) + " Hz: " + log_.directory().string());
    }
    const auto start =
        static_cast<std::uint64_t>(rec.attr_int(kAttrStartSample, 0));
    start_sample_ = std::max(start_sample_, start + rec.payload_size());
    next_sequence_ = std::max(next_sequence_, rec.sequence + 1);
    found = true;
  }
  if (!found) {
    // The tail records are of another subtype: resume from stream time
    // alone (ceil keeps the next stamp at or after t_last).
    start_sample_ = static_cast<std::uint64_t>(std::ceil(t_last * rate_));
  }
}

void AudioSegmentArchiver::push(std::span<const float> samples) {
  std::size_t pos = 0;
  while (pos < samples.size()) {
    const std::size_t n = std::min(samples.size() - pos,
                                   record_samples_ - pending_.size());
    pending_.insert(pending_.end(),
                    samples.begin() + static_cast<std::ptrdiff_t>(pos),
                    samples.begin() + static_cast<std::ptrdiff_t>(pos + n));
    pos += n;
    if (pending_.size() == record_samples_) flush_record();
  }
}

void AudioSegmentArchiver::finish() {
  if (!pending_.empty()) flush_record();
}

void AudioSegmentArchiver::flush_record() {
  const std::size_t n = pending_.size();
  Record rec = Record::data(kSubtypeAudio, std::move(pending_));
  rec.sequence = next_sequence_++;
  rec.set_attr(kAttrSampleRate, rate_);
  rec.set_attr(kAttrStartSample, static_cast<std::int64_t>(start_sample_));
  log_.append(rec, static_cast<double>(start_sample_) / rate_);
  start_sample_ += n;
  archived_ += n;
  // Take the payload buffer back from the appended record: steady-state
  // archiving then recycles one allocation instead of making one per record.
  pending_ = std::move(std::get<FloatVec>(rec.payload));
  pending_.clear();
}

}  // namespace dynriver::river
