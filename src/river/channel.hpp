// Record channels: the links between pipeline segments.
//
// A channel moves records between segments that may live on different
// threads or hosts. InProcessChannel is a bounded MPMC queue providing
// backpressure; LossyChannel wraps another channel and injects faults
// (drops the connection after N records) to exercise BadCloseScope recovery.
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <memory>
#include <optional>

#include "common/thread_annotations.hpp"
#include "river/record.hpp"

namespace dynriver::river {

/// Result of a receive operation.
enum class RecvStatus : std::uint8_t {
  kRecord,        ///< a record was received
  kClosed,        ///< the channel was closed cleanly by the sender
  kDisconnected,  ///< the connection died without a clean close
  kTimeout,       ///< recv_for() deadline expired with no record
};

/// Abstract bidirectional-agnostic record link. Senders call `send` and then
/// either `close` (clean end-of-stream) or drop the channel (abnormal).
class RecordChannel {
 public:
  virtual ~RecordChannel() = default;

  /// Blocking send. Returns false when the peer is gone.
  virtual bool send(Record rec) = 0;

  /// Blocking receive.
  virtual RecvStatus recv(Record& out) = 0;

  /// Receive with a deadline. Channels that cannot wait with a timeout run
  /// a plain blocking receive instead (and therefore never return kTimeout).
  virtual RecvStatus recv_for(Record& out, int timeout_ms) {
    (void)timeout_ms;
    return recv(out);
  }

  /// Clean end-of-stream from the sending side.
  virtual void close() = 0;

  /// Abnormal termination (simulates a dying host/segment).
  virtual void disconnect() = 0;
};

/// Bounded in-process MPMC channel with blocking semantics.
class InProcessChannel final : public RecordChannel {
 public:
  explicit InProcessChannel(std::size_t capacity = 256);

  bool send(Record rec) override;
  RecvStatus recv(Record& out) override;
  RecvStatus recv_for(Record& out, int timeout_ms) override;
  void close() override;
  void disconnect() override;

  [[nodiscard]] std::size_t size() const;

 private:
  mutable common::Mutex mu_;
  common::CondVar cv_send_;
  common::CondVar cv_recv_;
  std::deque<Record> queue_ DR_GUARDED_BY(mu_);
  std::size_t capacity_;  ///< immutable after construction
  bool closed_ DR_GUARDED_BY(mu_) = false;
  bool disconnected_ DR_GUARDED_BY(mu_) = false;
};

/// Fault-injection wrapper: forwards to an inner channel but abnormally
/// disconnects after `fail_after` records have been sent.
class LossyChannel final : public RecordChannel {
 public:
  LossyChannel(std::shared_ptr<RecordChannel> inner, std::size_t fail_after);

  bool send(Record rec) override;
  RecvStatus recv(Record& out) override;
  void close() override;
  void disconnect() override;

  [[nodiscard]] std::size_t sent() const { return sent_; }
  [[nodiscard]] bool failed() const { return failed_; }

 private:
  std::shared_ptr<RecordChannel> inner_;
  std::size_t fail_after_;
  std::size_t sent_ = 0;
  bool failed_ = false;
};

}  // namespace dynriver::river
