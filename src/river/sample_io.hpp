// Sample sources and ensemble sinks: the adapter layer around streaming
// extraction sessions.
//
// A SampleSource yields raw amplitude samples chunk by chunk — from a WAV
// file, a live record channel (TCP), a record log, or any callback — with
// O(chunk) memory, so days of audio never need to fit in RAM. An
// EnsembleSink consumes extracted ensembles as they close. Drivers
// (core::run_stream) pump source -> StreamSession -> sink; every adapter
// here is also usable standalone.
//
// The Ensemble value type itself lives here (core::Ensemble is an alias):
// it is stream-model vocabulary — sinks persist it as scoped record
// streams, channels ship it between hosts — and defining it below core
// keeps the adapter layer free of extraction dependencies.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "dsp/wav.hpp"
#include "river/channel.hpp"
#include "river/record.hpp"
#include "river/record_log.hpp"

namespace dynriver::river {

/// One extracted ensemble: a contiguous stretch of the original signal where
/// the trigger was active.
struct Ensemble {
  std::size_t start_sample = 0;
  std::vector<float> samples;

  [[nodiscard]] std::size_t end_sample() const {
    return start_sample + samples.size();
  }
  [[nodiscard]] std::size_t length() const { return samples.size(); }
};

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// Pull-side of a sample stream. Implementations must be cheap to call with
/// any chunk size, including 1 sample.
class SampleSource {
 public:
  virtual ~SampleSource() = default;

  /// Fill up to out.size() samples; returns the count produced, 0 at end of
  /// stream. A short read is NOT end of stream — only 0 is.
  [[nodiscard]] virtual std::size_t read(std::span<float> out) = 0;

  /// Sample rate of the stream, 0 when unknown (e.g. no clip scope seen yet).
  [[nodiscard]] virtual double sample_rate() const = 0;
};

/// Whole buffer already in memory (batch wrappers, tests).
class BufferSource final : public SampleSource {
 public:
  explicit BufferSource(std::span<const float> samples, double sample_rate = 0.0)
      : samples_(samples), rate_(sample_rate) {}

  [[nodiscard]] std::size_t read(std::span<float> out) override;
  [[nodiscard]] double sample_rate() const override { return rate_; }

 private:
  std::span<const float> samples_;
  double rate_;
  std::size_t pos_ = 0;
};

/// Wraps any chunk-producing callable (synthesis loops, decoders, ...). The
/// callable fills the span it is given and returns the sample count; 0 ends
/// the stream.
class FunctionSource final : public SampleSource {
 public:
  using Fn = std::function<std::size_t(std::span<float>)>;
  FunctionSource(Fn fn, double sample_rate)
      : fn_(std::move(fn)), rate_(sample_rate) {}

  [[nodiscard]] std::size_t read(std::span<float> out) override {
    return fn_(out);
  }
  [[nodiscard]] double sample_rate() const override { return rate_; }

 private:
  Fn fn_;
  double rate_;
};

/// Streams a WAV file through dsp::WavStreamReader with O(chunk) memory;
/// multi-channel files are averaged to mono (same values as read_wav +
/// to_mono).
class WavFileSource final : public SampleSource {
 public:
  explicit WavFileSource(const std::filesystem::path& path) : reader_(path) {}

  [[nodiscard]] std::size_t read(std::span<float> out) override {
    return reader_.read_mono(out);
  }
  [[nodiscard]] double sample_rate() const override {
    return static_cast<double>(reader_.sample_rate());
  }
  [[nodiscard]] const dsp::WavStreamReader& reader() const { return reader_; }

 private:
  dsp::WavStreamReader reader_;
};

/// Base for sources that scan a scoped record stream for audio payloads:
/// Data records of `subtype` supply samples, clip OpenScope records supply
/// the sample rate, everything else is skipped. At most one record payload
/// is buffered at a time.
class RecordSampleSource : public SampleSource {
 public:
  [[nodiscard]] std::size_t read(std::span<float> out) final;
  [[nodiscard]] double sample_rate() const final { return rate_; }

  /// False once the stream ended without a clean close (peer died).
  [[nodiscard]] bool clean() const { return !lost_; }
  [[nodiscard]] bool exhausted() const { return done_; }
  [[nodiscard]] std::size_t records_in() const { return records_in_; }

 protected:
  explicit RecordSampleSource(std::uint32_t subtype = kSubtypeAudio)
      : subtype_(subtype) {}

  enum class Next : std::uint8_t {
    kRecord,  ///< `rec` holds the next record
    kEnd,     ///< clean end of stream
    kLost,    ///< abnormal end (disconnect, torn log, ...)
  };
  [[nodiscard]] virtual Next next_record(Record& rec) = 0;

  /// Fill `pending` with the samples of the next matching audio record
  /// (skipping non-audio records, learning the rate on the way) or report
  /// the end of the stream. The base implementation materializes Records via
  /// next_record(); sources with an allocation-free decode path (the segment
  /// store) override it to fill `pending` in place, reusing its capacity,
  /// so steady-state replay performs no per-record heap allocation.
  /// Overrides must bump records_in_ per record visited and update rate_
  /// exactly like the base version.
  [[nodiscard]] virtual Next next_audio(FloatVec& pending);

  [[nodiscard]] std::uint32_t subtype() const { return subtype_; }

  double rate_ = 0.0;
  std::size_t records_in_ = 0;

 private:
  std::uint32_t subtype_;
  FloatVec pending_;
  std::size_t pending_pos_ = 0;
  bool done_ = false;
  bool lost_ = false;
};

/// Pulls audio records from a RecordChannel — in-process or TCP — so a
/// session downstream extracts while the upstream is still sending.
class RecordChannelSource final : public RecordSampleSource {
 public:
  explicit RecordChannelSource(std::shared_ptr<RecordChannel> channel,
                               std::uint32_t subtype = kSubtypeAudio)
      : RecordSampleSource(subtype), channel_(std::move(channel)) {}

 private:
  [[nodiscard]] Next next_record(Record& rec) override;

  std::shared_ptr<RecordChannel> channel_;
};

/// Replays the audio records of a log file (the paper's "data feed").
class RecordLogSource final : public RecordSampleSource {
 public:
  explicit RecordLogSource(const std::filesystem::path& path,
                           std::uint32_t subtype = kSubtypeAudio)
      : RecordSampleSource(subtype), reader_(path) {}

 private:
  [[nodiscard]] Next next_record(Record& rec) override;

  RecordLogReader reader_;
};

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// Push-side consumer of extracted ensembles.
class EnsembleSink {
 public:
  virtual ~EnsembleSink() = default;

  /// One completed ensemble (emitted as soon as its trigger closes).
  virtual void accept(Ensemble ensemble) = 0;

  /// End of the stream; default: nothing to flush.
  virtual void finish() {}
};

/// Drops every ensemble (score-only consumers, soak tests).
class NullEnsembleSink final : public EnsembleSink {
 public:
  void accept(Ensemble) override {}
};

/// Invokes a callable per ensemble.
class CallbackEnsembleSink final : public EnsembleSink {
 public:
  using Fn = std::function<void(Ensemble)>;
  explicit CallbackEnsembleSink(Fn fn) : fn_(std::move(fn)) {}

  void accept(Ensemble ensemble) override { fn_(std::move(ensemble)); }

 private:
  Fn fn_;
};

/// Accumulates ensembles in memory (batch wrappers, tests).
class CollectingEnsembleSink final : public EnsembleSink {
 public:
  void accept(Ensemble ensemble) override {
    ensembles.push_back(std::move(ensemble));
  }

  std::vector<Ensemble> ensembles;
};

/// The scoped record stream of one ensemble:
///   OpenScope(kScopeEnsemble; ensemble_id, start_sample, num_samples,
///   sample_rate attrs) , Data(subtype audio) , CloseScope.
[[nodiscard]] std::vector<Record> ensemble_to_records(const Ensemble& ensemble,
                                                      std::uint64_t ensemble_id,
                                                      double sample_rate);

/// Persists each ensemble to a record log as its scoped record stream
/// (durable archive of the ~20% of the stream worth keeping).
class RecordLogEnsembleSink final : public EnsembleSink {
 public:
  RecordLogEnsembleSink(const std::filesystem::path& path, double sample_rate,
                        LogOpenMode mode = LogOpenMode::kTruncate)
      : writer_(path, mode), sample_rate_(sample_rate) {}

  void accept(Ensemble ensemble) override;
  void finish() override { writer_.close(); }

  [[nodiscard]] std::size_t ensembles_written() const { return next_id_; }

 private:
  RecordLogWriter writer_;
  double sample_rate_;
  std::uint64_t next_id_ = 0;
};

/// Ships each ensemble into a RecordChannel as its scoped record stream
/// (live hand-off to a downstream host); closes the channel on finish()
/// when `close_on_finish`.
class ChannelEnsembleSink final : public EnsembleSink {
 public:
  ChannelEnsembleSink(std::shared_ptr<RecordChannel> channel, double sample_rate,
                      bool close_on_finish = true)
      : channel_(std::move(channel)),
        sample_rate_(sample_rate),
        close_on_finish_(close_on_finish) {}

  void accept(Ensemble ensemble) override;
  void finish() override {
    if (close_on_finish_) channel_->close();
  }

  /// Records the channel refused (peer gone).
  [[nodiscard]] std::size_t dropped() const { return dropped_; }

 private:
  std::shared_ptr<RecordChannel> channel_;
  double sample_rate_;
  bool close_on_finish_;
  std::uint64_t next_id_ = 0;
  std::size_t dropped_ = 0;
};

}  // namespace dynriver::river
