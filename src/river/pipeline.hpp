// Pipeline: an ordered chain of operators with push semantics.
//
// Records pushed into the pipeline flow through every operator in order; each
// operator's emissions feed the next. `finish()` flushes operators front to
// back so buffered records still traverse the rest of the chain.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "river/operator.hpp"

namespace dynriver::river {

class Pipeline {
 public:
  Pipeline() = default;

  /// Append an operator to the end of the chain. Returns *this for chaining.
  Pipeline& add(OperatorPtr op);

  /// Construct-and-append convenience.
  template <typename Op, typename... Args>
  Pipeline& emplace(Args&&... args) {
    return add(std::make_unique<Op>(std::forward<Args>(args)...));
  }

  /// Push one record through the whole chain; outputs reach `sink`.
  void push(Record rec, Emitter& sink);

  /// Push a batch of records.
  void push_all(std::vector<Record> recs, Emitter& sink);

  /// Signal end-of-stream: flush every operator in order.
  void finish(Emitter& sink);

  [[nodiscard]] std::size_t size() const { return ops_.size(); }
  [[nodiscard]] bool empty() const { return ops_.empty(); }

  /// Operator names front to back, e.g. for printing the Fig. 5 topology.
  [[nodiscard]] std::vector<std::string> topology() const;

  /// Access for tests and the pipeline manager.
  [[nodiscard]] Operator& at(std::size_t i);

  /// Remove all operators (used when relocating a segment).
  std::vector<OperatorPtr> release_operators();

 private:
  void run_from(std::size_t stage, Record rec, Emitter& sink);

  std::vector<OperatorPtr> ops_;
};

/// Run a full record stream through a pipeline and collect the output.
[[nodiscard]] std::vector<Record> run_pipeline(Pipeline& pipeline,
                                               std::vector<Record> input);

}  // namespace dynriver::river
