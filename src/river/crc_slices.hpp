// Slicing-by-8 CRC kernels shared by the wire format (CRC-32, IEEE 802.3)
// and the segment store (CRC-32C, Castagnoli).
//
// The classic one-table CRC walks a byte at a time through a serial
// table[crc ^ byte] dependency chain and tops out well under 0.5 GB/s —
// which made the checksum, not the disk, the bottleneck of archive replay
// (decoding one 3.6 KB audio frame spent ~10 us in crc32 alone). The
// slicing-by-N construction (Intel, 2006) processes 8 bytes per step
// through 8 derived tables whose lookups are independent, so the chain
// shortens 8x and the kernel runs at memory-ish speed on any CPU — no
// intrinsics, no alignment requirements, bit-identical results.
//
// Internal header: include from .cpp files only.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>

namespace dynriver::river::detail {

/// Slicing-by-8 engine for a reflected CRC-32 with polynomial `Poly`.
/// update() takes and returns the *raw* (pre/post-inversion already applied
/// by the caller) CRC state, so it drops into the usual
/// `crc = update(seed ^ ~0, ...) ^ ~0` wrappers unchanged.
template <std::uint32_t Poly>
class CrcSlices {
 public:
  [[nodiscard]] static std::uint32_t update(std::uint32_t crc,
                                            const std::uint8_t* data,
                                            std::size_t len) {
    const Tables& t = tables();
    while (len >= 8) {
      std::uint32_t lo;
      std::uint32_t hi;
      std::memcpy(&lo, data, 4);
      std::memcpy(&hi, data + 4, 4);
      crc ^= lo;
      crc = t.slice[7][crc & 0xFFu] ^ t.slice[6][(crc >> 8) & 0xFFu] ^
            t.slice[5][(crc >> 16) & 0xFFu] ^ t.slice[4][crc >> 24] ^
            t.slice[3][hi & 0xFFu] ^ t.slice[2][(hi >> 8) & 0xFFu] ^
            t.slice[1][(hi >> 16) & 0xFFu] ^ t.slice[0][hi >> 24];
      data += 8;
      len -= 8;
    }
    for (std::size_t i = 0; i < len; ++i) {
      crc = t.slice[0][(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
    }
    return crc;
  }

 private:
  struct Tables {
    std::array<std::array<std::uint32_t, 256>, 8> slice;
  };

  static const Tables& tables() {
    static const Tables t = [] {
      Tables out{};
      for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k) {
          c = (c & 1u) != 0 ? Poly ^ (c >> 1) : (c >> 1);
        }
        out.slice[0][i] = c;
      }
      // slice[k][i] advances the CRC by the byte i followed by k zero bytes:
      // one step of the base table applied to the previous slice.
      for (std::size_t k = 1; k < 8; ++k) {
        for (std::uint32_t i = 0; i < 256; ++i) {
          const std::uint32_t prev = out.slice[k - 1][i];
          out.slice[k][i] = out.slice[0][prev & 0xFFu] ^ (prev >> 8);
        }
      }
      return out;
    }();
    return t;
  }
};

/// NOTE: little-endian only, like the rest of the wire/storage layer (the
/// 8-byte step folds two 32-bit loads in LE byte order).
static_assert(sizeof(std::uint32_t) == 4);

}  // namespace dynriver::river::detail
