// Operator interfaces for Dynamic River pipelines.
//
// A pipeline is a sequential set of operations composed between a data source
// and its final sink (paper, Section 2). Operators are push-based: each
// receives records and emits zero or more records downstream through an
// Emitter. `flush` signals the end of the stream so stateful operators can
// drain buffered work.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "river/record.hpp"

namespace dynriver::river {

/// Downstream sink handed to an operator during processing.
class Emitter {
 public:
  virtual ~Emitter() = default;
  virtual void emit(Record rec) = 0;
};

/// Emitter that appends to a vector; convenient for tests and batch drivers.
class VectorEmitter final : public Emitter {
 public:
  void emit(Record rec) override { records.push_back(std::move(rec)); }
  std::vector<Record> records;
};

/// Emitter that invokes a callback; used to chain operators.
class CallbackEmitter final : public Emitter {
 public:
  explicit CallbackEmitter(std::function<void(Record)> fn) : fn_(std::move(fn)) {}
  void emit(Record rec) override { fn_(std::move(rec)); }

 private:
  std::function<void(Record)> fn_;
};

/// Emitter that drops everything (sink terminators).
class NullEmitter final : public Emitter {
 public:
  void emit(Record) override {}
};

/// Base class for all pipeline operators.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Process one record; emit any number of output records.
  virtual void process(Record rec, Emitter& out) = 0;

  /// End-of-stream: drain buffered state. Default: nothing to drain.
  virtual void flush(Emitter& out) { (void)out; }

  /// Stable operator name used in diagnostics and topology printouts.
  [[nodiscard]] virtual std::string_view name() const = 0;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Adapter turning a callable into an operator (for small glue stages).
class LambdaOperator final : public Operator {
 public:
  using Fn = std::function<void(Record, Emitter&)>;
  LambdaOperator(std::string name, Fn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  void process(Record rec, Emitter& out) override { fn_(std::move(rec), out); }
  [[nodiscard]] std::string_view name() const override { return name_; }

 private:
  std::string name_;
  Fn fn_;
};

}  // namespace dynriver::river
