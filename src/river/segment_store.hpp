// Archive-scale segment store for record streams.
//
// The flat RecordLog is right for one clip or one session's readout; an
// archive of months of hydrophone audio needs structure. SegmentedRecordLog
// rotates a record stream (each record stamped with a stream time) into
// immutable *sealed* segments plus one append-only *active* segment:
//
//   store directory
//   ├── MANIFEST            atomic snapshot of the sealed segment list
//   ├── seg-000000.drs      sealed: payload + sparse time index + footer
//   ├── seg-000001.drs      sealed
//   └── seg-000002.drs      active: payload only, growing
//
// Segment file layout (all integers little-endian):
//   header   magic 'DRSG' u32 | version u16 | flags u16            (8 bytes)
//   payload  N x envelope: len u32 | t f64 | wire frame (len bytes)
//   -- sealing appends --
//   index    M x entry: t f64 | file offset u64  (sparse, ~1/64 KiB)
//   footer   frames u64 | payload_end u64 | index_count u32 |
//            version u16 | flags u16 | t_min f64 | t_max f64 |
//            payload_crc u32 | footer_crc u32 | magic 'DRSF' u32   (52 bytes)
//
// payload_crc is CRC32C over the whole envelope region; footer_crc covers
// the index region plus the footer up to itself, so every byte after the
// 8-byte header is checksummed. Readers locate the footer at EOF - 52.
//
// Guarantees:
//   - seek(t0, t1) is O(log segments) manifest search + one index probe +
//     a bounded scan; only segments overlapping [t0, t1) are ever opened.
//   - Readers are safe concurrently with the writer's append/seal: they
//     see the sealed list through the atomically-renamed MANIFEST plus a
//     bounded snapshot of the active tail (complete frames only; in-flight
//     bytes surface as a torn tail, exactly like a flat log mid-write).
//     Cursors also retry a segment's temp name, so an in-flight compaction
//     rename cannot fail them spuriously. retire_before()/compact() DELETE
//     files, however: a cursor opened before such a call may fail once a
//     file its snapshot references is gone — re-seek afterwards.
//   - Crash recovery on reopen adopts any sealed-but-unmanifested segment,
//     rolls forward an interrupted compaction, truncates the active
//     segment to its valid prefix and seals what survived — all with
//     bounded memory.
#pragma once

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"
#include "river/record.hpp"
#include "river/sample_io.hpp"
#include "river/wire.hpp"

namespace dynriver::river::detail {
class SegmentPrefetcher;
}  // namespace dynriver::river::detail

namespace dynriver::river {

/// CRC-32C (Castagnoli polynomial, reflected — the storage-grade CRC with
/// better burst detection than IEEE 802.3). Chainable via `seed`.
[[nodiscard]] std::uint32_t crc32c(const std::uint8_t* data, std::size_t len,
                                   std::uint32_t seed = 0);

inline constexpr std::uint32_t kSegmentMagic = 0x44525347;        // "DRSG"
inline constexpr std::uint32_t kSegmentFooterMagic = 0x44525346;  // "DRSF"
inline constexpr std::uint16_t kSegmentVersion = 1;
inline constexpr std::size_t kSegmentHeaderBytes = 8;
inline constexpr std::size_t kSegmentFooterBytes = 52;
inline constexpr std::size_t kEnvelopeHeaderBytes = 12;  // len u32 + t f64
/// Upper bound on one wire frame inside a segment; a larger length field in
/// an envelope header is treated as corruption, bounding recovery memory.
inline constexpr std::uint32_t kMaxSegmentFrameBytes = 1u << 30;

struct SegmentStoreOptions {
  /// Seal the active segment once its payload reaches this size.
  std::uint64_t max_segment_bytes = 8ull << 20;
  /// Also seal once the active segment spans this much stream time
  /// (0 disables time-based rotation).
  double max_segment_seconds = 0.0;
  /// Sparse index granularity: one entry per this many payload bytes.
  std::uint64_t index_every_bytes = 64ull << 10;
  /// fsync each segment on seal and the manifest on every rewrite.
  bool sync_on_seal = true;
  /// Encode float payloads through the bit-packing codec (river/bitpack.hpp)
  /// on append: lossless — replay is bit-identical — and typically 3-5x
  /// smaller for ADC-quantized audio. Packed and raw frames interleave
  /// freely within one store, so reopening an old raw store with packing
  /// on (or vice versa) simply yields a mixed store every reader handles.
  bool pack_payloads = false;
};

/// Knobs for SegmentedRecordLog::Maintenance.
struct MaintenanceOptions {
  /// Seconds between maintenance cycles (lower bound; budget can stretch it).
  double interval_seconds = 1.0;
  /// Drop sealed segments ending more than this many seconds before the
  /// newest appended record (0 disables retention).
  double retain_seconds = 0.0;
  /// Merge adjacent sealed segments smaller than this (0 disables
  /// compaction).
  std::uint64_t compact_min_bytes = 0;
  /// At most this many segments merge per compaction pass, bounding how
  /// long one cycle holds the log's lock.
  std::size_t compact_max_run = 8;
  /// Average maintenance I/O throughput cap in bytes/second: after a cycle
  /// that retired or merged N bytes, sleep at least N / budget seconds
  /// before the next one (0 = unthrottled).
  std::uint64_t budget_bytes_per_sec = 0;
};

/// One segment as listed by the manifest (sealed) or observed live (active).
struct SegmentInfo {
  std::string name;            ///< file name within the store directory
  std::uint64_t frames = 0;    ///< record count (sealed only)
  std::uint64_t bytes = 0;     ///< payload bytes (header excluded)
  double t_min = 0.0;          ///< stream time of the first record
  double t_max = 0.0;          ///< stream time of the last record
  std::uint32_t payload_crc = 0;
  bool sealed = false;
};

/// Rotating writer: appends time-stamped records, seals segments by
/// size/time, maintains the manifest, recovers from crashes on reopen.
/// Stream time must be non-decreasing across appends.
///
/// All public methods are serialized by an internal mutex, so a Maintenance
/// thread (or any other thread) may run retire_before()/compact() while the
/// owning thread keeps appending.
class SegmentedRecordLog {
 public:
  explicit SegmentedRecordLog(const std::filesystem::path& dir,
                              SegmentStoreOptions options = {});
  ~SegmentedRecordLog();
  SegmentedRecordLog(const SegmentedRecordLog&) = delete;
  SegmentedRecordLog& operator=(const SegmentedRecordLog&) = delete;

  /// Append one record at stream time `t` (seconds, non-decreasing).
  void append(const Record& rec, double t);

  /// Flush + fsync the active segment: everything appended so far survives
  /// process death (readers may then tail it torn-free).
  void sync();

  /// Seal the active segment now (no-op when it is empty): write its index
  /// and footer, fsync, and publish it in the manifest.
  void seal_active();

  /// Seal and stop. Throws if buffered bytes could not be made durable.
  /// The destructor closes best-effort instead.
  void close();

  /// Retention: drop sealed segments whose whole span ends before `t`.
  /// Returns the number of segments removed.
  std::size_t retire_before(double t);

  /// Compaction: merge adjacent runs of sealed segments smaller than
  /// `min_bytes` into single segments (raw envelope copy — frames are not
  /// re-encoded). Seals the active segment first so the merged segment
  /// never takes the live file's name. At most `max_run` segments join one
  /// merged segment. Returns the net number of segments eliminated.
  std::size_t compact(std::uint64_t min_bytes,
                      std::size_t max_run = std::numeric_limits<std::size_t>::max());

  [[nodiscard]] std::size_t records_written() const;
  /// Complete frames preserved from a torn active segment on reopen.
  [[nodiscard]] std::size_t recovered_records() const;
  /// Stream time of the newest appended record (-inf when none yet).
  [[nodiscard]] double last_time() const;
  /// Sealed segments (manifest order) plus the active one, if any.
  [[nodiscard]] std::vector<SegmentInfo> segments() const;
  [[nodiscard]] const std::filesystem::path& directory() const { return dir_; }

  /// Hands-off background maintenance: owns a thread that periodically
  /// applies retention and compaction to the log, throttled to an average
  /// byte budget so archive housekeeping cannot starve the live writer.
  /// Construct after the log, destroy (or stop()) before closing it.
  class Maintenance {
   public:
    Maintenance(SegmentedRecordLog& log, MaintenanceOptions options);
    ~Maintenance();
    Maintenance(const Maintenance&) = delete;
    Maintenance& operator=(const Maintenance&) = delete;

    /// Counters across all cycles so far (readable while running).
    struct Stats {
      std::size_t cycles = 0;
      std::size_t segments_retired = 0;
      std::size_t segments_merged = 0;     ///< net segments eliminated
      std::uint64_t bytes_processed = 0;   ///< retired + rewritten payload
    };
    [[nodiscard]] Stats stats() const;

    /// Finish the in-flight cycle, if any, and join the thread. Idempotent;
    /// the destructor calls it.
    void stop();

   private:
    void run();

    SegmentedRecordLog& log_;
    MaintenanceOptions options_;
    mutable common::Mutex mu_;
    common::CondVar cv_;
    Stats stats_ DR_GUARDED_BY(mu_);
    bool stop_ DR_GUARDED_BY(mu_) = false;
    std::thread thread_;  ///< started in ctor, joined in stop() only
  };

 private:
  struct ActiveSegment {
    std::FILE* file = nullptr;
    std::uint64_t index = 0;  ///< numeric suffix of the file name
    std::uint64_t frames = 0;
    std::uint64_t payload_bytes = 0;
    double t_min = 0.0;
    double t_max = 0.0;
    std::uint32_t crc = 0;
    std::uint64_t last_index_bytes = 0;
    std::vector<std::pair<double, std::uint64_t>> index_entries;
  };

  void open_active() DR_REQUIRES(mu_);
  void write_manifest() const DR_REQUIRES(mu_);
  void recover() DR_REQUIRES(mu_);
  // _locked variants hold mu_ (public wrappers acquire it); they exist so
  // internal callers — compact seals first, close seals — never re-lock.
  void seal_active_locked() DR_REQUIRES(mu_);
  std::size_t retire_before_locked(double t, std::uint64_t* bytes_dropped)
      DR_REQUIRES(mu_);
  std::size_t compact_locked(std::uint64_t min_bytes, std::size_t max_run,
                             std::uint64_t* bytes_rewritten) DR_REQUIRES(mu_);

  mutable common::Mutex mu_;
  std::filesystem::path dir_;
  SegmentStoreOptions options_;
  std::vector<SegmentInfo> sealed_ DR_GUARDED_BY(mu_);
  ActiveSegment active_ DR_GUARDED_BY(mu_);
  std::uint64_t next_index_ DR_GUARDED_BY(mu_) = 0;
  double last_t_ DR_GUARDED_BY(mu_) =
      -std::numeric_limits<double>::infinity();
  std::size_t written_ DR_GUARDED_BY(mu_) = 0;
  std::size_t recovered_ DR_GUARDED_BY(mu_) = 0;
  bool closed_ DR_GUARDED_BY(mu_) = false;
};

/// Read-only snapshot view of a store, safe concurrently with a writer.
class SegmentStoreReader {
 public:
  explicit SegmentStoreReader(const std::filesystem::path& dir);

  /// Sealed segments (manifest order), plus the active segment if present
  /// on disk (bytes = current size, frames unknown until sealed).
  [[nodiscard]] std::vector<SegmentInfo> segments() const;

  /// Files opened by cursors of this reader so far — pinned by tests to
  /// prove seek() touches only segments overlapping the requested range.
  [[nodiscard]] std::size_t segments_opened() const { return opened_; }

  /// Full integrity check of every sealed segment (header, footer, index
  /// bounds, payload CRC32C), streamed in bounded chunks. Returns false and
  /// fills `error` on the first mismatch.
  [[nodiscard]] bool verify(std::string* error = nullptr) const;

  /// Streaming cursor over one seek() range.
  class Cursor {
   public:
    /// Next record with stream time in [t0, t1); false at end of range.
    /// A torn active tail ends the cursor cleanly with torn() set; sealed
    /// segment damage throws WireError (verify() pinpoints it).
    [[nodiscard]] bool next(Record& out);

    /// Allocation-free variant: `out` borrows the cursor's internal frame
    /// buffer and decode scratch, both valid only until the next call.
    /// Same end-of-range / torn / throw behavior as next().
    [[nodiscard]] bool next_view(RecordView& out);

    /// Stream time of the record last returned by next().
    [[nodiscard]] double time() const { return time_; }
    [[nodiscard]] bool torn() const { return torn_; }
    [[nodiscard]] std::size_t lost_bytes() const { return lost_bytes_; }
    /// Envelopes visited, including index-to-t0 skips — pinned by tests to
    /// prove the scan after an index probe is bounded.
    [[nodiscard]] std::size_t frames_scanned() const { return scanned_; }

   private:
    friend class SegmentStoreReader;
    Cursor(SegmentStoreReader* store, double t0, double t1)
        : store_(store), t0_(t0), t1_(t1) {}
    bool open_next_segment();
    bool fetch_frame(std::uint32_t& len_out);
    void commit_frame(std::uint32_t len);
    [[nodiscard]] bool fail_torn();

    SegmentStoreReader* store_;
    double t0_;
    double t1_;
    bool positioned_ = false;
    std::vector<std::uint8_t> frame_buf_;
    WireScratch scratch_;
    std::size_t seg_i_ = 0;       ///< next sealed segment to consider
    bool tried_active_ = false;
    bool in_active_ = false;
    bool done_ = false;
    bool torn_ = false;
    std::ifstream file_;
    std::uint64_t pos_ = 0;
    std::uint64_t end_ = 0;       ///< payload end of the current segment
    double time_ = 0.0;
    double pending_t_ = 0.0;      ///< time of the fetched-but-uncommitted frame
    std::size_t lost_bytes_ = 0;
    std::size_t scanned_ = 0;
  };

  /// Cursor over records with stream time in [t0, t1). O(log n) over the
  /// manifest, one sparse-index probe in the first overlapping segment,
  /// then a bounded forward scan. The cursor must not outlive the reader.
  [[nodiscard]] Cursor seek(double t0,
                            double t1 = std::numeric_limits<double>::infinity());

  [[nodiscard]] const std::filesystem::path& directory() const { return dir_; }

 private:
  friend class SegmentStoreSource;  // prefetched replay keeps opened_ honest

  std::filesystem::path dir_;
  std::vector<SegmentInfo> sealed_;
  std::string active_name_;  ///< empty when no active segment exists
  std::size_t opened_ = 0;
};

/// How SegmentStoreSource replays a store.
struct ReplayOptions {
  double t0 = 0.0;
  double t1 = std::numeric_limits<double>::infinity();
  std::uint32_t subtype = kSubtypeAudio;
  /// Overlap disk reads with decode: a background thread loads segment
  /// payload windows one segment ahead of the consumer (double-buffered,
  /// joined cleanly however early the replay stops). Decoding then runs
  /// in-memory and allocation-free per frame.
  bool prefetch = true;
};

/// Replays a time range of a segment store as a sample stream: drop it into
/// run_stream / SessionScheduler and a month of archive re-extracts through
/// the same sessions that serve live traffic.
class SegmentStoreSource final : public RecordSampleSource {
 public:
  explicit SegmentStoreSource(
      const std::filesystem::path& dir, double t0 = 0.0,
      double t1 = std::numeric_limits<double>::infinity(),
      std::uint32_t subtype = kSubtypeAudio);
  SegmentStoreSource(const std::filesystem::path& dir, ReplayOptions options);
  ~SegmentStoreSource() override;

  [[nodiscard]] const SegmentStoreReader& reader() const { return *reader_; }

 private:
  [[nodiscard]] Next next_record(Record& rec) override;
  [[nodiscard]] Next next_audio(FloatVec& pending) override;
  [[nodiscard]] Next next_audio_prefetched(FloatVec& pending);
  /// Shared skip/match logic of both replay paths: bumps records_in_,
  /// learns the rate, fills `pending` (capacity reused) on an audio match.
  [[nodiscard]] bool classify_view(const RecordView& view, FloatVec& pending);

  std::unique_ptr<SegmentStoreReader> reader_;
  SegmentStoreReader::Cursor cursor_;
  ReplayOptions options_;
  // Prefetched-path state: the current in-memory window and parse offset.
  std::unique_ptr<detail::SegmentPrefetcher> prefetcher_;
  std::vector<std::uint8_t> window_;
  std::uint64_t window_base_ = 0;  ///< file offset of window_[0]
  std::size_t window_pos_ = 0;
  bool window_active_ = false;     ///< window came from the active segment
  bool have_window_ = false;
  WireScratch scratch_;
};

/// Streams raw audio into a SegmentedRecordLog as self-describing records:
/// each Data record carries sample-rate and start-sample attributes and is
/// stamped with stream time start_sample / rate, so any time range replays
/// standalone. Chunking into `record_samples`-sized records is a storage
/// detail — extraction is bit-identical for any chunking.
///
/// Construction inspects the store and resumes after its existing contents
/// (sample clock and sequence continue where the last run stopped), so
/// repeated archive runs into one store append; a sample-rate mismatch with
/// the archived tail throws. Resuming seals the log's active segment.
class AudioSegmentArchiver {
 public:
  AudioSegmentArchiver(SegmentedRecordLog& log, double sample_rate,
                       std::size_t record_samples = 900);

  void push(std::span<const float> samples);
  /// Flush a partial trailing record. Does not close the log.
  void finish();

  [[nodiscard]] std::size_t samples_archived() const { return archived_; }
  /// Stream position of the next sample pushed; nonzero right after
  /// construction when the store already held audio (resume offset).
  [[nodiscard]] std::uint64_t next_start_sample() const {
    return start_sample_;
  }

 private:
  void flush_record();

  SegmentedRecordLog& log_;
  double rate_;
  std::size_t record_samples_;
  FloatVec pending_;
  std::uint64_t start_sample_ = 0;
  std::uint64_t next_sequence_ = 0;
  std::size_t archived_ = 0;
};

}  // namespace dynriver::river
