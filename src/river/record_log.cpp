#include "river/record_log.hpp"

#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <vector>

#include "common/checked.hpp"
#include "common/contracts.hpp"

namespace dynriver::river {

namespace checked = common::checked;

std::pair<std::uintmax_t, std::size_t> scan_log_valid_prefix(
    const std::filesystem::path& path) {
  // A failed scan must abort recovery, never masquerade as "no valid
  // frames": returning {0,0} here would make the caller truncate a log
  // whose contents it simply could not read.
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open record log for recovery scan: " +
                             path.string());
  }

  // Stream the file through an incremental decoder in bounded chunks: a
  // multi-GB log recovers with O(largest frame) memory, not O(file). The
  // decoder consumes complete frames as they arrive; at the stopping point
  // (end of file, torn tail, or a corrupt frame) whatever it still buffers
  // is exactly the invalid suffix.
  WireDecoder decoder;
  Record rec;
  std::uintmax_t fed = 0;
  std::size_t records = 0;
  std::array<char, 64 * 1024> chunk;
  bool corrupt = false;
  while (!corrupt) {
    in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    const auto n = in.gcount();
    if (n <= 0) break;
    decoder.feed(reinterpret_cast<const std::uint8_t*>(chunk.data()),
                 checked::narrow<std::size_t, std::runtime_error>(
                     n, "recovery scan chunk size"));
    fed += static_cast<std::uintmax_t>(n);
    try {
      while (decoder.next(rec)) ++records;
    } catch (const WireError&) {
      corrupt = true;  // frames from the damaged one onward are dropped
    }
  }
  if (!in.eof() && in.bad()) {
    throw std::runtime_error("record log recovery scan read failed: " +
                             path.string());
  }
  return {fed - decoder.buffered_bytes(), records};
}

RecordLogWriter::RecordLogWriter(const std::filesystem::path& path,
                                 LogOpenMode mode)
    : path_(path.string()) {
  if (mode == LogOpenMode::kRecover && std::filesystem::exists(path)) {
    const auto [valid_bytes, valid_records] = scan_log_valid_prefix(path);
    recovered_ = valid_records;
    if (valid_bytes < std::filesystem::file_size(path)) {
      std::filesystem::resize_file(path, valid_bytes);
    }
    out_ = std::fopen(path_.c_str(), "ab");
  } else {
    out_ = std::fopen(path_.c_str(), "wb");
  }
  if (out_ == nullptr) {
    throw std::runtime_error("cannot open record log for writing: " + path_);
  }
}

RecordLogWriter::~RecordLogWriter() {
  // Best-effort: flushes whatever libc buffered but cannot report failure.
  // Callers needing the durability guarantee use close()/sync().
  if (out_ != nullptr) {
    std::fclose(out_);
    out_ = nullptr;
  }
}

void RecordLogWriter::write(const Record& rec) {
  DR_EXPECTS(out_ != nullptr);
  const auto frame = encode_record(rec);
  if (std::fwrite(frame.data(), 1, frame.size(), out_) != frame.size()) {
    throw std::runtime_error("record log write failed: " + path_);
  }
  ++count_;
}

void RecordLogWriter::sync() {
  DR_EXPECTS(out_ != nullptr);
  if (std::fflush(out_) != 0) {
    throw std::runtime_error("record log flush failed: " + path_ + ": " +
                             std::strerror(errno));
  }
  if (::fsync(::fileno(out_)) != 0) {
    throw std::runtime_error("record log fsync failed: " + path_ + ": " +
                             std::strerror(errno));
  }
}

void RecordLogWriter::close() {
  if (out_ == nullptr) return;
  // fclose() flushes the stdio buffer; checking both results catches a
  // full disk that buffered writes sailed past.
  const bool flush_ok = std::fflush(out_) == 0;
  const bool close_ok = std::fclose(out_) == 0;
  out_ = nullptr;
  if (!flush_ok || !close_ok) {
    throw std::runtime_error("record log close failed (buffered frames lost): " +
                             path_);
  }
}

RecordLogReader::RecordLogReader(const std::filesystem::path& path)
    : in_(path, std::ios::binary) {
  if (!in_) {
    throw std::runtime_error("cannot open record log for reading: " +
                             path.string());
  }
}

bool RecordLogReader::next(Record& out) {
  while (true) {
    if (decoder_.next(out)) {
      ++count_;
      return true;
    }
    if (eof_) {
      if (decoder_.buffered_bytes() > 0 && !torn_) {
        // A trailing partial frame is the state kRecover tolerates — a
        // writer died (or is still) mid-frame. Report a clean end of the
        // complete prefix; the torn()/lost_bytes() accessors carry the
        // diagnosis. Structural corruption already threw out of next().
        torn_ = true;
        lost_bytes_ = decoder_.buffered_bytes();
      }
      return false;
    }
    std::array<char, 64 * 1024> chunk;
    in_.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    const auto n = in_.gcount();
    if (n > 0) {
      decoder_.feed(reinterpret_cast<const std::uint8_t*>(chunk.data()),
                    checked::narrow<std::size_t, std::runtime_error>(
                        n, "record log chunk size"));
    }
    if (in_.eof()) eof_ = true;
  }
}

std::size_t replay_log(const std::filesystem::path& path, Emitter& sink) {
  RecordLogReader reader(path);
  Record rec;
  std::size_t n = 0;
  while (reader.next(rec)) {
    sink.emit(std::move(rec));
    ++n;
  }
  return n;
}

}  // namespace dynriver::river
