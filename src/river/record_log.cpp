#include "river/record_log.hpp"

#include <array>
#include <vector>

#include "common/contracts.hpp"

namespace dynriver::river {

namespace {

/// Scan an existing log and return {valid_bytes, valid_records}: the prefix
/// that parses as complete frames. Anything past it — a torn tail from a
/// writer that died mid-frame, or a corrupted frame — is dropped, matching
/// write-ahead-log recovery semantics.
std::pair<std::uintmax_t, std::size_t> scan_valid_prefix(
    const std::filesystem::path& path) {
  // A failed scan must abort recovery, never masquerade as "no valid
  // frames": returning {0,0} here would make the caller truncate a log
  // whose contents it simply could not read.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    throw std::runtime_error("cannot open record log for recovery scan: " +
                             path.string());
  }
  const auto end_pos = in.tellg();
  if (end_pos < 0) {
    throw std::runtime_error("cannot size record log for recovery scan: " +
                             path.string());
  }
  const auto size = static_cast<std::size_t>(end_pos);
  in.seekg(0);
  std::vector<std::uint8_t> bytes(size);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(size));
  if (!in) {
    throw std::runtime_error("record log recovery scan read failed: " +
                             path.string());
  }

  std::size_t pos = 0;
  std::size_t records = 0;
  while (pos < size) {
    try {
      std::size_t consumed = 0;
      (void)decode_record(bytes.data() + pos, size - pos, consumed);
      pos += consumed;
      ++records;
    } catch (const WireError&) {
      break;
    }
  }
  return {pos, records};
}

}  // namespace

RecordLogWriter::RecordLogWriter(const std::filesystem::path& path,
                                 LogOpenMode mode) {
  if (mode == LogOpenMode::kRecover && std::filesystem::exists(path)) {
    const auto [valid_bytes, valid_records] = scan_valid_prefix(path);
    recovered_ = valid_records;
    if (valid_bytes < std::filesystem::file_size(path)) {
      std::filesystem::resize_file(path, valid_bytes);
    }
    out_.open(path, std::ios::binary | std::ios::app);
  } else {
    out_.open(path, std::ios::binary | std::ios::trunc);
  }
  if (!out_) {
    throw std::runtime_error("cannot open record log for writing: " +
                             path.string());
  }
}

void RecordLogWriter::write(const Record& rec) {
  const auto frame = encode_record(rec);
  out_.write(reinterpret_cast<const char*>(frame.data()),
             static_cast<std::streamsize>(frame.size()));
  if (!out_) throw std::runtime_error("record log write failed");
  ++count_;
}

void RecordLogWriter::close() {
  if (out_.is_open()) out_.close();
}

RecordLogReader::RecordLogReader(const std::filesystem::path& path)
    : in_(path, std::ios::binary) {
  if (!in_) {
    throw std::runtime_error("cannot open record log for reading: " +
                             path.string());
  }
}

bool RecordLogReader::next(Record& out) {
  while (true) {
    if (decoder_.next(out)) {
      ++count_;
      return true;
    }
    if (eof_) {
      if (decoder_.buffered_bytes() > 0) {
        throw WireError("record log ends with a partial frame");
      }
      return false;
    }
    std::array<char, 64 * 1024> chunk;
    in_.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    const auto n = in_.gcount();
    if (n > 0) {
      decoder_.feed(reinterpret_cast<const std::uint8_t*>(chunk.data()),
                    static_cast<std::size_t>(n));
    }
    if (in_.eof()) eof_ = true;
  }
}

std::size_t replay_log(const std::filesystem::path& path, Emitter& sink) {
  RecordLogReader reader(path);
  Record rec;
  std::size_t n = 0;
  while (reader.next(rec)) {
    sink.emit(std::move(rec));
    ++n;
  }
  return n;
}

}  // namespace dynriver::river
