#include "river/record_log.hpp"

#include <array>

#include "common/contracts.hpp"

namespace dynriver::river {

RecordLogWriter::RecordLogWriter(const std::filesystem::path& path)
    : out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_) {
    throw std::runtime_error("cannot open record log for writing: " +
                             path.string());
  }
}

void RecordLogWriter::write(const Record& rec) {
  const auto frame = encode_record(rec);
  out_.write(reinterpret_cast<const char*>(frame.data()),
             static_cast<std::streamsize>(frame.size()));
  if (!out_) throw std::runtime_error("record log write failed");
  ++count_;
}

void RecordLogWriter::close() {
  if (out_.is_open()) out_.close();
}

RecordLogReader::RecordLogReader(const std::filesystem::path& path)
    : in_(path, std::ios::binary) {
  if (!in_) {
    throw std::runtime_error("cannot open record log for reading: " +
                             path.string());
  }
}

bool RecordLogReader::next(Record& out) {
  while (true) {
    if (decoder_.next(out)) {
      ++count_;
      return true;
    }
    if (eof_) {
      if (decoder_.buffered_bytes() > 0) {
        throw WireError("record log ends with a partial frame");
      }
      return false;
    }
    std::array<char, 64 * 1024> chunk;
    in_.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    const auto n = in_.gcount();
    if (n > 0) {
      decoder_.feed(reinterpret_cast<const std::uint8_t*>(chunk.data()),
                    static_cast<std::size_t>(n));
    }
    if (in_.eof()) eof_ = true;
  }
}

std::size_t replay_log(const std::filesystem::path& path, Emitter& sink) {
  RecordLogReader reader(path);
  Record rec;
  std::size_t n = 0;
  while (reader.next(rec)) {
    sink.emit(std::move(rec));
    ++n;
  }
  return n;
}

}  // namespace dynriver::river
