#include "river/pipeline.hpp"

#include <utility>

#include "common/contracts.hpp"

namespace dynriver::river {

Pipeline& Pipeline::add(OperatorPtr op) {
  DR_EXPECTS(op != nullptr);
  ops_.push_back(std::move(op));
  return *this;
}

void Pipeline::push(Record rec, Emitter& sink) {
  if (ops_.empty()) {
    sink.emit(std::move(rec));
    return;
  }
  run_from(0, std::move(rec), sink);
}

void Pipeline::push_all(std::vector<Record> recs, Emitter& sink) {
  for (auto& rec : recs) push(std::move(rec), sink);
}

void Pipeline::run_from(std::size_t stage, Record rec, Emitter& sink) {
  if (stage == ops_.size()) {
    sink.emit(std::move(rec));
    return;
  }
  CallbackEmitter next(
      [this, stage, &sink](Record r) { run_from(stage + 1, std::move(r), sink); });
  ops_[stage]->process(std::move(rec), next);
}

void Pipeline::finish(Emitter& sink) {
  // Flush front to back: records drained from operator i must still flow
  // through operators i+1..n-1 (and their flushes happen afterwards).
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    CallbackEmitter next(
        [this, i, &sink](Record r) { run_from(i + 1, std::move(r), sink); });
    ops_[i]->flush(next);
  }
}

std::vector<std::string> Pipeline::topology() const {
  std::vector<std::string> names;
  names.reserve(ops_.size());
  for (const auto& op : ops_) names.emplace_back(op->name());
  return names;
}

Operator& Pipeline::at(std::size_t i) {
  DR_EXPECTS(i < ops_.size());
  return *ops_[i];
}

std::vector<OperatorPtr> Pipeline::release_operators() {
  return std::exchange(ops_, {});
}

std::vector<Record> run_pipeline(Pipeline& pipeline, std::vector<Record> input) {
  VectorEmitter out;
  pipeline.push_all(std::move(input), out);
  pipeline.finish(out);
  return std::move(out.records);
}

}  // namespace dynriver::river
