// Lossless bit-packing codec for float payloads (packed wire records).
//
// Archived hydrophone/station audio is ADC-quantized: every sample that came
// through the PCM16 path (WAV files, the synth stations' 16-bit front end) is
// exactly n/32768 for an integer n in [-32768, 32767]. Such streams carry at
// most 17 bits of real information per sample and are strongly correlated
// sample-to-sample, yet the wire format stores 32 raw bits each. This codec
// recovers that slack without ever being lossy:
//
//   mode byte
//   0  raw       4*count little-endian f32 bytes (incompressible fallback)
//   1  i16+delta every value is exactly n/32768: store zigzag(n[i]-n[i-1])
//                (n[-1] = 0), fixed-width bit-packed per block
//   2  xor       f32 bit patterns xor'd with the previous value's bits
//                (first value xor 0), fixed-width bit-packed per block
//
// Block structure (modes 1 and 2): values are grouped in blocks of up to
// kBlockValues; each block is one width byte w (bits per value; 0..17 for
// mode 1, 0..32 for mode 2) followed by ceil(k*w/8) bytes of LSB-first
// packed values. A constant run therefore costs 1 byte per block.
//
// The encoder selects mode 1 when every value is i16-representable, else
// mode 2, and falls back to mode 0 whenever the packed form would not be
// smaller than raw. Decoding is bit-exact for every float, including NaN
// payloads, denormals and -0.0 (-0.0 is not n/32768 for any n, so it rides
// the xor path). The element count is NOT stored — it comes from the
// enclosing frame header (wire `paylen`), matching the wire format's style.
//
// Decode validates every length before touching memory: a stream that ends
// early throws WireTruncated, structurally invalid bytes (bad mode, width
// out of range, delta leaving the i16 domain) throw WireError.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "river/wire.hpp"

namespace dynriver::river::bitpack {

inline constexpr std::uint8_t kModeRaw = 0;
inline constexpr std::uint8_t kModeI16Delta = 1;
inline constexpr std::uint8_t kModeXor = 2;
inline constexpr std::size_t kBlockValues = 128;
inline constexpr unsigned kMaxWidthI16 = 17;  // zigzag(+-65535) < 2^17
inline constexpr unsigned kMaxWidthXor = 32;
/// Most values any packed stream can legally encode per stream byte: a
/// width-0 block spends one header byte on kBlockValues values (raw mode is
/// 1/4 value per byte). Decoders use this to reject an element count no
/// stream of the claimed byte length could produce BEFORE walking or
/// allocating — the bound that keeps a hostile frame header from turning a
/// few bytes of input into an enormous resize.
inline constexpr std::size_t kMaxPackedExpansion = kBlockValues;

namespace detail {

/// True iff v is exactly n/32768 for an integer n in [-32768, 32767];
/// fills `n`. Bit-exact: -0.0 and values needing more mantissa fail.
inline bool as_i16(float v, std::int32_t& n) {
  if (!(v >= -1.0f && v <= 1.0f)) return false;  // rejects NaN and +-inf too
  const float scaled = v * 32768.0f;             // exact: scale by 2^15
  const auto k = static_cast<std::int32_t>(scaled);
  if (k < -32768 || k > 32767) return false;  // +1.0 maps to 32768: out
  if (static_cast<float>(k) != scaled) return false;  // fractional
  // Reconstruction is float(k) * 2^-15, exact again; the bit compare is
  // only needed to reject -0.0 (numerically equal to 0/32768, bitwise not).
  const float rebuilt = static_cast<float>(k) * (1.0f / 32768.0f);
  std::uint32_t vb;
  std::uint32_t rb;
  std::memcpy(&vb, &v, 4);
  std::memcpy(&rb, &rebuilt, 4);
  if (vb != rb) return false;
  n = k;
  return true;
}

inline std::uint32_t zigzag(std::int32_t v) {
  return (static_cast<std::uint32_t>(v) << 1) ^
         static_cast<std::uint32_t>(v >> 31);
}

inline std::int32_t unzigzag(std::uint32_t v) {
  return static_cast<std::int32_t>((v >> 1) ^ (~(v & 1u) + 1u));
}

inline unsigned bit_width(std::uint32_t v) {
  unsigned w = 0;
  while (v != 0) {
    ++w;
    v >>= 1;
  }
  return w;
}

/// LSB-first bit appender; each block is flushed to a byte boundary so the
/// decoder can bounds-check a block from its width byte alone.
class BitWriter {
 public:
  explicit BitWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void put(std::uint32_t value, unsigned width) {
    acc_ |= static_cast<std::uint64_t>(value) << nbits_;
    nbits_ += width;
    while (nbits_ >= 8) {
      out_.push_back(static_cast<std::uint8_t>(acc_ & 0xFFu));
      acc_ >>= 8;
      nbits_ -= 8;
    }
  }

  void flush() {
    if (nbits_ > 0) {
      out_.push_back(static_cast<std::uint8_t>(acc_ & 0xFFu));
    }
    acc_ = 0;
    nbits_ = 0;
  }

 private:
  std::vector<std::uint8_t>& out_;
  std::uint64_t acc_ = 0;
  unsigned nbits_ = 0;
};

/// LSB-first bit reader over one block's packed bytes (already validated to
/// hold ceil(count*width/8) bytes).
class BitReader {
 public:
  BitReader(const std::uint8_t* data, std::size_t len) : data_(data), len_(len) {}

  [[nodiscard]] std::uint32_t get(unsigned width) {
    while (nbits_ < width) {
      // Callers size the block before reading, so pos_ < len_ holds; the
      // check keeps the reader safe against its own misuse.
      const std::uint64_t byte = pos_ < len_ ? data_[pos_] : 0u;
      ++pos_;
      acc_ |= byte << nbits_;
      nbits_ += 8;
    }
    const std::uint64_t mask =
        width == 32 ? 0xFFFFFFFFull : (1ull << width) - 1ull;
    const auto v = static_cast<std::uint32_t>(acc_ & mask);
    acc_ >>= width;
    nbits_ -= width;
    return v;
  }

 private:
  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  unsigned nbits_ = 0;
};

inline std::size_t block_bytes(std::size_t count, unsigned width) {
  return (count * width + 7) / 8;
}

template <typename TransformToU32>
void pack_blocks(std::span<const float> values, std::vector<std::uint8_t>& out,
                 TransformToU32&& transform) {
  std::array<std::uint32_t, kBlockValues> block;
  std::size_t i = 0;
  while (i < values.size()) {
    const std::size_t k = std::min(kBlockValues, values.size() - i);
    std::uint32_t max = 0;
    for (std::size_t j = 0; j < k; ++j) {
      block[j] = transform(values[i + j]);
      max |= block[j];
    }
    const unsigned width = bit_width(max);
    out.push_back(static_cast<std::uint8_t>(width));
    BitWriter writer(out);
    for (std::size_t j = 0; j < k; ++j) writer.put(block[j], width);
    writer.flush();
    i += k;
  }
}

}  // namespace detail

/// Append the packed encoding of `values` to `out`; returns bytes appended.
/// Never appends more than 1 + 4*count + ceil(count/kBlockValues) bytes.
inline std::size_t pack_floats(std::span<const float> values,
                               std::vector<std::uint8_t>& out) {
  if (values.empty()) return 0;
  const std::size_t start = out.size();

  bool all_i16 = true;
  std::int32_t probe = 0;
  for (const float v : values) {
    if (!detail::as_i16(v, probe)) {
      all_i16 = false;
      break;
    }
  }

  if (all_i16) {
    out.push_back(kModeI16Delta);
    std::int32_t prev = 0;
    detail::pack_blocks(values, out, [&prev](float v) {
      std::int32_t n = 0;
      (void)detail::as_i16(v, n);  // already validated above
      const std::int32_t delta = n - prev;
      prev = n;
      return detail::zigzag(delta);
    });
  } else {
    out.push_back(kModeXor);
    std::uint32_t prev = 0;
    detail::pack_blocks(values, out, [&prev](float v) {
      std::uint32_t bits;
      std::memcpy(&bits, &v, 4);
      const std::uint32_t x = bits ^ prev;
      prev = bits;
      return x;
    });
    // Raw fallback: an uncorrelated stream packs to ~32 bits/value plus the
    // block overhead — strictly worse than raw f32. Keep whichever is smaller.
    if (out.size() - start >= 1 + 4 * values.size()) {
      out.resize(start);
      out.push_back(kModeRaw);
      const std::size_t raw = out.size();
      out.resize(raw + 4 * values.size());
      std::memcpy(out.data() + raw, values.data(), 4 * values.size());
    }
  }
  return out.size() - start;
}

/// Structural walk without decoding values: returns the byte length of the
/// packed stream encoding `count` values, validating mode and block headers
/// against `len`. Never allocates — callers use it to bound an allocation by
/// bytes actually present before decoding (a corrupt element count then
/// fails here instead of provoking a huge resize). Throws like unpack_floats.
inline std::size_t packed_stream_bytes(const std::uint8_t* data,
                                       std::size_t len, std::size_t count) {
  if (count == 0) return 0;
  if (len < 1) throw WireTruncated("bitpack: truncated stream");
  const std::uint8_t mode = data[0];
  std::size_t pos = 1;
  if (mode == kModeRaw) {
    // Compare by division: `4 * count` wraps for a hostile count near 2^62,
    // which once let a 41-byte stream "contain" 2^62 raw values.
    if (count > (len - pos) / 4) {
      throw WireTruncated("bitpack: truncated raw stream");
    }
    return pos + 4 * count;
  }
  if (mode != kModeI16Delta && mode != kModeXor) {
    throw WireError("bitpack: unknown mode");
  }
  const unsigned max_width = mode == kModeI16Delta ? kMaxWidthI16 : kMaxWidthXor;
  std::size_t i = 0;
  while (i < count) {
    const std::size_t k = std::min(kBlockValues, count - i);
    if (pos >= len) throw WireTruncated("bitpack: truncated block header");
    const unsigned width = data[pos];
    ++pos;
    if (width > max_width) throw WireError("bitpack: block width out of range");
    const std::size_t nbytes = detail::block_bytes(k, width);
    if (len - pos < nbytes) throw WireTruncated("bitpack: truncated block");
    pos += nbytes;
    i += k;
  }
  return pos;
}

/// Decode exactly out.size() floats from `data`; returns bytes consumed.
/// Throws WireTruncated when the stream ends early, WireError on invalid
/// structure.
inline std::size_t unpack_floats(const std::uint8_t* data, std::size_t len,
                                 std::span<float> out) {
  if (out.empty()) return 0;
  if (len < 1) throw WireTruncated("bitpack: truncated stream");
  const std::uint8_t mode = data[0];
  std::size_t pos = 1;

  if (mode == kModeRaw) {
    // Division, not `4 * out.size()`: same wrap hazard as packed_stream_bytes.
    if (out.size() > (len - pos) / 4) {
      throw WireTruncated("bitpack: truncated raw stream");
    }
    std::memcpy(out.data(), data + pos, 4 * out.size());
    return pos + 4 * out.size();
  }
  if (mode != kModeI16Delta && mode != kModeXor) {
    throw WireError("bitpack: unknown mode");
  }

  const unsigned max_width = mode == kModeI16Delta ? kMaxWidthI16 : kMaxWidthXor;
  std::int32_t prev_i16 = 0;
  std::uint32_t prev_bits = 0;
  std::size_t i = 0;
  while (i < out.size()) {
    const std::size_t k = std::min(kBlockValues, out.size() - i);
    if (pos >= len) throw WireTruncated("bitpack: truncated block header");
    const unsigned width = data[pos];
    ++pos;
    if (width > max_width) throw WireError("bitpack: block width out of range");
    const std::size_t nbytes = detail::block_bytes(k, width);
    if (len - pos < nbytes) throw WireTruncated("bitpack: truncated block");
    detail::BitReader reader(data + pos, nbytes);
    if (mode == kModeI16Delta) {
      for (std::size_t j = 0; j < k; ++j) {
        const std::int32_t delta = detail::unzigzag(reader.get(width));
        const std::int32_t n = prev_i16 + delta;
        if (n < -32768 || n > 32767) {
          throw WireError("bitpack: delta leaves the i16 domain");
        }
        prev_i16 = n;
        out[i + j] = static_cast<float>(n) * (1.0f / 32768.0f);
      }
    } else {
      for (std::size_t j = 0; j < k; ++j) {
        const std::uint32_t bits = prev_bits ^ reader.get(width);
        prev_bits = bits;
        std::memcpy(&out[i + j], &bits, 4);
      }
    }
    pos += nbytes;
    i += k;
  }
  return pos;
}

}  // namespace dynriver::river::bitpack
