// Dynamic River record model.
//
// A Dynamic River pipeline transports a stream of records between operators.
// Records are grouped using the `subtype`, `scope` and `scope_type` header
// fields (paper, Section 2).  A *scope* is a sequence of records that share
// contextual meaning -- e.g. all records produced from one acoustic clip.
// Within the stream each scope begins with an OpenScope record and ends with
// a CloseScope record; a BadCloseScope record closes a scope that did not
// reach its intended point of closure (e.g. an upstream segment died).
// Scopes nest; `scope_depth` holds the nesting depth, with 0 the outermost.
#pragma once

#include <complex>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <variant>
#include <vector>

namespace dynriver::river {

/// Structural record kinds.  Data records carry payload; scope records
/// delimit contextual groups.
enum class RecordType : std::uint8_t {
  kData = 0,
  kOpenScope = 1,
  kCloseScope = 2,
  kBadCloseScope = 3,
};

[[nodiscard]] const char* to_string(RecordType type);

/// Returns true for CloseScope and BadCloseScope.
[[nodiscard]] constexpr bool is_scope_close(RecordType type) {
  return type == RecordType::kCloseScope || type == RecordType::kBadCloseScope;
}

// ---------------------------------------------------------------------------
// Well-known subtype and scope-type identifiers.
//
// Applications may define their own values at or above kUserSubtypeBase /
// kUserScopeTypeBase; values below are reserved by the library and the
// acoustic pipeline from the paper.
// ---------------------------------------------------------------------------

// Record subtypes (meaning of the payload of a Data record).
inline constexpr std::uint32_t kSubtypeRaw = 0;           ///< unspecified bytes
inline constexpr std::uint32_t kSubtypeAudio = 1;         ///< PCM amplitude samples
inline constexpr std::uint32_t kSubtypeAnomalyScore = 2;  ///< smoothed SAX anomaly scores
inline constexpr std::uint32_t kSubtypeTrigger = 3;       ///< 0/1 trigger signal
inline constexpr std::uint32_t kSubtypeSpectrum = 4;      ///< power-spectrum values
inline constexpr std::uint32_t kSubtypePattern = 5;       ///< classifier feature vector
inline constexpr std::uint32_t kSubtypeComplex = 6;       ///< complex DFT output
inline constexpr std::uint32_t kUserSubtypeBase = 1000;

// Scope types (meaning of an OpenScope..CloseScope group).
inline constexpr std::uint32_t kScopeStream = 0;    ///< whole-stream scope
inline constexpr std::uint32_t kScopeClip = 1;      ///< one acoustic clip
inline constexpr std::uint32_t kScopeEnsemble = 2;  ///< one extracted ensemble
inline constexpr std::uint32_t kUserScopeTypeBase = 1000;

// Well-known attribute keys of the acoustic pipeline (stamped on clip and
// ensemble OpenScope records by operators, sources, and sinks).
inline constexpr const char* kAttrSampleRate = "sample_rate";
inline constexpr const char* kAttrClipId = "clip_id";
inline constexpr const char* kAttrStation = "station";
inline constexpr const char* kAttrSpecies = "species";  // ground truth
inline constexpr const char* kAttrEnsembleId = "ensemble_id";
inline constexpr const char* kAttrStartSample = "start_sample";
inline constexpr const char* kAttrNumSamples = "num_samples";

/// Attribute values attached to records (context information; e.g. the
/// sampling rate of an acoustic clip on its OpenScope record).
using AttrValue = std::variant<std::int64_t, double, std::string>;
using AttrMap = std::map<std::string, AttrValue, std::less<>>;

/// Payload alternatives.  Acoustic pipelines mostly move float vectors
/// (amplitudes, scores, spectra) and complex vectors (DFT stages); raw bytes
/// support opaque transport (e.g. WAV container data).
using ByteVec = std::vector<std::uint8_t>;
using FloatVec = std::vector<float>;
using CplxVec = std::vector<std::complex<float>>;
using Payload = std::variant<std::monostate, ByteVec, FloatVec, CplxVec>;

/// A Dynamic River record: small header + typed payload + attributes.
struct Record {
  RecordType type = RecordType::kData;
  std::uint32_t subtype = kSubtypeRaw;
  std::uint32_t scope_depth = 0;
  std::uint32_t scope_type = kScopeStream;
  std::uint64_t sequence = 0;  ///< per-producer sequence number
  Payload payload;
  AttrMap attrs;

  // -- payload helpers ------------------------------------------------------

  [[nodiscard]] bool has_payload() const {
    return !std::holds_alternative<std::monostate>(payload);
  }
  [[nodiscard]] bool is_float() const {
    return std::holds_alternative<FloatVec>(payload);
  }
  [[nodiscard]] bool is_complex() const {
    return std::holds_alternative<CplxVec>(payload);
  }
  [[nodiscard]] bool is_bytes() const {
    return std::holds_alternative<ByteVec>(payload);
  }

  /// Typed access; throws ContractViolation when the payload kind differs.
  [[nodiscard]] std::span<const float> floats() const;
  [[nodiscard]] std::span<float> floats();
  [[nodiscard]] std::span<const std::complex<float>> cplx() const;
  [[nodiscard]] std::span<std::complex<float>> cplx();
  [[nodiscard]] std::span<const std::uint8_t> bytes() const;

  /// Number of payload elements (0 for empty payloads).
  [[nodiscard]] std::size_t payload_size() const;

  /// Approximate wire footprint in bytes (used for data-reduction metrics).
  [[nodiscard]] std::size_t payload_bytes() const;

  // -- attribute helpers ----------------------------------------------------

  void set_attr(std::string key, AttrValue value);
  [[nodiscard]] bool has_attr(std::string_view key) const;
  /// Typed attribute reads; `fallback` when missing or of a different type.
  [[nodiscard]] std::int64_t attr_int(std::string_view key, std::int64_t fallback) const;
  [[nodiscard]] double attr_double(std::string_view key, double fallback) const;
  [[nodiscard]] std::string attr_string(std::string_view key,
                                        std::string fallback) const;

  // -- factories ------------------------------------------------------------

  static Record open_scope(std::uint32_t scope_type, std::uint32_t depth);
  static Record close_scope(std::uint32_t scope_type, std::uint32_t depth);
  static Record bad_close_scope(std::uint32_t scope_type, std::uint32_t depth);
  static Record data(std::uint32_t subtype, FloatVec values);
  static Record data_complex(std::uint32_t subtype, CplxVec values);
  static Record data_bytes(std::uint32_t subtype, ByteVec values);
};

/// Structural equality (header, payload, attributes). Sequence numbers are
/// compared too; callers that do not care should clear them first.
[[nodiscard]] bool operator==(const Record& a, const Record& b);

}  // namespace dynriver::river
