#include "river/record.hpp"

#include "common/contracts.hpp"

namespace dynriver::river {

const char* to_string(RecordType type) {
  switch (type) {
    case RecordType::kData:
      return "Data";
    case RecordType::kOpenScope:
      return "OpenScope";
    case RecordType::kCloseScope:
      return "CloseScope";
    case RecordType::kBadCloseScope:
      return "BadCloseScope";
  }
  return "Unknown";
}

std::span<const float> Record::floats() const {
  DR_EXPECTS(is_float());
  return std::get<FloatVec>(payload);
}

std::span<float> Record::floats() {
  DR_EXPECTS(is_float());
  return std::get<FloatVec>(payload);
}

std::span<const std::complex<float>> Record::cplx() const {
  DR_EXPECTS(is_complex());
  return std::get<CplxVec>(payload);
}

std::span<std::complex<float>> Record::cplx() {
  DR_EXPECTS(is_complex());
  return std::get<CplxVec>(payload);
}

std::span<const std::uint8_t> Record::bytes() const {
  DR_EXPECTS(is_bytes());
  return std::get<ByteVec>(payload);
}

std::size_t Record::payload_size() const {
  return std::visit(
      [](const auto& p) -> std::size_t {
        using T = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<T, std::monostate>) {
          return 0;
        } else {
          return p.size();
        }
      },
      payload);
}

std::size_t Record::payload_bytes() const {
  return std::visit(
      [](const auto& p) -> std::size_t {
        using T = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<T, std::monostate>) {
          return 0;
        } else {
          return p.size() * sizeof(typename T::value_type);
        }
      },
      payload);
}

void Record::set_attr(std::string key, AttrValue value) {
  attrs.insert_or_assign(std::move(key), std::move(value));
}

bool Record::has_attr(std::string_view key) const {
  return attrs.find(key) != attrs.end();
}

std::int64_t Record::attr_int(std::string_view key, std::int64_t fallback) const {
  const auto it = attrs.find(key);
  if (it == attrs.end()) return fallback;
  if (const auto* v = std::get_if<std::int64_t>(&it->second)) return *v;
  return fallback;
}

double Record::attr_double(std::string_view key, double fallback) const {
  const auto it = attrs.find(key);
  if (it == attrs.end()) return fallback;
  if (const auto* v = std::get_if<double>(&it->second)) return *v;
  if (const auto* v = std::get_if<std::int64_t>(&it->second)) {
    return static_cast<double>(*v);
  }
  return fallback;
}

std::string Record::attr_string(std::string_view key, std::string fallback) const {
  const auto it = attrs.find(key);
  if (it == attrs.end()) return fallback;
  if (const auto* v = std::get_if<std::string>(&it->second)) return *v;
  return fallback;
}

Record Record::open_scope(std::uint32_t scope_type, std::uint32_t depth) {
  Record rec;
  rec.type = RecordType::kOpenScope;
  rec.scope_type = scope_type;
  rec.scope_depth = depth;
  return rec;
}

Record Record::close_scope(std::uint32_t scope_type, std::uint32_t depth) {
  Record rec;
  rec.type = RecordType::kCloseScope;
  rec.scope_type = scope_type;
  rec.scope_depth = depth;
  return rec;
}

Record Record::bad_close_scope(std::uint32_t scope_type, std::uint32_t depth) {
  Record rec;
  rec.type = RecordType::kBadCloseScope;
  rec.scope_type = scope_type;
  rec.scope_depth = depth;
  return rec;
}

Record Record::data(std::uint32_t subtype, FloatVec values) {
  Record rec;
  rec.type = RecordType::kData;
  rec.subtype = subtype;
  rec.payload = std::move(values);
  return rec;
}

Record Record::data_complex(std::uint32_t subtype, CplxVec values) {
  Record rec;
  rec.type = RecordType::kData;
  rec.subtype = subtype;
  rec.payload = std::move(values);
  return rec;
}

Record Record::data_bytes(std::uint32_t subtype, ByteVec values) {
  Record rec;
  rec.type = RecordType::kData;
  rec.subtype = subtype;
  rec.payload = std::move(values);
  return rec;
}

bool operator==(const Record& a, const Record& b) {
  return a.type == b.type && a.subtype == b.subtype &&
         a.scope_depth == b.scope_depth && a.scope_type == b.scope_type &&
         a.sequence == b.sequence && a.payload == b.payload && a.attrs == b.attrs;
}

}  // namespace dynriver::river
