// Utility operators shared across pipelines: counting, filtering, scope
// selection, attribute stamping, and record duplication.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "river/channel.hpp"
#include "river/operator.hpp"

namespace dynriver::river {

/// Forwards everything unchanged (placeholder / topology testing).
class IdentityOp final : public Operator {
 public:
  void process(Record rec, Emitter& out) override { out.emit(std::move(rec)); }
  [[nodiscard]] std::string_view name() const override { return "identity"; }
};

/// Forwards records while accounting volume; used for the paper's
/// data-reduction measurements (Section 4: extraction reduced data by ~80%).
class CounterOp final : public Operator {
 public:
  void process(Record rec, Emitter& out) override;
  [[nodiscard]] std::string_view name() const override { return "counter"; }

  [[nodiscard]] std::size_t records() const { return records_; }
  [[nodiscard]] std::size_t data_records() const { return data_records_; }
  [[nodiscard]] std::size_t payload_bytes() const { return payload_bytes_; }

 private:
  std::size_t records_ = 0;
  std::size_t data_records_ = 0;
  std::size_t payload_bytes_ = 0;
};

/// Drops Data records whose subtype differs; scope records always pass.
class SubtypeFilterOp final : public Operator {
 public:
  explicit SubtypeFilterOp(std::uint32_t subtype) : subtype_(subtype) {}
  void process(Record rec, Emitter& out) override;
  [[nodiscard]] std::string_view name() const override { return "subtype_filter"; }

 private:
  std::uint32_t subtype_;
};

/// Passes only records inside scopes of the given scope type (including the
/// delimiters themselves). Everything outside such scopes is discarded.
class ScopeSelectOp final : public Operator {
 public:
  explicit ScopeSelectOp(std::uint32_t scope_type) : scope_type_(scope_type) {}
  void process(Record rec, Emitter& out) override;
  [[nodiscard]] std::string_view name() const override { return "scope_select"; }

 private:
  std::uint32_t scope_type_;
  std::size_t inside_depth_ = 0;  // >0 while within a matching scope
};

/// Stamps a fixed attribute onto every record (e.g. station id).
class AttrStampOp final : public Operator {
 public:
  AttrStampOp(std::string key, AttrValue value)
      : key_(std::move(key)), value_(std::move(value)) {}
  void process(Record rec, Emitter& out) override;
  [[nodiscard]] std::string_view name() const override { return "attr_stamp"; }

 private:
  std::string key_;
  AttrValue value_;
};

/// Duplicates the stream into a side channel while forwarding downstream.
/// Mirrors the paper's use of `readout` to retain a copy of the raw data.
class TeeOp final : public Operator {
 public:
  explicit TeeOp(std::shared_ptr<RecordChannel> side);
  void process(Record rec, Emitter& out) override;
  void flush(Emitter& out) override;
  [[nodiscard]] std::string_view name() const override { return "tee"; }

 private:
  std::shared_ptr<RecordChannel> side_;
};

}  // namespace dynriver::river
