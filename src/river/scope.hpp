// Scope tracking for Dynamic River streams.
//
// The streamin operator uses a ScopeTracker to validate the scope grammar of
// an incoming stream and -- when an upstream segment terminates unexpectedly,
// leaving scopes open -- to generate the BadCloseScope records that close all
// open scopes so downstream processing can resynchronize (paper, Section 2).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "river/record.hpp"

namespace dynriver::river {

/// Thrown when a stream violates the scope grammar (close without open,
/// mismatched depth or type, data records at impossible depths).
class ScopeError : public std::runtime_error {
 public:
  explicit ScopeError(const std::string& what) : std::runtime_error(what) {}
};

/// Tracks the stack of open scopes in a record stream.
class ScopeTracker {
 public:
  /// Observe one record. Throws ScopeError when the stream is malformed.
  void observe(const Record& rec);

  /// Current nesting depth (number of open scopes).
  [[nodiscard]] std::size_t depth() const { return open_.size(); }

  [[nodiscard]] bool any_open() const { return !open_.empty(); }

  /// Scope types of currently open scopes, outermost first.
  [[nodiscard]] const std::vector<std::uint32_t>& open_scopes() const {
    return open_;
  }

  /// Produce BadCloseScope records closing every open scope, innermost
  /// first, and reset the tracker. Used on abnormal upstream termination.
  [[nodiscard]] std::vector<Record> force_close_all();

  void reset() { open_.clear(); }

 private:
  std::vector<std::uint32_t> open_;  // scope_type per nesting level
};

}  // namespace dynriver::river
