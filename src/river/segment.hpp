// Pipeline segments: relocatable units of distributed processing.
//
// "Pipeline segments are created by composing sequences of operators that
// produce a partial result important to the overall pipeline application"
// (paper, Section 2). A segment pulls records from an input channel, runs
// them through its operator chain, and pushes results to an output channel.
// Segments pause only at top-level scope boundaries, which is what makes
// dynamic recomposition safe: a relocated segment never splits a scope.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include "river/channel.hpp"
#include "river/pipeline.hpp"
#include "river/scope.hpp"

namespace dynriver::river {

/// Emitter that forwards into a RecordChannel (used as a segment's sink).
class ChannelEmitter final : public Emitter {
 public:
  explicit ChannelEmitter(std::shared_ptr<RecordChannel> channel);
  void emit(Record rec) override;
  [[nodiscard]] std::size_t dropped() const { return dropped_; }

 private:
  std::shared_ptr<RecordChannel> channel_;
  std::size_t dropped_ = 0;
};

/// Why a segment's run loop returned.
enum class SegmentStopCause : std::uint8_t {
  kUpstreamClosed,        ///< clean end of stream
  kUpstreamDisconnected,  ///< abnormal upstream death (BadCloseScopes emitted)
  kPausedForRelocation,   ///< stopped at a scope boundary on request
};

struct SegmentRunStats {
  std::size_t records_in = 0;
  std::size_t records_out = 0;
  std::size_t bad_closes_emitted = 0;
  SegmentStopCause cause = SegmentStopCause::kUpstreamClosed;
};

/// A named, relocatable pipeline segment.
///
/// The segment object owns its operator chain. `run()` executes one *epoch*:
/// it processes records until the stream ends or a relocation request is
/// honoured at a top-level scope boundary. Operator state survives across
/// epochs, so a relocated segment resumes exactly where it paused.
class Segment {
 public:
  Segment(std::string name, Pipeline pipeline,
          std::shared_ptr<RecordChannel> input,
          std::shared_ptr<RecordChannel> output);

  /// Run one epoch on the calling thread (blocking).
  SegmentRunStats run();

  /// Ask the segment to pause at the next top-level scope boundary.
  void request_pause() { pause_requested_.store(true, std::memory_order_relaxed); }
  void clear_pause() { pause_requested_.store(false, std::memory_order_relaxed); }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Pipeline& pipeline() { return pipeline_; }
  [[nodiscard]] const std::shared_ptr<RecordChannel>& input() const {
    return input_;
  }
  [[nodiscard]] const std::shared_ptr<RecordChannel>& output() const {
    return output_;
  }

 private:
  std::string name_;
  Pipeline pipeline_;
  std::shared_ptr<RecordChannel> input_;
  std::shared_ptr<RecordChannel> output_;
  std::atomic<bool> pause_requested_{false};
  ScopeTracker tracker_;
};

}  // namespace dynriver::river
