#include "river/wire.hpp"

#include <array>
#include <cstring>

#include "common/checked.hpp"
#include "common/contracts.hpp"
#include "river/bitpack.hpp"
#include "river/crc_slices.hpp"

namespace dynriver::river {

namespace {

namespace checked = common::checked;

// -- little-endian primitives -------------------------------------------------

template <typename T>
void put(std::vector<std::uint8_t>& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::array<std::uint8_t, sizeof(T)> raw;
  std::memcpy(raw.data(), &value, sizeof(T));
  out.insert(out.end(), raw.begin(), raw.end());
}

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t len) : data_(data), len_(len) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    require(sizeof(T));
    T value;
    std::memcpy(&value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  void read_bytes(std::uint8_t* dst, std::size_t n) {
    require(n);
    std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
  }

  void skip(std::size_t n) {
    require(n);
    pos_ += n;
  }

  [[nodiscard]] const std::uint8_t* cursor() const { return data_ + pos_; }
  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return len_ - pos_; }

 private:
  void require(std::size_t n) const {
    // pos_ <= len_ is a class invariant, so the subtraction cannot wrap the
    // way the naive `pos_ + n > len_` sum can for an attacker-sized n.
    if (n > len_ - pos_) throw WireTruncated("truncated record frame");
  }

  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
};

constexpr std::uint8_t kAttrTagInt = 0;
constexpr std::uint8_t kAttrTagDouble = 1;
constexpr std::uint8_t kAttrTagString = 2;

/// Walk one attribute entry (validating lengths); returns the key and a
/// typed view of the value. Used by the view decoder's validation pass, the
/// lazy attr getters, and materialize() — one parser, three consumers.
struct AttrEntry {
  std::string_view key;
  std::uint8_t tag = 0;
  std::int64_t int_value = 0;
  double double_value = 0.0;
  std::string_view string_value;
};

AttrEntry parse_attr(Reader& r) {
  AttrEntry e;
  const auto key_len = r.get<std::uint16_t>();
  if (key_len > r.remaining()) throw WireTruncated("truncated attribute key");
  e.key = std::string_view(reinterpret_cast<const char*>(r.cursor()), key_len);
  r.skip(key_len);
  e.tag = r.get<std::uint8_t>();
  switch (e.tag) {
    case kAttrTagInt:
      e.int_value = r.get<std::int64_t>();
      break;
    case kAttrTagDouble:
      e.double_value = r.get<double>();
      break;
    case kAttrTagString: {
      const auto slen = r.get<std::uint32_t>();
      if (slen > r.remaining()) throw WireTruncated("truncated attribute value");
      e.string_value =
          std::string_view(reinterpret_cast<const char*>(r.cursor()), slen);
      r.skip(slen);
      break;
    }
    default:
      throw WireError("unknown attribute tag");
  }
  return e;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t len, std::uint32_t seed) {
  // Slicing-by-8: ~8x the throughput of the classic one-table loop, which
  // had become the dominant cost of archive replay (see crc_slices.hpp).
  return detail::CrcSlices<0xEDB88320u>::update(seed ^ 0xFFFFFFFFu, data, len) ^
         0xFFFFFFFFu;
}

std::vector<std::uint8_t> encode_record(const Record& rec, PayloadCodec codec) {
  std::vector<std::uint8_t> out;
  out.reserve(64 + rec.payload_bytes());

  const bool pack = codec == PayloadCodec::kPacked && rec.is_float();

  put<std::uint32_t>(out, kWireMagic);
  put<std::uint16_t>(out, kWireVersion);
  put<std::uint8_t>(out, static_cast<std::uint8_t>(rec.type));
  put<std::uint8_t>(out, pack ? kPayTagPackedFloats
                              : static_cast<std::uint8_t>(rec.payload.index()));
  put<std::uint32_t>(out, rec.subtype);
  put<std::uint32_t>(out, rec.scope_depth);
  put<std::uint32_t>(out, rec.scope_type);
  put<std::uint64_t>(out, rec.sequence);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(rec.attrs.size()));
  put<std::uint64_t>(out, static_cast<std::uint64_t>(rec.payload_size()));

  for (const auto& [key, value] : rec.attrs) {
    DR_EXPECTS(key.size() <= 0xFFFF);
    put<std::uint16_t>(out, static_cast<std::uint16_t>(key.size()));
    out.insert(out.end(), key.begin(), key.end());
    if (const auto* iv = std::get_if<std::int64_t>(&value)) {
      put<std::uint8_t>(out, kAttrTagInt);
      put<std::int64_t>(out, *iv);
    } else if (const auto* dv = std::get_if<double>(&value)) {
      put<std::uint8_t>(out, kAttrTagDouble);
      put<double>(out, *dv);
    } else {
      const auto& s = std::get<std::string>(value);
      put<std::uint8_t>(out, kAttrTagString);
      put<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
      out.insert(out.end(), s.begin(), s.end());
    }
  }

  if (pack) {
    // u32 packed byte length, patched once the packed stream is written.
    const std::size_t len_pos = out.size();
    put<std::uint32_t>(out, 0);
    const std::size_t packed =
        bitpack::pack_floats(std::get<FloatVec>(rec.payload), out);
    std::uint32_t packed_u32;
    DR_EXPECTS(packed <= 0xFFFFFFFFu);
    packed_u32 = static_cast<std::uint32_t>(packed);
    std::memcpy(out.data() + len_pos, &packed_u32, 4);
  } else {
    std::visit(
        [&out](const auto& p) {
          using T = std::decay_t<decltype(p)>;
          if constexpr (std::is_same_v<T, std::monostate>) {
            // no payload bytes
          } else if constexpr (std::is_same_v<T, ByteVec>) {
            out.insert(out.end(), p.begin(), p.end());
          } else if constexpr (std::is_same_v<T, FloatVec>) {
            const std::size_t at = out.size();
            out.resize(at + 4 * p.size());
            if (!p.empty()) std::memcpy(out.data() + at, p.data(), 4 * p.size());
          } else if constexpr (std::is_same_v<T, CplxVec>) {
            const std::size_t at = out.size();
            out.resize(at + 8 * p.size());
            if (!p.empty()) std::memcpy(out.data() + at, p.data(), 8 * p.size());
          }
        },
        rec.payload);
  }

  const std::uint32_t crc = crc32(out.data() + 4, out.size() - 4);
  put<std::uint32_t>(out, crc);
  return out;
}

RecordView decode_record_view(const std::uint8_t* data, std::size_t len,
                              std::size_t& consumed, WireScratch& scratch) {
  Reader r(data, len);
  const auto magic = r.get<std::uint32_t>();
  if (magic != kWireMagic) throw WireError("bad frame magic");
  const auto version = r.get<std::uint16_t>();
  if (version != kWireVersion) throw WireError("unsupported wire version");

  RecordView view;
  const auto type_raw = r.get<std::uint8_t>();
  if (type_raw > static_cast<std::uint8_t>(RecordType::kBadCloseScope)) {
    throw WireError("unknown record type");
  }
  view.type = static_cast<RecordType>(type_raw);
  view.pay_tag = r.get<std::uint8_t>();
  if (view.pay_tag > kPayTagPackedFloats) throw WireError("unknown payload tag");
  view.subtype = r.get<std::uint32_t>();
  view.scope_depth = r.get<std::uint32_t>();
  view.scope_type = r.get<std::uint32_t>();
  view.sequence = r.get<std::uint64_t>();
  view.nattr = r.get<std::uint32_t>();
  const auto paylen = r.get<std::uint64_t>();

  // Validate the attribute region in place; the lazy getters re-walk it.
  const std::size_t attrs_begin = r.pos();
  for (std::uint32_t i = 0; i < view.nattr; ++i) (void)parse_attr(r);
  view.attr_bytes = std::span<const std::uint8_t>(data + attrs_begin,
                                                  r.pos() - attrs_begin);

  // Every length below is validated BEFORE allocating — first against the
  // absolute payload cap (a too-large claim is corruption, full stop), then
  // against the remaining buffer — so a corrupted length field yields a
  // WireError rather than an attempted multi-gigabyte allocation. The cap
  // comparisons divide rather than multiply so they cannot themselves wrap.
  // Element sizes by pay_tag: none, raw bytes, f32, c64. Literals on
  // purpose: the wire format fixes them independent of host types.
  static constexpr std::size_t kElemSize[] = {0, 1, 4, 8};
  if (view.pay_tag != 0 &&
      paylen > kMaxWirePayloadBytes /
                   kElemSize[view.pay_tag == kPayTagPackedFloats
                                 ? 2
                                 : view.pay_tag]) {
    throw WireError("payload length exceeds wire cap");
  }
  if (view.pay_tag != 0 && view.pay_tag != kPayTagPackedFloats &&
      paylen > r.remaining() / kElemSize[view.pay_tag]) {
    throw WireTruncated("truncated record frame");
  }
  // The cap bounds paylen well inside std::size_t, so this cannot throw —
  // it exists to keep the u64 -> size_t conversion checked on every path.
  const auto count = checked::narrow<std::size_t, WireError>(
      paylen, "payload length exceeds wire cap");

  switch (view.pay_tag) {
    case 0:
      if (paylen != 0) throw WireError("empty payload with nonzero length");
      break;
    case 1:
      view.bytes = std::span<const std::uint8_t>(r.cursor(), count);
      r.skip(count);
      break;
    case 2: {
      // Copy into the scratch: payload bytes inside a frame are unaligned,
      // so a span over them would not be a valid span<const float>.
      const auto nbytes = checked::mul<WireError>(count, sizeof(float),
                                                  "float payload overflow");
      scratch.floats.resize(count);
      if (count > 0) {
        std::memcpy(scratch.floats.data(), r.cursor(), nbytes);
        r.skip(nbytes);
      }
      view.floats = scratch.floats;
      break;
    }
    case 3: {
      const auto nbytes = checked::mul<WireError>(
          count, sizeof(std::complex<float>), "complex payload overflow");
      scratch.cplx.resize(count);
      if (count > 0) {
        std::memcpy(scratch.cplx.data(), r.cursor(), nbytes);
        r.skip(nbytes);
      }
      view.cplx = scratch.cplx;
      break;
    }
    case kPayTagPackedFloats: {
      const auto packed_len = r.get<std::uint32_t>();
      if (packed_len > r.remaining()) {
        throw WireTruncated("truncated record frame");
      }
      // No packed mode yields more than kMaxPackedExpansion values per
      // stream byte, so a larger element count cannot be made consistent by
      // any stream content — reject before the structural walk ever runs.
      // (Fuzz-found: without this, a 41-byte frame declaring 2^62 elements
      // wrapped the walk's size arithmetic and drove a ~2^64-byte resize.)
      if (count / bitpack::kMaxPackedExpansion > packed_len) {
        throw WireError("packed payload inconsistent");
      }
      // Structural pre-walk: bounds the scratch resize by bytes actually
      // present and classifies errors. A stream inconsistent WITHIN its
      // declared packed_len cannot be fixed by more input — corruption.
      std::size_t used = 0;
      try {
        used = bitpack::packed_stream_bytes(r.cursor(), packed_len, count);
      } catch (const WireTruncated&) {
        throw WireError("packed payload inconsistent");
      }
      if (used != packed_len) throw WireError("packed payload inconsistent");
      scratch.floats.resize(count);
      (void)bitpack::unpack_floats(r.cursor(), packed_len,
                                   std::span<float>(scratch.floats));
      r.skip(packed_len);
      view.floats = scratch.floats;
      break;
    }
    default:
      throw WireError("unknown payload tag");
  }

  const std::size_t body_end = r.pos();
  const auto stored_crc = r.get<std::uint32_t>();
  const std::uint32_t actual_crc = crc32(data + 4, body_end - 4);
  if (stored_crc != actual_crc) throw WireError("record checksum mismatch");

  consumed = r.pos();
  return view;
}

bool RecordView::has_attr(std::string_view key) const {
  Reader r(attr_bytes.data(), attr_bytes.size());
  for (std::uint32_t i = 0; i < nattr; ++i) {
    if (parse_attr(r).key == key) return true;
  }
  return false;
}

std::int64_t RecordView::attr_int(std::string_view key,
                                  std::int64_t fallback) const {
  Reader r(attr_bytes.data(), attr_bytes.size());
  for (std::uint32_t i = 0; i < nattr; ++i) {
    const AttrEntry e = parse_attr(r);
    if (e.key == key) return e.tag == kAttrTagInt ? e.int_value : fallback;
  }
  return fallback;
}

double RecordView::attr_double(std::string_view key, double fallback) const {
  Reader r(attr_bytes.data(), attr_bytes.size());
  for (std::uint32_t i = 0; i < nattr; ++i) {
    const AttrEntry e = parse_attr(r);
    if (e.key == key) {
      return e.tag == kAttrTagDouble ? e.double_value : fallback;
    }
  }
  return fallback;
}

Record RecordView::materialize() const {
  Record rec;
  rec.type = type;
  rec.subtype = subtype;
  rec.scope_depth = scope_depth;
  rec.scope_type = scope_type;
  rec.sequence = sequence;
  switch (pay_tag) {
    case 0:
      rec.payload = std::monostate{};
      break;
    case 1:
      rec.payload = ByteVec(bytes.begin(), bytes.end());
      break;
    case 3:
      rec.payload = CplxVec(cplx.begin(), cplx.end());
      break;
    default:  // 2 or packed: both materialize as a FloatVec
      rec.payload = FloatVec(floats.begin(), floats.end());
      break;
  }
  Reader r(attr_bytes.data(), attr_bytes.size());
  for (std::uint32_t i = 0; i < nattr; ++i) {
    const AttrEntry e = parse_attr(r);
    switch (e.tag) {
      case kAttrTagInt:
        rec.attrs.emplace(std::string(e.key), e.int_value);
        break;
      case kAttrTagDouble:
        rec.attrs.emplace(std::string(e.key), e.double_value);
        break;
      default:
        rec.attrs.emplace(std::string(e.key), std::string(e.string_value));
        break;
    }
  }
  return rec;
}

Record decode_record(const std::uint8_t* data, std::size_t len,
                     std::size_t& consumed) {
  // One scratch per thread: decode_record stays allocation-equivalent to a
  // direct decode without giving every call site a WireScratch to thread.
  thread_local WireScratch scratch;
  return decode_record_view(data, len, consumed, scratch).materialize();
}

Record decode_record(const std::vector<std::uint8_t>& frame) {
  std::size_t consumed = 0;
  Record rec = decode_record(frame.data(), frame.size(), consumed);
  if (consumed != frame.size()) throw WireError("trailing bytes after frame");
  return rec;
}

void WireDecoder::feed(const std::uint8_t* data, std::size_t len) {
  // Reclaim consumed bytes before growing: feed time is the only moment the
  // buffer can expand, so compacting here keeps a drain loop memmove-free.
  compact();
  buf_.insert(buf_.end(), data, data + len);
}

bool WireDecoder::next(Record& out) {
  RecordView view;
  if (!next_view(view)) return false;
  out = view.materialize();
  return true;
}

bool WireDecoder::next_view(RecordView& out) {
  if (buf_.size() - pos_ < 4) return false;
  try {
    std::size_t consumed = 0;
    out = decode_record_view(buf_.data() + pos_, buf_.size() - pos_, consumed,
                             scratch_);
    pos_ += consumed;
    return true;
  } catch (const WireTruncated&) {
    // "Need more bytes" is recoverable by feeding more data; any other
    // WireError is genuine corruption and propagates.
    return false;
  }
}

bool WireDecoder::front_matches(const std::uint8_t* prefix, std::size_t len) const {
  if (buffered_bytes() < len) return false;
  return std::memcmp(buf_.data() + pos_, prefix, len) == 0;
}

void WireDecoder::compact() {
  if (pos_ == 0) return;
  if (pos_ == buf_.size()) {
    // Fully drained: dropping the contents is free (no memmove).
    buf_.clear();
    pos_ = 0;
    return;
  }
  // Amortized front compaction: only shift the tail once the consumed prefix
  // outweighs it, so a burst of n records costs O(n) total, not O(n^2).
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    compacted_ += buf_.size() - pos_;
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
}

}  // namespace dynriver::river
