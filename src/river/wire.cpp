#include "river/wire.hpp"

#include <array>
#include <cstring>

#include "common/contracts.hpp"

namespace dynriver::river {

namespace {

// -- little-endian primitives -------------------------------------------------

template <typename T>
void put(std::vector<std::uint8_t>& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::array<std::uint8_t, sizeof(T)> raw;
  std::memcpy(raw.data(), &value, sizeof(T));
  out.insert(out.end(), raw.begin(), raw.end());
}

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t len) : data_(data), len_(len) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    require(sizeof(T));
    T value;
    std::memcpy(&value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  void read_bytes(std::uint8_t* dst, std::size_t n) {
    require(n);
    std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
  }

  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return len_ - pos_; }

 private:
  void require(std::size_t n) const {
    if (pos_ + n > len_) throw WireTruncated("truncated record frame");
  }

  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
};

constexpr std::uint8_t kAttrTagInt = 0;
constexpr std::uint8_t kAttrTagDouble = 1;
constexpr std::uint8_t kAttrTagString = 2;

std::uint32_t crc_table_entry(std::uint32_t i) {
  std::uint32_t c = i;
  for (int k = 0; k < 8; ++k) {
    c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
  }
  return c;
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) t[i] = crc_table_entry(i);
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t len, std::uint32_t seed) {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto& table = crc_table();
  for (std::size_t i = 0; i < len; ++i) {
    c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::vector<std::uint8_t> encode_record(const Record& rec) {
  std::vector<std::uint8_t> out;
  out.reserve(64 + rec.payload_bytes());

  put<std::uint32_t>(out, kWireMagic);
  put<std::uint16_t>(out, kWireVersion);
  put<std::uint8_t>(out, static_cast<std::uint8_t>(rec.type));
  put<std::uint8_t>(out, static_cast<std::uint8_t>(rec.payload.index()));
  put<std::uint32_t>(out, rec.subtype);
  put<std::uint32_t>(out, rec.scope_depth);
  put<std::uint32_t>(out, rec.scope_type);
  put<std::uint64_t>(out, rec.sequence);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(rec.attrs.size()));
  put<std::uint64_t>(out, static_cast<std::uint64_t>(rec.payload_size()));

  for (const auto& [key, value] : rec.attrs) {
    DR_EXPECTS(key.size() <= 0xFFFF);
    put<std::uint16_t>(out, static_cast<std::uint16_t>(key.size()));
    out.insert(out.end(), key.begin(), key.end());
    if (const auto* iv = std::get_if<std::int64_t>(&value)) {
      put<std::uint8_t>(out, kAttrTagInt);
      put<std::int64_t>(out, *iv);
    } else if (const auto* dv = std::get_if<double>(&value)) {
      put<std::uint8_t>(out, kAttrTagDouble);
      put<double>(out, *dv);
    } else {
      const auto& s = std::get<std::string>(value);
      put<std::uint8_t>(out, kAttrTagString);
      put<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
      out.insert(out.end(), s.begin(), s.end());
    }
  }

  std::visit(
      [&out](const auto& p) {
        using T = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<T, std::monostate>) {
          // no payload bytes
        } else if constexpr (std::is_same_v<T, ByteVec>) {
          out.insert(out.end(), p.begin(), p.end());
        } else if constexpr (std::is_same_v<T, FloatVec>) {
          for (float v : p) put<float>(out, v);
        } else if constexpr (std::is_same_v<T, CplxVec>) {
          for (const auto& v : p) {
            put<float>(out, v.real());
            put<float>(out, v.imag());
          }
        }
      },
      rec.payload);

  const std::uint32_t crc = crc32(out.data() + 4, out.size() - 4);
  put<std::uint32_t>(out, crc);
  return out;
}

Record decode_record(const std::uint8_t* data, std::size_t len,
                     std::size_t& consumed) {
  Reader r(data, len);
  const auto magic = r.get<std::uint32_t>();
  if (magic != kWireMagic) throw WireError("bad frame magic");
  const auto version = r.get<std::uint16_t>();
  if (version != kWireVersion) throw WireError("unsupported wire version");

  Record rec;
  const auto type_raw = r.get<std::uint8_t>();
  if (type_raw > static_cast<std::uint8_t>(RecordType::kBadCloseScope)) {
    throw WireError("unknown record type");
  }
  rec.type = static_cast<RecordType>(type_raw);
  const auto pay_tag = r.get<std::uint8_t>();
  if (pay_tag > 3) throw WireError("unknown payload tag");
  rec.subtype = r.get<std::uint32_t>();
  rec.scope_depth = r.get<std::uint32_t>();
  rec.scope_type = r.get<std::uint32_t>();
  rec.sequence = r.get<std::uint64_t>();
  const auto nattr = r.get<std::uint32_t>();
  const auto paylen = r.get<std::uint64_t>();

  // Every length below is validated against the remaining buffer BEFORE
  // allocating, so a corrupted length field yields a WireError rather than
  // an attempted multi-gigabyte allocation.
  for (std::uint32_t i = 0; i < nattr; ++i) {
    const auto key_len = r.get<std::uint16_t>();
    if (key_len > r.remaining()) throw WireTruncated("truncated attribute key");
    std::string key(key_len, '\0');
    r.read_bytes(reinterpret_cast<std::uint8_t*>(key.data()), key_len);
    const auto tag = r.get<std::uint8_t>();
    switch (tag) {
      case kAttrTagInt:
        rec.attrs.emplace(std::move(key), r.get<std::int64_t>());
        break;
      case kAttrTagDouble:
        rec.attrs.emplace(std::move(key), r.get<double>());
        break;
      case kAttrTagString: {
        const auto slen = r.get<std::uint32_t>();
        if (slen > r.remaining()) throw WireTruncated("truncated attribute value");
        std::string s(slen, '\0');
        r.read_bytes(reinterpret_cast<std::uint8_t*>(s.data()), slen);
        rec.attrs.emplace(std::move(key), std::move(s));
        break;
      }
      default:
        throw WireError("unknown attribute tag");
    }
  }

  static constexpr std::size_t kElemSize[] = {0, 1, sizeof(float),
                                              2 * sizeof(float)};
  if (pay_tag != 0 && paylen > r.remaining() / kElemSize[pay_tag]) {
    throw WireTruncated("truncated record frame");
  }

  switch (pay_tag) {
    case 0:
      rec.payload = std::monostate{};
      if (paylen != 0) throw WireError("empty payload with nonzero length");
      break;
    case 1: {
      ByteVec p(paylen);
      if (paylen > 0) r.read_bytes(p.data(), paylen);
      rec.payload = std::move(p);
      break;
    }
    case 2: {
      FloatVec p(paylen);
      for (auto& v : p) v = r.get<float>();
      rec.payload = std::move(p);
      break;
    }
    case 3: {
      CplxVec p(paylen);
      for (auto& v : p) {
        const float re = r.get<float>();
        const float im = r.get<float>();
        v = {re, im};
      }
      rec.payload = std::move(p);
      break;
    }
    default:
      throw WireError("unknown payload tag");
  }

  const std::size_t body_end = r.pos();
  const auto stored_crc = r.get<std::uint32_t>();
  const std::uint32_t actual_crc = crc32(data + 4, body_end - 4);
  if (stored_crc != actual_crc) throw WireError("record checksum mismatch");

  consumed = r.pos();
  return rec;
}

Record decode_record(const std::vector<std::uint8_t>& frame) {
  std::size_t consumed = 0;
  Record rec = decode_record(frame.data(), frame.size(), consumed);
  if (consumed != frame.size()) throw WireError("trailing bytes after frame");
  return rec;
}

void WireDecoder::feed(const std::uint8_t* data, std::size_t len) {
  buf_.insert(buf_.end(), data, data + len);
}

bool WireDecoder::next(Record& out) {
  compact();
  if (buf_.size() - pos_ < 4) return false;
  try {
    std::size_t consumed = 0;
    out = decode_record(buf_.data() + pos_, buf_.size() - pos_, consumed);
    pos_ += consumed;
    return true;
  } catch (const WireTruncated&) {
    // "Need more bytes" is recoverable by feeding more data; any other
    // WireError is genuine corruption and propagates.
    return false;
  }
}

bool WireDecoder::front_matches(const std::uint8_t* prefix, std::size_t len) const {
  if (buffered_bytes() < len) return false;
  return std::memcmp(buf_.data() + pos_, prefix, len) == 0;
}

void WireDecoder::compact() {
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
}

}  // namespace dynriver::river
