#include "river/ops_util.hpp"

#include "common/contracts.hpp"

namespace dynriver::river {

void CounterOp::process(Record rec, Emitter& out) {
  ++records_;
  if (rec.type == RecordType::kData) {
    ++data_records_;
    payload_bytes_ += rec.payload_bytes();
  }
  out.emit(std::move(rec));
}

void SubtypeFilterOp::process(Record rec, Emitter& out) {
  if (rec.type != RecordType::kData || rec.subtype == subtype_) {
    out.emit(std::move(rec));
  }
}

void ScopeSelectOp::process(Record rec, Emitter& out) {
  switch (rec.type) {
    case RecordType::kOpenScope:
      if (inside_depth_ > 0 || rec.scope_type == scope_type_) {
        ++inside_depth_;
        out.emit(std::move(rec));
      }
      return;
    case RecordType::kCloseScope:
    case RecordType::kBadCloseScope:
      if (inside_depth_ > 0) {
        --inside_depth_;
        out.emit(std::move(rec));
      }
      return;
    case RecordType::kData:
      if (inside_depth_ > 0) out.emit(std::move(rec));
      return;
  }
}

void AttrStampOp::process(Record rec, Emitter& out) {
  rec.set_attr(key_, value_);
  out.emit(std::move(rec));
}

TeeOp::TeeOp(std::shared_ptr<RecordChannel> side) : side_(std::move(side)) {
  DR_EXPECTS(side_ != nullptr);
}

void TeeOp::process(Record rec, Emitter& out) {
  side_->send(rec);  // copy to the side channel
  out.emit(std::move(rec));
}

void TeeOp::flush(Emitter& out) {
  (void)out;
  side_->close();
}

}  // namespace dynriver::river
