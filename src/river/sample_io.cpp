#include "river/sample_io.hpp"

#include <algorithm>

#include "river/wire.hpp"

namespace dynriver::river {

std::size_t BufferSource::read(std::span<float> out) {
  const std::size_t n = std::min(out.size(), samples_.size() - pos_);
  std::copy_n(samples_.begin() + static_cast<std::ptrdiff_t>(pos_), n,
              out.begin());
  pos_ += n;
  return n;
}

std::size_t RecordSampleSource::read(std::span<float> out) {
  std::size_t filled = 0;
  while (filled < out.size()) {
    if (pending_pos_ < pending_.size()) {
      const std::size_t n =
          std::min(out.size() - filled, pending_.size() - pending_pos_);
      std::copy_n(pending_.begin() + static_cast<std::ptrdiff_t>(pending_pos_),
                  n, out.begin() + static_cast<std::ptrdiff_t>(filled));
      pending_pos_ += n;
      filled += n;
      continue;
    }
    if (done_) break;

    switch (next_audio(pending_)) {
      case Next::kEnd:
        done_ = true;
        pending_.clear();
        continue;
      case Next::kLost:
        done_ = true;
        lost_ = true;
        pending_.clear();
        continue;
      case Next::kRecord:
        pending_pos_ = 0;
        break;
    }
  }
  return filled;
}

RecordSampleSource::Next RecordSampleSource::next_audio(FloatVec& pending) {
  Record rec;
  for (;;) {
    const Next next = next_record(rec);
    if (next != Next::kRecord) return next;
    ++records_in_;
    if (rec.type == RecordType::kOpenScope && rec.scope_type == kScopeClip) {
      rate_ = rec.attr_double(kAttrSampleRate, rate_);
    } else if (rec.type == RecordType::kData && rec.subtype == subtype() &&
               rec.is_float()) {
      // Self-describing data records (e.g. from AudioSegmentArchiver) carry
      // the rate too, so a replay that seeks past the opening clip scope
      // still learns it.
      if (rate_ == 0.0) rate_ = rec.attr_double(kAttrSampleRate, 0.0);
      pending = std::move(std::get<FloatVec>(rec.payload));
      return Next::kRecord;
    }
  }
}

RecordSampleSource::Next RecordChannelSource::next_record(Record& rec) {
  switch (channel_->recv(rec)) {
    case RecvStatus::kRecord:
      return Next::kRecord;
    case RecvStatus::kClosed:
      return Next::kEnd;
    case RecvStatus::kDisconnected:
    case RecvStatus::kTimeout:
      return Next::kLost;
  }
  return Next::kLost;
}

RecordSampleSource::Next RecordLogSource::next_record(Record& rec) {
  try {
    if (reader_.next(rec)) return Next::kRecord;
    // A torn tail (station died mid-frame) ends the complete prefix but is
    // not a clean close.
    return reader_.torn() ? Next::kLost : Next::kEnd;
  } catch (const WireError&) {
    return Next::kLost;  // structural corruption mid-log
  }
}

std::vector<Record> ensemble_to_records(const Ensemble& ensemble,
                                        std::uint64_t ensemble_id,
                                        double sample_rate) {
  std::vector<Record> records;
  records.reserve(3);

  Record open = Record::open_scope(kScopeEnsemble, 0);
  open.set_attr(kAttrEnsembleId, static_cast<std::int64_t>(ensemble_id));
  open.set_attr(kAttrStartSample,
                static_cast<std::int64_t>(ensemble.start_sample));
  open.set_attr(kAttrNumSamples, static_cast<std::int64_t>(ensemble.length()));
  if (sample_rate > 0.0) open.set_attr(kAttrSampleRate, sample_rate);
  records.push_back(std::move(open));

  records.push_back(Record::data(kSubtypeAudio, ensemble.samples));
  records.push_back(Record::close_scope(kScopeEnsemble, 0));
  return records;
}

void RecordLogEnsembleSink::accept(Ensemble ensemble) {
  for (const auto& rec :
       ensemble_to_records(ensemble, next_id_, sample_rate_)) {
    writer_.write(rec);
  }
  // An ensemble boundary is the natural durability point: a process dying
  // between ensembles loses nothing, and one dying mid-ensemble loses only
  // the torn frame kRecover already drops.
  writer_.sync();
  ++next_id_;
}

void ChannelEnsembleSink::accept(Ensemble ensemble) {
  for (auto& rec : ensemble_to_records(ensemble, next_id_, sample_rate_)) {
    if (!channel_->send(std::move(rec))) ++dropped_;
  }
  ++next_id_;
}

}  // namespace dynriver::river
