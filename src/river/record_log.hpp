// Record logs: durable storage for record streams.
//
// The paper's `readout` operator "writes the clips to record for storage";
// during analysis "a data feed is invoked to read clips from storage".
// RecordLogWriter/RecordLogReader implement that storage as a flat file of
// wire-encoded frames, and ReadoutOp wraps the writer as a pipeline operator
// that forwards records downstream while persisting them.
//
// Durability contract:
//   - write() buffers; sync() makes everything written so far durable
//     (flush + fsync) and close() surfaces any buffered-write failure as an
//     exception instead of silently dropping frames.
//   - A reader hitting a torn tail (a writer died mid-frame — the state
//     kRecover tolerates) reports a clean end plus torn()/lost_bytes();
//     only structural mid-log corruption throws.
// For month-scale archives, prefer the rotating SegmentedRecordLog in
// river/segment_store.hpp; the flat log stays the right tool for single
// clips and per-session readouts.
#pragma once

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "river/operator.hpp"
#include "river/wire.hpp"

namespace dynriver::river {

/// How RecordLogWriter treats an existing file at its path.
enum class LogOpenMode {
  /// Start a fresh log, discarding any existing file (default).
  kTruncate,
  /// Keep every complete frame already on disk, drop a trailing partial
  /// write (e.g. from a station that died mid-frame), and append after it.
  kRecover,
};

/// Scan an existing log and return {valid_bytes, valid_records}: the prefix
/// that parses as complete frames, streamed in bounded chunks (memory is
/// O(largest frame), never O(file)). Anything past the prefix — a torn tail
/// or a corrupted frame — is outside it, matching write-ahead-log recovery
/// semantics.
[[nodiscard]] std::pair<std::uintmax_t, std::size_t> scan_log_valid_prefix(
    const std::filesystem::path& path);

/// Appends wire-encoded records to a file.
class RecordLogWriter {
 public:
  explicit RecordLogWriter(const std::filesystem::path& path,
                           LogOpenMode mode = LogOpenMode::kTruncate);
  ~RecordLogWriter();
  RecordLogWriter(const RecordLogWriter&) = delete;
  RecordLogWriter& operator=(const RecordLogWriter&) = delete;

  void write(const Record& rec);

  /// Flush userspace buffers and fsync the fd: everything written so far
  /// survives both process death and power loss. Throws on failure (ENOSPC
  /// on a full disk surfaces here, not at some later buffered write).
  void sync();

  /// Flush and close, throwing if any buffered byte could not be written —
  /// a full disk must never let records_written() pass for durable. The
  /// destructor closes best-effort instead (no throw, no guarantee).
  void close();

  [[nodiscard]] std::size_t records_written() const { return count_; }
  /// Complete frames preserved from a previous writer (kRecover only).
  [[nodiscard]] std::size_t recovered_records() const { return recovered_; }

 private:
  std::FILE* out_ = nullptr;
  std::string path_;
  std::size_t count_ = 0;
  std::size_t recovered_ = 0;
};

/// Sequentially reads records back from a log file.
class RecordLogReader {
 public:
  explicit RecordLogReader(const std::filesystem::path& path);

  /// Read the next record; false at end of file — including a torn tail
  /// (writer died mid-frame), which ends the stream cleanly with torn()
  /// set rather than throwing. Throws WireError only on structural
  /// mid-log corruption.
  [[nodiscard]] bool next(Record& out);

  [[nodiscard]] std::size_t records_read() const { return count_; }
  /// True once next() returned false because the log ends mid-frame.
  [[nodiscard]] bool torn() const { return torn_; }
  /// Bytes of the torn trailing frame that were dropped (0 when !torn()).
  [[nodiscard]] std::size_t lost_bytes() const { return lost_bytes_; }

 private:
  std::ifstream in_;
  WireDecoder decoder_;
  std::size_t count_ = 0;
  std::size_t lost_bytes_ = 0;
  bool eof_ = false;
  bool torn_ = false;
};

/// Pipeline operator: persist the stream to a log while forwarding it.
class ReadoutOp final : public Operator {
 public:
  explicit ReadoutOp(const std::filesystem::path& path) : writer_(path) {}

  void process(Record rec, Emitter& out) override {
    writer_.write(rec);
    out.emit(std::move(rec));
  }
  void flush(Emitter& out) override {
    (void)out;
    writer_.close();
  }
  [[nodiscard]] std::string_view name() const override { return "readout"; }

  [[nodiscard]] std::size_t records_written() const {
    return writer_.records_written();
  }

 private:
  RecordLogWriter writer_;
};

/// Replay a whole log file through an emitter (the paper's "data feed").
std::size_t replay_log(const std::filesystem::path& path, Emitter& sink);

}  // namespace dynriver::river
