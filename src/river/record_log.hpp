// Record logs: durable storage for record streams.
//
// The paper's `readout` operator "writes the clips to record for storage";
// during analysis "a data feed is invoked to read clips from storage".
// RecordLogWriter/RecordLogReader implement that storage as a flat file of
// wire-encoded frames, and ReadoutOp wraps the writer as a pipeline operator
// that forwards records downstream while persisting them.
#pragma once

#include <filesystem>
#include <fstream>
#include <string>

#include "river/operator.hpp"
#include "river/wire.hpp"

namespace dynriver::river {

/// How RecordLogWriter treats an existing file at its path.
enum class LogOpenMode {
  /// Start a fresh log, discarding any existing file (default).
  kTruncate,
  /// Keep every complete frame already on disk, drop a trailing partial
  /// write (e.g. from a station that died mid-frame), and append after it.
  kRecover,
};

/// Appends wire-encoded records to a file.
class RecordLogWriter {
 public:
  explicit RecordLogWriter(const std::filesystem::path& path,
                           LogOpenMode mode = LogOpenMode::kTruncate);

  void write(const Record& rec);
  void close();

  [[nodiscard]] std::size_t records_written() const { return count_; }
  /// Complete frames preserved from a previous writer (kRecover only).
  [[nodiscard]] std::size_t recovered_records() const { return recovered_; }

 private:
  std::ofstream out_;
  std::size_t count_ = 0;
  std::size_t recovered_ = 0;
};

/// Sequentially reads records back from a log file.
class RecordLogReader {
 public:
  explicit RecordLogReader(const std::filesystem::path& path);

  /// Read the next record; false at end of file.
  /// Throws WireError on a corrupt log.
  [[nodiscard]] bool next(Record& out);

  [[nodiscard]] std::size_t records_read() const { return count_; }

 private:
  std::ifstream in_;
  WireDecoder decoder_;
  std::size_t count_ = 0;
  bool eof_ = false;
};

/// Pipeline operator: persist the stream to a log while forwarding it.
class ReadoutOp final : public Operator {
 public:
  explicit ReadoutOp(const std::filesystem::path& path) : writer_(path) {}

  void process(Record rec, Emitter& out) override {
    writer_.write(rec);
    out.emit(std::move(rec));
  }
  void flush(Emitter& out) override {
    (void)out;
    writer_.close();
  }
  [[nodiscard]] std::string_view name() const override { return "readout"; }

  [[nodiscard]] std::size_t records_written() const {
    return writer_.records_written();
  }

 private:
  RecordLogWriter writer_;
};

/// Replay a whole log file through an emitter (the paper's "data feed").
std::size_t replay_log(const std::filesystem::path& path, Emitter& sink);

}  // namespace dynriver::river
