#include "river/channel.hpp"

#include "common/contracts.hpp"

namespace dynriver::river {

InProcessChannel::InProcessChannel(std::size_t capacity) : capacity_(capacity) {
  DR_EXPECTS(capacity >= 1);
}

bool InProcessChannel::send(Record rec) {
  common::UniqueLock lock(mu_);
  while (queue_.size() >= capacity_ && !closed_ && !disconnected_) {
    cv_send_.wait(lock);
  }
  if (closed_ || disconnected_) return false;
  queue_.push_back(std::move(rec));
  cv_recv_.notify_one();
  return true;
}

RecvStatus InProcessChannel::recv(Record& out) {
  common::UniqueLock lock(mu_);
  while (queue_.empty() && !closed_ && !disconnected_) cv_recv_.wait(lock);
  if (!queue_.empty()) {
    out = std::move(queue_.front());
    queue_.pop_front();
    cv_send_.notify_one();
    return RecvStatus::kRecord;
  }
  return disconnected_ ? RecvStatus::kDisconnected : RecvStatus::kClosed;
}

RecvStatus InProcessChannel::recv_for(Record& out, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  common::UniqueLock lock(mu_);
  while (queue_.empty() && !closed_ && !disconnected_) {
    if (cv_recv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      // Deadline passed: re-test the predicate once (a notify may have
      // raced the timeout), then report.
      if (queue_.empty() && !closed_ && !disconnected_) {
        return RecvStatus::kTimeout;
      }
      break;
    }
  }
  if (!queue_.empty()) {
    out = std::move(queue_.front());
    queue_.pop_front();
    cv_send_.notify_one();
    return RecvStatus::kRecord;
  }
  return disconnected_ ? RecvStatus::kDisconnected : RecvStatus::kClosed;
}

void InProcessChannel::close() {
  {
    const common::LockGuard lock(mu_);
    closed_ = true;
  }
  cv_recv_.notify_all();
  cv_send_.notify_all();
}

void InProcessChannel::disconnect() {
  {
    const common::LockGuard lock(mu_);
    disconnected_ = true;
    queue_.clear();  // an abnormal death loses in-flight records
  }
  cv_recv_.notify_all();
  cv_send_.notify_all();
}

std::size_t InProcessChannel::size() const {
  const common::LockGuard lock(mu_);
  return queue_.size();
}

LossyChannel::LossyChannel(std::shared_ptr<RecordChannel> inner,
                           std::size_t fail_after)
    : inner_(std::move(inner)), fail_after_(fail_after) {
  DR_EXPECTS(inner_ != nullptr);
}

bool LossyChannel::send(Record rec) {
  if (failed_) return false;
  if (sent_ >= fail_after_) {
    failed_ = true;
    inner_->disconnect();
    return false;
  }
  ++sent_;
  return inner_->send(std::move(rec));
}

RecvStatus LossyChannel::recv(Record& out) { return inner_->recv(out); }

void LossyChannel::close() {
  if (!failed_) inner_->close();
}

void LossyChannel::disconnect() {
  failed_ = true;
  inner_->disconnect();
}

}  // namespace dynriver::river
