#include "river/segment.hpp"

#include "common/contracts.hpp"

namespace dynriver::river {

ChannelEmitter::ChannelEmitter(std::shared_ptr<RecordChannel> channel)
    : channel_(std::move(channel)) {
  DR_EXPECTS(channel_ != nullptr);
}

void ChannelEmitter::emit(Record rec) {
  if (!channel_->send(std::move(rec))) ++dropped_;
}

Segment::Segment(std::string name, Pipeline pipeline,
                 std::shared_ptr<RecordChannel> input,
                 std::shared_ptr<RecordChannel> output)
    : name_(std::move(name)),
      pipeline_(std::move(pipeline)),
      input_(std::move(input)),
      output_(std::move(output)) {
  DR_EXPECTS(input_ != nullptr);
  DR_EXPECTS(output_ != nullptr);
}

SegmentRunStats Segment::run() {
  SegmentRunStats stats;
  ChannelEmitter sink(output_);
  std::size_t out_before = 0;

  class CountingEmitter final : public Emitter {
   public:
    CountingEmitter(Emitter& inner, std::size_t& counter)
        : inner_(inner), counter_(counter) {}
    void emit(Record rec) override {
      ++counter_;
      inner_.emit(std::move(rec));
    }

   private:
    Emitter& inner_;
    std::size_t& counter_;
  } counting(sink, stats.records_out);
  (void)out_before;

  Record rec;
  while (true) {
    // Pause requests are honoured only between top-level scopes so a
    // relocated segment never leaves a scope torn across hosts.
    if (pause_requested_.load(std::memory_order_relaxed) && tracker_.depth() == 0) {
      stats.cause = SegmentStopCause::kPausedForRelocation;
      return stats;
    }

    const RecvStatus status = input_->recv_for(rec, /*timeout_ms=*/20);
    switch (status) {
      case RecvStatus::kTimeout:
        continue;  // re-check pause request
      case RecvStatus::kRecord: {
        tracker_.observe(rec);
        ++stats.records_in;
        pipeline_.push(std::move(rec), counting);
        continue;
      }
      case RecvStatus::kClosed:
      case RecvStatus::kDisconnected: {
        const bool clean =
            (status == RecvStatus::kClosed) && !tracker_.any_open();
        for (auto& close_rec : tracker_.force_close_all()) {
          ++stats.bad_closes_emitted;
          pipeline_.push(std::move(close_rec), counting);
        }
        pipeline_.finish(counting);
        if (clean) {
          output_->close();
          stats.cause = SegmentStopCause::kUpstreamClosed;
        } else {
          // Propagate the abnormal end downstream after the forced closes so
          // the next segment can resynchronize too -- but since we already
          // emitted well-formed closes, a clean close is correct here.
          output_->close();
          stats.cause = SegmentStopCause::kUpstreamDisconnected;
        }
        return stats;
      }
    }
  }
}

}  // namespace dynriver::river
