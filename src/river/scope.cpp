#include "river/scope.hpp"

#include <string>

namespace dynriver::river {

void ScopeTracker::observe(const Record& rec) {
  switch (rec.type) {
    case RecordType::kOpenScope: {
      if (rec.scope_depth != open_.size()) {
        throw ScopeError("OpenScope at depth " + std::to_string(rec.scope_depth) +
                         " but " + std::to_string(open_.size()) +
                         " scopes are open");
      }
      open_.push_back(rec.scope_type);
      break;
    }
    case RecordType::kCloseScope:
    case RecordType::kBadCloseScope: {
      if (open_.empty()) {
        throw ScopeError("scope close with no open scope");
      }
      const std::uint32_t expected_depth =
          static_cast<std::uint32_t>(open_.size() - 1);
      if (rec.scope_depth != expected_depth) {
        throw ScopeError("scope close at depth " + std::to_string(rec.scope_depth) +
                         " but innermost open scope is at depth " +
                         std::to_string(expected_depth));
      }
      if (rec.scope_type != open_.back()) {
        throw ScopeError("scope close of type " + std::to_string(rec.scope_type) +
                         " does not match open scope type " +
                         std::to_string(open_.back()));
      }
      open_.pop_back();
      break;
    }
    case RecordType::kData:
      // Data records are valid at any depth, including depth 0 (unscoped).
      break;
  }
}

std::vector<Record> ScopeTracker::force_close_all() {
  std::vector<Record> closes;
  closes.reserve(open_.size());
  while (!open_.empty()) {
    const auto depth = static_cast<std::uint32_t>(open_.size() - 1);
    closes.push_back(Record::bad_close_scope(open_.back(), depth));
    open_.pop_back();
  }
  return closes;
}

}  // namespace dynriver::river
