#include "river/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>

#include "common/contracts.hpp"

namespace dynriver::river {

namespace {
std::string errno_message(const char* prefix) {
  return std::string(prefix) + ": " + std::strerror(errno);
}
}  // namespace

FdHandle::~FdHandle() { reset(); }

FdHandle::FdHandle(FdHandle&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

FdHandle& FdHandle::operator=(FdHandle&& other) noexcept {
  if (this != &other) {
    reset();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void FdHandle::reset() {
  if (fd_ >= 0) {
    ::close(fd_);  // best-effort: socket teardown, no data to lose
    fd_ = -1;
  }
}

TcpStream TcpStream::connect(const std::string& host, std::uint16_t port) {
  FdHandle fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw TcpError(errno_message("socket"));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw TcpError("invalid address: " + host);
  }
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw TcpError(errno_message("connect"));
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpStream(std::move(fd));
}

bool TcpStream::send_all(const std::uint8_t* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const auto n = ::send(fd_.get(), data + off, len - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::ptrdiff_t TcpStream::recv_some(std::uint8_t* data, std::size_t len) {
  while (true) {
    const auto n = ::recv(fd_.get(), data, len, 0);
    if (n < 0 && errno == EINTR) continue;
    return n;
  }
}

void TcpStream::shutdown_now() {
  if (fd_.valid()) {
    // Force an abortive close: RST instead of FIN, so the peer sees an error
    // rather than an orderly shutdown.
    struct linger lg {};
    lg.l_onoff = 1;
    lg.l_linger = 0;
    ::setsockopt(fd_.get(), SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    fd_.reset();
  }
}

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = FdHandle(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd_.valid()) throw TcpError(errno_message("socket"));
  const int one = 1;
  ::setsockopt(fd_.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd_.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw TcpError(errno_message("bind"));
  }
  if (::listen(fd_.get(), 16) != 0) throw TcpError(errno_message("listen"));

  socklen_t len = sizeof(addr);
  if (::getsockname(fd_.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw TcpError(errno_message("getsockname"));
  }
  port_ = ntohs(addr.sin_port);
}

TcpStream TcpListener::accept() {
  const int client = ::accept(fd_.get(), nullptr, nullptr);
  if (client < 0) throw TcpError(errno_message("accept"));
  const int one = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpStream(FdHandle(client));
}

void TcpListener::close() { fd_.reset(); }

const std::array<std::uint8_t, 8>& eos_sentinel() {
  // magic "DRIV" followed by 0xFFFF version marker and 0xFFFF pad: cannot be
  // confused with a real frame because the wire version is small.
  static const std::array<std::uint8_t, 8> sentinel = {0x56, 0x49, 0x52, 0x44,
                                                       0xFF, 0xFF, 0xFF, 0xFF};
  return sentinel;
}

TcpRecordChannel::TcpRecordChannel(TcpStream stream) : stream_(std::move(stream)) {}

bool TcpRecordChannel::send(Record rec) {
  if (send_closed_) return false;
  const auto frame = encode_record(rec);
  return stream_.send_all(frame.data(), frame.size());
}

RecvStatus TcpRecordChannel::recv(Record& out) {
  const auto& eos = eos_sentinel();
  while (true) {
    if (saw_clean_close_) return RecvStatus::kClosed;
    // The sentinel is always the final bytes of the stream; check for it at
    // the buffer front before attempting a frame decode (its first four
    // bytes alias the frame magic, so decoding it would raise a version
    // error instead of signalling a clean close). A partial sentinel prefix
    // must wait for more bytes rather than being decoded.
    const std::size_t avail =
        std::min<std::size_t>(decoder_.buffered_bytes(), eos.size());
    const bool eos_prefix =
        avail > 0 && decoder_.front_matches(eos.data(), avail);
    if (eos_prefix && avail == eos.size()) {
      saw_clean_close_ = true;
      return RecvStatus::kClosed;
    }
    if (!eos_prefix && decoder_.next(out)) return RecvStatus::kRecord;

    std::array<std::uint8_t, 16 * 1024> chunk;
    const auto n = stream_.recv_some(chunk.data(), chunk.size());
    if (n > 0) {
      decoder_.feed(chunk.data(), static_cast<std::size_t>(n));
      continue;
    }
    // n == 0: orderly FIN without the sentinel (upstream closed its socket
    // without announcing end of stream); n < 0: error. Both are abnormal.
    return RecvStatus::kDisconnected;
  }
}

void TcpRecordChannel::close() {
  if (send_closed_) return;
  send_closed_ = true;
  const auto& eos = eos_sentinel();
  stream_.send_all(eos.data(), eos.size());
}

void TcpRecordChannel::disconnect() {
  send_closed_ = true;
  stream_.shutdown_now();
}

}  // namespace dynriver::river
