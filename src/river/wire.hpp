// Binary wire format for Dynamic River records.
//
// Records cross host boundaries through the streamin/streamout operators; the
// format below is a small, versioned, little-endian framing with an explicit
// length and a checksum so a receiver can resynchronize after a partial write
// from a dying upstream segment.
//
// Frame layout:
//   magic   u32  'DRIV' (0x44524956)
//   version u16
//   type    u8
//   pay_tag u8   (payload alternative index)
//   subtype u32
//   depth   u32
//   stype   u32
//   seq     u64
//   nattr   u32
//   paylen  u64  (payload length in ELEMENTS)
//   ...attributes... (key: u16 len + bytes; tag u8; value)
//   ...payload...    (elementwise little-endian)
//   crc32   u32  (over everything after magic, excluding the crc itself)
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

#include "river/record.hpp"

namespace dynriver::river {

/// Thrown on malformed input (bad magic, truncated frame, checksum mismatch,
/// unknown tags).
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// The subset of WireError meaning "the buffer ends before the frame does":
/// recoverable by feeding more bytes (a fragment mid-flight) or by treating
/// the spot as a torn tail (a writer died mid-frame). Everything thrown as a
/// plain WireError is structural corruption and is never recoverable.
class WireTruncated : public WireError {
 public:
  explicit WireTruncated(const std::string& what) : WireError(what) {}
};

inline constexpr std::uint32_t kWireMagic = 0x44524956;  // "DRIV"
inline constexpr std::uint16_t kWireVersion = 1;

/// CRC-32 (IEEE 802.3 polynomial, reflected). Exposed for tests.
[[nodiscard]] std::uint32_t crc32(const std::uint8_t* data, std::size_t len,
                                  std::uint32_t seed = 0);

/// Serialize a record into a self-delimiting byte frame.
[[nodiscard]] std::vector<std::uint8_t> encode_record(const Record& rec);

/// Decode one record from a buffer. `consumed` receives the frame size.
/// Throws WireError on malformed input.
[[nodiscard]] Record decode_record(const std::uint8_t* data, std::size_t len,
                                   std::size_t& consumed);

/// Convenience: decode a frame that is exactly one record.
[[nodiscard]] Record decode_record(const std::vector<std::uint8_t>& frame);

/// Incremental decoder: feed arbitrary chunks, pop completed records.
/// Used by TCP transport where frames arrive fragmented.
class WireDecoder {
 public:
  /// Append raw bytes received from the network.
  void feed(const std::uint8_t* data, std::size_t len);

  /// Try to decode the next complete record; returns false when more bytes
  /// are needed. Throws WireError on malformed input.
  [[nodiscard]] bool next(Record& out);

  [[nodiscard]] std::size_t buffered_bytes() const { return buf_.size() - pos_; }

  /// True iff the buffered bytes begin with `prefix` (used by transports to
  /// detect in-band control markers such as the TCP end-of-stream sentinel).
  [[nodiscard]] bool front_matches(const std::uint8_t* prefix,
                                   std::size_t len) const;

 private:
  void compact();

  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

}  // namespace dynriver::river
