// Binary wire format for Dynamic River records.
//
// Records cross host boundaries through the streamin/streamout operators; the
// format below is a small, versioned, little-endian framing with an explicit
// length and a checksum so a receiver can resynchronize after a partial write
// from a dying upstream segment.
//
// Frame layout:
//   magic   u32  'DRIV' (0x44524956)
//   version u16
//   type    u8
//   pay_tag u8   (payload alternative index; 4 = bit-packed float vector)
//   subtype u32
//   depth   u32
//   stype   u32
//   seq     u64
//   nattr   u32
//   paylen  u64  (payload length in ELEMENTS)
//   ...attributes... (key: u16 len + bytes; tag u8; value)
//   ...payload...    (elementwise little-endian)
//   crc32   u32  (over everything after magic, excluding the crc itself)
//
// pay_tag 4 is the packed form of a float vector (pay_tag 2): paylen still
// counts ELEMENTS, and the payload bytes are a u32 packed byte length
// followed by a river/bitpack.hpp stream. Decoding a packed frame yields a
// FloatVec record bit-identical to the unpacked original; writers opt in
// per frame (see encode_record's codec parameter), so packed and raw frames
// interleave freely in one stream or store. Decoders older than pay_tag 4
// reject such frames as "unknown payload tag" — the version field stays 1
// because every frame a v1 writer could produce is still decoded unchanged.
#pragma once

#include <complex>
#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <span>
#include <string_view>
#include <vector>

#include "river/record.hpp"

namespace dynriver::river {

/// Thrown on malformed input (bad magic, truncated frame, checksum mismatch,
/// unknown tags).
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// The subset of WireError meaning "the buffer ends before the frame does":
/// recoverable by feeding more bytes (a fragment mid-flight) or by treating
/// the spot as a torn tail (a writer died mid-frame). Everything thrown as a
/// plain WireError is structural corruption and is never recoverable.
class WireTruncated : public WireError {
 public:
  explicit WireTruncated(const std::string& what) : WireError(what) {}
};

inline constexpr std::uint32_t kWireMagic = 0x44524956;  // "DRIV"
inline constexpr std::uint16_t kWireVersion = 1;
/// pay_tag of a bit-packed float payload (packed alternative of tag 2).
inline constexpr std::uint8_t kPayTagPackedFloats = 4;
/// Upper bound on one frame's decoded payload, in bytes. No writer comes
/// near it (records carry ~900 samples; segment frames are capped at 1 GiB
/// including headers), so a larger declared length is corruption — rejected
/// as WireError before any allocation. The cap is what bounds a decoder's
/// memory against a hostile length field: without it a packed frame can
/// legally declare up to 128 elements per payload byte (see
/// river/bitpack.hpp), amplifying a small frame into an enormous resize.
inline constexpr std::uint64_t kMaxWirePayloadBytes = 1ull << 30;

/// CRC-32 (IEEE 802.3 polynomial, reflected). Exposed for tests.
[[nodiscard]] std::uint32_t crc32(const std::uint8_t* data, std::size_t len,
                                  std::uint32_t seed = 0);

/// How encode_record serializes float payloads.
enum class PayloadCodec : std::uint8_t {
  kRaw,     ///< elementwise little-endian f32 (pay_tag 2)
  kPacked,  ///< delta/xor bit-packed (pay_tag 4); other payload kinds raw
};

/// Serialize a record into a self-delimiting byte frame.
[[nodiscard]] std::vector<std::uint8_t> encode_record(
    const Record& rec, PayloadCodec codec = PayloadCodec::kRaw);

/// Decode one record from a buffer. `consumed` receives the frame size.
/// Throws WireError on malformed input.
[[nodiscard]] Record decode_record(const std::uint8_t* data, std::size_t len,
                                   std::size_t& consumed);

/// Convenience: decode a frame that is exactly one record.
[[nodiscard]] Record decode_record(const std::vector<std::uint8_t>& frame);

/// Reusable decode buffers backing a RecordView's payload spans. Steady-state
/// decode loops reuse one WireScratch so no per-frame heap allocation happens
/// once the buffers reached the stream's record size.
struct WireScratch {
  FloatVec floats;
  CplxVec cplx;
};

/// Non-owning view of one decoded frame: header fields by value, payload as
/// spans into the caller's WireScratch (floats/cplx; copied there because
/// payload bytes inside a frame are unaligned) or into the frame buffer
/// itself (bytes), attributes left in place and parsed lazily on access.
/// A view is invalidated by touching the scratch, the frame buffer, or
/// decoding the next frame; call materialize() to keep the record.
struct RecordView {
  RecordType type = RecordType::kData;
  std::uint8_t pay_tag = 0;  ///< payload alternative (4 = was packed)
  std::uint32_t subtype = 0;
  std::uint32_t scope_depth = 0;
  std::uint32_t scope_type = 0;
  std::uint64_t sequence = 0;
  std::uint32_t nattr = 0;
  std::span<const std::uint8_t> attr_bytes;  ///< raw attribute region
  std::span<const float> floats;             ///< pay_tag 2 or 4
  std::span<const std::complex<float>> cplx;
  std::span<const std::uint8_t> bytes;

  [[nodiscard]] bool is_float() const {
    return pay_tag == 2 || pay_tag == kPayTagPackedFloats;
  }
  [[nodiscard]] std::size_t payload_size() const {
    return is_float() ? floats.size()
                      : (pay_tag == 1 ? bytes.size() : cplx.size());
  }

  /// Lazy attribute reads: a linear scan of the (already validated) attr
  /// region, no allocation. Same fallback semantics as Record.
  [[nodiscard]] bool has_attr(std::string_view key) const;
  [[nodiscard]] std::int64_t attr_int(std::string_view key,
                                      std::int64_t fallback) const;
  [[nodiscard]] double attr_double(std::string_view key, double fallback) const;

  /// Build a full owning Record (payload copied, attrs parsed into the map).
  [[nodiscard]] Record materialize() const;
};

/// Decode one frame into a non-owning view, reusing `scratch` for payload
/// storage: zero heap allocations once the scratch buffers are warm. Same
/// validation and errors as decode_record; `consumed` receives the frame
/// size. The view lives until the next decode into the same scratch (or the
/// frame buffer mutates).
[[nodiscard]] RecordView decode_record_view(const std::uint8_t* data,
                                            std::size_t len,
                                            std::size_t& consumed,
                                            WireScratch& scratch);

/// Incremental decoder: feed arbitrary chunks, pop completed records.
/// Used by TCP transport where frames arrive fragmented.
class WireDecoder {
 public:
  /// Append raw bytes received from the network.
  void feed(const std::uint8_t* data, std::size_t len);

  /// Try to decode the next complete record; returns false when more bytes
  /// are needed. Throws WireError on malformed input.
  [[nodiscard]] bool next(Record& out);

  /// View-based variant of next(): no per-frame allocation (the view's
  /// payload lives in an internal scratch reused across calls). The view is
  /// invalidated by the following feed()/next()/next_view() call.
  [[nodiscard]] bool next_view(RecordView& out);

  [[nodiscard]] std::size_t buffered_bytes() const { return buf_.size() - pos_; }

  /// True iff the buffered bytes begin with `prefix` (used by transports to
  /// detect in-band control markers such as the TCP end-of-stream sentinel).
  [[nodiscard]] bool front_matches(const std::uint8_t* prefix,
                                   std::size_t len) const;

  /// Total bytes the decoder has memmoved while compacting its buffer —
  /// pinned by tests to prove burst decoding stays linear (amortized O(1)
  /// compaction per consumed byte).
  [[nodiscard]] std::size_t compacted_bytes() const { return compacted_; }

 private:
  void compact();

  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
  std::size_t compacted_ = 0;
  WireScratch scratch_;
};

}  // namespace dynriver::river
