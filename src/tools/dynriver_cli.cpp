// dynriver: command-line front end for the pipeline.
//
// Subcommands:
//   synth    render a synthetic field clip to WAV (with a truth sidecar)
//   extract  cut ensembles out of a WAV recording (each to its own WAV)
//   scores   dump per-sample anomaly score + trigger as CSV
//   topo     print the Figure 5 operator topology for the current params
//   species  list the Table 1 species catalog
//
// extract and scores run the push-based StreamSession over a WavFileSource:
// the recording streams through in record-size chunks with bounded memory
// (never loaded whole), and each ensemble is written the moment its trigger
// closes — the same code path, bit-identical, for a 30-second clip or a
// season-long archive file.
//
// Examples:
//   dynriver synth --species NOCA,RWBL --seed 7 --out clip.wav
//   dynriver extract clip.wav --out-prefix ensemble_
//   dynriver scores clip.wav > scores.csv
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/birdsong.hpp"
#include "core/stream_session.hpp"
#include "dsp/wav.hpp"
#include "river/sample_io.hpp"
#include "synth/station.hpp"

namespace core = dynriver::core;
namespace dsp = dynriver::dsp;
namespace river = dynriver::river;
namespace synth = dynriver::synth;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: dynriver <command> [options]\n"
               "  synth   --species A,B,... [--seed N] [--out clip.wav]\n"
               "  extract <clip.wav> [--out-prefix p_]\n"
               "  scores  <clip.wav>\n"
               "  topo\n"
               "  species\n");
  return 2;
}

std::string arg_value(int argc, char** argv, const char* name,
                      const std::string& fallback) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

int find_species(const std::string& code) {
  for (std::size_t s = 0; s < synth::kNumSpecies; ++s) {
    if (synth::species(s).code == code) return static_cast<int>(s);
  }
  return -1;
}

int cmd_species() {
  std::printf("%-6s %-26s %s\n", "code", "common name", "nominal song (s)");
  for (std::size_t s = 0; s < synth::kNumSpecies; ++s) {
    const auto& tpl = synth::species(s);
    std::printf("%-6s %-26s %.2f\n", tpl.code.c_str(), tpl.common_name.c_str(),
                synth::nominal_song_duration(tpl));
  }
  return 0;
}

int cmd_topo() {
  std::printf("%s\n", core::pipeline_diagram(core::PipelineParams{}).c_str());
  return 0;
}

int cmd_synth(int argc, char** argv) {
  const auto species_list = arg_value(argc, argv, "--species", "NOCA,RWBL");
  const auto seed = static_cast<std::uint64_t>(
      std::atoll(arg_value(argc, argv, "--seed", "7").c_str()));
  const auto out = arg_value(argc, argv, "--out", "clip.wav");

  std::vector<synth::SpeciesId> singers;
  std::string token;
  for (const char c : species_list + ",") {
    if (c == ',') {
      if (!token.empty()) {
        const int id = find_species(token);
        if (id < 0) {
          std::fprintf(stderr, "unknown species code: %s\n", token.c_str());
          return 2;
        }
        singers.push_back(static_cast<synth::SpeciesId>(id));
        token.clear();
      }
    } else {
      token += c;
    }
  }
  if (singers.empty()) return usage();

  synth::SensorStation station(synth::StationParams{}, seed);
  const auto rec = station.record_clip(singers);
  dsp::write_wav(out, rec.clip);
  std::printf("wrote %s (%.1f s, %u Hz)\n", out.c_str(),
              rec.clip.duration_seconds(), rec.clip.sample_rate);

  const auto sidecar = out + ".truth";
  if (FILE* f = std::fopen(sidecar.c_str(), "w")) {
    std::fprintf(f, "species,start_sample,length\n");
    for (const auto& t : rec.truth) {
      std::fprintf(f, "%s,%zu,%zu\n", synth::species(t.species).code.c_str(),
                   t.start_sample, t.length);
    }
    std::fclose(f);
    std::printf("wrote %s (%zu vocalizations)\n", sidecar.c_str(),
                rec.truth.size());
  }
  return 0;
}

int cmd_extract(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string in = argv[0];
  const auto prefix = arg_value(argc, argv, "--out-prefix", "ensemble_");

  river::WavFileSource source(in);
  core::PipelineParams params;
  params.sample_rate = source.sample_rate();
  core::StreamSession session(params);

  // Each ensemble lands on disk the moment its trigger closes; only the
  // open ensemble and the merge gap are ever held in memory.
  std::size_t count = 0;
  std::size_t retained = 0;
  river::CallbackEnsembleSink sink([&](river::Ensemble e) {
    dsp::WavClip cut;
    cut.sample_rate = static_cast<std::uint32_t>(params.sample_rate);
    cut.samples = std::move(e.samples);
    const auto path = prefix + std::to_string(count) + ".wav";
    dsp::write_wav(path, cut);
    std::printf("  %s  [%zu, %zu) %.2f s\n", path.c_str(), e.start_sample,
                e.start_sample + cut.samples.size(),
                static_cast<double>(cut.samples.size()) / params.sample_rate);
    ++count;
    retained += cut.samples.size();
  });

  const auto stats = core::run_stream(source, session, sink);
  std::printf("%zu ensemble(s); kept %.1f%% of %zu samples "
              "(peak session buffer: %zu samples)\n",
              count,
              100.0 * static_cast<double>(retained) /
                  static_cast<double>(std::max<std::size_t>(1, stats.samples_in)),
              stats.samples_in, stats.peak_buffered_samples);
  return 0;
}

int cmd_scores(int argc, char** argv) {
  if (argc < 1) return usage();
  river::WavFileSource source(argv[0]);
  core::PipelineParams params;
  params.sample_rate = source.sample_rate();

  // The per-sample observer prints as the stream flows — no score history
  // accumulates, so this works on recordings of any length.
  std::printf("sample,score,trigger\n");
  core::SessionOptions options;
  options.on_signal = [](std::size_t i, float score, bool trig) {
    if (i % 24 == 0) {
      std::printf("%zu,%.6f,%d\n", i, static_cast<double>(score),
                  trig ? 1 : 0);
    }
  };
  core::StreamSession session(params, std::move(options));
  river::NullEnsembleSink discard;
  core::run_stream(source, session, discard);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "species") return cmd_species();
  if (cmd == "topo") return cmd_topo();
  if (cmd == "synth") return cmd_synth(argc - 2, argv + 2);
  if (cmd == "extract") return cmd_extract(argc - 2, argv + 2);
  if (cmd == "scores") return cmd_scores(argc - 2, argv + 2);
  return usage();
}
