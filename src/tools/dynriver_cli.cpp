// dynriver: command-line front end for the pipeline.
//
// Subcommands:
//   synth    render a synthetic field clip to WAV (with a truth sidecar)
//   extract  cut ensembles out of a WAV recording (each to its own WAV)
//   scores   dump per-sample anomaly score + trigger as CSV
//   serve    multiplex many simulated stations through one SessionScheduler
//   archive  append a WAV recording to a rotating segment store
//   replay   re-extract a time range of a segment store through the scheduler
//   topo     print the Figure 5 operator topology for the current params
//   species  list the Table 1 species catalog
//
// extract and scores run the push-based StreamSession over a WavFileSource:
// the recording streams through in record-size chunks with bounded memory
// (never loaded whole), and each ensemble is written the moment its trigger
// closes — the same code path, bit-identical, for a 30-second clip or a
// season-long archive file. serve is the host-scale shape: N stations'
// sessions driven fairly from one scheduler with per-station backpressure.
//
// Examples:
//   dynriver synth --species NOCA,RWBL --seed 7 --out clip.wav
//   dynriver extract clip.wav --out-prefix ensemble_
//   dynriver scores clip.wav > scores.csv
//   dynriver serve --stations 8 --clips 2 --policy drop --retune-sigma 6
//   dynriver archive clip.wav --store ./archive --segment-kb 4096
//   dynriver replay --store ./archive --from 10 --to 40
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/birdsong.hpp"
#include "core/session_scheduler.hpp"
#include "core/stream_session.hpp"
#include "dsp/wav.hpp"
#include "river/sample_io.hpp"
#include "river/segment_store.hpp"
#include "synth/station.hpp"
#include "synth/station_source.hpp"

namespace core = dynriver::core;
namespace dsp = dynriver::dsp;
namespace river = dynriver::river;
namespace synth = dynriver::synth;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: dynriver <command> [options]\n"
               "  synth   --species A,B,... [--seed N] [--out clip.wav]\n"
               "  extract <clip.wav> [--out-prefix p_]\n"
               "  scores  <clip.wav>\n"
               "  serve   [--stations N] [--clips M] [--policy block|drop]\n"
               "          [--queue SAMPLES] [--threads T] [--retune-sigma S]\n"
               "  archive <clip.wav> --store DIR [--segment-kb N]\n"
               "          [--segment-seconds S] [--pack|--no-pack]\n"
               "  replay  --store DIR [--from T] [--to T]\n"
               "  topo\n"
               "  species\n");
  return 2;
}

std::string arg_value(int argc, char** argv, const char* name,
                      const std::string& fallback) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

bool has_flag(int argc, char** argv, const char* name) {
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

int find_species(const std::string& code) {
  for (std::size_t s = 0; s < synth::kNumSpecies; ++s) {
    if (synth::species(s).code == code) return static_cast<int>(s);
  }
  return -1;
}

int cmd_species() {
  std::printf("%-6s %-26s %s\n", "code", "common name", "nominal song (s)");
  for (std::size_t s = 0; s < synth::kNumSpecies; ++s) {
    const auto& tpl = synth::species(s);
    std::printf("%-6s %-26s %.2f\n", tpl.code.c_str(), tpl.common_name.c_str(),
                synth::nominal_song_duration(tpl));
  }
  return 0;
}

int cmd_topo() {
  std::printf("%s\n", core::pipeline_diagram(core::PipelineParams{}).c_str());
  return 0;
}

int cmd_synth(int argc, char** argv) {
  const auto species_list = arg_value(argc, argv, "--species", "NOCA,RWBL");
  const auto seed = static_cast<std::uint64_t>(
      std::atoll(arg_value(argc, argv, "--seed", "7").c_str()));
  const auto out = arg_value(argc, argv, "--out", "clip.wav");

  std::vector<synth::SpeciesId> singers;
  std::string token;
  for (const char c : species_list + ",") {
    if (c == ',') {
      if (!token.empty()) {
        const int id = find_species(token);
        if (id < 0) {
          std::fprintf(stderr, "unknown species code: %s\n", token.c_str());
          return 2;
        }
        singers.push_back(static_cast<synth::SpeciesId>(id));
        token.clear();
      }
    } else {
      token += c;
    }
  }
  if (singers.empty()) return usage();

  synth::SensorStation station(synth::StationParams{}, seed);
  const auto rec = station.record_clip(singers);
  dsp::write_wav(out, rec.clip);
  std::printf("wrote %s (%.1f s, %u Hz)\n", out.c_str(),
              rec.clip.duration_seconds(), rec.clip.sample_rate);

  const auto sidecar = out + ".truth";
  if (FILE* f = std::fopen(sidecar.c_str(), "w")) {
    std::fprintf(f, "species,start_sample,length\n");
    for (const auto& t : rec.truth) {
      std::fprintf(f, "%s,%zu,%zu\n", synth::species(t.species).code.c_str(),
                   t.start_sample, t.length);
    }
    // fclose flushes stdio buffers; an error here means the sidecar on disk
    // is incomplete even though every fprintf "succeeded".
    if (std::fclose(f) != 0) {
      std::fprintf(stderr, "error: writing %s failed: %s\n", sidecar.c_str(),
                   std::strerror(errno));
      return 1;
    }
    std::printf("wrote %s (%zu vocalizations)\n", sidecar.c_str(),
                rec.truth.size());
  }
  return 0;
}

int cmd_extract(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string in = argv[0];
  const auto prefix = arg_value(argc, argv, "--out-prefix", "ensemble_");

  river::WavFileSource source(in);
  core::PipelineParams params;
  params.sample_rate = source.sample_rate();
  core::StreamSession session(params);

  // Each ensemble lands on disk the moment its trigger closes; only the
  // open ensemble and the merge gap are ever held in memory.
  std::size_t count = 0;
  std::size_t retained = 0;
  river::CallbackEnsembleSink sink([&](river::Ensemble e) {
    dsp::WavClip cut;
    cut.sample_rate = static_cast<std::uint32_t>(params.sample_rate);
    cut.samples = std::move(e.samples);
    const auto path = prefix + std::to_string(count) + ".wav";
    dsp::write_wav(path, cut);
    std::printf("  %s  [%zu, %zu) %.2f s\n", path.c_str(), e.start_sample,
                e.start_sample + cut.samples.size(),
                static_cast<double>(cut.samples.size()) / params.sample_rate);
    ++count;
    retained += cut.samples.size();
  });

  const auto stats = core::run_stream(source, session, sink);
  std::printf("%zu ensemble(s); kept %.1f%% of %zu samples "
              "(peak session buffer: %zu samples)\n",
              count,
              100.0 * static_cast<double>(retained) /
                  static_cast<double>(std::max<std::size_t>(1, stats.samples_in)),
              stats.samples_in, stats.peak_buffered_samples);
  return 0;
}

int cmd_scores(int argc, char** argv) {
  if (argc < 1) return usage();
  river::WavFileSource source(argv[0]);
  core::PipelineParams params;
  params.sample_rate = source.sample_rate();

  // The per-sample observer prints as the stream flows — no score history
  // accumulates, so this works on recordings of any length.
  std::printf("sample,score,trigger\n");
  core::SessionOptions options;
  options.on_signal = [](std::size_t i, float score, bool trig) {
    if (i % 24 == 0) {
      std::printf("%zu,%.6f,%d\n", i, static_cast<double>(score),
                  trig ? 1 : 0);
    }
  };
  core::StreamSession session(params, std::move(options));
  river::NullEnsembleSink discard;
  core::run_stream(source, session, discard);
  return 0;
}

// serve: N simulated stations stream concurrently into one
// SessionScheduler — the paper's sensor-network shape on one analysis host.
// Each station's reader thread pulls lazily-rendered clips through a
// synth::StationSource into a bounded ingest queue (block = lossless
// backpressure, drop = evict-oldest with exact loss accounting); worker
// lanes drive the sessions with deficit round-robin; ensembles print the
// moment they close. --retune-sigma demonstrates live re-parameterization:
// once the survey is warmed up, every running session adopts the new
// trigger threshold at its next ensemble boundary, mid-stream.
int cmd_serve(int argc, char** argv) {
  const int stations = std::atoi(arg_value(argc, argv, "--stations", "4").c_str());
  const int clips = std::atoi(arg_value(argc, argv, "--clips", "2").c_str());
  const auto policy_name = arg_value(argc, argv, "--policy", "block");
  const long long queue_arg =
      std::atoll(arg_value(argc, argv, "--queue", "65536").c_str());
  const long long threads_arg =
      std::atoll(arg_value(argc, argv, "--threads", "0").c_str());
  const double retune_sigma =
      std::atof(arg_value(argc, argv, "--retune-sigma", "0").c_str());

  const core::PipelineParams params;
  // Validate here, not via the library's contract checks: a bad flag should
  // print usage, not abort. The queue must hold at least one read chunk
  // (= record_size).
  if (stations < 1 || clips < 1 ||
      (policy_name != "block" && policy_name != "drop") ||
      queue_arg < static_cast<long long>(params.record_size) ||
      threads_arg < 0) {
    return usage();
  }
  const auto queue = static_cast<std::size_t>(queue_arg);
  const auto threads = static_cast<std::size_t>(threads_arg);
  core::SchedulerOptions options;
  options.threads = threads;
  core::SessionScheduler scheduler(std::move(options));

  // One lazily-rendering source per station; clip in memory at a time.
  std::vector<std::unique_ptr<synth::SensorStation>> field;
  std::vector<std::shared_ptr<river::CallbackEnsembleSink>> sinks;
  std::atomic<std::size_t> total_ensembles{0};
  const auto engine = std::make_shared<const core::SpectralEngine>(params);
  for (int st = 0; st < stations; ++st) {
    field.push_back(std::make_unique<synth::SensorStation>(
        synth::StationParams{}, 5000 + static_cast<std::uint64_t>(st)));
    std::vector<synth::SpeciesId> singers = {
        static_cast<synth::SpeciesId>(static_cast<std::size_t>(st) %
                                      synth::kNumSpecies),
        static_cast<synth::SpeciesId>(static_cast<std::size_t>(st + 3) %
                                      synth::kNumSpecies)};
    auto source = std::make_shared<synth::StationSource>(
        *field.back(), std::move(singers), static_cast<std::size_t>(clips));

    const std::string name = "station-" + std::to_string(st);
    auto sink = std::make_shared<river::CallbackEnsembleSink>(
        [name, &params, &total_ensembles](river::Ensemble e) {
          ++total_ensembles;
          std::printf("  %-10s ensemble [%7.2f, %7.2f) s  (%zu samples)\n",
                      name.c_str(),
                      static_cast<double>(e.start_sample) / params.sample_rate,
                      static_cast<double>(e.end_sample()) / params.sample_rate,
                      e.length());
        });
    sinks.push_back(sink);

    core::StationConfig config;
    config.params = params;
    config.policy = policy_name == "drop" ? core::BackpressurePolicy::kDropOldest
                                          : core::BackpressurePolicy::kBlock;
    config.queue_capacity_samples = queue;
    config.engine = engine;  // one FFT-plan/window cache for the whole host
    scheduler.add_station(name, source, sink, config);
  }

  std::printf("serving %d stations x %d clips (%s policy, %zu-sample queues)\n",
              stations, clips, policy_name.c_str(), queue);

  // Live re-parameterization: as soon as half the stations have produced an
  // ensemble, hand every running session a new trigger threshold. It lands
  // at each session's next ensemble boundary — no restart, nothing lost.
  std::thread retuner;
  if (retune_sigma > 0.0) {
    retuner = std::thread([&] {
      for (;;) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        const auto snapshot = scheduler.stats();
        std::size_t emitted = 0;
        std::size_t finished = 0;
        for (const auto& s : snapshot.stations) {
          if (s.ensembles_out > 0) ++emitted;
          if (s.finished) ++finished;
        }
        if (finished == snapshot.stations.size()) return;  // too late
        if (emitted * 2 >= snapshot.stations.size()) break;
      }
      core::PipelineParams retuned = params;
      retuned.trigger_sigma = retune_sigma;
      for (std::size_t st = 0; st < scheduler.station_count(); ++st) {
        scheduler.reconfigure(st, retuned);
      }
      std::printf("  >> retuned all live sessions to %.1f-sigma triggers "
                  "(applied at each ensemble boundary)\n", retune_sigma);
    });
  }

  scheduler.run();
  if (retuner.joinable()) retuner.join();

  const auto stats = scheduler.stats();
  std::printf("\n%-10s %12s %10s %10s %9s\n", "station", "samples", "dropped",
              "ensembles", "drop%");
  for (const auto& s : stats.stations) {
    std::printf("%-10s %12zu %10zu %10zu %8.2f%%\n", s.name.c_str(),
                s.samples_in, s.samples_dropped, s.ensembles_out,
                100.0 * static_cast<double>(s.samples_dropped) /
                    static_cast<double>(s.samples_in > 0 ? s.samples_in : 1));
  }
  std::printf("%zu scheduling rounds, %zu ensembles total, %zu samples "
              "dropped across the host\n",
              stats.rounds, total_ensembles.load(),
              stats.total_samples_dropped());
  return 0;
}

// archive: stream a WAV recording into a rotating segment store. The clip is
// never loaded whole — it flows through the AudioSegmentArchiver in
// record-size chunks, rotating into sealed (checksummed, indexed) segments
// as it grows. Payloads are bit-packed by default (lossless; WAV samples
// live on the PCM16 grid the delta codec is built for) — --no-pack stores
// raw f32 frames instead, and the two interleave freely in one store.
// Repeated invocations against the same store append after the existing
// archive; any time range replays later via `replay`.
int cmd_archive(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string in = argv[0];
  const auto store = arg_value(argc, argv, "--store", "");
  const long long segment_kb =
      std::atoll(arg_value(argc, argv, "--segment-kb", "8192").c_str());
  const double segment_seconds =
      std::atof(arg_value(argc, argv, "--segment-seconds", "0").c_str());
  if (store.empty() || segment_kb < 1 || segment_seconds < 0.0) return usage();

  river::WavFileSource source(in);
  river::SegmentStoreOptions options;
  options.max_segment_bytes = static_cast<std::uint64_t>(segment_kb) << 10;
  options.max_segment_seconds = segment_seconds;
  options.pack_payloads = !has_flag(argc, argv, "--no-pack");
  river::SegmentedRecordLog log(store, options);
  if (log.recovered_records() > 0) {
    std::printf("recovered %zu record(s) from a torn segment\n",
                log.recovered_records());
  }

  river::AudioSegmentArchiver archiver(log, source.sample_rate());
  if (archiver.next_start_sample() > 0) {
    std::printf("resuming after %.1f s already archived\n",
                static_cast<double>(archiver.next_start_sample()) /
                    source.sample_rate());
  }
  std::vector<float> chunk(core::PipelineParams{}.record_size);
  for (;;) {
    const std::size_t n = source.read(chunk);
    if (n == 0) break;
    archiver.push(std::span<const float>(chunk.data(), n));
  }
  archiver.finish();
  log.close();

  std::uint64_t bytes = 0;
  const auto segments = log.segments();
  for (const auto& s : segments) bytes += s.bytes;
  std::printf("archived %zu samples (%.1f s) into %s\n",
              archiver.samples_archived(),
              static_cast<double>(archiver.samples_archived()) /
                  source.sample_rate(),
              store.c_str());
  std::printf("store now holds %zu sealed segment(s), %.1f MB, spanning "
              "[%.2f, %.2f] s\n",
              segments.size(),
              static_cast<double>(bytes) / (1024.0 * 1024.0),
              segments.empty() ? 0.0 : segments.front().t_min,
              segments.empty() ? 0.0 : segments.back().t_max);
  if (archiver.samples_archived() > 0) {
    const double per_sample =
        static_cast<double>(bytes) /
        static_cast<double>(archiver.next_start_sample());
    std::printf("stored %.2f bytes/sample (%s; raw f32 is 4.00 + framing)\n",
                per_sample, options.pack_payloads ? "packed" : "raw");
  }
  return 0;
}

// replay: re-extract a stream-time range of the archive through the same
// SessionScheduler that serves live stations — the backfill path. Prints
// each ensemble as it closes plus the replay-vs-live speed ratio (live = one
// second of audio per second of wall clock).
int cmd_replay(int argc, char** argv) {
  const auto store = arg_value(argc, argv, "--store", "");
  const double from = std::atof(arg_value(argc, argv, "--from", "0").c_str());
  const auto to_arg = arg_value(argc, argv, "--to", "");
  const double to = to_arg.empty() ? std::numeric_limits<double>::infinity()
                                   : std::atof(to_arg.c_str());
  if (store.empty() || from < 0.0 || to <= from) return usage();

  // The archived records carry their sample rate; the session params must
  // match the archived stream's configuration.
  river::SegmentStoreReader probe(store);
  const auto segments = probe.segments();
  if (segments.empty()) {
    std::fprintf(stderr, "empty segment store: %s\n", store.c_str());
    return 1;
  }

  core::PipelineParams params;
  core::SessionScheduler scheduler;
  std::size_t count = 0;
  auto sink = std::make_shared<river::CallbackEnsembleSink>(
      [&](river::Ensemble e) {
        ++count;
        std::printf("  ensemble [%8.2f, %8.2f) s  (%zu samples)\n",
                    static_cast<double>(e.start_sample) / params.sample_rate,
                    static_cast<double>(e.end_sample()) / params.sample_rate,
                    e.length());
      });
  core::StationConfig config;
  config.params = params;
  const auto id =
      core::add_replay_station(scheduler, "replay", store, from, to, sink,
                               config);

  const auto t_begin = std::chrono::steady_clock::now();
  scheduler.run();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_begin)
          .count();

  const auto stats = scheduler.stats();
  const double replayed_seconds =
      static_cast<double>(stats.stations[id].samples_consumed) /
      params.sample_rate;
  std::printf("%zu ensemble(s) from %.1f s of archive in %.2f s wall "
              "(%.0fx live rate)\n",
              count, replayed_seconds, wall,
              wall > 0.0 ? replayed_seconds / wall : 0.0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "species") return cmd_species();
  if (cmd == "topo") return cmd_topo();
  if (cmd == "synth") return cmd_synth(argc - 2, argv + 2);
  if (cmd == "extract") return cmd_extract(argc - 2, argv + 2);
  if (cmd == "scores") return cmd_scores(argc - 2, argv + 2);
  if (cmd == "serve") return cmd_serve(argc - 2, argv + 2);
  if (cmd == "archive") return cmd_archive(argc - 2, argv + 2);
  if (cmd == "replay") return cmd_replay(argc - 2, argv + 2);
  return usage();
}
