#include "synth/station.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace dynriver::synth {

SensorStation::SensorStation(StationParams params, std::uint64_t seed)
    : params_(params), rng_(seed) {
  DR_EXPECTS(params.sample_rate > 0);
  DR_EXPECTS(params.clip_seconds > 0);
  DR_EXPECTS(params.song_gain > 0);
}

ClipRecording SensorStation::record_clip(const std::vector<SpeciesId>& singers) {
  std::vector<std::pair<SpeciesId, std::vector<float>>> songs;
  songs.reserve(singers.size());
  for (const SpeciesId id : singers) {
    songs.emplace_back(id, render_song(species(id), params_.sample_rate, rng_));
  }
  return assemble(songs, rng_.chance(params_.distractor_probability));
}

ClipRecording SensorStation::record_silence() {
  return assemble({}, rng_.chance(params_.distractor_probability));
}

ClipRecording SensorStation::assemble(
    const std::vector<std::pair<SpeciesId, std::vector<float>>>& songs,
    bool with_distractor) {
  const auto total = static_cast<std::size_t>(params_.clip_seconds *
                                              params_.sample_rate);
  ClipRecording rec;
  rec.clip_id = next_clip_id_++;
  rec.clip.sample_rate = static_cast<std::uint32_t>(params_.sample_rate);
  rec.clip.channels = 1;
  rec.clip.samples =
      render_background(rng_.split(), params_.sample_rate, total, params_.noise);

  // Place events sequentially with random gaps, respecting warmup margins
  // and the minimum inter-event gap; the layout is feasible as long as total
  // event time stays well under the clip length.
  const auto margin =
      static_cast<std::size_t>(params_.warmup_margin_s * params_.sample_rate);
  const auto min_gap =
      static_cast<std::size_t>(params_.min_event_gap_s * params_.sample_rate);

  struct Event {
    std::optional<SpeciesId> species;  // nullopt = distractor
    std::vector<float> samples;
  };
  std::vector<Event> events;
  for (const auto& [id, samples] : songs) events.push_back({id, samples});
  if (with_distractor) {
    events.push_back({std::nullopt, render_distractor(params_.sample_rate, rng_)});
    ++rec.distractors;
  }
  // Random placement order so distractors interleave with songs.
  std::shuffle(events.begin(), events.end(), rng_.engine());

  std::size_t event_total = 0;
  for (const auto& e : events) event_total += e.samples.size() + min_gap;
  const std::size_t usable = total > 2 * margin ? total - 2 * margin : 0;
  DR_EXPECTS(event_total <= usable);  // clip too short for requested events

  // Distribute leftover space as random gaps between events.
  std::size_t slack = usable - event_total;
  std::size_t cursor = margin;
  for (const auto& event : events) {
    const auto jump = static_cast<std::size_t>(
        rng_.uniform(0.0, static_cast<double>(slack) /
                              static_cast<double>(events.size())));
    cursor += jump;
    slack -= jump;

    const double gain = params_.song_gain;
    for (std::size_t i = 0; i < event.samples.size(); ++i) {
      rec.clip.samples[cursor + i] += event.samples[i] * static_cast<float>(gain);
    }
    if (event.species.has_value()) {
      rec.truth.push_back({*event.species, cursor, event.samples.size()});
    }
    cursor += event.samples.size() + min_gap;
  }

  // Soft-limit to [-0.98, 0.98] to mimic the ADC's dynamic range.
  for (auto& v : rec.clip.samples) {
    v = std::clamp(v, -0.98F, 0.98F);
  }
  std::sort(rec.truth.begin(), rec.truth.end(),
            [](const auto& a, const auto& b) {
              return a.start_sample < b.start_sample;
            });
  return rec;
}

bool intervals_overlap(std::size_t a_start, std::size_t a_end, std::size_t b_start,
                       std::size_t b_end, double min_fraction) {
  DR_EXPECTS(a_end >= a_start && b_end >= b_start);
  const std::size_t lo = std::max(a_start, b_start);
  const std::size_t hi = std::min(a_end, b_end);
  if (hi <= lo) return false;
  const std::size_t overlap = hi - lo;
  const std::size_t shorter = std::min(a_end - a_start, b_end - b_start);
  if (shorter == 0) return false;
  return static_cast<double>(overlap) >=
         min_fraction * static_cast<double>(shorter);
}

}  // namespace dynriver::synth
