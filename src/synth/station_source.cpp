#include "synth/station_source.hpp"

#include <algorithm>
#include <utility>

namespace dynriver::synth {

StationSource::StationSource(SensorStation& station,
                             std::vector<SpeciesId> singers, std::size_t clips)
    : station_(station), singers_(std::move(singers)), clips_left_(clips) {}

std::size_t StationSource::read(std::span<float> out) {
  std::size_t filled = 0;
  while (filled < out.size()) {
    if (pos_ == current_.size()) {
      if (clips_left_ == 0) break;
      stream_offset_ += current_.size();
      ClipRecording rec = station_.record_clip(singers_);
      current_ = std::move(rec.clip.samples);
      pos_ = 0;
      for (const auto& t : rec.truth) {
        truth_.push_back(PlantedVocalization{
            t.species, t.start_sample + stream_offset_, t.length});
      }
      --clips_left_;
      ++clips_done_;
    }
    const std::size_t n = std::min(out.size() - filled, current_.size() - pos_);
    std::copy_n(current_.begin() + static_cast<std::ptrdiff_t>(pos_), n,
                out.begin() + static_cast<std::ptrdiff_t>(filled));
    pos_ += n;
    filled += n;
  }
  return filled;
}

}  // namespace dynriver::synth
