// Parametric song models for the 10 bird species of the paper's Table 1.
//
// Each template describes a species-stereotypical song as a sequence of
// syllables (sweeps, trills, buzzes, coos) with gaps and repeat counts.
// Rendering applies per-rendition variation -- frequency/tempo/amplitude
// jitter plus "plastic" structural changes (optional elements, repeat count
// variation) -- reflecting that "even stereotypical songs vary between
// individual birds of the same species" (paper, Section 2). Durations are
// tuned so the patterns-per-ensemble ratios track Table 1 (e.g. the mourning
// dove's long coo vs the goldfinch's short flight call).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "synth/syllable.hpp"

namespace dynriver::synth {

/// Table 1 species, in the paper's order.
enum class SpeciesId : int {
  kAMGO = 0,  ///< American goldfinch
  kBCCH,      ///< Black capped chickadee
  kBLJA,      ///< Blue jay
  kDOWO,      ///< Downy woodpecker
  kHOFI,      ///< House finch
  kMODO,      ///< Mourning dove
  kNOCA,      ///< Northern cardinal
  kRWBL,      ///< Red winged blackbird
  kTUTI,      ///< Tufted titmouse
  kWBNU,      ///< White breasted nuthatch
};

inline constexpr std::size_t kNumSpecies = 10;

/// One element of a song: a syllable, its trailing gap, and repetition.
struct SongElement {
  SyllableSpec syllable;
  double gap_after_s = 0.05;
  int repeats = 1;
  int repeat_jitter = 0;   ///< uniform +/- variation of `repeats`
  bool optional = false;   ///< may be dropped entirely (plastic songs)
};

struct SpeciesTemplate {
  SpeciesId id = SpeciesId::kAMGO;
  std::string code;         ///< four-letter species code (Table 1)
  std::string common_name;  ///< common name (Table 1)
  std::vector<SongElement> elements;

  // Per-rendition variation (log-normal scales).
  double freq_jitter = 0.04;
  double tempo_jitter = 0.06;
  double amp_jitter = 0.15;
  double syllable_freq_jitter = 0.02;
  /// Probability of structural change per optional element.
  double plasticity = 0.1;
};

/// The full catalog, indexed by SpeciesId.
[[nodiscard]] const std::array<SpeciesTemplate, kNumSpecies>& species_catalog();

[[nodiscard]] const SpeciesTemplate& species(SpeciesId id);
[[nodiscard]] const SpeciesTemplate& species(std::size_t index);

/// Render one song rendition with variation. Returned samples are mono at
/// `sample_rate`, peak amplitude <= ~0.9.
[[nodiscard]] std::vector<float> render_song(const SpeciesTemplate& tpl,
                                             double sample_rate,
                                             dynriver::Rng& rng);

/// Nominal (unjittered) song duration in seconds.
[[nodiscard]] double nominal_song_duration(const SpeciesTemplate& tpl);

/// Non-bird transient (branch crack, distant vehicle, squeak): exercises the
/// ground-truth validation filter that substitutes for the paper's human
/// listener.
[[nodiscard]] std::vector<float> render_distractor(double sample_rate,
                                                   dynriver::Rng& rng);

}  // namespace dynriver::synth
