#include "synth/noise.hpp"

#include <cmath>
#include <numbers>

#include "common/contracts.hpp"

namespace dynriver::synth {

float WhiteNoise::step() {
  return static_cast<float>(rng_.uniform(-1.0, 1.0));
}

float BrownNoise::step() {
  state_ = state_ * leak_ + static_cast<double>(white_.step()) * 0.1;
  return static_cast<float>(state_);
}

PinkNoise::PinkNoise(dynriver::Rng rng) : rng_(rng) {
  rows_.assign(kRows, 0.0);
  for (auto& r : rows_) {
    r = rng_.uniform(-1.0, 1.0);
    running_sum_ += r;
  }
}

float PinkNoise::step() {
  // Voss-McCartney: update the row whose bit toggles at this counter value.
  ++counter_;
  const std::uint32_t zeros = counter_ == 0
                                  ? kRows - 1
                                  : static_cast<std::uint32_t>(
                                        __builtin_ctz(counter_));
  const std::size_t row = std::min<std::size_t>(zeros, kRows - 1);
  running_sum_ -= rows_[row];
  rows_[row] = rng_.uniform(-1.0, 1.0);
  running_sum_ += rows_[row];
  return static_cast<float>(running_sum_ / static_cast<double>(kRows));
}

WindModel::WindModel(dynriver::Rng rng, double sample_rate, double cutoff_hz)
    : brown_(rng.split()),
      low_pass_(dsp::Biquad::low_pass(sample_rate, cutoff_hz)),
      gust_rng_(rng.split()),
      sample_rate_(sample_rate) {
  DR_EXPECTS(sample_rate > 0);
}

float WindModel::step() {
  if (gust_countdown_ == 0) {
    // Pick a new gust target and a 0.5-3 s transition.
    gust_target_ = gust_rng_.uniform(0.15, 1.0);
    gust_countdown_ = static_cast<std::size_t>(
        gust_rng_.uniform(0.5, 3.0) * sample_rate_);
  }
  --gust_countdown_;
  gust_level_ += (gust_target_ - gust_level_) / (0.2 * sample_rate_);
  const float raw = brown_.step();
  return low_pass_.step(raw) * static_cast<float>(gust_level_);
}

HumanActivityModel::HumanActivityModel(dynriver::Rng rng, double sample_rate,
                                       double thump_rate_hz)
    : rng_(rng.split()),
      sample_rate_(sample_rate),
      thump_probability_(thump_rate_hz / sample_rate),
      thump_noise_(rng.split()),
      thump_filter_(dsp::Biquad::low_pass(sample_rate, 300.0)) {
  DR_EXPECTS(sample_rate > 0);
}

float HumanActivityModel::step() {
  constexpr double kTwoPi = 2.0 * std::numbers::pi;
  hum_phase_ += kTwoPi * 120.0 / sample_rate_;
  if (hum_phase_ > kTwoPi) hum_phase_ -= kTwoPi;
  // Mains hum with 2nd and 3rd harmonics.
  const double hum = 0.6 * std::sin(hum_phase_) + 0.25 * std::sin(2 * hum_phase_) +
                     0.15 * std::sin(3 * hum_phase_);

  if (rng_.chance(thump_probability_)) thump_energy_ = 1.0;
  double thump = 0.0;
  if (thump_energy_ > 1e-4) {
    thump = thump_energy_ * static_cast<double>(
                                thump_filter_.step(thump_noise_.step()));
    thump_energy_ *= std::exp(-8.0 / sample_rate_);  // ~125 ms decay constant
  }
  return static_cast<float>(hum * 0.5 + thump * 4.0);
}

std::vector<float> render_background(dynriver::Rng rng, double sample_rate,
                                     std::size_t n, const NoiseMix& mix) {
  WindModel wind(rng.split(), sample_rate);
  HumanActivityModel human(rng.split(), sample_rate);
  WhiteNoise hiss(rng.split());

  std::vector<float> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double v = static_cast<double>(wind.step()) * mix.wind +
                     static_cast<double>(human.step()) * mix.human +
                     static_cast<double>(hiss.step()) * mix.ambient;
    out[i] = static_cast<float>(v);
  }
  return out;
}

}  // namespace dynriver::synth
