// Syllable synthesis: the atomic unit of a bird vocalization.
//
// Real birdsong decomposes into syllables -- short frequency-modulated tones
// with species-specific sweeps, trills, harmonic stacks and noisy (buzzy)
// qualities. A SyllableSpec captures these parameters; `render_syllable`
// produces samples via a phase accumulator with optional vibrato FM,
// harmonic partials, and a band-noise component for harsh calls.
#pragma once

#include <vector>

#include "common/rng.hpp"

namespace dynriver::synth {

struct SyllableSpec {
  double f_start_hz = 3000.0;   ///< sweep start frequency
  double f_end_hz = 3000.0;     ///< sweep end frequency (log interpolation)
  double duration_s = 0.1;
  double amplitude = 0.8;       ///< peak amplitude in [0, 1]
  double vibrato_hz = 0.0;      ///< trill/FM rate (0 = pure sweep)
  double vibrato_depth_hz = 0.0;
  int harmonics = 1;            ///< number of harmonic partials (>= 1)
  double harmonic_decay = 0.5;  ///< amplitude ratio between partials
  double noise_mix = 0.0;       ///< 0 = tonal, 1 = pure band noise (buzz)
  double attack_s = 0.008;
  double release_s = 0.02;
};

/// Render one syllable at `sample_rate`. Partials above 0.45 * sample_rate
/// are skipped to avoid aliasing. `rng` drives the noise component.
[[nodiscard]] std::vector<float> render_syllable(const SyllableSpec& spec,
                                                 double sample_rate,
                                                 dynriver::Rng& rng);

/// Multiply a rendered buffer by an attack/release envelope (raised cosine
/// edges). Exposed for tests.
void apply_envelope(std::vector<float>& samples, double sample_rate,
                    double attack_s, double release_s);

}  // namespace dynriver::synth
