// Simulated acoustic sensor station.
//
// Substitute for the paper's pole-mounted Crossbow Stargate stations at the
// Kellogg Biological Research Station (Fig. 1): each station renders 30 s
// clips -- background noise bed plus bird songs planted at known positions --
// at 21,600 Hz PCM16 (30 s = 1.296 MB, matching the paper's ~1.26 MB clips).
// Ground-truth intervals play the role of the paper's human listener when
// validating extracted ensembles.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "dsp/wav.hpp"
#include "synth/noise.hpp"
#include "synth/species.hpp"

namespace dynriver::synth {

/// A vocalization planted into a clip (ground truth).
struct PlantedVocalization {
  SpeciesId species = SpeciesId::kAMGO;
  std::size_t start_sample = 0;
  std::size_t length = 0;

  [[nodiscard]] std::size_t end_sample() const { return start_sample + length; }
};

/// One recorded clip with its ground truth.
struct ClipRecording {
  std::uint64_t clip_id = 0;
  dsp::WavClip clip;
  std::vector<PlantedVocalization> truth;
  std::size_t distractors = 0;  ///< non-bird transients planted
};

struct StationParams {
  double sample_rate = 21600.0;
  double clip_seconds = 30.0;
  NoiseMix noise;
  /// Linear gain applied to songs relative to the noise bed.
  double song_gain = 0.35;
  /// Probability that a clip receives one non-bird transient.
  double distractor_probability = 0.15;
  /// Minimum silence between planted events (seconds) so the trigger can
  /// return to baseline.
  double min_event_gap_s = 1.2;
  /// Keep this much clip head/tail free of events (seconds) so the anomaly
  /// detector can warm up its windows and baseline statistics.
  double warmup_margin_s = 2.0;
};

/// A single sensor station with its own deterministic randomness.
class SensorStation {
 public:
  SensorStation(StationParams params, std::uint64_t seed);

  /// Record one clip containing a rendition of each requested species (in
  /// random non-overlapping positions). Species may repeat in the list to
  /// plant several songs. Returns the clip and its ground truth.
  [[nodiscard]] ClipRecording record_clip(const std::vector<SpeciesId>& singers);

  /// Record a clip with no birds at all (background only).
  [[nodiscard]] ClipRecording record_silence();

  [[nodiscard]] const StationParams& params() const { return params_; }
  [[nodiscard]] std::uint64_t clips_recorded() const { return next_clip_id_; }

 private:
  [[nodiscard]] ClipRecording assemble(
      const std::vector<std::pair<SpeciesId, std::vector<float>>>& songs,
      bool with_distractor);

  StationParams params_;
  dynriver::Rng rng_;
  std::uint64_t next_clip_id_ = 0;
};

/// True iff [a_start, a_end) and [b_start, b_end) overlap by at least
/// `min_fraction` of the shorter interval. Used to validate extracted
/// ensembles against ground truth.
[[nodiscard]] bool intervals_overlap(std::size_t a_start, std::size_t a_end,
                                     std::size_t b_start, std::size_t b_end,
                                     double min_fraction);

}  // namespace dynriver::synth
