// Environmental noise models for the synthetic acoustic substrate.
//
// The paper notes that clips "typically contain other sounds such as those
// produced by wind and human activity", concentrated at low frequency --
// which is why the pipeline cuts out ~[1.2 kHz, 9.6 kHz]. The models here
// reproduce that structure: wind is gusty low-passed brown noise, human
// activity is mains hum plus occasional broadband thumps, and ambient is a
// low hiss.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "dsp/biquad.hpp"

namespace dynriver::synth {

/// Uniform white noise in [-1, 1].
class WhiteNoise {
 public:
  explicit WhiteNoise(dynriver::Rng rng) : rng_(rng) {}
  float step();

 private:
  dynriver::Rng rng_;
};

/// Leaky-integrated white noise (Brownian / red spectrum ~1/f^2).
class BrownNoise {
 public:
  explicit BrownNoise(dynriver::Rng rng, double leak = 0.995)
      : white_(rng), leak_(leak) {}
  float step();

 private:
  WhiteNoise white_;
  double leak_;
  double state_ = 0.0;
};

/// Pink (1/f) noise via the Voss-McCartney algorithm.
class PinkNoise {
 public:
  explicit PinkNoise(dynriver::Rng rng);
  float step();

 private:
  dynriver::Rng rng_;
  static constexpr std::size_t kRows = 12;
  std::vector<double> rows_;
  double running_sum_ = 0.0;
  std::uint32_t counter_ = 0;
};

/// Gusty wind: brown noise low-passed below `cutoff_hz`, amplitude-modulated
/// by a slow random walk so the energy rises and falls like real gusts.
class WindModel {
 public:
  WindModel(dynriver::Rng rng, double sample_rate, double cutoff_hz = 400.0);
  float step();

 private:
  BrownNoise brown_;
  dsp::Biquad low_pass_;
  dynriver::Rng gust_rng_;
  double gust_level_ = 0.5;
  double gust_target_ = 0.5;
  std::size_t gust_countdown_ = 0;
  double sample_rate_;
};

/// Distant human activity: 120 Hz mains hum with harmonics plus occasional
/// low-frequency thumps (doors, machinery) with exponential decay.
class HumanActivityModel {
 public:
  HumanActivityModel(dynriver::Rng rng, double sample_rate,
                     double thump_rate_hz = 0.2);
  float step();

 private:
  dynriver::Rng rng_;
  double sample_rate_;
  double thump_probability_;  // per sample
  double hum_phase_ = 0.0;
  double thump_energy_ = 0.0;
  WhiteNoise thump_noise_;
  dsp::Biquad thump_filter_;
};

/// Combined background bed used by the sensor station.
struct NoiseMix {
  double wind = 0.05;     ///< wind RMS-ish level
  double human = 0.015;   ///< human activity level
  double ambient = 0.004; ///< broadband hiss level
};

/// Render `n` samples of the mixed background bed.
[[nodiscard]] std::vector<float> render_background(dynriver::Rng rng,
                                                   double sample_rate,
                                                   std::size_t n,
                                                   const NoiseMix& mix);

}  // namespace dynriver::synth
