// A sensor station as a streaming sample source.
//
// StationSource renders clips lazily — one ClipRecording in memory at a
// time — and serves them as one continuous sample stream through the
// river::SampleSource interface, so a StreamSession can ingest hours of
// simulated field audio with bounded memory. Ground truth is re-based onto
// global stream offsets for end-to-end validation.
#pragma once

#include <cstdint>
#include <vector>

#include "river/sample_io.hpp"
#include "synth/station.hpp"

namespace dynriver::synth {

class StationSource final : public river::SampleSource {
 public:
  /// Streams `clips` recordings from `station` (borrowed; must outlive the
  /// source), each planted with `singers`.
  StationSource(SensorStation& station, std::vector<SpeciesId> singers,
                std::size_t clips);

  [[nodiscard]] std::size_t read(std::span<float> out) override;
  [[nodiscard]] double sample_rate() const override {
    return station_.params().sample_rate;
  }

  [[nodiscard]] std::size_t clips_streamed() const { return clips_done_; }
  /// Planted vocalizations seen so far, at global stream offsets.
  [[nodiscard]] const std::vector<PlantedVocalization>& truth() const {
    return truth_;
  }

 private:
  SensorStation& station_;
  std::vector<SpeciesId> singers_;
  std::size_t clips_left_;
  std::size_t clips_done_ = 0;
  std::uint64_t stream_offset_ = 0;  ///< global sample index of current clip
  std::vector<float> current_;       ///< the one clip being streamed
  std::size_t pos_ = 0;
  std::vector<PlantedVocalization> truth_;
};

}  // namespace dynriver::synth
