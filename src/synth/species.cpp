#include "synth/species.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace dynriver::synth {

namespace {

SyllableSpec chirp(double f0, double f1, double dur, double amp = 0.8) {
  SyllableSpec s;
  s.f_start_hz = f0;
  s.f_end_hz = f1;
  s.duration_s = dur;
  s.amplitude = amp;
  return s;
}

SyllableSpec buzz(double center, double dur, double noise, double amp = 0.8) {
  SyllableSpec s;
  s.f_start_hz = center;
  s.f_end_hz = center;
  s.duration_s = dur;
  s.amplitude = amp;
  s.noise_mix = noise;
  s.harmonics = 3;
  s.harmonic_decay = 0.6;
  return s;
}

std::array<SpeciesTemplate, kNumSpecies> build_catalog() {
  std::array<SpeciesTemplate, kNumSpecies> cat;

  // -- AMGO: American goldfinch. "po-ta-to-chip" flight call: four quick
  // down-slurred chirps around 3-4.5 kHz. Short song; confusable with other
  // finch-like chirpers (BCCH/HOFI overlap its band).
  {
    auto& t = cat[0];
    t.id = SpeciesId::kAMGO;
    t.code = "AMGO";
    t.common_name = "American goldfinch";
    SongElement e{chirp(4500, 3200, 0.12, 0.85), 0.06, 4, 1, false};
    t.elements = {e};
    t.freq_jitter = 0.11;
    t.tempo_jitter = 0.10;
    t.plasticity = 0.25;
  }

  // -- BCCH: Black-capped chickadee. "fee-bee" pure tones followed by a
  // variable run of buzzy "dee" notes. The dee count is famously plastic.
  {
    auto& t = cat[1];
    t.id = SpeciesId::kBCCH;
    t.code = "BCCH";
    t.common_name = "Black capped chickadee";
    t.elements = {
        {chirp(4000, 3800, 0.24, 0.8), 0.08, 1, 0, false},
        {chirp(3450, 3300, 0.28, 0.8), 0.09, 1, 0, false},
        {buzz(3600, 0.14, 0.45, 0.7), 0.05, 3, 2, true},
    };
    t.freq_jitter = 0.10;
    t.tempo_jitter = 0.08;
    t.plasticity = 0.3;
  }

  // -- BLJA: Blue jay. Harsh descending "jeer" scream: broadband buzz with
  // strong noise component around 2-3 kHz, usually doubled.
  {
    auto& t = cat[2];
    t.id = SpeciesId::kBLJA;
    t.code = "BLJA";
    t.common_name = "Blue Jay";
    SyllableSpec jeer = buzz(2600, 0.34, 0.55, 0.9);
    jeer.f_start_hz = 3100;
    jeer.f_end_hz = 2200;
    SongElement e{jeer, 0.1, 2, 0, false};
    t.elements = {e};
    t.freq_jitter = 0.08;
    t.plasticity = 0.15;
  }

  // -- DOWO: Downy woodpecker. Descending whinny: a rapid run of short
  // notes sliding from ~4 kHz down to ~2.2 kHz. Very stereotyped.
  {
    auto& t = cat[3];
    t.id = SpeciesId::kDOWO;
    t.code = "DOWO";
    t.common_name = "Downy woodpecker";
    t.elements.reserve(8);
    for (int i = 0; i < 8; ++i) {
      const double f = 4000.0 * std::pow(2200.0 / 4000.0, i / 7.0);
      t.elements.push_back({chirp(f * 1.06, f * 0.94, 0.058, 0.8), 0.022, 1, 0,
                            i >= 6});  // tail notes sometimes dropped
    }
    t.freq_jitter = 0.065;
    t.tempo_jitter = 0.05;
    t.plasticity = 0.15;
  }

  // -- HOFI: House finch. Long disorganized warble of varied chirps across
  // 2.5-6 kHz; highly plastic ordering with irregular element timing and
  // loudness (a perfectly regular chirp train would read as homogeneous
  // texture to the anomaly scorer, which real warbles do not).
  {
    auto& t = cat[4];
    t.id = SpeciesId::kHOFI;
    t.code = "HOFI";
    t.common_name = "House finch";
    const double f0s[] = {3200, 5200, 2700, 4400, 5800, 3000, 4800, 3600, 5400, 2900};
    const double f1s[] = {4300, 3800, 3900, 5700, 4200, 4400, 3300, 5100, 4000, 4200};
    const double durs[] = {0.06, 0.13, 0.07, 0.10, 0.055, 0.12, 0.08, 0.14, 0.065, 0.11};
    const double gaps[] = {0.02, 0.09, 0.015, 0.12, 0.03, 0.015, 0.10, 0.02, 0.08, 0.03};
    const double amps[] = {0.8, 0.5, 0.9, 0.6, 0.85, 0.45, 0.75, 0.9, 0.55, 0.8};
    t.elements.reserve(10);
    for (int i = 0; i < 10; ++i) {
      t.elements.push_back(
          {chirp(f0s[i], f1s[i], durs[i], amps[i]), gaps[i], 1, 0, i % 3 == 2});
    }
    t.freq_jitter = 0.10;
    t.tempo_jitter = 0.09;
    t.plasticity = 0.35;
  }

  // -- MODO: Mourning dove. Low slow "cooOO-coo-coo" with strong harmonics.
  // The fundamental sits near the pipeline's 1.2 kHz cutout edge, so part of
  // its energy is clipped -- one reason it is the most-confused species in
  // the paper's Table 3 (67.0% diagonal).
  {
    auto& t = cat[5];
    t.id = SpeciesId::kMODO;
    t.code = "MODO";
    t.common_name = "Mourning dove";
    SyllableSpec coo1 = chirp(1300, 1650, 0.40, 0.85);
    coo1.harmonics = 3;
    coo1.harmonic_decay = 0.45;
    coo1.attack_s = 0.04;
    coo1.release_s = 0.08;
    SyllableSpec coo2 = chirp(1550, 1340, 0.32, 0.8);
    coo2.harmonics = 3;
    coo2.harmonic_decay = 0.45;
    coo2.attack_s = 0.04;
    coo2.release_s = 0.08;
    t.elements = {
        {coo1, 0.12, 1, 0, false},
        {coo2, 0.10, 3, 1, false},
    };
    t.freq_jitter = 0.13;
    t.tempo_jitter = 0.14;
    t.plasticity = 0.3;
  }

  // -- NOCA: Northern cardinal. Loud slurred whistles sweeping widely
  // downward ("cheer cheer") followed by short two-part "birdie" notes.
  {
    auto& t = cat[6];
    t.id = SpeciesId::kNOCA;
    t.code = "NOCA";
    t.common_name = "Northern cardinal";
    t.elements = {
        {chirp(4600, 2000, 0.22, 0.9), 0.06, 3, 1, false},
        {chirp(2400, 3600, 0.09, 0.85), 0.04, 3, 1, true},
    };
    t.freq_jitter = 0.08;
    t.tempo_jitter = 0.07;
    t.plasticity = 0.2;
  }

  // -- RWBL: Red-winged blackbird. "conk-la-REE": two short notes then a
  // long terminal trill -- the trill's fast FM texture is unique in this
  // set, making RWBL the best-classified species in Table 3 (94.7%).
  {
    auto& t = cat[7];
    t.id = SpeciesId::kRWBL;
    t.code = "RWBL";
    t.common_name = "Red winged blackbird";
    SyllableSpec trill = chirp(3700, 4100, 0.68, 0.9);
    trill.vibrato_hz = 55.0;
    trill.vibrato_depth_hz = 450.0;
    trill.noise_mix = 0.3;
    trill.harmonics = 2;
    t.elements = {
        {chirp(2700, 2900, 0.08, 0.8), 0.04, 1, 0, false},
        {chirp(3200, 3000, 0.08, 0.8), 0.04, 1, 0, false},
        {trill, 0.05, 1, 0, false},
    };
    t.freq_jitter = 0.065;
    t.tempo_jitter = 0.05;
    t.plasticity = 0.1;
  }

  // -- TUTI: Tufted titmouse. Clear repeated two-note whistle
  // "peter-peter" around 3-4 kHz.
  {
    auto& t = cat[8];
    t.id = SpeciesId::kTUTI;
    t.code = "TUTI";
    t.common_name = "Tufted titmouse";
    t.elements = {
        {chirp(4100, 3400, 0.12, 0.85), 0.03, 1, 0, false},
        {chirp(3300, 3250, 0.12, 0.85), 0.09, 1, 0, false},
        {chirp(4100, 3400, 0.12, 0.85), 0.03, 1, 0, false},
        {chirp(3300, 3250, 0.12, 0.85), 0.09, 1, 1, false},
    };
    t.freq_jitter = 0.08;
    t.tempo_jitter = 0.06;
    t.plasticity = 0.12;
  }

  // -- WBNU: White-breasted nuthatch. Nasal "yank-yank": low notes with a
  // dense harmonic stack and a slightly noisy quality, repeated ~4 times.
  {
    auto& t = cat[9];
    t.id = SpeciesId::kWBNU;
    t.code = "WBNU";
    t.common_name = "White breasted nuthatch";
    SyllableSpec yank = chirp(2050, 1880, 0.17, 0.85);
    yank.harmonics = 4;
    yank.harmonic_decay = 0.7;
    yank.noise_mix = 0.12;
    SongElement e{yank, 0.085, 4, 1, false};
    t.elements = {e};
    t.freq_jitter = 0.08;
    t.tempo_jitter = 0.07;
    t.plasticity = 0.15;
  }

  return cat;
}

}  // namespace

const std::array<SpeciesTemplate, kNumSpecies>& species_catalog() {
  static const auto catalog = build_catalog();
  return catalog;
}

const SpeciesTemplate& species(SpeciesId id) {
  return species_catalog()[static_cast<std::size_t>(id)];
}

const SpeciesTemplate& species(std::size_t index) {
  DR_EXPECTS(index < kNumSpecies);
  return species_catalog()[index];
}

double nominal_song_duration(const SpeciesTemplate& tpl) {
  double total = 0.0;
  for (const auto& e : tpl.elements) {
    total += (e.syllable.duration_s + e.gap_after_s) * e.repeats;
  }
  return total;
}

std::vector<float> render_song(const SpeciesTemplate& tpl, double sample_rate,
                               dynriver::Rng& rng) {
  DR_EXPECTS(!tpl.elements.empty());

  // Rendition-level variation: one draw per song, shared by all syllables,
  // models individual/day-to-day differences.
  const double freq_scale = std::exp(rng.gaussian(0.0, tpl.freq_jitter));
  const double tempo_scale = std::exp(rng.gaussian(0.0, tpl.tempo_jitter));
  const double amp_scale =
      std::clamp(std::exp(rng.gaussian(0.0, tpl.amp_jitter)), 0.4, 1.15);

  std::vector<float> song;
  song.reserve(static_cast<std::size_t>(
      (nominal_song_duration(tpl) * 1.5 + 0.1) * sample_rate));

  for (const auto& element : tpl.elements) {
    if (element.optional && rng.chance(tpl.plasticity)) continue;

    int repeats = element.repeats;
    if (element.repeat_jitter > 0) {
      repeats += static_cast<int>(
          rng.uniform_int(-element.repeat_jitter, element.repeat_jitter));
      repeats = std::max(1, repeats);
    }

    for (int r = 0; r < repeats; ++r) {
      SyllableSpec syl = element.syllable;
      const double per_syl =
          std::exp(rng.gaussian(0.0, tpl.syllable_freq_jitter));
      syl.f_start_hz *= freq_scale * per_syl;
      syl.f_end_hz *= freq_scale * per_syl;
      syl.vibrato_depth_hz *= freq_scale;
      syl.duration_s *= tempo_scale;
      syl.amplitude = std::clamp(syl.amplitude * amp_scale, 0.0, 1.0);

      const auto rendered = render_syllable(syl, sample_rate, rng);
      song.insert(song.end(), rendered.begin(), rendered.end());

      const auto gap_samples = static_cast<std::size_t>(
          element.gap_after_s * tempo_scale * sample_rate);
      song.insert(song.end(), gap_samples, 0.0F);
    }
  }
  DR_ENSURES(!song.empty());
  return song;
}

std::vector<float> render_distractor(double sample_rate, dynriver::Rng& rng) {
  const auto kind = rng.uniform_int(0, 2);
  switch (kind) {
    case 0: {
      // Branch crack: a very short broadband burst.
      SyllableSpec s = buzz(4000, 0.02, 1.0, 0.9);
      s.attack_s = 0.001;
      s.release_s = 0.01;
      return render_syllable(s, sample_rate, rng);
    }
    case 1: {
      // Distant vehicle: 1.5 s low rumble sweeping slightly downward.
      SyllableSpec s = buzz(160, 1.5, 0.8, 0.6);
      s.f_start_hz = 200;
      s.f_end_hz = 120;
      s.attack_s = 0.3;
      s.release_s = 0.4;
      return render_syllable(s, sample_rate, rng);
    }
    default: {
      // Metallic squeak: short high tone.
      SyllableSpec s = chirp(7000, 7400, 0.09, 0.7);
      return render_syllable(s, sample_rate, rng);
    }
  }
}

}  // namespace dynriver::synth
