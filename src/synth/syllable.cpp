#include "synth/syllable.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/contracts.hpp"
#include "dsp/biquad.hpp"

namespace dynriver::synth {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}

void apply_envelope(std::vector<float>& samples, double sample_rate,
                    double attack_s, double release_s) {
  const std::size_t n = samples.size();
  if (n == 0) return;
  const auto attack = std::min<std::size_t>(
      n / 2, static_cast<std::size_t>(attack_s * sample_rate));
  const auto release = std::min<std::size_t>(
      n / 2, static_cast<std::size_t>(release_s * sample_rate));

  for (std::size_t i = 0; i < attack; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(attack);
    samples[i] *= static_cast<float>(0.5 * (1.0 - std::cos(std::numbers::pi * t)));
  }
  for (std::size_t i = 0; i < release; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(release);
    samples[n - 1 - i] *=
        static_cast<float>(0.5 * (1.0 - std::cos(std::numbers::pi * t)));
  }
}

std::vector<float> render_syllable(const SyllableSpec& spec, double sample_rate,
                                   dynriver::Rng& rng) {
  DR_EXPECTS(sample_rate > 0);
  DR_EXPECTS(spec.duration_s > 0);
  DR_EXPECTS(spec.f_start_hz > 0 && spec.f_end_hz > 0);
  DR_EXPECTS(spec.harmonics >= 1);
  DR_EXPECTS(spec.noise_mix >= 0.0 && spec.noise_mix <= 1.0);

  const auto n = static_cast<std::size_t>(spec.duration_s * sample_rate);
  std::vector<float> out(n, 0.0F);
  if (n == 0) return out;

  const double nyquist_limit = 0.45 * sample_rate;
  const double log_f0 = std::log(spec.f_start_hz);
  const double log_f1 = std::log(spec.f_end_hz);

  // Tonal component: harmonic stack over a frequency sweep with vibrato.
  double phase = 0.0;
  const double tone_gain = 1.0 - spec.noise_mix;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n);
    double f = std::exp(log_f0 + (log_f1 - log_f0) * t);
    if (spec.vibrato_hz > 0.0) {
      f += spec.vibrato_depth_hz *
           std::sin(kTwoPi * spec.vibrato_hz * static_cast<double>(i) /
                    sample_rate);
    }
    f = std::clamp(f, 20.0, nyquist_limit);
    phase += kTwoPi * f / sample_rate;

    double v = 0.0;
    double partial_amp = 1.0;
    double amp_norm = 0.0;
    for (int h = 1; h <= spec.harmonics; ++h) {
      if (f * h < nyquist_limit) {
        v += partial_amp * std::sin(phase * h);
        amp_norm += partial_amp;
      }
      partial_amp *= spec.harmonic_decay;
    }
    if (amp_norm > 0.0) v /= amp_norm;
    out[i] = static_cast<float>(v * tone_gain);
  }

  // Noise component: white noise band-passed around the sweep midpoint.
  if (spec.noise_mix > 0.0) {
    const double center =
        std::clamp(std::exp(0.5 * (log_f0 + log_f1)), 50.0, nyquist_limit);
    auto bp = dsp::Biquad::band_pass(sample_rate, center, /*q=*/2.0);
    for (std::size_t i = 0; i < n; ++i) {
      const float noise = static_cast<float>(rng.uniform(-1.0, 1.0));
      // Band-passed noise loses energy; boost to keep buzzes audible.
      out[i] += static_cast<float>(spec.noise_mix * 3.0) * bp.step(noise);
    }
  }

  for (auto& v : out) v *= static_cast<float>(spec.amplitude);
  apply_envelope(out, sample_rate, spec.attack_s, spec.release_s);
  return out;
}

}  // namespace dynriver::synth
