#include "dsp/biquad.hpp"

#include <cmath>
#include <numbers>

#include "common/contracts.hpp"

namespace dynriver::dsp {

namespace {
constexpr double kPi = std::numbers::pi;

struct RbjCoeffs {
  double b0, b1, b2, a0, a1, a2;
};
}  // namespace

Biquad Biquad::low_pass(double sample_rate, double cutoff_hz, double q) {
  DR_EXPECTS(sample_rate > 0 && cutoff_hz > 0 && cutoff_hz < sample_rate / 2);
  DR_EXPECTS(q > 0);
  const double w0 = 2.0 * kPi * cutoff_hz / sample_rate;
  const double alpha = std::sin(w0) / (2.0 * q);
  const double cw = std::cos(w0);
  const RbjCoeffs c{(1 - cw) / 2, 1 - cw, (1 - cw) / 2, 1 + alpha, -2 * cw,
                    1 - alpha};
  return Biquad(c.b0 / c.a0, c.b1 / c.a0, c.b2 / c.a0, c.a1 / c.a0, c.a2 / c.a0);
}

Biquad Biquad::high_pass(double sample_rate, double cutoff_hz, double q) {
  DR_EXPECTS(sample_rate > 0 && cutoff_hz > 0 && cutoff_hz < sample_rate / 2);
  DR_EXPECTS(q > 0);
  const double w0 = 2.0 * kPi * cutoff_hz / sample_rate;
  const double alpha = std::sin(w0) / (2.0 * q);
  const double cw = std::cos(w0);
  const RbjCoeffs c{(1 + cw) / 2, -(1 + cw), (1 + cw) / 2, 1 + alpha, -2 * cw,
                    1 - alpha};
  return Biquad(c.b0 / c.a0, c.b1 / c.a0, c.b2 / c.a0, c.a1 / c.a0, c.a2 / c.a0);
}

Biquad Biquad::band_pass(double sample_rate, double center_hz, double q) {
  DR_EXPECTS(sample_rate > 0 && center_hz > 0 && center_hz < sample_rate / 2);
  DR_EXPECTS(q > 0);
  const double w0 = 2.0 * kPi * center_hz / sample_rate;
  const double alpha = std::sin(w0) / (2.0 * q);
  const double cw = std::cos(w0);
  const RbjCoeffs c{alpha, 0.0, -alpha, 1 + alpha, -2 * cw, 1 - alpha};
  return Biquad(c.b0 / c.a0, c.b1 / c.a0, c.b2 / c.a0, c.a1 / c.a0, c.a2 / c.a0);
}

float Biquad::step(float x) {
  const double xd = static_cast<double>(x);
  const double y = b0_ * xd + b1_ * x1_ + b2_ * x2_ - a1_ * y1_ - a2_ * y2_;
  x2_ = x1_;
  x1_ = xd;
  y2_ = y1_;
  y1_ = y;
  return static_cast<float>(y);
}

void Biquad::process(std::span<float> data) {
  for (auto& v : data) v = step(v);
}

void Biquad::reset_state() { x1_ = x2_ = y1_ = y2_ = 0.0; }

}  // namespace dynriver::dsp
