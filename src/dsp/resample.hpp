// Linear-interpolation resampler.
//
// Sensor stations may record at different rates; the extraction pipeline
// normalizes everything to its configured analysis rate.
#pragma once

#include <span>
#include <vector>

namespace dynriver::dsp {

/// Resample `input` from `from_rate` to `to_rate` using linear interpolation.
/// Adequate for band-limited natural sounds well below Nyquist; higher-order
/// interpolation is unnecessary for the extraction use case.
[[nodiscard]] std::vector<float> resample_linear(std::span<const float> input,
                                                 double from_rate, double to_rate);

}  // namespace dynriver::dsp
