// Planned-execution FFTs.
//
// The free functions in dsp/fft.hpp recompute twiddle factors, bit-reversal
// permutations, and (for non-power-of-2 sizes) the Bluestein chirp and its
// spectrum on every call, and allocate fresh scratch each time. Archive-scale
// extraction runs millions of same-size transforms (the pipeline's record
// size is fixed at 900), so this module precomputes everything that depends
// only on the transform size once, in an FftPlan, and reuses in/out scratch
// across executions. A size-keyed PlanCache amortizes plan construction; a
// thread-local cache instance backs the plan-cached free functions so every
// existing call site benefits without code changes.
// Execution runs on the SIMD kernel layer (dsp/simd.hpp): fused radix-4
// first pass + vectorized radix-2 butterflies, vectorized Bluestein chirp
// multiplies, and a packed real-input fast path that does an n/2-point
// complex transform per real FFT. Batch entry points amortize dispatch and
// scratch across whole record matrices.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "dsp/fft.hpp"

namespace dynriver::dsp {

/// Precomputed transform of one fixed size: bit-reversal table + twiddle
/// factors for the radix-2 butterflies, plus the Bluestein chirp and the
/// chirp filter's spectrum for non-power-of-2 sizes. Execution reuses the
/// plan's internal scratch, so a plan is cheap to run but NOT thread-safe:
/// use one plan (or one PlanCache) per thread; `local_plan_cache()` gives
/// every thread its own.
class FftPlan {
 public:
  explicit FftPlan(std::size_t n);

  [[nodiscard]] std::size_t size() const { return n_; }
  /// True when the size runs on the pure radix-2 path (no Bluestein).
  [[nodiscard]] bool is_radix2() const { return pow2_; }

  /// In-place forward DFT of `data` (size() elements, no normalization).
  void forward(std::span<Cplx> data);
  /// In-place inverse DFT of `data`, normalized by 1/n.
  void inverse(std::span<Cplx> data);

  /// Out-of-place forward DFT; `in` and `out` must both hold size() elements
  /// and may not alias.
  void forward(std::span<const Cplx> in, std::span<Cplx> out);

  /// Forward DFT of a real signal into `out` (both size() elements). Runs
  /// the real-input fast path: even sizes pack the signal into an
  /// n/2-point complex transform (Hermitian unpack afterwards, ~half the
  /// work of the complex path); odd Bluestein sizes premultiply the chirp
  /// directly against the real input and compute only the lower half
  /// spectrum, mirroring the rest by conjugate symmetry.
  void forward_real(std::span<const float> in, std::span<Cplx> out);
  /// Magnitude spectrum |X[k]| of a real signal, k = 0 .. size()-1. Only
  /// the size()/2+1 unique Hermitian bins are computed; the mirror half is
  /// copied.
  void magnitudes(std::span<const float> in, std::span<float> out);

  /// Forward DFTs of `count` real records packed row-major in `in`
  /// (count * size() floats); writes count * size() spectra. Bit-identical
  /// to `count` forward_real calls — the batch exists to amortize dispatch,
  /// plan lookups, and scratch reuse across a whole record matrix.
  void forward_real_batch(std::span<const float> in, std::size_t count,
                          std::span<Cplx> out);
  /// Magnitude spectra of `count` packed real records (count * size() floats
  /// in, count * size() magnitudes out). Bit-identical to `count`
  /// magnitudes calls.
  void magnitudes_batch(std::span<const float> in, std::size_t count,
                        std::span<float> out);

 private:
  /// Table-driven iterative butterflies over `data` (whose size is n_ when
  /// pow2_, else the Bluestein convolution size m_): bit-reversal, a fused
  /// radix-4 first pass, then vectorized radix-2 stages.
  void radix2_forward(std::span<Cplx> data) const;
  void bluestein_forward(std::span<Cplx> data);
  void bluestein_forward_real(const float* in, Cplx* out);

  /// Build the real-input fast-path state (half-size sub-plan, unpack
  /// twiddles) on first use; odd sizes need none.
  void ensure_real_state();
  void forward_real_one(const float* in, Cplx* out);
  void magnitudes_one(const float* in, float* out);

  std::size_t n_;
  bool pow2_;
  std::vector<std::size_t> bitrev_;  ///< permutation for the radix-2 size
  std::vector<Cplx> twiddle_;        ///< stage-contiguous butterfly twiddles

  // Bluestein state (empty for power-of-2 sizes).
  std::size_t m_ = 0;            ///< power-of-2 convolution length >= 2n+1
  std::vector<Cplx> chirp_;      ///< exp(-i*pi*k^2/n), k < n
  std::vector<Cplx> chirp_fft_;  ///< forward FFT of the chirp filter, size m
  std::vector<Cplx> conv_;       ///< reusable convolution scratch, size m

  // Real-input fast-path state (built lazily by ensure_real_state; the
  // sub-plan never builds its own, so the chain is one level deep).
  std::unique_ptr<FftPlan> half_plan_;  ///< n/2-point sub-plan (even n)
  std::vector<Cplx> half_twiddle_;      ///< exp(-2*pi*i*k/n), k < n/2
  std::vector<Cplx> packed_;            ///< n/2 packed input scratch

  std::vector<Cplx> real_scratch_;  ///< reusable buffer for real-input paths
};

/// Size-keyed cache of FftPlans. Not thread-safe; intended usage is one
/// cache per thread (see local_plan_cache()) or one per single-threaded
/// engine.
class PlanCache {
 public:
  /// The plan for size `n` (n >= 1), built on first use.
  [[nodiscard]] FftPlan& get(std::size_t n);

  [[nodiscard]] std::size_t cached_plans() const { return plans_.size(); }
  void clear() { plans_.clear(); }

 private:
  std::unordered_map<std::size_t, std::unique_ptr<FftPlan>> plans_;
};

/// This thread's plan cache. Backs the plan-cached fft/ifft/fft_real free
/// functions; safe to use from any thread because each thread sees its own
/// instance.
[[nodiscard]] PlanCache& local_plan_cache();

}  // namespace dynriver::dsp
