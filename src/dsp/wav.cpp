#include "dsp/wav.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <string_view>

#include "common/checked.hpp"
#include "common/contracts.hpp"

namespace dynriver::dsp {

namespace {

namespace checked = common::checked;

template <typename T>
void put(std::vector<std::uint8_t>& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* raw = reinterpret_cast<const std::uint8_t*>(&value);
  out.insert(out.end(), raw, raw + sizeof(T));
}

template <typename T>
T get(std::span<const std::uint8_t> bytes, std::size_t& pos) {
  if (pos + sizeof(T) > bytes.size()) throw WavError("truncated WAV data");
  T value;
  std::memcpy(&value, bytes.data() + pos, sizeof(T));
  pos += sizeof(T);
  return value;
}

std::int16_t float_to_pcm16(float v) {
  const float clamped = std::clamp(v, -1.0F, 1.0F);
  return static_cast<std::int16_t>(std::lround(clamped * 32767.0F));
}

}  // namespace

std::vector<std::uint8_t> encode_wav(const WavClip& clip) {
  DR_EXPECTS(clip.sample_rate > 0);
  DR_EXPECTS(clip.channels >= 1);

  // RIFF sizes are u32 and block_align is u16: a clip too large for the
  // container must fail loudly, not wrap into a header that lies about the
  // payload (36 + data_bytes below must fit in u32 too).
  const auto data_bytes = checked::narrow<std::uint32_t, WavError>(
      checked::mul<WavError>(clip.samples.size(), sizeof(std::int16_t),
                             "WAV clip too large"),
      "WAV clip too large");
  if (data_bytes > 0xFFFFFFFFu - 36u) throw WavError("WAV clip too large");
  const auto block_align = checked::narrow<std::uint16_t, WavError>(
      checked::mul<WavError>(std::size_t{clip.channels},
                             sizeof(std::int16_t), "WAV block align overflow"),
      "WAV channel count too large");
  const std::uint32_t byte_rate = checked::mul<WavError>(
      clip.sample_rate, std::uint32_t{block_align}, "WAV byte rate overflow");

  std::vector<std::uint8_t> out;
  out.reserve(44 + data_bytes);

  // Byte-wise append: GCC 12's -Wstringop-overflow misfires on
  // vector::insert from a 4-char literal at -O2. Re-tested on GCC 12.2
  // (2026-08): still fires at -O3; drop this once the CI compiler moves.
  const auto put_tag = [&out](std::string_view tag) {
    for (const char c : tag) out.push_back(static_cast<std::uint8_t>(c));
  };

  put_tag("RIFF");
  put<std::uint32_t>(out, 36 + data_bytes);
  put_tag("WAVE");
  put_tag("fmt ");
  put<std::uint32_t>(out, 16);                  // PCM fmt chunk size
  put<std::uint16_t>(out, 1);                   // PCM
  put<std::uint16_t>(out, clip.channels);
  put<std::uint32_t>(out, clip.sample_rate);
  put<std::uint32_t>(out, byte_rate);
  put<std::uint16_t>(out, block_align);
  put<std::uint16_t>(out, 16);                  // bits per sample
  put_tag("data");
  put<std::uint32_t>(out, data_bytes);
  for (const float s : clip.samples) put<std::int16_t>(out, float_to_pcm16(s));
  return out;
}

WavClip decode_wav(std::span<const std::uint8_t> bytes) {
  std::size_t pos = 0;
  const auto expect_tag = [&](const char* tag) {
    if (pos + 4 > bytes.size()) throw WavError("truncated WAV header");
    if (std::memcmp(bytes.data() + pos, tag, 4) != 0) {
      throw WavError(std::string("missing WAV chunk tag: ") + tag);
    }
    pos += 4;
  };

  expect_tag("RIFF");
  (void)get<std::uint32_t>(bytes, pos);  // riff size (trusted from data chunk)
  expect_tag("WAVE");

  WavClip clip;
  bool have_fmt = false;
  std::uint16_t bits = 0;

  // Walk chunks; tolerate extension chunks (LIST, fact, ...) between fmt/data.
  while (pos + 8 <= bytes.size()) {
    char tag[4];
    std::memcpy(tag, bytes.data() + pos, 4);
    pos += 4;
    const auto chunk_size = get<std::uint32_t>(bytes, pos);

    if (std::memcmp(tag, "fmt ", 4) == 0) {
      if (chunk_size < 16) throw WavError("short WAV fmt chunk");
      std::size_t fmt_pos = pos;
      const auto format = get<std::uint16_t>(bytes, fmt_pos);
      if (format != 1) throw WavError("only PCM WAV is supported");
      clip.channels = get<std::uint16_t>(bytes, fmt_pos);
      if (clip.channels == 0) throw WavError("WAV with zero channels");
      clip.sample_rate = get<std::uint32_t>(bytes, fmt_pos);
      (void)get<std::uint32_t>(bytes, fmt_pos);  // byte rate
      (void)get<std::uint16_t>(bytes, fmt_pos);  // block align
      bits = get<std::uint16_t>(bytes, fmt_pos);
      if (bits != 16) throw WavError("only 16-bit PCM is supported");
      have_fmt = true;
    } else if (std::memcmp(tag, "data", 4) == 0) {
      if (!have_fmt) throw WavError("WAV data chunk before fmt chunk");
      if (pos + chunk_size > bytes.size()) throw WavError("truncated WAV data");
      const std::size_t n_samples = chunk_size / sizeof(std::int16_t);
      clip.samples.resize(n_samples);
      for (std::size_t i = 0; i < n_samples; ++i) {
        const auto raw = get<std::int16_t>(bytes, pos);
        clip.samples[i] = static_cast<float>(raw) / 32768.0F;
      }
      return clip;
    }
    // Word-aligned chunks. Widen before adding the pad byte: in u32,
    // chunk_size 0xFFFFFFFF + 1 wraps to a zero advance — an infinite loop
    // on a 13-byte hostile file.
    pos += std::size_t{chunk_size} + (chunk_size & 1u);
  }
  throw WavError("WAV file has no data chunk");
}

void write_wav(const std::filesystem::path& path, const WavClip& clip) {
  const auto bytes = encode_wav(clip);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw WavError("cannot open for writing: " + path.string());
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw WavError("write failed: " + path.string());
}

WavClip read_wav(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw WavError("cannot open for reading: " + path.string());
  // tellg reports -1 on failure; narrowing that through size_t would ask for
  // a 2^64-byte buffer instead of a clean error.
  const auto size = checked::narrow<std::size_t, WavError>(
      static_cast<std::streamoff>(in.tellg()), "cannot size WAV file");
  in.seekg(0);
  std::vector<std::uint8_t> bytes(size);
  in.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(size));
  if (!in) throw WavError("read failed: " + path.string());
  return decode_wav(bytes);
}

WavStreamReader::WavStreamReader(const std::filesystem::path& path)
    : in_(path, std::ios::binary) {
  if (!in_) throw WavError("cannot open for reading: " + path.string());

  const auto read_bytes = [&](void* dst, std::size_t n) {
    in_.read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
    if (!in_) throw WavError("truncated WAV header: " + path.string());
  };
  const auto read_u32 = [&] {
    std::uint32_t v = 0;
    read_bytes(&v, sizeof(v));
    return v;
  };
  const auto read_u16 = [&] {
    std::uint16_t v = 0;
    read_bytes(&v, sizeof(v));
    return v;
  };

  char tag[4];
  read_bytes(tag, 4);
  if (std::memcmp(tag, "RIFF", 4) != 0) throw WavError("missing WAV chunk tag: RIFF");
  (void)read_u32();  // riff size (trusted from data chunk)
  read_bytes(tag, 4);
  if (std::memcmp(tag, "WAVE", 4) != 0) throw WavError("missing WAV chunk tag: WAVE");

  // Walk chunks until "data"; tolerate extension chunks like decode_wav.
  bool have_fmt = false;
  for (;;) {
    // End of file between chunks: same diagnostic as decode_wav (a read
    // mid-chunk still reports a truncated header).
    if (in_.peek() == std::char_traits<char>::eof()) {
      throw WavError("WAV file has no data chunk");
    }
    read_bytes(tag, 4);
    const std::uint32_t chunk_size = read_u32();
    if (std::memcmp(tag, "fmt ", 4) == 0) {
      if (chunk_size < 16) throw WavError("short WAV fmt chunk");
      const auto format = read_u16();
      if (format != 1) throw WavError("only PCM WAV is supported");
      channels_ = read_u16();
      if (channels_ == 0) throw WavError("WAV with zero channels");
      sample_rate_ = read_u32();
      (void)read_u32();  // byte rate
      (void)read_u16();  // block align
      const auto bits = read_u16();
      if (bits != 16) throw WavError("only 16-bit PCM is supported");
      in_.seekg(static_cast<std::streamoff>(chunk_size - 16 + (chunk_size & 1U)),
                std::ios::cur);
      have_fmt = true;
    } else if (std::memcmp(tag, "data", 4) == 0) {
      if (!have_fmt) throw WavError("WAV data chunk before fmt chunk");
      // Two divisions, not size / (2 * channels): floor division chains
      // associatively, and the product form is the shape the repo lint bans.
      total_frames_ = chunk_size / sizeof(std::int16_t) / channels_;
      return;  // positioned at the first sample
    } else {
      // Widen before adding the pad byte (see decode_wav): u32 arithmetic
      // wraps a 0xFFFFFFFF chunk into a zero-byte seek.
      in_.seekg(static_cast<std::streamoff>(chunk_size) + (chunk_size & 1U),
                std::ios::cur);
      if (!in_) throw WavError("WAV file has no data chunk");
    }
  }
}

std::size_t WavStreamReader::read_mono(std::span<float> out) {
  const std::size_t want =
      std::min(out.size(), total_frames_ - frames_read_);
  if (want == 0) return 0;

  scratch_.resize(
      checked::mul<WavError>(want, std::size_t{channels_}, "WAV read overflow"));
  in_.read(reinterpret_cast<char*>(scratch_.data()),
           static_cast<std::streamsize>(checked::mul<WavError>(
               scratch_.size(), sizeof(std::int16_t), "WAV read overflow")));
  if (!in_) throw WavError("truncated WAV data");

  if (channels_ == 1) {
    for (std::size_t i = 0; i < want; ++i) {
      out[i] = static_cast<float>(scratch_[i]) / 32768.0F;
    }
  } else {
    // Decode then average, in the exact order to_mono uses, so streaming
    // reads are bit-identical to read_wav + to_mono.
    for (std::size_t f = 0; f < want; ++f) {
      float acc = 0.0F;
      for (std::uint16_t c = 0; c < channels_; ++c) {
        acc += static_cast<float>(scratch_[f * channels_ + c]) / 32768.0F;
      }
      out[f] = acc / static_cast<float>(channels_);
    }
  }
  frames_read_ += want;
  return want;
}

std::vector<float> to_mono(const WavClip& clip) {
  if (clip.channels <= 1) return clip.samples;
  const std::size_t frames = clip.samples.size() / clip.channels;
  std::vector<float> mono(frames, 0.0F);
  for (std::size_t f = 0; f < frames; ++f) {
    float acc = 0.0F;
    for (std::uint16_t c = 0; c < clip.channels; ++c) {
      acc += clip.samples[f * clip.channels + c];
    }
    mono[f] = acc / static_cast<float>(clip.channels);
  }
  return mono;
}

}  // namespace dynriver::dsp
