// Minimal WAV (RIFF/PCM16) reader and writer.
//
// Field sensor stations store clips as WAV; the paper's `wav2rec` operator
// encapsulates WAV data in pipeline records. This module handles the
// container format; samples are exposed as floats in [-1, 1].
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <stdexcept>
#include <vector>

namespace dynriver::dsp {

class WavError : public std::runtime_error {
 public:
  explicit WavError(const std::string& what) : std::runtime_error(what) {}
};

struct WavClip {
  std::uint32_t sample_rate = 0;
  std::uint16_t channels = 1;
  std::vector<float> samples;  ///< interleaved when channels > 1

  [[nodiscard]] double duration_seconds() const {
    if (sample_rate == 0 || channels == 0) return 0.0;
    return static_cast<double>(samples.size()) /
           (static_cast<double>(sample_rate) * channels);
  }
};

/// Serialize samples as a PCM16 WAV byte blob (values clamped to [-1, 1]).
[[nodiscard]] std::vector<std::uint8_t> encode_wav(const WavClip& clip);

/// Parse a PCM16 WAV byte blob. Throws WavError on malformed input.
[[nodiscard]] WavClip decode_wav(std::span<const std::uint8_t> bytes);

/// File convenience wrappers.
void write_wav(const std::filesystem::path& path, const WavClip& clip);
[[nodiscard]] WavClip read_wav(const std::filesystem::path& path);

/// Downmix interleaved multi-channel audio to mono by averaging.
[[nodiscard]] std::vector<float> to_mono(const WavClip& clip);

}  // namespace dynriver::dsp
