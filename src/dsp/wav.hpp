// Minimal WAV (RIFF/PCM16) reader and writer.
//
// Field sensor stations store clips as WAV; the paper's `wav2rec` operator
// encapsulates WAV data in pipeline records. This module handles the
// container format; samples are exposed as floats in [-1, 1].
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <span>
#include <stdexcept>
#include <vector>

namespace dynriver::dsp {

class WavError : public std::runtime_error {
 public:
  explicit WavError(const std::string& what) : std::runtime_error(what) {}
};

struct WavClip {
  std::uint32_t sample_rate = 0;
  std::uint16_t channels = 1;
  std::vector<float> samples;  ///< interleaved when channels > 1

  [[nodiscard]] double duration_seconds() const {
    if (sample_rate == 0 || channels == 0) return 0.0;
    return static_cast<double>(samples.size()) /
           (static_cast<double>(sample_rate) * channels);
  }
};

/// Serialize samples as a PCM16 WAV byte blob (values clamped to [-1, 1]).
[[nodiscard]] std::vector<std::uint8_t> encode_wav(const WavClip& clip);

/// Parse a PCM16 WAV byte blob. Throws WavError on malformed input.
[[nodiscard]] WavClip decode_wav(std::span<const std::uint8_t> bytes);

/// File convenience wrappers.
void write_wav(const std::filesystem::path& path, const WavClip& clip);
[[nodiscard]] WavClip read_wav(const std::filesystem::path& path);

/// Downmix interleaved multi-channel audio to mono by averaging.
[[nodiscard]] std::vector<float> to_mono(const WavClip& clip);

/// Incremental WAV file reader: parses the header on construction, then
/// decodes PCM16 frames chunk by chunk, so arbitrarily long recordings
/// stream with O(chunk) memory instead of read_wav's O(file). Decoded
/// values are bit-identical to read_wav + to_mono.
class WavStreamReader {
 public:
  explicit WavStreamReader(const std::filesystem::path& path);

  /// Fill `out` with the next mono samples (multi-channel frames are
  /// averaged exactly like to_mono). Returns the number of samples
  /// produced; 0 at end of the data chunk.
  [[nodiscard]] std::size_t read_mono(std::span<float> out);

  [[nodiscard]] std::uint32_t sample_rate() const { return sample_rate_; }
  [[nodiscard]] std::uint16_t channels() const { return channels_; }
  /// Mono samples (frames) in the data chunk.
  [[nodiscard]] std::size_t total_frames() const { return total_frames_; }
  [[nodiscard]] std::size_t frames_read() const { return frames_read_; }

 private:
  std::ifstream in_;
  std::uint32_t sample_rate_ = 0;
  std::uint16_t channels_ = 1;
  std::size_t total_frames_ = 0;
  std::size_t frames_read_ = 0;
  std::vector<std::int16_t> scratch_;  ///< one chunk of interleaved PCM16
};

}  // namespace dynriver::dsp
