// Discrete Fourier transforms.
//
// The paper's `dft` operator computes the discrete Fourier transform of each
// (windowed) ensemble record. The repository default record length is 900
// samples (see DESIGN.md section 3), so a power-of-2-only FFT is not enough:
// we provide an iterative radix-2 FFT plus Bluestein's chirp-z algorithm for
// arbitrary lengths, and a naive O(n^2) DFT as a cross-check reference.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace dynriver::dsp {

using Cplx = std::complex<double>;

/// True iff n is a power of two (n >= 1).
[[nodiscard]] constexpr bool is_power_of_two(std::size_t n) {
  return n != 0 && (n & (n - 1)) == 0;
}

/// Smallest power of two >= n.
[[nodiscard]] std::size_t next_power_of_two(std::size_t n);

/// In-place iterative radix-2 Cooley-Tukey FFT. Requires power-of-2 size.
/// `inverse` computes the unscaled inverse transform (caller divides by n).
void fft_radix2(std::span<Cplx> data, bool inverse);

/// FFT for arbitrary sizes: radix-2 when possible, Bluestein otherwise.
/// Forward transform, no normalization. Plan-cached: transforms of a size
/// seen before on this thread reuse precomputed tables (see dsp/fft_plan.hpp).
[[nodiscard]] std::vector<Cplx> fft(std::span<const Cplx> input);

/// Inverse FFT for arbitrary sizes, normalized by 1/n. Plan-cached.
[[nodiscard]] std::vector<Cplx> ifft(std::span<const Cplx> input);

/// Reference naive DFT (O(n^2)); used by tests and the micro benches.
[[nodiscard]] std::vector<Cplx> dft_naive(std::span<const Cplx> input);

/// Forward DFT of a real signal; returns the full n-point complex spectrum.
/// Plan-cached.
[[nodiscard]] std::vector<Cplx> fft_real(std::span<const float> input);

/// Magnitude spectrum |X[k]| of a real signal, k = 0 .. n-1. Plan-cached.
[[nodiscard]] std::vector<float> magnitude_spectrum(std::span<const float> input);

/// Legacy unplanned implementations: recompute twiddles/chirp and allocate
/// scratch on every call. Kept as the reference baseline for the
/// plan-equivalence property tests and the planned-vs-legacy micro benches;
/// new code should use the plan-cached functions above or FftPlan directly.
[[nodiscard]] std::vector<Cplx> fft_unplanned(std::span<const Cplx> input);
[[nodiscard]] std::vector<Cplx> ifft_unplanned(std::span<const Cplx> input);
[[nodiscard]] std::vector<Cplx> fft_real_unplanned(std::span<const float> input);

/// Frequency (Hz) of bin k for an n-point transform at `sample_rate`.
[[nodiscard]] double bin_frequency(std::size_t k, std::size_t n, double sample_rate);

/// Bin index whose center frequency is closest to `freq_hz` (clamped to n-1).
[[nodiscard]] std::size_t frequency_bin(double freq_hz, std::size_t n,
                                        double sample_rate);

}  // namespace dynriver::dsp
