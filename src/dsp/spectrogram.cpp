#include "dsp/spectrogram.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/stats.hpp"
#include "dsp/fft.hpp"
#include "dsp/fft_plan.hpp"
#include "dsp/simd.hpp"

namespace dynriver::dsp {

double Spectrogram::frame_time(std::size_t i) const {
  DR_EXPECTS(sample_rate > 0);
  return static_cast<double>(i * hop) / sample_rate;
}

double Spectrogram::bin_freq(std::size_t k) const {
  DR_EXPECTS(frame_size > 0);
  return bin_frequency(k, frame_size, sample_rate);
}

Spectrogram stft(std::span<const float> signal, const SpectrogramParams& params) {
  DR_EXPECTS(params.frame_size >= 2);
  DR_EXPECTS(params.hop >= 1);
  DR_EXPECTS(params.sample_rate > 0);

  Spectrogram spec;
  spec.sample_rate = params.sample_rate;
  spec.frame_size = params.frame_size;
  spec.hop = params.hop;

  if (signal.size() < params.frame_size) return spec;

  const auto window = make_window(params.window, params.frame_size);
  const std::size_t num_bins = params.frame_size / 2 + 1;
  const std::size_t num_frames = (signal.size() - params.frame_size) / params.hop + 1;
  spec.frames.reserve(num_frames);

  // Frames run through the plan's batch path in fixed-size chunks: one plan
  // lookup for the whole signal, windowing fused with the frame copy, and
  // per-chunk magnitude transforms instead of per-frame dispatch. The chunk
  // is kept small so both its passes (window, transform) stay cache-hot.
  constexpr std::size_t kChunkFrames = 8;
  const std::size_t fs = params.frame_size;
  const std::size_t chunk = std::min(kChunkFrames, num_frames);
  FftPlan& plan = local_plan_cache().get(fs);
  std::vector<float> frames_buf(chunk * fs);
  std::vector<float> mags_buf(chunk * fs);
  for (std::size_t f0 = 0; f0 < num_frames; f0 += chunk) {
    const std::size_t c = std::min(chunk, num_frames - f0);
    for (std::size_t j = 0; j < c; ++j) {
      simd::multiply_f32(frames_buf.data() + j * fs,
                         signal.data() + (f0 + j) * params.hop, window.data(),
                         fs);
    }
    plan.magnitudes_batch(std::span<const float>(frames_buf.data(), c * fs), c,
                          std::span<float>(mags_buf.data(), c * fs));
    for (std::size_t j = 0; j < c; ++j) {
      const float* m = mags_buf.data() + j * fs;
      std::vector<float> mags(num_bins);
      if (params.log_magnitude) {
        for (std::size_t k = 0; k < num_bins; ++k) {
          mags[k] = static_cast<float>(
              20.0 * std::log10(static_cast<double>(m[k]) + 1e-12));
        }
      } else {
        std::copy_n(m, num_bins, mags.begin());
      }
      spec.frames.push_back(std::move(mags));
    }
  }
  return spec;
}

std::vector<float> normalize_oscillogram(std::span<const float> signal) {
  std::vector<float> out(signal.begin(), signal.end());
  if (out.empty()) return out;
  const double mu = mean_of(signal);
  float max_abs = 0.0F;
  for (auto& v : out) {
    v -= static_cast<float>(mu);
    max_abs = std::max(max_abs, std::abs(v));
  }
  if (max_abs > 0.0F) {
    for (auto& v : out) v /= max_abs;
  }
  return out;
}

namespace {
char shade(double intensity) {
  static constexpr char kLevels[] = " .:-=+*#%@";
  const auto idx = static_cast<std::size_t>(
      std::clamp(intensity, 0.0, 0.999) * (sizeof(kLevels) - 1));
  return kLevels[idx];
}
}  // namespace

std::string ascii_spectrogram(const Spectrogram& spec, std::size_t cols,
                              std::size_t rows) {
  if (spec.num_frames() == 0 || spec.num_bins() == 0 || cols == 0 || rows == 0) {
    return "(empty spectrogram)\n";
  }
  cols = std::min(cols, spec.num_frames());
  rows = std::min(rows, spec.num_bins());

  // Downsample the matrix by cell-averaging, then map to log shades.
  std::vector<std::vector<double>> grid(rows, std::vector<double>(cols, 0.0));
  double max_val = 1e-12;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::size_t f0 = c * spec.num_frames() / cols;
      const std::size_t f1 = std::max(f0 + 1, (c + 1) * spec.num_frames() / cols);
      const std::size_t b0 = r * spec.num_bins() / rows;
      const std::size_t b1 = std::max(b0 + 1, (r + 1) * spec.num_bins() / rows);
      double acc = 0.0;
      std::size_t cnt = 0;
      for (std::size_t f = f0; f < f1; ++f) {
        for (std::size_t b = b0; b < b1; ++b) {
          acc += spec.frames[f][b];
          ++cnt;
        }
      }
      grid[r][c] = acc / static_cast<double>(std::max<std::size_t>(cnt, 1));
      max_val = std::max(max_val, grid[r][c]);
    }
  }

  std::string out;
  out.reserve((cols + 16) * rows);
  // Highest frequency on top, like the paper's figures.
  for (std::size_t r = rows; r-- > 0;) {
    for (std::size_t c = 0; c < cols; ++c) {
      const double rel = std::log10(1.0 + 9.0 * grid[r][c] / max_val);  // 0..1
      out += shade(rel);
    }
    out += '\n';
  }
  return out;
}

std::string ascii_oscillogram(std::span<const float> signal, std::size_t cols,
                              std::size_t rows) {
  if (signal.empty() || cols == 0 || rows == 0) return "(empty signal)\n";
  cols = std::min(cols, signal.size());

  // Per-column peak amplitude, rendered as a vertical bar chart.
  std::vector<double> peaks(cols, 0.0);
  double max_peak = 1e-12;
  for (std::size_t c = 0; c < cols; ++c) {
    const std::size_t s0 = c * signal.size() / cols;
    const std::size_t s1 = std::max(s0 + 1, (c + 1) * signal.size() / cols);
    for (std::size_t s = s0; s < s1; ++s) {
      peaks[c] = std::max(peaks[c], static_cast<double>(std::abs(signal[s])));
    }
    max_peak = std::max(max_peak, peaks[c]);
  }

  std::string out;
  out.reserve((cols + 1) * rows);
  for (std::size_t r = rows; r-- > 0;) {
    const double threshold = static_cast<double>(r) / static_cast<double>(rows);
    for (std::size_t c = 0; c < cols; ++c) {
      out += (peaks[c] / max_peak > threshold) ? '|' : ' ';
    }
    out += '\n';
  }
  return out;
}

}  // namespace dynriver::dsp
