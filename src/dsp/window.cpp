#include "dsp/window.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <string>

#include "common/contracts.hpp"
#include "dsp/simd.hpp"

namespace dynriver::dsp {

namespace {
constexpr double kPi = std::numbers::pi;
}

const char* to_string(WindowKind kind) {
  switch (kind) {
    case WindowKind::kRectangular:
      return "rectangular";
    case WindowKind::kWelch:
      return "welch";
    case WindowKind::kHann:
      return "hann";
    case WindowKind::kHamming:
      return "hamming";
  }
  return "unknown";
}

WindowKind window_from_string(std::string_view name) {
  if (name == "rectangular" || name == "rect") return WindowKind::kRectangular;
  if (name == "welch") return WindowKind::kWelch;
  if (name == "hann") return WindowKind::kHann;
  if (name == "hamming") return WindowKind::kHamming;
  throw std::invalid_argument("unknown window kind: " + std::string(name));
}

std::vector<float> make_window(WindowKind kind, std::size_t n) {
  DR_EXPECTS(n >= 1);
  std::vector<float> w(n, 1.0F);
  if (n == 1) return w;
  const double last = static_cast<double>(n - 1);
  switch (kind) {
    case WindowKind::kRectangular:
      break;
    case WindowKind::kWelch: {
      // w[i] = 1 - ((i - (n-1)/2) / ((n-1)/2))^2
      const double half = last / 2.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double x = (static_cast<double>(i) - half) / half;
        w[i] = static_cast<float>(1.0 - x * x);
      }
      break;
    }
    case WindowKind::kHann:
      for (std::size_t i = 0; i < n; ++i) {
        w[i] = static_cast<float>(
            0.5 * (1.0 - std::cos(2.0 * kPi * static_cast<double>(i) / last)));
      }
      break;
    case WindowKind::kHamming:
      for (std::size_t i = 0; i < n; ++i) {
        w[i] = static_cast<float>(
            0.54 - 0.46 * std::cos(2.0 * kPi * static_cast<double>(i) / last));
      }
      break;
  }
  return w;
}

void apply_window(std::span<float> data, std::span<const float> window) {
  DR_EXPECTS(data.size() == window.size());
  simd::multiply_f32(data.data(), data.data(), window.data(), data.size());
}

void apply_window(std::span<float> data, WindowKind kind) {
  const auto w = make_window(kind, data.size());
  apply_window(data, w);
}

double window_power(std::span<const float> window) {
  double acc = 0.0;
  for (const float v : window) acc += static_cast<double>(v) * v;
  return acc;
}

}  // namespace dynriver::dsp
