#include "dsp/resample.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace dynriver::dsp {

std::vector<float> resample_linear(std::span<const float> input, double from_rate,
                                   double to_rate) {
  DR_EXPECTS(from_rate > 0 && to_rate > 0);
  if (input.empty()) return {};
  if (from_rate == to_rate) return {input.begin(), input.end()};

  const double ratio = from_rate / to_rate;
  const auto out_len = static_cast<std::size_t>(
      std::floor(static_cast<double>(input.size() - 1) / ratio)) + 1;

  std::vector<float> out(out_len);
  for (std::size_t i = 0; i < out_len; ++i) {
    const double src = static_cast<double>(i) * ratio;
    const auto idx = static_cast<std::size_t>(src);
    const double frac = src - static_cast<double>(idx);
    const float a = input[idx];
    const float b = (idx + 1 < input.size()) ? input[idx + 1] : a;
    out[i] = static_cast<float>((1.0 - frac) * a + frac * b);
  }
  return out;
}

}  // namespace dynriver::dsp
