// Biquad IIR filters (RBJ audio-EQ cookbook forms).
//
// The synthetic substrate shapes its noise sources with these: wind is
// low-passed brown noise, ambient hiss is gently high-passed white noise.
#pragma once

#include <span>

namespace dynriver::dsp {

/// Direct-form-I biquad with persistent state for streaming use.
class Biquad {
 public:
  /// Identity filter (passes input through).
  Biquad() = default;

  static Biquad low_pass(double sample_rate, double cutoff_hz, double q = 0.7071);
  static Biquad high_pass(double sample_rate, double cutoff_hz, double q = 0.7071);
  static Biquad band_pass(double sample_rate, double center_hz, double q);

  /// Filter one sample.
  [[nodiscard]] float step(float x);

  /// Filter a buffer in place.
  void process(std::span<float> data);

  void reset_state();

 private:
  Biquad(double b0, double b1, double b2, double a1, double a2)
      : b0_(b0), b1_(b1), b2_(b2), a1_(a1), a2_(a2) {}

  double b0_ = 1.0, b1_ = 0.0, b2_ = 0.0;
  double a1_ = 0.0, a2_ = 0.0;
  double x1_ = 0.0, x2_ = 0.0, y1_ = 0.0, y2_ = 0.0;
};

}  // namespace dynriver::dsp
