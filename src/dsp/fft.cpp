#include "dsp/fft.hpp"

#include <cmath>
#include <numbers>

#include "common/contracts.hpp"
#include "dsp/fft_plan.hpp"

namespace dynriver::dsp {

namespace {
constexpr double kPi = std::numbers::pi;

/// Bluestein's chirp-z transform: expresses an arbitrary-length DFT as a
/// convolution, evaluated with a power-of-2 FFT.
std::vector<Cplx> bluestein(std::span<const Cplx> input) {
  const std::size_t n = input.size();
  const std::size_t m = next_power_of_two(2 * n + 1);

  // chirp[k] = exp(-i*pi*k^2/n)
  std::vector<Cplx> chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    // k^2 mod 2n keeps the argument small for numerical stability.
    const auto k2 = static_cast<double>((static_cast<unsigned long long>(k) * k) %
                                        (2 * n));
    const double angle = kPi * k2 / static_cast<double>(n);
    chirp[k] = Cplx(std::cos(angle), -std::sin(angle));
  }

  std::vector<Cplx> a(m, Cplx(0, 0));
  for (std::size_t k = 0; k < n; ++k) a[k] = input[k] * chirp[k];

  std::vector<Cplx> b(m, Cplx(0, 0));
  b[0] = std::conj(chirp[0]);
  for (std::size_t k = 1; k < n; ++k) {
    b[k] = std::conj(chirp[k]);
    b[m - k] = std::conj(chirp[k]);
  }

  fft_radix2(a, /*inverse=*/false);
  fft_radix2(b, /*inverse=*/false);
  for (std::size_t k = 0; k < m; ++k) a[k] *= b[k];
  fft_radix2(a, /*inverse=*/true);

  std::vector<Cplx> out(n);
  const double scale = 1.0 / static_cast<double>(m);
  for (std::size_t k = 0; k < n; ++k) out[k] = a[k] * scale * chirp[k];
  return out;
}
}  // namespace

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_radix2(std::span<Cplx> data, bool inverse) {
  const std::size_t n = data.size();
  DR_EXPECTS(is_power_of_two(n));
  if (n <= 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = 2.0 * kPi / static_cast<double>(len) * (inverse ? 1 : -1);
    const Cplx wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Cplx w(1, 0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Cplx u = data[i + k];
        const Cplx v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

std::vector<Cplx> fft(std::span<const Cplx> input) {
  const std::size_t n = input.size();
  if (n == 0) return {};
  std::vector<Cplx> out(n);
  local_plan_cache().get(n).forward(input, out);
  return out;
}

std::vector<Cplx> ifft(std::span<const Cplx> input) {
  const std::size_t n = input.size();
  if (n == 0) return {};
  std::vector<Cplx> out(input.begin(), input.end());
  local_plan_cache().get(n).inverse(out);
  return out;
}

std::vector<Cplx> fft_unplanned(std::span<const Cplx> input) {
  const std::size_t n = input.size();
  if (n == 0) return {};
  if (is_power_of_two(n)) {
    std::vector<Cplx> data(input.begin(), input.end());
    fft_radix2(data, /*inverse=*/false);
    return data;
  }
  return bluestein(input);
}

std::vector<Cplx> ifft_unplanned(std::span<const Cplx> input) {
  const std::size_t n = input.size();
  if (n == 0) return {};
  // IFFT via conjugation: ifft(x) = conj(fft(conj(x))) / n.
  std::vector<Cplx> conj_in(n);
  for (std::size_t i = 0; i < n; ++i) conj_in[i] = std::conj(input[i]);
  std::vector<Cplx> out = fft_unplanned(conj_in);
  const double scale = 1.0 / static_cast<double>(n);
  for (auto& v : out) v = std::conj(v) * scale;
  return out;
}

std::vector<Cplx> fft_real_unplanned(std::span<const float> input) {
  std::vector<Cplx> cplx_in(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    cplx_in[i] = Cplx(static_cast<double>(input[i]), 0.0);
  }
  return fft_unplanned(cplx_in);
}

std::vector<Cplx> dft_naive(std::span<const Cplx> input) {
  const std::size_t n = input.size();
  std::vector<Cplx> out(n, Cplx(0, 0));
  for (std::size_t k = 0; k < n; ++k) {
    Cplx acc(0, 0);
    for (std::size_t t = 0; t < n; ++t) {
      const double angle =
          -2.0 * kPi * static_cast<double>(k) * static_cast<double>(t) /
          static_cast<double>(n);
      acc += input[t] * Cplx(std::cos(angle), std::sin(angle));
    }
    out[k] = acc;
  }
  return out;
}

std::vector<Cplx> fft_real(std::span<const float> input) {
  const std::size_t n = input.size();
  if (n == 0) return {};
  std::vector<Cplx> out(n);
  local_plan_cache().get(n).forward_real(input, out);
  return out;
}

std::vector<float> magnitude_spectrum(std::span<const float> input) {
  const std::size_t n = input.size();
  if (n == 0) return {};
  std::vector<float> mags(n);
  local_plan_cache().get(n).magnitudes(input, mags);
  return mags;
}

double bin_frequency(std::size_t k, std::size_t n, double sample_rate) {
  DR_EXPECTS(n > 0);
  return static_cast<double>(k) * sample_rate / static_cast<double>(n);
}

std::size_t frequency_bin(double freq_hz, std::size_t n, double sample_rate) {
  DR_EXPECTS(n > 0);
  DR_EXPECTS(sample_rate > 0);
  const double k = freq_hz * static_cast<double>(n) / sample_rate;
  const auto bin = static_cast<std::size_t>(std::llround(std::max(0.0, k)));
  return std::min(bin, n - 1);
}

}  // namespace dynriver::dsp
