// Portable SIMD kernel layer for the spectral hot path.
//
// Every per-element loop the FFT and windowing code runs millions of times at
// archive scale lives here as a small kernel: radix-2/radix-4 butterflies,
// pointwise complex multiplies (the Bluestein chirp/convolution steps),
// window application, float<->double widening, and magnitude extraction.
//
// The vector path uses GCC/Clang generic vector extensions — no intrinsics,
// no runtime dispatch — so the same source compiles to SSE2 on a portable
// x86-64 baseline, AVX2 under -march=x86-64-v3, and NEON on aarch64; any
// other compiler gets the scalar fallback below each #if. Call sites are
// backend-agnostic: they call the kernel, the preprocessor picks the body.
//
// Numerical contract: the vector bodies perform the same IEEE operations per
// element as the scalar bodies (complex multiplies expand to the identical
// mul/add sequence, lanes never mix), so the two backends agree to the last
// ulp in practice; tests hold them to 1e-9 relative tolerance.
//
// All complex kernels operate on interleaved (re, im) double arrays with
// sizes counted in complex elements — reinterpret_cast from
// std::complex<double>* is sanctioned by [complex.numbers.general]. Kernels
// tolerate any element-aligned pointer (loads/stores dereference a
// reduced-alignment may_alias vector type, compiling to unaligned vector
// moves) and arbitrary sizes including odd tails.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

#if (defined(__GNUC__) || defined(__clang__)) && !defined(DYNRIVER_NO_SIMD)
#define DYNRIVER_SIMD_VECTOR_EXT 1
#else
#define DYNRIVER_SIMD_VECTOR_EXT 0
#endif

namespace dynriver::dsp::simd {

/// Which kernel backend this build uses (diagnostics / bench output).
[[nodiscard]] constexpr const char* backend() {
#if DYNRIVER_SIMD_VECTOR_EXT
  return "vector-ext";
#else
  return "scalar";
#endif
}

#if DYNRIVER_SIMD_VECTOR_EXT
namespace detail {

// 4 doubles = 2 interleaved complex values; 8 floats = one window strip.
// The reduced `aligned` makes any element-aligned address loadable; 32-byte
// vectors split into two SSE ops on the portable baseline and map 1:1 onto
// AVX2 registers under -march=x86-64-v3.
typedef double V4d __attribute__((vector_size(32), aligned(8), may_alias));
typedef float V8f __attribute__((vector_size(32), aligned(4), may_alias));
typedef float V4f __attribute__((vector_size(16), aligned(4), may_alias));
typedef long long M4 __attribute__((vector_size(32), may_alias));

// Loads/stores dereference through the reduced-alignment may_alias vector
// type: legal at any element-aligned address, and the compiler emits plain
// unaligned vector moves. (memcpy into a local vector looks equivalent but
// GCC 12 materializes the local on the stack under -mavx2 — every load
// becomes a store-forwarding stall and the kernels run ~10x slower.)
inline V4d load4d(const double* p) {
  return *reinterpret_cast<const V4d*>(p);
}
inline void store4d(double* p, V4d v) { *reinterpret_cast<V4d*>(p) = v; }
inline V8f load8f(const float* p) { return *reinterpret_cast<const V8f*>(p); }
inline void store8f(float* p, V8f v) { *reinterpret_cast<V8f*>(p) = v; }
inline V4f load4f(const float* p) { return *reinterpret_cast<const V4f*>(p); }

template <int A, int B, int C, int D>
[[nodiscard]] inline V4d shuffle(V4d v) {
#if defined(__clang__)
  return __builtin_shufflevector(v, v, A, B, C, D);
#else
  return __builtin_shuffle(v, M4{A, B, C, D});
#endif
}

/// Lane-wise complex multiply of two packed pairs: (a0*b0, a1*b1). Expands
/// to the same (ar*br - ai*bi, ar*bi + ai*br) sequence the scalar path uses.
[[nodiscard]] inline V4d cmul(V4d a, V4d b) {
  const V4d ar = shuffle<0, 0, 2, 2>(a);
  const V4d ai = shuffle<1, 1, 3, 3>(a);
  const V4d bs = shuffle<1, 0, 3, 2>(b);
  const V4d sign = {-1.0, 1.0, -1.0, 1.0};
  return ar * b + sign * (ai * bs);
}

}  // namespace detail
#endif  // DYNRIVER_SIMD_VECTOR_EXT

/// dst[i] = x[i] * w[i] for n floats (dst may alias x): the window-apply
/// kernel, also used fused with the copy into batch record matrices.
inline void multiply_f32(float* dst, const float* x, const float* w,
                         std::size_t n) {
  std::size_t i = 0;
#if DYNRIVER_SIMD_VECTOR_EXT
  for (; i + 8 <= n; i += 8) {
    detail::store8f(dst + i, detail::load8f(x + i) * detail::load8f(w + i));
  }
#endif
  for (; i < n; ++i) dst[i] = x[i] * w[i];
}

/// out[i] = double(x[i]) for n elements. Widening a real record into the
/// FFT's interleaved complex layout (re = even, im = odd index) is exactly
/// this elementwise convert.
inline void widen_f32(const float* x, double* out, std::size_t n) {
  std::size_t i = 0;
#if DYNRIVER_SIMD_VECTOR_EXT
  for (; i + 4 <= n; i += 4) {
    detail::store4d(out + i,
                    __builtin_convertvector(detail::load4f(x + i), detail::V4d));
  }
#endif
  for (; i < n; ++i) out[i] = static_cast<double>(x[i]);
}

/// out[k] = a[k] * b[k] over n interleaved complex values. `out` may alias
/// `a` (the in-place convolution step) but not partially overlap.
inline void complex_multiply(double* out, const double* a, const double* b,
                             std::size_t n) {
  std::size_t k = 0;
#if DYNRIVER_SIMD_VECTOR_EXT
  for (; k + 2 <= n; k += 2) {
    detail::store4d(out + 2 * k, detail::cmul(detail::load4d(a + 2 * k),
                                              detail::load4d(b + 2 * k)));
  }
#endif
  for (; k < n; ++k) {
    const double ar = a[2 * k];
    const double ai = a[2 * k + 1];
    const double br = b[2 * k];
    const double bi = b[2 * k + 1];
    out[2 * k] = ar * br - ai * bi;
    out[2 * k + 1] = ar * bi + ai * br;
  }
}

/// out[k] = x[k] * b[k] with real float x — the Bluestein chirp premultiply
/// specialized for real input (two multiplies per element instead of six
/// flops, no widening pass).
inline void complex_multiply_real(double* out, const float* x, const double* b,
                                  std::size_t n) {
  std::size_t k = 0;
#if DYNRIVER_SIMD_VECTOR_EXT
  for (; k + 2 <= n; k += 2) {
    const detail::V4d xv = {
        static_cast<double>(x[k]), static_cast<double>(x[k]),
        static_cast<double>(x[k + 1]), static_cast<double>(x[k + 1])};
    detail::store4d(out + 2 * k, xv * detail::load4d(b + 2 * k));
  }
#endif
  for (; k < n; ++k) {
    const double xv = static_cast<double>(x[k]);
    out[2 * k] = xv * b[2 * k];
    out[2 * k + 1] = xv * b[2 * k + 1];
  }
}

/// In-place conjugation of n interleaved complex values.
inline void conjugate(double* x, std::size_t n) {
  std::size_t k = 0;
#if DYNRIVER_SIMD_VECTOR_EXT
  const detail::V4d sign = {1.0, -1.0, 1.0, -1.0};
  for (; k + 2 <= n; k += 2) {
    detail::store4d(x + 2 * k, detail::load4d(x + 2 * k) * sign);
  }
#endif
  for (; k < n; ++k) x[2 * k + 1] = -x[2 * k + 1];
}

/// out[k] = conj(a[k]) * scale * b[k] — the Bluestein postmultiply (inverse
/// conjugation, 1/m normalization, and chirp de-rotation in one pass).
inline void conj_multiply_scale(double* out, const double* a, const double* b,
                                double scale, std::size_t n) {
  std::size_t k = 0;
#if DYNRIVER_SIMD_VECTOR_EXT
  const detail::V4d sv = {scale, -scale, scale, -scale};
  for (; k + 2 <= n; k += 2) {
    detail::store4d(out + 2 * k, detail::cmul(detail::load4d(a + 2 * k) * sv,
                                              detail::load4d(b + 2 * k)));
  }
#endif
  for (; k < n; ++k) {
    const double tr = a[2 * k] * scale;
    const double ti = a[2 * k + 1] * -scale;
    const double br = b[2 * k];
    const double bi = b[2 * k + 1];
    out[2 * k] = tr * br - ti * bi;
    out[2 * k + 1] = tr * bi + ti * br;
  }
}

/// out[k] = float(sqrt(re^2 + im^2)) of n interleaved complex values. The
/// squared sums vectorize; the square roots stay scalar (no portable
/// elementwise sqrt in the vector extension) but dominate either way.
inline void magnitudes_f32(const double* spec, float* out, std::size_t n) {
  std::size_t k = 0;
#if DYNRIVER_SIMD_VECTOR_EXT
  for (; k + 2 <= n; k += 2) {
    const detail::V4d v = detail::load4d(spec + 2 * k);
    const detail::V4d sq = v * v;
    const detail::V4d sum = sq + detail::shuffle<1, 0, 3, 2>(sq);
    out[k] = static_cast<float>(std::sqrt(sum[0]));
    out[k + 1] = static_cast<float>(std::sqrt(sum[2]));
  }
#endif
  for (; k < n; ++k) {
    const double re = spec[2 * k];
    const double im = spec[2 * k + 1];
    out[k] = static_cast<float>(std::sqrt(re * re + im * im));
  }
}

namespace detail {
/// One scalar radix-2 butterfly between complex slots a and b with twiddle
/// (wr, wi) — shared by the scalar stage body and the odd-half tail.
inline void butterfly1(double* a, double* b, double wr, double wi) {
  const double vr = b[0] * wr - b[1] * wi;
  const double vi = b[0] * wi + b[1] * wr;
  const double ur = a[0];
  const double ui = a[1];
  a[0] = ur + vr;
  a[1] = ui + vi;
  b[0] = ur - vr;
  b[1] = ui - vi;
}
}  // namespace detail

/// One radix-2 Cooley-Tukey stage with butterfly span 2*half over s
/// interleaved complex values (s a multiple of 2*half). `tw` holds the
/// stage's half twiddles, sequential — the stage-contiguous layout FftPlan
/// precomputes. The vector path runs two butterflies per iteration.
inline void radix2_stage(double* __restrict d, const double* __restrict tw,
                         std::size_t s, std::size_t half) {
  const std::size_t len = 2 * half;
#if DYNRIVER_SIMD_VECTOR_EXT
  if (half >= 2) {
    const std::size_t vhalf = half & ~std::size_t{1};
    for (std::size_t i = 0; i < s; i += len) {
      double* a = d + 2 * i;
      double* b = a + 2 * half;
      for (std::size_t k = 0; k < vhalf; k += 2) {
        const detail::V4d w = detail::load4d(tw + 2 * k);
        const detail::V4d u = detail::load4d(a + 2 * k);
        const detail::V4d v = detail::cmul(detail::load4d(b + 2 * k), w);
        detail::store4d(a + 2 * k, u + v);
        detail::store4d(b + 2 * k, u - v);
      }
      for (std::size_t k = vhalf; k < half; ++k) {
        detail::butterfly1(a + 2 * k, b + 2 * k, tw[2 * k], tw[2 * k + 1]);
      }
    }
    return;
  }
#endif
  for (std::size_t i = 0; i < s; i += len) {
    for (std::size_t k = 0; k < half; ++k) {
      detail::butterfly1(d + 2 * (i + k), d + 2 * (i + k + half), tw[2 * k],
                         tw[2 * k + 1]);
    }
  }
}

/// The first two radix-2 stages fused into one twiddle-free radix-4 pass
/// over s interleaved complex values (s a multiple of 4): per 4-point block
///   t0 = x0+x1   t1 = x0-x1   t2 = x2+x3   t3 = -i*(x2-x3)
///   y0 = t0+t2   y1 = t1+t3   y2 = t0-t2   y3 = t1-t3
/// One pass over the data instead of two, and the -i rotation is an exact
/// swap/negate instead of the table path's cos/sin approximation.
inline void radix4_first_pass(double* d, std::size_t s) {
#if DYNRIVER_SIMD_VECTOR_EXT
  const detail::V4d sgn = {1.0, 1.0, -1.0, -1.0};
  const detail::V4d rot = {1.0, 1.0, 1.0, -1.0};
  for (std::size_t i = 0; i < s; i += 4) {
    double* p = d + 2 * i;
    const detail::V4d v01 = detail::load4d(p);
    const detail::V4d v23 = detail::load4d(p + 4);
    const detail::V4d t01 = detail::shuffle<2, 3, 0, 1>(v01) + sgn * v01;
    const detail::V4d t23 = detail::shuffle<2, 3, 0, 1>(v23) + sgn * v23;
    const detail::V4d t2r3 = detail::shuffle<0, 1, 3, 2>(t23) * rot;
    detail::store4d(p, t01 + t2r3);
    detail::store4d(p + 4, t01 - t2r3);
  }
#else
  for (std::size_t i = 0; i < s; i += 4) {
    double* p = d + 2 * i;
    const double t0r = p[0] + p[2];
    const double t0i = p[1] + p[3];
    const double t1r = p[0] - p[2];
    const double t1i = p[1] - p[3];
    const double t2r = p[4] + p[6];
    const double t2i = p[5] + p[7];
    const double dr = p[4] - p[6];
    const double di = p[5] - p[7];
    p[0] = t0r + t2r;
    p[1] = t0i + t2i;
    p[2] = t1r + di;
    p[3] = t1i - dr;
    p[4] = t0r - t2r;
    p[5] = t0i - t2i;
    p[6] = t1r - di;
    p[7] = t1i + dr;
  }
#endif
}

// ---------------------------------------------------------------------------
// Scoring-chain kernels (znorm / PAA / SAX / windowed energy).
//
// Reduction contract, shared verbatim by the vector and scalar bodies so the
// two backends agree bit-for-bit (the anomaly scorer's batch and streaming
// paths both fold through these, and their outputs feed integer symbol
// decisions): four double accumulator lanes, lane l summing elements
// l, l+4, l+8, ...; the n%4 tail folds sequentially into a fifth scalar
// accumulator; the result combines as ((lane0+lane2)+(lane1+lane3)) + tail.
// ---------------------------------------------------------------------------

/// Sum of n floats accumulated in double (fixed lane-order contract above).
[[nodiscard]] inline double sum_f32(const float* x, std::size_t n) {
  std::size_t i = 0;
#if DYNRIVER_SIMD_VECTOR_EXT
  detail::V4d acc = {0.0, 0.0, 0.0, 0.0};
  for (; i + 4 <= n; i += 4) {
    acc += __builtin_convertvector(detail::load4f(x + i), detail::V4d);
  }
  double tail = 0.0;
  for (; i < n; ++i) tail += static_cast<double>(x[i]);
  return ((acc[0] + acc[2]) + (acc[1] + acc[3])) + tail;
#else
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  for (; i + 4 <= n; i += 4) {
    l0 += static_cast<double>(x[i]);
    l1 += static_cast<double>(x[i + 1]);
    l2 += static_cast<double>(x[i + 2]);
    l3 += static_cast<double>(x[i + 3]);
  }
  double tail = 0.0;
  for (; i < n; ++i) tail += static_cast<double>(x[i]);
  return ((l0 + l2) + (l1 + l3)) + tail;
#endif
}

/// Sum of squares of n floats in double — the windowed-energy fold behind
/// the scorer's log-RMS frame aggregation (same lane-order contract).
[[nodiscard]] inline double sum_squares_f32(const float* x, std::size_t n) {
  std::size_t i = 0;
#if DYNRIVER_SIMD_VECTOR_EXT
  detail::V4d acc = {0.0, 0.0, 0.0, 0.0};
  for (; i + 4 <= n; i += 4) {
    const detail::V4d v =
        __builtin_convertvector(detail::load4f(x + i), detail::V4d);
    acc += v * v;
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    tail += static_cast<double>(x[i]) * static_cast<double>(x[i]);
  }
  return ((acc[0] + acc[2]) + (acc[1] + acc[3])) + tail;
#else
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  for (; i + 4 <= n; i += 4) {
    l0 += static_cast<double>(x[i]) * static_cast<double>(x[i]);
    l1 += static_cast<double>(x[i + 1]) * static_cast<double>(x[i + 1]);
    l2 += static_cast<double>(x[i + 2]) * static_cast<double>(x[i + 2]);
    l3 += static_cast<double>(x[i + 3]) * static_cast<double>(x[i + 3]);
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    tail += static_cast<double>(x[i]) * static_cast<double>(x[i]);
  }
  return ((l0 + l2) + (l1 + l3)) + tail;
#endif
}

/// Fused mean/variance pass: one sweep accumulates sum and sum of squares
/// (each under the lane-order contract), then mean = S/n and population
/// variance = max(0, Q/n - mean^2). Audio-style data (bounded, near zero
/// mean) loses nothing to the E[x^2] - mu^2 cancellation in double; the
/// clamp absorbs the tiny negative residue a constant series can produce.
inline void mean_var_f32(const float* x, std::size_t n, double* mean_out,
                         double* var_out) {
  if (n == 0) {
    *mean_out = 0.0;
    *var_out = 0.0;
    return;
  }
  std::size_t i = 0;
  double s;
  double q;
#if DYNRIVER_SIMD_VECTOR_EXT
  detail::V4d acc_s = {0.0, 0.0, 0.0, 0.0};
  detail::V4d acc_q = {0.0, 0.0, 0.0, 0.0};
  for (; i + 4 <= n; i += 4) {
    const detail::V4d v =
        __builtin_convertvector(detail::load4f(x + i), detail::V4d);
    acc_s += v;
    acc_q += v * v;
  }
  double tail_s = 0.0;
  double tail_q = 0.0;
  for (; i < n; ++i) {
    const double v = static_cast<double>(x[i]);
    tail_s += v;
    tail_q += v * v;
  }
  s = ((acc_s[0] + acc_s[2]) + (acc_s[1] + acc_s[3])) + tail_s;
  q = ((acc_q[0] + acc_q[2]) + (acc_q[1] + acc_q[3])) + tail_q;
#else
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  double q0 = 0.0, q1 = 0.0, q2 = 0.0, q3 = 0.0;
  for (; i + 4 <= n; i += 4) {
    const double v0 = static_cast<double>(x[i]);
    const double v1 = static_cast<double>(x[i + 1]);
    const double v2 = static_cast<double>(x[i + 2]);
    const double v3 = static_cast<double>(x[i + 3]);
    s0 += v0;
    s1 += v1;
    s2 += v2;
    s3 += v3;
    q0 += v0 * v0;
    q1 += v1 * v1;
    q2 += v2 * v2;
    q3 += v3 * v3;
  }
  double tail_s = 0.0;
  double tail_q = 0.0;
  for (; i < n; ++i) {
    const double v = static_cast<double>(x[i]);
    tail_s += v;
    tail_q += v * v;
  }
  s = ((s0 + s2) + (s1 + s3)) + tail_s;
  q = ((q0 + q2) + (q1 + q3)) + tail_q;
#endif
  const double inv_n = 1.0 / static_cast<double>(n);
  const double mean = s * inv_n;
  const double var = q * inv_n - mean * mean;
  *mean_out = mean;
  *var_out = var > 0.0 ? var : 0.0;
}

/// dst[i] = (x[i] - mu) * inv_sigma in float — the z-normalize apply step.
/// `dst` may alias `x` (the in-place normalization). Pure elementwise float
/// arithmetic: vector and scalar bodies are bit-identical.
inline void normalize_f32(float* dst, const float* x, std::size_t n, float mu,
                          float inv_sigma) {
  std::size_t i = 0;
#if DYNRIVER_SIMD_VECTOR_EXT
  const detail::V8f muv = {mu, mu, mu, mu, mu, mu, mu, mu};
  const detail::V8f sv = {inv_sigma, inv_sigma, inv_sigma, inv_sigma,
                          inv_sigma, inv_sigma, inv_sigma, inv_sigma};
  for (; i + 8 <= n; i += 8) {
    detail::store8f(dst + i, (detail::load8f(x + i) - muv) * sv);
  }
#endif
  for (; i < n; ++i) dst[i] = (x[i] - mu) * inv_sigma;
}

/// out[s] = mean of x[s*seg_len .. (s+1)*seg_len) in float — the PAA
/// segment-mean fold over a whole record (exact-divisor geometry). Each
/// segment reduces under the lane-order contract of sum_f32.
inline void segment_means_f32(const float* x, std::size_t segments,
                              std::size_t seg_len, float* out) {
  const double inv_len = 1.0 / static_cast<double>(seg_len);
  for (std::size_t s = 0; s < segments; ++s) {
    out[s] = static_cast<float>(sum_f32(x + s * seg_len, seg_len) * inv_len);
  }
}

/// SAX discretization of n floats against `n_breaks` sorted breakpoints:
/// out[i] = number of breakpoints <= x[i] — branchless, exactly the index
/// the textbook "scan until x < breakpoint" search returns for sorted
/// breakpoints. The vector body accumulates the 0/-1 lanes of four
/// comparisons per breakpoint; counts are exact integers, so vector, scalar,
/// and scan agree bit-for-bit. (NaN input maps to symbol 0 on every path.)
inline void discretize_f32(const float* x, std::size_t n, const double* breaks,
                           std::size_t n_breaks, std::uint8_t* out) {
  std::size_t i = 0;
#if DYNRIVER_SIMD_VECTOR_EXT
  for (; i + 4 <= n; i += 4) {
    const detail::V4d v =
        __builtin_convertvector(detail::load4f(x + i), detail::V4d);
    detail::M4 counts = {0, 0, 0, 0};
    for (std::size_t b = 0; b < n_breaks; ++b) {
      const double bp = breaks[b];
      const detail::V4d bv = {bp, bp, bp, bp};
      counts -= (v >= bv);  // each lane: 0 or -1
    }
    out[i] = static_cast<std::uint8_t>(counts[0]);
    out[i + 1] = static_cast<std::uint8_t>(counts[1]);
    out[i + 2] = static_cast<std::uint8_t>(counts[2]);
    out[i + 3] = static_cast<std::uint8_t>(counts[3]);
  }
#endif
  for (; i < n; ++i) {
    const double v = static_cast<double>(x[i]);
    unsigned sym = 0;
    for (std::size_t b = 0; b < n_breaks; ++b) {
      sym += v >= breaks[b] ? 1U : 0U;
    }
    out[i] = static_cast<std::uint8_t>(sym);
  }
}

/// dst[i] = max(dst[i], x[i]) over n doubles — the kMax score-fusion fold
/// across channels. max is evaluated elementwise as (b > a ? b : a),
/// identical to std::max for non-NaN scores, so vector and scalar bodies
/// agree bitwise.
inline void max_inplace_f64(double* dst, const double* x, std::size_t n) {
  std::size_t i = 0;
#if DYNRIVER_SIMD_VECTOR_EXT
  for (; i + 4 <= n; i += 4) {
    const detail::V4d a = detail::load4d(dst + i);
    const detail::V4d b = detail::load4d(x + i);
    detail::store4d(dst + i, b > a ? b : a);
  }
#endif
  for (; i < n; ++i) dst[i] = x[i] > dst[i] ? x[i] : dst[i];
}

/// dst[i] += x[i] over n doubles (the kMean fusion accumulate). Pure
/// elementwise adds: vector and scalar bodies are bit-identical.
inline void add_inplace_f64(double* dst, const double* x, std::size_t n) {
  std::size_t i = 0;
#if DYNRIVER_SIMD_VECTOR_EXT
  for (; i + 4 <= n; i += 4) {
    detail::store4d(dst + i, detail::load4d(dst + i) + detail::load4d(x + i));
  }
#endif
  for (; i < n; ++i) dst[i] += x[i];
}

/// dst[i] *= s over n doubles (the kMean 1/channels normalization). Pure
/// elementwise multiplies: vector and scalar bodies are bit-identical.
inline void scale_f64(double* dst, std::size_t n, double s) {
  std::size_t i = 0;
#if DYNRIVER_SIMD_VECTOR_EXT
  const detail::V4d sv = {s, s, s, s};
  for (; i + 4 <= n; i += 4) {
    detail::store4d(dst + i, detail::load4d(dst + i) * sv);
  }
#endif
  for (; i < n; ++i) dst[i] *= s;
}

}  // namespace dynriver::dsp::simd
