// Portable SIMD kernel layer for the spectral hot path.
//
// Every per-element loop the FFT and windowing code runs millions of times at
// archive scale lives here as a small kernel: radix-2/radix-4 butterflies,
// pointwise complex multiplies (the Bluestein chirp/convolution steps),
// window application, float<->double widening, and magnitude extraction.
//
// The vector path uses GCC/Clang generic vector extensions — no intrinsics,
// no runtime dispatch — so the same source compiles to SSE2 on a portable
// x86-64 baseline, AVX2 under -march=x86-64-v3, and NEON on aarch64; any
// other compiler gets the scalar fallback below each #if. Call sites are
// backend-agnostic: they call the kernel, the preprocessor picks the body.
//
// Numerical contract: the vector bodies perform the same IEEE operations per
// element as the scalar bodies (complex multiplies expand to the identical
// mul/add sequence, lanes never mix), so the two backends agree to the last
// ulp in practice; tests hold them to 1e-9 relative tolerance.
//
// All complex kernels operate on interleaved (re, im) double arrays with
// sizes counted in complex elements — reinterpret_cast from
// std::complex<double>* is sanctioned by [complex.numbers.general]. Kernels
// tolerate any element-aligned pointer (loads/stores dereference a
// reduced-alignment may_alias vector type, compiling to unaligned vector
// moves) and arbitrary sizes including odd tails.
#pragma once

#include <cmath>
#include <cstddef>

#if (defined(__GNUC__) || defined(__clang__)) && !defined(DYNRIVER_NO_SIMD)
#define DYNRIVER_SIMD_VECTOR_EXT 1
#else
#define DYNRIVER_SIMD_VECTOR_EXT 0
#endif

namespace dynriver::dsp::simd {

/// Which kernel backend this build uses (diagnostics / bench output).
[[nodiscard]] constexpr const char* backend() {
#if DYNRIVER_SIMD_VECTOR_EXT
  return "vector-ext";
#else
  return "scalar";
#endif
}

#if DYNRIVER_SIMD_VECTOR_EXT
namespace detail {

// 4 doubles = 2 interleaved complex values; 8 floats = one window strip.
// The reduced `aligned` makes any element-aligned address loadable; 32-byte
// vectors split into two SSE ops on the portable baseline and map 1:1 onto
// AVX2 registers under -march=x86-64-v3.
typedef double V4d __attribute__((vector_size(32), aligned(8), may_alias));
typedef float V8f __attribute__((vector_size(32), aligned(4), may_alias));
typedef float V4f __attribute__((vector_size(16), aligned(4), may_alias));
typedef long long M4 __attribute__((vector_size(32), may_alias));

// Loads/stores dereference through the reduced-alignment may_alias vector
// type: legal at any element-aligned address, and the compiler emits plain
// unaligned vector moves. (memcpy into a local vector looks equivalent but
// GCC 12 materializes the local on the stack under -mavx2 — every load
// becomes a store-forwarding stall and the kernels run ~10x slower.)
inline V4d load4d(const double* p) {
  return *reinterpret_cast<const V4d*>(p);
}
inline void store4d(double* p, V4d v) { *reinterpret_cast<V4d*>(p) = v; }
inline V8f load8f(const float* p) { return *reinterpret_cast<const V8f*>(p); }
inline void store8f(float* p, V8f v) { *reinterpret_cast<V8f*>(p) = v; }
inline V4f load4f(const float* p) { return *reinterpret_cast<const V4f*>(p); }

template <int A, int B, int C, int D>
[[nodiscard]] inline V4d shuffle(V4d v) {
#if defined(__clang__)
  return __builtin_shufflevector(v, v, A, B, C, D);
#else
  return __builtin_shuffle(v, M4{A, B, C, D});
#endif
}

/// Lane-wise complex multiply of two packed pairs: (a0*b0, a1*b1). Expands
/// to the same (ar*br - ai*bi, ar*bi + ai*br) sequence the scalar path uses.
[[nodiscard]] inline V4d cmul(V4d a, V4d b) {
  const V4d ar = shuffle<0, 0, 2, 2>(a);
  const V4d ai = shuffle<1, 1, 3, 3>(a);
  const V4d bs = shuffle<1, 0, 3, 2>(b);
  const V4d sign = {-1.0, 1.0, -1.0, 1.0};
  return ar * b + sign * (ai * bs);
}

}  // namespace detail
#endif  // DYNRIVER_SIMD_VECTOR_EXT

/// dst[i] = x[i] * w[i] for n floats (dst may alias x): the window-apply
/// kernel, also used fused with the copy into batch record matrices.
inline void multiply_f32(float* dst, const float* x, const float* w,
                         std::size_t n) {
  std::size_t i = 0;
#if DYNRIVER_SIMD_VECTOR_EXT
  for (; i + 8 <= n; i += 8) {
    detail::store8f(dst + i, detail::load8f(x + i) * detail::load8f(w + i));
  }
#endif
  for (; i < n; ++i) dst[i] = x[i] * w[i];
}

/// out[i] = double(x[i]) for n elements. Widening a real record into the
/// FFT's interleaved complex layout (re = even, im = odd index) is exactly
/// this elementwise convert.
inline void widen_f32(const float* x, double* out, std::size_t n) {
  std::size_t i = 0;
#if DYNRIVER_SIMD_VECTOR_EXT
  for (; i + 4 <= n; i += 4) {
    detail::store4d(out + i,
                    __builtin_convertvector(detail::load4f(x + i), detail::V4d));
  }
#endif
  for (; i < n; ++i) out[i] = static_cast<double>(x[i]);
}

/// out[k] = a[k] * b[k] over n interleaved complex values. `out` may alias
/// `a` (the in-place convolution step) but not partially overlap.
inline void complex_multiply(double* out, const double* a, const double* b,
                             std::size_t n) {
  std::size_t k = 0;
#if DYNRIVER_SIMD_VECTOR_EXT
  for (; k + 2 <= n; k += 2) {
    detail::store4d(out + 2 * k, detail::cmul(detail::load4d(a + 2 * k),
                                              detail::load4d(b + 2 * k)));
  }
#endif
  for (; k < n; ++k) {
    const double ar = a[2 * k];
    const double ai = a[2 * k + 1];
    const double br = b[2 * k];
    const double bi = b[2 * k + 1];
    out[2 * k] = ar * br - ai * bi;
    out[2 * k + 1] = ar * bi + ai * br;
  }
}

/// out[k] = x[k] * b[k] with real float x — the Bluestein chirp premultiply
/// specialized for real input (two multiplies per element instead of six
/// flops, no widening pass).
inline void complex_multiply_real(double* out, const float* x, const double* b,
                                  std::size_t n) {
  std::size_t k = 0;
#if DYNRIVER_SIMD_VECTOR_EXT
  for (; k + 2 <= n; k += 2) {
    const detail::V4d xv = {
        static_cast<double>(x[k]), static_cast<double>(x[k]),
        static_cast<double>(x[k + 1]), static_cast<double>(x[k + 1])};
    detail::store4d(out + 2 * k, xv * detail::load4d(b + 2 * k));
  }
#endif
  for (; k < n; ++k) {
    const double xv = static_cast<double>(x[k]);
    out[2 * k] = xv * b[2 * k];
    out[2 * k + 1] = xv * b[2 * k + 1];
  }
}

/// In-place conjugation of n interleaved complex values.
inline void conjugate(double* x, std::size_t n) {
  std::size_t k = 0;
#if DYNRIVER_SIMD_VECTOR_EXT
  const detail::V4d sign = {1.0, -1.0, 1.0, -1.0};
  for (; k + 2 <= n; k += 2) {
    detail::store4d(x + 2 * k, detail::load4d(x + 2 * k) * sign);
  }
#endif
  for (; k < n; ++k) x[2 * k + 1] = -x[2 * k + 1];
}

/// out[k] = conj(a[k]) * scale * b[k] — the Bluestein postmultiply (inverse
/// conjugation, 1/m normalization, and chirp de-rotation in one pass).
inline void conj_multiply_scale(double* out, const double* a, const double* b,
                                double scale, std::size_t n) {
  std::size_t k = 0;
#if DYNRIVER_SIMD_VECTOR_EXT
  const detail::V4d sv = {scale, -scale, scale, -scale};
  for (; k + 2 <= n; k += 2) {
    detail::store4d(out + 2 * k, detail::cmul(detail::load4d(a + 2 * k) * sv,
                                              detail::load4d(b + 2 * k)));
  }
#endif
  for (; k < n; ++k) {
    const double tr = a[2 * k] * scale;
    const double ti = a[2 * k + 1] * -scale;
    const double br = b[2 * k];
    const double bi = b[2 * k + 1];
    out[2 * k] = tr * br - ti * bi;
    out[2 * k + 1] = tr * bi + ti * br;
  }
}

/// out[k] = float(sqrt(re^2 + im^2)) of n interleaved complex values. The
/// squared sums vectorize; the square roots stay scalar (no portable
/// elementwise sqrt in the vector extension) but dominate either way.
inline void magnitudes_f32(const double* spec, float* out, std::size_t n) {
  std::size_t k = 0;
#if DYNRIVER_SIMD_VECTOR_EXT
  for (; k + 2 <= n; k += 2) {
    const detail::V4d v = detail::load4d(spec + 2 * k);
    const detail::V4d sq = v * v;
    const detail::V4d sum = sq + detail::shuffle<1, 0, 3, 2>(sq);
    out[k] = static_cast<float>(std::sqrt(sum[0]));
    out[k + 1] = static_cast<float>(std::sqrt(sum[2]));
  }
#endif
  for (; k < n; ++k) {
    const double re = spec[2 * k];
    const double im = spec[2 * k + 1];
    out[k] = static_cast<float>(std::sqrt(re * re + im * im));
  }
}

namespace detail {
/// One scalar radix-2 butterfly between complex slots a and b with twiddle
/// (wr, wi) — shared by the scalar stage body and the odd-half tail.
inline void butterfly1(double* a, double* b, double wr, double wi) {
  const double vr = b[0] * wr - b[1] * wi;
  const double vi = b[0] * wi + b[1] * wr;
  const double ur = a[0];
  const double ui = a[1];
  a[0] = ur + vr;
  a[1] = ui + vi;
  b[0] = ur - vr;
  b[1] = ui - vi;
}
}  // namespace detail

/// One radix-2 Cooley-Tukey stage with butterfly span 2*half over s
/// interleaved complex values (s a multiple of 2*half). `tw` holds the
/// stage's half twiddles, sequential — the stage-contiguous layout FftPlan
/// precomputes. The vector path runs two butterflies per iteration.
inline void radix2_stage(double* __restrict d, const double* __restrict tw,
                         std::size_t s, std::size_t half) {
  const std::size_t len = 2 * half;
#if DYNRIVER_SIMD_VECTOR_EXT
  if (half >= 2) {
    const std::size_t vhalf = half & ~std::size_t{1};
    for (std::size_t i = 0; i < s; i += len) {
      double* a = d + 2 * i;
      double* b = a + 2 * half;
      for (std::size_t k = 0; k < vhalf; k += 2) {
        const detail::V4d w = detail::load4d(tw + 2 * k);
        const detail::V4d u = detail::load4d(a + 2 * k);
        const detail::V4d v = detail::cmul(detail::load4d(b + 2 * k), w);
        detail::store4d(a + 2 * k, u + v);
        detail::store4d(b + 2 * k, u - v);
      }
      for (std::size_t k = vhalf; k < half; ++k) {
        detail::butterfly1(a + 2 * k, b + 2 * k, tw[2 * k], tw[2 * k + 1]);
      }
    }
    return;
  }
#endif
  for (std::size_t i = 0; i < s; i += len) {
    for (std::size_t k = 0; k < half; ++k) {
      detail::butterfly1(d + 2 * (i + k), d + 2 * (i + k + half), tw[2 * k],
                         tw[2 * k + 1]);
    }
  }
}

/// The first two radix-2 stages fused into one twiddle-free radix-4 pass
/// over s interleaved complex values (s a multiple of 4): per 4-point block
///   t0 = x0+x1   t1 = x0-x1   t2 = x2+x3   t3 = -i*(x2-x3)
///   y0 = t0+t2   y1 = t1+t3   y2 = t0-t2   y3 = t1-t3
/// One pass over the data instead of two, and the -i rotation is an exact
/// swap/negate instead of the table path's cos/sin approximation.
inline void radix4_first_pass(double* d, std::size_t s) {
#if DYNRIVER_SIMD_VECTOR_EXT
  const detail::V4d sgn = {1.0, 1.0, -1.0, -1.0};
  const detail::V4d rot = {1.0, 1.0, 1.0, -1.0};
  for (std::size_t i = 0; i < s; i += 4) {
    double* p = d + 2 * i;
    const detail::V4d v01 = detail::load4d(p);
    const detail::V4d v23 = detail::load4d(p + 4);
    const detail::V4d t01 = detail::shuffle<2, 3, 0, 1>(v01) + sgn * v01;
    const detail::V4d t23 = detail::shuffle<2, 3, 0, 1>(v23) + sgn * v23;
    const detail::V4d t2r3 = detail::shuffle<0, 1, 3, 2>(t23) * rot;
    detail::store4d(p, t01 + t2r3);
    detail::store4d(p + 4, t01 - t2r3);
  }
#else
  for (std::size_t i = 0; i < s; i += 4) {
    double* p = d + 2 * i;
    const double t0r = p[0] + p[2];
    const double t0i = p[1] + p[3];
    const double t1r = p[0] - p[2];
    const double t1i = p[1] - p[3];
    const double t2r = p[4] + p[6];
    const double t2i = p[5] + p[7];
    const double dr = p[4] - p[6];
    const double di = p[5] - p[7];
    p[0] = t0r + t2r;
    p[1] = t0i + t2i;
    p[2] = t1r + di;
    p[3] = t1i - dr;
    p[4] = t0r - t2r;
    p[5] = t0i - t2i;
    p[6] = t1r - di;
    p[7] = t1i + dr;
  }
#endif
}

}  // namespace dynriver::dsp::simd
