// Window functions.
//
// The paper's `welchwindow` operator applies a Welch window to each resliced
// record to minimize edge effects between records. Hann/Hamming/rectangular
// are included for the ablation benches.
#pragma once

#include <span>
#include <string_view>
#include <vector>

namespace dynriver::dsp {

enum class WindowKind : std::uint8_t {
  kRectangular,
  kWelch,
  kHann,
  kHamming,
};

[[nodiscard]] const char* to_string(WindowKind kind);

/// Parse a window name ("welch", "hann", ...). Throws std::invalid_argument.
[[nodiscard]] WindowKind window_from_string(std::string_view name);

/// Window coefficients of length n.
[[nodiscard]] std::vector<float> make_window(WindowKind kind, std::size_t n);

/// In-place application of a precomputed window (sizes must match).
void apply_window(std::span<float> data, std::span<const float> window);

/// Convenience: apply a freshly built window of the right size.
void apply_window(std::span<float> data, WindowKind kind);

/// Sum of squared coefficients (for power normalization in spectrograms).
[[nodiscard]] double window_power(std::span<const float> window);

}  // namespace dynriver::dsp
