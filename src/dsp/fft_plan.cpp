#include "dsp/fft_plan.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/contracts.hpp"
#include "dsp/simd.hpp"

namespace dynriver::dsp {

namespace {
constexpr double kPi = std::numbers::pi;

/// Bit-reversal permutation table for a power-of-2 size `s`.
std::vector<std::size_t> make_bitrev(std::size_t s) {
  std::vector<std::size_t> table(s);
  std::size_t j = 0;
  for (std::size_t i = 1; i < s; ++i) {
    std::size_t bit = s >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    table[i] = j;
  }
  return table;
}

/// Forward twiddles laid out stage-contiguously: the stage with butterfly
/// span `len` contributes len/2 sequential entries exp(-2*pi*i*k/len),
/// k < len/2 (s-1 entries total). Sequential layout keeps the butterfly
/// inner loop streaming through the table; a single strided s/2 table
/// measured ~2x slower.
std::vector<Cplx> make_twiddles(std::size_t s) {
  std::vector<Cplx> table;
  table.reserve(s > 0 ? s - 1 : 0);
  for (std::size_t len = 2; len <= s; len <<= 1) {
    for (std::size_t k = 0; k < len / 2; ++k) {
      const double angle =
          -2.0 * kPi * static_cast<double>(k) / static_cast<double>(len);
      table.emplace_back(std::cos(angle), std::sin(angle));
    }
  }
  return table;
}

/// Interleaved (re, im) view of a complex array for the SIMD kernels —
/// sanctioned by the std::complex array-oriented access guarantee.
double* as_doubles(Cplx* p) { return reinterpret_cast<double*>(p); }
const double* as_doubles(const Cplx* p) {
  return reinterpret_cast<const double*>(p);
}
}  // namespace

FftPlan::FftPlan(std::size_t n) : n_(n), pow2_(is_power_of_two(n)) {
  DR_EXPECTS(n >= 1);

  const std::size_t sub = pow2_ ? n_ : next_power_of_two(2 * n_ + 1);
  bitrev_ = make_bitrev(sub);
  twiddle_ = make_twiddles(sub);

  if (!pow2_) {
    m_ = sub;
    // chirp[k] = exp(-i*pi*k^2/n); k^2 mod 2n keeps the argument small.
    chirp_.resize(n_);
    for (std::size_t k = 0; k < n_; ++k) {
      const auto k2 = static_cast<double>(
          (static_cast<unsigned long long>(k) * k) % (2 * n_));
      const double angle = kPi * k2 / static_cast<double>(n_);
      chirp_[k] = Cplx(std::cos(angle), -std::sin(angle));
    }

    // The chirp filter b and its spectrum, computed once per plan: the
    // legacy path redid this FFT on every call.
    chirp_fft_.assign(m_, Cplx(0, 0));
    chirp_fft_[0] = std::conj(chirp_[0]);
    for (std::size_t k = 1; k < n_; ++k) {
      chirp_fft_[k] = std::conj(chirp_[k]);
      chirp_fft_[m_ - k] = std::conj(chirp_[k]);
    }
    radix2_forward(chirp_fft_);

    conv_.resize(m_);
  }
}

void FftPlan::radix2_forward(std::span<Cplx> data) const {
  const std::size_t s = data.size();
  DR_ASSERT(s == bitrev_.size());
  if (s <= 1) return;

  Cplx* d = data.data();
  for (std::size_t i = 1; i < s; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(d[i], d[j]);
  }

  // Butterflies run on the SIMD kernels: a fused twiddle-free radix-4 first
  // pass (stages len=2 and len=4 in one sweep over the data), then
  // vectorized radix-2 stages streaming through the stage-contiguous
  // twiddle table.
  double* dd = as_doubles(d);
  const double* tw = as_doubles(twiddle_.data());
  std::size_t len = 2;
  std::size_t stage = 0;  // complex twiddle entries consumed so far
  if (s % 4 == 0) {
    simd::radix4_first_pass(dd, s);
    len = 8;
    stage = 3;  // the skipped len=2 (1 entry) and len=4 (2 entries) stages
  }
  for (; len <= s; len <<= 1) {
    const std::size_t half = len / 2;
    simd::radix2_stage(dd, tw + 2 * stage, s, half);
    stage += half;
  }
}

void FftPlan::bluestein_forward(std::span<Cplx> data) {
  // a[k] = x[k] * chirp[k], zero-padded to the convolution length.
  simd::complex_multiply(as_doubles(conv_.data()), as_doubles(data.data()),
                         as_doubles(chirp_.data()), n_);
  std::fill(conv_.begin() + static_cast<std::ptrdiff_t>(n_), conv_.end(),
            Cplx(0, 0));

  radix2_forward(conv_);
  simd::complex_multiply(as_doubles(conv_.data()), as_doubles(conv_.data()),
                         as_doubles(chirp_fft_.data()), m_);

  // Unscaled inverse via conjugation: ifft(x) = conj(fft(conj(x))).
  simd::conjugate(as_doubles(conv_.data()), m_);
  radix2_forward(conv_);

  const double scale = 1.0 / static_cast<double>(m_);
  simd::conj_multiply_scale(as_doubles(data.data()), as_doubles(conv_.data()),
                            as_doubles(chirp_.data()), scale, n_);
}

void FftPlan::bluestein_forward_real(const float* in, Cplx* out) {
  // Chirp premultiply specialized for real input: no widening pass, two
  // multiplies per element.
  simd::complex_multiply_real(as_doubles(conv_.data()), in,
                              as_doubles(chirp_.data()), n_);
  std::fill(conv_.begin() + static_cast<std::ptrdiff_t>(n_), conv_.end(),
            Cplx(0, 0));

  radix2_forward(conv_);
  simd::complex_multiply(as_doubles(conv_.data()), as_doubles(conv_.data()),
                         as_doubles(chirp_fft_.data()), m_);
  simd::conjugate(as_doubles(conv_.data()), m_);
  radix2_forward(conv_);

  // Real input => Hermitian output: postmultiply only the n/2+1 unique bins
  // and mirror the rest by conjugate symmetry.
  const double scale = 1.0 / static_cast<double>(m_);
  const std::size_t h = n_ / 2;  // n_ is odd here
  simd::conj_multiply_scale(as_doubles(out), as_doubles(conv_.data()),
                            as_doubles(chirp_.data()), scale, h + 1);
  for (std::size_t k = 1; k <= h; ++k) out[n_ - k] = std::conj(out[k]);
}

void FftPlan::forward(std::span<Cplx> data) {
  DR_EXPECTS(data.size() == n_);
  if (pow2_) {
    radix2_forward(data);
  } else {
    bluestein_forward(data);
  }
}

void FftPlan::inverse(std::span<Cplx> data) {
  DR_EXPECTS(data.size() == n_);
  simd::conjugate(as_doubles(data.data()), n_);
  forward(data);
  const double scale = 1.0 / static_cast<double>(n_);
  for (auto& v : data) v = std::conj(v) * scale;
}

void FftPlan::forward(std::span<const Cplx> in, std::span<Cplx> out) {
  DR_EXPECTS(in.size() == n_);
  DR_EXPECTS(out.size() == n_);
  std::copy(in.begin(), in.end(), out.begin());
  forward(out);
}

void FftPlan::ensure_real_state() {
  if (n_ < 2 || n_ % 2 != 0 || half_plan_) return;
  const std::size_t h = n_ / 2;
  half_plan_ = std::make_unique<FftPlan>(h);
  half_twiddle_.resize(h);
  for (std::size_t k = 0; k < h; ++k) {
    const double angle =
        -2.0 * kPi * static_cast<double>(k) / static_cast<double>(n_);
    half_twiddle_[k] = Cplx(std::cos(angle), std::sin(angle));
  }
  packed_.resize(h);
}

void FftPlan::forward_real_one(const float* in, Cplx* out) {
  if (n_ == 1) {
    out[0] = Cplx(static_cast<double>(in[0]), 0.0);
    return;
  }
  if (n_ % 2 != 0) {
    bluestein_forward_real(in, out);
    return;
  }

  // Packed half-size transform: z[k] = x[2k] + i*x[2k+1] is exactly the
  // widened input reinterpreted as n/2 complex values. One h-point complex
  // FFT replaces the n-point transform the old path ran.
  const std::size_t h = n_ / 2;
  simd::widen_f32(in, as_doubles(packed_.data()), n_);
  half_plan_->forward(std::span<Cplx>(packed_));

  // Hermitian unpack: split Z into the spectra of the even/odd subsequences
  // (E[k] = (Z[k]+conj(Z[h-k]))/2, O[k] = (Z[k]-conj(Z[h-k]))/(2i)) and
  // recombine X[k] = E[k] + W^k O[k], X[n-k] = conj(X[k]).
  const Cplx z0 = packed_[0];
  out[0] = Cplx(z0.real() + z0.imag(), 0.0);
  out[h] = Cplx(z0.real() - z0.imag(), 0.0);
  for (std::size_t k = 1; k < h; ++k) {
    const Cplx zk = packed_[k];
    const Cplx zc = std::conj(packed_[h - k]);
    const Cplx even = 0.5 * (zk + zc);
    const Cplx odd = (zk - zc) * Cplx(0.0, -0.5);
    const Cplx x = even + half_twiddle_[k] * odd;
    out[k] = x;
    out[n_ - k] = std::conj(x);
  }
}

void FftPlan::magnitudes_one(const float* in, float* out) {
  real_scratch_.resize(n_);
  forward_real_one(in, real_scratch_.data());
  // Hermitian symmetry: sqrt only the unique bins, copy the mirror half.
  const std::size_t unique = n_ / 2 + 1;
  simd::magnitudes_f32(as_doubles(real_scratch_.data()), out,
                       std::min(unique, n_));
  for (std::size_t k = unique; k < n_; ++k) out[k] = out[n_ - k];
}

void FftPlan::forward_real(std::span<const float> in, std::span<Cplx> out) {
  DR_EXPECTS(in.size() == n_);
  DR_EXPECTS(out.size() == n_);
  ensure_real_state();
  forward_real_one(in.data(), out.data());
}

void FftPlan::magnitudes(std::span<const float> in, std::span<float> out) {
  DR_EXPECTS(in.size() == n_);
  DR_EXPECTS(out.size() == n_);
  ensure_real_state();
  magnitudes_one(in.data(), out.data());
}

void FftPlan::forward_real_batch(std::span<const float> in, std::size_t count,
                                 std::span<Cplx> out) {
  DR_EXPECTS(in.size() == count * n_);
  DR_EXPECTS(out.size() == count * n_);
  ensure_real_state();
  for (std::size_t r = 0; r < count; ++r) {
    forward_real_one(in.data() + r * n_, out.data() + r * n_);
  }
}

void FftPlan::magnitudes_batch(std::span<const float> in, std::size_t count,
                               std::span<float> out) {
  DR_EXPECTS(in.size() == count * n_);
  DR_EXPECTS(out.size() == count * n_);
  ensure_real_state();
  for (std::size_t r = 0; r < count; ++r) {
    magnitudes_one(in.data() + r * n_, out.data() + r * n_);
  }
}

FftPlan& PlanCache::get(std::size_t n) {
  DR_EXPECTS(n >= 1);
  auto it = plans_.find(n);
  if (it == plans_.end()) {
    it = plans_.emplace(n, std::make_unique<FftPlan>(n)).first;
  }
  return *it->second;
}

PlanCache& local_plan_cache() {
  thread_local PlanCache cache;
  return cache;
}

}  // namespace dynriver::dsp
