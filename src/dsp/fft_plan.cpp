#include "dsp/fft_plan.hpp"

#include <cmath>
#include <numbers>

#include "common/contracts.hpp"

namespace dynriver::dsp {

namespace {
constexpr double kPi = std::numbers::pi;

/// Bit-reversal permutation table for a power-of-2 size `s`.
std::vector<std::size_t> make_bitrev(std::size_t s) {
  std::vector<std::size_t> table(s);
  std::size_t j = 0;
  for (std::size_t i = 1; i < s; ++i) {
    std::size_t bit = s >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    table[i] = j;
  }
  return table;
}

/// Forward twiddles laid out stage-contiguously: the stage with butterfly
/// span `len` contributes len/2 sequential entries exp(-2*pi*i*k/len),
/// k < len/2 (s-1 entries total). Sequential layout keeps the butterfly
/// inner loop streaming through the table; a single strided s/2 table
/// measured ~2x slower.
std::vector<Cplx> make_twiddles(std::size_t s) {
  std::vector<Cplx> table;
  table.reserve(s > 0 ? s - 1 : 0);
  for (std::size_t len = 2; len <= s; len <<= 1) {
    for (std::size_t k = 0; k < len / 2; ++k) {
      const double angle =
          -2.0 * kPi * static_cast<double>(k) / static_cast<double>(len);
      table.emplace_back(std::cos(angle), std::sin(angle));
    }
  }
  return table;
}
}  // namespace

FftPlan::FftPlan(std::size_t n) : n_(n), pow2_(is_power_of_two(n)) {
  DR_EXPECTS(n >= 1);

  const std::size_t sub = pow2_ ? n_ : next_power_of_two(2 * n_ + 1);
  bitrev_ = make_bitrev(sub);
  twiddle_ = make_twiddles(sub);

  if (!pow2_) {
    m_ = sub;
    // chirp[k] = exp(-i*pi*k^2/n); k^2 mod 2n keeps the argument small.
    chirp_.resize(n_);
    for (std::size_t k = 0; k < n_; ++k) {
      const auto k2 = static_cast<double>(
          (static_cast<unsigned long long>(k) * k) % (2 * n_));
      const double angle = kPi * k2 / static_cast<double>(n_);
      chirp_[k] = Cplx(std::cos(angle), -std::sin(angle));
    }

    // The chirp filter b and its spectrum, computed once per plan: the
    // legacy path redid this FFT on every call.
    chirp_fft_.assign(m_, Cplx(0, 0));
    chirp_fft_[0] = std::conj(chirp_[0]);
    for (std::size_t k = 1; k < n_; ++k) {
      chirp_fft_[k] = std::conj(chirp_[k]);
      chirp_fft_[m_ - k] = std::conj(chirp_[k]);
    }
    radix2_forward(chirp_fft_);

    conv_.resize(m_);
  }
}

void FftPlan::radix2_forward(std::span<Cplx> data) const {
  const std::size_t s = data.size();
  DR_ASSERT(s == bitrev_.size());
  if (s <= 1) return;

  // __restrict matters: without it the compiler must assume the twiddle
  // loads alias the butterfly stores and reloads them every iteration,
  // which measured ~3x slower than the legacy register-recurrence twiddles.
  Cplx* __restrict d = data.data();
  for (std::size_t i = 1; i < s; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(d[i], d[j]);
  }

  const Cplx* __restrict stage = twiddle_.data();
  for (std::size_t len = 2; len <= s; len <<= 1) {
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < s; i += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const Cplx w = stage[k];
        const Cplx u = d[i + k];
        const Cplx v = d[i + k + half] * w;
        d[i + k] = u + v;
        d[i + k + half] = u - v;
      }
    }
    stage += half;
  }
}

void FftPlan::bluestein_forward(std::span<Cplx> data) {
  // a[k] = x[k] * chirp[k], zero-padded to the convolution length.
  for (std::size_t k = 0; k < n_; ++k) conv_[k] = data[k] * chirp_[k];
  for (std::size_t k = n_; k < m_; ++k) conv_[k] = Cplx(0, 0);

  radix2_forward(conv_);
  for (std::size_t k = 0; k < m_; ++k) conv_[k] *= chirp_fft_[k];

  // Unscaled inverse via conjugation: ifft(x) = conj(fft(conj(x))).
  for (auto& v : conv_) v = std::conj(v);
  radix2_forward(conv_);

  const double scale = 1.0 / static_cast<double>(m_);
  for (std::size_t k = 0; k < n_; ++k) {
    data[k] = std::conj(conv_[k]) * scale * chirp_[k];
  }
}

void FftPlan::forward(std::span<Cplx> data) {
  DR_EXPECTS(data.size() == n_);
  if (pow2_) {
    radix2_forward(data);
  } else {
    bluestein_forward(data);
  }
}

void FftPlan::inverse(std::span<Cplx> data) {
  DR_EXPECTS(data.size() == n_);
  for (auto& v : data) v = std::conj(v);
  forward(data);
  const double scale = 1.0 / static_cast<double>(n_);
  for (auto& v : data) v = std::conj(v) * scale;
}

void FftPlan::forward(std::span<const Cplx> in, std::span<Cplx> out) {
  DR_EXPECTS(in.size() == n_);
  DR_EXPECTS(out.size() == n_);
  std::copy(in.begin(), in.end(), out.begin());
  forward(out);
}

void FftPlan::forward_real(std::span<const float> in, std::span<Cplx> out) {
  DR_EXPECTS(in.size() == n_);
  DR_EXPECTS(out.size() == n_);
  for (std::size_t i = 0; i < n_; ++i) {
    out[i] = Cplx(static_cast<double>(in[i]), 0.0);
  }
  forward(out);
}

void FftPlan::magnitudes(std::span<const float> in, std::span<float> out) {
  DR_EXPECTS(in.size() == n_);
  DR_EXPECTS(out.size() == n_);
  real_scratch_.resize(n_);
  forward_real(in, real_scratch_);
  for (std::size_t i = 0; i < n_; ++i) {
    out[i] = static_cast<float>(std::abs(real_scratch_[i]));
  }
}

FftPlan& PlanCache::get(std::size_t n) {
  DR_EXPECTS(n >= 1);
  auto it = plans_.find(n);
  if (it == plans_.end()) {
    it = plans_.emplace(n, std::make_unique<FftPlan>(n)).first;
  }
  return *it->second;
}

PlanCache& local_plan_cache() {
  thread_local PlanCache cache;
  return cache;
}

}  // namespace dynriver::dsp
