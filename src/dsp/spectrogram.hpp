// Short-time Fourier transform spectrograms (paper Fig. 2/3).
//
// A spectrogram depicts frequency on the vertical axis and time on the
// horizontal axis; shading indicates intensity at a particular frequency and
// time. Frames here are stored row-major: frame index (time) x bin (freq).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "dsp/window.hpp"

namespace dynriver::dsp {

struct SpectrogramParams {
  std::size_t frame_size = 900;   ///< samples per analysis frame
  std::size_t hop = 450;          ///< frame advance in samples
  WindowKind window = WindowKind::kWelch;
  double sample_rate = 21600.0;   ///< Hz
  bool log_magnitude = false;     ///< 20*log10(|X|+eps) when true
};

/// One STFT: frames x (frame_size/2 + 1) magnitude matrix plus axis info.
struct Spectrogram {
  std::vector<std::vector<float>> frames;  ///< [time][bin] magnitudes
  double sample_rate = 0.0;
  std::size_t frame_size = 0;
  std::size_t hop = 0;

  [[nodiscard]] std::size_t num_frames() const { return frames.size(); }
  [[nodiscard]] std::size_t num_bins() const {
    return frames.empty() ? 0 : frames.front().size();
  }
  /// Time (seconds) of the start of frame `i`.
  [[nodiscard]] double frame_time(std::size_t i) const;
  /// Center frequency (Hz) of bin `k`.
  [[nodiscard]] double bin_freq(std::size_t k) const;
};

/// Compute a magnitude spectrogram of `signal`.
[[nodiscard]] Spectrogram stft(std::span<const float> signal,
                               const SpectrogramParams& params);

/// Normalize an oscillogram for display: subtract mean, scale by max |x|
/// (paper Fig. 2 top). Returns all zeros for a constant signal.
[[nodiscard]] std::vector<float> normalize_oscillogram(std::span<const float> signal);

/// Render a spectrogram as coarse ASCII art (time columns x freq rows) for
/// the figure benches; `cols`/`rows` bound the output size.
[[nodiscard]] std::string ascii_spectrogram(const Spectrogram& spec,
                                            std::size_t cols, std::size_t rows);

/// Render a signal as an ASCII oscillogram strip.
[[nodiscard]] std::string ascii_oscillogram(std::span<const float> signal,
                                            std::size_t cols, std::size_t rows);

}  // namespace dynriver::dsp
