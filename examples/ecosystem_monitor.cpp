// Ecosystem monitoring survey: multiple simulated sensor stations stream
// their recordings CONCURRENTLY into one analysis host; a SessionScheduler
// multiplexes every station's extraction session (bounded ingest queues,
// deficit-round-robin fairness); a MESO model identifies the singers as
// each ensemble closes; the program prints a species activity report per
// station -- the paper's motivating application ("automated species surveys
// using acoustics") at its deployment shape: many stations, one host.
//
// Each station's clips are rendered lazily inside its sample source (one
// clip in memory at a time) and flow through the scheduler's reader thread
// -> bounded queue -> StreamSession; classification happens on the worker
// lane the moment an ensemble closes. All stations share one SpectralEngine
// (FFT plans + window tables built once per host).
//
//   ./ecosystem_monitor [stations] [clips_per_station]
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <vector>

#include "core/birdsong.hpp"
#include "core/session_scheduler.hpp"
#include "core/stream_session.hpp"
#include "eval/protocol.hpp"
#include "meso/classifier.hpp"
#include "river/sample_io.hpp"
#include "synth/station.hpp"

namespace core = dynriver::core;
namespace river = dynriver::river;
namespace synth = dynriver::synth;
namespace meso = dynriver::meso;

namespace {
/// Train a reference MESO model from labelled reference recordings.
meso::MesoClassifier train_reference_model(core::StreamSession& session,
                                           int rounds) {
  synth::StationParams sp;
  sp.distractor_probability = 0.0;
  synth::SensorStation reference(sp, 555);
  meso::MesoClassifier classifier;
  for (int round = 0; round < rounds; ++round) {
    for (std::size_t s = 0; s < synth::kNumSpecies; ++s) {
      const auto clip = reference.record_clip({static_cast<synth::SpeciesId>(s)});
      session.reset();
      river::BufferSource source(clip.clip.samples,
                                 session.params().sample_rate);
      river::CollectingEnsembleSink sink;
      core::run_stream(source, session, sink);
      for (const auto& ensemble : sink.ensembles) {
        for (const auto& pattern : session.featurize(ensemble)) {
          classifier.train(pattern, static_cast<meso::Label>(s));
        }
      }
    }
  }
  return classifier;
}

/// One station's survey state: a lazily-rendering clip feed (each clip with
/// its own singer mix) plus the per-station tallies its sink fills in.
/// Sinks run on the scheduler worker that owns the station, so the tallies
/// need no locking.
struct SurveyStation {
  synth::SensorStation station;
  std::vector<std::vector<synth::SpeciesId>> plan;  ///< singer mix per clip
  std::size_t next_clip = 0;
  std::vector<float> current;  ///< the one clip being streamed
  std::size_t pos = 0;
  std::map<int, int> species_activity;  ///< predicted species -> detections
  std::map<int, int> species_truth;     ///< planted species -> songs
  std::size_t detections = 0;
  std::size_t correct = 0;
  const core::StreamSession* session = nullptr;  ///< set after add_station

  /// The singer mixes (1-3 per clip, biased per station) and the ground
  /// truth are planned up front, so the reader thread that renders clips
  /// and the worker lane that classifies never write shared state.
  SurveyStation(int index, int clips)
      : station(synth::StationParams{},
                10000 + static_cast<std::uint64_t>(index)) {
    dynriver::Rng fauna(20000 + static_cast<std::uint64_t>(index));
    for (int c = 0; c < clips; ++c) {
      std::vector<synth::SpeciesId> clip_singers;
      const auto n_singers = fauna.uniform_int(1, 3);
      for (int s = 0; s < n_singers; ++s) {
        const auto id = static_cast<synth::SpeciesId>(
            static_cast<std::size_t>(index * 3 + fauna.uniform_int(0, 4)) %
            synth::kNumSpecies);
        clip_singers.push_back(id);
        ++species_truth[static_cast<int>(id)];
      }
      plan.push_back(std::move(clip_singers));
    }
  }

  /// SampleSource callback: stream the current clip; render the next
  /// planned one when it runs dry (one clip in memory at a time).
  std::size_t read(std::span<float> out) {
    std::size_t written = 0;
    while (written < out.size()) {
      if (pos == current.size()) {
        if (next_clip == plan.size()) break;
        current = station.record_clip(plan[next_clip++]).clip.samples;
        pos = 0;
      }
      const std::size_t n =
          std::min(out.size() - written, current.size() - pos);
      std::copy(current.begin() + static_cast<std::ptrdiff_t>(pos),
                current.begin() + static_cast<std::ptrdiff_t>(pos + n),
                out.begin() + static_cast<std::ptrdiff_t>(written));
      pos += n;
      written += n;
    }
    return written;
  }
};
}  // namespace

int main(int argc, char** argv) {
  const int num_stations = argc > 1 ? std::atoi(argv[1]) : 3;
  const int clips_per_station = argc > 2 ? std::atoi(argv[2]) : 4;
  const core::PipelineParams params;
  const auto engine = std::make_shared<const core::SpectralEngine>(params);
  core::StreamSession trainer(params, {}, engine);

  std::printf("Acoustic ecosystem monitor: %d stations x %d clips "
              "(multiplexed on one host)\n",
              num_stations, clips_per_station);
  std::printf("Training reference MESO model...\n");
  const auto classifier = train_reference_model(trainer, 3);
  std::printf("  %zu patterns, %zu spheres\n\n", classifier.pattern_count(),
              classifier.sphere_count());
  // Build the classifier's lazy sphere tree now, single-threaded: classify()
  // is then a read-only query, safe from every scheduler worker at once.
  (void)classifier.classify(std::vector<float>(
      params.features_per_pattern(), 0.0F));

  // Every station streams through one SessionScheduler; classification
  // happens in each station's sink the moment an ensemble closes.
  core::SessionScheduler scheduler;
  std::vector<std::unique_ptr<SurveyStation>> survey;
  for (int st = 0; st < num_stations; ++st) {
    survey.push_back(std::make_unique<SurveyStation>(st, clips_per_station));
    SurveyStation* state = survey.back().get();

    auto source = std::make_shared<river::FunctionSource>(
        [state](std::span<float> out) { return state->read(out); },
        params.sample_rate);
    auto sink = std::make_shared<river::CallbackEnsembleSink>(
        [state, &classifier](river::Ensemble ensemble) {
          // Group votes per ensemble; count a detection per ensemble.
          std::vector<int> votes;
          for (const auto& pattern : state->session->featurize(ensemble)) {
            votes.push_back(classifier.classify(pattern));
          }
          if (votes.empty()) return;
          const int predicted =
              dynriver::eval::majority_vote(votes, synth::kNumSpecies);
          ++state->species_activity[predicted];
          ++state->detections;
          // Score against ground truth by checking the species was planted.
          if (state->species_truth.count(predicted) > 0) ++state->correct;
        });

    core::StationConfig config;
    config.params = params;
    config.policy = core::BackpressurePolicy::kBlock;
    config.engine = engine;  // shared FFT plans + window tables
    const auto id = scheduler.add_station("station-" + std::to_string(st + 1),
                                          source, sink, config);
    state->session = &scheduler.session(id);
  }
  scheduler.run();

  std::size_t total_detections = 0;
  std::size_t correct_detections = 0;
  for (int st = 0; st < num_stations; ++st) {
    const auto& state = *survey[static_cast<std::size_t>(st)];
    std::printf("Station %d activity report:\n", st + 1);
    std::printf("  %-28s %-9s | planted songs\n", "species", "detections");
    for (const auto& [species, count] : state.species_activity) {
      std::printf("  %-28s %-9d | %d\n",
                  synth::species(static_cast<std::size_t>(species))
                      .common_name.c_str(),
                  count,
                  state.species_truth.count(species)
                      ? state.species_truth.at(species)
                      : 0);
    }
    std::printf("\n");
    total_detections += state.detections;
    correct_detections += state.correct;
  }

  const auto stats = scheduler.stats();
  std::printf("Survey complete: %zu detections, %.0f%% consistent with the "
              "planted fauna (%zu scheduling rounds, 0 samples dropped: "
              "lossless backpressure).\n",
              total_detections,
              total_detections
                  ? 100.0 * static_cast<double>(correct_detections) /
                        static_cast<double>(total_detections)
                  : 0.0,
              stats.rounds);
  return 0;
}
