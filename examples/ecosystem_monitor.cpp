// Ecosystem monitoring survey: multiple simulated sensor stations stream
// their recordings through push-based extraction sessions; a MESO model
// identifies the singers; the program prints a species activity report per
// station -- the paper's motivating application ("automated species surveys
// using acoustics").
//
// Each station's clips flow through synth::StationSource ->
// core::StreamSession -> classification callback: one clip in memory at a
// time, ensembles classified the moment they close — the shape of a
// long-running field deployment rather than a batch job.
//
//   ./ecosystem_monitor [stations] [clips_per_station]
#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

#include "core/birdsong.hpp"
#include "core/stream_session.hpp"
#include "eval/protocol.hpp"
#include "meso/classifier.hpp"
#include "river/sample_io.hpp"
#include "synth/station.hpp"
#include "synth/station_source.hpp"

namespace core = dynriver::core;
namespace river = dynriver::river;
namespace synth = dynriver::synth;
namespace meso = dynriver::meso;

namespace {
/// Train a reference MESO model from labelled reference recordings.
meso::MesoClassifier train_reference_model(core::StreamSession& session,
                                           int rounds) {
  synth::StationParams sp;
  sp.distractor_probability = 0.0;
  synth::SensorStation reference(sp, 555);
  meso::MesoClassifier classifier;
  for (int round = 0; round < rounds; ++round) {
    for (std::size_t s = 0; s < synth::kNumSpecies; ++s) {
      const auto clip = reference.record_clip({static_cast<synth::SpeciesId>(s)});
      session.reset();
      river::BufferSource source(clip.clip.samples,
                                 session.params().sample_rate);
      river::CollectingEnsembleSink sink;
      core::run_stream(source, session, sink);
      for (const auto& ensemble : sink.ensembles) {
        for (const auto& pattern : session.featurize(ensemble)) {
          classifier.train(pattern, static_cast<meso::Label>(s));
        }
      }
    }
  }
  return classifier;
}
}  // namespace

int main(int argc, char** argv) {
  const int num_stations = argc > 1 ? std::atoi(argv[1]) : 3;
  const int clips_per_station = argc > 2 ? std::atoi(argv[2]) : 4;
  const core::PipelineParams params;
  core::StreamSession session(params);

  std::printf("Acoustic ecosystem monitor: %d stations x %d clips\n",
              num_stations, clips_per_station);
  std::printf("Training reference MESO model...\n");
  const auto classifier = train_reference_model(session, 3);
  std::printf("  %zu patterns, %zu spheres\n\n", classifier.pattern_count(),
              classifier.sphere_count());

  // Each station has its own fauna mix (its own seeded randomness).
  std::size_t total_detections = 0;
  std::size_t correct_detections = 0;
  for (int st = 0; st < num_stations; ++st) {
    synth::StationParams sp;
    synth::SensorStation station(sp, 10000 + static_cast<std::uint64_t>(st));
    dynriver::Rng fauna(20000 + static_cast<std::uint64_t>(st));

    std::map<int, int> species_activity;  // predicted species -> detections
    std::map<int, int> species_truth;     // planted species -> songs
    for (int c = 0; c < clips_per_station; ++c) {
      // 1-3 singers per clip, biased per station.
      std::vector<synth::SpeciesId> clip_singers;
      const auto n_singers = fauna.uniform_int(1, 3);
      for (int s = 0; s < n_singers; ++s) {
        const auto id = static_cast<synth::SpeciesId>(
            static_cast<std::size_t>(st * 3 + fauna.uniform_int(0, 4)) %
            synth::kNumSpecies);
        clip_singers.push_back(id);
        ++species_truth[static_cast<int>(id)];
      }

      // The clip is synthesized lazily inside the source and streamed in
      // record-size chunks; classification happens as ensembles close.
      synth::StationSource source(station, clip_singers, 1);
      session.reset();
      river::CallbackEnsembleSink sink([&](river::Ensemble ensemble) {
        // Group votes per ensemble; count a detection per ensemble.
        std::vector<int> votes;
        for (const auto& pattern : session.featurize(ensemble)) {
          votes.push_back(classifier.classify(pattern));
        }
        if (votes.empty()) return;
        const int predicted =
            dynriver::eval::majority_vote(votes, synth::kNumSpecies);
        ++species_activity[predicted];
        ++total_detections;
        // Score against ground truth by checking the species was planted.
        if (species_truth.count(predicted) > 0) ++correct_detections;
      });
      core::run_stream(source, session, sink);
    }

    std::printf("Station %d activity report:\n", st + 1);
    std::printf("  %-28s %-9s | planted songs\n", "species", "detections");
    for (const auto& [species, count] : species_activity) {
      std::printf("  %-28s %-9d | %d\n",
                  synth::species(static_cast<std::size_t>(species))
                      .common_name.c_str(),
                  count,
                  species_truth.count(species) ? species_truth[species] : 0);
    }
    std::printf("\n");
  }

  std::printf("Survey complete: %zu detections, %.0f%% consistent with the "
              "planted fauna.\n",
              total_detections,
              total_detections
                  ? 100.0 * static_cast<double>(correct_detections) /
                        static_cast<double>(total_detections)
                  : 0.0);
  return 0;
}
