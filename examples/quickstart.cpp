// Quickstart: the paper's extraction pipeline as a push-based stream.
//
// Trains a MESO model on reference songs, then streams a fresh 30-second
// clip through a core::StreamSession in record-size chunks — ensembles pop
// out the moment their trigger closes, are featurized through the session's
// shared SpectralEngine, and classified by majority vote. The session holds
// only the open ensemble and the merge gap: the same program shape ingests
// a live station feed for days.
//
//   ./quickstart [seed]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/birdsong.hpp"
#include "core/stream_session.hpp"
#include "eval/protocol.hpp"
#include "meso/classifier.hpp"
#include "river/sample_io.hpp"
#include "synth/station.hpp"

namespace core = dynriver::core;
namespace river = dynriver::river;
namespace synth = dynriver::synth;
namespace meso = dynriver::meso;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  const core::PipelineParams params;  // the paper's configuration

  std::printf("Dynamic River quickstart\n========================\n\n");
  std::printf("Pipeline (paper Fig. 5):\n  %s\n\n",
              core::pipeline_diagram(params).c_str());

  // One streaming session for the whole program; reset() between clips
  // reuses the spectral engine, plans, and window tables.
  core::StreamSession session(params);

  // 1. Train MESO on a few reference songs per species, streamed through
  // the same session the mystery clip will use.
  std::printf("Training MESO on reference songs ");
  synth::StationParams sp;
  sp.distractor_probability = 0.0;
  synth::SensorStation trainer(sp, seed + 1);
  meso::MesoClassifier classifier;
  for (int round = 0; round < 4; ++round) {
    for (std::size_t s = 0; s < synth::kNumSpecies; ++s) {
      const auto clip = trainer.record_clip({static_cast<synth::SpeciesId>(s)});
      session.reset();
      river::BufferSource source(clip.clip.samples, params.sample_rate);
      river::CollectingEnsembleSink sink;
      core::run_stream(source, session, sink);
      for (const auto& ensemble : sink.ensembles) {
        for (const auto& pattern : session.featurize(ensemble)) {
          classifier.train(pattern, static_cast<meso::Label>(s));
        }
      }
      std::printf(".");
      std::fflush(stdout);
    }
  }
  const auto stats = classifier.stats();
  std::printf(" done\n  %zu patterns in %zu sensitivity spheres (delta %.3f)\n\n",
              stats.patterns, stats.spheres, stats.delta);

  // 2. Record a fresh clip with two mystery singers.
  synth::SensorStation station(sp, seed);
  const auto mystery = station.record_clip(
      {synth::SpeciesId::kRWBL, synth::SpeciesId::kWBNU});
  std::printf("Recorded a %.0f s clip (%.2f MB) with %zu vocalizations.\n\n",
              sp.clip_seconds,
              static_cast<double>(mystery.clip.samples.size()) * 2 / 1e6,
              mystery.truth.size());

  // 3. Stream it through the session; classify each ensemble as it closes.
  session.reset();
  river::BufferSource source(mystery.clip.samples, params.sample_rate);

  std::printf("%-10s %-18s %-7s %-6s %s\n", "ensemble", "time", "votes",
              "conf", "species");
  std::size_t ensemble_id = 0;
  std::size_t pattern_count = 0;
  river::CallbackEnsembleSink sink([&](river::Ensemble ensemble) {
    // One vote per pattern, majority per ensemble. Confidence is the
    // winning vote share -- noise-triggered ensembles (which the paper's
    // human listener would reject) tend to have scattered votes.
    std::vector<int> votes;
    for (const auto& pattern : session.featurize(ensemble)) {
      votes.push_back(classifier.classify(pattern));
    }
    pattern_count += votes.size();
    if (votes.empty()) return;  // too short to carry a pattern
    const int winner = dynriver::eval::majority_vote(votes, synth::kNumSpecies);
    const auto winner_votes = static_cast<std::size_t>(
        std::count(votes.begin(), votes.end(), winner));
    std::printf("%-10zu [%6.2f, %6.2f)  %-7zu %3.0f%%   %s (%s)\n",
                ensemble_id++,
                static_cast<double>(ensemble.start_sample) / params.sample_rate,
                static_cast<double>(ensemble.end_sample()) / params.sample_rate,
                votes.size(),
                100.0 * static_cast<double>(winner_votes) /
                    static_cast<double>(votes.size()),
                synth::species(static_cast<std::size_t>(winner)).code.c_str(),
                synth::species(static_cast<std::size_t>(winner))
                    .common_name.c_str());
  });
  const auto pump = core::run_stream(source, session, sink);
  std::printf("\nExtraction produced %zu patterns from %zu samples; the "
              "session never buffered more than %zu samples (%.1f%% of the "
              "clip).\n",
              pattern_count, pump.samples_in, pump.peak_buffered_samples,
              100.0 * static_cast<double>(pump.peak_buffered_samples) /
                  static_cast<double>(std::max<std::size_t>(1, pump.samples_in)));

  std::printf("\nGround truth:\n");
  for (const auto& t : mystery.truth) {
    std::printf("  [%6.2f, %6.2f)  %s\n",
                static_cast<double>(t.start_sample) / params.sample_rate,
                static_cast<double>(t.end_sample()) / params.sample_rate,
                synth::species(t.species).code.c_str());
  }
  return 0;
}
