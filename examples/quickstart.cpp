// Quickstart: the paper's Figure 5 pipeline on a single clip.
//
// Builds the full operator chain (wav2rec .. rec2vect), runs one synthetic
// 30-second clip through it, prints the extracted ensembles, and classifies
// them with a MESO model trained on a handful of reference songs.
//
//   ./quickstart [seed]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "core/birdsong.hpp"
#include "core/ops_acoustic.hpp"
#include "eval/protocol.hpp"
#include "meso/classifier.hpp"
#include "synth/station.hpp"

namespace core = dynriver::core;
namespace river = dynriver::river;
namespace synth = dynriver::synth;
namespace meso = dynriver::meso;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  const core::PipelineParams params;  // the paper's configuration

  std::printf("Dynamic River quickstart\n========================\n\n");
  std::printf("Pipeline (paper Fig. 5):\n  %s\n\n",
              core::pipeline_diagram(params).c_str());

  // 1. Train MESO on a few reference songs per species.
  std::printf("Training MESO on reference songs ");
  synth::StationParams sp;
  sp.distractor_probability = 0.0;
  synth::SensorStation trainer(sp, seed + 1);
  meso::MesoClassifier classifier;
  for (int round = 0; round < 4; ++round) {
    for (std::size_t s = 0; s < synth::kNumSpecies; ++s) {
      const auto clip =
          trainer.record_clip({static_cast<synth::SpeciesId>(s)});
      for (const auto& pat : core::process_clip(clip.clip, 0, params)) {
        classifier.train(pat.features, static_cast<meso::Label>(s));
      }
      std::printf(".");
      std::fflush(stdout);
    }
  }
  const auto stats = classifier.stats();
  std::printf(" done\n  %zu patterns in %zu sensitivity spheres (delta %.3f)\n\n",
              stats.patterns, stats.spheres, stats.delta);

  // 2. Record a fresh clip with two mystery singers.
  synth::SensorStation station(sp, seed);
  const auto mystery = station.record_clip(
      {synth::SpeciesId::kRWBL, synth::SpeciesId::kWBNU});
  std::printf("Recorded a %.0f s clip (%.2f MB) with %zu vocalizations.\n\n",
              sp.clip_seconds,
              static_cast<double>(mystery.clip.samples.size()) * 2 / 1e6,
              mystery.truth.size());

  // 3. Run it through the full pipeline and group patterns by ensemble.
  const auto patterns = core::process_clip(mystery.clip, 1, params);
  std::printf("Extraction produced %zu patterns.\n\n", patterns.size());

  std::map<std::int64_t, std::vector<int>> votes_by_ensemble;
  std::map<std::int64_t, std::pair<double, double>> span_by_ensemble;
  for (const auto& pat : patterns) {
    votes_by_ensemble[pat.ensemble_id].push_back(
        classifier.classify(pat.features));
    span_by_ensemble[pat.ensemble_id] = {
        static_cast<double>(pat.start_sample) / params.sample_rate,
        static_cast<double>(pat.start_sample + pat.ensemble_samples) /
            params.sample_rate};
  }

  // 4. Report: one vote per pattern, majority per ensemble. Confidence is
  // the winning vote share -- noise-triggered ensembles (which the paper's
  // human listener would reject) tend to have scattered votes.
  std::printf("%-10s %-18s %-7s %-6s %s\n", "ensemble", "time", "votes",
              "conf", "species");
  for (const auto& [ensemble_id, votes] : votes_by_ensemble) {
    const int winner = dynriver::eval::majority_vote(votes, synth::kNumSpecies);
    const auto [t0, t1] = span_by_ensemble[ensemble_id];
    const auto winner_votes = static_cast<std::size_t>(
        std::count(votes.begin(), votes.end(), winner));
    std::printf("%-10lld [%6.2f, %6.2f)  %-7zu %3.0f%%   %s (%s)\n",
                static_cast<long long>(ensemble_id), t0, t1, votes.size(),
                100.0 * static_cast<double>(winner_votes) /
                    static_cast<double>(votes.size()),
                synth::species(static_cast<std::size_t>(winner)).code.c_str(),
                synth::species(static_cast<std::size_t>(winner))
                    .common_name.c_str());
  }

  std::printf("\nGround truth:\n");
  for (const auto& t : mystery.truth) {
    std::printf("  [%6.2f, %6.2f)  %s\n",
                static_cast<double>(t.start_sample) / params.sample_rate,
                static_cast<double>(t.end_sample()) / params.sample_rate,
                synth::species(t.species).code.c_str());
  }
  return 0;
}
