// Anomaly explorer: the ensemble-extraction technique on non-acoustic
// streams. The paper (Section 1) notes the process "is general and can be
// extended to other problem domains such as security systems and military
// reconnaissance" -- here we run the same saxanomaly -> trigger -> cutter
// logic over (a) an ECG-like stream with arrhythmic beats and (b) a
// network-traffic-like counter stream with a burst anomaly, and also show
// the relationship to discords and motifs on the extracted data.
//
// Both streams run through the push-based core::StreamSession in small
// chunks — the way a live ECG monitor or traffic counter would actually
// arrive — with a bounded ring tap on the score/trigger signals, so the
// program's memory never depends on how long the stream runs.
//
//   ./anomaly_explorer
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numbers>
#include <vector>

#include "common/rng.hpp"
#include "core/stream_session.hpp"
#include "ts/discord.hpp"
#include "ts/motif.hpp"

namespace core = dynriver::core;
namespace river = dynriver::river;
namespace ts = dynriver::ts;
using dynriver::Rng;

namespace {

/// ECG-like stream: periodic spike complexes; a tachycardia burst (beats at
/// ~2.3x the normal rate) is planted in the middle.
std::vector<float> ecg_stream(std::size_t n, std::size_t anomaly_at,
                              std::size_t anomaly_len, Rng& rng) {
  std::vector<float> xs(n, 0.0F);
  for (std::size_t i = 0; i < n; ++i) {
    const bool anomalous = i >= anomaly_at && i < anomaly_at + anomaly_len;
    const std::size_t beat = anomalous ? 70 : 160;
    const std::size_t phase = i % beat;
    const std::size_t qrs_at = anomalous ? 30 : 40;
    double v = 0.02 * rng.gaussian(0.0, 1.0);
    const double d = static_cast<double>(phase) - static_cast<double>(qrs_at);
    v += (anomalous ? 1.1 : 1.0) * std::exp(-d * d / (2.0 * 5.0 * 5.0));
    if (!anomalous) {
      v += 0.15 * std::sin(2.0 * std::numbers::pi *
                           static_cast<double>(phase) / 160.0);  // T wave
    }
    xs[i] = static_cast<float>(v);
  }
  return xs;
}

/// Traffic-like stream: noisy diurnal counter with a volumetric burst
/// planted at a known position.
std::vector<float> traffic_stream(std::size_t n, std::size_t burst_at,
                                  std::size_t burst_len, Rng& rng) {
  std::vector<float> xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    double v = 1.0 + 0.15 * std::sin(2.0 * std::numbers::pi *
                                     static_cast<double>(i) / 40000.0);
    v += 0.08 * rng.gaussian(0.0, 1.0);
    if (i >= burst_at && i < burst_at + burst_len) {
      v += 2.5 + 0.8 * rng.gaussian(0.0, 1.0);  // volumetric burst
    }
    xs[i] = static_cast<float>(std::max(0.0, v));
  }
  return xs;
}

struct StreamOutcome {
  std::vector<river::Ensemble> ensembles;
  std::size_t samples_in = 0;
  std::size_t peak_buffered = 0;
  /// The ring tap's retained window at end of stream (last ma_window
  /// scores) — all the history a long-running monitor ever holds.
  std::size_t tap_first = 0;
  std::size_t tap_size = 0;
  float tap_max_score = 0.0F;
};

/// Stream `xs` through a session in live-sized chunks; the ring tap keeps
/// only the last ma_window score samples no matter the stream length.
StreamOutcome stream_extract(const core::PipelineParams& params,
                             const std::vector<float>& xs, std::size_t chunk) {
  core::SessionOptions options;
  options.tap_capacity = params.anomaly.ma_window;
  core::StreamSession session(params, std::move(options));
  river::BufferSource source(xs, params.sample_rate);
  river::CollectingEnsembleSink sink;
  const auto stats = core::run_stream(source, session, sink, chunk);

  StreamOutcome out;
  out.ensembles = std::move(sink.ensembles);
  out.samples_in = stats.samples_in;
  out.peak_buffered = stats.peak_buffered_samples;
  out.tap_first = session.tap().first_index();
  out.tap_size = session.tap().size();
  for (const float s : session.tap().scores()) {
    out.tap_max_score = std::max(out.tap_max_score, s);
  }
  return out;
}

void report(const char* name, const StreamOutcome& outcome,
            std::size_t truth_at, std::size_t truth_len, double rate) {
  std::printf("%s: %zu ensemble(s) extracted\n", name,
              outcome.ensembles.size());
  bool hit = false;
  for (const auto& e : outcome.ensembles) {
    const bool overlaps =
        e.start_sample < truth_at + truth_len && truth_at < e.end_sample();
    hit = hit || overlaps;
    std::printf("  [%8.2f, %8.2f) %s\n",
                static_cast<double>(e.start_sample) / rate,
                static_cast<double>(e.end_sample()) / rate,
                overlaps ? "<-- planted anomaly" : "");
  }
  std::printf("  planted anomaly at [%8.2f, %8.2f): %s\n",
              static_cast<double>(truth_at) / rate,
              static_cast<double>(truth_at + truth_len) / rate,
              hit ? "FOUND" : "missed");
  std::printf("  (streamed %zu samples; peak session buffer %zu; score tap "
              "retains [%zu, %zu) — max %.3f in the last window)\n\n",
              outcome.samples_in, outcome.peak_buffered, outcome.tap_first,
              outcome.tap_first + outcome.tap_size,
              static_cast<double>(outcome.tap_max_score));
}

}  // namespace

int main() {
  std::printf("Ensemble extraction beyond acoustics\n");
  std::printf("====================================\n\n");
  Rng rng(2718);

  // ECG-like stream, "sampled" at 360 Hz.
  {
    constexpr double kRate = 360.0;
    constexpr std::size_t kN = 120000;
    constexpr std::size_t kAnomalyAt = 60000;
    constexpr std::size_t kAnomalyLen = 2400;
    const auto xs = ecg_stream(kN, kAnomalyAt, kAnomalyLen, rng);

    // The trigger multiplier is domain-specific; the paper: "The number of
    // standard deviations is specific to the particular data set".
    core::PipelineParams params;
    params.anomaly = {.window = 40, .alphabet = 6, .level = 2,
                      .ma_window = 400, .frame = 4};
    params.trigger_sigma = 4.0;
    params.trigger_min_baseline = 2000;
    params.trigger_hold_samples = 300;
    params.min_ensemble_samples = 400;
    params.merge_gap_samples = 2000;
    // Spectral stages are not used here; only extraction runs. Chunks of
    // 36 samples = one tenth of a second of "telemetry".
    report("ECG-like stream (tachycardia burst planted)",
           stream_extract(params, xs, 36), kAnomalyAt, kAnomalyLen, kRate);
  }

  // Traffic counter stream, 1 sample per second.
  {
    constexpr double kRate = 1.0;
    constexpr std::size_t kN = 90000;
    constexpr std::size_t kBurstAt = 50000;
    constexpr std::size_t kBurstLen = 1800;
    const auto xs = traffic_stream(kN, kBurstAt, kBurstLen, rng);

    core::PipelineParams params;
    params.anomaly = {.window = 50, .alphabet = 8, .level = 2,
                      .ma_window = 300, .frame = 8};
    params.trigger_sigma = 5.0;
    params.trigger_min_baseline = 3000;
    params.trigger_hold_samples = 400;
    params.min_ensemble_samples = 300;
    params.merge_gap_samples = 1500;
    // One-sample pushes: a counter arriving every second, the degenerate
    // chunking the bit-identity contract covers.
    report("Traffic counter stream (volumetric burst planted)",
           stream_extract(params, xs, 1), kBurstAt, kBurstLen, kRate);
  }

  // Relationship to discords/motifs (paper, Section 5): ensembles are
  // candidate motifs or discords. Demonstrate on a small series.
  {
    std::printf("Ensembles vs discords/motifs (paper, Section 5)\n");
    std::printf("-----------------------------------------------\n");
    std::vector<float> xs(3000);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      xs[i] = static_cast<float>(
          std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / 100.0) +
          0.05 * rng.gaussian(0.0, 1.0));
    }
    // Plant one discordant cycle and a repeated foreign shape.
    for (std::size_t k = 0; k < 100; ++k) {
      xs[1200 + k] = static_cast<float>(0.3 * rng.gaussian(0.0, 1.0));
      const auto shape =
          static_cast<float>(0.8 * std::sin(2.0 * std::numbers::pi *
                                            static_cast<double>(k) / 25.0));
      xs[500 + k] += shape;
      xs[2200 + k] += shape;
    }
    const auto discord = ts::find_discord_brute(xs, 100);
    std::printf("discord (most unusual window): index %zu, distance %.2f\n",
                discord.index, discord.distance);
    ts::MotifParams mp;
    mp.window = 100;
    const auto motif = ts::find_motif_brute(xs, mp);
    std::printf(
        "1-motif (closest recurring pair): %zu <-> %zu, distance %.2f, "
        "%zu occurrence(s)\n",
        motif.first, motif.second, motif.distance, motif.neighbors);
    std::printf(
        "\nEnsemble extraction finds both kinds online in a single pass --\n"
        "ensembles are locally anomalous sequences that 'may recur only\n"
        "rarely', i.e. candidate motifs AND discords.\n");
  }
  return 0;
}
