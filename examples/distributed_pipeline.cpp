// Distributed pipeline demo: extraction split across "hosts" connected by a
// real TCP socket, with
//   1. live relocation of the extraction segment between virtual hosts,
//   2. a station streaming audio records over TCP into a push-based
//      StreamSession (RecordChannelSource -> session -> sink) that keeps
//      extracting while the upstream is still sending — then dies mid-clip,
//      showing the session finalize the open ensemble and the source report
//      the abnormal close, and
//   3. the sensor-network ingest shape: several stations stream over TCP at
//      once into ONE analysis host, which multiplexes all of their sessions
//      through a single SessionScheduler — per-station bounded ingest
//      queues, deficit-round-robin fairness, and one of the upstreams dying
//      mid-clip without disturbing the others, and
//   4. the archive shape: the same audio teed into a rotating segment store
//      while it is extracted live, then backfill-replayed through the
//      scheduler — same sessions, bit-identical ensembles, batch speed.
//
//   ./distributed_pipeline
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "core/birdsong.hpp"
#include "core/ops_acoustic.hpp"
#include "core/session_scheduler.hpp"
#include "core/stream_session.hpp"
#include "river/manager.hpp"
#include "river/sample_io.hpp"
#include "river/scope.hpp"
#include "river/segment_store.hpp"
#include "river/stream_io.hpp"
#include "river/tcp.hpp"
#include "synth/station.hpp"

namespace core = dynriver::core;
namespace river = dynriver::river;
namespace synth = dynriver::synth;
using river::Record;
using river::RecvStatus;

namespace {
const core::PipelineParams kParams;

void feed_clip(river::RecordChannel& ch, synth::SensorStation& station,
               synth::SpeciesId species) {
  const auto clip = station.record_clip({species});
  river::AttrMap attrs;
  attrs.emplace(core::kAttrSpecies, synth::species(species).code);
  for (auto& rec : core::clip_to_records(clip.clip, clip.clip_id,
                                         kParams.record_size, attrs)) {
    ch.send(std::move(rec));
  }
}
}  // namespace

int main() {
  std::printf("Part 1: extraction segment relocated between hosts mid-stream\n");
  std::printf("--------------------------------------------------------------\n");
  {
    river::PipelineManager manager;
    manager.add_host("field-station");
    manager.add_host("observatory");

    auto source = std::make_shared<river::InProcessChannel>(32);
    auto sink = std::make_shared<river::InProcessChannel>(100000);
    manager.deploy(
        std::make_unique<river::Segment>(
            "birdsong", core::make_full_pipeline(kParams), source, sink),
        "field-station");
    std::printf("deployed segment 'birdsong' on %s\n",
                manager.location_of("birdsong").c_str());

    synth::StationParams sp;
    sp.distractor_probability = 0.0;
    synth::SensorStation station(sp, 42);
    std::thread feeder([&] {
      for (int c = 0; c < 4; ++c) {
        feed_clip(*source, station,
                  static_cast<synth::SpeciesId>(static_cast<std::size_t>(c) %
                                                synth::kNumSpecies));
        if (c == 1) {
          // Relocate while clips keep flowing.
          manager.relocate("birdsong", "observatory");
          std::printf("relocated segment 'birdsong' to %s (mid-stream)\n",
                      manager.location_of("birdsong").c_str());
        }
      }
      source->close();
    });
    feeder.join();
    const auto stats = manager.wait_all();

    std::vector<Record> collected;
    Record rec;
    while (sink->recv(rec) == RecvStatus::kRecord) collected.push_back(rec);
    const auto patterns = core::harvest_patterns(collected);

    river::ScopeTracker tracker;
    for (const auto& r : collected) tracker.observe(r);

    std::printf(
        "records processed: %zu (field-station: %zu, observatory: %zu)\n",
        stats.at("birdsong").records_in,
        manager.host("field-station").records_processed(),
        manager.host("observatory").records_processed());
    std::printf("patterns harvested: %zu; output scope-well-formed: %s\n\n",
                patterns.size(), tracker.any_open() ? "NO" : "yes");
  }

  std::printf("Part 2: live TCP ingest into a StreamSession; upstream dies mid-clip\n");
  std::printf("--------------------------------------------------------------------\n");
  {
    river::TcpListener listener(0);
    const auto port = listener.port();
    std::printf("downstream listening on 127.0.0.1:%u\n", port);

    std::thread dying_upstream([port] {
      river::TcpRecordChannel ch(river::TcpStream::connect("127.0.0.1", port));
      synth::StationParams sp;
      synth::SensorStation station(sp, 77);
      const auto clip = station.record_clip(
          {synth::SpeciesId::kBLJA, synth::SpeciesId::kMODO});
      auto records = core::clip_to_records(clip.clip, 0, kParams.record_size);
      const std::size_t sent_count = (records.size() * 2) / 3;
      for (std::size_t i = 0; i < sent_count; ++i) {
        ch.send(std::move(records[i]));
      }
      std::printf("upstream: sent %zu of %zu records, then crashing...\n",
                  sent_count, records.size());
      // Let the receiver drain the socket before the abortive close — an
      // immediate RST may discard kernel-queued records, which would make
      // the "extracted live before the fault" part of the demo a coin flip.
      std::this_thread::sleep_for(std::chrono::milliseconds(500));
      ch.disconnect();  // abortive close: no CloseScope, no EOS sentinel
    });

    // The downstream host pulls audio records off the socket and extracts
    // as they arrive: ensembles close (and could be classified, archived,
    // forwarded) while the upstream is still recording. Only the open
    // ensemble and the merge gap are buffered — never the stream.
    auto incoming = std::make_shared<river::TcpRecordChannel>(listener.accept());
    river::RecordChannelSource source(incoming);
    core::StreamSession session(kParams);
    river::CollectingEnsembleSink sink;
    const auto stats = core::run_stream(source, session, sink);
    dying_upstream.join();

    std::printf("downstream: received %zu records (%zu samples); "
                "clean close: %s\n",
                source.records_in(), stats.samples_in,
                source.clean() ? "yes" : "NO");
    std::printf("downstream: %zu ensemble(s) extracted live "
                "(tail finalized at the fault), peak session buffer "
                "%zu samples\n",
                sink.ensembles.size(), stats.peak_buffered_samples);
    for (const auto& e : sink.ensembles) {
      std::printf("  [%6.2f, %6.2f) s\n",
                  static_cast<double>(e.start_sample) / kParams.sample_rate,
                  static_cast<double>(e.end_sample()) / kParams.sample_rate);
    }
    std::printf(
        "\nThe pipeline survives the fault: the session's state machine\n"
        "closed the open ensemble, the source reported the abnormal end,\n"
        "and the next clip on a fresh connection processes normally --\n"
        "Dynamic River's chief advantage over SPEs without scoped streams\n"
        "(paper, Section 5).\n\n");
  }

  std::printf("Part 3: many stations over TCP, one SessionScheduler host\n");
  std::printf("---------------------------------------------------------\n");
  {
    constexpr std::size_t kUpstreams = 3;
    river::TcpListener listener(0);
    const auto port = listener.port();
    std::printf("analysis host listening on 127.0.0.1:%u\n", port);

    // Three field stations stream one clip each, concurrently. Station 1
    // dies mid-clip; the other streams must be unaffected.
    std::vector<std::thread> upstreams;
    for (std::size_t s = 0; s < kUpstreams; ++s) {
      upstreams.emplace_back([port, s] {
        river::TcpRecordChannel ch(river::TcpStream::connect("127.0.0.1", port));
        synth::SensorStation station(synth::StationParams{},
                                     900 + static_cast<std::uint64_t>(s));
        const auto clip = station.record_clip(
            {static_cast<synth::SpeciesId>(s % synth::kNumSpecies),
             static_cast<synth::SpeciesId>((s + 2) % synth::kNumSpecies)});
        auto records =
            core::clip_to_records(clip.clip, static_cast<std::uint64_t>(s),
                                  kParams.record_size);
        const std::size_t send = s == 1 ? (records.size() * 2) / 3
                                        : records.size();
        for (std::size_t i = 0; i < send; ++i) ch.send(std::move(records[i]));
        if (s == 1) {
          std::printf("upstream %zu: crashing after %zu of %zu records\n", s,
                      send, records.size());
          std::this_thread::sleep_for(std::chrono::milliseconds(300));
          ch.disconnect();  // abortive: no CloseScope, no EOS sentinel
        } else {
          ch.close();  // clean end of stream
        }
      });
    }

    // One scheduler multiplexes every connection: each station gets its own
    // bounded ingest queue (TCP backpressure when it fills) and its own
    // session; worker lanes serve them with deficit round-robin.
    core::SchedulerOptions options;
    options.threads = 2;
    core::SessionScheduler scheduler(std::move(options));
    std::vector<std::shared_ptr<river::RecordChannelSource>> sources;
    std::vector<std::shared_ptr<river::CollectingEnsembleSink>> sinks;
    for (std::size_t s = 0; s < kUpstreams; ++s) {
      auto incoming =
          std::make_shared<river::TcpRecordChannel>(listener.accept());
      sources.push_back(std::make_shared<river::RecordChannelSource>(incoming));
      sinks.push_back(std::make_shared<river::CollectingEnsembleSink>());
      core::StationConfig config;
      config.params = kParams;
      config.policy = core::BackpressurePolicy::kBlock;
      config.queue_capacity_samples = 16 * kParams.record_size;
      scheduler.add_station("tcp-station-" + std::to_string(s), sources[s],
                            sinks[s], config);
    }
    scheduler.run();
    for (auto& t : upstreams) t.join();

    const auto stats = scheduler.stats();
    for (std::size_t s = 0; s < kUpstreams; ++s) {
      std::printf("%s: %zu records (%zu samples), clean close: %-3s "
                  "%zu ensemble(s)",
                  stats.stations[s].name.c_str(), sources[s]->records_in(),
                  stats.stations[s].samples_consumed,
                  sources[s]->clean() ? "yes," : "NO,",
                  stats.stations[s].ensembles_out);
      for (const auto& e : sinks[s]->ensembles) {
        std::printf("  [%.1f, %.1f)s",
                    static_cast<double>(e.start_sample) / kParams.sample_rate,
                    static_cast<double>(e.end_sample()) / kParams.sample_rate);
      }
      std::printf("\n");
    }
    std::printf(
        "\nOne host, %zu live TCP streams, %zu scheduling rounds: the dead\n"
        "upstream's session finalized its open ensemble at the fault while\n"
        "the surviving stations streamed on undisturbed -- the many-\n"
        "stations-per-host ingest shape of a sensor network deployment.\n\n",
        kUpstreams, stats.rounds);
  }

  std::printf("Part 4: segment-store archive + backfill replay through the scheduler\n");
  std::printf("---------------------------------------------------------------------\n");
  {
    const auto dir =
        std::filesystem::temp_directory_path() / "dynriver_demo_store";
    std::filesystem::remove_all(dir);

    synth::SensorStation station(synth::StationParams{}, 4242);
    auto clip = station.record_clip(
        {synth::SpeciesId::kNOCA, synth::SpeciesId::kRWBL});
    // Snap the synthetic clip to the PCM16 grid a real station's WAV/ADC
    // front-end produces — that grid is what the archive's delta codec is
    // built for. Both the live session and the archive see the same
    // quantized stream, so bit-identity below is unaffected.
    for (auto& v : clip.clip.samples) {
      const float c = std::clamp(v, -1.0F, 1.0F);
      v = static_cast<float>(std::lround(c * 32767.0F)) / 32768.0F;
    }

    // Live extraction, with the same stream teed into a rotating segment
    // store: each sealed segment carries a sparse time index, CRC32C
    // checksums, and a manifest entry, so any time range is replayable.
    // Payloads are bit-packed on append — lossless, so the replay below is
    // still sample-for-sample identical, just from ~3x fewer disk bytes.
    river::CollectingEnsembleSink live_sink;
    std::uint64_t stored_bytes = 0;
    std::size_t stored_samples = 0;
    {
      river::SegmentStoreOptions sopt;
      sopt.max_segment_bytes = 1 << 20;
      sopt.pack_payloads = true;
      river::SegmentedRecordLog log(dir, sopt);
      river::AudioSegmentArchiver archiver(log, kParams.sample_rate);
      core::StreamSession session(kParams);
      const auto& xs = clip.clip.samples;
      for (std::size_t pos = 0; pos < xs.size(); pos += kParams.record_size) {
        const std::size_t n =
            std::min(kParams.record_size, xs.size() - pos);
        const std::span<const float> chunk(xs.data() + pos, n);
        archiver.push(chunk);  // to the archive...
        session.push(chunk);   // ...and through live extraction
        for (auto& e : session.drain()) live_sink.accept(std::move(e));
      }
      archiver.finish();
      for (auto& e : session.finish()) live_sink.accept(std::move(e));
      log.close();
      for (const auto& s : log.segments()) stored_bytes += s.bytes;
      stored_samples = archiver.samples_archived();
      std::printf("archived %.1f s into %zu sealed segment(s); "
                  "%zu ensemble(s) extracted live\n",
                  static_cast<double>(archiver.samples_archived()) /
                      kParams.sample_rate,
                  log.segments().size(), live_sink.ensembles.size());
      std::printf("packed payloads: %.2f bytes/sample stored "
                  "(raw f32 would be 4.00 + framing)\n",
                  static_cast<double>(stored_bytes) /
                      static_cast<double>(stored_samples));
    }

    // Backfill: replay the whole archive through the SAME scheduler shape
    // that serves live stations in Part 3. The replay source seeks the
    // manifest, streams only overlapping segments, and the session emits
    // bit-identical ensembles at batch speed.
    core::SessionScheduler scheduler;
    auto replay_sink = std::make_shared<river::CollectingEnsembleSink>();
    core::StationConfig config;
    config.params = kParams;
    core::add_replay_station(scheduler, "backfill", dir, 0.0,
                             std::numeric_limits<double>::infinity(),
                             replay_sink, config);
    const auto t_begin = std::chrono::steady_clock::now();
    scheduler.run();
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t_begin)
                            .count();

    bool identical = replay_sink->ensembles.size() == live_sink.ensembles.size();
    for (std::size_t i = 0; identical && i < live_sink.ensembles.size(); ++i) {
      identical =
          replay_sink->ensembles[i].start_sample ==
              live_sink.ensembles[i].start_sample &&
          replay_sink->ensembles[i].samples == live_sink.ensembles[i].samples;
    }
    const double replayed = static_cast<double>(
        scheduler.stats().stations[0].samples_consumed) / kParams.sample_rate;
    std::printf("backfill replay: %zu ensemble(s) from %.1f s of archive in "
                "%.2f s (%.0fx live), bit-identical to live: %s\n",
                replay_sink->ensembles.size(), replayed, wall,
                wall > 0.0 ? replayed / wall : 0.0, identical ? "yes" : "NO");
    std::printf(
        "\nThe archive is the third ingest path -- live push, TCP records,\n"
        "and now time-range replay from sealed segments -- all feeding the\n"
        "same extraction sessions with the same results.\n");
    std::filesystem::remove_all(dir);
  }
  return 0;
}
