// Distributed pipeline demo: the Figure 5 operators split into two segments
// running on different "hosts" connected by a real TCP socket, with
//   1. live relocation of the extraction segment between virtual hosts, and
//   2. an injected upstream failure showing BadCloseScope recovery.
//
//   ./distributed_pipeline
#include <cstdio>
#include <thread>

#include "core/birdsong.hpp"
#include "core/ops_acoustic.hpp"
#include "river/manager.hpp"
#include "river/scope.hpp"
#include "river/stream_io.hpp"
#include "river/tcp.hpp"
#include "synth/station.hpp"

namespace core = dynriver::core;
namespace river = dynriver::river;
namespace synth = dynriver::synth;
using river::Record;
using river::RecvStatus;

namespace {
const core::PipelineParams kParams;

void feed_clip(river::RecordChannel& ch, synth::SensorStation& station,
               synth::SpeciesId species) {
  const auto clip = station.record_clip({species});
  river::AttrMap attrs;
  attrs.emplace(core::kAttrSpecies, synth::species(species).code);
  for (auto& rec : core::clip_to_records(clip.clip, clip.clip_id,
                                         kParams.record_size, attrs)) {
    ch.send(std::move(rec));
  }
}
}  // namespace

int main() {
  std::printf("Part 1: extraction segment relocated between hosts mid-stream\n");
  std::printf("--------------------------------------------------------------\n");
  {
    river::PipelineManager manager;
    manager.add_host("field-station");
    manager.add_host("observatory");

    auto source = std::make_shared<river::InProcessChannel>(32);
    auto sink = std::make_shared<river::InProcessChannel>(100000);
    manager.deploy(
        std::make_unique<river::Segment>(
            "birdsong", core::make_full_pipeline(kParams), source, sink),
        "field-station");
    std::printf("deployed segment 'birdsong' on %s\n",
                manager.location_of("birdsong").c_str());

    synth::StationParams sp;
    sp.distractor_probability = 0.0;
    synth::SensorStation station(sp, 42);
    std::thread feeder([&] {
      for (int c = 0; c < 4; ++c) {
        feed_clip(*source, station,
                  static_cast<synth::SpeciesId>(static_cast<std::size_t>(c) %
                                                synth::kNumSpecies));
        if (c == 1) {
          // Relocate while clips keep flowing.
          manager.relocate("birdsong", "observatory");
          std::printf("relocated segment 'birdsong' to %s (mid-stream)\n",
                      manager.location_of("birdsong").c_str());
        }
      }
      source->close();
    });
    feeder.join();
    const auto stats = manager.wait_all();

    std::vector<Record> collected;
    Record rec;
    while (sink->recv(rec) == RecvStatus::kRecord) collected.push_back(rec);
    const auto patterns = core::harvest_patterns(collected);

    river::ScopeTracker tracker;
    for (const auto& r : collected) tracker.observe(r);

    std::printf(
        "records processed: %zu (field-station: %zu, observatory: %zu)\n",
        stats.at("birdsong").records_in,
        manager.host("field-station").records_processed(),
        manager.host("observatory").records_processed());
    std::printf("patterns harvested: %zu; output scope-well-formed: %s\n\n",
                patterns.size(), tracker.any_open() ? "NO" : "yes");
  }

  std::printf("Part 2: upstream dies mid-clip over TCP; BadCloseScope recovery\n");
  std::printf("----------------------------------------------------------------\n");
  {
    river::TcpListener listener(0);
    const auto port = listener.port();
    std::printf("downstream listening on 127.0.0.1:%u\n", port);

    std::thread dying_upstream([port] {
      river::TcpRecordChannel ch(river::TcpStream::connect("127.0.0.1", port));
      synth::StationParams sp;
      synth::SensorStation station(sp, 77);
      const auto clip = station.record_clip({synth::SpeciesId::kBLJA});
      auto records = core::clip_to_records(clip.clip, 0, kParams.record_size);
      const std::size_t sent_count = records.size() / 3;
      for (std::size_t i = 0; i < sent_count; ++i) {
        ch.send(std::move(records[i]));
      }
      std::printf("upstream: sent %zu of %zu records, then crashing...\n",
                  sent_count, records.size());
      ch.disconnect();  // abortive close: no CloseScope, no EOS sentinel
    });

    river::TcpRecordChannel incoming(listener.accept());
    auto pipeline = core::make_full_pipeline(kParams);
    river::VectorEmitter sink;
    const auto result = river::stream_in(incoming, pipeline, sink);
    dying_upstream.join();

    river::ScopeTracker tracker;
    for (const auto& rec : sink.records) tracker.observe(rec);

    std::printf("downstream: received %zu records; clean close: %s\n",
                result.records_in, result.clean ? "yes" : "NO");
    std::printf(
        "downstream: synthesized %zu BadCloseScope record(s) to resynchronize\n",
        result.bad_closes_emitted);
    std::printf("downstream output scope-well-formed: %s\n",
                tracker.any_open() ? "NO" : "yes");
    std::printf(
        "\nThe pipeline survives the fault: the next clip on a fresh\n"
        "connection processes normally, which is Dynamic River's chief\n"
        "advantage over SPEs without scoped streams (paper, Section 5).\n");
  }
  return 0;
}
