// Distributed pipeline demo: extraction split across "hosts" connected by a
// real TCP socket, with
//   1. live relocation of the extraction segment between virtual hosts, and
//   2. a station streaming audio records over TCP into a push-based
//      StreamSession (RecordChannelSource -> session -> sink) that keeps
//      extracting while the upstream is still sending — then dies mid-clip,
//      showing the session finalize the open ensemble and the source report
//      the abnormal close.
//
//   ./distributed_pipeline
#include <chrono>
#include <cstdio>
#include <thread>

#include "core/birdsong.hpp"
#include "core/ops_acoustic.hpp"
#include "core/stream_session.hpp"
#include "river/manager.hpp"
#include "river/sample_io.hpp"
#include "river/scope.hpp"
#include "river/stream_io.hpp"
#include "river/tcp.hpp"
#include "synth/station.hpp"

namespace core = dynriver::core;
namespace river = dynriver::river;
namespace synth = dynriver::synth;
using river::Record;
using river::RecvStatus;

namespace {
const core::PipelineParams kParams;

void feed_clip(river::RecordChannel& ch, synth::SensorStation& station,
               synth::SpeciesId species) {
  const auto clip = station.record_clip({species});
  river::AttrMap attrs;
  attrs.emplace(core::kAttrSpecies, synth::species(species).code);
  for (auto& rec : core::clip_to_records(clip.clip, clip.clip_id,
                                         kParams.record_size, attrs)) {
    ch.send(std::move(rec));
  }
}
}  // namespace

int main() {
  std::printf("Part 1: extraction segment relocated between hosts mid-stream\n");
  std::printf("--------------------------------------------------------------\n");
  {
    river::PipelineManager manager;
    manager.add_host("field-station");
    manager.add_host("observatory");

    auto source = std::make_shared<river::InProcessChannel>(32);
    auto sink = std::make_shared<river::InProcessChannel>(100000);
    manager.deploy(
        std::make_unique<river::Segment>(
            "birdsong", core::make_full_pipeline(kParams), source, sink),
        "field-station");
    std::printf("deployed segment 'birdsong' on %s\n",
                manager.location_of("birdsong").c_str());

    synth::StationParams sp;
    sp.distractor_probability = 0.0;
    synth::SensorStation station(sp, 42);
    std::thread feeder([&] {
      for (int c = 0; c < 4; ++c) {
        feed_clip(*source, station,
                  static_cast<synth::SpeciesId>(static_cast<std::size_t>(c) %
                                                synth::kNumSpecies));
        if (c == 1) {
          // Relocate while clips keep flowing.
          manager.relocate("birdsong", "observatory");
          std::printf("relocated segment 'birdsong' to %s (mid-stream)\n",
                      manager.location_of("birdsong").c_str());
        }
      }
      source->close();
    });
    feeder.join();
    const auto stats = manager.wait_all();

    std::vector<Record> collected;
    Record rec;
    while (sink->recv(rec) == RecvStatus::kRecord) collected.push_back(rec);
    const auto patterns = core::harvest_patterns(collected);

    river::ScopeTracker tracker;
    for (const auto& r : collected) tracker.observe(r);

    std::printf(
        "records processed: %zu (field-station: %zu, observatory: %zu)\n",
        stats.at("birdsong").records_in,
        manager.host("field-station").records_processed(),
        manager.host("observatory").records_processed());
    std::printf("patterns harvested: %zu; output scope-well-formed: %s\n\n",
                patterns.size(), tracker.any_open() ? "NO" : "yes");
  }

  std::printf("Part 2: live TCP ingest into a StreamSession; upstream dies mid-clip\n");
  std::printf("--------------------------------------------------------------------\n");
  {
    river::TcpListener listener(0);
    const auto port = listener.port();
    std::printf("downstream listening on 127.0.0.1:%u\n", port);

    std::thread dying_upstream([port] {
      river::TcpRecordChannel ch(river::TcpStream::connect("127.0.0.1", port));
      synth::StationParams sp;
      synth::SensorStation station(sp, 77);
      const auto clip = station.record_clip(
          {synth::SpeciesId::kBLJA, synth::SpeciesId::kMODO});
      auto records = core::clip_to_records(clip.clip, 0, kParams.record_size);
      const std::size_t sent_count = (records.size() * 2) / 3;
      for (std::size_t i = 0; i < sent_count; ++i) {
        ch.send(std::move(records[i]));
      }
      std::printf("upstream: sent %zu of %zu records, then crashing...\n",
                  sent_count, records.size());
      // Let the receiver drain the socket before the abortive close — an
      // immediate RST may discard kernel-queued records, which would make
      // the "extracted live before the fault" part of the demo a coin flip.
      std::this_thread::sleep_for(std::chrono::milliseconds(500));
      ch.disconnect();  // abortive close: no CloseScope, no EOS sentinel
    });

    // The downstream host pulls audio records off the socket and extracts
    // as they arrive: ensembles close (and could be classified, archived,
    // forwarded) while the upstream is still recording. Only the open
    // ensemble and the merge gap are buffered — never the stream.
    auto incoming = std::make_shared<river::TcpRecordChannel>(listener.accept());
    river::RecordChannelSource source(incoming);
    core::StreamSession session(kParams);
    river::CollectingEnsembleSink sink;
    const auto stats = core::run_stream(source, session, sink);
    dying_upstream.join();

    std::printf("downstream: received %zu records (%zu samples); "
                "clean close: %s\n",
                source.records_in(), stats.samples_in,
                source.clean() ? "yes" : "NO");
    std::printf("downstream: %zu ensemble(s) extracted live "
                "(tail finalized at the fault), peak session buffer "
                "%zu samples\n",
                sink.ensembles.size(), stats.peak_buffered_samples);
    for (const auto& e : sink.ensembles) {
      std::printf("  [%6.2f, %6.2f) s\n",
                  static_cast<double>(e.start_sample) / kParams.sample_rate,
                  static_cast<double>(e.end_sample()) / kParams.sample_rate);
    }
    std::printf(
        "\nThe pipeline survives the fault: the session's state machine\n"
        "closed the open ensemble, the source reported the abnormal end,\n"
        "and the next clip on a fresh connection processes normally --\n"
        "Dynamic River's chief advantage over SPEs without scoped streams\n"
        "(paper, Section 5).\n");
  }
  return 0;
}
