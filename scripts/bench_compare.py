#!/usr/bin/env python3
"""Diff two BENCH_micro.json files and flag per-op regressions.

Usage:
    scripts/bench_compare.py BASELINE.json CURRENT.json [--threshold 0.10]
                             [--warn-only]

Benchmarks are keyed by (op, size). An op regresses when its current
ns_per_op exceeds baseline * (1 + threshold); it improves symmetrically.
Exit status is 1 when any op regressed (0 with --warn-only, for noisy
shared-runner environments where the report matters but hard-failing on a
10% swing would be flaky).
"""

import argparse
import json
import sys


def load(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "dynriver-bench-v1":
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    table = {}
    for rec in doc.get("benchmarks", []):
        table[(rec["op"], rec["size"])] = float(rec["ns_per_op"])
    return doc.get("git", "unknown"), table


def fmt_ns(ns):
    if ns >= 1e6:
        return f"{ns / 1e6:10.2f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:10.2f} us"
    return f"{ns:10.1f} ns"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        metavar="FRAC",
        help="relative slowdown that counts as a regression (default 0.10)",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but always exit 0",
    )
    args = parser.parse_args()

    base_git, base = load(args.baseline)
    cur_git, cur = load(args.current)

    print(f"baseline: {args.baseline} (git {base_git})")
    print(f"current:  {args.current} (git {cur_git})")
    print(f"{'op':<28} {'size':>8} {'baseline':>13} {'current':>13} "
          f"{'ratio':>7}  verdict")
    print("-" * 86)

    regressions = []
    for key in sorted(base.keys() | cur.keys()):
        op, size = key
        b = base.get(key)
        c = cur.get(key)
        if b is None or c is None:
            status = "only in current" if b is None else "only in baseline"
            missing = "--"
            print(f"{op:<28} {size:>8} "
                  f"{fmt_ns(b) if b is not None else missing:>13} "
                  f"{fmt_ns(c) if c is not None else missing:>13} "
                  f"{'':>7}  {status}")
            continue
        ratio = c / b if b > 0 else float("inf")
        if ratio > 1.0 + args.threshold:
            verdict = f"REGRESSION (+{(ratio - 1) * 100:.1f}%)"
            regressions.append((op, size, ratio))
        elif ratio < 1.0 - args.threshold:
            verdict = f"improved ({(1 - ratio) * 100:.1f}%)"
        else:
            verdict = "ok"
        print(f"{op:<28} {size:>8} {fmt_ns(b):>13} {fmt_ns(c):>13} "
              f"{ratio:>6.2f}x  {verdict}")

    print("-" * 86)
    if regressions:
        print(f"{len(regressions)} op(s) regressed beyond "
              f"{args.threshold * 100:.0f}%:")
        for op, size, ratio in regressions:
            print(f"  {op}@{size}: {ratio:.2f}x slower")
        return 0 if args.warn_only else 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
