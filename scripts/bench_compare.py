#!/usr/bin/env python3
"""Diff two BENCH_micro.json files and flag per-op regressions.

Usage:
    scripts/bench_compare.py BASELINE.json CURRENT.json [--threshold 0.10]
                             [--warn-only]
    scripts/bench_compare.py --baseline {1core,multicore,PATH} CURRENT.json

The committed baselines live at the repository root: BENCH_micro.json is
measured serially (DR_THREADS=1 semantics — the container this repo grows in
has one core), BENCH_micro.multicore.json with DR_THREADS=2. `--baseline
1core` / `--baseline multicore` select them by name relative to this script's
repository; any other value is taken as a path.

Benchmarks are keyed by (op, size). An op regresses when its current
value exceeds baseline * (1 + threshold); it improves symmetrically. Every
unit the schema carries is lower-is-better — "ns/op" timings and size
metrics like "bytes" (archive_bytes_per_sample) diff identically; records
without a unit field (older baselines) default to "ns/op". A unit mismatch
between baseline and current for the same (op, size) is an error.
Ops present in only one file are reported but never fail the run — the two
committed baselines intentionally cover different op sets (the multicore
baseline only tracks the thread-sensitive ops). Exit status is 1 when any
op regressed (0 with --warn-only, for noisy shared-runner environments
where the report matters but hard-failing on a 10% swing would be flaky).
"""

import argparse
import json
import os
import sys

NAMED_BASELINES = {
    "1core": "BENCH_micro.json",
    "multicore": "BENCH_micro.multicore.json",
}


def resolve_baseline(name):
    if name not in NAMED_BASELINES:
        return name  # a literal path
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return os.path.join(repo_root, NAMED_BASELINES[name])


def load(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "dynriver-bench-v1":
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    git = doc.get("git", "unknown")
    if git.endswith("-dirty"):
        print(f"warning: {path} was measured on a dirty tree (git {git}); "
              f"its numbers are not reproducible from any commit",
              file=sys.stderr)
    table = {}
    for rec in doc.get("benchmarks", []):
        table[(rec["op"], rec["size"])] = (
            float(rec["ns_per_op"]),
            rec.get("unit", "ns/op"),
        )
    return git, table


def fmt_value(value, unit):
    if unit != "ns/op":
        short = {"bytes": "B"}.get(unit, unit)
        return f"{value:10.3f} {short:>2}"
    if value >= 1e6:
        return f"{value / 1e6:10.2f} ms"
    if value >= 1e3:
        return f"{value / 1e3:10.2f} us"
    return f"{value:10.1f} ns"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+", metavar="JSON",
                        help="BASELINE.json CURRENT.json, or just "
                             "CURRENT.json with --baseline")
    parser.add_argument(
        "--baseline",
        metavar="NAME",
        help="named committed baseline ('1core' or 'multicore') or a path; "
             "replaces the positional BASELINE.json",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        metavar="FRAC",
        help="relative slowdown that counts as a regression (default 0.10)",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but always exit 0",
    )
    args = parser.parse_args()

    if args.baseline is not None:
        if len(args.files) != 1:
            parser.error("with --baseline, pass exactly one CURRENT.json")
        baseline_path = resolve_baseline(args.baseline)
        current_path = args.files[0]
    else:
        if len(args.files) != 2:
            parser.error("pass BASELINE.json CURRENT.json "
                         "(or CURRENT.json with --baseline)")
        baseline_path, current_path = args.files

    base_git, base = load(baseline_path)
    cur_git, cur = load(current_path)

    print(f"baseline: {baseline_path} (git {base_git})")
    print(f"current:  {current_path} (git {cur_git})")
    print(f"{'op':<28} {'size':>8} {'baseline':>13} {'current':>13} "
          f"{'ratio':>7}  verdict")
    print("-" * 86)

    regressions = []
    for key in sorted(base.keys() | cur.keys()):
        op, size = key
        b = base.get(key)
        c = cur.get(key)
        if b is None or c is None:
            status = "only in current" if b is None else "only in baseline"
            missing = "--"
            print(f"{op:<28} {size:>8} "
                  f"{fmt_value(*b) if b is not None else missing:>13} "
                  f"{fmt_value(*c) if c is not None else missing:>13} "
                  f"{'':>7}  {status}")
            continue
        (b_value, b_unit), (c_value, c_unit) = b, c
        if b_unit != c_unit:
            sys.exit(f"{op}@{size}: unit mismatch "
                     f"({b_unit!r} in baseline, {c_unit!r} in current)")
        ratio = c_value / b_value if b_value > 0 else float("inf")
        if ratio > 1.0 + args.threshold:
            verdict = f"REGRESSION (+{(ratio - 1) * 100:.1f}%)"
            regressions.append((op, size, ratio))
        elif ratio < 1.0 - args.threshold:
            verdict = f"improved ({(1 - ratio) * 100:.1f}%)"
        else:
            verdict = "ok"
        print(f"{op:<28} {size:>8} {fmt_value(b_value, b_unit):>13} "
              f"{fmt_value(c_value, c_unit):>13} "
              f"{ratio:>6.2f}x  {verdict}")

    print("-" * 86)
    if regressions:
        print(f"{len(regressions)} op(s) regressed beyond "
              f"{args.threshold * 100:.0f}%:")
        for op, size, ratio in regressions:
            print(f"  {op}@{size}: {ratio:.2f}x slower")
        return 0 if args.warn_only else 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
