#!/usr/bin/env python3
"""Repo-wide lint: the invariants the compilers cannot check.

Run from anywhere: `python3 scripts/lint.py [repo_root]`. Registered as the
tier-1 ctest `repo_lint`, so `ctest -L tier1` fails on a violation. Checks:

  1. cmake-strict-warnings  every add_library/add_executable target links
                            dynriver::build_flags (directly or through
                            dynriver_add_layer / dynriver_add_test), so no
                            new target silently opts out of -Wall...-Werror.
  2. seeded-rng             no rand()/srand()/std::random_device anywhere,
                            no default-constructed (unseeded) std::mt19937;
                            randomness flows through dynriver::Rng
                            (src/common/rng.hpp) or an explicit seed.
  3. checked-io             no statement-position ::fsync/::close/std::fclose
                            in src/ whose result is dropped, unless a nearby
                            comment says "best-effort" (the PR-6 durability
                            lesson: an ignored close can lose acknowledged
                            data).
  4. bench-clean-tree       committed BENCH_*.json at the repo root must be
                            stamped from a clean tree (git stamp not
                            "-dirty"): a baseline nobody can reproduce is
                            worse than none.
  5. annotated-locking      src/ uses common::Mutex/LockGuard/UniqueLock/
                            CondVar (common/thread_annotations.hpp), never
                            std::mutex & friends directly, so Clang's
                            thread-safety analysis sees every lock.
  6. tsan-supp-justified    every suppression in tsan.supp carries a comment
                            directly above it (the file is meant to stay
                            empty; see its header for the policy).
  7. fuzz-harness-registration
                            every fuzz/*_fuzz.cpp harness is listed in
                            fuzz/CMakeLists.txt (DYNRIVER_FUZZ_HARNESSES)
                            and scripts/fuzz_smoke.py (HARNESSES), and vice
                            versa — a harness nobody builds or runs is a
                            decoder nobody fuzzes.
  8. checked-size-arithmetic
                            the untrusted-byte decoder TUs do their length
                            math through common/checked.hpp: raw
                            `len * sizeof(T)` products and bare
                            `static_cast<std::size_t>` casts are banned
                            there (lines carrying `constexpr` or a
                            `checked::` call are the sanctioned spellings).
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

CXX_DIRS = ("src", "tests", "bench", "examples", "fuzz")
CXX_SUFFIXES = {".cpp", ".hpp", ".h", ".cc"}


def cxx_files(root: Path, dirs=CXX_DIRS):
    for d in dirs:
        base = root / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in CXX_SUFFIXES:
                yield path


def strip_line_comment(line: str) -> str:
    """Drop // comments (good enough: no URL-bearing code lines here)."""
    pos = line.find("//")
    return line if pos < 0 else line[:pos]


class Linter:
    def __init__(self, root: Path):
        self.root = root
        self.errors: list[str] = []

    def fail(self, path: Path, lineno: int, check: str, msg: str) -> None:
        rel = path.relative_to(self.root)
        self.errors.append(f"{rel}:{lineno}: [{check}] {msg}")

    # -- 1. every CMake target inherits the strict warning set ---------------

    def check_cmake_targets(self) -> None:
        for path in sorted(self.root.rglob("CMakeLists.txt")):
            if "build" in path.relative_to(self.root).parts:
                continue
            text = path.read_text()
            # First argument of each target-creating call, with the line it
            # appears on. ALIAS/INTERFACE/IMPORTED libraries carry no code.
            targets = []
            for m in re.finditer(
                    r"^\s*add_(?:library|executable)\s*\(\s*([^\s)]+)([^)]*)\)",
                    text, re.MULTILINE | re.DOTALL):
                rest = m.group(2)
                if re.search(r"\b(ALIAS|INTERFACE|IMPORTED)\b", rest):
                    continue
                targets.append((m.group(1), text.count("\n", 0, m.start()) + 1))
            for name, lineno in targets:
                pattern = (r"target_link_libraries\s*\(\s*"
                           + re.escape(name) + r"[\s)]")
                linked = False
                for m in re.finditer(pattern, text):
                    close = text.find(")", m.end())
                    if "dynriver::build_flags" in text[m.start():close]:
                        linked = True
                        break
                if not linked:
                    self.fail(path, lineno, "cmake-strict-warnings",
                              f"target '{name}' does not link "
                              "dynriver::build_flags (strict warning set)")

    # -- 2. seeded, explicit randomness only ---------------------------------

    def check_rng(self) -> None:
        rng_home = self.root / "src" / "common" / "rng.hpp"
        banned = [
            (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand()"),
            (re.compile(r"std::random_device"), "std::random_device"),
            (re.compile(r"std::mt19937(?:_64)?\s+\w+\s*;"),
             "default-constructed (unseeded) std::mt19937"),
        ]
        for path in cxx_files(self.root):
            if path == rng_home:
                continue
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                code = strip_line_comment(line)
                for pattern, what in banned:
                    if pattern.search(code):
                        self.fail(path, lineno, "seeded-rng",
                                  f"{what}: use dynriver::Rng "
                                  "(src/common/rng.hpp) or an explicit seed")

    # -- 3. fsync/close results are checked in src/ --------------------------

    def check_unchecked_io(self) -> None:
        call = re.compile(r"^\s*(?:::fsync|::close|std::fclose)\s*\(")
        for path in cxx_files(self.root, dirs=("src",)):
            lines = path.read_text().splitlines()
            for lineno, line in enumerate(lines, 1):
                if not call.match(line):
                    continue
                context = lines[max(0, lineno - 4):lineno]
                if any("best-effort" in c.lower() for c in context):
                    continue
                self.fail(path, lineno, "checked-io",
                          "result of fsync/close/fclose dropped: check it, "
                          'or mark the site with a "best-effort" comment '
                          "explaining why failure is tolerable here")

    # -- 4. committed bench baselines come from a clean tree -----------------

    def check_bench_stamps(self) -> None:
        for path in sorted(self.root.glob("BENCH_*.json")):
            try:
                stamp = json.loads(path.read_text()).get("git", "")
            except (json.JSONDecodeError, OSError) as err:
                self.fail(path, 1, "bench-clean-tree", f"unreadable: {err}")
                continue
            if stamp.endswith("-dirty"):
                self.fail(path, 1, "bench-clean-tree",
                          f"baseline stamped from a dirty tree ({stamp}); "
                          "commit first, then re-run the bench")

    # -- 5. src/ locks through the annotated primitives ----------------------

    def check_locking(self) -> None:
        home = self.root / "src" / "common" / "thread_annotations.hpp"
        banned = re.compile(
            r"std::(?:mutex|shared_mutex|recursive_mutex|timed_mutex"
            r"|lock_guard|unique_lock|scoped_lock|shared_lock"
            r"|condition_variable(?:_any)?)\b"
            r"|#include\s*<(?:mutex|shared_mutex|condition_variable)>")
        for path in cxx_files(self.root, dirs=("src",)):
            if path == home:
                continue
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                if banned.search(strip_line_comment(line)):
                    self.fail(path, lineno, "annotated-locking",
                              "raw std locking primitive in src/: use "
                              "common::Mutex/LockGuard/UniqueLock/CondVar "
                              "(common/thread_annotations.hpp) so the "
                              "thread-safety analysis sees this lock")

    # -- 6. tsan.supp entries are justified ----------------------------------

    def check_tsan_supp(self) -> None:
        path = self.root / "tsan.supp"
        if not path.is_file():
            return
        lines = path.read_text().splitlines()
        for lineno, line in enumerate(lines, 1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            prev = lines[lineno - 2].strip() if lineno >= 2 else ""
            if not prev.startswith("#"):
                self.fail(path, lineno, "tsan-supp-justified",
                          "suppression without a justification comment "
                          "directly above it (see the policy header)")

    # -- 7. every fuzz harness is built and smoked ---------------------------

    def check_fuzz_registration(self) -> None:
        fuzz_dir = self.root / "fuzz"
        cmake = fuzz_dir / "CMakeLists.txt"
        smoke = self.root / "scripts" / "fuzz_smoke.py"
        if not fuzz_dir.is_dir():
            return
        harnesses = {p.name[:-len("_fuzz.cpp")]: p
                     for p in sorted(fuzz_dir.glob("*_fuzz.cpp"))}

        def registered(path: Path, list_re: str) -> set[str]:
            if not path.is_file():
                self.fail(path, 1, "fuzz-harness-registration",
                          "missing (fuzz/ harnesses have nowhere to "
                          "register)")
                return set()
            m = re.search(list_re, path.read_text(), re.DOTALL)
            if not m:
                self.fail(path, 1, "fuzz-harness-registration",
                          "harness list not found")
                return set()
            return set(re.findall(r"[\w]+", m.group(1))) - {""}

        in_cmake = registered(
            cmake, r"set\s*\(\s*DYNRIVER_FUZZ_HARNESSES\s*([^)]*)\)")
        in_smoke = registered(smoke, r"HARNESSES\s*=\s*\[([^\]]*)\]")
        for name, path in harnesses.items():
            if in_cmake and name not in in_cmake:
                self.fail(path, 1, "fuzz-harness-registration",
                          f"harness '{name}' not in fuzz/CMakeLists.txt "
                          "DYNRIVER_FUZZ_HARNESSES (it will never build)")
            if in_smoke and name not in in_smoke:
                self.fail(path, 1, "fuzz-harness-registration",
                          f"harness '{name}' not in scripts/fuzz_smoke.py "
                          "HARNESSES (CI will never fuzz it)")
        for name in sorted((in_cmake | in_smoke) - set(harnesses)):
            where = cmake if name in in_cmake else smoke
            self.fail(where, 1, "fuzz-harness-registration",
                      f"registered harness '{name}' has no "
                      f"fuzz/{name}_fuzz.cpp")

    # -- 8. decoder TUs use overflow-checked size arithmetic ------------------

    # The parsers that turn attacker-controlled length fields into sizes.
    DECODER_FILES = (
        "src/river/wire.cpp",
        "src/river/bitpack.hpp",
        "src/river/segment_store.cpp",
        "src/river/record_log.cpp",
        "src/dsp/wav.cpp",
    )

    def check_size_arithmetic(self) -> None:
        banned = [
            (re.compile(r"\*\s*sizeof\s*\("), "raw `x * sizeof(T)` product"),
            (re.compile(r"sizeof\s*\([^)]*\)\s*\*", ),
             "raw `sizeof(T) * x` product"),
            (re.compile(r"static_cast<\s*std::size_t\s*>\s*\("),
             "bare static_cast<std::size_t> of a length"),
        ]
        for rel in self.DECODER_FILES:
            path = self.root / rel
            if not path.is_file():
                self.fail(path, 1, "checked-size-arithmetic",
                          "decoder file listed in lint.py no longer exists; "
                          "update DECODER_FILES")
                continue
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                code = strip_line_comment(line)
                # Sanctioned spellings: compile-time tables, and sizes that
                # already flow through a checked:: helper on this line.
                if "constexpr" in code or "checked::" in code:
                    continue
                for pattern, what in banned:
                    if pattern.search(code):
                        self.fail(path, lineno, "checked-size-arithmetic",
                                  f"{what} in an untrusted-byte decoder: "
                                  "route it through common/checked.hpp "
                                  "(checked::add/mul/narrow)")

    def run(self) -> int:
        self.check_cmake_targets()
        self.check_rng()
        self.check_unchecked_io()
        self.check_bench_stamps()
        self.check_locking()
        self.check_tsan_supp()
        self.check_fuzz_registration()
        self.check_size_arithmetic()
        for err in self.errors:
            print(err, file=sys.stderr)
        if self.errors:
            print(f"lint: {len(self.errors)} violation(s)", file=sys.stderr)
            return 1
        print("lint: clean")
        return 0


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        __file__).resolve().parent.parent
    return Linter(root.resolve()).run()


if __name__ == "__main__":
    sys.exit(main())
