#!/usr/bin/env python3
"""Gate line coverage of the untrusted-byte decoder TUs with llvm-cov.

Drives the `coverage` CMake preset's tree (Clang,
-fprofile-instr-generate -fcoverage-mapping):

  1. runs the tier-1 ctest suites with LLVM_PROFILE_FILE pointed at a
     scratch directory (this includes the fuzz_regression_* corpus replays,
     so committed findings count toward decoder coverage),
  2. merges the .profraw files with llvm-profdata,
  3. exports per-file line summaries with llvm-cov over every test and fuzz
     binary in the tree,
  4. fails if any decoder file is below --threshold percent line coverage.

The gated files are exactly the ones scripts/lint.py holds to the
checked-size-arithmetic rule: the parsers where a missed branch is a missed
hostile-input case, not a style gap.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
from pathlib import Path

DECODER_FILES = [
    "src/river/wire.cpp",
    "src/river/bitpack.hpp",
    "src/river/segment_store.cpp",
    "src/river/record_log.cpp",
    "src/dsp/wav.cpp",
]


def tool(name: str) -> str:
    for candidate in (name, f"{name}-19", f"{name}-18", f"{name}-17",
                      f"{name}-16", f"{name}-15", f"{name}-14"):
        if shutil.which(candidate):
            return candidate
    print(f"error: {name} not found on PATH", file=sys.stderr)
    raise SystemExit(2)


def binaries(build_dir: Path) -> list[Path]:
    out = []
    for sub in ("tests", "fuzz"):
        base = build_dir / sub
        if not base.is_dir():
            continue
        for path in sorted(base.iterdir()):
            if path.is_file() and path.stat().st_mode & 0o111:
                out.append(path)
    return out


def main() -> int:
    repo = Path(__file__).resolve().parent.parent
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", type=Path,
                        default=repo / "build" / "coverage")
    parser.add_argument("--threshold", type=float, default=80.0,
                        help="minimum line coverage percent per decoder file")
    parser.add_argument("--skip-tests", action="store_true",
                        help="reuse existing .profraw files instead of "
                             "re-running ctest")
    args = parser.parse_args()

    profile_dir = args.build_dir / "profiles"
    if not args.skip_tests:
        shutil.rmtree(profile_dir, ignore_errors=True)
        profile_dir.mkdir(parents=True)
        env = dict(os.environ)
        env["LLVM_PROFILE_FILE"] = f"{profile_dir}/%p-%m.profraw"
        ctest = subprocess.run(
            ["ctest", "--test-dir", str(args.build_dir), "-L", "tier1",
             "--output-on-failure"], env=env)
        if ctest.returncode != 0:
            print("error: tier-1 tests failed; coverage not evaluated",
                  file=sys.stderr)
            return 1

    profraws = sorted(profile_dir.glob("*.profraw"))
    if not profraws:
        print(f"error: no .profraw files under {profile_dir}", file=sys.stderr)
        return 1

    merged = args.build_dir / "decoders.profdata"
    subprocess.run([tool("llvm-profdata"), "merge", "-sparse",
                    *map(str, profraws), "-o", str(merged)], check=True)

    objects: list[str] = []
    for path in binaries(args.build_dir):
        objects += ["-object", str(path)]
    export = subprocess.run(
        [tool("llvm-cov"), "export", "-summary-only",
         f"-instr-profile={merged}", *objects,
         *(str(repo / f) for f in DECODER_FILES)],
        stdout=subprocess.PIPE, check=True, text=True)
    summary = json.loads(export.stdout)

    by_file = {}
    for entry in summary["data"][0]["files"]:
        lines = entry["summary"]["lines"]
        by_file[entry["filename"]] = (lines["covered"], lines["count"])

    failures = 0
    print(f"{'decoder file':<34} {'lines':>11} {'coverage':>9}")
    for rel in DECODER_FILES:
        hit = next((v for k, v in by_file.items() if k.endswith(rel)), None)
        if hit is None or hit[1] == 0:
            print(f"{rel:<34} {'—':>11} {'none':>9}")
            failures += 1
            continue
        covered, count = hit
        pct = 100.0 * covered / count
        flag = "" if pct >= args.threshold else "  << below threshold"
        if pct < args.threshold:
            failures += 1
        print(f"{rel:<34} {covered:>5}/{count:<5} {pct:>8.1f}%{flag}")

    if failures:
        print(f"decode coverage: {failures} file(s) below "
              f"{args.threshold:g}% line coverage", file=sys.stderr)
        return 1
    print(f"decode coverage: all decoder files at or above "
          f"{args.threshold:g}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
