#!/usr/bin/env python3
"""CI fuzz smoke: run every harness for a bounded budget, fail on findings.

Two phases per harness, against the committed corpus in fuzz/corpus/<name>:

  1. replay   — `fuzz_<name> -runs=0 <corpus>`: every committed regression
                input (golden seeds plus past findings) must run clean.
  2. fuzz     — `fuzz_<name> <scratch> <corpus> -max_total_time=<budget>`:
                a short coverage-guided session under ASan+UBSan (the
                `fuzzer` CMake preset). Any crash/leak/UB aborts the run and
                the triggering input lands in --artifacts for triage; commit
                it to fuzz/corpus/<name> once the bug is fixed.

The replay phase also works against the standalone-driver binaries every
other preset builds (the driver ignores libFuzzer flags), so
`fuzz_smoke.py --replay-only` is usable on GCC/Release trees; pass
--driver-mutate N there to add the driver's deterministic mutation sweep.

Every harness below must exist as fuzz/<name>_fuzz.cpp and vice versa — the
repo lint (fuzz-harness-registration) cross-checks this list against the
fuzz/ directory and fuzz/CMakeLists.txt.
"""

from __future__ import annotations

import argparse
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

HARNESSES = [
    "wire_decode",
    "bitpack",
    "segment_open",
    "record_log_scan",
    "wav",
    "attrs",
]

# Make every sanitizer finding fatal and symbolized. -fno-sanitize-recover
# in the build already halts on UB; these cover the runtime-configurable
# side (leaks are findings too: a decoder that leaks on hostile input is a
# remote memory exhaustion primitive).
SAN_ENV = {
    "ASAN_OPTIONS": "abort_on_error=1:detect_leaks=1:allocator_may_return_null=0",
    "UBSAN_OPTIONS": "halt_on_error=1:print_stacktrace=1",
}


def run(cmd: list[str], timeout: float) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env.update(SAN_ENV)
    return subprocess.run(
        cmd, env=env, timeout=timeout,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)


def main() -> int:
    repo = Path(__file__).resolve().parent.parent
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", type=Path,
                        default=repo / "build" / "fuzzer",
                        help="tree holding the fuzz_* binaries")
    parser.add_argument("--budget", type=float, default=30.0,
                        help="seconds of coverage-guided fuzzing per harness")
    parser.add_argument("--replay-only", action="store_true",
                        help="corpus replay only (works without libFuzzer)")
    parser.add_argument("--driver-mutate", type=int, default=0, metavar="N",
                        help="with standalone-driver binaries: N deterministic"
                             " mutation rounds per seed after the replay")
    parser.add_argument("--artifacts", type=Path,
                        default=repo / "build" / "fuzz-artifacts",
                        help="where crashing inputs are saved")
    args = parser.parse_args()

    args.artifacts.mkdir(parents=True, exist_ok=True)
    failures: list[str] = []

    for harness in HARNESSES:
        binary = args.build_dir / "fuzz" / f"fuzz_{harness}"
        corpus = repo / "fuzz" / "corpus" / harness
        if not binary.is_file():
            failures.append(f"{harness}: missing binary {binary}")
            continue
        if not corpus.is_dir():
            failures.append(f"{harness}: missing committed corpus {corpus}")
            continue

        replay = [str(binary), "-runs=0", str(corpus)]
        if args.driver_mutate > 0:
            replay.insert(1, f"--mutate={args.driver_mutate}")
        # Generous wall clamp: replay is I/O bound, not budget bound.
        proc = run(replay, timeout=max(120.0, 10.0 * args.budget))
        if proc.returncode != 0:
            failures.append(f"{harness}: corpus replay failed "
                            f"(exit {proc.returncode})\n{proc.stdout[-2000:]}")
            continue
        print(f"{harness}: replay clean")

        if args.replay_only:
            continue

        scratch = Path(tempfile.mkdtemp(prefix=f"fuzz_{harness}_"))
        try:
            proc = run([
                str(binary), str(scratch), str(corpus),
                f"-max_total_time={args.budget:g}",
                f"-artifact_prefix={args.artifacts}/{harness}-",
                "-print_final_stats=1",
            ], timeout=10.0 * args.budget + 120.0)
            if proc.returncode != 0:
                failures.append(
                    f"{harness}: fuzzing found a bug (exit "
                    f"{proc.returncode}); triggering input saved under "
                    f"{args.artifacts}\n{proc.stdout[-4000:]}")
            else:
                stats = [l for l in proc.stdout.splitlines()
                         if "stat::" in l or "cov:" in l]
                print(f"{harness}: {args.budget:g}s fuzz clean "
                      f"({stats[-1].strip() if stats else 'no stats'})")
        finally:
            shutil.rmtree(scratch, ignore_errors=True)

    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    if failures:
        print(f"fuzz smoke: {len(failures)} failure(s)", file=sys.stderr)
        return 1
    print("fuzz smoke: all harnesses clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
