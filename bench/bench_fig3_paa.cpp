// Figure 3 reproduction: the Figure 2 spectrogram after converting each
// spectrogram column (frequency vector) to PAA representation.
//
// The paper's point: despite smoothing and 10x reduction, the PAA
// spectrogram remains visually similar -- the same vocalization structure is
// recognizable. We render both and quantify the similarity (correlation
// between the original column and its PAA reconstruction).
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "dsp/spectrogram.hpp"
#include "synth/station.hpp"
#include "ts/paa.hpp"

namespace bench = dynriver::bench;
namespace dsp = dynriver::dsp;
namespace synth = dynriver::synth;
namespace ts = dynriver::ts;

int main() {
  bench::print_header(
      "Figure 3: spectrogram after conversion to PAA representation");

  synth::StationParams params;
  synth::SensorStation station(params, 2024);  // same clip as Figure 2
  const auto rec = station.record_clip(
      {synth::SpeciesId::kNOCA, synth::SpeciesId::kRWBL,
       synth::SpeciesId::kBCCH});

  dsp::SpectrogramParams sp;
  sp.frame_size = 900;
  sp.hop = 450;
  sp.sample_rate = params.sample_rate;
  const auto spec = dsp::stft(rec.clip.samples, sp);

  // Apply PAA to the frequency data of each spectrogram column (paper: "this
  // spectrogram was constructed by applying PAA to the frequency data
  // comprising each column").
  constexpr std::size_t kFactor = 10;
  dsp::Spectrogram paa_spec = spec;
  double corr_acc = 0.0;
  for (auto& frame : paa_spec.frames) {
    const auto reduced = ts::paa_reduce_by(frame, kFactor);
    const auto reconstructed = ts::paa_inverse(reduced, frame.size());
    // Column similarity: Pearson correlation original vs reconstruction.
    double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
    const auto n = static_cast<double>(frame.size());
    for (std::size_t k = 0; k < frame.size(); ++k) {
      sx += frame[k];
      sy += reconstructed[k];
      sxx += static_cast<double>(frame[k]) * frame[k];
      syy += static_cast<double>(reconstructed[k]) * reconstructed[k];
      sxy += static_cast<double>(frame[k]) * reconstructed[k];
    }
    const double denom =
        std::sqrt((sxx - sx * sx / n) * (syy - sy * sy / n)) + 1e-12;
    corr_acc += (sxy - sx * sy / n) / denom;
    frame = reduced;
  }
  const double mean_corr = corr_acc / static_cast<double>(spec.num_frames());

  std::printf("Original spectrogram: %zu frames x %zu bins\n", spec.num_frames(),
              spec.num_bins());
  std::printf("PAA spectrogram:      %zu frames x %zu bins (factor %zu)\n\n",
              paa_spec.num_frames(), paa_spec.num_bins(), kFactor);

  std::printf("Original:\n%s\n",
              dsp::ascii_spectrogram(spec, 100, 20).c_str());
  std::printf("PAA-reduced (stretched vertically for clarity, like Fig. 3):\n%s",
              dsp::ascii_spectrogram(paa_spec, 100, 20).c_str());

  std::printf(
      "\nMean column correlation between original and PAA reconstruction: "
      "%.3f\n",
      mean_corr);
  // Per-column correlation punishes sharp tonal peaks smeared by the x10
  // averaging, so even a visually faithful PAA spectrogram sits around 0.7.
  const bool ok = mean_corr > 0.6 && paa_spec.num_bins() == 46;
  std::printf("Shape check: PAA preserves spectral structure (corr > 0.6): %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
