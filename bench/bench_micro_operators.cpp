// Ablation A5: micro-benchmarks of the individual substrate operations,
// using google-benchmark. Covers the DFT (planned vs legacy unplanned vs
// naive), SAX anomaly scoring, the trigger, full-clip extraction (single-
// and multi-stream, serial and threaded), feature extraction, MESO
// training/query, wire encode/decode, and channel throughput.
//
// In addition to the google-benchmark cases, main() runs a small adaptive
// timing sweep over the spectral hot path and writes the results as
// machine-readable JSON (default BENCH_micro.json; override with
// DR_MICRO_JSON, shrink the per-op budget with DR_MICRO_MIN_MS — the CI
// bench-smoke step uses DR_MICRO_MIN_MS=2). Set DR_MICRO_SKIP_GBENCH=1 to
// skip the google-benchmark section and only produce the JSON.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <random>
#include <span>

#include "bench_util.hpp"
#include "core/extractor.hpp"
#include "core/features.hpp"
#include "core/multistream.hpp"
#include "core/session_scheduler.hpp"
#include "core/spectral_engine.hpp"
#include "core/stream_session.hpp"
#include "dsp/fft.hpp"
#include "dsp/fft_plan.hpp"
#include "dsp/simd.hpp"
#include "dsp/spectrogram.hpp"
#include "meso/classifier.hpp"
#include "river/channel.hpp"
#include "river/sample_io.hpp"
#include "river/segment_store.hpp"
#include "river/wire.hpp"
#include "ts/anomaly.hpp"
#include "synth/station.hpp"
#include "ts/anomaly.hpp"

namespace bench = dynriver::bench;
namespace core = dynriver::core;
namespace dsp = dynriver::dsp;
namespace meso = dynriver::meso;
namespace river = dynriver::river;
namespace synth = dynriver::synth;
namespace ts = dynriver::ts;

namespace {

std::vector<float> random_signal(std::size_t n, unsigned seed) {
  std::mt19937 gen(seed);
  std::normal_distribution<float> dist(0.0F, 0.3F);
  std::vector<float> out(n);
  for (auto& v : out) v = dist(gen);
  return out;
}

const synth::ClipRecording& cached_clip() {
  static const synth::ClipRecording clip = [] {
    synth::StationParams sp;
    synth::SensorStation station(sp, 31415);
    return station.record_clip(
        {synth::SpeciesId::kNOCA, synth::SpeciesId::kBCCH});
  }();
  return clip;
}

/// A second channel for the multi-stream benches: the cached clip with a
/// slight gain/noise perturbation, like a second microphone of one station.
const std::vector<float>& cached_second_channel() {
  static const std::vector<float> channel = [] {
    const auto& base = cached_clip().clip.samples;
    std::mt19937 gen(2718);
    std::normal_distribution<float> noise(0.0F, 0.002F);
    std::vector<float> out(base.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
      out[i] = 0.9F * base[i] + noise(gen);
    }
    return out;
  }();
  return channel;
}

std::vector<dsp::Cplx> random_cplx(std::size_t n, unsigned seed) {
  std::mt19937 gen(seed);
  std::normal_distribution<double> dist(0.0, 0.5);
  std::vector<dsp::Cplx> out(n);
  for (auto& v : out) v = dsp::Cplx(dist(gen), dist(gen));
  return out;
}

// -- DFT -----------------------------------------------------------------

void BM_FftRadix2_1024(benchmark::State& state) {
  std::vector<dsp::Cplx> data(1024, {0.5, -0.25});
  for (auto _ : state) {
    auto copy = data;
    dsp::fft_radix2(copy, false);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_FftRadix2_1024);

// Legacy unplanned path: per-call twiddles, chirp, and scratch.
void BM_FftUnplanned_900(benchmark::State& state) {
  std::vector<dsp::Cplx> data(900, {0.5, -0.25});
  for (auto _ : state) {
    auto out = dsp::fft_unplanned(data);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_FftUnplanned_900);

// Planned path: precomputed tables + reusable scratch via the plan cache.
void BM_FftPlanned_900(benchmark::State& state) {
  std::vector<dsp::Cplx> data(900, {0.5, -0.25});
  std::vector<dsp::Cplx> out(900);
  dsp::FftPlan& plan = dsp::local_plan_cache().get(900);
  for (auto _ : state) {
    plan.forward(data, out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_FftPlanned_900);

void BM_FftPlanned_1024(benchmark::State& state) {
  std::vector<dsp::Cplx> data(1024, {0.5, -0.25});
  std::vector<dsp::Cplx> out(1024);
  dsp::FftPlan& plan = dsp::local_plan_cache().get(1024);
  for (auto _ : state) {
    plan.forward(data, out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_FftPlanned_1024);

// Real-input fast path: packed half-size complex transform + Hermitian
// unpack, vs the full complex transforms above.
void BM_FftRealPlanned_900(benchmark::State& state) {
  std::vector<float> signal(900, 0.25F);
  std::vector<dsp::Cplx> out(900);
  dsp::FftPlan& plan = dsp::local_plan_cache().get(900);
  for (auto _ : state) {
    plan.forward_real(signal, out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_FftRealPlanned_900);

void BM_FftRealPlanned_1024(benchmark::State& state) {
  std::vector<float> signal(1024, 0.25F);
  std::vector<dsp::Cplx> out(1024);
  dsp::FftPlan& plan = dsp::local_plan_cache().get(1024);
  for (auto _ : state) {
    plan.forward_real(signal, out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_FftRealPlanned_1024);

// Batched windowed magnitudes (64 records of 900) through the engine.
void BM_WindowedMagsBatch64(benchmark::State& state) {
  const core::SpectralEngine engine(dynriver::dsp::WindowKind::kWelch, 900);
  const auto records = random_signal(64 * 900, 29);
  std::vector<float> out;
  for (auto _ : state) {
    engine.windowed_magnitudes_batch(records, 900, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_WindowedMagsBatch64);

void BM_DftNaive_900(benchmark::State& state) {
  std::vector<dsp::Cplx> data(900, {0.5, -0.25});
  for (auto _ : state) {
    auto out = dsp::dft_naive(data);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_DftNaive_900);

// -- SAX anomaly scoring ----------------------------------------------------

void BM_AnomalyScorer_PerSample(benchmark::State& state) {
  const auto signal = random_signal(1 << 16, 7);
  ts::AnomalyParams params;
  params.frame = static_cast<std::size_t>(state.range(0));
  ts::StreamingAnomalyScorer scorer(params);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scorer.push(signal[i]));
    i = (i + 1) & 0xFFFF;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AnomalyScorer_PerSample)->Arg(1)->Arg(24);

// -- Extraction / features ----------------------------------------------------

void BM_ExtractClip30s(benchmark::State& state) {
  const core::EnsembleExtractor extractor{core::PipelineParams{}};
  const auto& clip = cached_clip();
  for (auto _ : state) {
    auto result = extractor.extract(clip.clip.samples);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(clip.clip.samples.size()));
}
BENCHMARK(BM_ExtractClip30s)->Unit(benchmark::kMillisecond);

// Two-channel extraction; Arg = score_threads (1 = serial, 0 = shared pool).
void BM_MultiStreamExtract2ch(benchmark::State& state) {
  core::MultiStreamParams params;
  params.score_threads = static_cast<std::size_t>(state.range(0));
  const core::MultiStreamExtractor extractor(params);
  const auto& a = cached_clip().clip.samples;
  const auto& b = cached_second_channel();
  const std::vector<std::span<const float>> streams = {a, b};
  for (auto _ : state) {
    auto result = extractor.extract(streams);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * a.size()));
}
BENCHMARK(BM_MultiStreamExtract2ch)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

// Steady-state streaming ingest: one second of the cached clip pushed
// through a warmed StreamSession in record-size chunks (taps off, ensembles
// drained). Compare against BM_ExtractClip30s / 30 for the batch cost.
void BM_StreamPushOneSecond(benchmark::State& state) {
  const core::PipelineParams params;
  core::StreamSession session{params};
  const auto& clip = cached_clip().clip.samples;
  const std::size_t second = static_cast<std::size_t>(params.sample_rate);
  // Warm the scorer/trigger baselines so iterations measure steady state.
  session.push(std::span<const float>(clip.data(), second));
  (void)session.drain();

  std::size_t pos = second;
  for (auto _ : state) {
    for (std::size_t off = 0; off < second; off += params.record_size) {
      const std::size_t n = std::min(params.record_size, second - off);
      session.push(std::span<const float>(clip.data() + pos + off, n));
    }
    benchmark::DoNotOptimize(session.drain());
    pos += second;
    if (pos + second > clip.size()) pos = 0;  // wrap over the 30 s clip
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(second));
}
BENCHMARK(BM_StreamPushOneSecond)->Unit(benchmark::kMillisecond);

void BM_FeatureExtractOneSecond(benchmark::State& state) {
  core::PipelineParams pp;
  pp.use_paa = state.range(0) != 0;
  const core::FeatureExtractor fx(pp);
  const auto ensemble = random_signal(21600, 11);
  for (auto _ : state) {
    auto patterns = fx.patterns(ensemble);
    benchmark::DoNotOptimize(patterns);
  }
}
BENCHMARK(BM_FeatureExtractOneSecond)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// -- MESO ------------------------------------------------------------------------

void BM_MesoTrain105d(benchmark::State& state) {
  std::mt19937 gen(3);
  std::normal_distribution<float> dist(0.0F, 1.0F);
  std::vector<std::vector<float>> patterns(512);
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    patterns[i].resize(105);
    for (auto& v : patterns[i]) v = dist(gen) + static_cast<float>(i % 10);
  }
  for (auto _ : state) {
    meso::MesoClassifier clf;
    for (std::size_t i = 0; i < patterns.size(); ++i) {
      clf.train(patterns[i], static_cast<meso::Label>(i % 10));
    }
    benchmark::DoNotOptimize(clf);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(patterns.size()));
}
BENCHMARK(BM_MesoTrain105d)->Unit(benchmark::kMillisecond);

void BM_MesoQuery105d(benchmark::State& state) {
  std::mt19937 gen(5);
  std::normal_distribution<float> dist(0.0F, 1.0F);
  meso::MesoClassifier clf;
  std::vector<float> pattern(105);
  for (int i = 0; i < 1024; ++i) {
    for (auto& v : pattern) v = dist(gen) + static_cast<float>(i % 10);
    clf.train(pattern, i % 10);
  }
  for (auto& v : pattern) v = dist(gen);
  for (auto _ : state) {
    benchmark::DoNotOptimize(clf.classify(pattern));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MesoQuery105d);

// -- Wire / channels ----------------------------------------------------------------

void BM_WireEncodeDecode900f(benchmark::State& state) {
  const auto rec =
      river::Record::data(river::kSubtypeAudio, river::FloatVec(900, 0.5F));
  for (auto _ : state) {
    const auto frame = river::encode_record(rec);
    auto decoded = river::decode_record(frame);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(900 * sizeof(float)));
}
BENCHMARK(BM_WireEncodeDecode900f);

void BM_ChannelSendRecv(benchmark::State& state) {
  river::InProcessChannel ch(1024);
  const auto rec =
      river::Record::data(river::kSubtypeAudio, river::FloatVec(900, 0.5F));
  river::Record out;
  for (auto _ : state) {
    ch.send(rec);
    benchmark::DoNotOptimize(ch.recv(out));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChannelSendRecv);

// -- JSON sweep (machine-readable perf trajectory) ---------------------------

void run_json_sweep() {
  const double min_ms = bench::env_double("DR_MICRO_MIN_MS", 50.0);
  const char* json_env = std::getenv("DR_MICRO_JSON");
  const std::string json_path = json_env != nullptr ? json_env : "BENCH_micro.json";

  bench::BenchJsonWriter json;
  const auto record = [&](const char* op, std::size_t size, auto&& fn) {
    std::size_t reps = 0;
    const double ns = bench::measure_ns_per_op(fn, min_ms, &reps);
    json.add(op, size, ns, reps);
    std::printf("  %-28s n=%-8zu %12.1f ns/op  (%zu reps)\n", op, size, ns, reps);
    return ns;
  };

  bench::print_header("micro JSON sweep (BENCH_micro.json)");

  // Planned vs legacy FFT on the pipeline's Bluestein size (900), a prime
  // (257), and a power of two (1024). The plan is fetched once per size
  // from the thread-local cache, like every production call site.
  double planned_900 = 0.0;
  double planned_1024 = 0.0;
  double unplanned_900 = 0.0;
  for (const std::size_t n : {std::size_t{900}, std::size_t{257}, std::size_t{1024}}) {
    const auto input = random_cplx(n, static_cast<unsigned>(n));
    std::vector<dsp::Cplx> out(n);
    dsp::FftPlan& plan = dsp::local_plan_cache().get(n);
    const double planned = record("fft_planned", n, [&] {
      plan.forward(input, out);
      benchmark::DoNotOptimize(out);
    });
    const double unplanned = record("fft_unplanned", n, [&] {
      auto spec = dsp::fft_unplanned(input);
      benchmark::DoNotOptimize(spec);
    });
    if (n == 900) {
      planned_900 = planned;
      unplanned_900 = unplanned;
    }
    if (n == 1024) planned_1024 = planned;
  }

  // Real-input fast path (packed half-size transform) vs the complex
  // planned path at the pipeline sizes: fft_real_planned/fft_planned is the
  // real-FFT speedup.
  double real_900 = 0.0;
  double real_1024 = 0.0;
  for (const std::size_t n : {std::size_t{900}, std::size_t{1024}}) {
    const auto signal = random_signal(n, static_cast<unsigned>(n) + 1);
    std::vector<dsp::Cplx> spec(n);
    std::vector<float> mags(n);
    dsp::FftPlan& plan = dsp::local_plan_cache().get(n);
    const double real_ns = record("fft_real_planned", n, [&] {
      plan.forward_real(signal, spec);
      benchmark::DoNotOptimize(spec);
    });
    record("magnitudes_planned", n, [&] {
      plan.magnitudes(signal, mags);
      benchmark::DoNotOptimize(mags);
    });
    (n == 900 ? real_900 : real_1024) = real_ns;
  }

  // Batched vs per-record windowed magnitudes through the engine (64
  // record-size records, the FeatureExtractor hot loop). ns/op covers the
  // whole 64-record batch.
  {
    constexpr std::size_t kRecords = 64;
    constexpr std::size_t kRecordLen = 900;
    const core::SpectralEngine engine(dsp::WindowKind::kWelch, kRecordLen);
    const auto records = random_signal(kRecords * kRecordLen, 29);
    std::vector<float> out;
    record("windowed_mags_single64", kRecords * kRecordLen, [&] {
      for (std::size_t r = 0; r < kRecords; ++r) {
        engine.windowed_magnitudes(
            std::span<const float>(records.data() + r * kRecordLen, kRecordLen),
            out);
        benchmark::DoNotOptimize(out);
      }
    });
    record("windowed_mags_batch64", kRecords * kRecordLen, [&] {
      engine.windowed_magnitudes_batch(records, kRecordLen, out);
      benchmark::DoNotOptimize(out);
    });
  }

  // Spectrogram of one second of audio through the shared plan + scratch.
  {
    const auto signal = random_signal(21600, 23);
    record("stft_1s", signal.size(), [&] {
      auto spec = dsp::stft(signal, dsp::SpectrogramParams{});
      benchmark::DoNotOptimize(spec);
    });
  }

  // Feature extraction of one second (the dft-per-record hot path).
  {
    const core::FeatureExtractor fx{core::PipelineParams{}};
    const auto ensemble = random_signal(21600, 11);
    record("feature_patterns_1s", ensemble.size(), [&] {
      auto patterns = fx.patterns(ensemble);
      benchmark::DoNotOptimize(patterns);
    });
  }

  // The SAX anomaly scorer alone, one second of audio: the per-sample
  // streaming automaton vs the record-granular batch path (bit-identical
  // outputs; the spread is what the dsp::simd energy fold + run-smoothed
  // moving average buy before any trigger/cutter work).
  {
    const auto signal = random_signal(21600, 31);
    const ts::AnomalyParams aparams = core::PipelineParams{}.anomaly;
    std::vector<double> scores(signal.size());
    {
      ts::StreamingAnomalyScorer scorer(aparams);
      record("scorer_stream_1s", signal.size(), [&] {
        scorer.reset();
        for (std::size_t i = 0; i < signal.size(); ++i) {
          scores[i] = scorer.push(signal[i]);
        }
        benchmark::DoNotOptimize(scores);
      });
    }
    {
      ts::StreamingAnomalyScorer scorer(aparams);
      record("scorer_batch_1s", signal.size(), [&] {
        scorer.reset();
        scorer.push_batch(signal.data(), signal.size(), scores.data());
        benchmark::DoNotOptimize(scores);
      });
    }
  }

  // Full-clip extraction, then 2-channel serial vs threaded scoring.
  {
    const auto& clip = cached_clip().clip.samples;
    const core::EnsembleExtractor extractor{core::PipelineParams{}};
    record("extract_clip30s", clip.size(), [&] {
      auto result = extractor.extract(clip);
      benchmark::DoNotOptimize(result);
    });

    // Steady-state streaming push of one second in record-size chunks
    // (bounded-memory session, taps off) — the live-ingest cost to hold
    // against extract_clip30s / 30.
    const core::PipelineParams params;
    core::StreamSession session{params};
    const std::size_t second = static_cast<std::size_t>(params.sample_rate);
    session.push(std::span<const float>(clip.data(), second));  // warmup
    auto drained = session.drain();
    benchmark::DoNotOptimize(drained);
    std::size_t pos = second;
    record("stream_push_1s", second, [&] {
      for (std::size_t off = 0; off < second; off += params.record_size) {
        const std::size_t n = std::min(params.record_size, second - off);
        session.push(std::span<const float>(clip.data() + pos + off, n));
      }
      benchmark::DoNotOptimize(session.drain());
      pos += second;
      if (pos + second > clip.size()) pos = 0;
    });

    const std::vector<std::span<const float>> streams = {clip,
                                                         cached_second_channel()};
    core::MultiStreamParams serial_params;
    serial_params.score_threads = 1;
    const core::MultiStreamExtractor serial(serial_params);
    record("multistream2_serial", 2 * clip.size(), [&] {
      auto result = serial.extract(streams);
      benchmark::DoNotOptimize(result);
    });

    core::MultiStreamParams threaded_params;
    threaded_params.score_threads = 0;  // shared pool
    const core::MultiStreamExtractor threaded(threaded_params);
    record("multistream2_threaded", 2 * clip.size(), [&] {
      auto result = threaded.extract(streams);
      benchmark::DoNotOptimize(result);
    });
  }

  // Host-scale multiplexing: 16 stations x 1 s of audio through one
  // SessionScheduler (bounded queues, block policy, deficit round-robin,
  // 2 worker lanes, shared SpectralEngine). ns/op covers scheduler
  // construction + the full 16-station drain — the per-host ingest cost to
  // hold against 16 x stream_push_1s of raw session time.
  {
    constexpr std::size_t kStations = 16;
    const core::PipelineParams params;
    const std::size_t second = static_cast<std::size_t>(params.sample_rate);
    std::vector<std::vector<float>> signals;
    signals.reserve(kStations);
    for (std::size_t s = 0; s < kStations; ++s) {
      signals.push_back(random_signal(second, 4000 + static_cast<unsigned>(s)));
    }
    const auto engine = std::make_shared<const core::SpectralEngine>(params);
    record("sched_16stations_1s", kStations * second, [&] {
      core::SchedulerOptions options;
      options.threads = 2;  // fixed: comparable across differently-sized hosts
      core::SessionScheduler scheduler(std::move(options));
      for (std::size_t s = 0; s < kStations; ++s) {
        core::StationConfig config;
        config.params = params;
        config.queue_capacity_samples = 8 * params.record_size;
        config.engine = engine;
        // snprintf, not string concatenation: GCC 12's -Wrestrict trips a
        // known false positive on small-string operator+ at -O3.
        char name[16];
        std::snprintf(name, sizeof name, "s%zu", s);
        scheduler.add_station(
            name,
            std::make_shared<river::BufferSource>(signals[s],
                                                  params.sample_rate),
            std::make_shared<river::NullEnsembleSink>(), config);
      }
      scheduler.run();
      auto stats = scheduler.stats();
      benchmark::DoNotOptimize(stats);
    });
  }

  // Archive replay: 2 minutes of audio (4 x 30 s clip) archived once into a
  // rotating segment store outside the timed region, then re-extracted per
  // op through SegmentStoreSource + StreamSession — the month-equivalent
  // backfill path, normalized per replayed batch. ns/op / samples against
  // stream_push_1s / sample_rate is the replay-vs-live-push speed ratio.
  double replay_ns = 0.0;
  std::size_t replay_samples = 0;
  {
    const auto& clip = cached_clip().clip.samples;
    const core::PipelineParams params;
    const auto dir =
        std::filesystem::temp_directory_path() / "dynriver_bench_store";
    std::filesystem::remove_all(dir);
    {
      river::SegmentStoreOptions options;
      options.max_segment_bytes = 4ull << 20;
      river::SegmentedRecordLog log(dir, options);
      river::AudioSegmentArchiver archiver(log, params.sample_rate,
                                           params.record_size);
      for (int rep = 0; rep < 4; ++rep) archiver.push(clip);
      archiver.finish();
      log.close();
      replay_samples = archiver.samples_archived();
    }
    replay_ns = record("replay_month_eq", replay_samples, [&] {
      river::SegmentStoreSource source(dir);
      core::StreamSession session(params);
      river::NullEnsembleSink sink;
      auto stats = core::run_stream(source, session, sink);
      benchmark::DoNotOptimize(stats);
    });
    std::filesystem::remove_all(dir);
  }

  // The same replay with bit-packed payloads: the clip is first snapped to
  // the PCM16 grid every ADC/WAV sample lives on (the codec is lossless on
  // any floats, but the delta mode only engages on grid values), archived
  // with pack_payloads on, then re-extracted identically. Also records the
  // stored bytes/sample of both stores — a size metric (unit "bytes"),
  // lower-is-better like every timing.
  double packed_ratio = 0.0;
  {
    const auto& clip = cached_clip().clip.samples;
    std::vector<float> quantized(clip.size());
    for (std::size_t i = 0; i < clip.size(); ++i) {
      const float c = std::clamp(clip[i], -1.0F, 1.0F);
      quantized[i] =
          static_cast<float>(std::lround(c * 32767.0F)) / 32768.0F;
    }
    const core::PipelineParams params;
    const auto dir =
        std::filesystem::temp_directory_path() / "dynriver_bench_store_packed";
    std::filesystem::remove_all(dir);
    std::uint64_t packed_bytes = 0;
    std::size_t samples = 0;
    {
      river::SegmentStoreOptions options;
      options.max_segment_bytes = 4ull << 20;
      options.pack_payloads = true;
      river::SegmentedRecordLog log(dir, options);
      river::AudioSegmentArchiver archiver(log, params.sample_rate,
                                           params.record_size);
      for (int rep = 0; rep < 4; ++rep) archiver.push(quantized);
      archiver.finish();
      log.close();
      samples = archiver.samples_archived();
      for (const auto& s : log.segments()) packed_bytes += s.bytes;
    }
    record("replay_month_eq_packed", samples, [&] {
      river::SegmentStoreSource source(dir);
      core::StreamSession session(params);
      river::NullEnsembleSink sink;
      auto stats = core::run_stream(source, session, sink);
      benchmark::DoNotOptimize(stats);
    });
    std::filesystem::remove_all(dir);

    const double bytes_per_sample =
        static_cast<double>(packed_bytes) / static_cast<double>(samples);
    json.add("archive_bytes_per_sample", samples, bytes_per_sample, 1, "bytes");
    std::printf("  %-28s n=%-8zu %12.3f bytes/sample\n",
                "archive_bytes_per_sample", samples, bytes_per_sample);
    packed_ratio = 4.0 / bytes_per_sample;
  }

  if (planned_900 > 0.0) {
    std::printf("\n  planned-vs-legacy FFT speedup @900: %.2fx\n",
                unplanned_900 / planned_900);
  }
  if (replay_ns > 0.0 && replay_samples > 0) {
    const core::PipelineParams params;
    const double replay_rate =
        static_cast<double>(replay_samples) / (replay_ns * 1e-9);
    std::printf("  archive replay: %.1fM samples/s (%.0fx live push rate)\n",
                replay_rate / 1e6, replay_rate / params.sample_rate);
  }
  if (packed_ratio > 0.0) {
    std::printf("  packed archive: %.2fx smaller than raw f32 storage\n",
                packed_ratio);
  }
  if (real_900 > 0.0 && real_1024 > 0.0) {
    std::printf("  real-vs-complex FFT speedup: %.2fx @900, %.2fx @1024 (kernels: %s)\n",
                planned_900 / real_900, planned_1024 / real_1024,
                dsp::simd::backend());
  }
  if (json.write(json_path)) {
    std::printf("  wrote %s (%zu entries, git %s)\n\n", json_path.c_str(),
                json.records().size(), bench::git_describe().c_str());
  } else {
    std::printf("  FAILED to write %s\n\n", json_path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  run_json_sweep();
  std::fflush(stdout);
  if (bench::env_size("DR_MICRO_SKIP_GBENCH", 0) == 0) {
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();
  return 0;
}
