// Ablation A5: micro-benchmarks of the individual substrate operations,
// using google-benchmark. Covers the DFT (radix-2 vs Bluestein vs naive),
// SAX anomaly scoring, the trigger, full-clip extraction, feature
// extraction, MESO training/query, wire encode/decode, and channel
// throughput.
#include <benchmark/benchmark.h>

#include <random>

#include "core/extractor.hpp"
#include "core/features.hpp"
#include "dsp/fft.hpp"
#include "meso/classifier.hpp"
#include "river/channel.hpp"
#include "river/wire.hpp"
#include "synth/station.hpp"
#include "ts/anomaly.hpp"

namespace core = dynriver::core;
namespace dsp = dynriver::dsp;
namespace meso = dynriver::meso;
namespace river = dynriver::river;
namespace synth = dynriver::synth;
namespace ts = dynriver::ts;

namespace {

std::vector<float> random_signal(std::size_t n, unsigned seed) {
  std::mt19937 gen(seed);
  std::normal_distribution<float> dist(0.0F, 0.3F);
  std::vector<float> out(n);
  for (auto& v : out) v = dist(gen);
  return out;
}

const synth::ClipRecording& cached_clip() {
  static const synth::ClipRecording clip = [] {
    synth::StationParams sp;
    synth::SensorStation station(sp, 31415);
    return station.record_clip(
        {synth::SpeciesId::kNOCA, synth::SpeciesId::kBCCH});
  }();
  return clip;
}

// -- DFT -----------------------------------------------------------------

void BM_FftRadix2_1024(benchmark::State& state) {
  std::vector<dsp::Cplx> data(1024, {0.5, -0.25});
  for (auto _ : state) {
    auto copy = data;
    dsp::fft_radix2(copy, false);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_FftRadix2_1024);

void BM_FftBluestein_900(benchmark::State& state) {
  std::vector<dsp::Cplx> data(900, {0.5, -0.25});
  for (auto _ : state) {
    auto out = dsp::fft(data);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_FftBluestein_900);

void BM_DftNaive_900(benchmark::State& state) {
  std::vector<dsp::Cplx> data(900, {0.5, -0.25});
  for (auto _ : state) {
    auto out = dsp::dft_naive(data);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_DftNaive_900);

// -- SAX anomaly scoring ----------------------------------------------------

void BM_AnomalyScorer_PerSample(benchmark::State& state) {
  const auto signal = random_signal(1 << 16, 7);
  ts::AnomalyParams params;
  params.frame = static_cast<std::size_t>(state.range(0));
  ts::StreamingAnomalyScorer scorer(params);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scorer.push(signal[i]));
    i = (i + 1) & 0xFFFF;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AnomalyScorer_PerSample)->Arg(1)->Arg(24);

// -- Extraction / features ----------------------------------------------------

void BM_ExtractClip30s(benchmark::State& state) {
  const core::EnsembleExtractor extractor{core::PipelineParams{}};
  const auto& clip = cached_clip();
  for (auto _ : state) {
    auto result = extractor.extract(clip.clip.samples);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(clip.clip.samples.size()));
}
BENCHMARK(BM_ExtractClip30s)->Unit(benchmark::kMillisecond);

void BM_FeatureExtractOneSecond(benchmark::State& state) {
  core::PipelineParams pp;
  pp.use_paa = state.range(0) != 0;
  const core::FeatureExtractor fx(pp);
  const auto ensemble = random_signal(21600, 11);
  for (auto _ : state) {
    auto patterns = fx.patterns(ensemble);
    benchmark::DoNotOptimize(patterns);
  }
}
BENCHMARK(BM_FeatureExtractOneSecond)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// -- MESO ------------------------------------------------------------------------

void BM_MesoTrain105d(benchmark::State& state) {
  std::mt19937 gen(3);
  std::normal_distribution<float> dist(0.0F, 1.0F);
  std::vector<std::vector<float>> patterns(512);
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    patterns[i].resize(105);
    for (auto& v : patterns[i]) v = dist(gen) + static_cast<float>(i % 10);
  }
  for (auto _ : state) {
    meso::MesoClassifier clf;
    for (std::size_t i = 0; i < patterns.size(); ++i) {
      clf.train(patterns[i], static_cast<meso::Label>(i % 10));
    }
    benchmark::DoNotOptimize(clf);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(patterns.size()));
}
BENCHMARK(BM_MesoTrain105d)->Unit(benchmark::kMillisecond);

void BM_MesoQuery105d(benchmark::State& state) {
  std::mt19937 gen(5);
  std::normal_distribution<float> dist(0.0F, 1.0F);
  meso::MesoClassifier clf;
  std::vector<float> pattern(105);
  for (int i = 0; i < 1024; ++i) {
    for (auto& v : pattern) v = dist(gen) + static_cast<float>(i % 10);
    clf.train(pattern, i % 10);
  }
  for (auto& v : pattern) v = dist(gen);
  for (auto _ : state) {
    benchmark::DoNotOptimize(clf.classify(pattern));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MesoQuery105d);

// -- Wire / channels ----------------------------------------------------------------

void BM_WireEncodeDecode900f(benchmark::State& state) {
  const auto rec =
      river::Record::data(river::kSubtypeAudio, river::FloatVec(900, 0.5F));
  for (auto _ : state) {
    const auto frame = river::encode_record(rec);
    auto decoded = river::decode_record(frame);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(900 * sizeof(float)));
}
BENCHMARK(BM_WireEncodeDecode900f);

void BM_ChannelSendRecv(benchmark::State& state) {
  river::InProcessChannel ch(1024);
  const auto rec =
      river::Record::data(river::kSubtypeAudio, river::FloatVec(900, 0.5F));
  river::Record out;
  for (auto _ : state) {
    ch.send(rec);
    benchmark::DoNotOptimize(ch.recv(out));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChannelSendRecv);

}  // namespace

BENCHMARK_MAIN();
