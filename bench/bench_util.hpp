// Shared helpers for the reproduction benches.
//
// Each bench binary regenerates one table or figure from the paper and
// prints a "paper vs measured" comparison. Scale knobs come from the
// environment so `for b in build/bench/*; do $b; done` stays fast by
// default:
//   DR_BENCH_SCALE    corpus scale factor (default 0.35; 1.0 = paper-sized)
//   DR_BENCH_REPEATS  protocol repetitions (default 3; paper: 20/100)
//   DR_BENCH_HOLDOUTS leave-one-out holdouts per repetition (default 60;
//                     0 = full leave-one-out, the paper's exact protocol)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "eval/dataset.hpp"
#include "eval/protocol.hpp"
#include "meso/classifier.hpp"

namespace dynriver::bench {

inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : fallback;
}

inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? static_cast<std::size_t>(std::atoll(v)) : fallback;
}

inline double bench_scale() { return env_double("DR_BENCH_SCALE", 0.35); }
inline std::size_t bench_repeats() { return env_size("DR_BENCH_REPEATS", 3); }
inline std::size_t bench_holdouts() { return env_size("DR_BENCH_HOLDOUTS", 60); }

/// Build the simulated field corpus at the configured scale.
inline eval::BuildResult build_bench_corpus(std::uint64_t seed = 42) {
  eval::BuildConfig cfg;
  cfg.seed = seed;
  cfg.corpus_scale = bench_scale();
  std::printf("[setup] building corpus: scale=%.2f seed=%llu ...\n",
              cfg.corpus_scale, static_cast<unsigned long long>(seed));
  auto result = eval::build_corpus(cfg);
  std::printf(
      "[setup] %zu clips, %zu ensembles, %zu patterns (%.1fs; reduction %.1f%%)\n\n",
      result.stats.clips, result.dataset.ensemble_count(),
      result.dataset.pattern_count(), result.stats.build_seconds,
      100.0 * result.stats.reduction_fraction());
  return result;
}

inline eval::ClassifierFactory meso_factory() {
  return [] { return std::make_unique<meso::MesoClassifier>(); };
}

inline eval::ProtocolOptions loo_options() {
  eval::ProtocolOptions opts;
  opts.repeats = bench_repeats();
  opts.max_holdouts = bench_holdouts();
  return opts;
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void print_header(const char* title) {
  print_rule();
  std::printf("%s\n", title);
  print_rule();
}

}  // namespace dynriver::bench
