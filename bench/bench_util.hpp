// Shared helpers for the reproduction benches.
//
// Each bench binary regenerates one table or figure from the paper and
// prints a "paper vs measured" comparison. Scale knobs come from the
// environment so `for b in build/bench/*; do $b; done` stays fast by
// default:
//   DR_BENCH_SCALE    corpus scale factor (default 0.35; 1.0 = paper-sized)
//   DR_BENCH_REPEATS  protocol repetitions (default 3; paper: 20/100)
//   DR_BENCH_HOLDOUTS leave-one-out holdouts per repetition (default 60;
//                     0 = full leave-one-out, the paper's exact protocol)
//   DR_BENCH_CACHE    1 (default) = reuse the on-disk corpus cache;
//                     0 = always re-synthesize
//   DR_BENCH_CACHE_DIR  corpus cache directory (default build/bench_corpus_cache,
//                     relative to the working directory)
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/stopwatch.hpp"
#include "eval/corpus_cache.hpp"
#include "eval/dataset.hpp"
#include "eval/protocol.hpp"
#include "meso/classifier.hpp"

namespace dynriver::bench {

inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : fallback;
}

inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? static_cast<std::size_t>(std::atoll(v)) : fallback;
}

inline double bench_scale() { return env_double("DR_BENCH_SCALE", 0.35); }
inline std::size_t bench_repeats() { return env_size("DR_BENCH_REPEATS", 3); }
inline std::size_t bench_holdouts() { return env_size("DR_BENCH_HOLDOUTS", 60); }

/// Build the simulated field corpus at the configured scale, reusing the
/// on-disk cache (eval/corpus_cache.hpp) unless DR_BENCH_CACHE=0: the first
/// bench run writes a versioned file keyed by the config fingerprint, later
/// runs (of any bench) reload it instead of re-synthesizing.
inline eval::BuildResult build_bench_corpus(std::uint64_t seed = 42) {
  eval::BuildConfig cfg;
  cfg.seed = seed;
  cfg.corpus_scale = bench_scale();

  const bool use_cache = env_size("DR_BENCH_CACHE", 1) != 0;
  const char* dir_env = std::getenv("DR_BENCH_CACHE_DIR");
  const std::string cache_dir =
      dir_env != nullptr ? dir_env : "build/bench_corpus_cache";

  std::printf("[setup] building corpus: scale=%.2f seed=%llu ...\n",
              cfg.corpus_scale, static_cast<unsigned long long>(seed));
  eval::BuildResult result;
  if (use_cache) {
    bool cache_hit = false;
    result = eval::load_or_build_corpus(cfg, cache_dir, &cache_hit);
    std::printf("[setup] corpus cache %s: %s\n", cache_hit ? "hit" : "miss",
                eval::corpus_cache_path(cache_dir, cfg).string().c_str());
  } else {
    result = eval::build_corpus(cfg);
  }
  std::printf(
      "[setup] %zu clips, %zu ensembles, %zu patterns (%.1fs; reduction %.1f%%)\n\n",
      result.stats.clips, result.dataset.ensemble_count(),
      result.dataset.pattern_count(), result.stats.build_seconds,
      100.0 * result.stats.reduction_fraction());
  return result;
}

inline eval::ClassifierFactory meso_factory() {
  return [] { return std::make_unique<meso::MesoClassifier>(); };
}

inline eval::ProtocolOptions loo_options() {
  eval::ProtocolOptions opts;
  opts.repeats = bench_repeats();
  opts.max_holdouts = bench_holdouts();
  return opts;
}

// ---------------------------------------------------------------------------
// Machine-readable benchmark output (BENCH_micro.json and friends)
// ---------------------------------------------------------------------------

/// `git describe --always --dirty` of the working tree, or "unknown" when
/// git (or the repository) is unavailable. Stamped into the JSON output so
/// the perf trajectory can be correlated with commits. A dirty tree warns
/// loudly (once): a "-dirty" stamp in a committed baseline means the numbers
/// cannot be reproduced from any commit — regenerate from a clean checkout
/// before committing them.
inline std::string git_describe() {
  std::string out;
  if (FILE* pipe = popen("git describe --always --dirty 2>/dev/null", "r")) {
    char buf[128];
    while (std::fgets(buf, sizeof(buf), pipe) != nullptr) out += buf;
    pclose(pipe);
  }
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) out.pop_back();
  if (out.size() >= 6 && out.compare(out.size() - 6, 6, "-dirty") == 0) {
    static bool warned = false;
    if (!warned) {
      warned = true;
      std::fprintf(stderr,
                   "bench: WARNING: working tree is dirty (git %s) — do not "
                   "commit these numbers as a baseline; rerun from a clean "
                   "tree so the stamp names a real commit\n",
                   out.c_str());
    }
  }
  return out.empty() ? "unknown" : out;
}

/// One measured operation for the JSON report.
struct BenchRecord {
  std::string op;        ///< operation name, e.g. "fft_planned"
  std::size_t size = 0;  ///< problem size (transform length, samples, ...)
  double ns_per_op = 0;  ///< the measured value, in `unit`
  std::size_t reps = 0;  ///< iterations actually timed
  /// What ns_per_op measures. "ns/op" for timings; size metrics (e.g.
  /// "bytes") are equally lower-is-better, so comparison tooling treats
  /// every unit the same way and only labels them differently.
  std::string unit = "ns/op";
};

/// Collects BenchRecords and writes them as a small self-describing JSON
/// document: {"schema", "git", "benchmarks": [{op,size,ns_per_op,reps,unit}]}.
/// The `unit` field is additive — readers of older reports default it to
/// "ns/op" — so the schema id stays "dynriver-bench-v1".
class BenchJsonWriter {
 public:
  void add(std::string op, std::size_t size, double ns_per_op, std::size_t reps,
           std::string unit = "ns/op") {
    records_.push_back(
        {std::move(op), size, ns_per_op, reps, std::move(unit)});
  }

  [[nodiscard]] const std::vector<BenchRecord>& records() const {
    return records_;
  }

  /// Write the report to `path`; returns false on I/O failure.
  [[nodiscard]] bool write(const std::string& path) const {
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n  \"schema\": \"dynriver-bench-v1\",\n  \"git\": \"%s\",\n",
                 escape(git_describe()).c_str());
    std::fprintf(f, "  \"benchmarks\": [\n");
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const BenchRecord& r = records_[i];
      std::fprintf(f,
                   "    {\"op\": \"%s\", \"size\": %zu, \"ns_per_op\": %.3f, "
                   "\"reps\": %zu, \"unit\": \"%s\"}%s\n",
                   escape(r.op).c_str(), r.size, r.ns_per_op, r.reps,
                   escape(r.unit).c_str(),
                   i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    const bool ok = std::ferror(f) == 0;
    std::fclose(f);
    return ok;
  }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) >= 0x20) {
        out += c;
      }
    }
    return out;
  }

  std::vector<BenchRecord> records_;
};

/// Time `fn` adaptively: batches double until the measured batch takes at
/// least `min_ms` milliseconds. Returns ns/op and the rep count actually
/// timed via `reps_out`.
///
/// Before any timing starts, fn runs in an untimed warm-up loop (at least
/// two passes and at least min_ms/4 of wall time) so one-time costs —
/// plan/table construction, first-touch page faults, CPU frequency ramp —
/// never land in a timed batch. Without this, slow ops whose very first timed batch
/// already exceeds min_ms reported construction + execution as steady
/// state (the seed BENCH_micro.json showed fft_planned@900 at 150us
/// against a 65us steady state for exactly this reason).
template <typename Fn>
double measure_ns_per_op(Fn&& fn, double min_ms, std::size_t* reps_out) {
  {
    dynriver::Stopwatch warm;
    std::size_t passes = 0;
    do {
      fn();
      ++passes;
    } while (passes < 2 || warm.millis() < min_ms / 4.0);
  }
  std::size_t reps = 1;
  for (;;) {
    dynriver::Stopwatch watch;
    for (std::size_t i = 0; i < reps; ++i) fn();
    const double ms = watch.millis();
    if (ms >= min_ms || reps >= (1ULL << 30)) {
      if (reps_out != nullptr) *reps_out = reps;
      return ms * 1e6 / static_cast<double>(reps);
    }
    reps *= 2;
  }
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void print_header(const char* title) {
  print_rule();
  std::printf("%s\n", title);
  print_rule();
}

}  // namespace dynriver::bench
