// Ablation A2: anomaly window and moving-average window sizes (paper: 100
// and 2250) vs detection quality.
//
// Shows the regime structure the unit tests pinned down: windows well below
// the event's internal modulation period detect reliably; too-small windows
// drown in bitmap sampling noise; too-large moving averages smear the score
// until short songs are missed.
#include <cstdio>

#include "bench_util.hpp"
#include "core/extractor.hpp"
#include "synth/station.hpp"

namespace bench = dynriver::bench;
namespace core = dynriver::core;
namespace synth = dynriver::synth;

namespace {
struct Quality {
  double recall = 0.0;
  double false_per_clip = 0.0;
};

Quality measure(const core::PipelineParams& pp, int clips) {
  const core::EnsembleExtractor extractor(pp);
  synth::StationParams sp;
  sp.distractor_probability = 0.0;
  synth::SensorStation station(sp, 4242);

  std::size_t planted = 0, found = 0, spurious = 0;
  for (int c = 0; c < clips; ++c) {
    const auto id1 = static_cast<synth::SpeciesId>(static_cast<std::size_t>(c) %
                                                   synth::kNumSpecies);
    const auto clip = station.record_clip({id1, id1});
    const auto result = extractor.extract(clip.clip.samples);
    planted += clip.truth.size();
    std::vector<bool> used(result.ensembles.size(), false);
    for (const auto& t : clip.truth) {
      for (std::size_t e = 0; e < result.ensembles.size(); ++e) {
        if (synth::intervals_overlap(result.ensembles[e].start_sample,
                                     result.ensembles[e].end_sample(),
                                     t.start_sample, t.end_sample(), 0.25)) {
          ++found;
          used[e] = true;
          break;
        }
      }
    }
    for (std::size_t e = 0; e < used.size(); ++e) {
      if (!used[e]) ++spurious;
    }
  }
  return {100.0 * static_cast<double>(found) / static_cast<double>(planted),
          static_cast<double>(spurious) / clips};
}
}  // namespace

int main() {
  bench::print_header(
      "Ablation A2: SAX anomaly window / moving-average window (paper: 100/2250)");
  const int clips = std::max(3, static_cast<int>(8 * bench::bench_scale()));

  std::printf("Anomaly window sweep (MA fixed at 2250):\n");
  std::printf("%-10s %10s %12s\n", "window", "recall %", "false/clip");
  bench::print_rule(36);
  double recall_paper_cfg = 0.0;
  for (const std::size_t window : {25u, 50u, 100u, 200u, 400u}) {
    core::PipelineParams pp;
    pp.anomaly.window = window;
    const auto q = measure(pp, clips);
    if (window == 100) recall_paper_cfg = q.recall;
    std::printf("%-10zu %9.1f%% %12.2f\n", window, q.recall, q.false_per_clip);
  }

  std::printf("\nMoving-average window sweep (anomaly window fixed at 100):\n");
  std::printf("%-10s %10s %12s\n", "MA", "recall %", "false/clip");
  bench::print_rule(36);
  for (const std::size_t ma : {250u, 1000u, 2250u, 4500u, 9000u, 18000u}) {
    core::PipelineParams pp;
    pp.anomaly.ma_window = ma;
    const auto q = measure(pp, clips);
    std::printf("%-10zu %9.1f%% %12.2f\n", ma, q.recall, q.false_per_clip);
  }

  std::printf(
      "\n(Paper's 100/2250 sits in the plateau: window below the syllable\n"
      "modulation period, moving average near the syllable gap scale.)\n");
  const bool ok = recall_paper_cfg > 90.0;
  std::printf("\nShape check: paper configuration >90%% recall: %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
