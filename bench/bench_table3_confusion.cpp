// Table 3 reproduction: the confusion matrix for PAA-ensemble classification
// under leave-one-out.
//
// The paper's diagonal runs 67.0% (MODO, most confused) to 94.7% (RWBL, most
// distinctive). The shape to reproduce: mass concentrated on the diagonal,
// every species mostly classified as itself.
#include <cstdio>

#include "bench_util.hpp"
#include "synth/species.hpp"

namespace bench = dynriver::bench;
namespace eval = dynriver::eval;
namespace synth = dynriver::synth;

int main() {
  bench::print_header(
      "Table 3: confusion matrix, PAA ensembles, leave-one-out (row = actual)");
  auto corpus = bench::build_bench_corpus();

  auto opts = bench::loo_options();
  // The confusion matrix needs more coverage than an accuracy estimate.
  opts.max_holdouts = std::max<std::size_t>(opts.max_holdouts, 120);

  std::printf("[run] leave-one-out over %zu ensembles x %zu repeats ...\n\n",
              std::min<std::size_t>(opts.max_holdouts,
                                    corpus.paa_dataset.ensemble_count()),
              opts.repeats);
  const auto result = eval::leave_one_out_ensemble(
      corpus.paa_dataset, bench::meso_factory(), opts);

  std::vector<std::string> labels;
  for (std::size_t s = 0; s < synth::kNumSpecies; ++s) {
    labels.push_back(synth::species(s).code);
  }
  std::printf("%s\n", result.confusion.to_string(labels).c_str());

  // Paper's diagonal for reference.
  static constexpr double kPaperDiag[] = {70.3, 69.2, 86.0, 90.5, 79.3,
                                          67.0, 90.8, 94.7, 90.5, 86.1};
  std::printf("%-6s %10s %10s\n", "Code", "diag(P)%", "diag(M)%");
  bench::print_rule(30);
  double min_diag = 100.0;
  for (std::size_t s = 0; s < synth::kNumSpecies; ++s) {
    const double measured = result.confusion.percent(s, s);
    std::printf("%-6s %10.1f %10.1f\n", labels[s].c_str(), kPaperDiag[s],
                measured);
    min_diag = std::min(min_diag, measured);
  }
  std::printf("\nOverall ensemble accuracy: %.1f%% (paper: 82.2%%)\n",
              100.0 * result.accuracy.mean);

  // Shape check: diagonal dominates every row that has data.
  bool diagonal_dominant = true;
  for (std::size_t r = 0; r < synth::kNumSpecies; ++r) {
    if (result.confusion.row_total(r) == 0) continue;
    for (std::size_t c = 0; c < synth::kNumSpecies; ++c) {
      if (c != r &&
          result.confusion.percent(r, c) >= result.confusion.percent(r, r)) {
        diagonal_dominant = false;
      }
    }
  }
  std::printf("\nShape check: diagonal dominant in every row: %s\n",
              diagonal_dominant ? "PASS" : "FAIL");
  return diagonal_dominant ? 0 : 1;
}
