// Figure 6 reproduction: the trigger signal (top) and the ensembles
// extracted from the acoustic clip (bottom), aligned against ground truth.
#include <cstdio>

#include "bench_util.hpp"
#include "core/extractor.hpp"
#include "dsp/spectrogram.hpp"
#include "synth/station.hpp"

namespace bench = dynriver::bench;
namespace core = dynriver::core;
namespace dsp = dynriver::dsp;
namespace synth = dynriver::synth;

int main() {
  bench::print_header(
      "Figure 6: trigger signal and ensembles extracted from the clip");

  synth::StationParams params;
  params.distractor_probability = 0.0;
  synth::SensorStation station(params, 2024);
  const auto rec = station.record_clip(
      {synth::SpeciesId::kNOCA, synth::SpeciesId::kRWBL,
       synth::SpeciesId::kBCCH});

  const core::PipelineParams pp;
  const core::EnsembleExtractor extractor(pp);
  const auto result = extractor.extract(rec.clip.samples, /*keep_signals=*/true);

  constexpr std::size_t kCols = 100;
  const std::size_t n = rec.clip.samples.size();

  // Trigger strip: fraction of triggered samples per column.
  std::string trigger_strip(kCols, ' ');
  for (std::size_t c = 0; c < kCols; ++c) {
    const std::size_t lo = c * n / kCols;
    const std::size_t hi = (c + 1) * n / kCols;
    std::size_t on = 0;
    for (std::size_t i = lo; i < hi; ++i) on += result.trigger[i];
    trigger_strip[c] = (on * 2 > hi - lo) ? '1' : '0';
  }
  // Truth strip for comparison.
  std::string truth_strip(kCols, '.');
  for (const auto& t : rec.truth) {
    for (std::size_t c = t.start_sample * kCols / n;
         c <= std::min(kCols - 1, (t.end_sample() - 1) * kCols / n); ++c) {
      truth_strip[c] = 'T';
    }
  }
  // Ensemble strip.
  std::string ens_strip(kCols, '.');
  for (const auto& e : result.ensembles) {
    for (std::size_t c = e.start_sample * kCols / n;
         c <= std::min(kCols - 1, (e.end_sample() - 1) * kCols / n); ++c) {
      ens_strip[c] = 'E';
    }
  }

  std::printf("Trigger value (0/1) over the 30 s clip:\n%s\n",
              trigger_strip.c_str());
  std::printf("\nExtracted ensemble audio (amplitude where trigger held):\n");
  std::vector<float> masked(n, 0.0F);
  for (const auto& e : result.ensembles) {
    for (std::size_t i = 0; i < e.samples.size(); ++i) {
      masked[e.start_sample + i] = e.samples[i];
    }
  }
  std::printf("%s", dsp::ascii_oscillogram(masked, kCols, 6).c_str());
  std::printf("\nGround truth vs extraction:\n  truth:     %s\n  ensembles: %s\n",
              truth_strip.c_str(), ens_strip.c_str());

  std::printf("\nEnsembles:\n");
  for (const auto& e : result.ensembles) {
    std::printf("  [%6.2f s, %6.2f s)  %.2f s\n",
                static_cast<double>(e.start_sample) / pp.sample_rate,
                static_cast<double>(e.end_sample()) / pp.sample_rate,
                static_cast<double>(e.length()) / pp.sample_rate);
  }
  std::printf("Retained %.1f%% of the clip (reduction %.1f%%)\n",
              100.0 * static_cast<double>(result.retained_samples()) /
                  static_cast<double>(n),
              100.0 * result.reduction_fraction(n));

  // Shape checks: each planted song is covered by an ensemble; the ensembles
  // cover a small fraction of the clip.
  bool all_found = true;
  for (const auto& t : rec.truth) {
    bool found = false;
    for (const auto& e : result.ensembles) {
      if (synth::intervals_overlap(e.start_sample, e.end_sample(),
                                   t.start_sample, t.end_sample(), 0.25)) {
        found = true;
      }
    }
    all_found = all_found && found;
  }
  const bool sparse = result.reduction_fraction(n) > 0.5;
  std::printf("\nShape check: every planted song triggered:   %s\n",
              all_found ? "PASS" : "FAIL");
  std::printf("Shape check: extraction is sparse (>50%% cut): %s\n",
              sparse ? "PASS" : "FAIL");
  return (all_found && sparse) ? 0 : 1;
}
