// Ablation A4: MESO vs baseline classifiers (exact 1-NN, 5-NN, per-class
// centroid) on the PAA ensemble data set.
//
// The MESO TKDE paper's claim, restated here: accuracy comparable to
// memory-based classifiers at lower query cost, thanks to the sensitivity
// sphere tree. We report accuracy, train/test time, and the model's size.
#include <cstdio>

#include "bench_util.hpp"
#include "meso/baselines.hpp"

namespace bench = dynriver::bench;
namespace eval = dynriver::eval;
namespace meso = dynriver::meso;

int main() {
  bench::print_header("Ablation A4: MESO vs baseline classifiers (PAA ensembles)");
  auto corpus = bench::build_bench_corpus();
  const auto& data = corpus.paa_dataset;

  auto opts = bench::loo_options();
  opts.max_holdouts = std::min<std::size_t>(opts.max_holdouts, 50);

  struct Entry {
    const char* name;
    eval::ClassifierFactory factory;
  };
  const Entry entries[] = {
      {"MESO", [] { return std::make_unique<meso::MesoClassifier>(); }},
      {"MESO (sphere label)",
       [] {
         meso::MesoParams p;
         p.nearest_pattern_query = false;
         return std::make_unique<meso::MesoClassifier>(p);
       }},
      {"1-NN exact", [] { return std::make_unique<meso::KnnClassifier>(1); }},
      {"5-NN exact", [] { return std::make_unique<meso::KnnClassifier>(5); }},
      {"centroid", [] { return std::make_unique<meso::CentroidClassifier>(); }},
  };

  std::printf("%-20s %16s %12s %12s\n", "classifier", "ensemble LOO %",
              "train s", "test s");
  bench::print_rule(64);

  double meso_acc = 0.0, knn_acc = 0.0, centroid_acc = 0.0;
  for (const auto& entry : entries) {
    const auto loo = eval::leave_one_out_ensemble(data, entry.factory, opts);
    const auto timing = eval::measure_train_test(data, entry.factory, 11);
    std::printf("%-20s %12.1f+-%3.1f %12.3f %12.3f\n", entry.name,
                100.0 * loo.accuracy.mean, 100.0 * loo.accuracy.stddev,
                timing.train_seconds, timing.test_seconds);
    if (std::string_view(entry.name) == "MESO") meso_acc = loo.accuracy.mean;
    if (std::string_view(entry.name) == "1-NN exact") knn_acc = loo.accuracy.mean;
    if (std::string_view(entry.name) == "centroid") {
      centroid_acc = loo.accuracy.mean;
    }
  }

  // Show MESO's internal organization once, trained on the whole set.
  meso::MesoClassifier model;
  for (const auto& e : data.ensembles) {
    for (const auto& p : e.patterns) model.train(p, e.label);
  }
  const auto stats = model.stats();
  std::printf(
      "\nMESO organization: %zu patterns -> %zu sensitivity spheres "
      "(mean size %.1f, purity %.2f), tree %zu nodes depth %zu, delta %.3f\n",
      stats.patterns, stats.spheres, stats.mean_sphere_size, stats.purity,
      stats.tree_nodes, stats.tree_depth, stats.delta);

  const bool near_knn = meso_acc >= knn_acc - 0.1;
  const bool beats_centroid = meso_acc >= centroid_acc;
  std::printf("\nShape check: MESO within 10 points of exact 1-NN: %s\n",
              near_knn ? "PASS" : "FAIL");
  std::printf("Shape check: MESO >= centroid baseline:           %s\n",
              beats_centroid ? "PASS" : "FAIL");
  return (near_knn && beats_centroid) ? 0 : 1;
}
