// Ablation A3: PAA reduction factor (paper: 10) vs classification accuracy
// and classifier cost.
//
// The paper's Table 2 already shows PAA x10 beats raw 1050-dim features;
// this sweep maps the full trade-off curve: mild smoothing denoises the
// spectra (accuracy up, cost down), extreme smoothing destroys the
// species-specific structure.
#include <cstdio>

#include "bench_util.hpp"

namespace bench = dynriver::bench;
namespace eval = dynriver::eval;

int main() {
  bench::print_header(
      "Ablation A3: PAA reduction factor vs accuracy and classifier cost");
  auto corpus = bench::build_bench_corpus();

  auto opts = bench::loo_options();
  opts.max_holdouts = std::min<std::size_t>(opts.max_holdouts, 40);

  std::printf("%-8s %10s %16s %12s %12s\n", "factor", "features",
              "ensemble LOO %", "train s", "test s");
  bench::print_rule(64);

  double best_acc = 0.0;
  std::size_t best_factor = 1;
  double acc_at_10 = 0.0;
  for (const std::size_t factor : {1u, 2u, 5u, 10u, 25u, 50u}) {
    const eval::Dataset data =
        factor == 1 ? corpus.dataset : corpus.dataset.reduce_paa(factor);
    const auto loo =
        eval::leave_one_out_ensemble(data, bench::meso_factory(), opts);
    const auto timing =
        eval::measure_train_test(data, bench::meso_factory(), 3);
    const std::size_t features = data.ensembles[0].patterns[0].size();
    std::printf("%-8zu %10zu %12.1f+-%3.1f %12.3f %12.3f\n", factor, features,
                100.0 * loo.accuracy.mean, 100.0 * loo.accuracy.stddev,
                timing.train_seconds, timing.test_seconds);
    if (loo.accuracy.mean > best_acc) {
      best_acc = loo.accuracy.mean;
      best_factor = factor;
    }
    if (factor == 10) acc_at_10 = loo.accuracy.mean;
  }

  std::printf(
      "\nBest factor here: %zu. The paper's factor 10 cuts the feature count\n"
      "10x and (Table 2) improves accuracy over raw spectra.\n",
      best_factor);
  const bool ok = acc_at_10 >= best_acc - 0.08;
  std::printf("\nShape check: factor 10 within 8 points of the best: %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
