// Table 1 reproduction: species codes, names, and the pattern/ensemble
// counts extracted from the simulated field campaign.
//
// The paper's counts come from real Kellogg Biological Station recordings;
// ours come from the synthetic substrate, scaled by DR_BENCH_SCALE. The
// comparison to check is the *structure*: every species yields validated
// ensembles, patterns-per-ensemble ratios track the paper (mourning dove
// longest, goldfinch/woodpecker shortest), and extraction misses almost no
// planted songs.
#include <cstdio>

#include "bench_util.hpp"
#include "synth/species.hpp"

namespace bench = dynriver::bench;
namespace eval = dynriver::eval;
namespace synth = dynriver::synth;

int main() {
  bench::print_header(
      "Table 1: bird species codes, names and counts (paper vs measured)");

  const auto result = bench::build_bench_corpus();
  const auto& paper = eval::paper_table1();
  const auto ens = result.dataset.ensembles_per_class();
  const auto pat = result.dataset.patterns_per_class();

  std::printf("%-6s %-26s | %8s %8s %8s | %8s %8s %8s\n", "Code", "Common name",
              "pat(P)", "ens(P)", "p/e(P)", "pat(M)", "ens(M)", "p/e(M)");
  bench::print_rule(96);

  std::size_t total_pat_paper = 0, total_ens_paper = 0;
  std::size_t total_pat = 0, total_ens = 0;
  for (std::size_t s = 0; s < synth::kNumSpecies; ++s) {
    const double ratio_paper =
        static_cast<double>(paper[s].patterns) / paper[s].ensembles;
    const double ratio_meas =
        ens[s] > 0 ? static_cast<double>(pat[s]) / static_cast<double>(ens[s])
                   : 0.0;
    std::printf("%-6s %-26s | %8d %8d %8.2f | %8zu %8zu %8.2f\n", paper[s].code,
                paper[s].common_name, paper[s].patterns, paper[s].ensembles,
                ratio_paper, pat[s], ens[s], ratio_meas);
    total_pat_paper += static_cast<std::size_t>(paper[s].patterns);
    total_ens_paper += static_cast<std::size_t>(paper[s].ensembles);
    total_pat += pat[s];
    total_ens += ens[s];
  }
  bench::print_rule(96);
  std::printf("%-6s %-26s | %8zu %8zu %8.2f | %8zu %8zu %8.2f\n", "TOTAL", "",
              total_pat_paper, total_ens_paper,
              static_cast<double>(total_pat_paper) /
                  static_cast<double>(total_ens_paper),
              total_pat,
              total_ens,
              total_ens ? static_cast<double>(total_pat) /
                              static_cast<double>(total_ens)
                        : 0.0);

  std::printf(
      "\n(P) = paper (473 ensembles / 3673 patterns from KBS recordings)\n"
      "(M) = measured on the synthetic corpus at scale %.2f\n"
      "Planted songs missed by extraction: %zu; ensembles rejected by\n"
      "ground-truth validation (the human-listener substitute): %zu\n",
      bench::bench_scale(), result.stats.missed_songs,
      result.stats.rejected_ensembles);

  // Shape checks the reproduction must satisfy.
  const auto ratio = [&](std::size_t s) {
    return ens[s] ? static_cast<double>(pat[s]) / static_cast<double>(ens[s])
                  : 0.0;
  };
  const bool modo_longest =
      ratio(5) > ratio(0) && ratio(5) > ratio(3);  // MODO > AMGO, DOWO
  std::printf("\nShape check: MODO has the highest patterns/ensemble: %s\n",
              modo_longest ? "PASS" : "FAIL");
  const bool all_present = [&] {
    for (std::size_t s = 0; s < synth::kNumSpecies; ++s) {
      if (ens[s] == 0) return false;
    }
    return true;
  }();
  std::printf("Shape check: every species yields ensembles:        %s\n",
              all_present ? "PASS" : "FAIL");
  return (modo_longest && all_present) ? 0 : 1;
}
