// Ablation A1: SAX alphabet size (paper: 8) vs extraction quality.
//
// Sweeps the alphabet over {2,4,8,16,32} and measures detection recall
// (planted songs covered by an ensemble), false ensembles per clip, and data
// reduction on a fixed mini-corpus.
#include <cstdio>

#include "bench_util.hpp"

#include "common/stopwatch.hpp"
#include "core/extractor.hpp"
#include "synth/station.hpp"

namespace bench = dynriver::bench;
namespace core = dynriver::core;
namespace synth = dynriver::synth;

int main() {
  bench::print_header("Ablation A1: SAX alphabet size vs extraction quality");

  const int clips = std::max(4, static_cast<int>(12 * bench::bench_scale()));
  std::printf("%-10s %10s %12s %14s %12s\n", "alphabet", "recall %",
              "false/clip", "reduction %", "us/sample");
  bench::print_rule(64);

  double recall_at_8 = 0.0;
  for (const std::size_t alphabet : {2u, 4u, 8u, 16u, 32u}) {
    core::PipelineParams pp;
    pp.anomaly.alphabet = alphabet;
    const core::EnsembleExtractor extractor(pp);

    synth::StationParams sp;
    sp.distractor_probability = 0.0;
    synth::SensorStation station(sp, 777);  // same clips for every alphabet

    std::size_t planted = 0, found = 0, spurious = 0;
    std::size_t total = 0, kept = 0;
    dynriver::Stopwatch watch;
    double extract_seconds = 0.0;
    for (int c = 0; c < clips; ++c) {
      const auto id1 = static_cast<synth::SpeciesId>(static_cast<std::size_t>(c) %
                                                     synth::kNumSpecies);
      const auto id2 =
          static_cast<synth::SpeciesId>(static_cast<std::size_t>(c + 3) %
                                        synth::kNumSpecies);
      const auto clip = station.record_clip({id1, id2});

      watch.restart();
      const auto result = extractor.extract(clip.clip.samples);
      extract_seconds += watch.seconds();

      total += clip.clip.samples.size();
      kept += result.retained_samples();
      planted += clip.truth.size();
      std::vector<bool> used(result.ensembles.size(), false);
      for (const auto& t : clip.truth) {
        for (std::size_t e = 0; e < result.ensembles.size(); ++e) {
          if (synth::intervals_overlap(result.ensembles[e].start_sample,
                                       result.ensembles[e].end_sample(),
                                       t.start_sample, t.end_sample(), 0.25)) {
            ++found;
            used[e] = true;
            break;
          }
        }
      }
      for (std::size_t e = 0; e < used.size(); ++e) {
        if (!used[e]) ++spurious;
      }
    }

    const double recall =
        100.0 * static_cast<double>(found) / static_cast<double>(planted);
    if (alphabet == 8) recall_at_8 = recall;
    std::printf("%-10zu %9.1f%% %12.2f %13.1f%% %12.3f\n", alphabet, recall,
                static_cast<double>(spurious) / clips,
                100.0 * (1.0 - static_cast<double>(kept) /
                                   static_cast<double>(total)),
                1e6 * extract_seconds / static_cast<double>(total));
  }

  std::printf(
      "\n(The paper chose alphabet 8: large enough to resolve envelope\n"
      "texture, small enough that bitmap cells stay well-populated.)\n");
  const bool ok = recall_at_8 > 90.0;
  std::printf("\nShape check: alphabet 8 achieves >90%% recall: %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
