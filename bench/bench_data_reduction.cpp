// Section 4 headline reproduction: "Extraction of ensembles from acoustic
// clips reduced the amount of data that required further processing by
// 80.6%."
//
// The retained fraction depends directly on how much of each clip is
// vocalization, so we sweep song density (songs per 30 s clip) and show
// where the paper's figure falls. The KBS dawn recordings behind the paper
// carry several songs per clip; at comparable densities our reduction lands
// in the same region.
#include <cstdio>

#include "bench_util.hpp"
#include "core/extractor.hpp"
#include "synth/station.hpp"

namespace bench = dynriver::bench;
namespace core = dynriver::core;
namespace synth = dynriver::synth;

int main() {
  bench::print_header("Data reduction by ensemble extraction (paper: 80.6%)");

  const core::PipelineParams pp;
  const core::EnsembleExtractor extractor(pp);
  const int clips_per_density = std::max(2, static_cast<int>(6 * bench::bench_scale()));

  std::printf("%-18s %12s %12s %14s\n", "songs per clip", "clips", "kept %",
              "reduction %");
  bench::print_rule(60);

  double best_gap = 1e9;
  double best_reduction = 0.0;
  int best_density = 0;
  for (const int density : {1, 2, 3, 4, 5}) {
    synth::StationParams sp;
    synth::SensorStation station(sp, static_cast<std::uint64_t>(9000 + density));
    std::size_t total = 0;
    std::size_t kept = 0;
    for (int c = 0; c < clips_per_density; ++c) {
      std::vector<synth::SpeciesId> singers;
      for (int s = 0; s < density; ++s) {
        singers.push_back(static_cast<synth::SpeciesId>(
            static_cast<std::size_t>(c * density + s) % synth::kNumSpecies));
      }
      const auto clip = station.record_clip(singers);
      const auto result = extractor.extract(clip.clip.samples);
      total += clip.clip.samples.size();
      kept += result.retained_samples();
    }
    const double reduction =
        100.0 * (1.0 - static_cast<double>(kept) / static_cast<double>(total));
    std::printf("%-18d %12d %11.1f%% %13.1f%%\n", density, clips_per_density,
                100.0 - reduction, reduction);
    if (std::abs(reduction - 80.6) < best_gap) {
      best_gap = std::abs(reduction - 80.6);
      best_reduction = reduction;
      best_density = density;
    }
  }

  std::printf(
      "\nPaper: 80.6%% reduction on KBS field clips. Closest match here:\n"
      "%.1f%% at %d songs/clip -- i.e. the paper's figure corresponds to a\n"
      "vocalization density of roughly %d songs per 30 s clip.\n",
      best_reduction, best_density, best_density);

  const bool ok = best_gap < 12.0;  // within ~12 points at some density
  std::printf("\nShape check: paper's reduction reachable at a plausible "
              "density: %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
