// Figure 4 reproduction: converting a PAA-processed signal to SAX symbols
// (alphabet 5, rendered as integers 1..5 like the paper's figure), plus the
// equiprobability property that justifies the Gaussian breakpoints.
#include <cmath>
#include <cstdio>
#include <random>

#include "bench_util.hpp"
#include "ts/sax.hpp"

namespace bench = dynriver::bench;
namespace ts = dynriver::ts;

int main() {
  bench::print_header("Figure 4: PAA-processed signal converted to SAX");

  // A signal with the rough contour of the paper's example: a noisy wave
  // over [0, 3] with one deep dip and one sharp peak.
  std::vector<float> signal(300);
  for (std::size_t i = 0; i < signal.size(); ++i) {
    const double t = 3.0 * static_cast<double>(i) / 300.0;
    double v = 0.6 * std::sin(2.0 * 3.14159 * t / 1.5);
    if (t > 1.4 && t < 1.55) v -= 1.6;  // dip
    if (t > 1.55 && t < 1.7) v += 1.7;  // peak
    signal[i] = static_cast<float>(v);
  }

  constexpr std::size_t kSegments = 18;
  constexpr std::size_t kAlphabet = 5;
  const auto sax = ts::to_sax(signal, {kSegments, kAlphabet});

  std::printf("Breakpoints for alphabet %zu (equiprobable under N(0,1)):\n  ",
              kAlphabet);
  for (const double b : ts::sax_breakpoints(kAlphabet)) std::printf("%+.4f ", b);
  std::printf("\n\nSAX = ");
  std::printf("%s\n", ts::sax_to_string(sax, 30).c_str());  // integer rendering

  // Render the symbol sequence as a small chart, like the figure's staircase.
  std::printf("\n");
  for (int level = kAlphabet; level >= 1; --level) {
    std::printf("%d | ", level);
    for (const auto s : sax) {
      std::printf("%s", (static_cast<int>(s) + 1 == level) ? "##" : "  ");
    }
    std::printf("\n");
  }

  // Equiprobability check over Gaussian data (the property SAX is built on).
  std::mt19937 gen(77);
  std::normal_distribution<float> dist(0.0F, 1.0F);
  const auto breaks = ts::sax_breakpoints(kAlphabet);
  std::vector<std::size_t> counts(kAlphabet, 0);
  constexpr std::size_t kDraws = 100000;
  for (std::size_t i = 0; i < kDraws; ++i) {
    ++counts[ts::discretize_value(dist(gen), breaks)];
  }
  std::printf("\nSymbol occupancy over %zu N(0,1) draws (expect ~%.0f each):\n",
              kDraws, static_cast<double>(kDraws) / kAlphabet);
  bool equiprobable = true;
  for (std::size_t s = 0; s < kAlphabet; ++s) {
    const double expected = static_cast<double>(kDraws) / kAlphabet;
    std::printf("  symbol %zu: %zu\n", s + 1, counts[s]);
    if (std::abs(static_cast<double>(counts[s]) - expected) > 0.05 * expected) {
      equiprobable = false;
    }
  }

  const bool length_ok = sax.size() == kSegments;
  std::printf("\nShape check: %zu segments -> %zu symbols, equiprobable: %s\n",
              kSegments, sax.size(),
              (length_ok && equiprobable) ? "PASS" : "FAIL");
  return (length_ok && equiprobable) ? 0 : 1;
}
