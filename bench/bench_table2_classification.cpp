// Table 2 reproduction: MESO classification accuracy and train/test times on
// the four data sets (Pattern, Ensemble, PAA Pattern, PAA Ensemble) under
// leave-one-out and resubstitution.
//
// Paper values (Table 2):
//   Pattern       LOO 71.5 +- 0.9   resub 92.3 +- 3.1   train 57.7s test 57.7s
//   Ensemble      LOO 76.0 +- 1.1   resub 96.3 +- 2.8   train 56.1s test 58.6s
//   PAA Pattern   LOO 80.4 +- 0.3   resub 94.7 +- 0.8   train 57.7s test 57.7s
//   PAA Ensemble  LOO 82.2 +- 0.9   resub 97.2 +- 1.2   train 56.1s test 58.6s
//
// Shape to reproduce: PAA beats raw features, ensemble voting beats single
// patterns, resubstitution beats leave-one-out. Absolute times differ from
// the paper's 2007 hardware. Set DR_BENCH_HOLDOUTS=0 DR_BENCH_REPEATS=20 for
// the paper's full protocol.
#include <cstdio>

#include "bench_util.hpp"

namespace bench = dynriver::bench;
namespace eval = dynriver::eval;

namespace {
struct Row {
  const char* name;
  double paper_loo, paper_loo_sd;
  double paper_resub, paper_resub_sd;
  eval::AccuracyStats loo;
  eval::AccuracyStats resub;
  eval::TrainTestTiming timing;
};
}  // namespace

int main() {
  bench::print_header("Table 2: MESO classification results (paper vs measured)");
  auto corpus = bench::build_bench_corpus();

  const auto factory = bench::meso_factory();
  auto loo_opts = bench::loo_options();
  eval::ProtocolOptions resub_opts;
  resub_opts.repeats = std::max<std::size_t>(bench::bench_repeats(), 5);

  Row rows[] = {
      {"Pattern", 71.5, 0.9, 92.3, 3.1, {}, {}, {}},
      {"Ensemble", 76.0, 1.1, 96.3, 2.8, {}, {}, {}},
      {"PAA Pattern", 80.4, 0.3, 94.7, 0.8, {}, {}, {}},
      {"PAA Ensemble", 82.2, 0.9, 97.2, 1.2, {}, {}, {}},
  };

  const eval::Dataset* sets[] = {&corpus.dataset, &corpus.dataset,
                                 &corpus.paa_dataset, &corpus.paa_dataset};
  const bool ensemble_mode[] = {false, true, false, true};

  for (int i = 0; i < 4; ++i) {
    std::printf("[run] %s ...\n", rows[i].name);
    if (ensemble_mode[i]) {
      rows[i].loo = eval::leave_one_out_ensemble(*sets[i], factory, loo_opts)
                        .accuracy;
      rows[i].resub =
          eval::resubstitution_ensemble(*sets[i], factory, resub_opts).accuracy;
    } else {
      rows[i].loo =
          eval::leave_one_out_pattern(*sets[i], factory, loo_opts).accuracy;
      rows[i].resub =
          eval::resubstitution_pattern(*sets[i], factory, resub_opts).accuracy;
    }
    rows[i].timing = eval::measure_train_test(*sets[i], factory,
                                              static_cast<std::uint64_t>(7 + i));
  }

  std::printf("\n%-14s | %18s | %18s | %12s\n", "Data set", "Leave-one-out %",
              "Resubstitution %", "train/test s");
  std::printf("%-14s | %8s %9s | %8s %9s |\n", "", "paper", "measured", "paper",
              "measured");
  bench::print_rule(76);
  for (const auto& row : rows) {
    std::printf(
        "%-14s | %4.1f+-%.1f %4.1f+-%3.1f | %4.1f+-%.1f %4.1f+-%3.1f | "
        "%.2f/%.2f\n",
        row.name, row.paper_loo, row.paper_loo_sd, 100.0 * row.loo.mean,
        100.0 * row.loo.stddev, row.paper_resub, row.paper_resub_sd,
        100.0 * row.resub.mean, 100.0 * row.resub.stddev,
        row.timing.train_seconds, row.timing.test_seconds);
  }
  std::printf(
      "\n(paper timings: ~57s total train / ~58s test on 2007 hardware; ours\n"
      "are wall-clock for one full train + test pass on this host)\n");

  // Shape checks. The per-pattern comparison carries the subsampled
  // protocol's noise (std up to several points), so PAA is allowed a small
  // tolerance on that side; the ensemble side must show the PAA advantage.
  const bool paa_beats_raw = rows[2].loo.mean > rows[0].loo.mean - 0.05 &&
                             rows[3].loo.mean > rows[1].loo.mean;
  const bool ensemble_beats_pattern = rows[3].loo.mean > rows[2].loo.mean;
  bool resub_beats_loo = true;
  for (const auto& row : rows) {
    resub_beats_loo = resub_beats_loo && (row.resub.mean >= row.loo.mean);
  }
  const bool in_band = rows[3].loo.mean > 0.6 && rows[3].resub.mean > 0.9;
  std::printf("\nShape check: PAA >= raw accuracy:            %s\n",
              paa_beats_raw ? "PASS" : "FAIL");
  std::printf("Shape check: ensemble voting >= per-pattern: %s\n",
              ensemble_beats_pattern ? "PASS" : "FAIL");
  std::printf("Shape check: resubstitution >= LOO:          %s\n",
              resub_beats_loo ? "PASS" : "FAIL");
  std::printf("Shape check: PAA-ensemble in paper's band:   %s\n",
              in_band ? "PASS" : "FAIL");
  return (ensemble_beats_pattern && resub_beats_loo && in_band) ? 0 : 1;
}
