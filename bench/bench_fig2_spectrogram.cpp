// Figure 2 reproduction: oscillogram (top) and spectrogram (bottom) of an
// acoustic clip containing bird vocalizations, rendered as ASCII.
#include <cstdio>

#include "bench_util.hpp"
#include "dsp/spectrogram.hpp"
#include "synth/station.hpp"

namespace bench = dynriver::bench;
namespace dsp = dynriver::dsp;
namespace synth = dynriver::synth;

int main() {
  bench::print_header("Figure 2: oscillogram and spectrogram of an acoustic clip");

  synth::StationParams params;
  synth::SensorStation station(params, 2024);
  const auto rec = station.record_clip(
      {synth::SpeciesId::kNOCA, synth::SpeciesId::kRWBL,
       synth::SpeciesId::kBCCH});

  std::printf("Clip: %.0f s at %.0f Hz (%.3f MB as PCM16; paper: ~1.26 MB)\n",
              params.clip_seconds, params.sample_rate,
              static_cast<double>(rec.clip.samples.size()) * 2.0 / 1e6);
  std::printf("Planted vocalizations:\n");
  for (const auto& t : rec.truth) {
    std::printf("  %-5s at %6.2f s for %.2f s\n",
                synth::species(t.species).code.c_str(),
                static_cast<double>(t.start_sample) / params.sample_rate,
                static_cast<double>(t.length) / params.sample_rate);
  }

  const auto normalized = dsp::normalize_oscillogram(rec.clip.samples);
  std::printf("\nOscillogram (normalized amplitude, 0..30 s):\n%s",
              dsp::ascii_oscillogram(normalized, 100, 8).c_str());

  dsp::SpectrogramParams sp;
  sp.frame_size = 900;
  sp.hop = 450;
  sp.sample_rate = params.sample_rate;
  const auto spec = dsp::stft(rec.clip.samples, sp);
  std::printf(
      "\nSpectrogram (0..%.1f kHz bottom-to-top; darker = more energy):\n%s",
      params.sample_rate / 2000.0,
      dsp::ascii_spectrogram(spec, 100, 24).c_str());
  std::printf(
      "\n(The vocalizations appear as textured blocks in the 1.2-9.6 kHz\n"
      "band; the smear along the bottom rows is wind/human low-frequency\n"
      "noise, exactly the structure Figure 2 of the paper shows.)\n");

  // Sanity: STFT produced the expected geometry.
  const bool ok = spec.num_frames() > 1000 && spec.num_bins() == 451;
  std::printf("\nShape check: %zu frames x %zu bins: %s\n", spec.num_frames(),
              spec.num_bins(), ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
