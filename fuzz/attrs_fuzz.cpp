// Harness: lazy attribute parsing on RecordView.
//
// Wraps the fuzz input as the attribute region of an otherwise-valid frame
// (header synthesized, CRC computed, so the frame decoder's validation pass
// accepts or rejects on the attrs alone), then drives every lazy consumer:
// has_attr / attr_int / attr_double with probe keys lifted from the input,
// and materialize(). The validation pass and the lazy getters walk the same
// bytes with the same parser — a region that validated must never throw
// from a getter.
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "fuzz_support.hpp"
#include "river/wire.hpp"

namespace rv = dynriver::river;
namespace fz = dynriver::fuzz;

namespace {

template <typename T>
void put(std::vector<std::uint8_t>& out, T value) {
  const auto at = out.size();
  out.resize(at + sizeof(T));
  std::memcpy(out.data() + at, &value, sizeof(T));
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const auto nattr = fz::take_u8(data, size);

  std::vector<std::uint8_t> frame;
  put<std::uint32_t>(frame, rv::kWireMagic);
  put<std::uint16_t>(frame, rv::kWireVersion);
  put<std::uint8_t>(frame, 0);  // type: data
  put<std::uint8_t>(frame, 0);  // pay_tag: none
  put<std::uint32_t>(frame, 0);  // subtype
  put<std::uint32_t>(frame, 0);  // depth
  put<std::uint32_t>(frame, 0);  // stype
  put<std::uint64_t>(frame, 0);  // seq
  put<std::uint32_t>(frame, nattr);
  put<std::uint64_t>(frame, 0);  // paylen
  frame.insert(frame.end(), data, data + size);
  put<std::uint32_t>(frame, rv::crc32(frame.data() + 4, frame.size() - 4));

  std::size_t consumed = 0;
  rv::WireScratch scratch;
  rv::RecordView view;
  try {
    view = rv::decode_record_view(frame.data(), frame.size(), consumed,
                                  scratch);
  } catch (const rv::WireError&) {
    return 0;  // attrs region rejected: fine, and the only legal rejection
  }

  // Probe keys: one from the head of the region (likely a real key), one
  // that cannot exist, plus the well-known pipeline keys.
  const std::size_t probe_len = std::min<std::size_t>(size, 8);
  const std::string probe(reinterpret_cast<const char*>(data), probe_len);
  for (const auto& key :
       {probe, std::string("\xFFnope"), std::string(rv::kAttrSampleRate),
        std::string(rv::kAttrClipId)}) {
    (void)view.has_attr(key);
    (void)view.attr_int(key, -1);
    (void)view.attr_double(key, -1.0);
  }

  const rv::Record rec = view.materialize();
  // Duplicate keys collapse in the map; more than nattr cannot appear.
  FUZZ_CHECK(rec.attrs.size() <= view.nattr);
  return 0;
}
