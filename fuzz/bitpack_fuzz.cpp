// Harness: the bit-packing codec, below the wire layer.
//
// Two personalities, selected by the first input byte:
//   even  — parse: remaining bytes are a hostile packed stream, an input-
//           derived element count drives packed_stream_bytes + unpack_floats;
//           the structural walk and the real decode must agree byte-for-byte
//           on how much stream a count consumes.
//   odd   — round-trip: remaining bytes are reinterpreted as raw f32 values,
//           packed with pack_floats and unpacked; every float must come back
//           bit-identical (NaN payloads, -0.0 and denormals included).
#include <cstdint>
#include <cstring>
#include <vector>

#include "fuzz_support.hpp"
#include "river/bitpack.hpp"

namespace bp = dynriver::river::bitpack;
namespace rv = dynriver::river;
namespace fz = dynriver::fuzz;

namespace {

void fuzz_parse(const std::uint8_t* data, std::size_t size) {
  // The wire layer guarantees count <= kMaxPackedExpansion * stream bytes
  // before calling in; exercise the codec across that whole envelope.
  const auto raw_count = fz::take_u32(data, size);
  const std::size_t count =
      std::size_t{raw_count} % (bp::kMaxPackedExpansion * (size + 1));

  std::size_t walked = 0;
  bool walk_ok = false;
  try {
    walked = bp::packed_stream_bytes(data, size, count);
    walk_ok = true;
  } catch (const rv::WireError&) {
  }

  std::vector<float> out(count);
  try {
    const std::size_t used = bp::unpack_floats(data, size, out);
    // A stream the walk rejected must not decode, and both must consume the
    // same bytes — the wire decoder's packed_len check depends on it.
    FUZZ_CHECK(walk_ok);
    FUZZ_CHECK(used == walked);
  } catch (const rv::WireTruncated&) {
    // Truncation is structural, so the walk must have rejected it too.
    FUZZ_CHECK(!walk_ok);
  } catch (const rv::WireError&) {
    // Value-domain rejection (an i16 delta escaping the domain) is decode-
    // only by design; the walk may accept the stream's SHAPE. Either way the
    // enclosing frame decoder surfaces a WireError, which is the contract.
  }
}

void fuzz_roundtrip(const std::uint8_t* data, std::size_t size) {
  const std::size_t count = size / sizeof(float);
  std::vector<float> values(count);
  if (count > 0) std::memcpy(values.data(), data, count * sizeof(float));

  std::vector<std::uint8_t> packed;
  const std::size_t appended = bp::pack_floats(values, packed);
  FUZZ_CHECK(appended == packed.size());
  // The documented worst case: mode byte + raw-equivalent payload + one
  // width byte per block.
  FUZZ_CHECK(appended <=
             1 + 4 * count +
                 (count + bp::kBlockValues - 1) / bp::kBlockValues);

  std::vector<float> out(count);
  const std::size_t used = bp::unpack_floats(packed.data(), packed.size(), out);
  FUZZ_CHECK(used == packed.size());
  FUZZ_CHECK(bp::packed_stream_bytes(packed.data(), packed.size(), count) ==
             used);
  // Bit-exact, not value-equal: NaNs compare unequal to themselves.
  FUZZ_CHECK(std::memcmp(values.data(), out.data(), count * sizeof(float)) ==
             0);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const auto sel = fz::take_u8(data, size);
  if (sel % 2 == 0) {
    fuzz_parse(data, size);
  } else {
    fuzz_roundtrip(data, size);
  }
  return 0;
}
