// Harness: WAV container parsing, batch and streaming.
//
// The input bytes are decoded twice — decode_wav over the buffer, and
// WavStreamReader over the same bytes written to a scratch file — and the
// two paths must agree: same accept/reject verdict, and on acceptance the
// streamed mono samples must be bit-identical to read_wav + to_mono (the
// equivalence the streaming reader documents). Every rejection must be a
// WavError; hostile chunk sizes must neither hang the chunk walker nor
// reach an allocation.
#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "dsp/wav.hpp"
#include "fuzz_support.hpp"

namespace dsp = dynriver::dsp;
namespace fz = dynriver::fuzz;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  static fz::ScratchDir scratch;

  bool batch_ok = false;
  std::vector<float> batch_mono;
  try {
    const dsp::WavClip clip =
        dsp::decode_wav(std::span<const std::uint8_t>(data, size));
    batch_mono = dsp::to_mono(clip);
    batch_ok = true;
  } catch (const dsp::WavError&) {
  }

  const auto path = scratch.path() / "input.wav";
  fz::write_file(path, data, size);
  try {
    dsp::WavStreamReader reader(path);
    std::vector<float> streamed(reader.total_frames());
    std::size_t got = 0;
    std::array<float, 331> chunk;  // odd size: exercises partial reads
    for (;;) {
      const std::size_t n = reader.read_mono(chunk);
      if (n == 0) break;
      for (std::size_t i = 0; i < n; ++i) streamed[got + i] = chunk[i];
      got += n;
    }
    // Header-compatible does not imply batch-decodable: decode_wav needs the
    // data chunk complete in the buffer, the streaming reader detects the
    // truncation on read. But when BOTH accept, samples must match exactly.
    if (batch_ok) {
      FUZZ_CHECK(got <= batch_mono.size());
      // PCM16-derived floats: plain equality is exact (no NaNs possible).
      for (std::size_t i = 0; i < got; ++i) {
        FUZZ_CHECK(streamed[i] == batch_mono[i]);
      }
    }
  } catch (const dsp::WavError&) {
  }
  return 0;
}
