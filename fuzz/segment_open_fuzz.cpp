// Harness: segment-store opening, verification, replay, and recovery over a
// fuzzer-synthesized directory.
//
// The input unpacks as a mini-archive (see segment_archive.hpp) into a
// scratch store directory — MANIFEST text, sealed segment files, tmp files —
// then the read side runs the full gauntlet: SegmentStoreReader listing +
// verify() + a seek/drain, and SegmentedRecordLog crash recovery opening the
// same directory. Contract: hostile store bytes surface as clean errors
// (runtime_error / WireError) or clean torn-tail reports, never as a crash,
// a hang, or an attacker-sized allocation. Corpus seeds are real stores
// serialized by corpus_gen, so coverage starts deep inside the happy path.
#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "fuzz_support.hpp"
#include "river/segment_store.hpp"
#include "segment_archive.hpp"

namespace rv = dynriver::river;
namespace fz = dynriver::fuzz;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  static fz::ScratchDir scratch;
  const auto& dir = scratch.reset();
  fz::unpack_archive(data, size, dir);

  // Read side: listing, integrity check, bounded drain.
  try {
    rv::SegmentStoreReader reader(dir);
    (void)reader.segments();
    std::string error;
    (void)reader.verify(&error);
    auto cursor = reader.seek(0.0);
    rv::Record rec;
    std::size_t drained = 0;
    while (cursor.next(rec)) {
      if (++drained > 100000) break;  // plenty for any corpus-sized store
    }
    (void)cursor.torn();
    (void)cursor.lost_bytes();
  } catch (const std::runtime_error&) {
    // Damaged manifest / sealed segment: the documented failure mode
    // (WireError is a runtime_error too).
  }

  // Write side: crash recovery must adopt, truncate, or reject — cleanly.
  try {
    rv::SegmentedRecordLog log(dir);
    rv::Record rec;
    rec.payload = rv::FloatVec{0.25F, -0.5F};
    // Append strictly after whatever times recovery adopted (the store
    // rejects non-finite archived times, so this maximum is finite).
    log.append(rec, std::max(1e9, log.last_time()));
    log.close();
  } catch (const std::runtime_error&) {
  }
  return 0;
}
