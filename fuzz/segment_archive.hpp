// Mini-archive format mapping one flat fuzz input onto a segment-store
// directory, shared by the segment_open harness and the corpus generator.
//
// The input is a sequence of entries, each
//   name_sel u8 | len u32 LE | len bytes of file content
// where name_sel picks one of a fixed set of store file names (the fuzzer
// cannot invent interesting names byte-by-byte faster than we can enumerate
// the ones the store looks at). len is clamped to the remaining input, so a
// hostile length cannot make the HARNESS allocate unboundedly — bounding the
// store itself against hostile lengths is the decoders' job.
#pragma once

#include <array>
#include <cstdint>
#include <filesystem>
#include <string_view>
#include <vector>

#include "fuzz_support.hpp"

namespace dynriver::fuzz {

inline constexpr std::array<std::string_view, 8> kArchiveNames = {
    "MANIFEST",           "seg-000000.drs", "seg-000001.drs",
    "seg-000002.drs",     "seg-000003.drs", "seg-000004.drs",
    "seg-000001.drs.tmp", "seg-000002.drs.tmp",
};

/// Materialize the archive entries of [data, data+size) under `dir`.
inline void unpack_archive(const std::uint8_t* data, std::size_t size,
                           const std::filesystem::path& dir) {
  while (size > 0) {
    const auto sel = take_u8(data, size);
    auto len = std::size_t{take_u32(data, size)};
    len = std::min(len, size);
    const auto name = kArchiveNames[sel % kArchiveNames.size()];
    write_file(dir / name, data, len);
    data += len;
    size -= len;
  }
}

/// Serialize one file as an archive entry (corpus generation).
inline void pack_entry(std::vector<std::uint8_t>& out, std::uint8_t sel,
                       const std::vector<std::uint8_t>& content) {
  out.push_back(sel);
  const auto len = static_cast<std::uint32_t>(content.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  }
  out.insert(out.end(), content.begin(), content.end());
}

}  // namespace dynriver::fuzz
