// Harness: flat record-log recovery and replay.
//
// The input is written to a scratch file and taken through both consumers:
// scan_log_valid_prefix (what crash recovery trusts to truncate a log) and
// RecordLogReader (what replay trusts to drain one). The two must agree on
// the record count of the valid prefix, the scan's byte count must never
// exceed the file, and neither may leak anything but the documented error
// types — recovery once crashed on a std::length_error escaping from a
// hostile packed frame's length field.
#include <cstdint>
#include <stdexcept>

#include "fuzz_support.hpp"
#include "river/record_log.hpp"
#include "river/wire.hpp"

namespace rv = dynriver::river;
namespace fz = dynriver::fuzz;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  static fz::ScratchDir scratch;
  const auto path = scratch.path() / "records.log";
  fz::write_file(path, data, size);

  const auto [valid_bytes, scanned_records] = rv::scan_log_valid_prefix(path);
  FUZZ_CHECK(valid_bytes <= size);

  rv::RecordLogReader reader(path);
  rv::Record rec;
  std::size_t drained = 0;
  try {
    while (reader.next(rec)) ++drained;
    // A clean drain (torn tail included) sees exactly the valid prefix.
    FUZZ_CHECK(drained == scanned_records);
    FUZZ_CHECK(!reader.torn() || valid_bytes < size);
  } catch (const rv::WireError&) {
    // Structural corruption: the reader stops mid-log, at or past wherever
    // the scan's incremental decoder gave up.
    FUZZ_CHECK(drained <= scanned_records);
  }
  return 0;
}
