// Golden-seed generator: builds each harness's starting corpus from the
// REAL encoders, so coverage-guided fuzzing starts inside the happy paths
// instead of spending its budget rediscovering magic numbers.
//
//   corpus_gen <output-root>
//
// writes <output-root>/<harness>/<seed-name> for every harness. Run once and
// commit the outputs under fuzz/corpus/ (see docs/ANALYSIS.md, "Fuzzing");
// regression inputs from actual findings are added next to them by hand.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "dsp/wav.hpp"
#include "fuzz_support.hpp"
#include "river/bitpack.hpp"
#include "river/record_log.hpp"
#include "river/segment_store.hpp"
#include "river/wire.hpp"
#include "segment_archive.hpp"

namespace fs = std::filesystem;
namespace rv = dynriver::river;
namespace bp = dynriver::river::bitpack;
namespace fz = dynriver::fuzz;

namespace {

rv::Record rich_record() {
  rv::Record rec;
  rec.type = rv::RecordType::kData;
  rec.subtype = rv::kSubtypeAudio;
  rec.scope_depth = 1;
  rec.scope_type = rv::kScopeClip;
  rec.sequence = 42;
  rec.attrs.emplace(rv::kAttrSampleRate, std::int64_t{22050});
  rec.attrs.emplace(rv::kAttrClipId, std::string("clip-0007"));
  rec.attrs.emplace("snr_db", 12.5);
  rv::FloatVec floats;
  for (int i = 0; i < 300; ++i) {
    floats.push_back(static_cast<float>((i * 37 % 128) - 64) / 128.0F);
  }
  rec.payload = std::move(floats);
  return rec;
}

std::vector<std::uint8_t> slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<std::uint8_t> bytes(size);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(size));
  return bytes;
}

void emit(const fs::path& root, const char* harness, const char* name,
          const std::vector<std::uint8_t>& bytes) {
  fs::create_directories(root / harness);
  fz::write_file(root / harness / name, bytes);
  std::printf("%s/%s: %zu bytes\n", harness, name, bytes.size());
}

std::vector<float> quantized_signal(std::size_t n, unsigned seed) {
  std::vector<float> v(n);
  unsigned s = seed * 2654435761u + 1u;
  for (std::size_t i = 0; i < n; ++i) {
    s = s * 1664525u + 1013904223u;
    const auto q = static_cast<std::int32_t>(s >> 17) - 16384;
    v[i] = static_cast<float>(q) / 32768.0F;
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: corpus_gen <output-root>\n");
    return 2;
  }
  const fs::path root = argv[1];
  const rv::Record rec = rich_record();

  // wire_decode: one raw frame, one packed frame, one attr-less scope frame.
  emit(root, "wire_decode", "raw_frame",
       rv::encode_record(rec, rv::PayloadCodec::kRaw));
  emit(root, "wire_decode", "packed_frame",
       rv::encode_record(rec, rv::PayloadCodec::kPacked));
  rv::Record scope;
  scope.type = rv::RecordType::kOpenScope;
  scope.scope_type = rv::kScopeClip;
  emit(root, "wire_decode", "scope_frame", rv::encode_record(scope));

  // bitpack: parse-mode seeds (sel byte 0 + count + stream) for all three
  // modes, and a round-trip seed (sel byte 1 + raw floats).
  const auto pack_seed = [&](const char* name, const std::vector<float>& v) {
    std::vector<std::uint8_t> packed;
    (void)bp::pack_floats(v, packed);
    std::vector<std::uint8_t> seed;
    seed.push_back(0);  // selector: parse
    const auto count = static_cast<std::uint32_t>(v.size());
    for (int i = 0; i < 4; ++i) {
      seed.push_back(static_cast<std::uint8_t>(count >> (8 * i)));
    }
    seed.insert(seed.end(), packed.begin(), packed.end());
    emit(root, "bitpack", name, seed);
  };
  pack_seed("i16_delta_stream", quantized_signal(300, 1));
  std::vector<float> wild(200);
  for (std::size_t i = 0; i < wild.size(); ++i) {
    wild[i] = static_cast<float>(i) * 1.618e-3F + 0.1F;  // not PCM16: xor mode
  }
  pack_seed("xor_stream", wild);
  pack_seed("short_raw_stream", {1e30F, -1e-30F, 3.25F});
  std::vector<std::uint8_t> rt;
  rt.push_back(1);  // selector: round-trip
  const auto q = quantized_signal(150, 2);
  rt.resize(1 + q.size() * sizeof(float));
  std::memcpy(rt.data() + 1, q.data(), q.size() * sizeof(float));
  emit(root, "bitpack", "roundtrip_floats", rt);

  // attrs: the attr region of the rich record (nattr prefix byte + bytes).
  {
    const auto frame = rv::encode_record(rec);
    std::size_t consumed = 0;
    rv::WireScratch scratch;
    const auto view =
        rv::decode_record_view(frame.data(), frame.size(), consumed, scratch);
    std::vector<std::uint8_t> seed;
    seed.push_back(static_cast<std::uint8_t>(view.nattr));
    seed.insert(seed.end(), view.attr_bytes.begin(), view.attr_bytes.end());
    emit(root, "attrs", "rich_attrs", seed);
  }

  fz::ScratchDir scratch;

  // record_log_scan: a healthy log, and the same log with a torn tail.
  {
    const auto log_path = scratch.path() / "seed.log";
    {
      rv::RecordLogWriter writer(log_path);
      for (int i = 0; i < 3; ++i) {
        rv::Record r = rec;
        r.sequence = static_cast<std::uint64_t>(i);
        writer.write(r);
      }
      writer.close();
    }
    auto log_bytes = slurp(log_path);
    emit(root, "record_log_scan", "clean_log", log_bytes);
    log_bytes.resize(log_bytes.size() - 17);
    emit(root, "record_log_scan", "torn_log", log_bytes);
  }

  // wav: mono and stereo clips through the real encoder.
  {
    dynriver::dsp::WavClip mono;
    mono.sample_rate = 22050;
    mono.channels = 1;
    mono.samples = quantized_signal(400, 3);
    emit(root, "wav", "mono", dynriver::dsp::encode_wav(mono));
    dynriver::dsp::WavClip stereo;
    stereo.sample_rate = 8000;
    stereo.channels = 2;
    stereo.samples = quantized_signal(300, 4);
    emit(root, "wav", "stereo", dynriver::dsp::encode_wav(stereo));
  }

  // segment_open: real stores (raw and packed payloads, sealed + active)
  // serialized through the mini-archive format the harness unpacks.
  for (const bool packed : {false, true}) {
    const auto store_dir =
        scratch.path() / (packed ? "store_packed" : "store_raw");
    fs::create_directories(store_dir);
    rv::SegmentStoreOptions opt;
    opt.max_segment_bytes = 4096;  // several sealed segments from 3k samples
    opt.pack_payloads = packed;
    rv::SegmentedRecordLog log(store_dir, opt);
    rv::AudioSegmentArchiver archiver(log, 22050.0, 256);
    const auto audio = quantized_signal(3000, packed ? 5 : 6);
    archiver.push(audio);
    archiver.finish();
    log.sync();

    // Serialize while the log is live so the seed keeps its ACTIVE tail
    // segment — that is what exercises recovery (closing would seal it).
    std::vector<std::uint8_t> archive;
    std::vector<fs::path> files;
    for (const auto& entry : fs::directory_iterator(store_dir)) {
      files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    for (const auto& file : files) {
      const auto name = file.filename().string();
      for (std::size_t sel = 0; sel < fz::kArchiveNames.size(); ++sel) {
        if (fz::kArchiveNames[sel] == name) {
          fz::pack_entry(archive, static_cast<std::uint8_t>(sel),
                         slurp(file));
          break;
        }
      }
    }
    emit(root, "segment_open", packed ? "store_packed" : "store_raw",
         archive);
    log.close();
  }
  return 0;
}
