// Harness: the wire frame decoders.
//
// Feeds the raw input to decode_record (whole-buffer) and to WireDecoder
// (incremental, with an input-derived adversarial split point) and checks
// the two agree; on an accepted frame, round-trips it through encode_record
// in both codecs and checks decode yields the identical Record. Every error
// escaping the decoders must be a WireError — anything else (bad_alloc from
// a hostile length, a stray std::length_error) is the bug class this
// harness exists to catch.
#include <cstdint>
#include <optional>
#include <vector>

#include "fuzz_support.hpp"
#include "river/wire.hpp"

namespace rv = dynriver::river;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // Whole-buffer decode.
  std::optional<rv::Record> whole;
  std::size_t consumed = 0;
  try {
    whole = rv::decode_record(data, size, consumed);
    FUZZ_CHECK(consumed <= size);
  } catch (const rv::WireError&) {
    // Malformed/truncated input: the expected outcome for most of the space.
  }

  // Incremental decode across an input-derived split: fragmentation must
  // never change the verdict on the same bytes.
  const std::size_t split =
      size == 0 ? 0 : (std::size_t{data[0]} * 131 + size) % (size + 1);
  rv::WireDecoder decoder;
  decoder.feed(data, split);
  rv::RecordView view;
  std::optional<rv::Record> incremental;
  try {
    if (!decoder.next_view(view)) {
      decoder.feed(data + split, size - split);
      if (decoder.next_view(view)) incremental = view.materialize();
    } else {
      incremental = view.materialize();
    }
  } catch (const rv::WireError&) {
  }

  if (whole.has_value()) {
    FUZZ_CHECK(incremental.has_value());
    FUZZ_CHECK(*incremental == *whole);

    // Round-trip: an accepted record re-encodes (raw and packed) to frames
    // that decode back bit-identically.
    for (const auto codec :
         {rv::PayloadCodec::kRaw, rv::PayloadCodec::kPacked}) {
      const auto frame = rv::encode_record(*whole, codec);
      FUZZ_CHECK(rv::decode_record(frame) == *whole);
    }
  }
  return 0;
}
