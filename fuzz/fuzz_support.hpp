// Shared helpers for the fuzz harnesses.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <unistd.h>
#include <vector>

/// Harness invariant check: libFuzzer (and the standalone driver) treat an
/// abort as a finding; assert() would vanish under NDEBUG Release builds.
#define FUZZ_CHECK(cond)                                                    \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "FUZZ_CHECK failed: %s at %s:%d\n", #cond,       \
                   __FILE__, __LINE__);                                     \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

namespace dynriver::fuzz {

/// Bounded little-endian reads from the front of the fuzz input — harnesses
/// use these to derive counts/selectors from input bytes deterministically.
inline std::uint32_t take_u32(const std::uint8_t*& data, std::size_t& size) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4 && size > 0; ++i, ++data, --size) {
    v |= std::uint32_t{*data} << (8 * i);
  }
  return v;
}

inline std::uint8_t take_u8(const std::uint8_t*& data, std::size_t& size) {
  if (size == 0) return 0;
  --size;
  return *data++;
}

/// Per-process scratch directory for harnesses that must exercise file-based
/// APIs. Reused (wiped) every iteration: creation cost, not accumulation,
/// dominates; the kernel keeps it in page cache.
class ScratchDir {
 public:
  ScratchDir() {
    dir_ = std::filesystem::temp_directory_path() /
           ("dynriver_fuzz_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  /// Wipe and recreate, returning the (empty) directory.
  const std::filesystem::path& reset() {
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    return dir_;
  }

  [[nodiscard]] const std::filesystem::path& path() const { return dir_; }

 private:
  std::filesystem::path dir_;
};

inline void write_file(const std::filesystem::path& path,
                       const std::uint8_t* data, std::size_t size) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(size));
}

inline void write_file(const std::filesystem::path& path,
                       const std::vector<std::uint8_t>& bytes) {
  write_file(path, bytes.data(), bytes.size());
}

}  // namespace dynriver::fuzz
