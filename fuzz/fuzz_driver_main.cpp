// Standalone driver for the fuzz harnesses: gives every *_fuzz.cpp a main()
// when libFuzzer is not linked (DYNRIVER_FUZZER=OFF), so the same binaries
// build under GCC/Release and replay the committed regression corpus as a
// plain tier-1 ctest. The command-line contract mirrors a libFuzzer binary
// run in replay mode (`fuzz_x -runs=0 corpus_dir file...`):
//
//   - every non-flag argument is a corpus file, or a directory whose regular
//     files are each fed to the harness once (sorted, for determinism);
//   - `-foo=bar` flags are accepted and ignored, so one ctest command line
//     works against both this driver and a real libFuzzer binary;
//   - `--mutate=N` additionally feeds N deterministic mutations of every
//     corpus input (bit flips, truncations, byte stomps from a fixed-seed
//     xorshift) — a cheap local smoke fuzz for toolchains without libFuzzer.
//
// A finding is whatever a finding is under libFuzzer: an uncaught exception,
// a sanitizer report, or a __builtin_trap() from a violated harness
// invariant. The driver itself never swallows anything.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

namespace fs = std::filesystem;

std::vector<std::uint8_t> slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    std::fprintf(stderr, "fuzz driver: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<std::uint8_t> bytes(size);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(size));
  return bytes;
}

/// xorshift64*: fixed seed, so a failing mutation reproduces by rerunning
/// the same command (the driver prints the input + round on entry).
class Rng {
 public:
  std::uint64_t next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1Dull;
  }

 private:
  std::uint64_t state_ = 0x9E3779B97F4A7C15ull;
};

void run_mutations(const std::vector<std::uint8_t>& seed, int rounds,
                   Rng& rng) {
  std::vector<std::uint8_t> buf;
  for (int round = 0; round < rounds; ++round) {
    buf = seed;
    const auto kind = rng.next() % 3;
    if (buf.empty() || kind == 0) {  // append / stomp a random byte
      const auto at = buf.empty() ? 0 : rng.next() % buf.size();
      if (buf.empty()) {
        buf.push_back(static_cast<std::uint8_t>(rng.next()));
      } else {
        buf[at] = static_cast<std::uint8_t>(rng.next());
      }
    } else if (kind == 1) {  // single bit flip
      const auto at = rng.next() % buf.size();
      buf[at] ^= static_cast<std::uint8_t>(1u << (rng.next() % 8));
    } else {  // truncate
      buf.resize(rng.next() % buf.size());
    }
    (void)LLVMFuzzerTestOneInput(buf.data(), buf.size());
  }
}

}  // namespace

int main(int argc, char** argv) {
  int mutate_rounds = 0;
  std::vector<fs::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--mutate=", 0) == 0) {
      mutate_rounds = std::atoi(arg.c_str() + 9);
    } else if (!arg.empty() && arg[0] == '-') {
      continue;  // libFuzzer-style flag: accepted, ignored
    } else if (fs::is_directory(arg)) {
      std::vector<fs::path> files;
      for (const auto& entry : fs::directory_iterator(arg)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      std::sort(files.begin(), files.end());
      inputs.insert(inputs.end(), files.begin(), files.end());
    } else {
      inputs.emplace_back(arg);
    }
  }

  Rng rng;
  std::size_t executed = 0;
  for (const auto& path : inputs) {
    const auto bytes = slurp(path);
    std::fprintf(stderr, "fuzz driver: %s (%zu bytes)\n", path.c_str(),
                 bytes.size());
    (void)LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
    ++executed;
    if (mutate_rounds > 0) run_mutations(bytes, mutate_rounds, rng);
  }
  std::fprintf(stderr, "fuzz driver: %zu inputs replayed clean\n", executed);
  return 0;
}
