// Tier-2 soak: 16 stations multiplexed on one host through a
// SessionScheduler, asserting the production-critical properties the unit
// suite cannot see at small scale:
//
//   1. Fairness: under deficit round-robin with every ingest queue kept
//      full, no session starves — the spread of consumed samples across
//      stations never exceeds one read chunk (deterministic: the test
//      drives rounds itself, so the assertion is exact, not timing-lucky).
//   2. Drop accounting: under kDropOldest with deliberate overfeeding,
//      pushed == consumed + dropped + queued holds exactly at every round.
//   3. Aggregate memory: queues + sessions stay within the sum of the
//      per-station bounds at every round.
//   4. End-to-end at 16-way concurrency (reader threads + worker pool,
//      exercised under ASan in CI): every stream arrives whole, losslessly,
//      and every sink receives exactly its own station's ensembles.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/extractor.hpp"
#include "core/session_scheduler.hpp"
#include "river/sample_io.hpp"
#include "test_support.hpp"

namespace core = dynriver::core;
namespace river = dynriver::river;
namespace testsupport = dynriver::testsupport;

namespace {

constexpr std::size_t kStations = 16;
constexpr std::size_t kSamplesPerStation = 120000;  // ~5.5 s at paper rate
constexpr std::size_t kQueueCapacity = 8192;
constexpr std::size_t kChunk = 1024;
constexpr std::size_t kQuantum = 3000;

core::PipelineParams soak_params() {
  core::PipelineParams params;
  params.anomaly = {.window = 50, .alphabet = 6, .level = 2,
                    .ma_window = 400, .frame = 8};
  params.trigger_min_baseline = 1500;
  params.trigger_hold_samples = 300;
  params.min_ensemble_samples = 600;
  params.merge_gap_samples = 2000;
  return params;
}

std::vector<float> station_signal(std::size_t n, unsigned seed) {
  auto xs = testsupport::noise_with_bursts(n, n / 4, n / 8, seed);
  const auto second =
      testsupport::noise_with_bursts(n, (3 * n) / 5, n / 10, seed + 1);
  for (std::size_t i = (3 * n) / 5; i < std::min(n, (3 * n) / 5 + n / 10);
       ++i) {
    xs[i] += second[i] * 0.5F;
  }
  return xs;
}

std::vector<std::vector<float>> station_signals() {
  std::vector<std::vector<float>> signals;
  signals.reserve(kStations);
  for (std::size_t s = 0; s < kStations; ++s) {
    signals.push_back(
        station_signal(kSamplesPerStation, 9000 + unsigned(s) * 17));
  }
  return signals;
}

}  // namespace

TEST(SchedulerSoak, DeficitRoundRobinIsFairAndDropAccountingIsExact) {
  const auto params = soak_params();
  const auto signals = station_signals();

  core::SchedulerOptions options;
  options.threads = 0;  // the shared worker pool — concurrency under ASan
  options.quantum_samples = kQuantum;
  core::SessionScheduler scheduler(std::move(options));
  for (std::size_t s = 0; s < kStations; ++s) {
    core::StationConfig config;
    config.params = params;
    config.policy = core::BackpressurePolicy::kDropOldest;
    config.queue_capacity_samples = kQueueCapacity;
    config.read_chunk_samples = kChunk;
    scheduler.add_station("station-" + std::to_string(s),
                          std::make_shared<river::NullEnsembleSink>(), config);
  }

  // The test drives ingest and rounds itself: each pass tops every queue up
  // to capacity PLUS two extra chunks, so kDropOldest must evict exactly
  // that overfeed — then runs one scheduling round. Deterministic no matter
  // how the pool schedules stations within a round.
  std::vector<std::size_t> cursor(kStations, 0);
  std::size_t fairness_rounds = 0;
  std::size_t peak_aggregate = 0;
  bool closed = false;
  for (;;) {
    auto snapshot = scheduler.stats();
    for (std::size_t s = 0; s < kStations; ++s) {
      std::size_t room_chunks =
          (kQueueCapacity - snapshot.stations[s].queued_samples) / kChunk + 2;
      while (room_chunks > 0 && cursor[s] < signals[s].size()) {
        const std::size_t n =
            std::min(kChunk, signals[s].size() - cursor[s]);
        scheduler.push(s, std::span<const float>(
                              signals[s].data() + cursor[s], n));
        cursor[s] += n;
        --room_chunks;
      }
    }
    if (!closed &&
        std::all_of(cursor.begin(), cursor.end(), [&](std::size_t c) {
          return c == kSamplesPerStation;
        })) {
      for (std::size_t s = 0; s < kStations; ++s) scheduler.close_station(s);
      closed = true;
    }
    if (!scheduler.process_available()) break;

    snapshot = scheduler.stats();
    peak_aggregate =
        std::max(peak_aggregate, snapshot.total_buffered_samples());
    std::size_t lo = kSamplesPerStation;
    std::size_t hi = 0;
    for (const auto& st : snapshot.stations) {
      // (2) Loss accounting is exact at every instant.
      ASSERT_EQ(st.samples_in,
                st.samples_consumed + st.samples_dropped + st.queued_samples)
          << st.name;
      ASSERT_LE(st.queued_samples, kQueueCapacity) << st.name;
      lo = std::min(lo, st.samples_consumed);
      hi = std::max(hi, st.samples_consumed);
    }
    // (1) Fairness, exactly: while every station still has input left, each
    // entered the round with a full queue, so deficit round-robin keeps all
    // consumed counts within one chunk of one another.
    if (std::all_of(cursor.begin(), cursor.end(), [&](std::size_t c) {
          return c < kSamplesPerStation;
        })) {
      ++fairness_rounds;
      ASSERT_LE(hi - lo, kChunk) << "a station starved under DRR";
    }
  }

  const auto stats = scheduler.stats();
  std::size_t total_dropped = 0;
  for (const auto& st : stats.stations) {
    EXPECT_TRUE(st.finished) << st.name;
    EXPECT_EQ(st.samples_in, kSamplesPerStation) << st.name;
    EXPECT_EQ(st.queued_samples, 0U) << st.name;
    // Exact final accounting: what was not consumed was dropped, to the
    // sample.
    EXPECT_EQ(st.samples_dropped, st.samples_in - st.samples_consumed)
        << st.name;
    EXPECT_GT(st.samples_dropped, 0U)
        << st.name << ": the overfeed must actually evict";
    total_dropped += st.samples_dropped;
  }
  EXPECT_EQ(stats.total_samples_dropped(), total_dropped);
  EXPECT_GT(fairness_rounds, 5U) << "fairness was barely exercised";

  std::printf("scheduler soak (drop-oldest): %zu stations, %zu rounds "
              "(%zu fairness-audited), %zu samples dropped exactly, peak "
              "aggregate buffer %zu samples\n",
              kStations, stats.rounds, fairness_rounds, total_dropped,
              peak_aggregate);
}

TEST(SchedulerSoak, SixteenStationRunIsLosslessAndBounded) {
  const auto params = soak_params();
  const auto signals = station_signals();

  const core::EnsembleExtractor extractor(params);
  std::vector<std::vector<river::Ensemble>> want;
  std::size_t want_total = 0;
  std::size_t longest = params.min_ensemble_samples;
  for (const auto& signal : signals) {
    want.push_back(extractor.extract(signal).ensembles);
    want_total += want.back().size();
    for (const auto& e : want.back()) longest = std::max(longest, e.length());
  }
  ASSERT_GT(want_total, kStations / 2) << "soak input must contain events";

  // Per-station bound: ingest queue + open ensemble + merge-gap lookahead +
  // cut slack for one undrained chunk.
  const std::size_t per_station_bound =
      kQueueCapacity + longest + params.merge_gap_samples + 2 * kChunk;

  std::size_t peak_aggregate = 0;
  core::SchedulerOptions options;
  options.threads = 0;
  options.quantum_samples = kQuantum;
  options.on_round = [&](const core::SchedulerStats& snapshot) {
    // (3) Aggregate memory bound, every round, with 16 concurrent readers.
    const std::size_t aggregate = snapshot.total_buffered_samples();
    peak_aggregate = std::max(peak_aggregate, aggregate);
    ASSERT_LE(aggregate, kStations * per_station_bound);
    for (const auto& st : snapshot.stations) {
      ASSERT_LE(st.queued_samples, kQueueCapacity) << st.name;
      ASSERT_EQ(st.samples_dropped, 0U) << st.name;
    }
  };

  core::SessionScheduler scheduler(std::move(options));
  std::vector<std::shared_ptr<river::CollectingEnsembleSink>> sinks;
  for (std::size_t s = 0; s < kStations; ++s) {
    core::StationConfig config;
    config.params = params;
    config.policy = core::BackpressurePolicy::kBlock;  // lossless ingest
    config.queue_capacity_samples = kQueueCapacity;
    config.read_chunk_samples = kChunk;
    auto sink = std::make_shared<river::CollectingEnsembleSink>();
    sinks.push_back(sink);
    scheduler.add_station(
        "station-" + std::to_string(s),
        std::make_shared<river::BufferSource>(signals[s], params.sample_rate),
        sink, config);
  }
  scheduler.run();

  const auto stats = scheduler.stats();
  std::size_t ensembles_total = 0;
  for (std::size_t s = 0; s < kStations; ++s) {
    const auto& st = stats.stations[s];
    EXPECT_TRUE(st.finished) << st.name;
    EXPECT_EQ(st.samples_in, kSamplesPerStation) << st.name;
    EXPECT_EQ(st.samples_consumed, kSamplesPerStation) << st.name;
    EXPECT_EQ(st.samples_dropped, 0U) << st.name;
    EXPECT_EQ(st.queued_samples, 0U) << st.name;
    // (4) Every sink got exactly its station's ensembles, bit-identically.
    ASSERT_EQ(sinks[s]->ensembles.size(), want[s].size()) << st.name;
    for (std::size_t i = 0; i < want[s].size(); ++i) {
      EXPECT_EQ(sinks[s]->ensembles[i].start_sample, want[s][i].start_sample);
      ASSERT_EQ(sinks[s]->ensembles[i].samples, want[s][i].samples);
    }
    ensembles_total += st.ensembles_out;
  }
  EXPECT_EQ(ensembles_total, want_total);

  std::printf("scheduler soak (run): %zu stations x %zu samples, %zu rounds, "
              "%zu ensembles, peak aggregate buffer %zu samples (bound "
              "%zu)\n",
              kStations, kSamplesPerStation, stats.rounds, ensembles_total,
              peak_aggregate, kStations * per_station_bound);
}
