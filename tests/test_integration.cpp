// System-level integration: the full distributed scenario. Sensor stations
// produce clips; the extraction and spectral segments run on separate
// threads connected by channels (and real TCP); segments are relocated
// mid-stream; upstream failures are contained by BadCloseScope recovery; the
// harvested patterns classify correctly.
#include <gtest/gtest.h>

#include <thread>

#include "core/birdsong.hpp"
#include "core/ops_acoustic.hpp"
#include "eval/protocol.hpp"
#include "meso/classifier.hpp"
#include "river/manager.hpp"
#include "river/scope.hpp"
#include "river/stream_io.hpp"
#include "river/tcp.hpp"
#include "synth/station.hpp"

namespace core = dynriver::core;
namespace river = dynriver::river;
namespace synth = dynriver::synth;
namespace meso = dynriver::meso;
using river::Record;
using river::RecordType;
using river::RecvStatus;

namespace {
core::PipelineParams params() { return core::PipelineParams{}; }

void feed_clip_records(river::RecordChannel& ch, const synth::ClipRecording& rec,
                       const std::string& species_code) {
  river::AttrMap attrs;
  attrs.emplace(core::kAttrSpecies, species_code);
  for (auto& r :
       core::clip_to_records(rec.clip, rec.clip_id, params().record_size, attrs)) {
    ch.send(std::move(r));
  }
}
}  // namespace

TEST(Integration, TwoSegmentPipelineOverChannels) {
  // Segment A: extraction (saxanomaly -> trigger -> cutter).
  // Segment B: spectral (reslice .. rec2vect).
  auto source = std::make_shared<river::InProcessChannel>(64);
  auto middle = std::make_shared<river::InProcessChannel>(64);
  auto sink_ch = std::make_shared<river::InProcessChannel>(4096);

  river::Segment seg_a("extract", core::make_extraction_pipeline(params()),
                       source, middle);
  river::Segment seg_b("spectral", core::make_spectral_pipeline(params()),
                       middle, sink_ch);

  std::thread ta([&] { (void)seg_a.run(); });
  std::thread tb([&] { (void)seg_b.run(); });

  synth::StationParams sp;
  sp.distractor_probability = 0.0;
  synth::SensorStation station(sp, 1001);
  const auto clip =
      station.record_clip({synth::SpeciesId::kRWBL, synth::SpeciesId::kRWBL});
  feed_clip_records(*source, clip, "RWBL");
  source->close();

  ta.join();
  tb.join();

  std::vector<Record> collected;
  Record rec;
  while (sink_ch->recv(rec) == RecvStatus::kRecord) collected.push_back(rec);

  river::ScopeTracker tracker;
  for (const auto& r : collected) tracker.observe(r);
  EXPECT_FALSE(tracker.any_open());

  const auto patterns = core::harvest_patterns(collected);
  ASSERT_GE(patterns.size(), 2u);
  for (const auto& p : patterns) {
    EXPECT_EQ(p.species, "RWBL");
    EXPECT_EQ(p.features.size(), params().features_per_pattern());
  }
}

TEST(Integration, PipelineSplitAcrossRealTcp) {
  river::TcpListener listener(0);
  const auto port = listener.port();

  // Host A: runs extraction, streams ensembles out over TCP.
  std::thread host_a([port] {
    auto source = std::make_shared<river::InProcessChannel>(64);
    synth::StationParams sp;
    sp.distractor_probability = 0.0;
    synth::SensorStation station(sp, 2002);
    const auto clip = station.record_clip({synth::SpeciesId::kNOCA});

    std::thread feeder([&source, &clip] {
      feed_clip_records(*source, clip, "NOCA");
      source->close();
    });

    auto tcp = std::make_shared<river::TcpRecordChannel>(
        river::TcpStream::connect("127.0.0.1", port));
    river::Segment segment("extract", core::make_extraction_pipeline(params()),
                           source, tcp);
    (void)segment.run();
    feeder.join();
  });

  // Host B: receives over TCP, runs the spectral segment.
  river::TcpRecordChannel incoming(listener.accept());
  auto spectral = core::make_spectral_pipeline(params());
  river::VectorEmitter sink;
  const auto result = river::stream_in(incoming, spectral, sink);
  host_a.join();

  EXPECT_TRUE(result.clean);
  const auto patterns = core::harvest_patterns(sink.records);
  ASSERT_FALSE(patterns.empty());
  EXPECT_EQ(patterns.front().species, "NOCA");
}

TEST(Integration, UpstreamDeathMidClipIsContained) {
  river::TcpListener listener(0);
  const auto port = listener.port();

  // Upstream dies after sending a partial clip (no CloseScope).
  std::thread dying_upstream([port] {
    river::TcpRecordChannel ch(river::TcpStream::connect("127.0.0.1", port));
    synth::StationParams sp;
    synth::SensorStation station(sp, 3003);
    const auto clip = station.record_clip({synth::SpeciesId::kBLJA});
    auto records =
        core::clip_to_records(clip.clip, 0, params().record_size);
    // Send the open scope and half the data records, then die abruptly.
    const std::size_t half = records.size() / 2;
    for (std::size_t i = 0; i < half; ++i) ch.send(std::move(records[i]));
    ch.disconnect();
  });

  river::TcpRecordChannel incoming(listener.accept());
  auto full = core::make_full_pipeline(params());
  river::VectorEmitter sink;
  const auto result = river::stream_in(incoming, full, sink);
  dying_upstream.join();

  EXPECT_FALSE(result.clean);
  EXPECT_EQ(result.bad_closes_emitted, 1u);  // the dangling clip scope

  // Downstream output is still well-formed despite the upstream death.
  river::ScopeTracker tracker;
  for (const auto& rec : sink.records) tracker.observe(rec);
  EXPECT_FALSE(tracker.any_open());
}

TEST(Integration, RelocationDuringLiveExtraction) {
  river::PipelineManager manager;
  manager.add_host("field-station");
  manager.add_host("observatory");

  auto source = std::make_shared<river::InProcessChannel>(32);
  auto sink_ch = std::make_shared<river::InProcessChannel>(100000);

  manager.deploy(std::make_unique<river::Segment>(
                     "full", core::make_full_pipeline(params()), source, sink_ch),
                 "field-station");

  synth::StationParams sp;
  sp.distractor_probability = 0.0;
  synth::SensorStation station(sp, 4004);

  std::thread feeder([&] {
    for (int c = 0; c < 4; ++c) {
      const auto clip = station.record_clip({synth::SpeciesId::kTUTI});
      feed_clip_records(*source, clip, "TUTI");
    }
    source->close();
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  (void)manager.relocate("full", "observatory");
  feeder.join();
  const auto stats = manager.wait_all();
  EXPECT_EQ(stats.at("full").cause, river::SegmentStopCause::kUpstreamClosed);

  std::vector<Record> collected;
  Record rec;
  while (sink_ch->recv(rec) == RecvStatus::kRecord) collected.push_back(rec);

  river::ScopeTracker tracker;
  for (const auto& r : collected) tracker.observe(r);
  EXPECT_FALSE(tracker.any_open());

  // All four clips' ensembles survived the relocation.
  const auto patterns = core::harvest_patterns(collected);
  EXPECT_GE(patterns.size(), 4u);
}

TEST(Integration, EndToEndClassificationAcrossThreads) {
  // Train MESO on patterns from two species, then classify a fresh clip
  // that flowed through a threaded two-segment pipeline.
  synth::StationParams sp;
  sp.distractor_probability = 0.0;
  synth::SensorStation station(sp, 5005);
  const auto p = params();

  meso::MesoClassifier clf;
  for (int round = 0; round < 6; ++round) {
    for (const auto id : {synth::SpeciesId::kMODO, synth::SpeciesId::kNOCA}) {
      const auto clip = station.record_clip({id});
      for (const auto& pat : core::process_clip(clip.clip, 0, p)) {
        clf.train(pat.features, static_cast<meso::Label>(id));
      }
    }
  }
  ASSERT_GT(clf.pattern_count(), 20u);

  // Fresh test clip through a threaded pipeline.
  auto source = std::make_shared<river::InProcessChannel>(64);
  auto sink_ch = std::make_shared<river::InProcessChannel>(100000);
  river::Segment segment("full", core::make_full_pipeline(p), source, sink_ch);
  std::thread runner([&] { (void)segment.run(); });

  const auto test_clip = station.record_clip({synth::SpeciesId::kMODO});
  feed_clip_records(*source, test_clip, "MODO");
  source->close();
  runner.join();

  std::vector<Record> collected;
  Record rec;
  while (sink_ch->recv(rec) == RecvStatus::kRecord) collected.push_back(rec);
  const auto patterns = core::harvest_patterns(collected);
  ASSERT_FALSE(patterns.empty());

  std::vector<int> votes;
  for (const auto& pat : patterns) votes.push_back(clf.classify(pat.features));
  const int predicted = dynriver::eval::majority_vote(votes, synth::kNumSpecies);
  EXPECT_EQ(predicted, static_cast<int>(synth::SpeciesId::kMODO));
}
