// Negative test for the thread-safety gate.
//
// With DR_EXPECT_THREAD_SAFETY_ERROR defined, read_unlocked() touches a
// DR_GUARDED_BY field without holding its mutex. Under Clang with
// -Werror=thread-safety this file must FAIL to compile — the ctest entry
// (lint_negative_thread_safety, WILL_FAIL) turns that failure into a pass,
// so the gate itself is regression-tested: if someone strips the warning
// flags or breaks the macro plumbing, this test goes red.
//
// Under GCC the annotations are no-ops and no diagnostic exists, so the
// build registers the same file WITHOUT the define as a plain syntax check
// (the well-guarded branch), keeping it from rotting.

#include "common/thread_annotations.hpp"

namespace {

class Counter {
 public:
  void bump() {
    const dynriver::common::LockGuard lock(mu_);
    ++value_;
  }

  int read_unlocked() {
#if defined(DR_EXPECT_THREAD_SAFETY_ERROR)
    return value_;  // unguarded access: must not compile under Clang
#else
    const dynriver::common::LockGuard lock(mu_);
    return value_;
#endif
  }

 private:
  dynriver::common::Mutex mu_;
  int value_ DR_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.bump();
  return c.read_unlocked() == 1 ? 0 : 1;
}
