// Multi-stream extraction (paper future work): fused scoring across
// synchronized channels, single-stream equivalence, and context-augmented
// patterns.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/stopwatch.hpp"
#include "core/extractor.hpp"
#include "meso/baselines.hpp"
#include "core/multistream.hpp"
#include "synth/station.hpp"
#include "test_support.hpp"

namespace core = dynriver::core;
namespace synth = dynriver::synth;

namespace {
synth::ClipRecording record_clip(std::uint64_t seed,
                                 const std::vector<synth::SpeciesId>& singers) {
  return dynriver::testsupport::record_station_clip(seed, singers);
}

core::MultiStreamParams default_multi() {
  core::MultiStreamParams p;
  return p;
}
}  // namespace

TEST(MultiStream, SingleStreamMatchesEnsembleExtractor) {
  const auto clip = record_clip(91, {synth::SpeciesId::kNOCA});
  const core::EnsembleExtractor single(core::PipelineParams{});
  const core::MultiStreamExtractor multi(default_multi());

  const auto single_result = single.extract(clip.clip.samples);
  const std::span<const float> stream(clip.clip.samples);
  const auto multi_result = multi.extract(std::vector{stream});

  ASSERT_EQ(multi_result.ensembles.size(), single_result.ensembles.size());
  for (std::size_t i = 0; i < single_result.ensembles.size(); ++i) {
    EXPECT_EQ(multi_result.ensembles[i].start_sample,
              single_result.ensembles[i].start_sample);
    EXPECT_EQ(multi_result.ensembles[i].length,
              single_result.ensembles[i].length());
    EXPECT_EQ(multi_result.ensembles[i].channel_samples[0],
              single_result.ensembles[i].samples);
  }
}

TEST(MultiStream, ChannelsShareIdenticalBoundaries) {
  // Two correlated channels: the same clip at different gains plus
  // independent noise floors (two microphones on one station).
  const auto clip = record_clip(92, {synth::SpeciesId::kRWBL,
                                     synth::SpeciesId::kTUTI});
  std::vector<float> mic2(clip.clip.samples.size());
  dynriver::Rng rng(5);
  for (std::size_t i = 0; i < mic2.size(); ++i) {
    mic2[i] = 0.6F * clip.clip.samples[i] +
              static_cast<float>(rng.gaussian(0.0, 0.002));
  }

  const core::MultiStreamExtractor multi(default_multi());
  const std::vector<std::span<const float>> streams = {clip.clip.samples, mic2};
  const auto result = multi.extract(streams);

  ASSERT_FALSE(result.ensembles.empty());
  for (const auto& e : result.ensembles) {
    ASSERT_EQ(e.channel_samples.size(), 2u);
    EXPECT_EQ(e.channel_samples[0].size(), e.length);
    EXPECT_EQ(e.channel_samples[1].size(), e.length);
    // Channel cuts are the aligned slices of each stream.
    for (std::size_t i = 0; i < e.length; i += 997) {
      EXPECT_FLOAT_EQ(e.channel_samples[0][i],
                      clip.clip.samples[e.start_sample + i]);
      EXPECT_FLOAT_EQ(e.channel_samples[1][i], mic2[e.start_sample + i]);
    }
  }
}

TEST(MultiStream, MaxFusionDetectsEventPresentInOneChannelOnly) {
  // Channel A carries the songs; channel B is pure background. Max fusion
  // must still find every planted song.
  const auto clip = record_clip(93, {synth::SpeciesId::kBCCH,
                                     synth::SpeciesId::kBCCH});
  synth::StationParams sp;
  sp.distractor_probability = 0.0;
  synth::SensorStation quiet_station(sp, 94);
  const auto quiet = quiet_station.record_silence();

  core::MultiStreamParams params = default_multi();
  params.fusion = core::ScoreFusion::kMax;
  const core::MultiStreamExtractor multi(params);
  const std::vector<std::span<const float>> streams = {clip.clip.samples,
                                                       quiet.clip.samples};
  const auto result = multi.extract(streams);

  for (const auto& t : clip.truth) {
    bool found = false;
    for (const auto& e : result.ensembles) {
      if (synth::intervals_overlap(e.start_sample, e.end_sample(),
                                   t.start_sample, t.end_sample(), 0.25)) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << "song at " << t.start_sample;
  }
}

TEST(MultiStream, FusedScoresExposedWhenRequested) {
  const auto clip = record_clip(95, {synth::SpeciesId::kNOCA});
  const core::MultiStreamExtractor multi(default_multi());
  const std::span<const float> stream(clip.clip.samples);
  const auto result = multi.extract(std::vector{stream}, /*keep_signals=*/true);
  EXPECT_EQ(result.fused_scores.size(), clip.clip.samples.size());
}

TEST(MultiStream, ThreadedScoringBitIdenticalToSerial) {
  // The ThreadPool determinism criterion: identical ensembles and fused
  // scores whether channels are scored serially or on the pool.
  const auto clip = record_clip(96, {synth::SpeciesId::kMODO,
                                     synth::SpeciesId::kAMGO});
  std::vector<float> mic2(clip.clip.samples.size());
  dynriver::Rng rng(7);
  for (std::size_t i = 0; i < mic2.size(); ++i) {
    mic2[i] = 0.7F * clip.clip.samples[i] +
              static_cast<float>(rng.gaussian(0.0, 0.003));
  }
  const std::vector<std::span<const float>> streams = {clip.clip.samples, mic2};

  for (const auto fusion : {core::ScoreFusion::kMax, core::ScoreFusion::kMean}) {
    core::MultiStreamParams serial_params = default_multi();
    serial_params.fusion = fusion;
    serial_params.score_threads = 1;
    core::MultiStreamParams threaded_params = serial_params;
    threaded_params.score_threads = 4;

    const auto serial =
        core::MultiStreamExtractor(serial_params).extract(streams, true);
    const auto threaded =
        core::MultiStreamExtractor(threaded_params).extract(streams, true);

    EXPECT_EQ(serial.fused_scores, threaded.fused_scores);
    ASSERT_EQ(serial.ensembles.size(), threaded.ensembles.size());
    for (std::size_t i = 0; i < serial.ensembles.size(); ++i) {
      EXPECT_EQ(serial.ensembles[i].start_sample,
                threaded.ensembles[i].start_sample);
      EXPECT_EQ(serial.ensembles[i].length, threaded.ensembles[i].length);
      EXPECT_EQ(serial.ensembles[i].channel_samples,
                threaded.ensembles[i].channel_samples);
    }
  }
}

TEST(MultiStream, ChunkedDispatchBitIdenticalAcrossLaneCounts) {
  // The chunked dispatch path (32768-sample chunks, persistent per-lane
  // scorers, per-chunk measured threading gate) must produce identical
  // output for ANY lane count, including when the gate mixes threaded and
  // serial chunks within one extraction — the gate is a pure scheduling
  // decision and must never leak into the scores.
  const auto clip = record_clip(98, {synth::SpeciesId::kMODO,
                                     synth::SpeciesId::kWBNU});
  std::vector<float> mic2(clip.clip.samples.size());
  std::vector<float> mic3(clip.clip.samples.size());
  dynriver::Rng rng(11);
  for (std::size_t i = 0; i < mic2.size(); ++i) {
    mic2[i] = 0.8F * clip.clip.samples[i] +
              static_cast<float>(rng.gaussian(0.0, 0.004));
    mic3[i] = 0.5F * clip.clip.samples[i] +
              static_cast<float>(rng.gaussian(0.0, 0.006));
  }
  const std::vector<std::span<const float>> streams = {clip.clip.samples,
                                                       mic2, mic3};

  core::MultiStreamParams base = default_multi();
  base.score_threads = 1;
  const auto want = core::MultiStreamExtractor(base).extract(streams, true);

  for (const std::size_t threads : {2UL, 3UL, 8UL}) {
    core::MultiStreamParams p = base;
    p.score_threads = threads;
    const auto got = core::MultiStreamExtractor(p).extract(streams, true);
    EXPECT_EQ(got.fused_scores, want.fused_scores) << "threads=" << threads;
    ASSERT_EQ(got.ensembles.size(), want.ensembles.size())
        << "threads=" << threads;
    for (std::size_t i = 0; i < want.ensembles.size(); ++i) {
      EXPECT_EQ(got.ensembles[i].start_sample, want.ensembles[i].start_sample);
      EXPECT_EQ(got.ensembles[i].length, want.ensembles[i].length);
      EXPECT_EQ(got.ensembles[i].channel_samples,
                want.ensembles[i].channel_samples);
    }
  }
}

TEST(MultiStream, SingleChannelDegradesToSerialBitIdentical) {
  // lanes = min(runner lanes, channels): one channel must take the serial
  // path no matter how many threads were requested, with identical output.
  const auto clip = record_clip(99, {synth::SpeciesId::kAMGO});
  const std::vector<std::span<const float>> streams = {clip.clip.samples};

  core::MultiStreamParams serial = default_multi();
  serial.score_threads = 1;
  core::MultiStreamParams threaded = serial;
  threaded.score_threads = 8;

  const auto a = core::MultiStreamExtractor(serial).extract(streams, true);
  const auto b = core::MultiStreamExtractor(threaded).extract(streams, true);
  EXPECT_EQ(a.fused_scores, b.fused_scores);
  ASSERT_EQ(a.ensembles.size(), b.ensembles.size());
  for (std::size_t i = 0; i < a.ensembles.size(); ++i) {
    EXPECT_EQ(a.ensembles[i].start_sample, b.ensembles[i].start_sample);
    EXPECT_EQ(a.ensembles[i].length, b.ensembles[i].length);
  }
}

TEST(MultiStream, ThreadedNeverMuchSlowerThanSerial) {
  // The point of the measured dispatch gate: requesting threads must never
  // cost much. On hardware where threading loses (one core, oversubscribed
  // container), the gate measures chunk 0 serially, tries chunk 1 threaded,
  // and falls back — so the threaded configuration's steady state is the
  // serial path plus one probed chunk. The bound is deliberately generous
  // (3x, best-of-3) because CI machines are noisy; the PR 6 behaviour this
  // guards against was threaded running 60% slower than serial on one core,
  // consistently.
  const auto clip = record_clip(100, {synth::SpeciesId::kMODO,
                                      synth::SpeciesId::kAMGO});
  std::vector<float> mic2(clip.clip.samples.size());
  dynriver::Rng rng(13);
  for (std::size_t i = 0; i < mic2.size(); ++i) {
    mic2[i] = 0.6F * clip.clip.samples[i] +
              static_cast<float>(rng.gaussian(0.0, 0.005));
  }
  const std::vector<std::span<const float>> streams = {clip.clip.samples, mic2};

  core::MultiStreamParams serial_params = default_multi();
  serial_params.score_threads = 1;
  core::MultiStreamParams threaded_params = serial_params;
  threaded_params.score_threads = 4;

  core::MultiStreamExtractor serial_ex(serial_params);
  core::MultiStreamExtractor threaded_ex(threaded_params);
  // Warm both (corpus pages, pool spin-up, dispatch-cost probe).
  (void)serial_ex.extract(streams, false);
  (void)threaded_ex.extract(streams, false);

  double serial_best = 1e300;
  double threaded_best = 1e300;
  for (int r = 0; r < 3; ++r) {
    dynriver::Stopwatch sw1;
    (void)serial_ex.extract(streams, false);
    serial_best = std::min(serial_best, sw1.seconds());
    dynriver::Stopwatch sw2;
    (void)threaded_ex.extract(streams, false);
    threaded_best = std::min(threaded_best, sw2.seconds());
  }
  EXPECT_LT(threaded_best, serial_best * 3.0)
      << "serial=" << serial_best << "s threaded=" << threaded_best << "s";
}

TEST(MultiStream, FeaturizeYieldsPatternsPerChannel) {
  const auto clip = record_clip(97, {synth::SpeciesId::kBLJA});
  const core::MultiStreamExtractor multi(default_multi());
  const std::span<const float> stream(clip.clip.samples);
  const auto result = multi.extract(std::vector{stream, stream});
  ASSERT_FALSE(result.ensembles.empty());

  const auto channel_patterns = multi.featurize(result.ensembles.front());
  ASSERT_EQ(channel_patterns.size(), 2u);
  ASSERT_FALSE(channel_patterns[0].empty());
  // Identical channels produce identical patterns of the configured width.
  EXPECT_EQ(channel_patterns[0], channel_patterns[1]);
  EXPECT_EQ(channel_patterns[0][0].size(),
            multi.params().base.features_per_pattern());
}

TEST(MultiStream, MismatchedLengthsRejected) {
  const std::vector<float> a(10000, 0.0F);
  const std::vector<float> b(9999, 0.0F);
  const core::MultiStreamExtractor multi(default_multi());
  const std::vector<std::span<const float>> streams = {a, b};
  EXPECT_THROW((void)multi.extract(streams), dynriver::ContractViolation);
}

TEST(ContextAugment, AppendsScaledContext) {
  const std::vector<float> pattern = {3.0F, 4.0F};  // RMS = sqrt(12.5)
  const std::vector<float> context = {1.0F, -2.0F};
  const auto augmented = core::augment_with_context(pattern, context, 1.0);
  ASSERT_EQ(augmented.size(), 4u);
  EXPECT_FLOAT_EQ(augmented[0], 3.0F);
  EXPECT_FLOAT_EQ(augmented[1], 4.0F);
  const float rms = std::sqrt(12.5F);
  EXPECT_NEAR(augmented[2], rms, 1e-5);
  EXPECT_NEAR(augmented[3], -2.0F * rms, 1e-4);
}

TEST(ContextAugment, ZeroGainLeavesContextInert) {
  const std::vector<float> pattern = {1.0F, 1.0F};
  const std::vector<float> context = {42.0F};
  const auto augmented = core::augment_with_context(pattern, context, 0.0);
  ASSERT_EQ(augmented.size(), 3u);
  EXPECT_FLOAT_EQ(augmented[2], 0.0F);
}

TEST(ContextAugment, ImprovesSeparationOfAmbiguousClasses) {
  // Two "species" with identical spectra but different habitat context: the
  // side channel is what separates them, mirroring the paper's motivation.
  dynriver::Rng rng(6);
  dynriver::meso::KnnClassifier plain(1);
  dynriver::meso::KnnClassifier contextual(1);

  std::vector<std::pair<std::vector<float>, int>> test_set;
  for (int i = 0; i < 120; ++i) {
    const int label = i % 2;
    std::vector<float> spectrum(20);
    for (auto& v : spectrum) {
      v = static_cast<float>(rng.gaussian(1.0, 0.3));  // same for both classes
    }
    // Context: class 0 sings at dawn in open habitat, class 1 at dusk.
    const std::vector<float> context = {
        static_cast<float>(rng.gaussian(label == 0 ? -1.0 : 1.0, 0.3)),
        static_cast<float>(rng.gaussian(label == 0 ? 0.5 : -0.5, 0.3))};
    const auto augmented = core::augment_with_context(spectrum, context, 1.0);
    if (i < 80) {
      plain.train(spectrum, label);
      contextual.train(augmented, label);
    } else {
      test_set.emplace_back(augmented, label);
      test_set.back().first = augmented;
    }
  }

  int plain_correct = 0;
  int contextual_correct = 0;
  for (const auto& [augmented, label] : test_set) {
    const std::span<const float> spectrum_only(augmented.data(), 20);
    if (plain.classify(spectrum_only) == label) ++plain_correct;
    if (contextual.classify(augmented) == label) ++contextual_correct;
  }
  // Spectra are pure noise (plain ~ 50%); context should lift accuracy.
  EXPECT_GT(contextual_correct, plain_correct + 5);
}
