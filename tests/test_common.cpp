// Common utilities: contracts, running statistics, moving average, RNG.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <random>
#include <stdexcept>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"

using dynriver::MovingAverage;
using dynriver::Rng;
using dynriver::RunningStats;

TEST(Contracts, ViolationsThrowWithLocation) {
  try {
    DR_EXPECTS(1 == 2);
    FAIL() << "should have thrown";
  } catch (const dynriver::ContractViolation& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("precondition"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("test_common.cpp"), std::string::npos);
  }
}

TEST(Contracts, EnsuresAndAssertDistinguished) {
  EXPECT_THROW(DR_ENSURES(false), dynriver::ContractViolation);
  EXPECT_THROW(DR_ASSERT(false), dynriver::ContractViolation);
  EXPECT_NO_THROW(DR_EXPECTS(true));
}

TEST(RunningStats, MatchesClosedForm) {
  RunningStats rs;
  const double xs[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (const double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), 8u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 4.0);      // population
  EXPECT_DOUBLE_EQ(rs.stddev(), 2.0);
  EXPECT_NEAR(rs.sample_variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStats, FewSamplesHaveZeroVariance) {
  RunningStats rs;
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  rs.add(42.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 42.0);
}

TEST(RunningStats, ResetClears) {
  RunningStats rs;
  rs.add(1.0);
  rs.add(2.0);
  rs.reset();
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
}

TEST(RunningStats, NumericallyStableWithLargeOffsets) {
  RunningStats rs;
  // Classic catastrophic-cancellation case for naive sum-of-squares.
  for (int i = 0; i < 1000; ++i) rs.add(1e9 + (i % 2));
  EXPECT_NEAR(rs.variance(), 0.25, 1e-6);
}

TEST(MovingAverage, WarmupAveragesSeenValues) {
  MovingAverage ma(4);
  EXPECT_DOUBLE_EQ(ma.push(2.0), 2.0);
  EXPECT_DOUBLE_EQ(ma.push(4.0), 3.0);
  EXPECT_DOUBLE_EQ(ma.push(6.0), 4.0);
}

TEST(MovingAverage, SlidesAfterFilling) {
  MovingAverage ma(3);
  ma.push(1.0);
  ma.push(2.0);
  ma.push(3.0);
  EXPECT_DOUBLE_EQ(ma.push(4.0), 3.0);   // (2+3+4)/3
  EXPECT_DOUBLE_EQ(ma.push(10.0), 17.0 / 3.0);
  EXPECT_EQ(ma.size(), 3u);
}

TEST(MovingAverage, WindowOneTracksInput) {
  MovingAverage ma(1);
  EXPECT_DOUBLE_EQ(ma.push(5.0), 5.0);
  EXPECT_DOUBLE_EQ(ma.push(-1.0), -1.0);
}

TEST(MovingAverage, RejectsZeroWindow) {
  EXPECT_THROW(MovingAverage{0}, dynriver::ContractViolation);
}

TEST(MovingAverage, ResetRestartsWarmup) {
  MovingAverage ma(3);
  ma.push(9.0);
  ma.reset();
  EXPECT_DOUBLE_EQ(ma.value(), 0.0);
  EXPECT_DOUBLE_EQ(ma.push(1.0), 1.0);
}

namespace {

/// Reference for the run-length-encoded window: an explicit per-sample FIFO
/// with the exact running-sum arithmetic (evict-subtract, add, multiply by
/// the stored reciprocal) the pre-RLE sample ring used. The RLE window must
/// match it bit-for-bit for ANY input — distinct values just degrade to
/// length-1 runs.
class SampleRingReference {
 public:
  explicit SampleRingReference(std::size_t window) : window_(window) {}
  double push(double x) {
    if (buf_.size() == window_) {
      sum_ -= buf_.front();
      buf_.pop_front();
    } else {
      inv_size_ = 1.0 / static_cast<double>(buf_.size() + 1);
    }
    buf_.push_back(x);
    sum_ += x;
    return sum_ * inv_size_;
  }

 private:
  std::size_t window_;
  std::deque<double> buf_;
  double sum_ = 0.0;
  double inv_size_ = 0.0;
};

}  // namespace

TEST(MovingAverage, MatchesSampleRingOnDistinctValuesExactly) {
  // All-distinct input is the RLE window's worst case: every run has length
  // one and the run ring cycles exactly like the old sample ring did.
  std::mt19937 gen(77);
  std::uniform_real_distribution<double> dist(-3.0, 3.0);
  for (const std::size_t window : {1UL, 2UL, 3UL, 7UL, 64UL}) {
    MovingAverage ma(window);
    SampleRingReference ref(window);
    for (std::size_t i = 0; i < 4 * window + 37; ++i) {
      const double x = dist(gen);
      ASSERT_EQ(ma.push(x), ref.push(x)) << "window=" << window << " i=" << i;
    }
  }
}

TEST(MovingAverage, MatchesSampleRingOnRunHeavyInputExactly) {
  // Frame-constant scores (the anomaly scorer's smoothing input) produce
  // long runs; alternating values produce the shortest merge-eligible runs.
  for (const std::size_t window : {1UL, 5UL, 24UL, 250UL}) {
    MovingAverage ma(window);
    SampleRingReference ref(window);
    std::mt19937 gen(78);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    std::size_t i = 0;
    while (i < 6 * window + 50) {
      const double x = dist(gen);
      const std::size_t run = 1 + (gen() % 40);  // runs up to ~1.6 windows
      for (std::size_t t = 0; t < run; ++t, ++i) {
        ASSERT_EQ(ma.push(x), ref.push(x)) << "window=" << window << " i=" << i;
      }
    }
    // Alternating pair: runs never merge, eviction splits at every step.
    for (std::size_t t = 0; t < 3 * window; ++t, ++i) {
      const double x = (t % 2 == 0) ? 0.5 : -0.25;
      ASSERT_EQ(ma.push(x), ref.push(x)) << "window=" << window << " i=" << i;
    }
  }
}

TEST(MovingAverage, PushRunMatchesPushExactly) {
  // push_run is the batch scorer's hoisted fast path; it must replicate
  // push()'s exact arithmetic for every run length, including runs that
  // cross the warm-up boundary and runs longer than the window.
  std::mt19937 gen(79);
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  for (const std::size_t window : {1UL, 2UL, 5UL, 24UL, 250UL}) {
    MovingAverage batched(window);
    MovingAverage streamed(window);
    std::size_t total = 0;
    std::size_t run = 1;
    while (total < 5 * window + 100) {
      // Repeat values sometimes so the tail-run extension path is hit too.
      const double x = (gen() % 4 == 0) ? 0.75 : dist(gen);
      std::vector<double> got(run);
      batched.push_run(x, run, got.data());
      for (std::size_t t = 0; t < run; ++t) {
        ASSERT_EQ(got[t], streamed.push(x))
            << "window=" << window << " run=" << run << " t=" << t;
      }
      total += run;
      run = run * 2 + 1;  // 1, 3, 7, ... quickly exceeds the window
      if (run > 2 * window + 7) run = 1;
    }
    // Float output narrows the same double value.
    const double x = dist(gen);
    std::vector<float> gotf(3);
    batched.push_run(x, 3, gotf.data());
    for (std::size_t t = 0; t < 3; ++t) {
      ASSERT_EQ(gotf[t], static_cast<float>(streamed.push(x))) << "t=" << t;
    }
  }
}

TEST(MeanStdHelpers, SpanOverloads) {
  const std::vector<float> xs = {1.0F, 2.0F, 3.0F, 4.0F};
  EXPECT_DOUBLE_EQ(dynriver::mean_of(std::span<const float>(xs)), 2.5);
  EXPECT_NEAR(dynriver::stddev_of(std::span<const float>(xs)),
              std::sqrt(1.25), 1e-12);
  EXPECT_DOUBLE_EQ(dynriver::mean_of(std::span<const double>{}), 0.0);
}

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMomentsRoughlyCorrect) {
  Rng rng(11);
  RunningStats rs;
  for (int i = 0; i < 20000; ++i) rs.add(rng.gaussian(3.0, 2.0));
  EXPECT_NEAR(rs.mean(), 3.0, 0.1);
  EXPECT_NEAR(rs.stddev(), 2.0, 0.1);
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng parent(42);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  // Different children disagree (overwhelmingly likely).
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1.uniform_int(0, 1000000) == child2.uniform_int(0, 1000000)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  dynriver::Stopwatch watch;
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GT(sink, 0.0);  // keep the loop observable
  EXPECT_GT(watch.seconds(), 0.0);
  EXPECT_GE(watch.millis(), watch.seconds() * 1000.0 * 0.99);
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  dynriver::common::ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(0, kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, RespectsBeginOffsetAndEmptyRange) {
  dynriver::common::ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(10);
  pool.parallel_for(3, 7, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(hits[i].load(), (i >= 3 && i < 7) ? 1 : 0);
  }
  pool.parallel_for(5, 5, [&](std::size_t) { FAIL() << "empty range ran"; });
}

TEST(ThreadPool, DeterministicWhenResultsSlottedByIndex) {
  // The determinism contract: bodies write disjoint per-index slots, the
  // caller folds serially in index order afterwards. The folded result must
  // not depend on thread count.
  const auto run = [](std::size_t threads) {
    dynriver::common::ThreadPool pool(threads);
    std::vector<double> slots(500);
    pool.parallel_for(0, slots.size(), [&](std::size_t i) {
      slots[i] = std::sin(static_cast<double>(i)) * 1e-3;
    });
    double acc = 0.0;
    for (const double v : slots) acc += v;  // fixed fold order
    return acc;
  };
  const double serial = run(1);
  const double threaded = run(8);
  EXPECT_EQ(serial, threaded);  // bit-identical, not just approximately
}

TEST(ThreadPool, PropagatesBodyException) {
  dynriver::common::ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [](std::size_t i) {
                                   if (i == 42) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, SharedPoolIsSingletonAndUsable) {
  auto& a = dynriver::common::ThreadPool::shared();
  auto& b = dynriver::common::ThreadPool::shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.thread_count(), 1U);
  std::atomic<std::size_t> count{0};
  a.parallel_for(0, 64, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64U);
}

TEST(ThreadPool, HonorsDrThreadsOverride) {
  // threads=0 resolves through DR_THREADS (the knob shared() uses); explicit
  // counts and malformed values are unaffected.
  ASSERT_EQ(::setenv("DR_THREADS", "3", 1), 0);
  {
    dynriver::common::ThreadPool pool(0);
    EXPECT_EQ(pool.thread_count(), 3U);
    std::atomic<std::size_t> count{0};
    pool.parallel_for(0, 16, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 16U);
  }
  {
    dynriver::common::ThreadPool pool(2);
    EXPECT_EQ(pool.thread_count(), 2U);  // explicit count wins
  }
  ASSERT_EQ(::setenv("DR_THREADS", "not-a-number", 1), 0);
  {
    dynriver::common::ThreadPool pool(0);
    EXPECT_GE(pool.thread_count(), 1U);  // falls back to hardware concurrency
  }
  ASSERT_EQ(::unsetenv("DR_THREADS"), 0);
}

TEST(ThreadPool, SequentialCallsReuseWorkers) {
  dynriver::common::ThreadPool pool(2);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(0, 20, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 1000U);
}
