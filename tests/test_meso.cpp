// MESO: sensitivity sphere mechanics, tree exactness, classification on
// separable data, incremental behaviour, delta adaptation, serialization,
// and the baseline classifiers.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <sstream>

#include "common/contracts.hpp"
#include "meso/baselines.hpp"
#include "meso/classifier.hpp"

namespace meso = dynriver::meso;

namespace {

/// Deterministic Gaussian blobs: `per_class` patterns around distinct means.
std::vector<meso::Pattern> make_blobs(std::size_t classes, std::size_t per_class,
                                      std::size_t dim, float spread,
                                      unsigned seed) {
  std::mt19937 gen(seed);
  std::normal_distribution<float> noise(0.0F, spread);
  std::vector<meso::Pattern> out;
  out.reserve(classes * per_class);
  for (std::size_t c = 0; c < classes; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) {
      meso::Pattern p;
      p.label = static_cast<meso::Label>(c);
      p.features.resize(dim);
      for (std::size_t d = 0; d < dim; ++d) {
        const float center = (d % classes == c) ? 4.0F : 0.0F;
        p.features[d] = center + noise(gen);
      }
      out.push_back(std::move(p));
    }
  }
  std::shuffle(out.begin(), out.end(), gen);
  return out;
}

}  // namespace

TEST(SensitivitySphere, RunningMeanCenter) {
  const std::vector<float> a = {0.0F, 0.0F};
  const std::vector<float> b = {2.0F, 4.0F};
  meso::SensitivitySphere s(a, 0, 0);
  s.absorb(b, 0, 1);
  EXPECT_FLOAT_EQ(s.center()[0], 1.0F);
  EXPECT_FLOAT_EQ(s.center()[1], 2.0F);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.pure());
}

TEST(SensitivitySphere, MajorityLabelAndPurity) {
  const std::vector<float> x = {1.0F};
  meso::SensitivitySphere s(x, 3, 0);
  s.absorb(x, 3, 1);
  s.absorb(x, 5, 2);
  EXPECT_EQ(s.majority_label(), 3);
  EXPECT_FALSE(s.pure());
  EXPECT_EQ(s.label_counts().at(3), 2u);
  EXPECT_EQ(s.label_counts().at(5), 1u);
}

TEST(SquaredDistance, BasicAndBounded) {
  const std::vector<float> a = {0.0F, 3.0F};
  const std::vector<float> b = {4.0F, 0.0F};
  EXPECT_DOUBLE_EQ(meso::squared_distance(a, b), 25.0);
  // Bounded version must abandon at/after the cutoff but never underestimate.
  EXPECT_GE(meso::squared_distance_bounded(a, b, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(meso::squared_distance_bounded(a, b, 1e9), 25.0);
}

TEST(SphereTree, NearestMatchesLinearScan) {
  std::mt19937 gen(17);
  std::normal_distribution<float> dist(0.0F, 1.0F);

  std::vector<meso::SensitivitySphere> spheres;
  for (int i = 0; i < 200; ++i) {
    std::vector<float> center(8);
    for (auto& v : center) v = dist(gen);
    spheres.emplace_back(center, i % 5, static_cast<std::size_t>(i));
  }
  const meso::SphereTree tree(spheres, 4);

  for (int q = 0; q < 100; ++q) {
    std::vector<float> query(8);
    for (auto& v : query) v = dist(gen);

    std::size_t best = 0;
    double best_d = 1e300;
    for (std::size_t i = 0; i < spheres.size(); ++i) {
      const double d = meso::squared_distance(spheres[i].center(), query);
      if (d < best_d) {
        best_d = d;
        best = i;
      }
    }
    const auto found = tree.nearest(spheres, query);
    EXPECT_NEAR(found.squared_dist, best_d, 1e-9);
    EXPECT_EQ(found.sphere_index, best) << "query " << q;
  }
}

TEST(SphereTree, SingleSphere) {
  std::vector<meso::SensitivitySphere> spheres;
  spheres.emplace_back(std::vector<float>{1.0F, 2.0F}, 0, 0);
  const meso::SphereTree tree(spheres, 4);
  const auto found = tree.nearest(spheres, std::vector<float>{0.0F, 0.0F});
  EXPECT_EQ(found.sphere_index, 0u);
  EXPECT_NEAR(found.squared_dist, 5.0, 1e-9);
}

TEST(MesoClassifier, UntrainedReturnsMinusOne) {
  meso::MesoClassifier clf;
  EXPECT_EQ(clf.classify(std::vector<float>{1.0F}), -1);
}

TEST(MesoClassifier, LearnsSeparableBlobs) {
  const auto blobs = make_blobs(4, 60, 12, 0.4F, 42);
  meso::MesoClassifier clf;
  for (const auto& p : blobs) clf.train(p.features, p.label);

  // Resubstitution on clearly separated blobs should be near-perfect.
  std::size_t correct = 0;
  for (const auto& p : blobs) {
    if (clf.classify(p.features) == p.label) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(blobs.size()),
            0.97);
  // And it should compress: far fewer spheres than patterns.
  EXPECT_LT(clf.sphere_count(), blobs.size());
  EXPECT_GT(clf.sphere_count(), 0u);
}

TEST(MesoClassifier, GeneralizesToHeldOutSamples) {
  const auto train_set = make_blobs(3, 80, 10, 0.5F, 1);
  const auto test_set = make_blobs(3, 30, 10, 0.5F, 2);
  meso::MesoClassifier clf;
  for (const auto& p : train_set) clf.train(p.features, p.label);
  std::size_t correct = 0;
  for (const auto& p : test_set) {
    if (clf.classify(p.features) == p.label) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(test_set.size()),
            0.9);
}

TEST(MesoClassifier, DeltaBootstrapsAndAdapts) {
  meso::MesoParams params;
  params.initial_delta_scale = 0.5;
  meso::MesoClassifier clf(params);
  EXPECT_DOUBLE_EQ(clf.delta(), 0.0);
  clf.train(std::vector<float>{0.0F, 0.0F}, 0);
  EXPECT_DOUBLE_EQ(clf.delta(), 0.0);  // single pattern: no scale yet
  clf.train(std::vector<float>{2.0F, 0.0F}, 0);
  // Bootstrap: half the first non-zero distance (1.0), then one same-label
  // miss immediately grows it by grow_rate.
  const meso::MesoParams defaults;
  EXPECT_NEAR(clf.delta(), 1.0 * (1.0 + defaults.grow_rate), 1e-6);
}

TEST(MesoClassifier, EveryPatternBelongsToASphere) {
  const auto blobs = make_blobs(5, 40, 6, 0.8F, 9);
  meso::MesoClassifier clf;
  for (const auto& p : blobs) clf.train(p.features, p.label);

  std::size_t members = 0;
  for (const auto& s : clf.spheres()) members += s.size();
  EXPECT_EQ(members, blobs.size());
  EXPECT_EQ(clf.pattern_count(), blobs.size());
}

TEST(MesoClassifier, StatsAreConsistent) {
  const auto blobs = make_blobs(3, 50, 8, 0.5F, 13);
  meso::MesoClassifier clf;
  for (const auto& p : blobs) clf.train(p.features, p.label);
  const auto stats = clf.stats();
  EXPECT_EQ(stats.patterns, blobs.size());
  EXPECT_EQ(stats.spheres, clf.sphere_count());
  EXPECT_GT(stats.tree_nodes, 0u);
  EXPECT_GE(stats.purity, 0.0);
  EXPECT_LE(stats.purity, 1.0);
  EXPECT_NEAR(stats.mean_sphere_size,
              static_cast<double>(stats.patterns) /
                  static_cast<double>(stats.spheres),
              1e-9);
}

TEST(MesoClassifier, ResetForgetsEverything) {
  meso::MesoClassifier clf;
  clf.train(std::vector<float>{1.0F}, 0);
  clf.train(std::vector<float>{5.0F}, 1);
  clf.reset();
  EXPECT_EQ(clf.pattern_count(), 0u);
  EXPECT_EQ(clf.sphere_count(), 0u);
  EXPECT_EQ(clf.classify(std::vector<float>{1.0F}), -1);
}

TEST(MesoClassifier, SerializationRoundTrip) {
  const auto blobs = make_blobs(4, 30, 8, 0.5F, 77);
  meso::MesoClassifier clf;
  for (const auto& p : blobs) clf.train(p.features, p.label);

  std::stringstream buffer;
  clf.save(buffer);
  auto loaded = meso::MesoClassifier::load(buffer);

  EXPECT_EQ(loaded.pattern_count(), clf.pattern_count());
  EXPECT_EQ(loaded.sphere_count(), clf.sphere_count());
  EXPECT_DOUBLE_EQ(loaded.delta(), clf.delta());
  for (const auto& p : blobs) {
    EXPECT_EQ(loaded.classify(p.features), clf.classify(p.features));
  }
}

TEST(MesoClassifier, LoadRejectsGarbage) {
  std::stringstream buffer("not a snapshot");
  EXPECT_THROW((void)meso::MesoClassifier::load(buffer), std::runtime_error);
}

TEST(MesoClassifier, MajorityLabelQueryMode) {
  meso::MesoParams params;
  params.nearest_pattern_query = false;
  meso::MesoClassifier clf(params);
  const auto blobs = make_blobs(3, 50, 8, 0.4F, 21);
  for (const auto& p : blobs) clf.train(p.features, p.label);
  std::size_t correct = 0;
  for (const auto& p : blobs) {
    if (clf.classify(p.features) == p.label) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(blobs.size()),
            0.9);
}

TEST(MesoClassifier, DimensionMismatchThrows) {
  meso::MesoClassifier clf;
  clf.train(std::vector<float>{1.0F, 2.0F}, 0);
  EXPECT_THROW(clf.train(std::vector<float>{1.0F}, 0),
               dynriver::ContractViolation);
  EXPECT_THROW((void)clf.classify(std::vector<float>{1.0F, 2.0F, 3.0F}),
               dynriver::ContractViolation);
}

TEST(KnnClassifier, OneNearestNeighborIsExact) {
  meso::KnnClassifier knn(1);
  knn.train(std::vector<float>{0.0F}, 0);
  knn.train(std::vector<float>{10.0F}, 1);
  EXPECT_EQ(knn.classify(std::vector<float>{2.0F}), 0);
  EXPECT_EQ(knn.classify(std::vector<float>{8.0F}), 1);
}

TEST(KnnClassifier, MajorityOverK) {
  meso::KnnClassifier knn(3);
  knn.train(std::vector<float>{0.0F}, 0);
  knn.train(std::vector<float>{0.5F}, 0);
  knn.train(std::vector<float>{1.0F}, 1);
  knn.train(std::vector<float>{30.0F}, 1);
  EXPECT_EQ(knn.classify(std::vector<float>{0.4F}), 0);
}

TEST(CentroidClassifier, FindsNearestClassMean) {
  meso::CentroidClassifier clf;
  clf.train(std::vector<float>{0.0F, 0.0F}, 0);
  clf.train(std::vector<float>{2.0F, 0.0F}, 0);
  clf.train(std::vector<float>{10.0F, 10.0F}, 1);
  EXPECT_EQ(clf.classify(std::vector<float>{1.5F, 0.2F}), 0);
  EXPECT_EQ(clf.classify(std::vector<float>{9.0F, 9.0F}), 1);
}

TEST(Baselines, AccuracyOrderingOnBlobs) {
  // 1-NN >= centroid on noisy multi-modal data; MESO should land near 1-NN.
  const auto train_set = make_blobs(4, 60, 10, 1.2F, 31);
  const auto test_set = make_blobs(4, 40, 10, 1.2F, 32);

  meso::KnnClassifier knn(1);
  meso::CentroidClassifier centroid;
  meso::MesoClassifier mesoc;
  for (const auto& p : train_set) {
    knn.train(p.features, p.label);
    centroid.train(p.features, p.label);
    mesoc.train(p.features, p.label);
  }
  const auto accuracy = [&test_set](const meso::Classifier& clf) {
    std::size_t correct = 0;
    for (const auto& p : test_set) {
      if (clf.classify(p.features) == p.label) ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(test_set.size());
  };
  const double knn_acc = accuracy(knn);
  const double meso_acc = accuracy(mesoc);
  EXPECT_GT(knn_acc, 0.85);
  EXPECT_GT(meso_acc, knn_acc - 0.1);  // MESO within 10 points of exact 1-NN
}
