// TCP transport: record streams over real loopback sockets, clean EOS via
// sentinel, abnormal death producing BadCloseScope recovery downstream.
#include <gtest/gtest.h>

#include <thread>

#include "river/stream_io.hpp"
#include "river/tcp.hpp"

namespace river = dynriver::river;
using river::Record;
using river::RecordType;
using river::RecvStatus;

namespace {
Record make_audio(std::uint64_t seq) {
  auto rec = Record::data(river::kSubtypeAudio, {1.0F, 2.0F, 3.0F});
  rec.sequence = seq;
  return rec;
}
}  // namespace

TEST(Tcp, RecordRoundTripOverLoopback) {
  river::TcpListener listener(0);
  const auto port = listener.port();
  ASSERT_GT(port, 0);

  std::thread client([port] {
    river::TcpRecordChannel ch(river::TcpStream::connect("127.0.0.1", port));
    for (std::uint64_t i = 0; i < 100; ++i) EXPECT_TRUE(ch.send(make_audio(i)));
    ch.close();
  });

  river::TcpRecordChannel server(listener.accept());
  Record rec;
  int received = 0;
  while (server.recv(rec) == RecvStatus::kRecord) {
    EXPECT_EQ(rec.sequence, static_cast<std::uint64_t>(received));
    ++received;
  }
  client.join();
  EXPECT_EQ(received, 100);
  // And the final status is a clean close, not a disconnect.
  EXPECT_EQ(server.recv(rec), RecvStatus::kClosed);
}

TEST(Tcp, LargePayloadSurvivesFragmentation) {
  river::TcpListener listener(0);
  const auto port = listener.port();

  river::FloatVec big(200000);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<float>(i % 997);
  const auto original = Record::data(river::kSubtypeAudio, big);

  std::thread client([port, &original] {
    river::TcpRecordChannel ch(river::TcpStream::connect("127.0.0.1", port));
    EXPECT_TRUE(ch.send(original));
    ch.close();
  });

  river::TcpRecordChannel server(listener.accept());
  Record rec;
  ASSERT_EQ(server.recv(rec), RecvStatus::kRecord);
  EXPECT_TRUE(rec == original);
  client.join();
}

TEST(Tcp, AbruptDeathReportsDisconnect) {
  river::TcpListener listener(0);
  const auto port = listener.port();

  std::thread client([port] {
    auto stream = river::TcpStream::connect("127.0.0.1", port);
    river::TcpRecordChannel ch(std::move(stream));
    EXPECT_TRUE(ch.send(make_audio(0)));
    ch.disconnect();  // abortive close, no EOS sentinel
  });

  river::TcpRecordChannel server(listener.accept());
  Record rec;
  EXPECT_EQ(server.recv(rec), RecvStatus::kRecord);
  EXPECT_EQ(server.recv(rec), RecvStatus::kDisconnected);
  client.join();
}

TEST(Tcp, StreamInSynthesizesBadClosesOnDeadUpstream) {
  river::TcpListener listener(0);
  const auto port = listener.port();

  std::thread upstream([port] {
    river::TcpRecordChannel ch(river::TcpStream::connect("127.0.0.1", port));
    EXPECT_TRUE(ch.send(Record::open_scope(river::kScopeClip, 0)));
    EXPECT_TRUE(ch.send(Record::open_scope(river::kScopeEnsemble, 1)));
    EXPECT_TRUE(ch.send(make_audio(1)));
    ch.disconnect();  // dies mid-clip, mid-ensemble
  });

  river::TcpRecordChannel server(listener.accept());
  river::VectorEmitter sink;
  const auto result = river::stream_in(server, sink);
  upstream.join();

  EXPECT_FALSE(result.clean);
  EXPECT_EQ(result.records_in, 3u);
  EXPECT_EQ(result.bad_closes_emitted, 2u);
  ASSERT_EQ(sink.records.size(), 5u);
  EXPECT_EQ(sink.records[3].type, RecordType::kBadCloseScope);
  EXPECT_EQ(sink.records[4].type, RecordType::kBadCloseScope);
  EXPECT_EQ(sink.records[4].scope_type, river::kScopeClip);
}

TEST(Tcp, ConnectToClosedPortThrows) {
  // Grab a free port, then close the listener so nothing accepts.
  std::uint16_t port = 0;
  {
    river::TcpListener listener(0);
    port = listener.port();
    listener.close();
  }
  EXPECT_THROW((void)river::TcpStream::connect("127.0.0.1", port),
               river::TcpError);
}

TEST(Tcp, InvalidAddressThrows) {
  EXPECT_THROW((void)river::TcpStream::connect("not-an-ip", 1234),
               river::TcpError);
}
